package repro

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/flights"
)

func TestValidateBudget(t *testing.T) {
	cases := []struct {
		name string
		b    ExplainBudget
		want string // substring of the error, "" = valid
	}{
		{"zero", ExplainBudget{}, ""},
		{"full", ExplainBudget{MaxNodes: 100, Deadline: time.Second, MinSamples: 64, TargetCI: 0.05}, ""},
		{"approx mode", ExplainBudget{Mode: ModeApproximate}, ""},
		{"negative max nodes", ExplainBudget{MaxNodes: -1}, "MaxNodes"},
		{"negative deadline", ExplainBudget{Deadline: -time.Second}, "deadline"},
		{"negative min samples", ExplainBudget{MinSamples: -5}, "MinSamples"},
		{"target CI one", ExplainBudget{TargetCI: 1}, "outside (0, 1)"},
		{"target CI negative", ExplainBudget{TargetCI: -0.5}, "outside (0, 1)"},
		{"target CI huge", ExplainBudget{TargetCI: 2}, "outside (0, 1)"},
		{"bad mode", ExplainBudget{Mode: ExplainMode(99)}, "ExplainMode"},
	}
	for _, c := range cases {
		err := ValidateBudget(c.b)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
		// Budget validation is wired into Options.Validate too.
		if oerr := (Options{Budget: c.b}).Validate(); oerr == nil {
			t.Errorf("%s: Options.Validate accepted the bad budget", c.name)
		}
	}
}

// checkApprox asserts one explanation is a well-formed marked approximation:
// estimates for every fact, finite ordered bounds containing the value, a
// positive sample count, and a reproducible seed.
func checkApprox(t *testing.T, e *TupleExplanation) {
	t.Helper()
	if e.Method != MethodApprox {
		t.Fatalf("method = %v, want approximate", e.Method)
	}
	if e.Samples <= 0 {
		t.Errorf("approximate answer reports %d samples", e.Samples)
	}
	if len(e.Approx) != e.NumFacts {
		t.Fatalf("estimates cover %d facts, want %d", len(e.Approx), e.NumFacts)
	}
	for id, est := range e.Approx {
		for _, v := range []float64{est.Value, est.CILow, est.CIHigh} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("fact %d estimate %+v has non-finite field", id, est)
			}
		}
		if est.CILow > est.Value || est.Value > est.CIHigh {
			t.Errorf("fact %d value %v outside its CI [%v, %v]", id, est.Value, est.CILow, est.CIHigh)
		}
		if e.Score(id) != est.Value {
			t.Errorf("Score(%d) = %v, estimate value %v", id, e.Score(id), est.Value)
		}
	}
}

// TestExplainBudgetMaxNodesForcesApprox: a starvation node budget degrades
// the one-shot Explain to marked sampled estimates instead of erroring (the
// exact run would fall back to the CNF proxy; the budget swaps the target).
func TestExplainBudgetMaxNodesForcesApprox(t *testing.T) {
	d, fs := flights.Build()
	es, err := Explain(context.Background(), d, flights.Query(), Options{
		Budget: ExplainBudget{MaxNodes: 1, MinSamples: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 1 {
		t.Fatalf("%d explanations, want 1", len(es))
	}
	checkApprox(t, &es[0])
	if top := es[0].Ranking[0]; top != fs.A[1].ID {
		t.Errorf("top-ranked fact = %d, want a1 (%d)", top, fs.A[1].ID)
	}
}

// TestExplainBudgetDeadlineFallsBack arms a deadline that expires mid-flight
// during the exact attempt: the request must degrade, not error.
func TestExplainBudgetDeadlineFallsBack(t *testing.T) {
	d, _ := flights.Build()
	es, err := Explain(context.Background(), d, flights.Query(), Options{
		Budget: ExplainBudget{Deadline: time.Nanosecond, MinSamples: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkApprox(t, &es[0])
}

// TestExplainModeApproximateSkipsExact: explicit approximation answers
// deterministically — two runs with the same seed are identical, a seed
// override perturbs them.
func TestExplainModeApproximateSkipsExact(t *testing.T) {
	d, _ := flights.Build()
	opts := Options{Budget: ExplainBudget{Mode: ModeApproximate, MinSamples: 100}}
	a, err := Explain(context.Background(), d, flights.Query(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explain(context.Background(), d, flights.Query(), opts)
	if err != nil {
		t.Fatal(err)
	}
	checkApprox(t, &a[0])
	if a[0].ApproxSeed != b[0].ApproxSeed {
		t.Fatalf("seeds diverge: %d vs %d", a[0].ApproxSeed, b[0].ApproxSeed)
	}
	for id, ea := range a[0].Approx {
		if eb := b[0].Approx[id]; ea != eb {
			t.Fatalf("fact %d: %+v vs %+v for identical budgets", id, ea, eb)
		}
	}
	opts.Budget.Seed = 1234
	c, err := Explain(context.Background(), d, flights.Query(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if c[0].ApproxSeed == a[0].ApproxSeed {
		t.Error("seed override did not perturb the sampling seed")
	}
}

// TestSessionBudgetedExplainUpgradesInBackground: a degraded session answer
// is upgraded in place by the bounded background slot, so a later budgeted
// explain of the same tuple serves the exact value — big.Rat-identical to a
// cold exact run — without the caller ever widening its budget.
func TestSessionBudgetedExplainUpgradesInBackground(t *testing.T) {
	d, _ := flights.Build()
	s, err := Open(d, flights.Query(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	starved := ExplainBudget{MaxNodes: 1, MinSamples: 64}
	es, err := s.ExplainWithBudget(context.Background(), starved)
	if err != nil {
		t.Fatal(err)
	}
	checkApprox(t, &es[0])

	// The upgrade runs in the background slot; budgeted explains serve
	// whatever is cached, so poll until the exact value lands.
	deadline := time.Now().Add(10 * time.Second)
	for es[0].Method == MethodApprox {
		if time.Now().After(deadline) {
			t.Fatal("background upgrade never replaced the approximate answer")
		}
		time.Sleep(5 * time.Millisecond)
		es, err = s.ExplainWithBudget(context.Background(), starved)
		if err != nil {
			t.Fatal(err)
		}
	}

	cold, _ := flights.Build()
	want, err := Explain(context.Background(), cold, flights.Query(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertExplanationsEqual(t, es, want, "upgraded session answer")

	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Approximations < 1 {
		t.Errorf("Approximations = %d, want ≥ 1", st.Approximations)
	}
	if st.Upgrades < 1 {
		t.Errorf("Upgrades = %d, want ≥ 1", st.Upgrades)
	}
}

// TestSessionUnbudgetedExplainNeverServesApprox: a cached approximate
// answer must not contaminate an unbudgeted call — it recomputes exactly.
func TestSessionUnbudgetedExplainNeverServesApprox(t *testing.T) {
	d, _ := flights.Build()
	s, err := Open(d, flights.Query(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	es, err := s.ExplainWithBudget(context.Background(), ExplainBudget{MaxNodes: 1, MinSamples: 64})
	if err != nil {
		t.Fatal(err)
	}
	checkApprox(t, &es[0])

	es, err = s.Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if es[0].Method != MethodExact {
		t.Fatalf("unbudgeted explain served method %v, want exact", es[0].Method)
	}
	cold, _ := flights.Build()
	want, err := Explain(context.Background(), cold, flights.Query(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertExplanationsEqual(t, es, want, "unbudgeted after degraded")
}

// TestSessionBudgetedExplainSurvivesUpdates: degrade, mutate, and explain
// again — the degraded cache entry for the stale epoch must not leak, and
// the budgeted path stays correct across re-grounding.
func TestSessionBudgetedExplainSurvivesUpdates(t *testing.T) {
	d, _ := flights.Build()
	s, err := Open(d, flights.Query(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	starved := ExplainBudget{MaxNodes: 1, MinSamples: 64}
	if _, err := s.ExplainWithBudget(context.Background(), starved); err != nil {
		t.Fatal(err)
	}
	f, err := s.Insert("Flights", true, String("BOS"), String("ORY"))
	if err != nil {
		t.Fatal(err)
	}
	es, err := s.ExplainWithBudget(context.Background(), starved)
	if err != nil {
		t.Fatal(err)
	}
	checkApprox(t, &es[0])
	if _, ok := es[0].Approx[f.ID]; !ok {
		t.Error("inserted fact missing from the post-update estimates")
	}
	if err := s.Delete(f.ID); err != nil {
		t.Fatal(err)
	}
	es, err = s.Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cold, _ := flights.Build()
	want, err := Explain(context.Background(), cold, flights.Query(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertExplanationsEqual(t, es, want, "exact after degraded churn")
}

// TestSessionCloseCancelsUpgrade: closing the session right after a
// degraded explain must not leak or race the background upgrade.
func TestSessionCloseCancelsUpgrade(t *testing.T) {
	for i := 0; i < 5; i++ {
		d, _ := flights.Build()
		s, err := Open(d, flights.Query(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.ExplainWithBudget(context.Background(),
			ExplainBudget{MaxNodes: 1, MinSamples: 64}); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
