// PQE example: Shapley values through the probabilistic-database reduction
// (Proposition 3.1).
//
// The paper's theoretical contribution shows Shapley(q) ≤p_T PQE(q): with a
// probabilistic-query-evaluation oracle one can recover exact Shapley
// values by evaluating the query on n+1 tuple-independent databases whose
// endogenous facts carry probability z/(1+z) for distinct z, then inverting
// a Vandermonde system. This example runs that reduction on the flights
// database and cross-checks the result against Algorithm 1 — the two
// agree to the last rational digit.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/flights"
)

func main() {
	d, _ := flights.Build()
	q := flights.Query()

	start := time.Now()
	viaPQE, err := repro.ShapleyViaProbabilisticDB(context.Background(), d, q)
	if err != nil {
		log.Fatal(err)
	}
	pqeTime := time.Since(start)

	start = time.Now()
	exact, err := repro.ExplainBoolean(context.Background(), d, q, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	alg1Time := time.Since(start)

	fmt.Println("Shapley values via the PQE reduction vs Algorithm 1:")
	fmt.Printf("%-28s %-12s %-12s %s\n", "fact", "via PQE", "Algorithm 1", "equal?")
	allEqual := true
	for _, f := range d.EndogenousFacts() {
		a := viaPQE[f.ID]
		b := exact.Values[f.ID]
		eq := a != nil && b != nil && a.Cmp(b) == 0
		if b == nil { // fact absent from lineage: Algorithm 1 reports 0
			eq = a.Sign() == 0
		}
		allEqual = allEqual && eq
		bStr := "0"
		if b != nil {
			bStr = b.RatString()
		}
		fmt.Printf("%-28s %-12s %-12s %v\n",
			f.Relation+f.Tuple.String(), a.RatString(), bStr, eq)
	}
	fmt.Printf("\nall values identical: %v\n", allEqual)
	fmt.Printf("reduction: %v (O(n²) oracle calls)   Algorithm 1: %v\n",
		pqeTime.Round(time.Microsecond), alg1Time.Round(time.Microsecond))
}
