// IMDB example: for the JOB-style query 16a — keywords of movies with cast
// and companies, projected on keyword — which cast_info / movie_keyword /
// movie_companies facts does each keyword answer depend on most?
//
// The final projection makes each output keyword depend on many join
// witnesses, so this exercises wide provenance: the kind of instance where
// the hybrid strategy matters.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/imdb"
)

func main() {
	d := imdb.Generate(imdb.DefaultConfig())
	var q *repro.Query
	for _, bq := range imdb.Queries() {
		if bq.Name == "16a" {
			q = bq.Q
		}
	}

	fmt.Println("IMDB 16a (keywords of cast-and-company movies), fact-level explanations")
	fmt.Printf("database: %d facts (%d endogenous)\n\n", d.NumFacts(), d.NumEndogenous())

	start := time.Now()
	explanations, err := repro.Explain(context.Background(), d, q, repro.Options{Timeout: 2500 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d keyword answers explained in %v\n\n", len(explanations), time.Since(start).Round(time.Millisecond))

	exactCount := 0
	for _, e := range explanations {
		if e.Method == repro.MethodExact {
			exactCount++
		}
	}
	fmt.Printf("exact within budget: %d/%d; proxy fallback: %d\n\n",
		exactCount, len(explanations), len(explanations)-exactCount)

	limit := 3
	for i, e := range explanations {
		if i >= limit {
			fmt.Printf("... and %d more answers\n", len(explanations)-limit)
			break
		}
		fmt.Printf("keyword %v — %d provenance facts (method=%v)\n", e.Tuple, e.NumFacts, e.Method)
		for rank, f := range e.TopFacts(3) {
			fact := d.Fact(f)
			fmt.Printf("  %d. %-16s %-30s %.5f\n", rank+1, fact.Relation, fact.Tuple, e.Score(f))
		}
		fmt.Println()
	}
}
