// TPC-H example: which orders and lineitems make a customer appear in the
// result of the (de-aggregated) TPC-H Q18, "customers with large-quantity
// high-value orders"?
//
// The example generates a synthetic TPC-H instance (lineitem, orders, and
// partsupp endogenous; dimensions exogenous), runs Q18, and for each
// answered customer ranks the fact-level causes: which specific order and
// which specific big lineitem put that customer in the answer. It then
// compares the exact ranking with the CNF Proxy ranking for the same tuple.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/tpch"
)

func main() {
	d := tpch.Generate(tpch.DefaultConfig())
	var q *repro.Query
	for _, bq := range tpch.Queries() {
		if bq.Name == "q18" {
			q = bq.Q
		}
	}

	fmt.Println("TPC-H Q18 (large-volume customers), fact-level explanations")
	fmt.Printf("database: %d facts (%d endogenous)\n\n", d.NumFacts(), d.NumEndogenous())

	exact, err := repro.Explain(context.Background(), d, q, repro.Options{Timeout: 5 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	// Force the proxy path on the same query for comparison.
	proxy, err := repro.Explain(context.Background(), d, q, repro.Options{Timeout: time.Millisecond, MaxNodes: 1})
	if err != nil {
		log.Fatal(err)
	}

	limit := 3
	for i, e := range exact {
		if i >= limit {
			fmt.Printf("... and %d more answers\n", len(exact)-limit)
			break
		}
		fmt.Printf("customer %v (method=%v, %d facts, %v):\n",
			e.Tuple, e.Method, e.NumFacts, e.Elapsed.Round(time.Microsecond))
		for rank, f := range e.TopFacts(4) {
			fact := d.Fact(f)
			fmt.Printf("  %d. %-11s %-40s %.4f\n", rank+1, fact.Relation, fact.Tuple, e.Score(f))
		}
		// Compare top fact against the proxy's pick for the same tuple.
		p := proxy[i]
		agree := "agrees"
		if len(p.Ranking) > 0 && len(e.Ranking) > 0 && p.Ranking[0] != e.Ranking[0] {
			agree = "DISAGREES"
		}
		fmt.Printf("  CNF Proxy top fact %s with exact (proxy method=%v)\n\n", agree, p.Method)
	}
}
