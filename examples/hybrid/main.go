// Hybrid example: Section 6.3's strategy on a hard instance.
//
// We build a lineage whose knowledge compilation is expensive — a dense
// blocking-pairs formula over many facts — and explain it under several
// timeouts. Small budgets fall back to CNF Proxy (millisecond ranking,
// inexact values); a generous budget completes exactly. The example also
// shows that the proxy's top-ranked facts match the exact top facts, which
// is exactly the use the paper recommends it for.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/db"
)

// hardLineage builds the ELin of a query with n "routes" of 2 hops each,
// plus chains that share facts across routes — shaped like the one-stop
// flights query but much denser, so the compiled circuit grows quickly.
func hardLineage(n int) (*circuit.Node, []db.FactID) {
	b := circuit.NewBuilder()
	var disjuncts []*circuit.Node
	// Facts 1..n are "left" hops, n+1..2n "right" hops: every pair forms a
	// route, so the DNF has n² conjunctions over 2n facts.
	for i := 1; i <= n; i++ {
		for j := n + 1; j <= 2*n; j++ {
			disjuncts = append(disjuncts,
				b.And(b.Variable(circuit.Var(i)), b.Variable(circuit.Var(j))))
		}
	}
	// A few "direct" facts make the instance asymmetric.
	for i := 2*n + 1; i <= 2*n+2; i++ {
		disjuncts = append(disjuncts, b.Variable(circuit.Var(i)))
	}
	elin := b.Or(disjuncts...)
	endo := make([]db.FactID, 0, 2*n+2)
	for _, v := range circuit.Vars(elin) {
		endo = append(endo, db.FactID(v))
	}
	return elin, endo
}

func main() {
	elin, endo := hardLineage(10)
	fmt.Printf("hard lineage: %d facts, %d gates\n\n", len(endo), circuit.Size(elin))

	for _, timeout := range []time.Duration{
		500 * time.Microsecond, 5 * time.Millisecond, 60 * time.Second,
	} {
		res, err := core.Hybrid(context.Background(), elin, endo, core.HybridOptions{Timeout: timeout})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timeout %-10v → method=%-9v elapsed=%-12v top facts: %v\n",
			timeout, res.Method, res.Elapsed.Round(time.Microsecond), res.Ranking[:4])
	}

	// Quality check: proxy ranking vs exact ranking on this instance.
	exact, err := core.Hybrid(context.Background(), elin, endo, core.HybridOptions{})
	if err != nil {
		log.Fatal(err)
	}
	proxy, err := core.Hybrid(context.Background(), elin, endo, core.HybridOptions{Timeout: time.Nanosecond, MaxNodes: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact top-4:  %v\n", exact.Ranking[:4])
	fmt.Printf("proxy top-4:  %v\n", proxy.Ranking[:4])
	same := 0
	exactTop := map[db.FactID]bool{}
	for _, f := range exact.Ranking[:4] {
		exactTop[f] = true
	}
	for _, f := range proxy.Ranking[:4] {
		if exactTop[f] {
			same++
		}
	}
	fmt.Printf("precision@4 of the proxy ranking: %.2f\n", float64(same)/4)
}
