// Quickstart: the paper's running example (Figure 1 / Example 2.1).
//
// We build a tiny database of flights (endogenous) and airports (exogenous),
// ask whether one can fly from the USA to France with at most one
// connection, and compute the exact Shapley value of every flight — i.e.,
// how responsible each flight is for the positive answer. The values match
// the paper: 43/105 for the direct JFK→CDG flight, 23/210 for each flight
// on the east-coast routes, 8/105 for the LAX→MUC→ORY legs, and 0 for the
// unused LHR→MUC flight.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	d := repro.NewDatabase()
	d.CreateRelation("Flights", "src", "dst")
	d.CreateRelation("Airports", "name", "country")

	flights := [][2]string{
		{"JFK", "CDG"}, {"EWR", "LHR"}, {"BOS", "LHR"}, {"LHR", "CDG"},
		{"LHR", "ORY"}, {"LAX", "MUC"}, {"MUC", "ORY"}, {"LHR", "MUC"},
	}
	for _, f := range flights {
		d.MustInsert("Flights", true, repro.String(f[0]), repro.String(f[1]))
	}
	airports := [][2]string{
		{"JFK", "USA"}, {"EWR", "USA"}, {"BOS", "USA"}, {"LAX", "USA"},
		{"LHR", "EN"}, {"MUC", "GR"}, {"ORY", "FR"}, {"CDG", "FR"},
	}
	for _, a := range airports {
		d.MustInsert("Airports", false, repro.String(a[0]), repro.String(a[1]))
	}

	q, err := repro.ParseQuery(`
		q() :- Airports(x, 'USA'), Airports(y, 'FR'), Flights(x, y)
		q() :- Airports(x, 'USA'), Airports(z, 'FR'), Flights(x, y), Flights(y, z)
	`)
	if err != nil {
		log.Fatal(err)
	}

	exp, err := repro.ExplainBoolean(context.Background(), d, q, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Can we reach France from the USA with ≤1 connection? Yes.")
	fmt.Println("Why — each flight's Shapley contribution to the answer:")
	for _, f := range exp.Ranking {
		fact := d.Fact(f)
		fmt.Printf("  %-25s exact value %-8v ≈ %.4f\n",
			fact.Relation+fact.Tuple.String(), exp.Values[f], exp.Score(f))
	}
	fmt.Printf("sum of contributions (efficiency axiom): %v\n", repro.EfficiencySum(exp.Values))
}
