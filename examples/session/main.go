// Session example: the interactive workload the paper targets — an analyst
// asks "why this answer?" repeatedly while the database changes between
// questions.
//
// A one-shot repro.Explain re-grounds the query, rebuilds lineage, and
// recompiles circuits on every call. A repro.Session grounds once and then
// delta-maintains every per-stage artifact: Insert joins only the bindings
// involving the new fact, Delete drops exactly the derivations it
// supported, and Explain recomputes only the tuples whose lineage actually
// changed. The values are guaranteed identical to a cold Explain on the
// mutated database.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	d := repro.NewDatabase()
	d.CreateRelation("Flights", "src", "dst")
	d.CreateRelation("Airports", "name", "country")

	var direct *repro.Fact
	for _, f := range [][2]string{
		{"JFK", "CDG"}, {"EWR", "LHR"}, {"BOS", "LHR"}, {"LHR", "CDG"},
		{"LHR", "ORY"}, {"LAX", "MUC"}, {"MUC", "ORY"}, {"LHR", "MUC"},
	} {
		fact := d.MustInsert("Flights", true, repro.String(f[0]), repro.String(f[1]))
		if f[0] == "JFK" {
			direct = fact
		}
	}
	for _, a := range [][2]string{
		{"JFK", "USA"}, {"EWR", "USA"}, {"BOS", "USA"}, {"LAX", "USA"},
		{"LHR", "EN"}, {"MUC", "GR"}, {"ORY", "FR"}, {"CDG", "FR"},
	} {
		d.MustInsert("Airports", false, repro.String(a[0]), repro.String(a[1]))
	}

	q, err := repro.ParseQuery(`
		q() :- Flights(x, y), Airports(x, 'USA'), Airports(y, 'FR')
		q() :- Flights(x, z), Flights(z, y), Airports(x, 'USA'), Airports(y, 'FR')`)
	if err != nil {
		log.Fatal(err)
	}

	s, err := repro.Open(d, q, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	show := func(header string) {
		es, err := s.Explain(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(header)
		if len(es) == 0 {
			fmt.Println("  query is false")
			return
		}
		for _, f := range es[0].TopFacts(3) {
			fmt.Printf("  %v  contributes %s\n", d.Fact(f), es[0].Values[f].RatString())
		}
	}

	show("Why can one fly USA -> France with at most one stop?")

	// The analyst removes the direct JFK->CDG flight and asks again: the
	// session reuses everything except the one answer whose lineage lost a
	// derivation.
	if err := s.Delete(direct.ID); err != nil {
		log.Fatal(err)
	}
	show("\n... after cancelling the direct JFK->CDG flight:")

	// A new carrier opens the same route: only the bindings involving the
	// new fact are joined, and the answer's circuit is spliced, not rebuilt.
	if _, err := s.Insert("Flights", true, repro.String("JFK"), repro.String("CDG")); err != nil {
		log.Fatal(err)
	}
	show("\n... after a new carrier reopens JFK->CDG:")
}
