// Client example: the explanation service over HTTP — the interactive
// workload of the paper served to remote analysts.
//
// The program starts an in-process shapleyd-equivalent server on an
// ephemeral port (in production you would run `shapleyd -addr :8080
// -datasets flights` and point the client at it) and then acts as a pure
// HTTP client: it asks why one can fly USA -> France with at most one stop
// (POST /v1/explain), deletes the top-contributing flight through a batched
// update (POST /v1/update), asks again, restores the flight, and finally
// reads the session-pool counters (GET /v1/stats) showing every question
// after the first hit a warm pooled session.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"repro"
	"repro/internal/flights"
	"repro/internal/server"
	"repro/internal/wire"
)

const query = `
	q() :- Airports(x, 'USA'), Airports(y, 'FR'), Flights(x, y)
	q() :- Airports(x, 'USA'), Airports(z, 'FR'), Flights(x, y), Flights(y, z)`

func main() {
	// Serve the paper's Figure 1 database.
	d, _ := flights.Build()
	srv, err := server.New(server.Config{
		Datasets: map[string]*repro.Database{"flights": d},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	explain := func(header string) wire.ExplainResponse {
		var resp wire.ExplainResponse
		post(base+"/v1/explain", wire.ExplainRequest{Dataset: "flights", Query: query, Top: 3}, &resp)
		fmt.Println(header)
		if len(resp.Tuples) == 0 {
			fmt.Println("  query is false")
			return resp
		}
		for _, f := range resp.Tuples[0].Facts {
			fmt.Printf("  %s%v  contributes %s\n", f.Relation, f.Tuple, f.ValueRat)
		}
		return resp
	}

	first := explain("Why can one fly USA -> France with at most one stop?")

	// The analyst removes the top-contributing flight — the direct
	// JFK->CDG leg, per the paper — and asks again. The fact ID comes from
	// the explain response; the update routes through the same pooled
	// session, which maintains its lineage incrementally.
	top := first.Tuples[0].Facts[0]
	var upd wire.UpdateResponse
	post(base+"/v1/update", wire.UpdateRequest{
		Dataset: "flights", Query: query,
		Deletes: []wire.DeleteSpec{{ID: top.ID}},
	}, &upd)
	fmt.Printf("\ndeleted %s%v (fact #%d)\n\n", top.Relation, top.Tuple, upd.DeletedIDs[0])

	explain("And without that flight?")

	// Restore it (an insert batch) and confirm the original answer.
	vals := make([]json.RawMessage, len(top.Tuple))
	for i, v := range top.Tuple {
		raw, _ := json.Marshal(v)
		vals[i] = raw
	}
	post(base+"/v1/update", wire.UpdateRequest{
		Dataset: "flights", Query: query,
		Inserts: []wire.InsertSpec{{Relation: top.Relation, Endogenous: true, Values: vals}},
	}, &upd)
	fmt.Printf("\nrestored %s%v as fact #%d\n\n", top.Relation, top.Tuple, upd.InsertedIDs[0])

	explain("And with it restored?")

	var stats wire.StatsResponse
	get(base+"/v1/stats", &stats)
	fmt.Printf("\nsession pool: %d open(s), %d reuse(s); compile cache: %d hit(s), %d miss(es)\n",
		stats.Pool.Opens, stats.Pool.Reuses, stats.Cache.Hits, stats.Cache.Misses)
}

func post(url string, body, into any) {
	blob, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s -> %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		log.Fatal(err)
	}
}

func get(url string, into any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s -> %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		log.Fatal(err)
	}
}
