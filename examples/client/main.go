// Client example: the explanation service over HTTP — the interactive
// workload of the paper served to remote analysts.
//
// The program starts an in-process shapleyd-equivalent server on an
// ephemeral port (in production you would run `shapleyd -addr :8080
// -datasets flights` and point the client at it) and then acts as a pure
// HTTP client: it asks why one can fly USA -> France with at most one stop
// (POST /v1/explain), deletes the top-contributing flight through a batched
// update (POST /v1/update), asks again, restores the flight, and finally
// reads the session-pool counters (GET /v1/stats) showing every question
// after the first hit a warm pooled session.
//
// It then walks the observability surfaces: re-asks with "trace": true and
// prints the per-stage span tree the server recorded for that request,
// scrapes GET /metrics (Prometheus text exposition, validated with the
// in-repo promlint parser), and reads GET /v1/debug/slow — the ring of
// recent explains that crossed the slow threshold, each kept with its
// request ID and full stage trace.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"
	"strings"

	"repro"
	"repro/internal/flights"
	"repro/internal/promlint"
	"repro/internal/server"
	"repro/internal/wire"
)

const query = `
	q() :- Airports(x, 'USA'), Airports(y, 'FR'), Flights(x, y)
	q() :- Airports(x, 'USA'), Airports(z, 'FR'), Flights(x, y), Flights(y, z)`

func main() {
	// Serve the paper's Figure 1 database.
	d, _ := flights.Build()
	srv, err := server.New(server.Config{
		Datasets: map[string]*repro.Database{"flights": d},
		// A 1ns threshold makes every explain "slow", so the slow-log
		// section below has entries to show; production values look like
		// `shapleyd -slow-explain 250ms`.
		SlowThreshold: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	explain := func(header string) wire.ExplainResponse {
		var resp wire.ExplainResponse
		post(base+"/v1/explain", wire.ExplainRequest{Dataset: "flights", Query: query, Top: 3}, &resp)
		fmt.Println(header)
		if len(resp.Tuples) == 0 {
			fmt.Println("  query is false")
			return resp
		}
		for _, f := range resp.Tuples[0].Facts {
			fmt.Printf("  %s%v  contributes %s\n", f.Relation, f.Tuple, f.ValueRat)
		}
		return resp
	}

	first := explain("Why can one fly USA -> France with at most one stop?")

	// The analyst removes the top-contributing flight — the direct
	// JFK->CDG leg, per the paper — and asks again. The fact ID comes from
	// the explain response; the update routes through the same pooled
	// session, which maintains its lineage incrementally.
	top := first.Tuples[0].Facts[0]
	var upd wire.UpdateResponse
	post(base+"/v1/update", wire.UpdateRequest{
		Dataset: "flights", Query: query,
		Deletes: []wire.DeleteSpec{{ID: top.ID}},
	}, &upd)
	fmt.Printf("\ndeleted %s%v (fact #%d)\n\n", top.Relation, top.Tuple, upd.DeletedIDs[0])

	explain("And without that flight?")

	// Restore it (an insert batch) and confirm the original answer.
	vals := make([]json.RawMessage, len(top.Tuple))
	for i, v := range top.Tuple {
		raw, _ := json.Marshal(v)
		vals[i] = raw
	}
	post(base+"/v1/update", wire.UpdateRequest{
		Dataset: "flights", Query: query,
		Inserts: []wire.InsertSpec{{Relation: top.Relation, Endogenous: true, Values: vals}},
	}, &upd)
	fmt.Printf("\nrestored %s%v as fact #%d\n\n", top.Relation, top.Tuple, upd.InsertedIDs[0])

	explain("And with it restored?")

	var stats wire.StatsResponse
	get(base+"/v1/stats", &stats)
	fmt.Printf("\nsession pool: %d open(s), %d reuse(s); compile cache: %d hit(s), %d miss(es)\n",
		stats.Pool.Opens, stats.Pool.Reuses, stats.Cache.Hits, stats.Cache.Misses)

	// Observability surface 1: per-request stage tracing. Setting "trace":
	// true in the request makes the response carry the span tree the server
	// recorded while answering — which pipeline stages ran, how long each
	// took, and stage attributes like compiled-circuit node counts and
	// compile-cache hit kinds.
	var traced wire.ExplainResponse
	post(base+"/v1/explain", wire.ExplainRequest{
		Dataset: "flights", Query: query, Top: 3, Trace: true,
	}, &traced)
	fmt.Printf("\nstage trace for request %s (%.3fms total):\n", traced.RequestID, traced.ElapsedMs)
	printSpan(traced.Trace, 1)

	// Observability surface 2: Prometheus metrics. GET /metrics serves the
	// text exposition format — request/stage latency histograms, counters
	// by route, status code, and degradation cause, pool and cache gauges.
	// promlint is the same structural validator the CI gate runs.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	var expo bytes.Buffer
	expo.ReadFrom(resp.Body)
	resp.Body.Close()
	pstats, err := promlint.Validate(expo.String())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n/metrics: %d families, %d samples, exposition valid; e.g.\n", pstats.Families, pstats.Samples)
	for _, line := range strings.Split(expo.String(), "\n") {
		if strings.HasPrefix(line, "repro_requests_total") || strings.HasPrefix(line, "repro_compilations_total") {
			fmt.Println("  " + line)
		}
	}

	// Observability surface 3: the slow-explain log. Explains that exceed
	// the configured threshold are kept — with their request IDs and full
	// stage traces — in a bounded ring served at /v1/debug/slow, so the
	// evidence for a latency spike survives until an operator looks.
	var slow wire.SlowResponse
	get(base+"/v1/debug/slow", &slow)
	fmt.Printf("\nslow-explain log (threshold %.6fms): %d entr(ies); most recent:\n",
		slow.ThresholdMs, len(slow.Entries))
	if n := len(slow.Entries); n > 0 {
		e := slow.Entries[n-1]
		fmt.Printf("  request %s on %q took %.3fms, root stage %q with %d sub-stage(s)\n",
			e.RequestID, e.Dataset, e.ElapsedMs, e.Trace.Name, len(e.Trace.Children))
	}
}

// printSpan renders a span tree, one indented line per stage with its wall
// time and sorted attributes.
func printSpan(n *wire.TraceSpan, depth int) {
	if n == nil {
		return
	}
	attrs := ""
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%v", k, n.Attrs[k])
		}
		attrs = "  [" + strings.Join(parts, " ") + "]"
	}
	fmt.Printf("%s%-10s %9.3fms%s\n", strings.Repeat("  ", depth), n.Name, n.DurationMs, attrs)
	for _, c := range n.Children {
		printSpan(c, depth+1)
	}
}

func post(url string, body, into any) {
	blob, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s -> %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		log.Fatal(err)
	}
}

func get(url string, into any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s -> %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		log.Fatal(err)
	}
}
