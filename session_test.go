package repro

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// assertExplanationsEqual asserts tuple-for-tuple, fact-for-fact equality —
// big.Rat-identical values, identical rankings — between two explanation
// slices.
func assertExplanationsEqual(t *testing.T, got, want []TupleExplanation, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d explanations, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := &got[i], &want[i]
		if !g.Tuple.Equal(w.Tuple) {
			t.Fatalf("%s: tuple %d is %v, want %v", label, i, g.Tuple, w.Tuple)
		}
		if g.Method != w.Method {
			t.Fatalf("%s: tuple %v method %v, want %v", label, g.Tuple, g.Method, w.Method)
		}
		if g.NumFacts != w.NumFacts {
			t.Fatalf("%s: tuple %v has %d facts, want %d", label, g.Tuple, g.NumFacts, w.NumFacts)
		}
		if len(g.Values) != len(w.Values) {
			t.Fatalf("%s: tuple %v has %d values, want %d", label, g.Tuple, len(g.Values), len(w.Values))
		}
		for f, v := range w.Values {
			gv, ok := g.Values[f]
			if !ok {
				t.Fatalf("%s: tuple %v missing value for fact %d", label, g.Tuple, f)
			}
			if gv.Cmp(v) != 0 {
				t.Fatalf("%s: tuple %v fact %d = %v, want %v", label, g.Tuple, f, gv, v)
			}
		}
		if len(g.Ranking) != len(w.Ranking) {
			t.Fatalf("%s: tuple %v ranking %v, want %v", label, g.Tuple, g.Ranking, w.Ranking)
		}
		for j := range w.Ranking {
			if g.Ranking[j] != w.Ranking[j] {
				t.Fatalf("%s: tuple %v ranking %v, want %v", label, g.Tuple, g.Ranking, w.Ranking)
			}
		}
	}
}

// TestSessionMatchesColdExplainUnderUpdates is the PR's correctness bar:
// after any randomized insert/delete interleaving, Session.Explain must be
// big.Rat-identical to a cold Explain on the mutated database.
func TestSessionMatchesColdExplainUnderUpdates(t *testing.T) {
	queries := []string{
		`q(x) :- R(x, y), S(y, z)`,
		"q(x) :- R(x, y), S(y, z)\nq(x) :- T(x)",
		`q() :- R(x, y), R(y, z)`,
		`q(x) :- R(x, y), T(y), y > 0`,
	}
	sessionOpts := []Options{
		{Workers: 1, CacheSize: -1},
		{Workers: 4, CacheSize: 32, IndexBudget: 2},
		{Workers: 2, CacheSize: 32, Strategy: StrategyPerFact},
		{CacheSize: 32, Strategy: StrategyGradient, Storage: BackendSorted},
	}
	for qi, text := range queries {
		t.Run(fmt.Sprintf("q%d", qi), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7000 + qi)))
			q, err := ParseQuery(text)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 4; trial++ {
				// Alternate storage backends across trials: the update
				// interleaving property must hold identically when the
				// session's database lives on the sorted store.
				d := NewDatabase()
				if trial%2 == 1 {
					var err error
					if d, err = NewDatabaseOn(BackendSorted, ""); err != nil {
						t.Fatal(err)
					}
				}
				d.CreateRelation("R", "a", "b")
				d.CreateRelation("S", "a", "b")
				d.CreateRelation("T", "a")
				randFact := func() (string, []Value) {
					switch rng.Intn(3) {
					case 0:
						return "R", []Value{Int(int64(rng.Intn(3))), Int(int64(rng.Intn(3)))}
					case 1:
						return "S", []Value{Int(int64(rng.Intn(3))), Int(int64(rng.Intn(3)))}
					default:
						return "T", []Value{Int(int64(rng.Intn(3)))}
					}
				}
				for i := 0; i < 5; i++ {
					rel, vals := randFact()
					d.MustInsert(rel, rng.Intn(4) != 0, vals...)
				}
				s, err := Open(d, q, sessionOpts[trial%len(sessionOpts)])
				if err != nil {
					t.Fatal(err)
				}
				for step := 0; step < 8; step++ {
					if rng.Intn(2) == 0 && d.NumFacts() > 0 {
						var ids []FactID
						for _, name := range d.RelationNames() {
							for _, f := range d.Relation(name).Facts() {
								ids = append(ids, f.ID)
							}
						}
						if err := s.Delete(ids[rng.Intn(len(ids))]); err != nil {
							t.Fatal(err)
						}
					} else {
						rel, vals := randFact()
						if _, err := s.Insert(rel, rng.Intn(4) != 0, vals...); err != nil {
							t.Fatal(err)
						}
					}
					live, err := s.Explain(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					cold, err := Explain(context.Background(), d, q, Options{CacheSize: -1})
					if err != nil {
						t.Fatal(err)
					}
					assertExplanationsEqual(t, live, cold,
						fmt.Sprintf("trial %d step %d", trial, step))
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestSessionReusesUnchangedTuples asserts the incremental-maintenance
// contract: an Explain after an update recomputes only the touched tuples,
// serving every untouched tuple's cached values map by reference.
func TestSessionReusesUnchangedTuples(t *testing.T) {
	d := NewDatabase()
	d.CreateRelation("R", "a", "b")
	d.CreateRelation("S", "a", "b")
	// Two disjoint join chains -> two answers with independent lineage.
	d.MustInsert("R", true, Int(1), Int(10))
	d.MustInsert("S", true, Int(10), Int(100))
	r2 := d.MustInsert("R", true, Int(2), Int(20))
	d.MustInsert("S", true, Int(20), Int(200))
	q, err := ParseQuery(`q(x) :- R(x, y), S(y, z)`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(d, q, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	first, err := s.Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 2 {
		t.Fatalf("%d answers, want 2", len(first))
	}

	// With no updates, every tuple is served from cache.
	again, err := s.Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if !sameValues(first[i].Values, again[i].Values) {
			t.Errorf("tuple %v recomputed with no updates in between", first[i].Tuple)
		}
	}

	// Deleting a fact of answer 2's lineage leaves answer 1's cache intact.
	if err := s.Delete(r2.ID); err != nil {
		t.Fatal(err)
	}
	after, err := s.Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 {
		t.Fatalf("%d answers after delete, want 1", len(after))
	}
	if !after[0].Tuple.Equal(first[0].Tuple) {
		t.Fatalf("surviving tuple %v, want %v", after[0].Tuple, first[0].Tuple)
	}
	if !sameValues(first[0].Values, after[0].Values) {
		t.Error("untouched tuple was recomputed by an unrelated delete")
	}
}

// sameValues reports whether two Values maps are the same map (reference
// identity — the session serves cached explanations without copying).
func sameValues(a, b Values) bool {
	if len(a) != len(b) || len(a) == 0 {
		return len(a) == len(b)
	}
	for f := range a {
		pa, pb := a[f], b[f]
		return pa == pb // same *big.Rat pointer
	}
	return false
}

// TestSessionSurvivesOutOfBandMutation: mutating the Database directly
// (not through the session) must not produce stale explanations — the
// session detects the epoch mismatch and re-grounds.
func TestSessionSurvivesOutOfBandMutation(t *testing.T) {
	d := NewDatabase()
	d.CreateRelation("R", "a", "b")
	d.CreateRelation("S", "a", "b")
	d.MustInsert("R", true, Int(1), Int(10))
	d.MustInsert("S", true, Int(10), Int(100))
	q, err := ParseQuery(`q(x) :- R(x, y), S(y, z)`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(d, q, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Explain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Out-of-band: a second chain appears without the session being told.
	d.MustInsert("R", true, Int(2), Int(20))
	d.MustInsert("S", true, Int(20), Int(200))
	live, err := s.Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Explain(context.Background(), d, q, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	assertExplanationsEqual(t, live, cold, "after out-of-band insert")
}

func TestSessionClosedErrors(t *testing.T) {
	d := NewDatabase()
	d.CreateRelation("R", "a")
	d.MustInsert("R", true, Int(1))
	q, err := ParseQuery(`q(x) :- R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(d, q, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Explain(context.Background()); err != ErrSessionClosed {
		t.Errorf("Explain on closed session: %v, want ErrSessionClosed", err)
	}
	if _, err := s.Insert("R", true, Int(2)); err != ErrSessionClosed {
		t.Errorf("Insert on closed session: %v, want ErrSessionClosed", err)
	}
	if err := s.Delete(1); err != ErrSessionClosed {
		t.Errorf("Delete on closed session: %v, want ErrSessionClosed", err)
	}
	if err := s.Close(); err != ErrSessionClosed {
		t.Errorf("double Close: %v, want ErrSessionClosed", err)
	}
}

func TestSessionDeleteUnknownFact(t *testing.T) {
	d := NewDatabase()
	d.CreateRelation("R", "a")
	d.MustInsert("R", true, Int(1))
	q, err := ParseQuery(`q(x) :- R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(d, q, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Delete(999); err == nil {
		t.Error("Delete of an unknown fact succeeded, want error")
	}
}

func TestOptionsValidation(t *testing.T) {
	d := NewDatabase()
	d.CreateRelation("R", "a")
	d.MustInsert("R", true, Int(1))
	q, err := ParseQuery(`q(x) :- R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		opts Options
		want string // substring of the error
	}{
		{Options{Timeout: -time.Second}, "Timeout"},
		{Options{MaxNodes: -1}, "MaxNodes"},
		{Options{Workers: -1}, "Workers"},
		{Options{CompileWorkers: -2}, "CompileWorkers"},
		{Options{CacheSize: -2}, "CacheSize"},
		{Options{Strategy: ShapleyStrategy(99)}, "Strategy"},
		{Options{Storage: "lsm"}, "Storage"},
		{Options{IndexBudget: -1}, "IndexBudget"},
	}
	for _, tc := range cases {
		if _, err := Explain(context.Background(), d, q, tc.opts); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Explain(%+v) error = %v, want mention of %q", tc.opts, err, tc.want)
		}
		if _, err := Open(d, q, tc.opts); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Open(%+v) error = %v, want mention of %q", tc.opts, err, tc.want)
		}
	}
	// The documented sentinels stay valid.
	for _, opts := range []Options{
		{CompileWorkers: -1, CacheSize: -1},
		{Storage: BackendSorted, IndexBudget: 4},
		{Storage: BackendMemory},
		{},
	} {
		if err := opts.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", opts, err)
		}
	}
}

// TestSessionFlightsUpdateStory replays the paper's running example as an
// interactive session: delete the direct JFK→CDG flight, check the
// explanation shifts, re-insert it, and check the original values return.
func TestSessionFlightsUpdateStory(t *testing.T) {
	d := NewDatabase()
	d.CreateRelation("Flights", "src", "dst")
	d.CreateRelation("Airports", "name", "country")
	var direct *Fact
	for _, f := range [][2]string{
		{"JFK", "CDG"}, {"EWR", "LHR"}, {"BOS", "LHR"}, {"LHR", "CDG"},
		{"LHR", "ORY"}, {"LAX", "MUC"}, {"MUC", "ORY"}, {"LHR", "MUC"},
	} {
		fact := d.MustInsert("Flights", true, String(f[0]), String(f[1]))
		if f[0] == "JFK" {
			direct = fact
		}
	}
	for _, a := range [][2]string{
		{"JFK", "USA"}, {"EWR", "USA"}, {"BOS", "USA"}, {"LAX", "USA"},
		{"LHR", "EN"}, {"MUC", "GR"}, {"ORY", "FR"}, {"CDG", "FR"},
	} {
		d.MustInsert("Airports", false, String(a[0]), String(a[1]))
	}
	q, err := ParseQuery(`
		q() :- Flights(x, y), Airports(x, 'USA'), Airports(y, 'FR')
		q() :- Flights(x, z), Flights(z, y), Airports(x, 'USA'), Airports(y, 'FR')`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(d, q, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	baseline, err := s.Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) != 1 || baseline[0].Method != MethodExact {
		t.Fatalf("baseline: %d answers, method %v", len(baseline), baseline[0].Method)
	}
	// The direct flight is the paper's top contributor (43/105).
	if got := baseline[0].Values[direct.ID].RatString(); got != "43/105" {
		t.Fatalf("direct flight value %s, want 43/105", got)
	}

	if err := s.Delete(direct.ID); err != nil {
		t.Fatal(err)
	}
	without, err := s.Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(without) != 1 {
		t.Fatalf("query should still hold without the direct flight")
	}
	if _, ok := without[0].Values[direct.ID]; ok {
		t.Error("deleted fact still has a Shapley value")
	}
	cold, err := Explain(context.Background(), d, q, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	assertExplanationsEqual(t, without, cold, "after deleting the direct flight")

	// Re-insert (new fact ID) and check the game is isomorphic to the
	// baseline: the new direct flight takes over the 43/105 contribution.
	reinserted, err := s.Insert("Flights", true, String("JFK"), String("CDG"))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := s.Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := restored[0].Values[reinserted.ID].RatString(); got != "43/105" {
		t.Fatalf("re-inserted direct flight value %s, want 43/105", got)
	}
	if len(restored[0].Values) != len(baseline[0].Values) {
		t.Fatalf("restored game has %d facts, baseline %d",
			len(restored[0].Values), len(baseline[0].Values))
	}
}
