// Package repro is a from-scratch Go implementation of "Computing the
// Shapley Value of Facts in Query Answering" (Deutch, Frost, Kimelfeld,
// Monet; SIGMOD 2022). It quantifies the contribution of each database fact
// to a query answer using the game-theoretic Shapley value.
//
// The package is a facade over the internal implementation:
//
//   - an in-memory relational engine evaluating SPJU queries (unions of
//     conjunctive queries with filters) with Boolean provenance capture,
//   - a knowledge compiler from CNF to deterministic decomposable circuits
//     (d-DNNF), standing in for the c2d compiler,
//   - the paper's Algorithm 1 (exact Shapley values from d-DNNF circuits
//     via the #SAT_k dynamic program), CNF Proxy (Algorithm 2), the
//     Shapley-to-probabilistic-query-evaluation reduction
//     (Proposition 3.1), Monte Carlo and Kernel SHAP baselines, and the
//     hybrid exact-with-timeout strategy of Section 6.3.
//
// Basic usage:
//
//	d := repro.NewDatabase()
//	d.CreateRelation("Flights", "src", "dst")
//	d.MustInsert("Flights", true, repro.String("JFK"), repro.String("CDG"))
//	...
//	q, _ := repro.ParseQuery(`q() :- Flights(x, y), Airports(y, 'FR')`)
//	answers, _ := repro.Explain(context.Background(), d, q, repro.Options{})
//	for _, a := range answers {
//	    fmt.Println(a.Tuple, a.TopFacts(3))
//	}
package repro

import (
	"context"
	"fmt"
	"math/big"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/dnnf"
	"repro/internal/pqe"
	"repro/internal/query"
)

// Re-exported data-model types. These aliases make the facade self-contained
// for in-module consumers (commands, examples, benchmarks).
type (
	// Database is an in-memory relational database of endogenous and
	// exogenous facts.
	Database = db.Database
	// Fact is one tuple of a relation with its provenance identity.
	Fact = db.Fact
	// FactID identifies a fact and doubles as its provenance variable.
	FactID = db.FactID
	// Tuple is an ordered list of values.
	Tuple = db.Tuple
	// Value is a typed constant (int, float, or string).
	Value = db.Value
	// Query is a union of conjunctive queries with filters (SPJU).
	Query = query.UCQ
	// Values maps facts to exact Shapley values (big.Rat).
	Values = core.Values
	// ProxyValues maps facts to CNF Proxy scores.
	ProxyValues = core.ProxyValues
)

// Value constructors, re-exported.
var (
	Int    = db.Int
	Float  = db.Float
	String = db.String
)

// Sentinel errors for client-addressable failure modes, re-exported:
// every mutation-path error wraps one of these (errors.Is), so callers —
// the HTTP service's status mapping, for one — classify failures without
// matching message text.
var (
	ErrUnknownRelation = db.ErrUnknownRelation
	ErrNoFact          = db.ErrNoFact
	ErrArity           = db.ErrArity
	// ErrDegraded wraps every mutation refused because a storage failure
	// moved the database to read-only degraded mode (Database.Err carries
	// the original failure). The HTTP service maps it to 503.
	ErrDegraded = db.ErrDegraded
)

// Durability knobs for persistent sorted databases, re-exported.
type (
	// SyncPolicy says when the write-ahead log is fsynced relative to
	// mutation acknowledgements (see db.SyncPolicy for the contract).
	SyncPolicy = db.SyncPolicy
	// RecoveryInfo reports what OpenDatabaseInfo recovered and dropped.
	RecoveryInfo = db.RecoveryInfo
)

// Sync modes for SyncPolicy.Mode.
const (
	// SyncEveryN fsyncs after every N appended records (the default, with
	// N = db.DefaultSyncEvery when unset).
	SyncEveryN = db.SyncEveryN
	// SyncAlways fsyncs before acknowledging each mutation: no acknowledged
	// write is ever lost to a crash.
	SyncAlways = db.SyncAlways
	// SyncOnClose fsyncs only at Close and snapshot boundaries.
	SyncOnClose = db.SyncOnClose
)

// ParseSyncPolicy parses "always", "onclose", "every", or "every=N".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return db.ParseSyncPolicy(s) }

// Storage backend names for Options.Storage and NewDatabaseOn.
const (
	// BackendMemory is the default in-memory backend: facts in insertion
	// order, lazily built hash indexes per join pattern.
	BackendMemory = db.BackendMemory
	// BackendSorted keeps each relation in a B-tree ordered by a
	// sort-preserving tuple encoding, with optional persistence to a
	// directory (see NewDatabaseOn and OpenDatabase).
	BackendSorted = db.BackendSorted
)

// Backends returns the available storage backend names.
func Backends() []string { return db.Backends() }

// NewDatabase returns an empty database.
func NewDatabase() *Database { return db.New() }

// NewDatabaseOn returns an empty database on the named storage backend
// ("" or BackendMemory for the default, BackendSorted for ordered
// storage). A non-empty dir makes a sorted database persistent: every
// schema change and mutation is logged under dir, and OpenDatabase
// reloads it.
func NewDatabaseOn(backend, dir string) (*Database, error) {
	return db.NewOnBackend(backend, dir)
}

// OpenDatabase reloads a database persisted by NewDatabaseOn(BackendSorted,
// dir): facts keep their IDs and endogenous flags, and the database resumes
// logging to the same directory. Close it to flush the log.
func OpenDatabase(dir string) (*Database, error) { return db.OpenSorted(dir) }

// OpenDatabaseInfo is OpenDatabase with the recovery report: how many
// snapshot and log records were replayed, and whether a torn log tail was
// truncated (how many bytes a crash cost). sync sets the reopened
// database's WAL sync policy (zero value = the default EveryN).
func OpenDatabaseInfo(dir string, sync SyncPolicy) (*Database, RecoveryInfo, error) {
	return db.OpenSortedConfig(db.SortedConfig{Dir: dir, Sync: sync})
}

// DatabasePersisted reports whether dir holds a dataset persisted by a
// previous run, i.e. whether OpenDatabase would restore any state from it.
func DatabasePersisted(dir string) bool { return db.Persisted(dir) }

// ParseQuery parses a datalog-style UCQ; see internal/query for the syntax.
func ParseQuery(text string) (*Query, error) { return query.Parse(text) }

// Method identifies which algorithm produced an explanation.
type Method = core.Method

// ShapleyStrategy selects the Algorithm 1 evaluation mode.
type ShapleyStrategy = core.ShapleyStrategy

// Algorithm 1 evaluation strategies.
const (
	// StrategyAuto picks gradient mode when n·|C| is large, per-fact
	// otherwise. This is the default.
	StrategyAuto = core.StrategyAuto
	// StrategyPerFact conditions the circuit twice per fact (the literal
	// Algorithm 1, O(n·|C|·n²) total).
	StrategyPerFact = core.StrategyPerFact
	// StrategyGradient computes all facts' conditioned counts in two
	// circuit passes (O(|C|·n²) total).
	StrategyGradient = core.StrategyGradient
)

// ParseShapleyStrategy parses "auto", "per-fact", or "gradient".
func ParseShapleyStrategy(s string) (ShapleyStrategy, error) {
	return core.ParseShapleyStrategy(s)
}

// Explanation methods.
const (
	// MethodExact means exact Shapley values were computed via knowledge
	// compilation and Algorithm 1.
	MethodExact = core.MethodExact
	// MethodProxy means the exact computation exceeded its budget and the
	// ranking was produced by the CNF Proxy heuristic.
	MethodProxy = core.MethodProxy
	// MethodApprox means an explain budget was exhausted (or approximation
	// requested outright) and the values are Monte Carlo estimates with 95%
	// confidence intervals.
	MethodApprox = core.MethodApprox
)

// Anytime-tier types, re-exported: a per-request compute budget and the
// sampled estimate it degrades to when exceeded.
type (
	// ExplainBudget bounds one explanation's exact attempt and configures
	// the sampling fallback; see core.ExplainBudget.
	ExplainBudget = core.ExplainBudget
	// ExplainMode picks the degradation policy (auto, exact, approximate).
	ExplainMode = core.ExplainMode
	// Estimate is one fact's sampled Shapley value with 95% CI bounds.
	Estimate = core.Estimate
)

// Explain modes for ExplainBudget.Mode.
const (
	// ModeAuto tries exact within the budget and samples on exhaustion.
	ModeAuto = core.ModeAuto
	// ModeExact disables the sampling fallback (proxy degradation as before).
	ModeExact = core.ModeExact
	// ModeApproximate skips the exact attempt and samples immediately.
	ModeApproximate = core.ModeApproximate
)

// ParseExplainMode parses "auto" (or ""), "exact", or "approximate".
func ParseExplainMode(s string) (ExplainMode, error) { return core.ParseExplainMode(s) }

// Options configures Explain.
type Options struct {
	// Timeout is the per-output-tuple budget for the exact computation
	// before falling back to CNF Proxy. Zero disables the fallback (exact
	// runs unbounded), mirroring the paper's recommended hybrid with
	// t = 2.5s when set.
	Timeout time.Duration
	// MaxNodes bounds the compiled circuit size (memory-exhaustion
	// analogue); zero means unbounded.
	MaxNodes int
	// Workers bounds the pipeline's total concurrency: output tuples are
	// explained in parallel, and leftover workers fan out Algorithm 1's
	// per-fact loop within each tuple. Zero (the default) means GOMAXPROCS;
	// 1 forces the fully serial pipeline. Results are identical — and
	// identically ordered — for every setting. Negative values are invalid.
	Workers int
	// CompileWorkers bounds the knowledge compiler's intra-compilation
	// fan-out: independent connected components of each CNF compile
	// concurrently. Zero (the default) inherits the per-tuple share of the
	// Workers budget, so the pipeline never oversubscribes; -1 means
	// GOMAXPROCS; ≥ 1 is taken as-is (1 = the sequential compiler). Other
	// negative values are invalid.
	CompileWorkers int
	// Speculate compiles the two cofactors of shallow Shannon decisions
	// concurrently inside the knowledge compiler. Connected components only
	// split after unit propagation and top-level Tseytin lineages are
	// single-component, so without speculation the compiler's fan-out stalls
	// exactly on the hardest instances. Inert when the compiler runs with
	// one worker; results are identical for every setting.
	Speculate bool
	// Portfolio races the same CNF under the compiler's variable-ordering
	// heuristics (the configured order plus the dynamic alternatives) when
	// at least two compile workers are available; the first finisher wins
	// and its circuit enters the canonical compilation cache, so a win on
	// any heuristic is amortized across renamed-isomorphic lineages.
	Portfolio bool
	// CacheSize sizes the process-wide d-DNNF compilation cache (number of
	// compiled circuits retained across Explain calls). Zero means the
	// default size; -1 disables cross-call caching. Other negative values
	// are invalid.
	CacheSize int
	// NoCanonicalCache keys the compilation cache by the byte-identical
	// CNF rather than its rename-invariant canonical form. By default,
	// output tuples whose provenance is isomorphic modulo variable renaming
	// (the common shape of multi-tuple query answers) share one compiled
	// circuit; this toggle is the ablation that restores exact-match-only
	// caching.
	NoCanonicalCache bool
	// Strategy selects the Algorithm 1 evaluation mode. The default,
	// StrategyAuto, runs the two-pass gradient algorithm when the circuit
	// and fact count are large enough for its factor-n advantage to matter
	// and the literal per-fact algorithm otherwise; both produce identical
	// exact values.
	Strategy ShapleyStrategy
	// Storage names the storage backend for databases built from these
	// options ("" or BackendMemory for in-memory, BackendSorted for ordered
	// storage). Sessions evaluate over whatever backend their database
	// already uses; Storage is validated here so services and CLIs that
	// construct databases from an Options value (internal/server, shapleyd)
	// reject a typoed backend name at the API boundary.
	Storage string
	// IndexBudget bounds the lazily built secondary join indexes each
	// relation keeps, one per (relation, bound-positions) lookup pattern.
	// Zero keeps the backend's default; lookups past the budget fall back
	// to filtered scans (correct, just slower). Negative values are
	// invalid — use a large budget rather than "unbounded" to keep
	// adversarial query mixes from holding an index per pattern.
	IndexBudget int
	// Budget is the anytime tier's per-request compute budget: when Enabled,
	// an explanation whose exact attempt exceeds Budget.MaxNodes or
	// Budget.Deadline degrades to Monte Carlo estimates with 95% confidence
	// intervals (MethodApprox) instead of failing or falling to the proxy,
	// and Budget.Mode == ModeApproximate skips the exact attempt entirely.
	// The zero budget changes nothing. Session.ExplainWithBudget overrides
	// it per call.
	Budget ExplainBudget
	// StageObserver, when non-nil, receives the name and wall-clock duration
	// of pipeline stages that run outside any request trace: a session's
	// open-time grounding and its background exact upgrades ("upgrade" plus
	// the nested exact stages). Stages running under a request's trace
	// collector (see internal/trace) report through that collector's observer
	// instead, so nothing is double-counted. Must be safe for concurrent use.
	StageObserver func(stage string, d time.Duration)
}

// Validate checks the options for values no pipeline configuration accepts
// and returns a descriptive error for the first offender. Explain and Open
// call it up front, so misconfiguration surfaces at the API boundary
// instead of being silently clamped deep in the pipeline. The documented
// sentinels (CompileWorkers == -1 for GOMAXPROCS, CacheSize == -1 to
// disable caching) remain valid.
func (o Options) Validate() error {
	switch {
	case o.Timeout < 0:
		return fmt.Errorf("repro: Options.Timeout is negative (%v); use 0 to disable the proxy fallback", o.Timeout)
	case o.MaxNodes < 0:
		return fmt.Errorf("repro: Options.MaxNodes is negative (%d); use 0 for an unbounded circuit", o.MaxNodes)
	case o.Workers < 0:
		return fmt.Errorf("repro: Options.Workers is negative (%d); use 0 for GOMAXPROCS or 1 for the serial pipeline", o.Workers)
	case o.CompileWorkers < -1:
		return fmt.Errorf("repro: Options.CompileWorkers = %d is invalid; use 0 to inherit the per-tuple share, -1 for GOMAXPROCS, or a positive count", o.CompileWorkers)
	case o.CacheSize < -1:
		return fmt.Errorf("repro: Options.CacheSize = %d is invalid; use 0 for the default capacity, -1 to disable caching, or a positive capacity", o.CacheSize)
	case o.IndexBudget < 0:
		return fmt.Errorf("repro: Options.IndexBudget is negative (%d); use 0 for the backend default or a positive per-relation cap", o.IndexBudget)
	}
	if !db.KnownBackend(o.Storage) {
		return fmt.Errorf("repro: Options.Storage = %q is not a known backend (known: %v)", o.Storage, db.Backends())
	}
	switch o.Strategy {
	case StrategyAuto, StrategyPerFact, StrategyGradient:
	default:
		return fmt.Errorf("repro: Options.Strategy = %d is not a known ShapleyStrategy (use StrategyAuto, StrategyPerFact, or StrategyGradient)", o.Strategy)
	}
	return ValidateBudget(o.Budget)
}

// ValidateBudget checks an anytime-tier budget for values no configuration
// accepts, in the same style as Options.Validate. Options.Validate and the
// per-call Session.ExplainWithBudget both run it, so a nonsensical budget is
// rejected at the API boundary whichever way it arrives.
func ValidateBudget(b ExplainBudget) error {
	switch {
	case b.MaxNodes < 0:
		return fmt.Errorf("repro: Options.Budget.MaxNodes is negative (%d); use 0 to defer to Options.MaxNodes", b.MaxNodes)
	case b.Deadline < 0:
		return fmt.Errorf("repro: Options.Budget.Deadline is negative (%v); use 0 for no per-request deadline", b.Deadline)
	case b.MinSamples < 0:
		return fmt.Errorf("repro: Options.Budget.MinSamples is negative (%d); use 0 for the sampler's default permutation floor", b.MinSamples)
	case b.TargetCI != 0 && (b.TargetCI <= 0 || b.TargetCI >= 1):
		return fmt.Errorf("repro: Options.Budget.TargetCI = %g is outside (0, 1); use 0 for the default 95%%-CI half-width target", b.TargetCI)
	}
	switch b.Mode {
	case ModeAuto, ModeExact, ModeApproximate:
	default:
		return fmt.Errorf("repro: Options.Budget.Mode = %d is not a known ExplainMode (use ModeAuto, ModeExact, or ModeApproximate)", b.Mode)
	}
	return nil
}

// TupleExplanation is the result for one output tuple: either exact Shapley
// values or proxy scores, plus the derived fact ranking.
type TupleExplanation struct {
	// Tuple is the output tuple being explained.
	Tuple Tuple
	// Method says whether Values (exact) or Proxy scores were produced.
	Method Method
	// Values holds exact Shapley values per endogenous fact (nil when
	// Method == MethodProxy).
	Values Values
	// Proxy holds CNF Proxy scores (nil when Method == MethodExact).
	Proxy ProxyValues
	// Approx holds sampled estimates with 95% CI bounds (nil unless
	// Method == MethodApprox).
	Approx map[FactID]Estimate
	// Samples is how many permutations the sampler spent (MethodApprox
	// only); ApproxSeed reproduces the run.
	Samples    int
	ApproxSeed int64
	// DegradedCause says why a budgeted explanation degraded to MethodApprox
	// ("mode", "node_budget", "deadline", or "error"); empty otherwise.
	DegradedCause string
	// Ranking lists the endogenous facts of the tuple's provenance by
	// decreasing contribution.
	Ranking []FactID
	// NumFacts is the number of distinct endogenous facts in the lineage.
	NumFacts int
	// Elapsed is the wall-clock cost of explaining this tuple.
	Elapsed time.Duration
}

// TopFacts returns the k highest-contributing facts.
func (e *TupleExplanation) TopFacts(k int) []FactID {
	if k > len(e.Ranking) {
		k = len(e.Ranking)
	}
	return e.Ranking[:k]
}

// Score returns the fact's contribution as a float: the exact Shapley value
// under MethodExact, the sampled estimate under MethodApprox, the proxy
// score otherwise.
func (e *TupleExplanation) Score(f FactID) float64 {
	switch e.Method {
	case MethodExact:
		v, _ := e.Values[f].Float64()
		return v
	case MethodApprox:
		return e.Approx[f].Value
	}
	v, _ := e.Proxy[f].Float64()
	return v
}

// sharedCache is the process-wide cross-call compilation cache behind
// Options.CacheSize. Lazily created on first use; later calls asking for a
// larger size grow it in place so concurrent users keep their working sets.
var (
	sharedCacheMu sync.Mutex
	sharedCache   *dnnf.CompileCache
)

func compileCache(size int) *dnnf.CompileCache {
	if size < 0 {
		return nil
	}
	sharedCacheMu.Lock()
	defer sharedCacheMu.Unlock()
	if sharedCache == nil {
		sharedCache = dnnf.NewCompileCache(size)
	} else if size > 0 {
		sharedCache.Grow(size)
	}
	return sharedCache
}

// CompileCacheStats returns a snapshot of the process-wide compiled-circuit
// cache counters — the cache every session with CacheSize ≥ 0 shares — or a
// zero snapshot if no session or Explain call has created it yet. The
// explanation service surfaces this at GET /v1/stats next to its
// session-pool counters.
func CompileCacheStats() dnnf.CacheStats {
	sharedCacheMu.Lock()
	defer sharedCacheMu.Unlock()
	if sharedCache == nil {
		return dnnf.CacheStats{}
	}
	return sharedCache.Stats()
}

// Explain evaluates the query over the database and explains every output
// tuple: it computes, for each endogenous fact appearing in the tuple's
// provenance, its exact Shapley value (or, past the time budget, its CNF
// Proxy score). This is the end-to-end pipeline of Figure 3 combined with
// the Section 6.3 hybrid strategy.
//
// Explain is the one-shot form of the stateful API: it opens a Session,
// explains every tuple once, and closes the session. Callers that ask the
// same question repeatedly — or that update the database between questions
// — should hold a Session open instead, which maintains lineage and
// compiled artifacts incrementally across calls.
//
// Output tuples are explained concurrently across opts.Workers goroutines
// (each answer's lineage is independent of the others), with the slice
// returned in query-evaluation order regardless of completion order.
// Cancelling ctx aborts the remaining work and returns the context's error.
func Explain(ctx context.Context, d *Database, q *Query, opts Options) ([]TupleExplanation, error) {
	s, err := OpenContext(ctx, d, q, opts)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Explain(ctx)
}

// ExplainBoolean explains a Boolean query's positive answer. It returns an
// error if the query is non-Boolean; a query that is false on the full
// database yields an explanation with no facts.
func ExplainBoolean(ctx context.Context, d *Database, q *Query, opts Options) (*TupleExplanation, error) {
	if !q.IsBoolean() {
		return nil, fmt.Errorf("repro: query has arity %d, want Boolean", q.Arity())
	}
	es, err := Explain(ctx, d, q, opts)
	if err != nil {
		return nil, err
	}
	if len(es) == 0 {
		return &TupleExplanation{Method: MethodExact, Values: Values{}}, nil
	}
	return &es[0], nil
}

// ShapleyViaProbabilisticDB computes exact Shapley values for a Boolean
// query using only probabilistic-query-evaluation oracle calls, per the
// reduction of Proposition 3.1. It is slower than Explain but demonstrates
// (and cross-checks) the theoretical connection to probabilistic databases.
func ShapleyViaProbabilisticDB(ctx context.Context, d *Database, q *Query) (Values, error) {
	return pqe.ShapleyViaPQE(ctx, d, q, dnnf.Options{})
}

// Hierarchical reports whether every disjunct of the query is hierarchical.
// For self-join-free conjunctive queries this is exactly the class for
// which Shapley computation (and PQE) is tractable in the worst case; the
// knowledge-compilation pipeline frequently succeeds well beyond it.
func Hierarchical(q *Query) bool {
	for _, d := range q.Disjuncts {
		if !d.IsHierarchical() {
			return false
		}
	}
	return true
}

// EfficiencySum returns Σ_f values[f]; by the Shapley efficiency axiom it
// equals q(Dn ∪ Dx) − q(Dx) for the explained tuple's Boolean game.
func EfficiencySum(v Values) *big.Rat { return v.Sum() }

func lineageEndo(lineage *circuit.Node) []FactID {
	vars := circuit.Vars(lineage)
	out := make([]FactID, len(vars))
	for i, v := range vars {
		out[i] = FactID(v)
	}
	return out
}
