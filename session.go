package repro

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/dnnf"
	"repro/internal/engine"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// ErrSessionClosed is returned by every method of a closed Session.
var ErrSessionClosed = errors.New("repro: session is closed")

// Session is a long-lived explanation engine over one database and one
// query, built for the paper's interactive workload: an analyst asks "why
// this tuple?" repeatedly against a database that changes between
// questions. Where the one-shot Explain re-grounds the query, rebuilds
// lineage, and recompiles circuits from scratch on every call, a Session
// grounds once at Open and then delta-maintains every per-stage artifact
// under updates:
//
//   - Insert delta-joins only the bindings involving the new fact
//     (engine.EvalDelta) and splices the new derivations into the affected
//     answers' lineage;
//   - Delete drops exactly the derivations supported by the removed fact
//     via a fact→derivation index, and evicts from the compilation cache
//     only circuits whose lineage actually mentions it;
//   - Explain recomputes only the tuples whose lineage epoch advanced —
//     each tuple's Tseytin CNF, compiled d-DNNF, Shapley values, and final
//     explanation are cached per lineage epoch (core.Artifacts) and reused
//     verbatim while the tuple's provenance is unchanged.
//
// After any update sequence, Explain returns exactly what a cold Explain on
// the mutated database would: the same tuples, methods, rankings, and
// big.Rat-identical Shapley values.
//
// Updates routed through the Session are maintained incrementally. The
// Session also tolerates out-of-band mutations of the underlying Database:
// it records the database epoch it is synchronized to and, on finding the
// database ahead (someone called Database.Insert/Delete directly), falls
// back to re-grounding from scratch — correct, just not incremental.
//
// # Concurrency contract
//
// A Session is safe for concurrent use: Explain, Insert, Delete, Apply,
// NumAnswers, Stats, CacheStats, and Close may all be called from multiple
// goroutines at once. Methods serialize on an internal lock — at most one
// of them mutates or reads session state at a time — while the per-tuple
// explanation work inside one Explain call still fans out across
// Options.Workers goroutines. Concurrent calls are applied in some
// serialization order, and every call observes a state reachable by a
// serial execution of the same calls; results are big.Rat-identical to
// that serial execution (see TestSessionConcurrentHammerMatchesSerial).
// Returned explanations share cached Shapley value maps across calls and
// must be treated as read-only.
//
// The contract covers one session's methods. The underlying Database is
// NOT itself synchronized: callers that share one Database across several
// sessions (or mutate it out-of-band) must serialize database writes
// against all sessions' reads themselves — internal/server does this with
// a per-database reader/writer lock.
type Session struct {
	mu     sync.Mutex
	d      *Database
	q      *Query
	opts   Options
	cb     *circuit.Builder
	inc    *engine.Incremental
	cache  *dnnf.CompileCache
	epoch  uint64 // db.Epoch() the session state reflects
	tuples map[string]*sessionTuple
	closed bool

	// Background exact-upgrade machinery (see ExplainWithBudget): a tuple
	// answered approximately keeps its lineage, and one bounded background
	// slot opportunistically finishes the exact computation so subsequent
	// explains of the tuple serve exact values. bgCtx is cancelled at Close,
	// aborting any in-flight upgrade; bgSlot (capacity 1) bounds the
	// concurrent background work; upgrading dedupes per-tuple scheduling
	// (guarded by mu).
	bgCtx     context.Context
	bgStop    context.CancelFunc
	bgSlot    chan struct{}
	upgrading map[string]bool

	// Lifetime counters behind Stats (guarded by mu).
	grounds  int64
	inserts  int64
	deletes  int64
	explains int64
	approxes int64
	upgrades int64
}

// sessionTuple carries one output tuple's cached pipeline state across
// Explain calls: the per-stage artifacts and the finished explanation, each
// valid for the lineage epoch they were computed at. upFailed records that a
// background exact upgrade already failed at upFailEpoch, so the scheduler
// does not retry until the lineage changes.
type sessionTuple struct {
	epoch uint64
	art   *core.Artifacts
	expl  *TupleExplanation

	upFailed    bool
	upFailEpoch uint64
}

// Open validates the options, evaluates the query once (grounding + lineage
// construction), and returns a session ready to Explain and to absorb
// updates. The database is captured by reference: route updates through
// Session.Insert / Session.Delete to get incremental maintenance.
func Open(d *Database, q *Query, opts Options) (*Session, error) {
	return OpenContext(context.Background(), d, q, opts)
}

// OpenContext is Open under the caller's context: the open-time grounding is
// recorded on ctx's stage trace when one is collecting (the context is used
// for observability only; grounding runs to completion regardless).
func OpenContext(ctx context.Context, d *Database, q *Query, opts Options) (*Session, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	s := &Session{
		d:         d,
		q:         q,
		opts:      opts,
		cache:     compileCache(opts.CacheSize),
		bgSlot:    make(chan struct{}, 1),
		upgrading: make(map[string]bool),
	}
	s.bgCtx, s.bgStop = context.WithCancel(context.Background())
	if err := s.ground(ctx); err != nil {
		s.bgStop()
		return nil, err
	}
	return s, nil
}

// observe reports one out-of-trace stage duration to Options.StageObserver.
// Stages running under a request trace report through the trace's own
// observer (the span End does it), so callers only use observe when
// trace.Active(ctx) is false.
func (s *Session) observe(stage string, d time.Duration) {
	if s.opts.StageObserver != nil {
		s.opts.StageObserver(stage, d)
	}
}

// ground (re)builds the session's evaluation state from the current
// database, dropping all cached artifacts. Callers hold s.mu (or own s
// exclusively, as Open does). The grounding is recorded on ctx's trace when
// one is collecting (the engine opens the "ground" span) and reported to
// Options.StageObserver otherwise.
func (s *Session) ground(ctx context.Context) error {
	start := time.Now()
	if s.opts.IndexBudget > 0 {
		s.d.SetIndexBudget(s.opts.IndexBudget)
	}
	s.cb = circuit.NewBuilder()
	inc, err := engine.NewIncremental(ctx, s.d, s.q, s.cb, engine.Options{Mode: engine.ModeEndogenous})
	if err != nil {
		return err
	}
	if !trace.Active(ctx) {
		s.observe("ground", time.Since(start))
	}
	s.inc = inc
	s.tuples = make(map[string]*sessionTuple)
	s.epoch = s.d.Epoch()
	s.grounds++
	return nil
}

// sync re-grounds if the database was mutated out-of-band since the session
// last saw it. Callers hold s.mu.
func (s *Session) sync(ctx context.Context) error {
	if s.d.Epoch() == s.epoch {
		return nil
	}
	return s.ground(ctx)
}

// Mutation describes one fact-level update for Apply: an insertion
// (Insert == true; Relation, Endogenous, and Values describe the new fact)
// or a deletion (Insert == false; ID names the fact to remove). Build them
// with InsertOp and DeleteOp.
type Mutation struct {
	Insert     bool
	Relation   string
	Endogenous bool
	Values     []Value
	ID         FactID
}

// MutationError is the error Apply returns for a failing mutation: it
// carries the index of the offender so batching layers (the service's
// update coalescer) can attribute the failure to the request that owns the
// mutation instead of failing every coalesced neighbor. It unwraps to the
// underlying cause, so errors.Is classification (db.ErrUnknownRelation,
// db.ErrNoFact, db.ErrArity) sees through it.
type MutationError struct {
	// Index is the failing mutation's position in the Apply batch; every
	// mutation before it was applied, none after it was.
	Index int
	Err   error
}

func (e *MutationError) Error() string {
	return fmt.Sprintf("repro: mutation %d: %v", e.Index, e.Err)
}

func (e *MutationError) Unwrap() error { return e.Err }

// InsertOp returns the Mutation inserting a new fact, mirroring
// Database.Insert's parameters.
func InsertOp(relation string, endogenous bool, values ...Value) Mutation {
	return Mutation{Insert: true, Relation: relation, Endogenous: endogenous, Values: values}
}

// DeleteOp returns the Mutation deleting the fact with the given ID.
func DeleteOp(id FactID) Mutation {
	return Mutation{ID: id}
}

// Apply applies the mutations in order under a single lock acquisition and
// delta-maintains the session's answers for all of them, with one batched
// compilation-cache invalidation covering every deleted endogenous fact.
// It is the bulk form of Insert and Delete: a service coalescing many
// concurrent update requests into one application (see internal/server)
// pays the session synchronization and cache-invalidation cost once per
// batch instead of once per mutation.
//
// The returned slice is aligned with muts: the inserted *Fact for
// insertions, nil for deletions. Apply is not transactional — it stops at
// the first failing mutation and returns its error as a *MutationError
// naming the offender's index, with every earlier mutation applied and the
// session still consistent with the database.
func (s *Session) Apply(muts []Mutation) ([]*Fact, error) {
	return s.ApplyContext(context.Background(), muts)
}

// ApplyContext is Apply with a caller context. The context is used only for
// trace collection (each mutation's delta join is recorded under a "delta"
// span when ctx carries a collector); the application itself is not
// cancellable mid-batch — stopping between mutations would leave callers
// guessing which prefix applied for no failure of the batch itself.
func (s *Session) ApplyContext(ctx context.Context, muts []Mutation) ([]*Fact, error) {
	dctx, dsp := trace.Start(ctx, "delta")
	defer dsp.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	if err := s.sync(dctx); err != nil {
		return nil, err
	}
	out := make([]*Fact, len(muts))
	var invalidate []int
	defer func() {
		if len(invalidate) > 0 && s.cache != nil {
			s.cache.Invalidate(s.d.ID(), invalidate...)
		}
	}()
	inserts, deletes := 0, 0
	defer func() {
		dsp.Set("inserts", inserts)
		dsp.Set("deletes", deletes)
	}()
	for i, m := range muts {
		if m.Insert {
			f, err := s.d.Insert(m.Relation, m.Endogenous, m.Values...)
			if err != nil {
				return out, &MutationError{Index: i, Err: err}
			}
			if _, err := s.inc.Insert(dctx, f); err != nil {
				// The database advanced but the session did not: leave the
				// epochs mismatched so the next call re-grounds.
				return out, &MutationError{Index: i, Err: err}
			}
			out[i] = f
			s.inserts++
			inserts++
		} else {
			f := s.d.Fact(m.ID)
			if f == nil {
				return out, &MutationError{Index: i, Err: fmt.Errorf("db: %w with ID %d", db.ErrNoFact, m.ID)}
			}
			if err := s.d.Delete(m.ID); err != nil {
				return out, &MutationError{Index: i, Err: err}
			}
			s.inc.Delete(dctx, m.ID)
			if f.Endogenous {
				invalidate = append(invalidate, int(m.ID))
			}
			s.deletes++
			deletes++
		}
		s.epoch = s.d.Epoch()
	}
	return out, nil
}

// Insert adds a fact to the database (see Database.Insert) and
// delta-maintains the session's answers: only join bindings involving the
// new fact are evaluated, and only the output tuples whose lineage gained a
// derivation are re-explained by the next Explain call.
func (s *Session) Insert(relation string, endogenous bool, values ...Value) (*Fact, error) {
	fs, err := s.Apply([]Mutation{InsertOp(relation, endogenous, values...)})
	if err != nil {
		return nil, unwrapSingle(err)
	}
	return fs[0], nil
}

// Delete removes the fact with the given ID from the database (see
// Database.Delete) and delta-maintains the session's answers: exactly the
// derivations supported by the fact disappear, answers left without
// derivations leave the result, and compiled circuits whose lineage
// mentions the fact are evicted from the compilation cache. Circuits over
// other facts — including renamed-isomorphic cache entries serving other
// tuples — survive.
func (s *Session) Delete(id FactID) error {
	_, err := s.Apply([]Mutation{DeleteOp(id)})
	return unwrapSingle(err)
}

// unwrapSingle strips the MutationError wrapper for the one-mutation
// convenience methods, where "mutation 0" adds nothing.
func unwrapSingle(err error) error {
	var me *MutationError
	if errors.As(err, &me) {
		return me.Err
	}
	return err
}

// Explain returns the explanation of every current output tuple, exactly as
// the one-shot Explain would on the current database state, recomputing
// only tuples whose lineage changed since the previous call. Unchanged
// tuples are served from the session cache (including their Elapsed, which
// reports the cost of the original computation). It runs under the
// session's configured Options.Budget; see ExplainWithBudget.
func (s *Session) Explain(ctx context.Context) ([]TupleExplanation, error) {
	return s.ExplainWithBudget(ctx, s.opts.Budget)
}

// ExplainWithBudget is Explain under a per-call compute budget, overriding
// the session's Options.Budget. With the budget enabled, a tuple whose
// exact computation exceeds it is answered approximately (MethodApprox,
// sampled estimates with 95% confidence intervals) instead of erroring —
// and the session then schedules a background exact upgrade: one bounded
// background slot finishes the exact computation opportunistically
// (cancelled on Close), so subsequent explains of the same tuple serve the
// exact value.
//
// Cached approximate answers never leak into unbudgeted calls: a call whose
// budget is disabled recomputes any tuple whose cached explanation is
// approximate, so its results are indistinguishable from a session that
// never degraded.
func (s *Session) ExplainWithBudget(ctx context.Context, budget ExplainBudget) ([]TupleExplanation, error) {
	if err := ValidateBudget(budget); err != nil {
		return nil, err
	}
	budgeted := budget.Enabled()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	if err := s.sync(ctx); err != nil {
		return nil, err
	}
	live := s.inc.Live()
	if len(live) == 0 {
		return nil, ctx.Err()
	}

	// Prune cache entries for tuples that left the answer set, and make
	// sure every live tuple has an entry before the parallel fan-out (each
	// worker then touches only its own entry).
	liveKeys := make(map[string]bool, len(live))
	for _, a := range live {
		liveKeys[a.Key] = true
		if s.tuples[a.Key] == nil {
			s.tuples[a.Key] = &sessionTuple{art: &core.Artifacts{}}
		}
	}
	for k := range s.tuples {
		if !liveKeys[k] {
			delete(s.tuples, k)
		}
	}

	// Split the worker budget exactly as the one-shot pipeline does: fan
	// out across answers first, give each answer's Algorithm 1 loop the
	// leftover parallelism.
	workers := parallel.Workers(s.opts.Workers)
	outer := workers
	if outer > len(live) {
		outer = len(live)
	}
	inner := workers / outer
	if inner < 1 {
		inner = 1
	}
	compileWorkers := s.opts.CompileWorkers
	if compileWorkers == 0 {
		compileWorkers = inner
	}

	out := make([]TupleExplanation, len(live))
	err := parallel.ForEach(ctx, len(live), outer, func(_, i int) error {
		a := live[i]
		entry := s.tuples[a.Key]
		tctx, tsp := trace.Start(ctx, "tuple")
		tsp.Set("tuple", a.Tuple.String())
		// A cached explanation at the current epoch is served verbatim —
		// unless it is approximate and this call did not opt into
		// approximation, in which case the exact pipeline runs (and replaces
		// the degraded cache entry).
		if entry.expl != nil && entry.epoch == a.Epoch &&
			(entry.expl.Method != MethodApprox || budgeted) {
			out[i] = *entry.expl
			tsp.Set("cached", true)
			tsp.Set("method", entry.expl.Method.String())
			if entry.expl.DegradedCause != "" {
				tsp.Set("cause", entry.expl.DegradedCause)
			}
			tsp.End()
			return nil
		}
		endo := lineageEndo(a.Lineage)
		h, err := core.HybridAt(tctx, a.Lineage, endo, a.Epoch, entry.art, core.HybridOptions{
			Timeout:          s.opts.Timeout,
			MaxNodes:         s.opts.MaxNodes,
			Workers:          inner,
			CompileWorkers:   compileWorkers,
			Speculate:        s.opts.Speculate,
			Portfolio:        s.opts.Portfolio,
			NoCanonicalCache: s.opts.NoCanonicalCache,
			Strategy:         s.opts.Strategy,
			Cache:            s.cache,
			CacheOwner:       s.d.ID(),
			Budget:           budget,
		})
		if err != nil {
			tsp.Set("error", err.Error())
			tsp.End()
			return err
		}
		expl := &TupleExplanation{
			Tuple:    a.Tuple,
			Method:   h.Method,
			Values:   h.Values,
			Proxy:    h.Proxy,
			Ranking:  h.Ranking,
			NumFacts: len(endo),
			Elapsed:  h.Elapsed,
		}
		if h.Method == core.MethodApprox {
			expl.Approx = h.Approx.Estimates
			expl.Samples = h.Approx.Permutations
			expl.ApproxSeed = h.Approx.Seed
			expl.DegradedCause = h.DegradedCause
		}
		entry.expl, entry.epoch = expl, a.Epoch
		entry.upFailed = false
		out[i] = *expl
		tsp.Set("facts", len(endo))
		tsp.Set("method", h.Method.String())
		if h.DegradedCause != "" {
			tsp.Set("cause", h.DegradedCause)
		}
		tsp.End()
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.explains++
	// Degraded answers are upgraded in place: schedule the background exact
	// computation for every tuple answered approximately at its current
	// epoch. This runs under mu after the fan-out completed, so it sees a
	// consistent tuple map.
	for _, a := range live {
		entry := s.tuples[a.Key]
		if entry != nil && entry.expl != nil && entry.epoch == a.Epoch &&
			entry.expl.Method == MethodApprox {
			s.scheduleUpgrade(a.Key)
		}
	}
	for i := range out {
		if out[i].Method == MethodApprox {
			s.approxes++
		}
	}
	return out, nil
}

// scheduleUpgrade queues the background exact upgrade for one approximately
// answered tuple, deduplicating per key and skipping tuples whose upgrade
// already failed at the current epoch. Callers hold s.mu.
func (s *Session) scheduleUpgrade(key string) {
	if s.closed || s.upgrading[key] {
		return
	}
	if entry := s.tuples[key]; entry == nil ||
		(entry.upFailed && entry.upFailEpoch == entry.epoch) {
		return
	}
	s.upgrading[key] = true
	go func() {
		defer func() {
			s.mu.Lock()
			delete(s.upgrading, key)
			s.mu.Unlock()
		}()
		select {
		case s.bgSlot <- struct{}{}:
			defer func() { <-s.bgSlot }()
		case <-s.bgCtx.Done():
			return
		}
		s.upgradeTuple(key)
	}()
}

// upgradeTuple runs the exact pipeline for one approximately answered tuple
// in the background and installs the exact explanation if the tuple is
// still live at the epoch the approximation was computed for. The exact
// computation itself runs outside s.mu — lineage circuit nodes are immutable
// once hash-consed, so reading a snapshotted lineage is safe while the
// foreground mutates the session — under the session's own (non-budgeted)
// limits; if it fails them too, the tuple keeps its approximate answer and
// is not retried until its lineage changes.
func (s *Session) upgradeTuple(key string) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	entry := s.tuples[key]
	if entry == nil || entry.expl == nil || entry.expl.Method != MethodApprox {
		s.mu.Unlock()
		return
	}
	epoch := entry.epoch
	var lineage *circuit.Node
	var tuple Tuple
	for _, a := range s.inc.Live() {
		if a.Key == key && a.Epoch == epoch {
			lineage, tuple = a.Lineage, a.Tuple
			break
		}
	}
	popts := core.PipelineOptions{
		CompileTimeout:   s.opts.Timeout,
		ShapleyTimeout:   s.opts.Timeout,
		CompileMaxNodes:  s.opts.MaxNodes,
		Workers:          1,
		CompileWorkers:   1,
		NoCanonicalCache: s.opts.NoCanonicalCache,
		Strategy:         s.opts.Strategy,
		Cache:            s.cache,
		CacheOwner:       s.d.ID(),
	}
	s.mu.Unlock()
	if lineage == nil {
		return // the tuple moved on; the next explain recomputes it anyway
	}

	endo := lineageEndo(lineage)
	start := time.Now()
	// Background upgrades run outside any request, so there is no request
	// trace to attach to; when a StageObserver is configured, give the
	// upgrade its own root so the nested exact stages (and the upgrade
	// itself) still feed the per-stage histograms.
	uctx := s.bgCtx
	if s.opts.StageObserver != nil {
		var root *trace.Span
		uctx, root = trace.NewRoot(s.bgCtx, "upgrade", trace.Observer(s.opts.StageObserver))
		defer root.End()
	}
	res, err := core.ExplainCircuitAt(uctx, lineage, endo, epoch, nil, popts)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	entry = s.tuples[key]
	if entry == nil || entry.epoch != epoch || entry.expl == nil ||
		entry.expl.Method != MethodApprox {
		return // superseded while we were computing
	}
	if err != nil {
		entry.upFailed, entry.upFailEpoch = true, epoch
		return
	}
	entry.expl = &TupleExplanation{
		Tuple:    tuple,
		Method:   MethodExact,
		Values:   res.Values,
		Ranking:  res.Values.Ranking(),
		NumFacts: len(endo),
		Elapsed:  time.Since(start),
	}
	s.upgrades++
}

// NumAnswers returns the current number of output tuples without explaining
// them (lineage maintenance is still applied).
func (s *Session) NumAnswers() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrSessionClosed
	}
	if err := s.sync(context.Background()); err != nil {
		return 0, err
	}
	return s.inc.Len(), nil
}

// SessionStats is a point-in-time snapshot of one session's state and
// lifetime counters, sized for pool bookkeeping: everything here is read
// from the session's own fields, so Stats never touches the underlying
// database (and thus never races with another session's writes to it) and
// never triggers re-grounding.
type SessionStats struct {
	// Answers is the number of live output tuples at the last
	// synchronization point.
	Answers int
	// CachedExplanations is how many of them have a finished explanation
	// cached at their current lineage epoch (a subsequent Explain serves
	// these verbatim).
	CachedExplanations int
	// Epoch is the database mutation epoch the session is synchronized to.
	Epoch uint64
	// Grounds counts full (re)groundings: 1 for a fresh session, +1 for
	// every out-of-band database mutation detected.
	Grounds int64
	// Inserts and Deletes count mutations absorbed incrementally through
	// the session.
	Inserts, Deletes int64
	// Explains counts completed Explain calls.
	Explains int64
	// Approximations counts tuple answers served approximately (budget
	// exhaustion or explicit approximate mode), across all Explain calls.
	Approximations int64
	// Upgrades counts approximate answers replaced in place by the
	// background exact computation.
	Upgrades int64
}

// Stats returns the session's current statistics snapshot.
func (s *Session) Stats() (SessionStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return SessionStats{}, ErrSessionClosed
	}
	st := SessionStats{
		Answers:        s.inc.Len(),
		Epoch:          s.epoch,
		Grounds:        s.grounds,
		Inserts:        s.inserts,
		Deletes:        s.deletes,
		Explains:       s.explains,
		Approximations: s.approxes,
		Upgrades:       s.upgrades,
	}
	for _, t := range s.tuples {
		if t.expl != nil {
			st.CachedExplanations++
		}
	}
	return st, nil
}

// CacheStats returns a snapshot of the compilation cache counters the
// session contributes to (the process-wide cache shared across sessions),
// or a zero snapshot when caching is disabled.
func (s *Session) CacheStats() dnnf.CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		return dnnf.CacheStats{}
	}
	return s.cache.Stats()
}

// Close releases the session's cached state and cancels any in-flight
// background exact upgrade. The database is left exactly as the session's
// updates made it; only the session becomes unusable.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	s.closed = true
	s.bgStop()
	s.inc = nil
	s.tuples = nil
	s.cb = nil
	return nil
}
