package repro

// Tracing-overhead benchmarks: the internal/trace spans are compiled into
// the pipeline permanently, so the disabled path (no collector installed
// on the context) must be close to free. BenchmarkSessionExplainTraceOff
// vs BenchmarkSessionExplainTraceOn measure a warm flights session explain
// with and without a collecting root. The bar for the instrumentation is
// TraceOff within 2% of the pre-instrumentation baseline — on the warm
// path the two differ by a handful of ctx.Value lookups returning nil
// spans whose methods are no-ops (~tens of ns against a ~hundreds-of-µs
// explain). Collection itself (TraceOn) is allowed to cost more; it only
// runs when a request opts in.
//
//	go test -bench 'SessionExplainTrace' -benchtime=1000x .

import (
	"context"
	"testing"

	"repro/internal/flights"
	"repro/internal/trace"
)

// warmSession opens a flights session and runs one explain so every
// epoch-keyed artifact (grounding, Tseytin, compiled circuit, Shapley
// values) is hot; the measured loop then isolates the per-request
// bookkeeping — exactly where the tracing instrumentation sits.
func warmSession(b *testing.B) *Session {
	b.Helper()
	d, _ := flights.Build()
	s, err := Open(d, flights.Query(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	if _, err := s.Explain(context.Background()); err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkSessionExplainTraceOff(b *testing.B) {
	s := warmSession(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Explain(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionExplainTraceOn(b *testing.B) {
	s := warmSession(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, root := trace.NewRoot(context.Background(), "explain", nil)
		if _, err := s.Explain(ctx); err != nil {
			b.Fatal(err)
		}
		root.End()
	}
}

// The Dirty pair applies an insert+delete round (outside the timer) before
// each explain, so every iteration runs the full incremental pipeline —
// delta grounding, Tseytin, compile, Shapley — rather than returning the
// cached artifact. This is the hot path the <2% disabled-overhead bar is
// about: roughly a dozen no-op trace.Start calls against hundreds of
// microseconds of real work.
func benchDirtyExplain(b *testing.B, traced bool) {
	s := warmSession(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		facts, err := s.Apply([]Mutation{InsertOp("Flights", true, String("JFK"), String("ORY"))})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Apply([]Mutation{DeleteOp(facts[0].ID)}); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		ctx := context.Background()
		var root *trace.Span
		if traced {
			ctx, root = trace.NewRoot(ctx, "explain", nil)
		}
		if _, err := s.Explain(ctx); err != nil {
			b.Fatal(err)
		}
		root.End()
	}
}

func BenchmarkSessionExplainDirtyTraceOff(b *testing.B) { benchDirtyExplain(b, false) }
func BenchmarkSessionExplainDirtyTraceOn(b *testing.B)  { benchDirtyExplain(b, true) }
