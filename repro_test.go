package repro

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flights"
)

func TestExplainFlights(t *testing.T) {
	d, fs := flights.Build()
	q := flights.Query()
	exp, err := ExplainBoolean(context.Background(), d, q, Options{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if exp.Method != MethodExact {
		t.Fatalf("method = %v, want exact", exp.Method)
	}
	if exp.NumFacts != 7 {
		t.Errorf("NumFacts = %d, want 7", exp.NumFacts)
	}
	if got := exp.Values[fs.A[1].ID]; got.Cmp(big.NewRat(43, 105)) != 0 {
		t.Errorf("Shapley(a1) = %v, want 43/105", got)
	}
	if top := exp.TopFacts(1); len(top) != 1 || top[0] != fs.A[1].ID {
		t.Errorf("TopFacts(1) = %v, want [a1]", top)
	}
	if s := exp.Score(fs.A[1].ID); s < 0.40 || s > 0.42 {
		t.Errorf("Score(a1) = %v, want ≈ 0.4095", s)
	}
	if sum := EfficiencySum(exp.Values); sum.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("efficiency sum = %v, want 1", sum)
	}
}

func TestExplainNonBoolean(t *testing.T) {
	d := NewDatabase()
	d.CreateRelation("R", "x", "y")
	d.MustInsert("R", true, Int(1), Int(10))
	d.MustInsert("R", true, Int(1), Int(20))
	d.MustInsert("R", true, Int(2), Int(30))
	q, err := ParseQuery(`q(x) :- R(x, y)`)
	if err != nil {
		t.Fatal(err)
	}
	es, err := Explain(context.Background(), d, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 2 {
		t.Fatalf("explanations = %d, want 2", len(es))
	}
	// x=1 has two symmetric witnesses: each gets 1/2.
	for _, f := range es[0].Ranking {
		if got := es[0].Values[f]; got.Cmp(big.NewRat(1, 2)) != 0 {
			t.Errorf("Shapley = %v, want 1/2", got)
		}
	}
	// x=2 has a single dictator fact.
	if got := es[1].Values[es[1].Ranking[0]]; got.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("Shapley = %v, want 1", got)
	}
}

func TestExplainBooleanRejectsNonBoolean(t *testing.T) {
	d := NewDatabase()
	d.CreateRelation("R", "x")
	q, _ := ParseQuery(`q(x) :- R(x)`)
	if _, err := ExplainBoolean(context.Background(), d, q, Options{}); err == nil {
		t.Error("non-Boolean query accepted")
	}
}

func TestExplainBooleanFalseQuery(t *testing.T) {
	d := NewDatabase()
	d.CreateRelation("R", "x")
	q, _ := ParseQuery(`q() :- R(99)`)
	exp, err := ExplainBoolean(context.Background(), d, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Ranking) != 0 {
		t.Errorf("false query produced ranking %v", exp.Ranking)
	}
}

func TestExplainProxyFallback(t *testing.T) {
	d, _ := flights.Build()
	q := flights.Query()
	exp, err := ExplainBoolean(context.Background(), d, q, Options{Timeout: 10 * time.Second, MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if exp.Method != MethodProxy {
		t.Fatalf("method = %v, want proxy", exp.Method)
	}
	if len(exp.Ranking) == 0 {
		t.Fatal("proxy fallback produced no ranking")
	}
	_ = exp.Score(exp.Ranking[0]) // must not panic on proxy scores
}

func TestShapleyViaProbabilisticDB(t *testing.T) {
	d, fs := flights.Build()
	v, err := ShapleyViaProbabilisticDB(context.Background(), d, flights.Query())
	if err != nil {
		t.Fatal(err)
	}
	if got := v[fs.A[1].ID]; got.Cmp(big.NewRat(43, 105)) != 0 {
		t.Errorf("via PQE Shapley(a1) = %v, want 43/105", got)
	}
}

func TestHierarchical(t *testing.T) {
	h, _ := ParseQuery(`q() :- R(x), S(x, y)`)
	if !Hierarchical(h) {
		t.Error("hierarchical query misclassified")
	}
	nh, _ := ParseQuery(`q() :- R(x), S(x, y), T(y)`)
	if Hierarchical(nh) {
		t.Error("non-hierarchical query misclassified")
	}
	if Hierarchical(flights.Query()) {
		t.Error("the flights UCQ's q2 disjunct is non-hierarchical")
	}
}

// TestBagSemanticsByFactCopies exercises the paper's closing observation:
// bag semantics is supported as-is by giving each copy of a tuple its own
// fact identity. Two identical R-tuples become two symmetric facts that
// split the contribution equally.
func TestBagSemanticsByFactCopies(t *testing.T) {
	d := NewDatabase()
	d.CreateRelation("R", "x")
	c1 := d.MustInsert("R", true, Int(1)) // first copy of R(1)
	c2 := d.MustInsert("R", true, Int(1)) // second copy of R(1)
	q, _ := ParseQuery(`q() :- R(1)`)
	exp, err := ExplainBoolean(context.Background(), d, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exp.Values[c1.ID].Cmp(exp.Values[c2.ID]) != 0 {
		t.Errorf("copies got different values: %v vs %v", exp.Values[c1.ID], exp.Values[c2.ID])
	}
	if got := exp.Values[c1.ID]; got.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("each copy = %v, want 1/2", got)
	}
}

// TestLargerRandomDifferential runs the full exact pipeline against naive
// subset enumeration on randomized multi-relation databases and queries —
// an integration-level differential test beyond the fixed examples.
func TestLargerRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 15; trial++ {
		d := NewDatabase()
		d.CreateRelation("R", "a", "b")
		d.CreateRelation("S", "b", "c")
		var endo []FactID
		for i := 0; i < 4+rng.Intn(4); i++ {
			f := d.MustInsert("R", true, Int(int64(rng.Intn(3))), Int(int64(rng.Intn(3))))
			endo = append(endo, f.ID)
		}
		for i := 0; i < 3+rng.Intn(3); i++ {
			f := d.MustInsert("S", true, Int(int64(rng.Intn(3))), Int(int64(rng.Intn(3))))
			endo = append(endo, f.ID)
		}
		q, _ := ParseQuery(`q() :- R(a, b), S(b, c)`)
		exp, err := ExplainBoolean(context.Background(), d, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Ground truth by re-running the query on every endogenous subset.
		game := func(subset map[FactID]bool) bool {
			sub := d.WithEndogenousSubset(subset)
			e2, err := ExplainBoolean(context.Background(), sub, q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			// Query true on sub-database iff lineage over remaining facts,
			// all present, evaluates true — i.e. any ranking fact exists or
			// the efficiency sum is 1.
			return e2.Values.Sum().Sign() > 0
		}
		want, err := core.NaiveShapley(game, endo)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range endo {
			got := exp.Values[f]
			if got == nil {
				got = new(big.Rat)
			}
			if got.Cmp(want[f]) != 0 {
				t.Fatalf("trial %d fact %d: pipeline %v, naive %v", trial, f, got, want[f])
			}
		}
	}
}

// TestExplainParallelMatchesSerial runs the facade end-to-end with the
// per-answer fan-out enabled and asserts the result slice is identical —
// same order, same methods, same exact rationals — to the serial run.
func TestExplainParallelMatchesSerial(t *testing.T) {
	d := NewDatabase()
	d.CreateRelation("R", "a", "b")
	d.CreateRelation("S", "b", "c")
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 18; i++ {
		d.MustInsert("R", true, Int(int64(i%6)), Int(int64(rng.Intn(4))))
	}
	for i := 0; i < 12; i++ {
		d.MustInsert("S", true, Int(int64(rng.Intn(4))), Int(int64(rng.Intn(3))))
	}
	q, err := ParseQuery(`q(a) :- R(a, b), S(b, c)`)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Explain(context.Background(), d, q, Options{Workers: 1, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) < 2 {
		t.Fatalf("want a multi-answer query, got %d answers", len(serial))
	}
	parallel, err := Explain(context.Background(), d, q, Options{Workers: 8, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(serial) {
		t.Fatalf("parallel produced %d explanations, serial %d", len(parallel), len(serial))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Tuple.String() != p.Tuple.String() {
			t.Fatalf("answer %d: tuple order diverged: %v vs %v", i, p.Tuple, s.Tuple)
		}
		if s.Method != p.Method || s.NumFacts != p.NumFacts {
			t.Fatalf("answer %d: method/facts diverged", i)
		}
		if len(s.Ranking) != len(p.Ranking) {
			t.Fatalf("answer %d: ranking lengths diverged", i)
		}
		for j := range s.Ranking {
			if s.Ranking[j] != p.Ranking[j] {
				t.Fatalf("answer %d: ranking[%d] = %d, serial %d", i, j, p.Ranking[j], s.Ranking[j])
			}
		}
		for f, sv := range s.Values {
			if pv := p.Values[f]; pv == nil || pv.Cmp(sv) != 0 {
				t.Fatalf("answer %d fact %d: parallel %v, serial %v", i, f, pv, sv)
			}
		}
	}
}

// TestExplainCompileKnobsMatchBaseline drives the two PR-3 knobs through
// the facade: a parallel compiler and a canonically-keyed (or ablated)
// cache must leave every explanation identical to the serial,
// cache-disabled baseline.
func TestExplainCompileKnobsMatchBaseline(t *testing.T) {
	d := NewDatabase()
	d.CreateRelation("R", "a", "b")
	d.CreateRelation("S", "b", "c")
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 18; i++ {
		d.MustInsert("R", true, Int(int64(i%6)), Int(int64(rng.Intn(4))))
	}
	for i := 0; i < 12; i++ {
		d.MustInsert("S", true, Int(int64(rng.Intn(4))), Int(int64(rng.Intn(3))))
	}
	q, err := ParseQuery(`q(a) :- R(a, b), S(b, c)`)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := Explain(context.Background(), d, q, Options{Workers: 1, CompileWorkers: 1, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) < 2 {
		t.Fatalf("want a multi-answer query, got %d answers", len(baseline))
	}
	for _, opts := range []Options{
		{Workers: 1, CompileWorkers: 4, CacheSize: -1},      // parallel compiler, no cache
		{Workers: 4, CompileWorkers: 4, CacheSize: 64},      // parallel + canonical cache
		{Workers: 4, CacheSize: 64, NoCanonicalCache: true}, // byte-identical cache ablation
		{Workers: 4, CompileWorkers: -1, CacheSize: 64},     // compile workers forced to GOMAXPROCS
	} {
		got, err := Explain(context.Background(), d, q, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if len(got) != len(baseline) {
			t.Fatalf("%+v: %d explanations, want %d", opts, len(got), len(baseline))
		}
		for i := range baseline {
			b, g := baseline[i], got[i]
			if b.Tuple.String() != g.Tuple.String() || b.Method != g.Method {
				t.Fatalf("%+v answer %d: tuple/method diverged", opts, i)
			}
			for f, bv := range b.Values {
				if gv := g.Values[f]; gv == nil || gv.Cmp(bv) != 0 {
					t.Fatalf("%+v answer %d fact %d: %v, want %v", opts, i, f, gv, bv)
				}
			}
		}
	}
}

func TestExplainCancelledContext(t *testing.T) {
	d, _ := flights.Build()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Explain(ctx, d, flights.Query(), Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
