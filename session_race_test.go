package repro

import (
	"context"
	"errors"
	"math/big"
	"strings"
	"sync"
	"testing"

	"repro/internal/flights"
)

// TestSessionConcurrentHammerMatchesSerial enforces the Session concurrency
// contract: Explain, Insert, Delete, Apply, NumAnswers, Stats, and
// CacheStats hammered from many goroutines must be race-free (run under
// -race in CI) and leave the session in a state big.Rat-identical to a
// serial execution of the same mutation scripts — and to a cold Explain on
// an equivalent database.
//
// Each mutator goroutine runs a net-zero script (insert a joining flight,
// explain, delete it), so the final database equals the initial one and the
// final explanation is the paper's flights ground truth regardless of how
// the goroutines interleave. Explanations observed mid-flight are checked
// against the one invariant every consistent snapshot satisfies here: the
// Shapley efficiency axiom (the values of a true Boolean answer over an
// all-endogenous-or-irrelevant lineage sum to exactly 1).
func TestSessionConcurrentHammerMatchesSerial(t *testing.T) {
	fdb, _ := flights.Build()
	q := flights.Query()
	s, err := Open(fdb, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	const (
		mutators   = 4
		explainers = 3
		rounds     = 3
	)
	usa := []string{"JFK", "EWR", "BOS", "LAX"}
	one := big.NewRat(1, 1)

	var wg sync.WaitGroup
	errs := make(chan error, mutators+explainers)
	for w := 0; w < mutators; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				f, err := s.Insert("Flights", true, String(usa[w%len(usa)]), String("CDG"))
				if err != nil {
					errs <- err
					return
				}
				if _, err := s.Explain(ctx); err != nil {
					errs <- err
					return
				}
				if err := s.Delete(f.ID); err != nil {
					errs <- err
					return
				}
				// Bulk form: two inserts applied in one batch, then one
				// batched delete of both.
				fs, err := s.Apply([]Mutation{
					InsertOp("Flights", true, String(usa[w%len(usa)]), String("ORY")),
					InsertOp("Flights", true, String("LHR"), String("CDG")),
				})
				if err != nil {
					errs <- err
					return
				}
				if _, err := s.Apply([]Mutation{DeleteOp(fs[0].ID), DeleteOp(fs[1].ID)}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for w := 0; w < explainers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds*2; r++ {
				es, err := s.Explain(ctx)
				if err != nil {
					errs <- err
					return
				}
				for i := range es {
					if es[i].Method != MethodExact {
						errs <- errNonExact(es[i].Method)
						return
					}
					if sum := es[i].Values.Sum(); sum.Cmp(one) != 0 {
						errs <- errBadSum{sum}
						return
					}
				}
				if _, err := s.NumAnswers(); err != nil {
					errs <- err
					return
				}
				if _, err := s.Stats(); err != nil {
					errs <- err
					return
				}
				s.CacheStats()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	final, err := s.Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Serial execution of the same scripts on an equivalent database.
	sdb, _ := flights.Build()
	serial, err := Open(sdb, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	for w := 0; w < mutators; w++ {
		for r := 0; r < rounds; r++ {
			f, err := serial.Insert("Flights", true, String(usa[w%len(usa)]), String("CDG"))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := serial.Explain(ctx); err != nil {
				t.Fatal(err)
			}
			if err := serial.Delete(f.ID); err != nil {
				t.Fatal(err)
			}
			fs, err := serial.Apply([]Mutation{
				InsertOp("Flights", true, String(usa[w%len(usa)]), String("ORY")),
				InsertOp("Flights", true, String("LHR"), String("CDG")),
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := serial.Apply([]Mutation{DeleteOp(fs[0].ID), DeleteOp(fs[1].ID)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	serialFinal, err := serial.Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertExplanationsEqual(t, final, serialFinal, "concurrent vs serial")

	// And both match a cold Explain on a fresh equivalent database: the
	// scripts are net-zero, so the paper's ground truth applies. Fact IDs
	// agree because the initial builds are identical and IDs are never
	// reused.
	cdb, _ := flights.Build()
	cold, err := Explain(ctx, cdb, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertExplanationsEqual(t, final, cold, "concurrent vs cold")

	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	wantMuts := int64(mutators * rounds * 3)
	if st.Inserts != wantMuts || st.Deletes != wantMuts {
		t.Errorf("Stats counted %d inserts / %d deletes, want %d / %d",
			st.Inserts, st.Deletes, wantMuts, wantMuts)
	}
	if st.Answers != 1 || st.CachedExplanations != 1 {
		t.Errorf("Stats = %+v, want 1 answer with a cached explanation", st)
	}
	if st.Grounds != 1 {
		t.Errorf("Stats counted %d grounds, want 1 (no out-of-band mutations)", st.Grounds)
	}
}

type errNonExact Method

func (e errNonExact) Error() string {
	return "explanation method is " + Method(e).String() + ", want exact"
}

type errBadSum struct{ sum *big.Rat }

func (e errBadSum) Error() string { return "efficiency sum " + e.sum.RatString() + ", want 1" }

// TestSessionApplyBatch pins Apply's bulk semantics: result alignment with
// the mutation list, one batched application, and the documented
// stop-at-first-error behavior that leaves the session consistent with the
// database (the next Explain matches a cold Explain on the mutated state).
func TestSessionApplyBatch(t *testing.T) {
	ctx := context.Background()
	d, facts := flights.Build()
	s, err := Open(d, flights.Query(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	fs, err := s.Apply([]Mutation{
		InsertOp("Flights", true, String("JFK"), String("ORY")),
		DeleteOp(facts.A[1].ID),
		InsertOp("Flights", true, String("BOS"), String("CDG")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 || fs[0] == nil || fs[1] != nil || fs[2] == nil {
		t.Fatalf("Apply results misaligned: %v", fs)
	}
	got, err := s.Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Explain(ctx, d, flights.Query(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertExplanationsEqual(t, got, cold, "after batch")

	// A failing mutation mid-batch applies the prefix and stops.
	pre, _ := s.Stats()
	fs, err = s.Apply([]Mutation{
		DeleteOp(fs[0].ID),
		InsertOp("NoSuchRelation", true, Int(1)),
		InsertOp("Flights", true, String("LAX"), String("CDG")),
	})
	if err == nil || !strings.Contains(err.Error(), "NoSuchRelation") {
		t.Fatalf("Apply with bad relation: err = %v, want unknown-relation error", err)
	}
	var me *MutationError
	if !errors.As(err, &me) || me.Index != 1 {
		t.Fatalf("Apply error %v, want *MutationError with Index 1", err)
	}
	if !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("Apply error %v does not wrap ErrUnknownRelation", err)
	}
	if fs[0] != nil || fs[1] != nil || fs[2] != nil {
		t.Fatalf("failed batch results: %v, want all nil (delete prefix, no inserts)", fs)
	}
	post, _ := s.Stats()
	if post.Deletes != pre.Deletes+1 || post.Inserts != pre.Inserts {
		t.Errorf("prefix application: %+v -> %+v, want exactly one extra delete", pre, post)
	}
	got, err = s.Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cold, err = Explain(ctx, d, flights.Query(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertExplanationsEqual(t, got, cold, "after failed batch")
}
