package metrics

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/db"
)

func approxEq(t *testing.T, got, want float64, what string) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", what, got, want)
	}
}

func TestNDCGPerfect(t *testing.T) {
	truth := map[db.FactID]float64{1: 3, 2: 2, 3: 1}
	approxEq(t, NDCG([]db.FactID{1, 2, 3}, truth), 1, "NDCG perfect")
}

func TestNDCGReversed(t *testing.T) {
	truth := map[db.FactID]float64{1: 3, 2: 2, 3: 1}
	got := NDCG([]db.FactID{3, 2, 1}, truth)
	if got >= 1 || got <= 0 {
		t.Errorf("NDCG reversed = %v, want strictly between 0 and 1", got)
	}
	// DCG = 1 + 2/log2(3) + 3/2; IDCG = 3 + 2/log2(3) + 1/2.
	want := (1 + 2/math.Log2(3) + 1.5) / (3 + 2/math.Log2(3) + 0.5)
	approxEq(t, got, want, "NDCG reversed")
}

func TestNDCGDegenerate(t *testing.T) {
	truth := map[db.FactID]float64{1: 0, 2: 0}
	approxEq(t, NDCG([]db.FactID{2, 1}, truth), 1, "NDCG all-zero truth")
}

func TestNDCGNegativeShift(t *testing.T) {
	// Negative relevances are shifted; ordering quality still measured.
	truth := map[db.FactID]float64{1: -1, 2: -3}
	approxEq(t, NDCG([]db.FactID{1, 2}, truth), 1, "NDCG negative perfect")
	if NDCG([]db.FactID{2, 1}, truth) >= 1 {
		t.Error("NDCG should penalize wrong order with negative scores")
	}
}

func TestNDCGAtTruncation(t *testing.T) {
	truth := map[db.FactID]float64{1: 5, 2: 4, 3: 3, 4: 2}
	// Correct top-1 gives nDCG@1 = 1 even if the tail is reversed.
	approxEq(t, NDCGAt([]db.FactID{1, 4, 3, 2}, truth, 1), 1, "nDCG@1")
	if NDCGAt([]db.FactID{4, 1, 2, 3}, truth, 1) >= 1 {
		t.Error("nDCG@1 with wrong leader should be < 1")
	}
}

func TestPrecisionAt(t *testing.T) {
	truth := map[db.FactID]float64{1: 5, 2: 4, 3: 3, 4: 2, 5: 1}
	pred := []db.FactID{2, 1, 5, 4, 3}
	approxEq(t, PrecisionAt(pred, truth, 2), 1, "P@2")     // {2,1} = {1,2}
	approxEq(t, PrecisionAt(pred, truth, 3), 2.0/3, "P@3") // {2,1,5} ∩ {1,2,3} = 2
	approxEq(t, PrecisionAt(pred, truth, 5), 1, "P@5")
	approxEq(t, PrecisionAt(nil, truth, 0), 1, "P@0 degenerate")
}

func TestPrecisionAtTieBreaking(t *testing.T) {
	// Scores tied: ideal top-1 is the smaller fact ID.
	truth := map[db.FactID]float64{7: 1, 3: 1}
	approxEq(t, PrecisionAt([]db.FactID{3, 7}, truth, 1), 1, "P@1 tie")
	approxEq(t, PrecisionAt([]db.FactID{7, 3}, truth, 1), 0, "P@1 tie wrong")
}

func TestL1L2(t *testing.T) {
	exact := map[db.FactID]float64{1: 1, 2: 0}
	approx := map[db.FactID]float64{1: 0.5, 2: 0.5}
	approxEq(t, L1(approx, exact), 0.5, "L1")
	approxEq(t, L2(approx, exact), 0.25, "L2")
	approxEq(t, L1(nil, nil), 0, "L1 empty")
}

func TestKendallTau(t *testing.T) {
	a := map[db.FactID]float64{1: 3, 2: 2, 3: 1}
	approxEq(t, KendallTau(a, a), 1, "tau identical")
	b := map[db.FactID]float64{1: 1, 2: 2, 3: 3}
	approxEq(t, KendallTau(a, b), -1, "tau reversed")
	c := map[db.FactID]float64{1: 1, 2: 1, 3: 1}
	approxEq(t, KendallTau(a, c), 1, "tau all ties skip")
}

func TestSummarize(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	s := Summarize(xs)
	approxEq(t, s.Mean, 2.5, "mean")
	approxEq(t, s.P25, 1, "p25")
	approxEq(t, s.P50, 2, "p50")
	approxEq(t, s.P75, 3, "p75")
	approxEq(t, s.P99, 4, "p99")
	empty := Summarize(nil)
	if empty.Mean != 0 || empty.P99 != 0 {
		t.Errorf("Summarize(nil) = %+v, want zeros", empty)
	}
}

func TestDurations(t *testing.T) {
	ds := []time.Duration{time.Second, 500 * time.Millisecond}
	xs := Durations(ds)
	approxEq(t, xs[0], 1, "seconds")
	approxEq(t, xs[1], 0.5, "half second")
}

func TestMedianMean(t *testing.T) {
	approxEq(t, Median([]float64{3, 1, 2}), 2, "median odd")
	approxEq(t, Mean([]float64{1, 2, 3}), 2, "mean")
	approxEq(t, Median(nil), 0, "median empty")
	approxEq(t, Mean(nil), 0, "mean empty")
}

func TestRankByScore(t *testing.T) {
	scores := map[db.FactID]float64{5: 0.1, 2: 0.9, 9: 0.9}
	r := RankByScore(scores)
	if r[0] != 2 || r[1] != 9 || r[2] != 5 {
		t.Errorf("RankByScore = %v, want [2 9 5]", r)
	}
}

func TestSummarizeLatency(t *testing.T) {
	var ds []time.Duration
	for i := 1; i <= 100; i++ {
		ds = append(ds, time.Duration(i)*time.Millisecond)
	}
	s := SummarizeLatency(ds)
	approxEq(t, s.MeanMs, 50.5, "mean")
	approxEq(t, s.P50Ms, 50, "p50")
	approxEq(t, s.P95Ms, 95, "p95")
	approxEq(t, s.P99Ms, 99, "p99")
	approxEq(t, s.MaxMs, 100, "max")
	if z := SummarizeLatency(nil); z != (LatencySummary{}) {
		t.Errorf("empty sample: %+v, want zeros", z)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder(4)
	r.Observe("/v1/explain", 200, 10*time.Millisecond)
	r.Observe("/v1/explain", 500, 20*time.Millisecond)
	r.Observe("/v1/update", 200, 1*time.Millisecond)
	// Overflow the 4-sample ring: only the last 4 latencies survive.
	for i := 0; i < 6; i++ {
		r.Observe("/v1/explain", 200, time.Duration(i+1)*100*time.Millisecond)
	}
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Route != "/v1/explain" || snap[1].Route != "/v1/update" {
		t.Fatalf("snapshot routes: %+v", snap)
	}
	e := snap[0]
	if e.Count != 8 || e.Errors != 1 {
		t.Errorf("explain count=%d errors=%d, want 8/1", e.Count, e.Errors)
	}
	// Ring holds 300..600ms after the overflow.
	approxEq(t, e.Latency.MaxMs, 600, "ring max")
	approxEq(t, e.Latency.P50Ms, 400, "ring p50")
	if e.RatePerSec <= 0 {
		t.Errorf("rate %f, want > 0", e.RatePerSec)
	}
	if snap[1].Errors != 0 || snap[1].Count != 1 {
		t.Errorf("update route: %+v", snap[1])
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Observe("/x", 200, time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if snap := r.Snapshot(); snap[0].Count != 800 {
		t.Errorf("count %d, want 800", snap[0].Count)
	}
}
