package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRecorderConcurrentHammer drives every Recorder entry point from many
// goroutines at once (run under -race in CI) and then checks the aggregate
// invariants: counts add up, percentile summaries are ordered
// p50 ≤ p95 ≤ p99 ≤ max, and the exposition writer stays consistent.
func TestRecorderConcurrentHammer(t *testing.T) {
	const (
		workers = 16
		perG    = 500
	)
	r := NewRecorder(1024)
	routes := []string{"/v1/explain", "/v1/update"}
	stages := []string{"compile", "shapley", "ground"}
	causes := []string{"mode", "node_budget", "deadline"}

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				route := routes[(g+i)%len(routes)]
				d := time.Duration(1+(g*perG+i)%100) * time.Millisecond
				r.Observe(route, 200+(i%2)*229, d) // alternate 200 / 429
				r.ObserveStage(stages[i%len(stages)], d)
				switch i % 5 {
				case 0:
					r.Shed(route)
				case 1:
					r.Panicked(route)
				case 2:
					r.TimedOut(route)
				case 3:
					r.Degraded(route)
					r.DegradedCause(route, causes[i%len(causes)])
				}
				if i%100 == 0 {
					_ = r.Snapshot()
					var sb strings.Builder
					r.WritePrometheus(&sb)
				}
			}
		}(g)
	}
	wg.Wait()

	snap := r.Snapshot()
	if len(snap) != len(routes) {
		t.Fatalf("snapshot has %d routes, want %d", len(snap), len(routes))
	}
	var total, errors int64
	for _, rs := range snap {
		total += rs.Count
		errors += rs.Errors
		lat := rs.Latency
		if !(lat.P50Ms <= lat.P95Ms && lat.P95Ms <= lat.P99Ms && lat.P99Ms <= lat.MaxMs) {
			t.Errorf("route %s: percentiles out of order: %+v", rs.Route, lat)
		}
		if lat.P50Ms <= 0 || lat.MaxMs > 100 {
			t.Errorf("route %s: latency outside the observed 1..100ms range: %+v", rs.Route, lat)
		}
	}
	if want := int64(workers * perG); total != want {
		t.Fatalf("total count = %d, want %d", total, want)
	}
	if want := int64(workers * perG / 2); errors != want {
		t.Fatalf("error count = %d, want %d (every other request was a 429)", errors, want)
	}

	var sb strings.Builder
	r.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		`repro_requests_total{route="/v1/explain",code="200"}`,
		`repro_requests_total{route="/v1/explain",code="429"}`,
		`repro_degraded_total{route="/v1/update",cause="node_budget"}`,
		`repro_stage_duration_seconds_bucket{stage="compile",le="+Inf"}`,
		fmt.Sprintf(`repro_request_duration_seconds_count{route="/v1/update"} %d`, workers*perG/2),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestRecorderWindowEviction checks that the latency ring keeps only the
// most recent sampleCap observations: with cap 4 and observations 1..5 ms,
// the 1ms sample is evicted so the median over {2,3,4,5} is 3ms
// (nearest-rank) and the max is 5ms.
func TestRecorderWindowEviction(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 5; i++ {
		r.Observe("/v1/explain", 200, time.Duration(i)*time.Millisecond)
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d routes, want 1", len(snap))
	}
	lat := snap[0].Latency
	if lat.P50Ms != 3 {
		t.Errorf("p50 = %v ms, want 3 (window should hold {2,3,4,5})", lat.P50Ms)
	}
	if lat.MaxMs != 5 {
		t.Errorf("max = %v ms, want 5", lat.MaxMs)
	}
	if snap[0].Count != 5 {
		t.Errorf("count = %d, want 5 (counts are lifetime, only the window evicts)", snap[0].Count)
	}
	// The histogram is cumulative over the lifetime, not the window.
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `repro_request_duration_seconds_count{route="/v1/explain"} 5`) {
		t.Error("histogram _count should be lifetime 5")
	}

	// Keep writing: the ring must keep cycling without growing.
	for i := 6; i <= 13; i++ {
		r.Observe("/v1/explain", 200, time.Duration(i)*time.Millisecond)
	}
	lat = r.Snapshot()[0].Latency
	if lat.P50Ms != 11 || lat.MaxMs != 13 {
		t.Errorf("after 13 observations window should hold {10,11,12,13}: p50=%v max=%v", lat.P50Ms, lat.MaxMs)
	}
}

// TestHistogramCumulative pins the bucket semantics the exposition relies
// on: every bucket at or above the observed value increments, +Inf counts
// everything, and sums accumulate.
func TestHistogramCumulative(t *testing.T) {
	var h histogram
	h.observe(0.003) // ≤ 0.005 and everything above
	h.observe(0.2)   // ≤ 0.25 and above
	h.observe(99)    // only +Inf
	prev := int64(0)
	for i := range DurationBuckets {
		if h.counts[i] < prev {
			t.Fatalf("bucket %d (le=%g) count %d below previous %d", i, DurationBuckets[i], h.counts[i], prev)
		}
		prev = h.counts[i]
	}
	if got := h.counts[len(DurationBuckets)]; got != 3 {
		t.Fatalf("+Inf bucket = %d, want 3", got)
	}
	if h.count != 3 {
		t.Fatalf("count = %d, want 3", h.count)
	}
	if h.sum < 99.2 || h.sum > 99.3 {
		t.Fatalf("sum = %v, want ≈99.203", h.sum)
	}
}
