// Package metrics implements the evaluation metrics of Section 6.2: nDCG
// (and nDCG@k), Precision@k, L1/L2 distances between value vectors, plus the
// percentile summaries used in Table 1 — and the request latency/throughput
// recorder behind the explanation service's GET /v1/stats.
package metrics

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/db"
)

// NDCG computes the normalized discounted cumulative gain of the predicted
// ranking against ground-truth relevance scores. The predicted ranking is
// scored by the true relevance of the items it placed at each position; the
// ideal ranking orders items by true relevance. Negative relevances are
// shifted to zero (standard practice; Shapley values of monotone lineage
// are non-negative anyway). Returns 1 for degenerate (all-zero) truths.
func NDCG(predicted []db.FactID, truth map[db.FactID]float64) float64 {
	return NDCGAt(predicted, truth, len(predicted))
}

// NDCGAt is NDCG truncated to the top k positions.
func NDCGAt(predicted []db.FactID, truth map[db.FactID]float64, k int) float64 {
	if k > len(predicted) {
		k = len(predicted)
	}
	rel := make([]float64, 0, len(truth))
	min := 0.0
	for _, v := range truth {
		if v < min {
			min = v
		}
	}
	for _, v := range truth {
		rel = append(rel, v-min)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(rel)))

	dcg := 0.0
	for i := 0; i < k; i++ {
		g := truth[predicted[i]] - min
		dcg += g / math.Log2(float64(i)+2)
	}
	idcg := 0.0
	for i := 0; i < k && i < len(rel); i++ {
		idcg += rel[i] / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 1
	}
	return dcg / idcg
}

// PrecisionAt computes |top-k(predicted) ∩ top-k(ideal)| / k, where the
// ideal top-k is derived from the ground-truth scores (ties broken by fact
// ID, matching the deterministic ranking convention used throughout).
func PrecisionAt(predicted []db.FactID, truth map[db.FactID]float64, k int) float64 {
	ideal := RankByScore(truth)
	if k > len(predicted) {
		k = len(predicted)
	}
	if k > len(ideal) {
		k = len(ideal)
	}
	if k == 0 {
		return 1
	}
	top := make(map[db.FactID]bool, k)
	for _, id := range ideal[:k] {
		top[id] = true
	}
	hits := 0
	for _, id := range predicted[:k] {
		if top[id] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RankByScore returns fact IDs by decreasing score, ties broken by ID.
func RankByScore(scores map[db.FactID]float64) []db.FactID {
	ids := make([]db.FactID, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if scores[ids[i]] != scores[ids[j]] {
			return scores[ids[i]] > scores[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}

// L1 returns the mean absolute error between approximate and exact scores,
// over the keys of exact.
func L1(approx, exact map[db.FactID]float64) float64 {
	if len(exact) == 0 {
		return 0
	}
	sum := 0.0
	for id, e := range exact {
		sum += math.Abs(approx[id] - e)
	}
	return sum / float64(len(exact))
}

// L2 returns the mean squared error between approximate and exact scores.
func L2(approx, exact map[db.FactID]float64) float64 {
	if len(exact) == 0 {
		return 0
	}
	sum := 0.0
	for id, e := range exact {
		d := approx[id] - e
		sum += d * d
	}
	return sum / float64(len(exact))
}

// KendallTau returns the Kendall rank correlation between two score maps
// over the keys of the first (−1 .. 1, 1 = identical order). Pairs tied in
// either map are skipped.
func KendallTau(a, b map[db.FactID]float64) float64 {
	ids := make([]db.FactID, 0, len(a))
	for id := range a {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	concordant, discordant := 0, 0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			da := a[ids[i]] - a[ids[j]]
			dbv := b[ids[i]] - b[ids[j]]
			switch {
			case da*dbv > 0:
				concordant++
			case da*dbv < 0:
				discordant++
			}
		}
	}
	total := concordant + discordant
	if total == 0 {
		return 1
	}
	return float64(concordant-discordant) / float64(total)
}

// Summary holds the distribution statistics reported per query in Table 1.
type Summary struct {
	Mean, P25, P50, P75, P99 float64
}

// Summarize computes mean and percentiles of a sample (nearest-rank
// percentiles on the sorted data). An empty sample yields zeros.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64{}, xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	return Summary{
		Mean: sum / float64(len(sorted)),
		P25:  percentile(sorted, 0.25),
		P50:  percentile(sorted, 0.50),
		P75:  percentile(sorted, 0.75),
		P99:  percentile(sorted, 0.99),
	}
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Durations converts a slice of time.Duration to seconds for Summarize.
func Durations(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// LatencySummary condenses a latency sample into the percentiles a serving
// dashboard wants. All fields are milliseconds.
type LatencySummary struct {
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// SummarizeLatency computes nearest-rank latency percentiles in
// milliseconds. An empty sample yields zeros.
func SummarizeLatency(ds []time.Duration) LatencySummary {
	if len(ds) == 0 {
		return LatencySummary{}
	}
	ms := make([]float64, len(ds))
	sum := 0.0
	for i, d := range ds {
		ms[i] = float64(d) / float64(time.Millisecond)
		sum += ms[i]
	}
	sort.Float64s(ms)
	return LatencySummary{
		MeanMs: sum / float64(len(ms)),
		P50Ms:  percentile(ms, 0.50),
		P95Ms:  percentile(ms, 0.95),
		P99Ms:  percentile(ms, 0.99),
		MaxMs:  ms[len(ms)-1],
	}
}

// Recorder aggregates per-route request counters for a serving process:
// completed requests, non-2xx outcomes, overall request rate, and latency
// percentiles over a bounded window of the most recent observations (a ring
// buffer, so a long-lived server reports current behavior rather than its
// lifetime average). Safe for concurrent use.
type Recorder struct {
	mu        sync.Mutex
	start     time.Time
	sampleCap int
	routes    map[string]*routeRecord
	// stages holds cumulative per-pipeline-stage duration histograms, fed by
	// trace span observers (ObserveStage); exported only via WritePrometheus.
	stages map[string]*histogram
}

type routeRecord struct {
	count    int64
	errors   int64
	sheds    int64            // requests refused by admission control (429)
	panics   int64            // handler panics recovered into 500s
	timeout  int64            // requests cut off by the per-request deadline (504)
	degraded int64            // requests answered approximately after budget exhaustion
	samples  []time.Duration  // ring buffer of the last sampleCap latencies
	next     int              // ring write cursor once len == sampleCap
	codes    map[int]int64    // completed requests by HTTP status code
	hist     histogram        // cumulative request latency histogram
	causes   map[string]int64 // degraded requests by cause label
}

// DefaultLatencyWindow is the per-route latency ring size used when
// NewRecorder is asked for a recorder without saying how much history.
const DefaultLatencyWindow = 4096

// NewRecorder returns an empty request recorder keeping up to sampleCap
// latency observations per route (≤ 0 = DefaultLatencyWindow).
func NewRecorder(sampleCap int) *Recorder {
	if sampleCap <= 0 {
		sampleCap = DefaultLatencyWindow
	}
	return &Recorder{
		start:     time.Now(),
		sampleCap: sampleCap,
		routes:    make(map[string]*routeRecord),
		stages:    make(map[string]*histogram),
	}
}

// Observe records one completed request: its route label, HTTP status, and
// latency. Statuses outside 2xx count as errors.
func (r *Recorder) Observe(route string, status int, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.route(route)
	rec.count++
	rec.codes[status]++
	rec.hist.observe(d.Seconds())
	if status < 200 || status >= 300 {
		rec.errors++
	}
	if len(rec.samples) < r.sampleCap {
		rec.samples = append(rec.samples, d)
	} else {
		rec.samples[rec.next] = d
		rec.next = (rec.next + 1) % r.sampleCap
	}
}

// ObserveStage records one pipeline-stage duration into the stage's
// cumulative histogram. Its signature matches trace.Observer, so a Recorder
// can be wired directly as a trace root's observer (and as
// repro.Options.StageObserver for out-of-trace stages).
func (r *Recorder) ObserveStage(stage string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.stages[stage]
	if h == nil {
		h = &histogram{}
		r.stages[stage] = h
	}
	h.observe(d.Seconds())
}

// route returns (creating if needed) the record for a route label. Callers
// must hold r.mu.
func (r *Recorder) route(label string) *routeRecord {
	rec := r.routes[label]
	if rec == nil {
		rec = &routeRecord{codes: make(map[int]int64), causes: make(map[string]int64)}
		r.routes[label] = rec
	}
	return rec
}

// Shed counts one request refused by admission control. Shed requests also
// flow through Observe (with their 429 status); this counter separates
// load-shedding from other errors.
func (r *Recorder) Shed(route string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.route(route).sheds++
}

// Panicked counts one handler panic recovered into a 500. A plain 500
// cannot be told apart from a panic by status alone, so the recovery
// middleware reports panics here explicitly.
func (r *Recorder) Panicked(route string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.route(route).panics++
}

// TimedOut counts one request cut off by the per-request deadline.
func (r *Recorder) TimedOut(route string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.route(route).timeout++
}

// Degraded counts one request that exhausted its compute budget and was
// answered with sampled estimates instead of exact values. Degraded requests
// still succeed (they flow through Observe with a 2xx status); this counter
// tracks how often the anytime tier is carrying the load.
func (r *Recorder) Degraded(route string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.route(route).degraded++
}

// DegradedCause counts one degradation cause ("mode", "node_budget",
// "deadline", "error") for a route, feeding the labeled
// repro_degraded_total{route,cause} counter. A request degraded for several
// distinct causes (different tuples) counts once per cause; the aggregate
// Degraded counter stays once-per-request.
func (r *Recorder) DegradedCause(route, cause string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.route(route).causes[cause]++
}

// RouteStats is one route's snapshot from Recorder.Snapshot.
type RouteStats struct {
	Route         string
	Count, Errors int64
	// Sheds, Panics, Timeouts, and Degraded break out the degradation modes:
	// refused by admission control, recovered handler panics, deadline
	// expiries, and budget exhaustion answered by the anytime sampling tier.
	Sheds, Panics, Timeouts, Degraded int64
	// RatePerSec is lifetime completed requests over the recorder's uptime.
	RatePerSec float64
	Latency    LatencySummary
}

// Snapshot returns per-route statistics sorted by route label.
func (r *Recorder) Snapshot() []RouteStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	uptime := time.Since(r.start).Seconds()
	out := make([]RouteStats, 0, len(r.routes))
	for route, rec := range r.routes {
		rs := RouteStats{
			Route:    route,
			Count:    rec.count,
			Errors:   rec.errors,
			Sheds:    rec.sheds,
			Panics:   rec.panics,
			Timeouts: rec.timeout,
			Degraded: rec.degraded,
			Latency:  SummarizeLatency(rec.samples),
		}
		if uptime > 0 {
			rs.RatePerSec = float64(rec.count) / uptime
		}
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Route < out[j].Route })
	return out
}

// Uptime returns how long the recorder has been alive.
func (r *Recorder) Uptime() time.Duration { return time.Since(r.start) }

// Median returns the nearest-rank median of the sample.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64{}, xs...)
	sort.Float64s(sorted)
	return percentile(sorted, 0.50)
}

// Mean returns the arithmetic mean of the sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
