package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Hand-rolled Prometheus text exposition (format version 0.0.4) — no
// external dependencies, just the subset of the format the service needs:
// counters, gauges, and cumulative histograms with HELP/TYPE headers and
// escaped label values.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// DurationBuckets are the cumulative histogram bounds (seconds) shared by
// the request and stage latency histograms: half a millisecond to ten
// seconds, roughly logarithmic, plus the implicit +Inf bucket.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bound cumulative histogram over DurationBuckets.
// Guarded by the owning Recorder's mutex; the zero value is ready to use.
type histogram struct {
	counts [len15]int64 // counts[i] = observations ≤ DurationBuckets[i]; last = +Inf
	sum    float64
	count  int64
}

// len15 is len(DurationBuckets)+1; Go array lengths must be constants.
const len15 = 15

func (h *histogram) observe(seconds float64) {
	for i, bound := range DurationBuckets {
		if seconds <= bound {
			h.counts[i]++
		}
	}
	h.counts[len(DurationBuckets)]++
	h.sum += seconds
	h.count++
}

// Label is one name="value" pair of a sample.
type Label struct{ Name, Value string }

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample value; +Inf and integers round-trip through
// the standard parsers.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteHeader writes one family's # HELP and # TYPE lines.
func WriteHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteSample writes one sample line with optional labels.
func WriteSample(w io.Writer, name string, labels []Label, value float64) {
	if len(labels) == 0 {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(value))
		return
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, strings.Join(parts, ","), formatValue(value))
}

// WriteGauge writes a complete single-sample gauge family.
func WriteGauge(w io.Writer, name, help string, labels []Label, value float64) {
	WriteHeader(w, name, "gauge", help)
	WriteSample(w, name, labels, value)
}

// writeHistogram writes one histogram's _bucket/_sum/_count samples under
// the family name, with base labels attached to every sample.
func writeHistogram(w io.Writer, name string, base []Label, h *histogram) {
	for i, bound := range DurationBuckets {
		WriteSample(w, name+"_bucket", append(append([]Label{}, base...),
			Label{"le", formatValue(bound)}), float64(h.counts[i]))
	}
	WriteSample(w, name+"_bucket", append(append([]Label{}, base...),
		Label{"le", "+Inf"}), float64(h.counts[len(DurationBuckets)]))
	WriteSample(w, name+"_sum", base, h.sum)
	WriteSample(w, name+"_count", base, float64(h.count))
}

// WritePrometheus renders the recorder's counters and histograms in the
// Prometheus text exposition format: per-route request counts by status
// code, shed/panic/timeout/degraded counters (degradations also broken out
// by cause), cumulative request-latency histograms, per-stage pipeline
// histograms, and the process uptime. Callers append process-level gauges
// (pool sizes, cache counters) after it; every family name is prefixed
// "repro_".
func (r *Recorder) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()

	WriteGauge(w, "repro_uptime_seconds", "Seconds since the recorder started.",
		nil, time.Since(r.start).Seconds())

	routes := make([]string, 0, len(r.routes))
	for route := range r.routes {
		routes = append(routes, route)
	}
	sort.Strings(routes)

	WriteHeader(w, "repro_requests_total", "counter", "Completed requests by route and HTTP status code.")
	for _, route := range routes {
		rec := r.routes[route]
		codes := make([]int, 0, len(rec.codes))
		for code := range rec.codes {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			WriteSample(w, "repro_requests_total",
				[]Label{{"route", route}, {"code", strconv.Itoa(code)}},
				float64(rec.codes[code]))
		}
	}

	counter := func(name, help string, get func(*routeRecord) int64) {
		WriteHeader(w, name, "counter", help)
		for _, route := range routes {
			WriteSample(w, name, []Label{{"route", route}}, float64(get(r.routes[route])))
		}
	}
	counter("repro_sheds_total", "Requests refused by admission control (429).",
		func(rec *routeRecord) int64 { return rec.sheds })
	counter("repro_panics_total", "Handler panics recovered into 500s.",
		func(rec *routeRecord) int64 { return rec.panics })
	counter("repro_timeouts_total", "Requests cut off by the per-request deadline (504).",
		func(rec *routeRecord) int64 { return rec.timeout })

	WriteHeader(w, "repro_degraded_total", "counter", "Requests answered approximately, by route and budget-degradation cause.")
	for _, route := range routes {
		rec := r.routes[route]
		causes := make([]string, 0, len(rec.causes))
		for cause := range rec.causes {
			causes = append(causes, cause)
		}
		sort.Strings(causes)
		for _, cause := range causes {
			WriteSample(w, "repro_degraded_total",
				[]Label{{"route", route}, {"cause", cause}},
				float64(rec.causes[cause]))
		}
	}

	WriteHeader(w, "repro_request_duration_seconds", "histogram", "Request latency by route.")
	for _, route := range routes {
		writeHistogram(w, "repro_request_duration_seconds",
			[]Label{{"route", route}}, &r.routes[route].hist)
	}

	stages := make([]string, 0, len(r.stages))
	for stage := range r.stages {
		stages = append(stages, stage)
	}
	sort.Strings(stages)
	WriteHeader(w, "repro_stage_duration_seconds", "histogram", "Pipeline stage wall time by stage (from trace spans).")
	for _, stage := range stages {
		writeHistogram(w, "repro_stage_duration_seconds",
			[]Label{{"stage", stage}}, r.stages[stage])
	}
}
