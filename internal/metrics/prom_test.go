package metrics

import (
	"strings"
	"testing"
	"time"

	"repro/internal/promlint"
)

// TestWritePrometheusValidates renders a populated recorder and runs the
// output through the exposition validator — the same check CI applies to a
// live /metrics scrape.
func TestWritePrometheusValidates(t *testing.T) {
	r := NewRecorder(16)
	r.Observe("/v1/explain", 200, 3*time.Millisecond)
	r.Observe("/v1/explain", 400, 40*time.Millisecond)
	r.Observe(`/weird"route\n`, 200, time.Millisecond) // label escaping
	r.ObserveStage("compile", 2*time.Millisecond)
	r.ObserveStage("shapley", 20*time.Second) // lands only in +Inf
	r.Shed("/v1/explain")
	r.Degraded("/v1/explain")
	r.DegradedCause("/v1/explain", "deadline")

	var sb strings.Builder
	r.WritePrometheus(&sb)
	text := sb.String()

	stats, err := promlint.Validate(text)
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	if stats.Samples == 0 || stats.Families < 7 {
		t.Fatalf("suspiciously small exposition: %+v", stats)
	}

	samples, _, err := promlint.Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	for _, req := range []string{
		"repro_uptime_seconds",
		`repro_requests_total{route="/v1/explain",code="200"}`,
		`repro_requests_total{route="/v1/explain",code="400"}`,
		`repro_sheds_total{route="/v1/explain"}`,
		`repro_degraded_total{route="/v1/explain",cause="deadline"}`,
		`repro_request_duration_seconds_bucket{route="/v1/explain",le="+Inf"}`,
		`repro_stage_duration_seconds_count{stage="compile"}`,
		`repro_stage_duration_seconds_bucket{stage="shapley",le="+Inf"}`,
	} {
		if err := promlint.Require(samples, req); err != nil {
			t.Errorf("%v", err)
		}
	}

	// The escaped route must round-trip through parse.
	if err := promlint.Require(samples, "repro_requests_total"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range samples {
		if s.Labels["route"] == `/weird"route\n` {
			found = true
		}
	}
	if !found {
		t.Error("escaped route label did not round-trip")
	}

	// Deterministic output: two renders of the same recorder differ only in
	// the uptime gauge line.
	var sb2 strings.Builder
	r.WritePrometheus(&sb2)
	strip := func(s string) string {
		var out []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "repro_uptime_seconds ") {
				continue
			}
			out = append(out, line)
		}
		return strings.Join(out, "\n")
	}
	if strip(text) != strip(sb2.String()) {
		t.Error("exposition output is not deterministic")
	}
}
