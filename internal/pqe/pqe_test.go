package pqe

import (
	"context"
	"math/big"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/dnnf"
	"repro/internal/engine"
	"repro/internal/flights"
	"repro/internal/query"
)

// TestProbabilityAgainstEnumeration checks the WMC-based PQE oracle against
// brute-force enumeration of all sub-databases of the running example's
// endogenous facts.
func TestProbabilityAgainstEnumeration(t *testing.T) {
	d, fs := flights.Build()
	q := flights.Query()
	oracle, err := NewOracle(context.Background(), d, q, dnnf.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Assign distinct probabilities to the endogenous flights; airports
	// stay certain.
	pi := make(map[db.FactID]*big.Rat)
	for i := 1; i <= 8; i++ {
		pi[fs.A[i].ID] = big.NewRat(int64(i), 10)
	}
	got := oracle.Probability(pi)

	// Brute force: Σ over endogenous subsets with q true of the subset
	// probability.
	want := new(big.Rat)
	endo := d.EndogenousFacts()
	one := big.NewRat(1, 1)
	for mask := 0; mask < 1<<len(endo); mask++ {
		subset := make(map[db.FactID]bool)
		p := big.NewRat(1, 1)
		for i, f := range endo {
			in := mask&(1<<i) != 0
			subset[f.ID] = in
			if in {
				p.Mul(p, pi[f.ID])
			} else {
				p.Mul(p, new(big.Rat).Sub(one, pi[f.ID]))
			}
		}
		sub := d.WithEndogenousSubset(subset)
		cb := circuit.NewBuilder()
		lin, err := engine.EvalBoolean(sub, q, cb, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		all := make(map[circuit.Var]bool)
		for _, f := range sub.EndogenousFacts() {
			all[circuit.Var(f.ID)] = true
		}
		if circuit.Eval(lin, all) {
			want.Add(want, p)
		}
	}
	if got.Cmp(want) != 0 {
		t.Errorf("Pr(q) = %v, want %v", got, want)
	}
}

// TestCountSlicesAgainstNaive compares the Vandermonde-recovered #Slices
// with direct enumeration.
func TestCountSlicesAgainstNaive(t *testing.T) {
	d, _ := flights.Build()
	q := flights.Query()
	oracle, err := NewOracle(context.Background(), d, q, dnnf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	endoFacts := d.EndogenousFacts()
	endo := make([]db.FactID, len(endoFacts))
	for i, f := range endoFacts {
		endo[i] = f.ID
	}
	got, err := oracle.CountSlices(endo, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	game := func(subset map[db.FactID]bool) bool {
		sub := d.WithEndogenousSubset(subset)
		cb := circuit.NewBuilder()
		lin, err := engine.EvalBoolean(sub, q, cb, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		all := make(map[circuit.Var]bool)
		for _, f := range sub.EndogenousFacts() {
			all[circuit.Var(f.ID)] = true
		}
		return circuit.Eval(lin, all)
	}
	want, err := core.CountSlices(game, endo)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths %d vs %d", len(got), len(want))
	}
	for k := range want {
		if got[k].Cmp(want[k]) != 0 {
			t.Errorf("#Slices_%d = %v, want %v", k, got[k], want[k])
		}
	}
}

// TestShapleyViaPQEMatchesAlgorithm1 is the reduction's headline test: the
// Shapley values recovered through PQE oracle calls must coincide exactly
// (as rationals) with Algorithm 1's output.
func TestShapleyViaPQEMatchesAlgorithm1(t *testing.T) {
	d, fs := flights.Build()
	q := flights.Query()

	viaPQE, err := ShapleyViaPQE(context.Background(), d, q, dnnf.Options{})
	if err != nil {
		t.Fatal(err)
	}

	want := map[db.FactID]*big.Rat{
		fs.A[1].ID: big.NewRat(43, 105),
		fs.A[2].ID: big.NewRat(23, 210),
		fs.A[3].ID: big.NewRat(23, 210),
		fs.A[4].ID: big.NewRat(23, 210),
		fs.A[5].ID: big.NewRat(23, 210),
		fs.A[6].ID: big.NewRat(8, 105),
		fs.A[7].ID: big.NewRat(8, 105),
		fs.A[8].ID: new(big.Rat),
	}
	for id, w := range want {
		if viaPQE[id].Cmp(w) != 0 {
			t.Errorf("ShapleyViaPQE[%d] = %v, want %v", id, viaPQE[id], w)
		}
	}
}

// TestOracleCallCountPolynomial verifies the reduction uses O(n²) oracle
// calls for n endogenous facts (2 CountSlices per fact, each n calls).
func TestOracleCallCountPolynomial(t *testing.T) {
	d, _ := flights.Build()
	q := flights.Query()
	oracle, err := NewOracle(context.Background(), d, q, dnnf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	endoFacts := d.EndogenousFacts()
	endo := make([]db.FactID, 0, len(endoFacts))
	for _, f := range endoFacts {
		endo = append(endo, f.ID)
	}
	if _, err := oracle.CountSlices(endo[1:], map[db.FactID]bool{endo[0]: true}, nil); err != nil {
		t.Fatal(err)
	}
	if got, want := oracle.NumCalls(), len(endo); got != want {
		t.Errorf("CountSlices used %d oracle calls, want %d", got, want)
	}
}

func TestNewOracleRejectsNonBoolean(t *testing.T) {
	d, _ := flights.Build()
	q := query.MustParse(`q(x) :- Flights(x, y)`)
	if _, err := NewOracle(context.Background(), d, q, dnnf.Options{}); err == nil {
		t.Error("non-Boolean query accepted")
	}
}

func TestProbabilityCertainDatabase(t *testing.T) {
	d, _ := flights.Build()
	oracle, err := NewOracle(context.Background(), d, flights.Query(), dnnf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// All probabilities default to 1: the query is certainly true.
	if got := oracle.Probability(nil); got.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("Pr = %v, want 1", got)
	}
	// All endogenous facts impossible: the query is certainly false.
	pi := make(map[db.FactID]*big.Rat)
	for _, f := range d.EndogenousFacts() {
		pi[f.ID] = new(big.Rat)
	}
	if got := oracle.Probability(pi); got.Sign() != 0 {
		t.Errorf("Pr = %v, want 0", got)
	}
}
