// Package pqe implements probabilistic query evaluation over
// tuple-independent databases (TIDs) and the paper's Proposition 3.1: a
// polynomial-time Turing reduction from Shapley value computation to PQE.
//
// The reduction calls a PQE oracle on n+1 TIDs whose endogenous facts all
// carry probability z/(1+z) for distinct values z, observes that
//
//	(1+z)^n · Pr(q, (D_z, π_z)) = Σ_i z^i · #Slices(q, Dx, Dn, i),
//
// and recovers the #Slices counts exactly by solving the resulting
// Vandermonde system over the rationals. Shapley values then follow from
// Equation (2). The PQE oracle itself is implemented by weighted model
// counting over a compiled d-DNNF of the full lineage Lin(q, D).
package pqe

import (
	"context"
	"fmt"
	"math/big"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/dnnf"
	"repro/internal/engine"
	"repro/internal/linalg"
	"repro/internal/query"
)

// Oracle answers PQE queries Pr(q, (D, π)) for one fixed Boolean query and
// database, for arbitrary fact probability assignments π. It compiles the
// full lineage Lin(q, D) once; each probability query is then a linear-time
// weighted model count.
type Oracle struct {
	db       *db.Database
	dnnf     *dnnf.Node
	numCalls int
}

// NewOracle evaluates the Boolean query, compiles its full lineage (all
// facts as variables), and returns the reusable oracle.
func NewOracle(ctx context.Context, d *db.Database, q *query.UCQ, opts dnnf.Options) (*Oracle, error) {
	if !q.IsBoolean() {
		return nil, fmt.Errorf("pqe: query has arity %d, want Boolean", q.Arity())
	}
	cb := circuit.NewBuilder()
	lin, err := engine.EvalBoolean(d, q, cb, engine.Options{Mode: engine.ModeFull})
	if err != nil {
		return nil, err
	}
	formula := cnf.TseytinReserving(lin, d.NumFacts())
	compiled, _, err := dnnf.Compile(ctx, formula, opts)
	if err != nil {
		return nil, fmt.Errorf("pqe: lineage compilation: %w", err)
	}
	reduced := dnnf.EliminateAux(compiled, func(v int) bool { return formula.Aux[v] })
	return &Oracle{db: d, dnnf: reduced}, nil
}

// Probability returns Pr(q, (D, π)) for the given per-fact probabilities.
// Facts not present in pi default to probability 1 (certain).
func (o *Oracle) Probability(pi map[db.FactID]*big.Rat) *big.Rat {
	o.numCalls++
	one := big.NewRat(1, 1)
	return dnnf.WMC(o.dnnf, func(v int) *big.Rat {
		if p, ok := pi[db.FactID(v)]; ok {
			return p
		}
		return one
	})
}

// NumCalls reports how many oracle invocations have been made, to witness
// the polynomial call count of the reduction.
func (o *Oracle) NumCalls() int { return o.numCalls }

// CountSlices recovers #Slices(q, Dx∪F1, Dn', k) for k = 0..|Dn'| where Dn'
// is the given set of "free" endogenous facts and F1 is the set of facts
// forced present (probability 1); facts in F0 are forced absent
// (probability 0). Exogenous facts always have probability 1. The counts
// are exact integers obtained by the Vandermonde inversion.
func (o *Oracle) CountSlices(free []db.FactID, forcedOn, forcedOff map[db.FactID]bool) ([]*big.Int, error) {
	n := len(free)
	zero := new(big.Rat)
	one := big.NewRat(1, 1)

	// Evaluation points z_r = r+1 for r = 0..n (distinct positive values).
	zs := make([]*big.Rat, n+1)
	rhs := make([]*big.Rat, n+1)
	for r := 0; r <= n; r++ {
		z := big.NewRat(int64(r+1), 1)
		zs[r] = z
		pz := new(big.Rat).Quo(z, new(big.Rat).Add(one, z)) // z/(1+z)
		pi := make(map[db.FactID]*big.Rat, len(free)+len(forcedOn)+len(forcedOff))
		for _, f := range free {
			pi[f] = pz
		}
		for f := range forcedOn {
			pi[f] = one
		}
		for f := range forcedOff {
			pi[f] = zero
		}
		pr := o.Probability(pi)
		// rhs_r = (1+z)^n · Pr.
		scale := new(big.Rat).Add(one, z)
		acc := big.NewRat(1, 1)
		for i := 0; i < n; i++ {
			acc.Mul(acc, scale)
		}
		rhs[r] = acc.Mul(acc, pr)
	}
	vm := linalg.VandermondeRat(zs)
	sol, err := linalg.SolveRat(vm, rhs)
	if err != nil {
		return nil, fmt.Errorf("pqe: Vandermonde solve: %w", err)
	}
	out := make([]*big.Int, n+1)
	for i, s := range sol {
		if !s.IsInt() {
			return nil, fmt.Errorf("pqe: non-integer slice count %v at k=%d", s, i)
		}
		out[i] = new(big.Int).Set(s.Num())
	}
	return out, nil
}

// ShapleyViaPQE computes the exact Shapley value of every endogenous fact
// using only PQE oracle calls, per Proposition 3.1 and Equation (2):
//
//	Shapley(q, Dn, Dx, f) = Σ_k coef(k) · (#Slices(q, Dx∪{f}, Dn\{f}, k)
//	                                      − #Slices(q, Dx,     Dn\{f}, k)).
//
// It is asymptotically slower than Algorithm 1 (O(n²) oracle calls) but
// depends only on the PQE interface, which is the point of the reduction.
func ShapleyViaPQE(ctx context.Context, d *db.Database, q *query.UCQ, opts dnnf.Options) (core.Values, error) {
	oracle, err := NewOracle(ctx, d, q, opts)
	if err != nil {
		return nil, err
	}
	endoFacts := d.EndogenousFacts()
	endo := make([]db.FactID, len(endoFacts))
	for i, f := range endoFacts {
		endo[i] = f.ID
	}
	n := len(endo)
	out := make(core.Values, n)
	if n == 0 {
		return out, nil
	}
	coefs := core.ShapleyCoefficients(n)
	for i, f := range endo {
		rest := make([]db.FactID, 0, n-1)
		rest = append(rest, endo[:i]...)
		rest = append(rest, endo[i+1:]...)
		with, err := oracle.CountSlices(rest, map[db.FactID]bool{f: true}, nil)
		if err != nil {
			return nil, err
		}
		without, err := oracle.CountSlices(rest, nil, map[db.FactID]bool{f: true})
		if err != nil {
			return nil, err
		}
		total := new(big.Rat)
		var diff big.Int
		var term big.Rat
		for k := 0; k <= n-1; k++ {
			diff.Sub(with[k], without[k])
			if diff.Sign() == 0 {
				continue
			}
			term.SetInt(&diff)
			term.Mul(&term, coefs[k])
			total.Add(total, &term)
		}
		out[f] = total
	}
	return out, nil
}
