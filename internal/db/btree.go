package db

import "strings"

// btree is a minimal in-memory B-tree over string keys (the sort-preserving
// Key encodings, suffixed with fact IDs so every entry is unique) mapping
// to facts. It backs the sorted store's primary and secondary indexes: the
// only operations the evaluation layer needs are insert, delete, and an
// ascending scan from a lower bound, which serves equality lookups as
// prefix range scans.
type btree struct {
	root *btreeNode
	size int
}

// btreeMinItems is the B-tree minimum degree minus one: every non-root node
// holds between btreeMinItems and 2*btreeMinItems+1 items. 31 keeps nodes
// around two cache lines of string headers.
const btreeMinItems = 31

type btreeItem struct {
	key  string
	fact *Fact
}

type btreeNode struct {
	items    []btreeItem
	children []*btreeNode // nil for leaves
}

func (n *btreeNode) leaf() bool { return n.children == nil }

// find returns the index of the first item with key >= k and whether the
// item at that index equals k.
func (n *btreeNode) find(k string) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.items[mid].key < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.items) && n.items[lo].key == k
}

func (t *btree) len() int { return t.size }

// insert adds the entry; keys are unique by construction (fact-ID suffix),
// so an existing key is replaced without growing the tree.
func (t *btree) insert(k string, f *Fact) {
	if t.root == nil {
		t.root = &btreeNode{items: []btreeItem{{k, f}}}
		t.size = 1
		return
	}
	if len(t.root.items) >= 2*btreeMinItems+1 {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.root.splitChild(0)
	}
	if t.root.insertNonFull(k, f) {
		t.size++
	}
}

// splitChild splits the full child at index i, hoisting its median item.
func (n *btreeNode) splitChild(i int) {
	child := n.children[i]
	mid := len(child.items) / 2
	median := child.items[mid]
	right := &btreeNode{items: append([]btreeItem(nil), child.items[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]
	n.items = append(n.items, btreeItem{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// insertNonFull inserts into a node known to have room; it reports whether
// the tree grew (false on key replacement).
func (n *btreeNode) insertNonFull(k string, f *Fact) bool {
	i, found := n.find(k)
	if found {
		n.items[i].fact = f
		return false
	}
	if n.leaf() {
		n.items = append(n.items, btreeItem{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = btreeItem{k, f}
		return true
	}
	if len(n.children[i].items) >= 2*btreeMinItems+1 {
		n.splitChild(i)
		if k > n.items[i].key {
			i++
		} else if k == n.items[i].key {
			n.items[i].fact = f
			return false
		}
	}
	return n.children[i].insertNonFull(k, f)
}

// delete removes the key if present and reports whether it was found.
func (t *btree) delete(k string) bool {
	if t.root == nil {
		return false
	}
	ok := t.root.delete(k)
	if len(t.root.items) == 0 {
		if t.root.leaf() {
			t.root = nil
		} else {
			t.root = t.root.children[0]
		}
	}
	if ok {
		t.size--
	}
	return ok
}

func (n *btreeNode) delete(k string) bool {
	i, found := n.find(k)
	if n.leaf() {
		if !found {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if found {
		// Replace with the predecessor (max of left subtree), then delete
		// that key from the child, refilling it first if needed.
		n.ensureChild(i)
		// ensureChild may have moved the key; re-locate it.
		i, found = n.find(k)
		if !found {
			return n.children[i].delete(k)
		}
		pred := n.children[i].max()
		n.items[i] = pred
		return n.children[i].delete(pred.key)
	}
	n.ensureChild(i)
	i, found = n.find(k)
	if found {
		pred := n.children[i].max()
		n.items[i] = pred
		return n.children[i].delete(pred.key)
	}
	return n.children[i].delete(k)
}

func (n *btreeNode) max() btreeItem {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// ensureChild guarantees children[i] holds more than the minimum item count
// before descending, borrowing from a sibling or merging when it does not.
func (n *btreeNode) ensureChild(i int) {
	if len(n.children[i].items) > btreeMinItems {
		return
	}
	switch {
	case i > 0 && len(n.children[i-1].items) > btreeMinItems:
		// Borrow from the left sibling through the separator.
		child, left := n.children[i], n.children[i-1]
		child.items = append(child.items, btreeItem{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !child.leaf() {
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
		}
	case i < len(n.children)-1 && len(n.children[i+1].items) > btreeMinItems:
		// Borrow from the right sibling through the separator.
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if !child.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = append(right.children[:0], right.children[1:]...)
		}
	case i > 0:
		n.mergeChildren(i - 1)
	default:
		n.mergeChildren(i)
	}
}

// mergeChildren folds children[i+1] and the separator item into children[i].
func (n *btreeNode) mergeChildren(i int) {
	left, right := n.children[i], n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	if !left.leaf() {
		left.children = append(left.children, right.children...)
	}
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// ascend yields entries with key >= from in ascending key order until yield
// returns false.
func (t *btree) ascend(from string, yield func(btreeItem) bool) {
	if t.root != nil {
		t.root.ascend(from, yield)
	}
}

func (n *btreeNode) ascend(from string, yield func(btreeItem) bool) bool {
	i, _ := n.find(from)
	for ; i < len(n.items); i++ {
		if !n.leaf() && !n.children[i].ascend(from, yield) {
			return false
		}
		if !yield(n.items[i]) {
			return false
		}
		// Every later subtree is entirely >= from.
		from = ""
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascend(from, yield)
	}
	return true
}

// ascendPrefix yields entries whose key starts with prefix, in key order.
func (t *btree) ascendPrefix(prefix string, yield func(btreeItem) bool) {
	t.ascend(prefix, func(it btreeItem) bool {
		if !strings.HasPrefix(it.key, prefix) {
			return false
		}
		return yield(it)
	})
}
