package db

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in      string
		want    SyncPolicy
		wantErr bool
	}{
		{"", SyncPolicy{}, false},
		{"every", SyncPolicy{}, false},
		{"always", SyncPolicy{Mode: SyncAlways}, false},
		{"onclose", SyncPolicy{Mode: SyncOnClose}, false},
		{"every=1", SyncPolicy{Mode: SyncEveryN, N: 1}, false},
		{"every=256", SyncPolicy{Mode: SyncEveryN, N: 256}, false},
		{"every=0", SyncPolicy{}, true},
		{"every=-3", SyncPolicy{}, true},
		{"every=x", SyncPolicy{}, true},
		{"sometimes", SyncPolicy{}, true},
	}
	for _, c := range cases {
		got, err := ParseSyncPolicy(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseSyncPolicy(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseSyncPolicy(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, p := range []SyncPolicy{{}, {Mode: SyncAlways}, {Mode: SyncOnClose}, {Mode: SyncEveryN, N: 7}} {
		back, err := ParseSyncPolicy(p.String())
		if err != nil {
			t.Errorf("round-trip %v: %v", p, err)
		} else if back.Mode != p.Mode || back.every() != p.every() {
			t.Errorf("round-trip %v = %v", p, back)
		}
	}
}

// buildWALDir persists a relation R with n facts and returns the
// directory (store cleanly closed).
func buildWALDir(t *testing.T, n int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ds")
	d, err := NewOnBackend(BackendSorted, dir)
	if err != nil {
		t.Fatal(err)
	}
	d.CreateRelation("R", "a", "b")
	for i := 0; i < n; i++ {
		d.MustInsert("R", true, Int(int64(i)), String("x"))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestWALCorruptionRecovery feeds OpenSorted logs with every corruption
// shape a crash or bad disk produces and asserts the exact number of
// records that survive, the dropped byte counts, and that the truncated
// file reopens cleanly afterwards.
func TestWALCorruptionRecovery(t *testing.T) {
	// 5 records: 1 relation + 4 inserts.
	const relRecords, factRecords = 1, 4

	type tc struct {
		name string
		// corrupt edits the raw log given its frame boundaries.
		corrupt func(data []byte, frames []walFrame) []byte
		// wantRecords is the number of log records recovery must keep.
		wantRecords int
		wantFacts   int
		// wantDropped, if >= 0, is the exact torn-suffix length.
		wantDropped   int64
		wantTruncated bool
	}
	cases := []tc{
		{
			name:        "clean",
			corrupt:     func(data []byte, _ []walFrame) []byte { return data },
			wantRecords: relRecords + factRecords,
			wantFacts:   4,
			wantDropped: 0,
		},
		{
			name: "bit flip in payload",
			corrupt: func(data []byte, frames []walFrame) []byte {
				// Flip one payload byte of the 4th frame: its CRC fails, so
				// recovery keeps exactly the first 3 records.
				data[frames[3].end-2] ^= 0x40
				return data
			},
			wantRecords:   3,
			wantFacts:     2,
			wantDropped:   -1, // frame 4 + frame 5
			wantTruncated: true,
		},
		{
			name: "truncated length prefix",
			corrupt: func(data []byte, frames []walFrame) []byte {
				// Crash mid-header: 3 bytes of the final frame's length field.
				return data[:frames[3].end+3]
			},
			wantRecords:   4,
			wantFacts:     3,
			wantDropped:   3,
			wantTruncated: true,
		},
		{
			name: "bad checksum",
			corrupt: func(data []byte, frames []walFrame) []byte {
				// Stomp the final frame's CRC field (bytes 4..8 of its header).
				for i := frames[3].end + 4; i < frames[3].end+8; i++ {
					data[i] = 0xFF
				}
				return data
			},
			wantRecords:   4,
			wantFacts:     3,
			wantDropped:   -1,
			wantTruncated: true,
		},
		{
			name: "empty trailing frame",
			corrupt: func(data []byte, _ []walFrame) []byte {
				// A zero-length frame header is never written; treat as torn.
				return append(data, make([]byte, walHeaderSize)...)
			},
			wantRecords:   relRecords + factRecords,
			wantFacts:     4,
			wantDropped:   walHeaderSize,
			wantTruncated: true,
		},
		{
			name: "torn mid-payload",
			corrupt: func(data []byte, frames []walFrame) []byte {
				return data[:frames[4].end-5]
			},
			wantRecords:   4,
			wantFacts:     3,
			wantDropped:   -1,
			wantTruncated: true,
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := buildWALDir(t, factRecords)
			logPath := filepath.Join(dir, logName)
			data, err := os.ReadFile(logPath)
			if err != nil {
				t.Fatal(err)
			}
			frames := scanFrames(data)
			if len(frames) != relRecords+factRecords {
				t.Fatalf("pristine log has %d frames, want %d", len(frames), relRecords+factRecords)
			}
			if err := os.WriteFile(logPath, c.corrupt(data, frames), 0o644); err != nil {
				t.Fatal(err)
			}

			d, info, err := OpenSortedConfig(SortedConfig{Dir: dir})
			if err != nil {
				t.Fatalf("OpenSortedConfig: %v", err)
			}
			if info.LogRecords != c.wantRecords {
				t.Errorf("LogRecords = %d, want %d", info.LogRecords, c.wantRecords)
			}
			if d.NumFacts() != c.wantFacts {
				t.Errorf("NumFacts = %d, want %d", d.NumFacts(), c.wantFacts)
			}
			if info.Truncated != c.wantTruncated {
				t.Errorf("Truncated = %v, want %v", info.Truncated, c.wantTruncated)
			}
			if c.wantDropped >= 0 && info.DroppedBytes != c.wantDropped {
				t.Errorf("DroppedBytes = %d, want %d", info.DroppedBytes, c.wantDropped)
			}
			if c.wantTruncated && info.DroppedBytes <= 0 {
				t.Errorf("DroppedBytes = %d, want > 0", info.DroppedBytes)
			}
			// The store must be writable after recovery, and a second open
			// must find a healed (fully valid) log.
			if _, err := d.Insert("R", true, Int(100), String("post")); err != nil {
				t.Fatalf("post-recovery insert: %v", err)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			d2, info2, err := OpenSortedConfig(SortedConfig{Dir: dir})
			if err != nil {
				t.Fatalf("second open: %v", err)
			}
			if info2.Truncated || info2.DroppedBytes != 0 {
				t.Errorf("second open still dirty: %+v", info2)
			}
			if d2.NumFacts() != c.wantFacts+1 {
				t.Errorf("second open NumFacts = %d, want %d", d2.NumFacts(), c.wantFacts+1)
			}
			d2.Close()
		})
	}
}

// TestSyncAlwaysIsImmediatelyDurable: with SyncPolicy Always every
// acknowledged insert is on disk before the call returns — no Close, no
// flush, the file alone must hold every frame.
func TestSyncAlwaysIsImmediatelyDurable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	st, err := OpenSortedStoreConfig(SortedConfig{Dir: dir, Sync: SyncPolicy{Mode: SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	d := NewWithStore(st)
	d.CreateRelation("R", "a")
	for i := 0; i < 5; i++ {
		d.MustInsert("R", true, Int(int64(i)))
	}
	// Abandon the database without Close: a crash right now.
	data, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(scanFrames(data)); got != 6 {
		t.Fatalf("on-disk frames = %d, want 6 (1 relation + 5 inserts)", got)
	}
	re, err := OpenSorted(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.NumFacts() != 5 {
		t.Fatalf("recovered NumFacts = %d, want 5", re.NumFacts())
	}
	re.Close()
}

// TestCompactionBoundsReplay churns inserts and deletes far past the live
// fact count and checks (a) auto-compaction keeps the log bounded and (b)
// reopening replays O(live facts) records, not O(total mutations).
func TestCompactionBoundsReplay(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	d, err := NewOnBackend(BackendSorted, dir)
	if err != nil {
		t.Fatal(err)
	}
	d.CreateRelation("R", "a")
	const live = 8
	var alive []FactID
	for i := 0; i < live; i++ {
		alive = append(alive, d.MustInsert("R", true, Int(int64(i))).ID)
	}
	// Net-zero churn: insert + delete, 3000 mutation pairs.
	const churn = 3000
	for i := 0; i < churn; i++ {
		f := d.MustInsert("R", true, Int(int64(1000+i)))
		if err := d.Delete(f.ID); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, info, err := OpenSortedConfig(SortedConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumFacts() != live {
		t.Fatalf("NumFacts = %d, want %d", re.NumFacts(), live)
	}
	total := info.SnapshotRecords + info.LogRecords
	if total == 0 {
		t.Fatal("no snapshot was taken despite heavy churn")
	}
	// 2*churn + live + 1 mutations were logged; replay must be bounded by
	// the compaction threshold, far below that.
	if limit := 2 * compactMinRecords; total > limit {
		t.Errorf("reopen replayed %d records (snapshot %d + log %d), want <= %d",
			total, info.SnapshotRecords, info.LogRecords, limit)
	}
	for _, id := range alive {
		if re.Fact(id) == nil {
			t.Errorf("live fact %d lost across compaction", id)
		}
	}
	if f, err := re.Insert("R", true, Int(9999)); err != nil {
		t.Fatal(err)
	} else if f.ID <= alive[live-1] {
		t.Errorf("post-compaction ID %d not above watermark", f.ID)
	}
}

// TestStaleLogAfterSnapshotReplaysIdempotently simulates a crash inside
// the compaction window between the snapshot rename and the log
// truncation: the log still holds records the snapshot already covers,
// and replay must skip them instead of failing.
func TestStaleLogAfterSnapshotReplaysIdempotently(t *testing.T) {
	dir := buildWALDir(t, 3)
	d, _, err := OpenSortedConfig(SortedConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-create the stale log: duplicate records already in the snapshot —
	// the relation, an existing insert, and a delete of a never-live ID.
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	stale := []logRecord{
		{Op: "R", Rel: "R", Cols: []string{"a", "b"}},
		{Op: "I", Rel: "R", ID: 2, Endo: true, Vals: []logValue{{K: 0, I: 1}, {K: 1, S: "x"}}},
		{Op: "D", ID: 9999},
	}
	for _, rec := range stale {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(appendFrame(nil, append(b, '\n'))); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	re, info, err := OpenSortedConfig(SortedConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen over stale log: %v", err)
	}
	defer re.Close()
	if re.NumFacts() != 3 {
		t.Errorf("NumFacts = %d, want 3 (stale records double-applied?)", re.NumFacts())
	}
	if info.SnapshotRecords == 0 || info.LogRecords != len(stale) {
		t.Errorf("recovery = %+v, want snapshot plus %d stale log records", info, len(stale))
	}
	// The existing fact must be the snapshot's copy, untouched.
	if got := re.Fact(2); got == nil || !got.Endogenous {
		t.Errorf("fact 2 = %v after idempotent replay", got)
	}
}

// TestLegacyLogMigration: a pre-WAL JSONL log is detected, replayed, and
// rewritten in the framed format.
func TestLegacyLogMigration(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var legacy []byte
	recs := []logRecord{
		{Op: "R", Rel: "R", Cols: []string{"a"}},
		{Op: "I", Rel: "R", ID: 1, Endo: true, Vals: []logValue{{K: 0, I: 7}}},
		{Op: "I", Rel: "R", ID: 2, Endo: false, Vals: []logValue{{K: 0, I: 8}}},
		{Op: "D", ID: 2},
	}
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		legacy = append(legacy, b...)
		legacy = append(legacy, '\n')
	}
	if err := os.WriteFile(filepath.Join(dir, logName), legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	d, info, err := OpenSortedConfig(SortedConfig{Dir: dir})
	if err != nil {
		t.Fatalf("legacy open: %v", err)
	}
	if info.LogRecords != len(recs) {
		t.Errorf("LogRecords = %d, want %d", info.LogRecords, len(recs))
	}
	if d.NumFacts() != 1 || d.Fact(1) == nil {
		t.Fatalf("legacy replay: NumFacts = %d, Fact(1) = %v", d.NumFacts(), d.Fact(1))
	}
	if _, err := d.Insert("R", true, Int(9)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Migration must have left a framed layout: a snapshot plus a
	// non-legacy log that reopens without dropping anything.
	if data, err := os.ReadFile(filepath.Join(dir, logName)); err != nil || legacyLog(data) {
		t.Fatalf("log still legacy after migration (err=%v)", err)
	}
	re, info2, err := OpenSortedConfig(SortedConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if info2.SnapshotRecords == 0 || info2.Truncated {
		t.Errorf("post-migration recovery = %+v, want snapshot and clean log", info2)
	}
	if re.NumFacts() != 2 {
		t.Errorf("post-migration NumFacts = %d, want 2", re.NumFacts())
	}
}

// TestDegradedAfterWriteFailure: a failed log append rolls the mutation
// back, surfaces ErrDegraded, and leaves reads working on the consistent
// pre-failure state.
func TestDegradedAfterWriteFailure(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	failing := &flakyFile{}
	open := func(path string, flag int, perm os.FileMode) (WALFile, error) {
		f, err := os.OpenFile(path, flag, perm)
		if err != nil {
			return nil, err
		}
		failing.f = f
		return failing, nil
	}
	st, err := OpenSortedStoreConfig(SortedConfig{Dir: dir, Sync: SyncPolicy{Mode: SyncAlways}, OpenFile: open})
	if err != nil {
		t.Fatal(err)
	}
	d := NewWithStore(st)
	d.CreateRelation("R", "a")
	ok := d.MustInsert("R", true, Int(1))
	failing.fail = true

	if _, err := d.Insert("R", true, Int(2)); err == nil {
		t.Fatal("insert succeeded through a failing log")
	} else if !errors.Is(err, ErrDegraded) {
		t.Fatalf("insert error %v does not wrap ErrDegraded", err)
	}
	if err := d.Err(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Err() = %v, want degraded", err)
	}
	// Read path still serves the consistent pre-failure state.
	if d.NumFacts() != 1 || d.Fact(ok.ID) == nil {
		t.Fatalf("degraded reads broken: NumFacts=%d", d.NumFacts())
	}
	if got := d.Relation("R").Len(); got != 1 {
		t.Fatalf("store Len = %d, want 1 (failed insert not rolled back)", got)
	}
	// Further mutations are refused outright.
	if err := d.Delete(ok.ID); !errors.Is(err, ErrDegraded) {
		t.Fatalf("delete on degraded db = %v", err)
	}
	if d.Fact(ok.ID) == nil {
		t.Fatal("refused delete still removed the fact")
	}
	// Recovery on restart sees only the acknowledged insert.
	failing.fail = false
	re, err := OpenSorted(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumFacts() != 1 {
		t.Fatalf("recovered NumFacts = %d, want 1", re.NumFacts())
	}
}

// flakyFile passes through to an *os.File until fail is set.
type flakyFile struct {
	f    *os.File
	fail bool
}

func (w *flakyFile) Write(p []byte) (int, error) {
	if w.fail {
		return 0, fmt.Errorf("flaky: no space left on device")
	}
	return w.f.Write(p)
}
func (w *flakyFile) Sync() error {
	if w.fail {
		return fmt.Errorf("flaky: fsync failed")
	}
	return w.f.Sync()
}
func (w *flakyFile) Close() error { return w.f.Close() }

// TestMutationOnUnknownRelation: both backends must reject mutations on
// never-created relations with ErrUnknownRelation instead of panicking
// (the historical sorted-store nil deref).
func TestMutationOnUnknownRelation(t *testing.T) {
	for name, d := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			f := &Fact{ID: 1, Relation: "ghost", Tuple: Tuple{Int(1)}}
			if err := d.store.Insert(f); !errors.Is(err, ErrUnknownRelation) {
				t.Errorf("store.Insert(ghost) = %v, want ErrUnknownRelation", err)
			}
			if err := d.store.Delete(f); !errors.Is(err, ErrUnknownRelation) {
				t.Errorf("store.Delete(ghost) = %v, want ErrUnknownRelation", err)
			}
		})
	}
}
