package db

import (
	"math"
	"sort"
	"testing"
)

// TestValueKeyOrderPreserving checks that byte order of encodings matches
// value order within each kind class — the invariant the sorted backend's
// range scans rely on.
func TestValueKeyOrderPreserving(t *testing.T) {
	ints := []int64{math.MinInt64, -1 << 40, -7, -1, 0, 1, 42, 1 << 40, math.MaxInt64}
	for i := 1; i < len(ints); i++ {
		a := string(AppendValueKey(nil, Int(ints[i-1])))
		b := string(AppendValueKey(nil, Int(ints[i])))
		if !(a < b) {
			t.Errorf("key(%d) >= key(%d)", ints[i-1], ints[i])
		}
	}
	floats := []float64{math.Inf(-1), -1e300, -3.5, -0.0001, 0, 0.0001, 1, 2.5, 1e300, math.Inf(1)}
	for i := 1; i < len(floats); i++ {
		a := string(AppendValueKey(nil, Float(floats[i-1])))
		b := string(AppendValueKey(nil, Float(floats[i])))
		if !(a < b) {
			t.Errorf("key(%g) >= key(%g)", floats[i-1], floats[i])
		}
	}
	strs := []string{"", "a", "a\x00", "a\x00b", "ab", "abc", "b"}
	for i := 1; i < len(strs); i++ {
		a := string(AppendValueKey(nil, String(strs[i-1])))
		b := string(AppendValueKey(nil, String(strs[i])))
		if !(a < b) {
			t.Errorf("key(%q) >= key(%q)", strs[i-1], strs[i])
		}
	}
}

// TestTupleKeyPrefixSafety checks that the encoding is self-delimiting: the
// key of a value sequence is a byte prefix of a composite key exactly when
// the sequence is a value-level prefix. Without this, equality lookups via
// prefix range scans would return false matches.
func TestTupleKeyPrefixSafety(t *testing.T) {
	full := TupleKey(Tuple{String("ab"), Int(7)}, nil)
	if got := TupleKey(Tuple{String("ab")}, nil); len(got) >= len(full) || full[:len(got)] != got {
		t.Errorf("value prefix is not a byte prefix: %q vs %q", got, full)
	}
	// "ab" must not prefix-match a fact with first value "abc" or "ab\x00x".
	for _, other := range []Tuple{{String("abc"), Int(7)}, {String("ab\x00x"), Int(7)}} {
		ok := TupleKey(Tuple{String("ab")}, nil)
		enc := TupleKey(other, nil)
		if len(enc) >= len(ok) && enc[:len(ok)] == ok {
			t.Errorf("key(%v) falsely prefixed by key(ab)", other)
		}
	}
}

// TestTupleKeyEqualitySemantics: keys agree exactly with the Value.Key
// identity the legacy join index used (ints, floats, strings disjoint).
func TestTupleKeyEqualitySemantics(t *testing.T) {
	if TupleKey(Tuple{Int(5)}, nil) == TupleKey(Tuple{Float(5)}, nil) {
		t.Error("int and float keys collide; legacy join identity kept them distinct")
	}
	if TupleKey(Tuple{Int(5), String("x")}, nil) != TupleKey(Tuple{Int(5), String("x")}, nil) {
		t.Error("equal tuples produced different keys")
	}
	// Position subsets select the right values.
	tu := Tuple{Int(1), String("mid"), Int(3)}
	if TupleKey(tu, []int{0, 2}) != TupleKey(Tuple{Int(1), Int(3)}, nil) {
		t.Error("position-subset key mismatch")
	}
}

func TestBTreeInsertDeleteAscend(t *testing.T) {
	var bt btree
	n := 10000
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	// Deterministic shuffle.
	for i := n - 1; i > 0; i-- {
		j := (i*2654435761 + 12345) % (i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for _, v := range perm {
		key := string(AppendValueKey(nil, Int(int64(v))))
		bt.insert(key, &Fact{ID: FactID(v)})
	}
	if bt.len() != n {
		t.Fatalf("len = %d, want %d", bt.len(), n)
	}
	// Delete every third element, in shuffled order.
	deleted := make(map[int]bool)
	for _, v := range perm {
		if v%3 == 0 {
			key := string(AppendValueKey(nil, Int(int64(v))))
			if !bt.delete(key) {
				t.Fatalf("delete(%d) reported missing", v)
			}
			deleted[v] = true
		}
	}
	var got []int
	bt.ascend("", func(it btreeItem) bool {
		got = append(got, int(it.fact.ID))
		return true
	})
	if !sort.IntsAreSorted(got) {
		t.Error("ascend order is not sorted")
	}
	want := 0
	for v := 0; v < n; v++ {
		if !deleted[v] {
			if got[want] != v {
				t.Fatalf("ascend[%d] = %d, want %d", want, got[want], v)
			}
			want++
		}
	}
	if want != len(got) {
		t.Fatalf("ascend yielded %d items, want %d", len(got), want)
	}
	// Bounded ascend.
	from := string(AppendValueKey(nil, Int(9000)))
	count := 0
	bt.ascend(from, func(it btreeItem) bool {
		if int(it.fact.ID) < 9000 {
			t.Fatalf("ascend(from 9000) yielded %d", it.fact.ID)
		}
		count++
		return true
	})
	if count == 0 {
		t.Error("bounded ascend yielded nothing")
	}
}
