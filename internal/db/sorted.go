package db

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"os"
	"path/filepath"
)

// sortedStore is the ordered backend: every relation keeps a primary B-tree
// over the sort-preserving encoding of the full tuple (fact-ID suffixed, so
// duplicate tuples coexist), and secondary B-trees are built lazily per
// (relation, bound-positions) access pattern, exactly like the memory
// backend's hash indexes but serving equality lookups as prefix range
// scans. With a directory, every mutation is appended to an on-disk log so
// the dataset survives the process (OpenSorted replays it).
type sortedStore struct {
	relations map[string]*sortedRelation
	budget    int

	// Persistence (nil/disabled when dir == "").
	dir     string
	logFile *os.File
	logW    *bufio.Writer
	logging bool
	unsync  int // mutations since the last flush
}

type sortedRelation struct {
	primary btree
	indexes map[string]*sortedIndex
}

type sortedIndex struct {
	pos  []int
	tree btree
}

// logFlushEvery bounds how many mutations may sit in the write buffer
// before the log is flushed to the OS.
const logFlushEvery = 1024

// logName is the append-only mutation log inside a sorted store directory.
const logName = "facts.log"

// NewSortedStore returns an ephemeral (memory-only) sorted store.
func NewSortedStore() Store {
	s, _ := OpenSortedStore("")
	return s
}

// OpenSortedStore opens a sorted store. With an empty dir the store is
// ephemeral. With a directory, mutations are logged to dir/facts.log; the
// directory is created if needed. A directory whose log already holds data
// is refused — reopen persisted datasets with OpenSorted, which replays the
// log into a Database before appending resumes.
func OpenSortedStore(dir string) (Store, error) {
	s := &sortedStore{
		relations: make(map[string]*sortedRelation),
		budget:    DefaultIndexBudget,
		dir:       dir,
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("db: sorted store dir: %w", err)
	}
	path := filepath.Join(dir, logName)
	if st, err := os.Stat(path); err == nil && st.Size() > 0 {
		return nil, fmt.Errorf("db: sorted store log %s already holds data; use db.OpenSorted to reload it", path)
	}
	if err := s.openLog(); err != nil {
		return nil, err
	}
	s.logging = true
	return s, nil
}

func (s *sortedStore) openLog() error {
	f, err := os.OpenFile(filepath.Join(s.dir, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("db: sorted store log: %w", err)
	}
	s.logFile = f
	s.logW = bufio.NewWriter(f)
	return nil
}

func (s *sortedStore) Backend() string { return BackendSorted }

func (s *sortedStore) CreateRelation(schema Schema) {
	s.relations[schema.Name] = &sortedRelation{indexes: make(map[string]*sortedIndex)}
	s.appendLog(logRecord{Op: "R", Rel: schema.Name, Cols: schema.Columns})
}

func (s *sortedStore) Insert(f *Fact) {
	r := s.relations[f.Relation]
	key := AppendFactID(AppendTupleKey(nil, f.Tuple, nil), f.ID)
	r.primary.insert(string(key), f)
	var buf []byte
	for _, ix := range r.indexes {
		buf = AppendFactID(AppendTupleKey(buf[:0], f.Tuple, ix.pos), f.ID)
		ix.tree.insert(string(buf), f)
	}
	s.appendLog(insertRecord(f))
}

func (s *sortedStore) Delete(f *Fact) {
	r := s.relations[f.Relation]
	key := AppendFactID(AppendTupleKey(nil, f.Tuple, nil), f.ID)
	r.primary.delete(string(key))
	var buf []byte
	for _, ix := range r.indexes {
		buf = AppendFactID(AppendTupleKey(buf[:0], f.Tuple, ix.pos), f.ID)
		ix.tree.delete(string(buf))
	}
	s.appendLog(logRecord{Op: "D", ID: f.ID})
}

func (s *sortedStore) Scan(relation string) iter.Seq[*Fact] {
	r := s.relations[relation]
	return func(yield func(*Fact) bool) {
		if r == nil {
			return
		}
		r.primary.ascend("", func(it btreeItem) bool { return yield(it.fact) })
	}
}

func (s *sortedStore) Lookup(relation string, pos []int, key Key) iter.Seq[*Fact] {
	r := s.relations[relation]
	if r == nil {
		return func(func(*Fact) bool) {}
	}
	sig := posSig(pos)
	ix := r.indexes[sig]
	if ix == nil {
		if s.budget >= 0 && len(r.indexes) >= s.budget {
			// Budget exhausted: filtered primary scan.
			return func(yield func(*Fact) bool) {
				var buf []byte
				r.primary.ascend("", func(it btreeItem) bool {
					buf = AppendTupleKey(buf[:0], it.fact.Tuple, pos)
					if Key(buf) == key {
						return yield(it.fact)
					}
					return true
				})
			}
		}
		ix = &sortedIndex{pos: append([]int(nil), pos...)}
		var buf []byte
		r.primary.ascend("", func(it btreeItem) bool {
			buf = AppendFactID(AppendTupleKey(buf[:0], it.fact.Tuple, ix.pos), it.fact.ID)
			ix.tree.insert(string(buf), it.fact)
			return true
		})
		r.indexes[sig] = ix
	}
	// Value encodings are self-delimiting, so equality on the encoded
	// positions is exactly a prefix match on the index key.
	return func(yield func(*Fact) bool) {
		ix.tree.ascendPrefix(string(key), func(it btreeItem) bool { return yield(it.fact) })
	}
}

func (s *sortedStore) Len(relation string) int {
	r := s.relations[relation]
	if r == nil {
		return 0
	}
	return r.primary.len()
}

func (s *sortedStore) SetIndexBudget(n int) {
	switch {
	case n == 0:
		s.budget = DefaultIndexBudget
	case n < 0:
		s.budget = -1
	default:
		s.budget = n
	}
}

// Close flushes and closes the mutation log (no-op for ephemeral stores).
func (s *sortedStore) Close() error {
	if s.logFile == nil {
		return nil
	}
	err := s.logW.Flush()
	if cerr := s.logFile.Close(); err == nil {
		err = cerr
	}
	s.logFile, s.logW, s.logging = nil, nil, false
	return err
}

// logRecord is one line of the sorted store's JSONL mutation log.
type logRecord struct {
	Op   string     `json:"op"` // "R" create relation, "I" insert, "D" delete
	Rel  string     `json:"rel,omitempty"`
	Cols []string   `json:"cols,omitempty"`
	ID   FactID     `json:"id,omitempty"`
	Endo bool       `json:"endo,omitempty"`
	Vals []logValue `json:"vals,omitempty"`
}

// logValue is the log serialization of a Value.
type logValue struct {
	K uint8   `json:"k"`
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	S string  `json:"s,omitempty"`
}

func insertRecord(f *Fact) logRecord {
	rec := logRecord{Op: "I", Rel: f.Relation, ID: f.ID, Endo: f.Endogenous, Vals: make([]logValue, len(f.Tuple))}
	for i, v := range f.Tuple {
		rec.Vals[i] = logValue{K: uint8(v.kind), I: v.i, F: v.f, S: v.s}
	}
	return rec
}

func (rec logRecord) tuple() []Value {
	vals := make([]Value, len(rec.Vals))
	for i, lv := range rec.Vals {
		vals[i] = Value{kind: Kind(lv.K), i: lv.I, f: lv.F, s: lv.S}
	}
	return vals
}

func (s *sortedStore) appendLog(rec logRecord) {
	if !s.logging {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		panic(fmt.Sprintf("db: sorted store log encode: %v", err)) // all fields are marshalable
	}
	b = append(b, '\n')
	if _, err := s.logW.Write(b); err != nil {
		panic(fmt.Sprintf("db: sorted store log write: %v", err))
	}
	s.unsync++
	if s.unsync >= logFlushEvery {
		s.logW.Flush()
		s.unsync = 0
	}
}

// Persisted reports whether dir holds sorted-store state from a previous
// run, i.e. whether OpenSorted would restore any relations or facts from it.
func Persisted(dir string) bool {
	st, err := os.Stat(filepath.Join(dir, logName))
	return err == nil && st.Size() > 0
}

// readLog parses the mutation log under dir. A missing log yields no
// records and no error (a fresh directory is a valid empty dataset).
func readLog(dir string) ([]logRecord, error) {
	f, err := os.Open(filepath.Join(dir, logName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("db: sorted store log: %w", err)
	}
	defer f.Close()
	var out []logRecord
	dec := json.NewDecoder(bufio.NewReader(f))
	for {
		var rec logRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("db: sorted store log record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}
