package db

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"os"
	"path/filepath"
)

// sortedStore is the ordered backend: every relation keeps a primary B-tree
// over the sort-preserving encoding of the full tuple (fact-ID suffixed, so
// duplicate tuples coexist), and secondary B-trees are built lazily per
// (relation, bound-positions) access pattern, exactly like the memory
// backend's hash indexes but serving equality lookups as prefix range
// scans. With a directory, every mutation is appended to a checksummed
// write-ahead log (see wal.go) so the dataset survives the process — and
// survives the process dying mid-write: OpenSorted replays the snapshot
// plus the log's valid prefix and truncates any torn suffix.
type sortedStore struct {
	relations map[string]*sortedRelation
	budget    int

	// Persistence (nil/disabled when dir == "").
	dir      string
	sync     SyncPolicy
	openFile OpenFileFunc
	wal      *walWriter
	logging  bool
	// walRecords counts records in the live log file; compaction compares
	// it against the live fact count to decide when replay cost has
	// outgrown the data.
	walRecords int
}

type sortedRelation struct {
	primary btree
	indexes map[string]*sortedIndex
}

type sortedIndex struct {
	pos  []int
	tree btree
}

// On-disk layout of a persistent sorted store directory:
//
//	facts.log     framed WAL of mutations since the last snapshot
//	snapshot.log  framed snapshot: watermark + schemas + live facts
//	snapshot.tmp  in-progress snapshot (removed on open; never read)
const (
	logName     = "facts.log"
	snapName    = "snapshot.log"
	snapTmpName = "snapshot.tmp"
)

// SortedConfig configures a persistent sorted store beyond the directory:
// the WAL sync policy and (for fault-injection tests) the function used to
// open the WAL and snapshot files for writing.
type SortedConfig struct {
	Dir string
	// Sync is the WAL durability policy; the zero value is
	// SyncEveryN/DefaultSyncEvery.
	Sync SyncPolicy
	// OpenFile opens WAL and snapshot files for writing; nil means
	// os.OpenFile. Tests inject faultfs wrappers here.
	OpenFile OpenFileFunc
}

func (c SortedConfig) openFunc() OpenFileFunc {
	if c.OpenFile != nil {
		return c.OpenFile
	}
	return osOpenFile
}

// NewSortedStore returns an ephemeral (memory-only) sorted store.
func NewSortedStore() Store {
	s, _ := OpenSortedStore("")
	return s
}

// OpenSortedStore opens a sorted store with default configuration; see
// OpenSortedStoreConfig.
func OpenSortedStore(dir string) (Store, error) {
	return OpenSortedStoreConfig(SortedConfig{Dir: dir})
}

// OpenSortedStoreConfig opens a sorted store. With an empty Dir the store
// is ephemeral. With a directory, mutations are logged to Dir/facts.log;
// the directory is created if needed. A directory already holding
// persisted state is refused — reopen persisted datasets with OpenSorted,
// which replays snapshot and log into a Database before appending resumes.
func OpenSortedStoreConfig(cfg SortedConfig) (Store, error) {
	if err := cfg.Sync.Validate(); err != nil {
		return nil, err
	}
	s := &sortedStore{
		relations: make(map[string]*sortedRelation),
		budget:    DefaultIndexBudget,
		dir:       cfg.Dir,
		sync:      cfg.Sync,
		openFile:  cfg.openFunc(),
	}
	if cfg.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("db: sorted store dir: %w", err)
	}
	if Persisted(cfg.Dir) {
		return nil, fmt.Errorf("db: sorted store at %s already holds data; use db.OpenSorted to reload it", cfg.Dir)
	}
	if err := s.openLog(0); err != nil {
		return nil, err
	}
	s.logging = true
	return s, nil
}

// openLog opens (creating if needed) the live WAL for appending. flag
// extras beyond create+write-only+append may be passed (O_TRUNC when
// rotating after a snapshot).
func (s *sortedStore) openLog(extraFlag int) error {
	f, err := s.openFile(filepath.Join(s.dir, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND|extraFlag, 0o644)
	if err != nil {
		return fmt.Errorf("db: sorted store log: %w", err)
	}
	s.wal = newWALWriter(f, s.sync)
	return nil
}

func (s *sortedStore) Backend() string { return BackendSorted }

func (s *sortedStore) CreateRelation(schema Schema) error {
	if _, ok := s.relations[schema.Name]; ok {
		return fmt.Errorf("db: relation %q already exists in store", schema.Name)
	}
	s.relations[schema.Name] = &sortedRelation{indexes: make(map[string]*sortedIndex)}
	if err := s.appendLog(logRecord{Op: "R", Rel: schema.Name, Cols: schema.Columns}); err != nil {
		// The schema was never made durable: undo so in-memory state equals
		// what a reopen would recover.
		delete(s.relations, schema.Name)
		return err
	}
	return nil
}

func (s *sortedStore) Insert(f *Fact) error {
	r := s.relations[f.Relation]
	if r == nil {
		return fmt.Errorf("db: %w %q", ErrUnknownRelation, f.Relation)
	}
	key := AppendFactID(AppendTupleKey(nil, f.Tuple, nil), f.ID)
	r.primary.insert(string(key), f)
	var buf []byte
	for _, ix := range r.indexes {
		buf = AppendFactID(AppendTupleKey(buf[:0], f.Tuple, ix.pos), f.ID)
		ix.tree.insert(string(buf), f)
	}
	if err := s.appendLog(insertRecord(f)); err != nil {
		// Roll the trees back: a mutation the log rejected was never
		// applied, so memory matches the durable state on disk.
		r.primary.delete(string(key))
		for _, ix := range r.indexes {
			buf = AppendFactID(AppendTupleKey(buf[:0], f.Tuple, ix.pos), f.ID)
			ix.tree.delete(string(buf))
		}
		return err
	}
	return nil
}

func (s *sortedStore) Delete(f *Fact) error {
	r := s.relations[f.Relation]
	if r == nil {
		return fmt.Errorf("db: %w %q", ErrUnknownRelation, f.Relation)
	}
	key := AppendFactID(AppendTupleKey(nil, f.Tuple, nil), f.ID)
	r.primary.delete(string(key))
	var buf []byte
	for _, ix := range r.indexes {
		buf = AppendFactID(AppendTupleKey(buf[:0], f.Tuple, ix.pos), f.ID)
		ix.tree.delete(string(buf))
	}
	if err := s.appendLog(logRecord{Op: "D", ID: f.ID}); err != nil {
		r.primary.insert(string(key), f)
		for _, ix := range r.indexes {
			buf = AppendFactID(AppendTupleKey(buf[:0], f.Tuple, ix.pos), f.ID)
			ix.tree.insert(string(buf), f)
		}
		return err
	}
	return nil
}

func (s *sortedStore) Scan(relation string) iter.Seq[*Fact] {
	r := s.relations[relation]
	return func(yield func(*Fact) bool) {
		if r == nil {
			return
		}
		r.primary.ascend("", func(it btreeItem) bool { return yield(it.fact) })
	}
}

func (s *sortedStore) Lookup(relation string, pos []int, key Key) iter.Seq[*Fact] {
	r := s.relations[relation]
	if r == nil {
		return func(func(*Fact) bool) {}
	}
	sig := posSig(pos)
	ix := r.indexes[sig]
	if ix == nil {
		if s.budget >= 0 && len(r.indexes) >= s.budget {
			// Budget exhausted: filtered primary scan.
			return func(yield func(*Fact) bool) {
				var buf []byte
				r.primary.ascend("", func(it btreeItem) bool {
					buf = AppendTupleKey(buf[:0], it.fact.Tuple, pos)
					if Key(buf) == key {
						return yield(it.fact)
					}
					return true
				})
			}
		}
		ix = &sortedIndex{pos: append([]int(nil), pos...)}
		var buf []byte
		r.primary.ascend("", func(it btreeItem) bool {
			buf = AppendFactID(AppendTupleKey(buf[:0], it.fact.Tuple, ix.pos), it.fact.ID)
			ix.tree.insert(string(buf), it.fact)
			return true
		})
		r.indexes[sig] = ix
	}
	// Value encodings are self-delimiting, so equality on the encoded
	// positions is exactly a prefix match on the index key.
	return func(yield func(*Fact) bool) {
		ix.tree.ascendPrefix(string(key), func(it btreeItem) bool { return yield(it.fact) })
	}
}

func (s *sortedStore) Len(relation string) int {
	r := s.relations[relation]
	if r == nil {
		return 0
	}
	return r.primary.len()
}

func (s *sortedStore) SetIndexBudget(n int) {
	switch {
	case n == 0:
		s.budget = DefaultIndexBudget
	case n < 0:
		s.budget = -1
	default:
		s.budget = n
	}
}

// Sync forces the WAL to stable storage regardless of the sync policy
// (no-op for ephemeral stores).
func (s *sortedStore) Sync() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Sync()
}

// Close flushes, fsyncs, and closes the mutation log (no-op for ephemeral
// stores). The first failure is returned — a failed flush means the tail
// of the log never reached the disk, and callers must hear about it.
func (s *sortedStore) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal, s.logging = nil, false
	return err
}

// snapshot atomically replaces the store's durable state with the given
// records (a full image: watermark, schemas, live facts) and rotates the
// WAL so replay cost on the next open is proportional to live data, not to
// mutation history. The snapshot is crash-safe at every step: it is
// written to snapshot.tmp, fsynced, and renamed over snapshot.log; only
// then is the log truncated. A crash inside the rename→truncate window
// leaves a snapshot plus a stale log, which replay handles idempotently.
//
// On a post-rename failure the store can no longer append (wal == nil):
// the data is safe on disk but the store is effectively read-only, and the
// caller should degrade.
func (s *sortedStore) snapshot(recs []logRecord) error {
	if !s.logging {
		return nil
	}
	tmp := filepath.Join(s.dir, snapTmpName)
	f, err := s.openFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("db: snapshot: %w", err)
	}
	w := newWALWriter(f, SyncPolicy{Mode: SyncOnClose})
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			panic(fmt.Sprintf("db: snapshot encode: %v", err)) // all fields are marshalable
		}
		if err := w.Append(append(b, '\n')); err != nil {
			w.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("db: snapshot rename: %w", err)
	}
	syncDir(s.dir)
	// The snapshot now owns every live fact; retire the log. Closing the
	// old writer first makes its buffered tail reach the file before the
	// truncating reopen discards it — harmless either way, since every
	// logged record is covered by the snapshot.
	cerr := s.wal.Close()
	s.wal = nil
	if err := s.openLog(os.O_TRUNC); err != nil {
		return err
	}
	s.walRecords = 0
	return cerr
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// logRecord is one record of the sorted store's mutation log and
// snapshots. Payloads are single JSON lines (framed by wal.go), so logs
// stay greppable.
type logRecord struct {
	Op   string     `json:"op"` // "R" create relation, "I" insert, "D" delete, "M" next-ID watermark
	Rel  string     `json:"rel,omitempty"`
	Cols []string   `json:"cols,omitempty"`
	ID   FactID     `json:"id,omitempty"`
	Endo bool       `json:"endo,omitempty"`
	Vals []logValue `json:"vals,omitempty"`
}

// logValue is the log serialization of a Value.
type logValue struct {
	K uint8   `json:"k"`
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	S string  `json:"s,omitempty"`
}

func insertRecord(f *Fact) logRecord {
	rec := logRecord{Op: "I", Rel: f.Relation, ID: f.ID, Endo: f.Endogenous, Vals: make([]logValue, len(f.Tuple))}
	for i, v := range f.Tuple {
		rec.Vals[i] = logValue{K: uint8(v.kind), I: v.i, F: v.f, S: v.s}
	}
	return rec
}

func (rec logRecord) tuple() []Value {
	vals := make([]Value, len(rec.Vals))
	for i, lv := range rec.Vals {
		vals[i] = Value{kind: Kind(lv.K), i: lv.I, f: lv.F, s: lv.S}
	}
	return vals
}

// appendLog writes one record to the WAL under the store's sync policy.
// Errors propagate to the mutation that caused them — a full disk is a
// failed insert, not a dead process.
func (s *sortedStore) appendLog(rec logRecord) error {
	if !s.logging {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		panic(fmt.Sprintf("db: sorted store log encode: %v", err)) // all fields are marshalable
	}
	if err := s.wal.Append(append(b, '\n')); err != nil {
		return err
	}
	s.walRecords++
	return nil
}

// Persisted reports whether dir holds sorted-store state from a previous
// run, i.e. whether OpenSorted would restore any relations or facts from it.
func Persisted(dir string) bool {
	for _, name := range []string{snapName, logName} {
		if st, err := os.Stat(filepath.Join(dir, name)); err == nil && st.Size() > 0 {
			return true
		}
	}
	return false
}

// readWALRecords decodes the valid prefix of framed WAL data: frames up to
// the first invalid one (torn, corrupt, or undecodable) are returned along
// with the byte length of that prefix. It never fails — corruption
// shortens the prefix instead.
func readWALRecords(data []byte) (recs []logRecord, validLen int64) {
	for _, fr := range scanFrames(data) {
		var rec logRecord
		if err := json.Unmarshal(fr.payload, &rec); err != nil {
			return recs, validLen
		}
		recs = append(recs, rec)
		validLen = fr.end
	}
	return recs, validLen
}

// legacyLog reports whether data is a pre-WAL JSONL mutation log (written
// by earlier versions of this package, one bare JSON object per line).
// Framed data cannot begin with `{"` — those bytes would be the low half
// of a frame length — so the first two bytes decide.
func legacyLog(data []byte) bool {
	return len(data) >= 2 && data[0] == '{' && data[1] == '"'
}

// readLegacyLog parses a pre-WAL JSONL mutation log. Unlike WAL recovery
// this is strict: the legacy format cannot distinguish a torn tail from
// corruption, so any undecodable record fails the load (the historical
// behavior).
func readLegacyLog(data []byte) ([]logRecord, error) {
	var out []logRecord
	dec := json.NewDecoder(bytes.NewReader(data))
	for {
		var rec logRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("db: sorted store legacy log record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// readStoreState loads a persisted directory's snapshot and log records,
// truncating any torn log suffix. legacy reports a pre-WAL JSONL log that
// the caller should compact into the new format after replay.
func readStoreState(dir string) (snapRecs, logRecs []logRecord, info RecoveryInfo, legacy bool, err error) {
	// A leftover snapshot.tmp is an interrupted compaction that never
	// reached its atomic rename; it holds nothing the log doesn't.
	os.Remove(filepath.Join(dir, snapTmpName))

	snapData, err := os.ReadFile(filepath.Join(dir, snapName))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, info, false, fmt.Errorf("db: sorted store snapshot: %w", err)
	}
	snapRecs, _ = readWALRecords(snapData)
	info.SnapshotRecords = len(snapRecs)

	logPath := filepath.Join(dir, logName)
	logData, err := os.ReadFile(logPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, info, false, fmt.Errorf("db: sorted store log: %w", err)
	}
	if legacyLog(logData) {
		logRecs, err := readLegacyLog(logData)
		if err != nil {
			return nil, nil, info, false, err
		}
		info.LogRecords = len(logRecs)
		return snapRecs, logRecs, info, true, nil
	}
	var validLen int64
	logRecs, validLen = readWALRecords(logData)
	info.LogRecords = len(logRecs)
	info.DroppedBytes = int64(len(logData)) - validLen
	if info.DroppedBytes > 0 {
		info.Truncated = true
		if err := os.Truncate(logPath, validLen); err != nil {
			return nil, nil, info, false, fmt.Errorf("db: truncating torn log suffix: %w", err)
		}
	}
	return snapRecs, logRecs, info, false, nil
}
