package db

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{String("abc"), KindString, "abc"},
		{Float(2.5), KindFloat, "2.5"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("Kind(%v) = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("String(%v) = %q, want %q", c.v, c.v.String(), c.str)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(2.0), 0},
		{String("a"), String("b"), -1},
		{String("b"), String("b"), 0},
		{Int(5), String("a"), -1}, // numbers sort before strings
		{String("a"), Int(5), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Int(a).Compare(Int(b)) == -Int(b).Compare(Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return String(a).Compare(String(b)) == -String(b).Compare(String(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestValueKeyInjective(t *testing.T) {
	f := func(a, b string) bool {
		return (a == b) == (String(a).Key() == String(b).Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b int64) bool {
		return (a == b) == (Int(a).Key() == Int(b).Key())
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleKeyDistinguishesBoundaries(t *testing.T) {
	a := Tuple{String("ab"), String("c")}
	b := Tuple{String("a"), String("bc")}
	if a.Key() == b.Key() {
		t.Errorf("tuple keys collide: %q vs %q", a, b)
	}
}

func TestInsertAndLookup(t *testing.T) {
	d := New()
	d.CreateRelation("R", "x", "y")
	f1 := d.MustInsert("R", true, Int(1), Int(2))
	f2 := d.MustInsert("R", false, Int(3), Int(4))
	if f1.ID == f2.ID {
		t.Fatalf("fact IDs not unique")
	}
	if got := d.Fact(f1.ID); got != f1 {
		t.Errorf("Fact(%d) = %v, want %v", f1.ID, got, f1)
	}
	if d.NumFacts() != 2 {
		t.Errorf("NumFacts = %d, want 2", d.NumFacts())
	}
	if n := len(d.EndogenousFacts()); n != 1 {
		t.Errorf("EndogenousFacts len = %d, want 1", n)
	}
	if n := len(d.ExogenousFacts()); n != 1 {
		t.Errorf("ExogenousFacts len = %d, want 1", n)
	}
	if d.NumEndogenous() != 1 {
		t.Errorf("NumEndogenous = %d, want 1", d.NumEndogenous())
	}
}

func TestInsertErrors(t *testing.T) {
	d := New()
	d.CreateRelation("R", "x")
	if _, err := d.Insert("S", true, Int(1)); err == nil {
		t.Error("insert into unknown relation succeeded")
	}
	if _, err := d.Insert("R", true, Int(1), Int(2)); err == nil {
		t.Error("arity-mismatched insert succeeded")
	}
}

func TestCreateRelationDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate CreateRelation did not panic")
		}
	}()
	d := New()
	d.CreateRelation("R", "x")
	d.CreateRelation("R", "x")
}

func TestRestrictPreservesIDs(t *testing.T) {
	d := New()
	d.CreateRelation("R", "x")
	f1 := d.MustInsert("R", true, Int(1))
	f2 := d.MustInsert("R", true, Int(2))
	f3 := d.MustInsert("R", false, Int(3))

	sub := d.WithEndogenousSubset(map[FactID]bool{f1.ID: true})
	if sub.Fact(f1.ID) == nil {
		t.Error("selected endogenous fact missing from restriction")
	}
	if sub.Fact(f2.ID) != nil {
		t.Error("unselected endogenous fact present in restriction")
	}
	if sub.Fact(f3.ID) == nil {
		t.Error("exogenous fact missing from restriction")
	}
	if got := len(sub.Relation("R").Facts()); got != 2 {
		t.Errorf("restricted relation has %d facts, want 2", got)
	}
}

func TestSchemaColumnIndex(t *testing.T) {
	s := Schema{Name: "R", Columns: []string{"a", "b", "c"}}
	if s.ColumnIndex("b") != 1 {
		t.Errorf("ColumnIndex(b) = %d, want 1", s.ColumnIndex("b"))
	}
	if s.ColumnIndex("z") != -1 {
		t.Errorf("ColumnIndex(z) = %d, want -1", s.ColumnIndex("z"))
	}
	if s.Arity() != 3 {
		t.Errorf("Arity = %d, want 3", s.Arity())
	}
}

func TestRelationNamesOrder(t *testing.T) {
	d := New()
	d.CreateRelation("B", "x")
	d.CreateRelation("A", "x")
	names := d.RelationNames()
	if len(names) != 2 || names[0] != "B" || names[1] != "A" {
		t.Errorf("RelationNames = %v, want [B A]", names)
	}
}

func TestDeleteRemovesFactAndKeepsIDsMonotone(t *testing.T) {
	d := New()
	d.CreateRelation("R", "a")
	f1 := d.MustInsert("R", true, Int(1))
	f2 := d.MustInsert("R", true, Int(2))
	if err := d.Delete(f1.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if d.Fact(f1.ID) != nil {
		t.Errorf("Fact(%d) survived Delete", f1.ID)
	}
	if d.NumFacts() != 1 {
		t.Errorf("NumFacts = %d, want 1", d.NumFacts())
	}
	rel := d.Relation("R")
	if len(rel.Facts()) != 1 || rel.Facts()[0].ID != f2.ID {
		t.Errorf("relation facts = %v, want just #%d", rel.Facts(), f2.ID)
	}
	f3 := d.MustInsert("R", true, Int(3))
	if f3.ID <= f2.ID {
		t.Errorf("ID after delete = %d, want > %d (IDs must never be reused)", f3.ID, f2.ID)
	}
	if err := d.Delete(f1.ID); err == nil {
		t.Error("Delete of a missing ID succeeded, want error")
	}
}

func TestEpochsBumpOnEveryMutation(t *testing.T) {
	d := New()
	d.CreateRelation("R", "a")
	d.CreateRelation("S", "a")
	if d.Epoch() != 0 {
		t.Fatalf("fresh Epoch = %d, want 0", d.Epoch())
	}
	f := d.MustInsert("R", true, Int(1))
	if d.Epoch() != 1 || d.Relation("R").Epoch() != 1 || d.Relation("S").Epoch() != 0 {
		t.Errorf("after insert: db=%d R=%d S=%d, want 1/1/0",
			d.Epoch(), d.Relation("R").Epoch(), d.Relation("S").Epoch())
	}
	d.MustInsert("S", false, Int(2))
	if err := d.Delete(f.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if d.Epoch() != 3 || d.Relation("R").Epoch() != 2 || d.Relation("S").Epoch() != 1 {
		t.Errorf("after delete: db=%d R=%d S=%d, want 3/2/1",
			d.Epoch(), d.Relation("R").Epoch(), d.Relation("S").Epoch())
	}
}
