package db

import (
	"fmt"
	"iter"
)

// memStore is the in-memory backend: the historical per-relation fact
// slices (insertion order preserved), extended with secondary hash indexes
// built lazily per (relation, bound-positions) access pattern and
// maintained incrementally under mutations — replacing the per-join index
// rebuild the old evaluator paid on every joinAtom call.
type memStore struct {
	relations map[string]*memRelation
	budget    int
}

type memRelation struct {
	facts   []*Fact
	indexes map[string]*memIndex // by position signature
}

type memIndex struct {
	pos     []int
	buckets map[Key][]*Fact
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() Store {
	return &memStore{
		relations: make(map[string]*memRelation),
		budget:    DefaultIndexBudget,
	}
}

func (s *memStore) Backend() string { return BackendMemory }

func (s *memStore) CreateRelation(schema Schema) error {
	s.relations[schema.Name] = &memRelation{indexes: make(map[string]*memIndex)}
	return nil
}

func (s *memStore) Insert(f *Fact) error {
	r := s.relations[f.Relation]
	if r == nil {
		return fmt.Errorf("db: %w %q", ErrUnknownRelation, f.Relation)
	}
	r.facts = append(r.facts, f)
	var buf []byte
	for _, ix := range r.indexes {
		buf = AppendTupleKey(buf[:0], f.Tuple, ix.pos)
		k := Key(buf)
		ix.buckets[k] = append(ix.buckets[k], f)
	}
	return nil
}

func (s *memStore) Delete(f *Fact) error {
	r := s.relations[f.Relation]
	if r == nil {
		return fmt.Errorf("db: %w %q", ErrUnknownRelation, f.Relation)
	}
	for i, g := range r.facts {
		if g.ID == f.ID {
			r.facts = append(r.facts[:i], r.facts[i+1:]...)
			break
		}
	}
	var buf []byte
	for _, ix := range r.indexes {
		buf = AppendTupleKey(buf[:0], f.Tuple, ix.pos)
		k := Key(buf)
		for i, g := range ix.buckets[k] {
			if g.ID == f.ID {
				ix.buckets[k] = append(ix.buckets[k][:i], ix.buckets[k][i+1:]...)
				break
			}
		}
		if len(ix.buckets[k]) == 0 {
			delete(ix.buckets, k)
		}
	}
	return nil
}

func (s *memStore) Scan(relation string) iter.Seq[*Fact] {
	r := s.relations[relation]
	return func(yield func(*Fact) bool) {
		if r == nil {
			return
		}
		for _, f := range r.facts {
			if !yield(f) {
				return
			}
		}
	}
}

func (s *memStore) Lookup(relation string, pos []int, key Key) iter.Seq[*Fact] {
	r := s.relations[relation]
	if r == nil {
		return func(func(*Fact) bool) {}
	}
	sig := posSig(pos)
	ix := r.indexes[sig]
	if ix == nil {
		if s.budget >= 0 && len(r.indexes) >= s.budget {
			// Budget exhausted: serve a filtered scan instead of building
			// yet another index.
			return func(yield func(*Fact) bool) {
				var buf []byte
				for _, f := range r.facts {
					buf = AppendTupleKey(buf[:0], f.Tuple, pos)
					if Key(buf) == key && !yield(f) {
						return
					}
				}
			}
		}
		ix = &memIndex{pos: append([]int(nil), pos...), buckets: make(map[Key][]*Fact, len(r.facts))}
		var buf []byte
		for _, f := range r.facts {
			buf = AppendTupleKey(buf[:0], f.Tuple, pos)
			k := Key(buf)
			ix.buckets[k] = append(ix.buckets[k], f)
		}
		r.indexes[sig] = ix
	}
	bucket := ix.buckets[key]
	return func(yield func(*Fact) bool) {
		for _, f := range bucket {
			if !yield(f) {
				return
			}
		}
	}
}

func (s *memStore) Len(relation string) int {
	r := s.relations[relation]
	if r == nil {
		return 0
	}
	return len(r.facts)
}

func (s *memStore) SetIndexBudget(n int) {
	switch {
	case n == 0:
		s.budget = DefaultIndexBudget
	case n < 0:
		s.budget = -1
	default:
		s.budget = n
	}
}

func (s *memStore) Close() error { return nil }

// indexCount reports the number of built secondary indexes for a relation
// (test hook).
func (s *memStore) indexCount(relation string) int {
	r := s.relations[relation]
	if r == nil {
		return 0
	}
	return len(r.indexes)
}
