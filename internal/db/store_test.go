package db

import (
	"path/filepath"
	"sort"
	"testing"
)

// populate fills a database with a small two-relation instance.
func populate(t *testing.T, d *Database) []*Fact {
	t.Helper()
	d.CreateRelation("R", "a", "b")
	d.CreateRelation("S", "b", "c")
	var facts []*Fact
	for i := 0; i < 20; i++ {
		facts = append(facts, d.MustInsert("R", true, Int(int64(i%5)), String(string(rune('a'+i%7)))))
	}
	for i := 0; i < 10; i++ {
		facts = append(facts, d.MustInsert("S", i%2 == 0, String(string(rune('a'+i%7))), Int(int64(i))))
	}
	return facts
}

func ids(fs []*Fact) []int {
	out := make([]int, len(fs))
	for i, f := range fs {
		out[i] = int(f.ID)
	}
	sort.Ints(out)
	return out
}

func backendsUnderTest(t *testing.T) map[string]*Database {
	t.Helper()
	mem := New()
	srt, err := NewOnBackend(BackendSorted, "")
	if err != nil {
		t.Fatalf("NewOnBackend(sorted): %v", err)
	}
	return map[string]*Database{BackendMemory: mem, BackendSorted: srt}
}

// TestStoreScanAndLookupAgree drives Scan and Lookup on both backends and
// checks they see the same fact sets as the materialized Facts slice.
func TestStoreScanAndLookupAgree(t *testing.T) {
	for name, d := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			populate(t, d)
			rel := d.Relation("R")
			if rel.Len() != 20 {
				t.Fatalf("Len = %d, want 20", rel.Len())
			}
			if got := len(rel.Facts()); got != 20 {
				t.Fatalf("len(Facts()) = %d, want 20", got)
			}
			// Lookup on position 0 must partition the scan.
			seen := 0
			for v := int64(0); v < 5; v++ {
				var got []*Fact
				for f := range rel.Lookup([]int{0}, TupleKey(Tuple{Int(v)}, nil)) {
					if f.Tuple[0].AsInt() != v {
						t.Fatalf("Lookup(0=%d) yielded %v", v, f)
					}
					got = append(got, f)
				}
				seen += len(got)
			}
			if seen != 20 {
				t.Errorf("lookups covered %d facts, want 20", seen)
			}
			// Composite two-position lookup.
			want := 0
			for f := range rel.Scan() {
				if f.Tuple[0].AsInt() == 2 && f.Tuple[1].AsString() == "c" {
					want++
				}
			}
			got := 0
			for range rel.Lookup([]int{0, 1}, TupleKey(Tuple{Int(2), String("c")}, nil)) {
				got++
			}
			if got != want {
				t.Errorf("composite lookup = %d facts, want %d", got, want)
			}
			// Lookup on an unknown relation and empty relation must yield
			// nothing, not panic.
			d.CreateRelation("Empty", "x")
			for range d.Relation("Empty").Scan() {
				t.Fatal("scan of empty relation yielded a fact")
			}
			for range d.Relation("Empty").Lookup([]int{0}, TupleKey(Tuple{Int(1)}, nil)) {
				t.Fatal("lookup in empty relation yielded a fact")
			}
		})
	}
}

// TestStoreDeleteMaintainsIndexes deletes facts after indexes were built and
// checks lookups never serve dead facts.
func TestStoreDeleteMaintainsIndexes(t *testing.T) {
	for name, d := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			facts := populate(t, d)
			rel := d.Relation("R")
			// Build the index first.
			for range rel.Lookup([]int{0}, TupleKey(Tuple{Int(1)}, nil)) {
			}
			for _, f := range facts {
				if f.Relation == "R" && f.Tuple[0].AsInt() == 1 {
					if err := d.Delete(f.ID); err != nil {
						t.Fatalf("Delete: %v", err)
					}
				}
			}
			for f := range rel.Lookup([]int{0}, TupleKey(Tuple{Int(1)}, nil)) {
				t.Fatalf("lookup yielded deleted fact %v", f)
			}
			if rel.Len() != 16 {
				t.Errorf("Len after deletes = %d, want 16", rel.Len())
			}
		})
	}
}

// TestIndexBudgetFallback exhausts the per-relation index budget and checks
// lookups still return correct results via filtered scans.
func TestIndexBudgetFallback(t *testing.T) {
	for name, d := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			populate(t, d)
			d.SetIndexBudget(1)
			rel := d.Relation("R")
			for range rel.Lookup([]int{0}, TupleKey(Tuple{Int(1)}, nil)) {
			}
			// Second pattern exceeds the budget; must still be correct.
			got := 0
			for f := range rel.Lookup([]int{1}, TupleKey(Tuple{String("c")}, nil)) {
				if f.Tuple[1].AsString() != "c" {
					t.Fatalf("budget-fallback lookup yielded %v", f)
				}
				got++
			}
			want := 0
			for f := range rel.Scan() {
				if f.Tuple[1].AsString() == "c" {
					want++
				}
			}
			if got != want {
				t.Errorf("fallback lookup = %d, want %d", got, want)
			}
			if ms, ok := d.store.(*memStore); ok && ms.indexCount("R") != 1 {
				t.Errorf("index count = %d, want 1 (budget)", ms.indexCount("R"))
			}
		})
	}
}

// TestSortedScanIsKeyOrdered checks the sorted backend's native scan order.
func TestSortedScanIsKeyOrdered(t *testing.T) {
	d, err := NewOnBackend(BackendSorted, "")
	if err != nil {
		t.Fatal(err)
	}
	d.CreateRelation("R", "a")
	for _, v := range []int64{5, 1, 9, 3, 7} {
		d.MustInsert("R", true, Int(v))
	}
	var got []int64
	for f := range d.Relation("R").Scan() {
		got = append(got, f.Tuple[0].AsInt())
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("sorted scan out of order: %v", got)
		}
	}
}

// TestSortedPersistenceRoundTrip writes through a persistent sorted store,
// reopens the directory, and checks facts, IDs, endogenous flags, deletes,
// and continued appends all survive.
func TestSortedPersistenceRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	d, err := NewOnBackend(BackendSorted, dir)
	if err != nil {
		t.Fatal(err)
	}
	facts := populate(t, d)
	victim := facts[3]
	if err := d.Delete(victim.ID); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, err := OpenSorted(dir)
	if err != nil {
		t.Fatalf("OpenSorted: %v", err)
	}
	if re.NumFacts() != d.NumFacts() {
		t.Fatalf("reloaded NumFacts = %d, want %d", re.NumFacts(), d.NumFacts())
	}
	if re.Fact(victim.ID) != nil {
		t.Error("deleted fact survived the reload")
	}
	a, b := ids(d.EndogenousFacts()), ids(re.EndogenousFacts())
	if len(a) != len(b) {
		t.Fatalf("endogenous counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("endogenous IDs differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// New inserts must mint IDs above everything restored, and persist.
	nf, err := re.Insert("R", true, Int(99), String("z"))
	if err != nil {
		t.Fatal(err)
	}
	if nf.ID < FactID(len(facts)) {
		t.Errorf("post-reload ID %d collides with restored IDs", nf.ID)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenSorted(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re2.Fact(nf.ID) == nil {
		t.Error("post-reload insert did not persist")
	}
	re2.Close()
}

// TestOpenStoreErrors covers the backend registry's failure modes.
func TestOpenStoreErrors(t *testing.T) {
	if _, err := OpenStore("lsm", ""); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := OpenStore(BackendMemory, t.TempDir()); err == nil {
		t.Error("memory backend accepted a directory")
	}
	dir := t.TempDir()
	d, err := NewOnBackend(BackendSorted, dir)
	if err != nil {
		t.Fatal(err)
	}
	d.CreateRelation("R", "a")
	d.MustInsert("R", true, Int(1))
	d.Close()
	if _, err := OpenStore(BackendSorted, dir); err == nil {
		t.Error("OpenStore clobbered a non-empty persisted directory; want refusal pointing at OpenSorted")
	}
}

// TestRestrictStaysInMemory: restrictions of a sorted database are
// evaluation views on the memory backend.
func TestRestrictStaysInMemory(t *testing.T) {
	d, err := NewOnBackend(BackendSorted, "")
	if err != nil {
		t.Fatal(err)
	}
	populate(t, d)
	sub := d.Restrict(func(f *Fact) bool { return f.Endogenous })
	if sub.Backend() != BackendMemory {
		t.Errorf("restriction backend = %q, want %q", sub.Backend(), BackendMemory)
	}
	if sub.NumFacts() != d.NumEndogenous() {
		t.Errorf("restriction has %d facts, want %d", sub.NumFacts(), d.NumEndogenous())
	}
}
