// Package db defines the relational data model used throughout the
// repository: typed values, tuples, schemas, facts with an
// endogenous/exogenous annotation, and in-memory databases.
//
// The model follows Section 2 of the paper: a database is a finite set of
// facts R(a1,...,ak), partitioned into exogenous facts (taken for granted)
// and endogenous facts (those to which Shapley contributions are
// attributed). Every fact carries a database-unique integer ID which doubles
// as its Boolean provenance variable.
package db

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Sentinel errors for client-addressable failure modes, wrapped (errors.Is)
// by every mutation-path error so callers — the HTTP service's status
// mapping, for one — can classify failures without matching message text.
var (
	// ErrUnknownRelation means a relation name is not in the schema.
	ErrUnknownRelation = errors.New("unknown relation")
	// ErrNoFact means a fact ID (or content description) matches nothing.
	ErrNoFact = errors.New("no fact")
	// ErrArity means a value list does not match the relation's schema.
	ErrArity = errors.New("arity mismatch")
)

// Kind enumerates the value types supported by the engine.
type Kind uint8

// Supported value kinds.
const (
	KindInt Kind = iota
	KindString
	KindFloat
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindFloat:
		return "float"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a compact tagged union over the supported kinds. The zero Value
// is the integer 0.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// AsInt returns the integer payload; it is only meaningful for KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the numeric payload as a float64. Integers are widened.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload; it is only meaningful for KindString.
func (v Value) AsString() string { return v.s }

// Equal reports value equality. Values of different kinds are unequal,
// except that int and float compare numerically.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Compare returns -1, 0, or +1 ordering v relative to o. Numeric kinds are
// compared numerically; strings lexicographically; across numeric/string the
// kind decides (numbers sort before strings) so that Compare is a total
// order usable for sorting heterogeneous columns.
func (v Value) Compare(o Value) int {
	vn := v.kind != KindString
	on := o.kind != KindString
	switch {
	case vn && on:
		if v.kind == KindInt && o.kind == KindInt {
			switch {
			case v.i < o.i:
				return -1
			case v.i > o.i:
				return 1
			}
			return 0
		}
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case vn && !on:
		return -1
	case !vn && on:
		return 1
	default:
		return strings.Compare(v.s, o.s)
	}
}

func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return fmt.Sprintf("%d", v.i)
	case KindFloat:
		return fmt.Sprintf("%g", v.f)
	default:
		return v.s
	}
}

// Key returns a string usable as a map key that uniquely identifies the
// value within its kind class.
func (v Value) Key() string {
	switch v.kind {
	case KindInt:
		return fmt.Sprintf("i%d", v.i)
	case KindFloat:
		return fmt.Sprintf("f%g", v.f)
	default:
		return "s" + v.s
	}
}

// Tuple is an ordered list of values.
type Tuple []Value

// Key returns a canonical map key for the tuple.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('\x00')
		}
		b.WriteString(v.Key())
	}
	return b.String()
}

// Equal reports whether two tuples have the same length and pairwise equal
// values.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Schema describes a relation: its name and attribute names.
type Schema struct {
	Name    string
	Columns []string
}

// Arity returns the number of attributes.
func (s Schema) Arity() int { return len(s.Columns) }

// ColumnIndex returns the position of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// FactID identifies a fact within a Database and doubles as the fact's
// Boolean provenance variable. IDs are assigned densely from 1.
type FactID int

// Fact is a tuple stored in a named relation, annotated endogenous or
// exogenous.
type Fact struct {
	ID         FactID
	Relation   string
	Tuple      Tuple
	Endogenous bool
}

func (f Fact) String() string {
	tag := "exo"
	if f.Endogenous {
		tag = "endo"
	}
	return fmt.Sprintf("%s%s [#%d %s]", f.Relation, f.Tuple, f.ID, tag)
}

// Relation is a list of facts sharing a schema.
type Relation struct {
	Schema Schema
	Facts  []*Fact
	// epoch counts the mutations (inserts and deletes) this relation has
	// seen. Caches keyed on relation contents compare epochs instead of
	// diffing fact sets.
	epoch uint64
}

// Epoch returns the relation's mutation counter: it is bumped by every
// Insert and Delete touching the relation and never decreases, so equal
// epochs guarantee the relation's fact set has not changed.
func (r *Relation) Epoch() uint64 { return r.epoch }

// Database is an in-memory relational database: a set of relations whose
// facts carry unique IDs and endogenous/exogenous annotations.
type Database struct {
	id        uint64
	relations map[string]*Relation
	order     []string // relation names in insertion order
	facts     map[FactID]*Fact
	nextID    FactID
	epoch     uint64
}

// dbCounter mints process-unique database identities.
var dbCounter atomic.Uint64

// New returns an empty database.
func New() *Database {
	return &Database{
		id:        dbCounter.Add(1),
		relations: make(map[string]*Relation),
		facts:     make(map[FactID]*Fact),
		nextID:    1,
	}
}

// ID returns a process-unique identity for the database. Fact IDs are only
// unique within one database, so anything keying global state by fact ID —
// the compile cache's fact-set invalidation, for one — scopes it by this
// identity to keep unrelated databases with colliding fact IDs apart.
func (d *Database) ID() uint64 { return d.id }

// CreateRelation registers a new relation with the given schema. It panics
// if the relation already exists: schema setup errors are programming
// errors, not runtime conditions.
func (d *Database) CreateRelation(name string, columns ...string) {
	if _, ok := d.relations[name]; ok {
		panic(fmt.Sprintf("db: relation %q already exists", name))
	}
	d.relations[name] = &Relation{Schema: Schema{Name: name, Columns: columns}}
	d.order = append(d.order, name)
}

// Relation returns the named relation, or nil if absent.
func (d *Database) Relation(name string) *Relation { return d.relations[name] }

// RelationNames returns the relation names in creation order.
func (d *Database) RelationNames() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// Insert adds a fact to the named relation and returns it. Endogenous facts
// participate in Shapley attribution; exogenous facts are taken as given.
func (d *Database) Insert(relation string, endogenous bool, values ...Value) (*Fact, error) {
	rel, ok := d.relations[relation]
	if !ok {
		return nil, fmt.Errorf("db: %w %q", ErrUnknownRelation, relation)
	}
	if len(values) != rel.Schema.Arity() {
		return nil, fmt.Errorf("db: relation %q has arity %d, got %d values: %w",
			relation, rel.Schema.Arity(), len(values), ErrArity)
	}
	f := &Fact{
		ID:         d.nextID,
		Relation:   relation,
		Tuple:      Tuple(values),
		Endogenous: endogenous,
	}
	d.nextID++
	rel.Facts = append(rel.Facts, f)
	d.facts[f.ID] = f
	rel.epoch++
	d.epoch++
	return f, nil
}

// Delete removes the fact with the given ID. Fact IDs are never reused:
// nextID is monotone, so a deleted ID stays free forever and provenance
// variables of past explanations can never alias a later fact.
func (d *Database) Delete(id FactID) error {
	f, ok := d.facts[id]
	if !ok {
		return fmt.Errorf("db: %w with ID %d", ErrNoFact, id)
	}
	rel := d.relations[f.Relation]
	for i, g := range rel.Facts {
		if g.ID == id {
			rel.Facts = append(rel.Facts[:i], rel.Facts[i+1:]...)
			break
		}
	}
	delete(d.facts, id)
	rel.epoch++
	d.epoch++
	return nil
}

// Epoch returns the database's mutation counter: the total number of
// inserts and deletes applied so far. A cache recording the epoch it was
// built at can cheap-check staleness by comparing against the current value;
// the counter never decreases.
func (d *Database) Epoch() uint64 { return d.epoch }

// MustInsert is Insert that panics on error; it is intended for statically
// known test fixtures and generators.
func (d *Database) MustInsert(relation string, endogenous bool, values ...Value) *Fact {
	f, err := d.Insert(relation, endogenous, values...)
	if err != nil {
		panic(err)
	}
	return f
}

// Fact returns the fact with the given ID, or nil.
func (d *Database) Fact(id FactID) *Fact { return d.facts[id] }

// NumFacts returns the total number of facts.
func (d *Database) NumFacts() int { return len(d.facts) }

// EndogenousFacts returns all endogenous facts ordered by ID.
func (d *Database) EndogenousFacts() []*Fact {
	var out []*Fact
	for _, name := range d.order {
		for _, f := range d.relations[name].Facts {
			if f.Endogenous {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ExogenousFacts returns all exogenous facts ordered by ID.
func (d *Database) ExogenousFacts() []*Fact {
	var out []*Fact
	for _, name := range d.order {
		for _, f := range d.relations[name].Facts {
			if !f.Endogenous {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumEndogenous returns the number of endogenous facts.
func (d *Database) NumEndogenous() int {
	n := 0
	for _, f := range d.facts {
		if f.Endogenous {
			n++
		}
	}
	return n
}

// Restrict returns a shallow copy of the database containing only facts for
// which keep returns true. Fact IDs are preserved, so provenance variables
// remain comparable across restrictions. This is the sub-database operation
// q(Dx ∪ E) at the heart of the Shapley definition.
func (d *Database) Restrict(keep func(*Fact) bool) *Database {
	out := New()
	out.nextID = d.nextID
	for _, name := range d.order {
		rel := d.relations[name]
		out.CreateRelation(name, rel.Schema.Columns...)
		nrel := out.relations[name]
		for _, f := range rel.Facts {
			if keep(f) {
				nrel.Facts = append(nrel.Facts, f)
				out.facts[f.ID] = f
			}
		}
	}
	return out
}

// WithEndogenousSubset returns the sub-database Dx ∪ E where E is the given
// set of endogenous fact IDs. All exogenous facts are retained.
func (d *Database) WithEndogenousSubset(e map[FactID]bool) *Database {
	return d.Restrict(func(f *Fact) bool {
		return !f.Endogenous || e[f.ID]
	})
}
