// Package db defines the relational data model used throughout the
// repository: typed values, tuples, schemas, facts with an
// endogenous/exogenous annotation, and databases over a pluggable storage
// engine (in-memory by default; see Store).
//
// The model follows Section 2 of the paper: a database is a finite set of
// facts R(a1,...,ak), partitioned into exogenous facts (taken for granted)
// and endogenous facts (those to which Shapley contributions are
// attributed). Every fact carries a database-unique integer ID which doubles
// as its Boolean provenance variable.
package db

import (
	"errors"
	"fmt"
	"iter"
	"sort"
	"strings"
	"sync/atomic"
)

// Sentinel errors for client-addressable failure modes, wrapped (errors.Is)
// by every mutation-path error so callers — the HTTP service's status
// mapping, for one — can classify failures without matching message text.
var (
	// ErrUnknownRelation means a relation name is not in the schema.
	ErrUnknownRelation = errors.New("unknown relation")
	// ErrNoFact means a fact ID (or content description) matches nothing.
	ErrNoFact = errors.New("no fact")
	// ErrArity means a value list does not match the relation's schema.
	ErrArity = errors.New("arity mismatch")
)

// Kind enumerates the value types supported by the engine.
type Kind uint8

// Supported value kinds.
const (
	KindInt Kind = iota
	KindString
	KindFloat
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindFloat:
		return "float"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a compact tagged union over the supported kinds. The zero Value
// is the integer 0.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// AsInt returns the integer payload; it is only meaningful for KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the numeric payload as a float64. Integers are widened.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload; it is only meaningful for KindString.
func (v Value) AsString() string { return v.s }

// Equal reports value equality. Values of different kinds are unequal,
// except that int and float compare numerically.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Compare returns -1, 0, or +1 ordering v relative to o. Numeric kinds are
// compared numerically; strings lexicographically; across numeric/string the
// kind decides (numbers sort before strings) so that Compare is a total
// order usable for sorting heterogeneous columns.
func (v Value) Compare(o Value) int {
	vn := v.kind != KindString
	on := o.kind != KindString
	switch {
	case vn && on:
		if v.kind == KindInt && o.kind == KindInt {
			switch {
			case v.i < o.i:
				return -1
			case v.i > o.i:
				return 1
			}
			return 0
		}
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case vn && !on:
		return -1
	case !vn && on:
		return 1
	default:
		return strings.Compare(v.s, o.s)
	}
}

func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return fmt.Sprintf("%d", v.i)
	case KindFloat:
		return fmt.Sprintf("%g", v.f)
	default:
		return v.s
	}
}

// Key returns a string usable as a map key that uniquely identifies the
// value within its kind class.
func (v Value) Key() string {
	switch v.kind {
	case KindInt:
		return fmt.Sprintf("i%d", v.i)
	case KindFloat:
		return fmt.Sprintf("f%g", v.f)
	default:
		return "s" + v.s
	}
}

// Tuple is an ordered list of values.
type Tuple []Value

// Key returns a canonical map key for the tuple.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('\x00')
		}
		b.WriteString(v.Key())
	}
	return b.String()
}

// Equal reports whether two tuples have the same length and pairwise equal
// values.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Schema describes a relation: its name and attribute names.
type Schema struct {
	Name    string
	Columns []string
}

// Arity returns the number of attributes.
func (s Schema) Arity() int { return len(s.Columns) }

// ColumnIndex returns the position of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// FactID identifies a fact within a Database and doubles as the fact's
// Boolean provenance variable. IDs are assigned densely from 1.
type FactID int

// Fact is a tuple stored in a named relation, annotated endogenous or
// exogenous.
type Fact struct {
	ID         FactID
	Relation   string
	Tuple      Tuple
	Endogenous bool
}

func (f Fact) String() string {
	tag := "exo"
	if f.Endogenous {
		tag = "endo"
	}
	return fmt.Sprintf("%s%s [#%d %s]", f.Relation, f.Tuple, f.ID, tag)
}

// Relation is a set of facts sharing a schema. Fact storage lives in the
// database's Store; the Relation is the evaluation layer's handle to scan
// it, probe its indexes, and watch its mutation epoch.
type Relation struct {
	Schema Schema
	store  Store
	// epoch counts the mutations (inserts and deletes) this relation has
	// seen. Caches keyed on relation contents compare epochs instead of
	// diffing fact sets.
	epoch uint64
}

// Epoch returns the relation's mutation counter: it is bumped by every
// Insert and Delete touching the relation and never decreases, so equal
// epochs guarantee the relation's fact set has not changed.
func (r *Relation) Epoch() uint64 { return r.epoch }

// Len returns the relation's fact count.
func (r *Relation) Len() int { return r.store.Len(r.Schema.Name) }

// Facts materializes the relation's facts as a slice, in the backend's
// native order (insertion order for the memory backend, key order for the
// sorted backend). Hot paths should prefer Scan or Lookup; Facts exists for
// tests, reports, and snapshot-style consumers.
func (r *Relation) Facts() []*Fact {
	out := make([]*Fact, 0, r.Len())
	for f := range r.Scan() {
		out = append(out, f)
	}
	return out
}

// Scan yields every fact of the relation in the backend's native order.
func (r *Relation) Scan() iter.Seq[*Fact] { return r.store.Scan(r.Schema.Name) }

// Lookup yields the facts whose tuple matches key at the given positions
// (pos ascending, key the TupleKey encoding of the sought values). The
// store serves it from a lazily built secondary index for the position
// pattern, falling back to a filtered scan past the index budget.
func (r *Relation) Lookup(pos []int, key Key) iter.Seq[*Fact] {
	return r.store.Lookup(r.Schema.Name, pos, key)
}

// Database is a relational database — a set of relations whose facts carry
// unique IDs and endogenous/exogenous annotations — over a pluggable
// storage engine. The default backend keeps everything in memory exactly as
// the package always has; NewOnBackend selects others (see Store).
type Database struct {
	id        uint64
	store     Store
	relations map[string]*Relation
	order     []string // relation names in insertion order
	facts     map[FactID]*Fact
	nextID    FactID
	epoch     uint64
}

// dbCounter mints process-unique database identities.
var dbCounter atomic.Uint64

// New returns an empty database on the in-memory backend.
func New() *Database { return NewWithStore(NewMemStore()) }

// NewWithStore returns an empty database over the given (empty) store.
func NewWithStore(s Store) *Database {
	return &Database{
		id:        dbCounter.Add(1),
		store:     s,
		relations: make(map[string]*Relation),
		facts:     make(map[FactID]*Fact),
		nextID:    1,
	}
}

// NewOnBackend returns an empty database on the named storage backend ("",
// BackendMemory, or BackendSorted). dir makes the sorted backend persistent
// (see OpenSortedStore); reopen a persisted directory with OpenSorted.
func NewOnBackend(backend, dir string) (*Database, error) {
	s, err := OpenStore(backend, dir)
	if err != nil {
		return nil, err
	}
	return NewWithStore(s), nil
}

// OpenSorted reloads a database persisted by a sorted store: it replays the
// mutation log under dir — schema creations, inserts (original fact IDs and
// endogenous flags preserved), deletes — and resumes appending to the same
// log, so the reloaded database continues exactly where the writer left
// off.
func OpenSorted(dir string) (*Database, error) {
	recs, err := readLog(dir)
	if err != nil {
		return nil, err
	}
	st := &sortedStore{
		relations: make(map[string]*sortedRelation),
		budget:    DefaultIndexBudget,
		dir:       dir,
	}
	d := NewWithStore(st)
	for i, rec := range recs {
		switch rec.Op {
		case "R":
			d.CreateRelation(rec.Rel, rec.Cols...)
		case "I":
			f := &Fact{ID: rec.ID, Relation: rec.Rel, Tuple: rec.tuple(), Endogenous: rec.Endo}
			if err := d.restoreFact(f); err != nil {
				return nil, fmt.Errorf("db: replaying %s record %d: %w", logName, i, err)
			}
		case "D":
			if err := d.Delete(rec.ID); err != nil {
				return nil, fmt.Errorf("db: replaying %s record %d: %w", logName, i, err)
			}
		default:
			return nil, fmt.Errorf("db: replaying %s record %d: unknown op %q", logName, i, rec.Op)
		}
	}
	if err := st.openLog(); err != nil {
		return nil, err
	}
	st.logging = true
	return d, nil
}

// restoreFact inserts a fully formed fact (ID already assigned) during log
// replay, keeping nextID ahead of every restored ID.
func (d *Database) restoreFact(f *Fact) error {
	rel, ok := d.relations[f.Relation]
	if !ok {
		return fmt.Errorf("db: %w %q", ErrUnknownRelation, f.Relation)
	}
	if len(f.Tuple) != rel.Schema.Arity() {
		return fmt.Errorf("db: relation %q has arity %d, got %d values: %w",
			f.Relation, rel.Schema.Arity(), len(f.Tuple), ErrArity)
	}
	d.store.Insert(f)
	d.facts[f.ID] = f
	if f.ID >= d.nextID {
		d.nextID = f.ID + 1
	}
	rel.epoch++
	d.epoch++
	return nil
}

// Backend returns the name of the storage backend the database runs on.
func (d *Database) Backend() string { return d.store.Backend() }

// SetIndexBudget bounds the number of lazily built secondary indexes the
// store keeps per relation (0 restores the default, negative = unbounded).
func (d *Database) SetIndexBudget(n int) { d.store.SetIndexBudget(n) }

// Close releases the storage backend's resources (flushes and closes the
// mutation log of a persistent sorted store; a no-op for memory).
func (d *Database) Close() error { return d.store.Close() }

// ID returns a process-unique identity for the database. Fact IDs are only
// unique within one database, so anything keying global state by fact ID —
// the compile cache's fact-set invalidation, for one — scopes it by this
// identity to keep unrelated databases with colliding fact IDs apart.
func (d *Database) ID() uint64 { return d.id }

// CreateRelation registers a new relation with the given schema. It panics
// if the relation already exists: schema setup errors are programming
// errors, not runtime conditions.
func (d *Database) CreateRelation(name string, columns ...string) {
	if _, ok := d.relations[name]; ok {
		panic(fmt.Sprintf("db: relation %q already exists", name))
	}
	schema := Schema{Name: name, Columns: columns}
	d.relations[name] = &Relation{Schema: schema, store: d.store}
	d.order = append(d.order, name)
	d.store.CreateRelation(schema)
}

// Relation returns the named relation, or nil if absent.
func (d *Database) Relation(name string) *Relation { return d.relations[name] }

// RelationNames returns the relation names in creation order.
func (d *Database) RelationNames() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// Insert adds a fact to the named relation and returns it. Endogenous facts
// participate in Shapley attribution; exogenous facts are taken as given.
func (d *Database) Insert(relation string, endogenous bool, values ...Value) (*Fact, error) {
	rel, ok := d.relations[relation]
	if !ok {
		return nil, fmt.Errorf("db: %w %q", ErrUnknownRelation, relation)
	}
	if len(values) != rel.Schema.Arity() {
		return nil, fmt.Errorf("db: relation %q has arity %d, got %d values: %w",
			relation, rel.Schema.Arity(), len(values), ErrArity)
	}
	f := &Fact{
		ID:         d.nextID,
		Relation:   relation,
		Tuple:      Tuple(values),
		Endogenous: endogenous,
	}
	d.nextID++
	d.store.Insert(f)
	d.facts[f.ID] = f
	rel.epoch++
	d.epoch++
	return f, nil
}

// Delete removes the fact with the given ID. Fact IDs are never reused:
// nextID is monotone, so a deleted ID stays free forever and provenance
// variables of past explanations can never alias a later fact.
func (d *Database) Delete(id FactID) error {
	f, ok := d.facts[id]
	if !ok {
		return fmt.Errorf("db: %w with ID %d", ErrNoFact, id)
	}
	rel := d.relations[f.Relation]
	d.store.Delete(f)
	delete(d.facts, id)
	rel.epoch++
	d.epoch++
	return nil
}

// Epoch returns the database's mutation counter: the total number of
// inserts and deletes applied so far. A cache recording the epoch it was
// built at can cheap-check staleness by comparing against the current value;
// the counter never decreases.
func (d *Database) Epoch() uint64 { return d.epoch }

// MustInsert is Insert that panics on error; it is intended for statically
// known test fixtures and generators.
func (d *Database) MustInsert(relation string, endogenous bool, values ...Value) *Fact {
	f, err := d.Insert(relation, endogenous, values...)
	if err != nil {
		panic(err)
	}
	return f
}

// Fact returns the fact with the given ID, or nil.
func (d *Database) Fact(id FactID) *Fact { return d.facts[id] }

// NumFacts returns the total number of facts.
func (d *Database) NumFacts() int { return len(d.facts) }

// EndogenousFacts returns all endogenous facts ordered by ID.
func (d *Database) EndogenousFacts() []*Fact {
	var out []*Fact
	for _, name := range d.order {
		for f := range d.relations[name].Scan() {
			if f.Endogenous {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ExogenousFacts returns all exogenous facts ordered by ID.
func (d *Database) ExogenousFacts() []*Fact {
	var out []*Fact
	for _, name := range d.order {
		for f := range d.relations[name].Scan() {
			if !f.Endogenous {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumEndogenous returns the number of endogenous facts.
func (d *Database) NumEndogenous() int {
	n := 0
	for _, f := range d.facts {
		if f.Endogenous {
			n++
		}
	}
	return n
}

// Restrict returns a shallow copy of the database containing only facts for
// which keep returns true. Fact IDs are preserved, so provenance variables
// remain comparable across restrictions. This is the sub-database operation
// q(Dx ∪ E) at the heart of the Shapley definition. Restrictions always
// live on the in-memory backend regardless of the source's store: they are
// short-lived evaluation views sharing the source's fact pointers.
func (d *Database) Restrict(keep func(*Fact) bool) *Database {
	out := New()
	out.nextID = d.nextID
	for _, name := range d.order {
		rel := d.relations[name]
		out.CreateRelation(name, rel.Schema.Columns...)
		for f := range rel.Scan() {
			if keep(f) {
				out.store.Insert(f)
				out.facts[f.ID] = f
			}
		}
	}
	return out
}

// Migrate copies the database onto the named storage backend: same schemas
// in creation order, same facts with their IDs and endogenous flags
// preserved (so provenance variables stay comparable), same next-ID
// watermark. Facts are deep-copied — the two databases share nothing — and
// inserted in ID order, which for the memory backend reproduces insertion
// order. dir makes a sorted target persistent. The source is unchanged.
func (d *Database) Migrate(backend, dir string) (*Database, error) {
	out, err := NewOnBackend(backend, dir)
	if err != nil {
		return nil, err
	}
	for _, name := range d.order {
		out.CreateRelation(name, d.relations[name].Schema.Columns...)
	}
	facts := make([]*Fact, 0, len(d.facts))
	for _, f := range d.facts {
		facts = append(facts, f)
	}
	sort.Slice(facts, func(i, j int) bool { return facts[i].ID < facts[j].ID })
	for _, f := range facts {
		cp := &Fact{ID: f.ID, Relation: f.Relation, Endogenous: f.Endogenous,
			Tuple: append(Tuple(nil), f.Tuple...)}
		if err := out.restoreFact(cp); err != nil {
			out.Close()
			return nil, err
		}
	}
	if out.nextID < d.nextID {
		out.nextID = d.nextID
	}
	return out, nil
}

// WithEndogenousSubset returns the sub-database Dx ∪ E where E is the given
// set of endogenous fact IDs. All exogenous facts are retained.
func (d *Database) WithEndogenousSubset(e map[FactID]bool) *Database {
	return d.Restrict(func(f *Fact) bool {
		return !f.Endogenous || e[f.ID]
	})
}
