// Package db defines the relational data model used throughout the
// repository: typed values, tuples, schemas, facts with an
// endogenous/exogenous annotation, and databases over a pluggable storage
// engine (in-memory by default; see Store).
//
// The model follows Section 2 of the paper: a database is a finite set of
// facts R(a1,...,ak), partitioned into exogenous facts (taken for granted)
// and endogenous facts (those to which Shapley contributions are
// attributed). Every fact carries a database-unique integer ID which doubles
// as its Boolean provenance variable.
package db

import (
	"errors"
	"fmt"
	"iter"
	"sort"
	"strings"
	"sync/atomic"
)

// Sentinel errors for client-addressable failure modes, wrapped (errors.Is)
// by every mutation-path error so callers — the HTTP service's status
// mapping, for one — can classify failures without matching message text.
var (
	// ErrUnknownRelation means a relation name is not in the schema.
	ErrUnknownRelation = errors.New("unknown relation")
	// ErrNoFact means a fact ID (or content description) matches nothing.
	ErrNoFact = errors.New("no fact")
	// ErrArity means a value list does not match the relation's schema.
	ErrArity = errors.New("arity mismatch")
	// ErrDegraded means the database is read-only because a storage write
	// failed (full disk, dead file handle): reads and explanations keep
	// working against the consistent in-memory state, but every further
	// mutation is refused so memory never drifts ahead of the durable log.
	ErrDegraded = errors.New("database degraded (read-only after storage failure)")
)

// Kind enumerates the value types supported by the engine.
type Kind uint8

// Supported value kinds.
const (
	KindInt Kind = iota
	KindString
	KindFloat
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindFloat:
		return "float"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a compact tagged union over the supported kinds. The zero Value
// is the integer 0.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// AsInt returns the integer payload; it is only meaningful for KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the numeric payload as a float64. Integers are widened.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload; it is only meaningful for KindString.
func (v Value) AsString() string { return v.s }

// Equal reports value equality. Values of different kinds are unequal,
// except that int and float compare numerically.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Compare returns -1, 0, or +1 ordering v relative to o. Numeric kinds are
// compared numerically; strings lexicographically; across numeric/string the
// kind decides (numbers sort before strings) so that Compare is a total
// order usable for sorting heterogeneous columns.
func (v Value) Compare(o Value) int {
	vn := v.kind != KindString
	on := o.kind != KindString
	switch {
	case vn && on:
		if v.kind == KindInt && o.kind == KindInt {
			switch {
			case v.i < o.i:
				return -1
			case v.i > o.i:
				return 1
			}
			return 0
		}
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case vn && !on:
		return -1
	case !vn && on:
		return 1
	default:
		return strings.Compare(v.s, o.s)
	}
}

func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return fmt.Sprintf("%d", v.i)
	case KindFloat:
		return fmt.Sprintf("%g", v.f)
	default:
		return v.s
	}
}

// Key returns a string usable as a map key that uniquely identifies the
// value within its kind class.
func (v Value) Key() string {
	switch v.kind {
	case KindInt:
		return fmt.Sprintf("i%d", v.i)
	case KindFloat:
		return fmt.Sprintf("f%g", v.f)
	default:
		return "s" + v.s
	}
}

// Tuple is an ordered list of values.
type Tuple []Value

// Key returns a canonical map key for the tuple.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('\x00')
		}
		b.WriteString(v.Key())
	}
	return b.String()
}

// Equal reports whether two tuples have the same length and pairwise equal
// values.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Schema describes a relation: its name and attribute names.
type Schema struct {
	Name    string
	Columns []string
}

// Arity returns the number of attributes.
func (s Schema) Arity() int { return len(s.Columns) }

// ColumnIndex returns the position of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// FactID identifies a fact within a Database and doubles as the fact's
// Boolean provenance variable. IDs are assigned densely from 1.
type FactID int

// Fact is a tuple stored in a named relation, annotated endogenous or
// exogenous.
type Fact struct {
	ID         FactID
	Relation   string
	Tuple      Tuple
	Endogenous bool
}

func (f Fact) String() string {
	tag := "exo"
	if f.Endogenous {
		tag = "endo"
	}
	return fmt.Sprintf("%s%s [#%d %s]", f.Relation, f.Tuple, f.ID, tag)
}

// Relation is a set of facts sharing a schema. Fact storage lives in the
// database's Store; the Relation is the evaluation layer's handle to scan
// it, probe its indexes, and watch its mutation epoch.
type Relation struct {
	Schema Schema
	store  Store
	// epoch counts the mutations (inserts and deletes) this relation has
	// seen. Caches keyed on relation contents compare epochs instead of
	// diffing fact sets.
	epoch uint64
}

// Epoch returns the relation's mutation counter: it is bumped by every
// Insert and Delete touching the relation and never decreases, so equal
// epochs guarantee the relation's fact set has not changed.
func (r *Relation) Epoch() uint64 { return r.epoch }

// Len returns the relation's fact count.
func (r *Relation) Len() int { return r.store.Len(r.Schema.Name) }

// Facts materializes the relation's facts as a slice, in the backend's
// native order (insertion order for the memory backend, key order for the
// sorted backend). Hot paths should prefer Scan or Lookup; Facts exists for
// tests, reports, and snapshot-style consumers.
func (r *Relation) Facts() []*Fact {
	out := make([]*Fact, 0, r.Len())
	for f := range r.Scan() {
		out = append(out, f)
	}
	return out
}

// Scan yields every fact of the relation in the backend's native order.
func (r *Relation) Scan() iter.Seq[*Fact] { return r.store.Scan(r.Schema.Name) }

// Lookup yields the facts whose tuple matches key at the given positions
// (pos ascending, key the TupleKey encoding of the sought values). The
// store serves it from a lazily built secondary index for the position
// pattern, falling back to a filtered scan past the index budget.
func (r *Relation) Lookup(pos []int, key Key) iter.Seq[*Fact] {
	return r.store.Lookup(r.Schema.Name, pos, key)
}

// Database is a relational database — a set of relations whose facts carry
// unique IDs and endogenous/exogenous annotations — over a pluggable
// storage engine. The default backend keeps everything in memory exactly as
// the package always has; NewOnBackend selects others (see Store).
type Database struct {
	id        uint64
	store     Store
	relations map[string]*Relation
	order     []string // relation names in insertion order
	facts     map[FactID]*Fact
	nextID    FactID
	epoch     uint64
	// degraded is the sticky first storage failure. Once set, the database
	// is read-only: the in-memory state is still consistent (failed
	// mutations were rolled back by the store), but accepting more writes
	// would let memory diverge from what a restart recovers.
	degraded error
}

// dbCounter mints process-unique database identities.
var dbCounter atomic.Uint64

// New returns an empty database on the in-memory backend.
func New() *Database { return NewWithStore(NewMemStore()) }

// NewWithStore returns an empty database over the given (empty) store.
func NewWithStore(s Store) *Database {
	return &Database{
		id:        dbCounter.Add(1),
		store:     s,
		relations: make(map[string]*Relation),
		facts:     make(map[FactID]*Fact),
		nextID:    1,
	}
}

// NewOnBackend returns an empty database on the named storage backend ("",
// BackendMemory, or BackendSorted). dir makes the sorted backend persistent
// (see OpenSortedStore); reopen a persisted directory with OpenSorted.
func NewOnBackend(backend, dir string) (*Database, error) {
	s, err := OpenStore(backend, dir)
	if err != nil {
		return nil, err
	}
	return NewWithStore(s), nil
}

// OpenSorted reloads a database persisted by a sorted store; see
// OpenSortedConfig. It keeps the historical one-result signature for
// callers that don't care about recovery details.
func OpenSorted(dir string) (*Database, error) {
	d, _, err := OpenSortedConfig(SortedConfig{Dir: dir})
	return d, err
}

// OpenSortedConfig reloads a database persisted by a sorted store: it
// replays the snapshot (if any) and then the mutation log under cfg.Dir —
// schema creations, inserts (original fact IDs and endogenous flags
// preserved), deletes — and resumes appending to the same log, so the
// reloaded database continues exactly where the writer left off.
//
// Recovery is crash-tolerant: a torn or corrupt log suffix (the signature
// of a crash mid-append) is truncated and reported in RecoveryInfo rather
// than failing the load, so the database reopens at the last
// prefix-consistent state. Pre-WAL JSONL logs are detected, replayed, and
// compacted into the current format.
func OpenSortedConfig(cfg SortedConfig) (*Database, RecoveryInfo, error) {
	var info RecoveryInfo
	if cfg.Dir == "" {
		return nil, info, fmt.Errorf("db: OpenSorted needs a directory")
	}
	if err := cfg.Sync.Validate(); err != nil {
		return nil, info, err
	}
	snapRecs, logRecs, info, legacy, err := readStoreState(cfg.Dir)
	if err != nil {
		return nil, info, err
	}
	st := &sortedStore{
		relations: make(map[string]*sortedRelation),
		budget:    DefaultIndexBudget,
		dir:       cfg.Dir,
		sync:      cfg.Sync,
		openFile:  cfg.openFunc(),
	}
	d := NewWithStore(st)
	for i, rec := range snapRecs {
		if err := d.applyLogRecord(rec, false); err != nil {
			return nil, info, fmt.Errorf("db: replaying %s record %d: %w", snapName, i, err)
		}
	}
	// With a snapshot present the log is replayed idempotently: a crash
	// between a compaction's atomic rename and its log truncation leaves a
	// stale log whose records are already in the snapshot, and skipping
	// the duplicates is exactly the right recovery.
	lenient := len(snapRecs) > 0
	for i, rec := range logRecs {
		if err := d.applyLogRecord(rec, lenient); err != nil {
			return nil, info, fmt.Errorf("db: replaying %s record %d: %w", logName, i, err)
		}
	}
	if err := st.openLog(0); err != nil {
		return nil, info, err
	}
	st.logging = true
	st.walRecords = len(logRecs)
	if legacy {
		// Rewrite the pre-WAL JSONL log as snapshot + empty framed log so
		// subsequent appends don't mix formats in one file.
		if err := d.Compact(); err != nil {
			d.Close()
			return nil, info, fmt.Errorf("db: migrating legacy log: %w", err)
		}
	}
	return d, info, nil
}

// applyLogRecord replays one snapshot or WAL record. In lenient mode,
// records whose effect is already present (relation exists, fact ID live,
// fact already gone) are skipped: replaying a stale log over a snapshot
// that subsumes it must be idempotent.
func (d *Database) applyLogRecord(rec logRecord, lenient bool) error {
	switch rec.Op {
	case "M":
		if rec.ID > d.nextID {
			d.nextID = rec.ID
		}
		return nil
	case "R":
		if _, ok := d.relations[rec.Rel]; ok {
			if lenient {
				return nil
			}
			return fmt.Errorf("db: relation %q created twice", rec.Rel)
		}
		d.CreateRelation(rec.Rel, rec.Cols...)
		return d.Err()
	case "I":
		if d.facts[rec.ID] != nil {
			if lenient {
				return nil
			}
			return fmt.Errorf("db: fact ID %d inserted twice", rec.ID)
		}
		f := &Fact{ID: rec.ID, Relation: rec.Rel, Tuple: rec.tuple(), Endogenous: rec.Endo}
		return d.restoreFact(f)
	case "D":
		if d.facts[rec.ID] == nil {
			if lenient {
				return nil
			}
			return fmt.Errorf("db: %w with ID %d", ErrNoFact, rec.ID)
		}
		return d.Delete(rec.ID)
	default:
		return fmt.Errorf("db: unknown op %q", rec.Op)
	}
}

// restoreFact inserts a fully formed fact (ID already assigned) during log
// replay, keeping nextID ahead of every restored ID.
func (d *Database) restoreFact(f *Fact) error {
	rel, ok := d.relations[f.Relation]
	if !ok {
		return fmt.Errorf("db: %w %q", ErrUnknownRelation, f.Relation)
	}
	if len(f.Tuple) != rel.Schema.Arity() {
		return fmt.Errorf("db: relation %q has arity %d, got %d values: %w",
			f.Relation, rel.Schema.Arity(), len(f.Tuple), ErrArity)
	}
	if err := d.store.Insert(f); err != nil {
		return err
	}
	d.facts[f.ID] = f
	if f.ID >= d.nextID {
		d.nextID = f.ID + 1
	}
	rel.epoch++
	d.epoch++
	return nil
}

// Backend returns the name of the storage backend the database runs on.
func (d *Database) Backend() string { return d.store.Backend() }

// SetIndexBudget bounds the number of lazily built secondary indexes the
// store keeps per relation (0 restores the default, negative = unbounded).
func (d *Database) SetIndexBudget(n int) { d.store.SetIndexBudget(n) }

// Close releases the storage backend's resources (flushes and closes the
// mutation log of a persistent sorted store; a no-op for memory).
func (d *Database) Close() error { return d.store.Close() }

// Err returns the sticky storage failure that put the database in
// read-only (degraded) mode, or nil while it is healthy. Degraded
// databases still serve reads and explanations; mutations return this
// error (wrapping ErrDegraded) until the process restarts and recovers.
func (d *Database) Err() error {
	if d.degraded == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrDegraded, d.degraded)
}

// degrade records the first storage failure; later failures keep the
// original cause.
func (d *Database) degrade(err error) {
	if d.degraded == nil {
		d.degraded = err
	}
}

// Sync forces any buffered WAL records to stable storage regardless of
// the store's sync policy (no-op for non-persistent backends).
func (d *Database) Sync() error {
	type syncer interface{ Sync() error }
	if s, ok := d.store.(syncer); ok {
		return s.Sync()
	}
	return nil
}

// SetSyncPolicy changes a persistent sorted store's WAL durability policy
// in place; it is a validated no-op for other backends.
func (d *Database) SetSyncPolicy(p SyncPolicy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if st, ok := d.store.(*sortedStore); ok {
		st.sync = p
		if st.wal != nil {
			st.wal.policy = p
		}
	}
	return nil
}

// Compaction heuristics: a persistent sorted store compacts when its log
// holds at least compactMinRecords records AND more than compactFactor
// times the live data (facts + schemas). The first bound keeps small
// datasets from snapshotting constantly; the second bounds reopen replay
// to O(live facts) no matter how much churn the log has absorbed.
const (
	compactMinRecords = 1024
	compactFactor     = 4
)

// Compact snapshots the database's live state (schemas in creation order,
// facts in ID order, next-ID watermark) into snapshot.log via an atomic
// tmp-fsync-rename, then truncates the mutation log. A no-op for
// non-persistent backends. On a failure that leaves the store unable to
// append, the database degrades (data on disk stays consistent).
func (d *Database) Compact() error {
	st, ok := d.store.(*sortedStore)
	if !ok || !st.logging || d.degraded != nil {
		return nil
	}
	if err := st.snapshot(d.snapshotRecords()); err != nil {
		if st.wal == nil {
			d.degrade(err)
		}
		return err
	}
	return nil
}

// maybeCompact runs Compact when the log has outgrown the live data. A
// compaction failure is not surfaced through the (already successful)
// mutation that triggered it: either the store kept its log and will
// retry later, or it lost the log and the database just degraded — the
// next mutation reports that.
func (d *Database) maybeCompact() {
	st, ok := d.store.(*sortedStore)
	if !ok || !st.logging {
		return
	}
	live := len(d.facts) + len(d.order) + 1
	if st.walRecords >= compactMinRecords && st.walRecords > compactFactor*live {
		_ = d.Compact()
	}
}

// snapshotRecords materializes the database as snapshot records: the
// next-ID watermark (IDs are never reused, even across snapshots), every
// schema in creation order, every live fact in ID order.
func (d *Database) snapshotRecords() []logRecord {
	recs := make([]logRecord, 0, 1+len(d.order)+len(d.facts))
	recs = append(recs, logRecord{Op: "M", ID: d.nextID})
	for _, name := range d.order {
		rel := d.relations[name]
		recs = append(recs, logRecord{Op: "R", Rel: name, Cols: rel.Schema.Columns})
	}
	facts := make([]*Fact, 0, len(d.facts))
	for _, f := range d.facts {
		facts = append(facts, f)
	}
	sort.Slice(facts, func(i, j int) bool { return facts[i].ID < facts[j].ID })
	for _, f := range facts {
		recs = append(recs, insertRecord(f))
	}
	return recs
}

// ID returns a process-unique identity for the database. Fact IDs are only
// unique within one database, so anything keying global state by fact ID —
// the compile cache's fact-set invalidation, for one — scopes it by this
// identity to keep unrelated databases with colliding fact IDs apart.
func (d *Database) ID() uint64 { return d.id }

// CreateRelation registers a new relation with the given schema. It panics
// if the relation already exists: schema setup errors are programming
// errors, not runtime conditions. A storage failure (persistent store
// unable to log the schema) does not register the relation and degrades
// the database; check Err when creating relations against persistent
// stores at runtime.
func (d *Database) CreateRelation(name string, columns ...string) {
	if _, ok := d.relations[name]; ok {
		panic(fmt.Sprintf("db: relation %q already exists", name))
	}
	if d.degraded != nil {
		return
	}
	schema := Schema{Name: name, Columns: columns}
	if err := d.store.CreateRelation(schema); err != nil {
		d.degrade(err)
		return
	}
	d.relations[name] = &Relation{Schema: schema, store: d.store}
	d.order = append(d.order, name)
}

// Relation returns the named relation, or nil if absent.
func (d *Database) Relation(name string) *Relation { return d.relations[name] }

// RelationNames returns the relation names in creation order.
func (d *Database) RelationNames() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// Insert adds a fact to the named relation and returns it. Endogenous facts
// participate in Shapley attribution; exogenous facts are taken as given.
func (d *Database) Insert(relation string, endogenous bool, values ...Value) (*Fact, error) {
	if d.degraded != nil {
		return nil, d.Err()
	}
	rel, ok := d.relations[relation]
	if !ok {
		return nil, fmt.Errorf("db: %w %q", ErrUnknownRelation, relation)
	}
	if len(values) != rel.Schema.Arity() {
		return nil, fmt.Errorf("db: relation %q has arity %d, got %d values: %w",
			relation, rel.Schema.Arity(), len(values), ErrArity)
	}
	f := &Fact{
		ID:         d.nextID,
		Relation:   relation,
		Tuple:      Tuple(values),
		Endogenous: endogenous,
	}
	d.nextID++
	if err := d.store.Insert(f); err != nil {
		// The store rolled the mutation back; nextID stays monotone (a
		// burned ID is cheaper than risking aliasing) and the database
		// goes read-only so memory can't outrun the durable log.
		d.degrade(err)
		return nil, d.Err()
	}
	d.facts[f.ID] = f
	rel.epoch++
	d.epoch++
	d.maybeCompact()
	return f, nil
}

// Delete removes the fact with the given ID. Fact IDs are never reused:
// nextID is monotone, so a deleted ID stays free forever and provenance
// variables of past explanations can never alias a later fact.
func (d *Database) Delete(id FactID) error {
	if d.degraded != nil {
		return d.Err()
	}
	f, ok := d.facts[id]
	if !ok {
		return fmt.Errorf("db: %w with ID %d", ErrNoFact, id)
	}
	rel := d.relations[f.Relation]
	if err := d.store.Delete(f); err != nil {
		d.degrade(err)
		return d.Err()
	}
	delete(d.facts, id)
	rel.epoch++
	d.epoch++
	d.maybeCompact()
	return nil
}

// Epoch returns the database's mutation counter: the total number of
// inserts and deletes applied so far. A cache recording the epoch it was
// built at can cheap-check staleness by comparing against the current value;
// the counter never decreases.
func (d *Database) Epoch() uint64 { return d.epoch }

// MustInsert is Insert that panics on error; it is intended for statically
// known test fixtures and generators.
func (d *Database) MustInsert(relation string, endogenous bool, values ...Value) *Fact {
	f, err := d.Insert(relation, endogenous, values...)
	if err != nil {
		panic(err)
	}
	return f
}

// Fact returns the fact with the given ID, or nil.
func (d *Database) Fact(id FactID) *Fact { return d.facts[id] }

// NumFacts returns the total number of facts.
func (d *Database) NumFacts() int { return len(d.facts) }

// EndogenousFacts returns all endogenous facts ordered by ID.
func (d *Database) EndogenousFacts() []*Fact {
	var out []*Fact
	for _, name := range d.order {
		for f := range d.relations[name].Scan() {
			if f.Endogenous {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ExogenousFacts returns all exogenous facts ordered by ID.
func (d *Database) ExogenousFacts() []*Fact {
	var out []*Fact
	for _, name := range d.order {
		for f := range d.relations[name].Scan() {
			if !f.Endogenous {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumEndogenous returns the number of endogenous facts.
func (d *Database) NumEndogenous() int {
	n := 0
	for _, f := range d.facts {
		if f.Endogenous {
			n++
		}
	}
	return n
}

// Restrict returns a shallow copy of the database containing only facts for
// which keep returns true. Fact IDs are preserved, so provenance variables
// remain comparable across restrictions. This is the sub-database operation
// q(Dx ∪ E) at the heart of the Shapley definition. Restrictions always
// live on the in-memory backend regardless of the source's store: they are
// short-lived evaluation views sharing the source's fact pointers.
func (d *Database) Restrict(keep func(*Fact) bool) *Database {
	out := New()
	out.nextID = d.nextID
	for _, name := range d.order {
		rel := d.relations[name]
		out.CreateRelation(name, rel.Schema.Columns...)
		for f := range rel.Scan() {
			if keep(f) {
				if err := out.store.Insert(f); err != nil {
					panic(fmt.Sprintf("db: restrict insert: %v", err)) // memory backend with known relations
				}
				out.facts[f.ID] = f
			}
		}
	}
	return out
}

// Migrate copies the database onto the named storage backend: same schemas
// in creation order, same facts with their IDs and endogenous flags
// preserved (so provenance variables stay comparable), same next-ID
// watermark. Facts are deep-copied — the two databases share nothing — and
// inserted in ID order, which for the memory backend reproduces insertion
// order. dir makes a sorted target persistent. The source is unchanged.
func (d *Database) Migrate(backend, dir string) (*Database, error) {
	out, err := NewOnBackend(backend, dir)
	if err != nil {
		return nil, err
	}
	for _, name := range d.order {
		out.CreateRelation(name, d.relations[name].Schema.Columns...)
	}
	if err := out.Err(); err != nil {
		out.Close()
		return nil, err
	}
	facts := make([]*Fact, 0, len(d.facts))
	for _, f := range d.facts {
		facts = append(facts, f)
	}
	sort.Slice(facts, func(i, j int) bool { return facts[i].ID < facts[j].ID })
	for _, f := range facts {
		cp := &Fact{ID: f.ID, Relation: f.Relation, Endogenous: f.Endogenous,
			Tuple: append(Tuple(nil), f.Tuple...)}
		if err := out.restoreFact(cp); err != nil {
			out.Close()
			return nil, err
		}
	}
	if out.nextID < d.nextID {
		out.nextID = d.nextID
	}
	return out, nil
}

// WithEndogenousSubset returns the sub-database Dx ∪ E where E is the given
// set of endogenous fact IDs. All exogenous facts are retained.
func (d *Database) WithEndogenousSubset(e map[FactID]bool) *Database {
	return d.Restrict(func(f *Fact) bool {
		return !f.Endogenous || e[f.ID]
	})
}
