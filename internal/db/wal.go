package db

// Write-ahead-log framing for the sorted store's persistent mutation log.
//
// Each record travels in a frame: a fixed 8-byte header — payload length
// and CRC32C (Castagnoli) of the payload, both little-endian uint32 —
// followed by the payload itself. Payloads remain the one-line JSON
// encodings of logRecord (newline included), so a WAL is still greppable
// even though it is no longer a plain JSONL file.
//
// The frame layer is what makes crash recovery possible: a torn write (a
// crash mid-append, a full disk truncating a frame, a corrupted page)
// shows up as an invalid frame — short header, impossible length, or a
// checksum mismatch — and recovery keeps the valid prefix instead of
// refusing the whole dataset. scanFrames stops at the FIRST invalid
// frame: everything before it is prefix-consistent (whole records, in
// order), everything after it is untrusted and dropped.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"
)

// castagnoli is the CRC32C polynomial table checksumming WAL frames
// (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// walHeaderSize is the fixed frame header: uint32 payload length followed
// by uint32 CRC32C of the payload, both little-endian.
const walHeaderSize = 8

// maxFramePayload bounds a single frame's payload. Log records are one
// JSON line each, far below this; a claimed length beyond it means the
// header bytes are garbage, not a huge record.
const maxFramePayload = 1 << 26 // 64 MiB

// WALFile is the subset of *os.File the WAL writer needs. It is an
// interface so tests can interpose scriptable failures between the store
// and the disk (see internal/faultfs).
type WALFile interface {
	io.Writer
	io.Closer
	// Sync flushes the file's written data to stable storage (fsync).
	Sync() error
}

// OpenFileFunc opens a WAL or snapshot file for writing. The sorted store
// uses os.OpenFile unless a SortedConfig injects another implementation
// (fault injection in tests).
type OpenFileFunc func(path string, flag int, perm os.FileMode) (WALFile, error)

// osOpenFile is the default OpenFileFunc.
func osOpenFile(path string, flag int, perm os.FileMode) (WALFile, error) {
	return os.OpenFile(path, flag, perm)
}

// SyncMode selects when the WAL is fsynced; see SyncPolicy.
type SyncMode uint8

const (
	// SyncEveryN (the default mode) flushes and fsyncs after every N
	// appended records (SyncPolicy.N; DefaultSyncEvery when ≤ 0). A crash
	// loses at most the last N-1 acknowledged mutations.
	SyncEveryN SyncMode = iota
	// SyncAlways fsyncs after every appended record: an acknowledged
	// mutation is durable before its caller learns it succeeded. This is
	// the policy under which recovery must never drop an acknowledged
	// write.
	SyncAlways
	// SyncOnClose buffers writes until Close (or an explicit snapshot),
	// trading durability of a crash window for mutation throughput. The
	// OS may still persist earlier pages on its own schedule.
	SyncOnClose
)

// DefaultSyncEvery is the SyncEveryN cadence used when a policy does not
// name one.
const DefaultSyncEvery = 1024

// SyncPolicy says when the sorted store's WAL is made durable. The zero
// value is SyncEveryN with the default cadence — the pre-WAL behavior
// (flush every ~1k mutations), hardened with an fsync.
type SyncPolicy struct {
	Mode SyncMode
	// N is the SyncEveryN cadence (≤ 0 = DefaultSyncEvery); ignored by the
	// other modes.
	N int
}

func (p SyncPolicy) every() int {
	if p.N <= 0 {
		return DefaultSyncEvery
	}
	return p.N
}

// Validate rejects policies no store accepts.
func (p SyncPolicy) Validate() error {
	switch p.Mode {
	case SyncEveryN, SyncAlways, SyncOnClose:
	default:
		return fmt.Errorf("db: unknown SyncMode %d", p.Mode)
	}
	if p.N < 0 {
		return fmt.Errorf("db: SyncPolicy.N is negative (%d); use 0 for the default cadence", p.N)
	}
	return nil
}

func (p SyncPolicy) String() string {
	switch p.Mode {
	case SyncAlways:
		return "always"
	case SyncOnClose:
		return "onclose"
	default:
		return fmt.Sprintf("every=%d", p.every())
	}
}

// ParseSyncPolicy parses the flag form of a SyncPolicy: "always",
// "onclose", or "every=N" ("every" alone uses the default cadence).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "every":
		return SyncPolicy{}, nil
	case "always":
		return SyncPolicy{Mode: SyncAlways}, nil
	case "onclose":
		return SyncPolicy{Mode: SyncOnClose}, nil
	}
	if rest, ok := strings.CutPrefix(s, "every="); ok {
		n, err := strconv.Atoi(rest)
		if err != nil || n < 1 {
			return SyncPolicy{}, fmt.Errorf("db: bad sync cadence %q (want every=N with N ≥ 1)", s)
		}
		return SyncPolicy{Mode: SyncEveryN, N: n}, nil
	}
	return SyncPolicy{}, fmt.Errorf("db: unknown sync policy %q (want always, onclose, or every=N)", s)
}

// appendFrame appends one framed payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [walHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// walFrame is one recovered frame: its payload and the byte offset just
// past it (so a caller keeping a prefix of frames knows where to truncate).
type walFrame struct {
	payload []byte
	end     int64
}

// scanFrames walks framed WAL data and returns the frames of the valid
// prefix. Scanning stops at the first invalid frame: a truncated header,
// a zero or absurd length, a payload running past EOF, or a checksum
// mismatch. Everything before the stop point is intact by construction
// (appends are sequential), everything after it is a torn or corrupt
// suffix the caller should drop.
func scanFrames(data []byte) []walFrame {
	var frames []walFrame
	off := 0
	for {
		if off+walHeaderSize > len(data) {
			return frames
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n == 0 || n > maxFramePayload || off+walHeaderSize+n > len(data) {
			return frames
		}
		payload := data[off+walHeaderSize : off+walHeaderSize+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return frames
		}
		off += walHeaderSize + n
		frames = append(frames, walFrame{payload: payload, end: int64(off)})
	}
}

// walWriter appends framed records to a WAL file under a SyncPolicy,
// buffering through bufio and propagating every write, flush, and sync
// failure to its caller — a full disk is an error the mutation path must
// see, not a panic and not a silent loss.
type walWriter struct {
	file     WALFile
	w        *bufio.Writer
	policy   SyncPolicy
	unsynced int // records appended since the last successful sync
	buf      []byte
}

func newWALWriter(f WALFile, policy SyncPolicy) *walWriter {
	return &walWriter{file: f, w: bufio.NewWriter(f), policy: policy}
}

// errWALClosed is returned by appends after the writer was closed (or its
// close failed): the log can no longer accept writes.
var errWALClosed = errors.New("db: WAL is closed")

// Append frames and writes one payload, then applies the sync policy.
// The record is only considered acknowledged if Append returns nil: under
// SyncAlways that means it is on stable storage; under SyncEveryN it is
// at worst N-1 records away from the last fsync.
func (w *walWriter) Append(payload []byte) error {
	if w.file == nil {
		return errWALClosed
	}
	w.buf = appendFrame(w.buf[:0], payload)
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("db: WAL append: %w", err)
	}
	w.unsynced++
	switch w.policy.Mode {
	case SyncAlways:
		return w.Sync()
	case SyncEveryN:
		if w.unsynced >= w.policy.every() {
			return w.Sync()
		}
	}
	return nil
}

// Sync flushes the buffer and fsyncs the file. The unsynced counter is
// reset only on success, so a failed flush keeps reporting the log as
// behind rather than pretending the data is safe.
func (w *walWriter) Sync() error {
	if w.file == nil {
		return errWALClosed
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("db: WAL flush: %w", err)
	}
	if err := w.file.Sync(); err != nil {
		return fmt.Errorf("db: WAL fsync: %w", err)
	}
	w.unsynced = 0
	return nil
}

// Close flushes, fsyncs, and closes the file, returning the first
// failure; the writer is unusable afterwards either way.
func (w *walWriter) Close() error {
	if w.file == nil {
		return nil
	}
	err := w.Sync()
	if cerr := w.file.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("db: WAL close: %w", cerr)
	}
	w.file, w.w = nil, nil
	return err
}

// RecoveryInfo reports what OpenSorted restored from a persisted
// directory and what, if anything, it had to drop.
type RecoveryInfo struct {
	// SnapshotRecords is the number of records loaded from the snapshot
	// (0 when the directory has no snapshot yet). Snapshots hold one
	// record per relation plus one per live fact plus a watermark, so
	// together with LogRecords this is the replay cost of the open.
	SnapshotRecords int
	// LogRecords is the number of valid WAL records replayed on top of
	// the snapshot.
	LogRecords int
	// DroppedBytes is the length of the torn or corrupt WAL suffix that
	// recovery truncated. Zero for a clean shutdown; a crash mid-append
	// typically leaves one partial frame here.
	DroppedBytes int64
	// Truncated reports whether a torn suffix was found (and the log file
	// truncated back to its valid prefix).
	Truncated bool
}
