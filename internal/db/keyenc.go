package db

import (
	"encoding/binary"
	"math"
)

// Key is a typed composite lookup key: a kind-tagged, sort-preserving binary
// encoding of one or more values, stored as an immutable string so it can
// index Go maps and B-tree nodes directly. Two Keys are byte-equal exactly
// when the encoded value sequences are equal under Value.Key identity
// (ints, floats, and strings are distinct kind classes, matching the
// equality the join index has always used), and byte order agrees with
// Value ordering within each kind class — which is what lets the sorted
// backend serve equality lookups as prefix range scans.
//
// Keys replace the fmt.Sprintf-flavored string concatenation
// (Value.Key/Tuple.Key) on the join hot path: encoding appends raw bytes
// into a caller-reused buffer, so building a key costs zero allocations
// beyond the final string materialization.
type Key string

// Key encoding tags. Kind classes are disjoint byte ranges so no escaping
// is needed between adjacent values of different kinds; within a value,
// string payloads are terminated with an escape-free sentinel.
const (
	keyTagInt    byte = 0x01
	keyTagFloat  byte = 0x02
	keyTagString byte = 0x03
)

// AppendValueKey appends the sort-preserving encoding of v to buf and
// returns the extended buffer. It never allocates beyond buf's growth.
func AppendValueKey(buf []byte, v Value) []byte {
	switch v.kind {
	case KindInt:
		buf = append(buf, keyTagInt)
		var b [8]byte
		// Flipping the sign bit maps int64 order onto unsigned byte order.
		binary.BigEndian.PutUint64(b[:], uint64(v.i)^(1<<63))
		return append(buf, b[:]...)
	case KindFloat:
		buf = append(buf, keyTagFloat)
		bits := math.Float64bits(v.f)
		// Standard IEEE-754 order-preserving transform: negative floats
		// flip entirely (reversing their order), non-negative floats flip
		// only the sign bit (placing them above all negatives).
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits ^= 1 << 63
		}
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], bits)
		return append(buf, b[:]...)
	default:
		buf = append(buf, keyTagString)
		// Escape 0x00 as 0x00 0xFF so the 0x00 0x00 terminator cannot occur
		// inside a payload; escaped bytes still sort below any continuation.
		for i := 0; i < len(v.s); i++ {
			c := v.s[i]
			if c == 0x00 {
				buf = append(buf, 0x00, 0xFF)
			} else {
				buf = append(buf, c)
			}
		}
		return append(buf, 0x00, 0x00)
	}
}

// AppendTupleKey appends the encodings of t's values at the given positions
// (all positions when pos is nil) to buf.
func AppendTupleKey(buf []byte, t Tuple, pos []int) []byte {
	if pos == nil {
		for _, v := range t {
			buf = AppendValueKey(buf, v)
		}
		return buf
	}
	for _, p := range pos {
		buf = AppendValueKey(buf, t[p])
	}
	return buf
}

// TupleKey encodes t's values at the given positions (all when pos is nil)
// as a Key.
func TupleKey(t Tuple, pos []int) Key {
	return Key(AppendTupleKey(nil, t, pos))
}

// AppendFactID appends the fact ID as a big-endian suffix; the sorted
// backend uses it to keep duplicate-tuple entries distinct while preserving
// key order.
func AppendFactID(buf []byte, id FactID) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id)^(1<<63))
	return append(buf, b[:]...)
}

// posSig is a canonical map key for a set of tuple positions (the
// bound-position signature of a secondary index). Positions are single
// bytes: relation arity never approaches 256.
func posSig(pos []int) string {
	b := make([]byte, len(pos))
	for i, p := range pos {
		b[i] = byte(p)
	}
	return string(b)
}
