package db

import (
	"fmt"
	"iter"
	"sort"
)

// Store is the pluggable storage engine behind a Database: it owns the
// per-relation fact sets and the secondary indexes the evaluation layer's
// indexed lookups run against. The Database remains the system of record
// for fact identity (IDs, the ID→fact map, epochs); the store decides how
// facts are laid out and found.
//
// Two implementations ship: the in-memory backend (BackendMemory, the
// historical slices plus lazily built hash indexes) and the sorted backend
// (BackendSorted, per-relation B-trees over sort-preserving key encodings
// with optional append-log persistence). Stores are not safe for concurrent
// mutation; the Database's callers serialize writes exactly as they always
// have for the in-memory slices.
type Store interface {
	// Backend returns the store's registered backend name.
	Backend() string
	// CreateRelation registers storage for a new relation. An error means
	// the relation was NOT registered (for persistent stores, typically a
	// failed log append).
	CreateRelation(schema Schema) error
	// Insert adds a fact to its relation's storage. An error — unknown
	// relation, or a persistent store failing to log the mutation — means
	// the fact was NOT stored; the store's in-memory state is unchanged.
	Insert(f *Fact) error
	// Delete removes a fact from its relation's storage, with the same
	// not-applied-on-error contract as Insert.
	Delete(f *Fact) error
	// Scan yields every fact of the relation, in the backend's native order
	// (insertion order for memory, key order for sorted).
	Scan(relation string) iter.Seq[*Fact]
	// Lookup yields the facts whose tuple matches key at the given
	// positions. pos must be sorted ascending; key must be the
	// TupleKey-encoding of the sought values in pos order. Backends build
	// or reuse a secondary index per (relation, position-set) access
	// pattern, falling back to a filtered scan when the index budget is
	// exhausted.
	Lookup(relation string, pos []int, key Key) iter.Seq[*Fact]
	// Len returns the relation's fact count.
	Len(relation string) int
	// SetIndexBudget bounds the number of distinct secondary indexes kept
	// per relation (0 restores DefaultIndexBudget, negative = unbounded).
	// Lookups beyond the budget degrade to filtered scans, never errors.
	SetIndexBudget(n int)
	// Close releases backend resources (file handles for persistent
	// stores; a no-op for memory).
	Close() error
}

// Backend names accepted by OpenStore and Options-level storage knobs.
const (
	// BackendMemory is the historical in-memory backend: per-relation fact
	// slices in insertion order, with lazily built hash indexes per access
	// pattern.
	BackendMemory = "memory"
	// BackendSorted is the ordered backend: per-relation B-trees keyed by
	// the sort-preserving tuple encoding, serving indexed lookups as prefix
	// range scans, optionally persisted to an append-only log directory.
	BackendSorted = "sorted"
)

// DefaultIndexBudget is the default cap on distinct secondary indexes per
// relation. Each query shape touches at most one bound-position pattern per
// atom, so a handful covers every workload in the repository; the cap
// exists to bound memory under adversarial query diversity.
const DefaultIndexBudget = 8

// Backends lists the registered backend names, sorted.
func Backends() []string {
	out := []string{BackendMemory, BackendSorted}
	sort.Strings(out)
	return out
}

// KnownBackend reports whether name is a registered backend name; the empty
// string counts as the default (memory) backend.
func KnownBackend(name string) bool {
	switch name {
	case "", BackendMemory, BackendSorted:
		return true
	}
	return false
}

// OpenStore opens a store by backend name. The empty name means
// BackendMemory. dir is only meaningful for BackendSorted, where a
// non-empty value makes the store persistent (see OpenSortedStore); the
// memory backend rejects it.
func OpenStore(backend, dir string) (Store, error) {
	switch backend {
	case "", BackendMemory:
		if dir != "" {
			return nil, fmt.Errorf("db: the %q backend does not persist; directory %q is only valid with %q", BackendMemory, dir, BackendSorted)
		}
		return NewMemStore(), nil
	case BackendSorted:
		return OpenSortedStore(dir)
	default:
		return nil, fmt.Errorf("db: unknown storage backend %q (known: %v)", backend, Backends())
	}
}
