// Package linalg provides the small dense linear-algebra kernels the
// repository needs: float64 Gaussian elimination with partial pivoting,
// weighted least squares via the normal equations (for Kernel SHAP), and
// exact rational Gaussian elimination (for the Vandermonde system in the
// Shapley-to-PQE reduction of Proposition 3.1).
package linalg

import (
	"errors"
	"math"
	"math/big"
)

// ErrSingular is returned when a system has no unique solution.
var ErrSingular = errors.New("linalg: singular matrix")

// Solve solves the n×n system A·x = b in place-safe fashion (A and b are
// copied) using Gaussian elimination with partial pivoting.
func Solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("linalg: dimension mismatch")
	}
	m := make([][]float64, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, errors.New("linalg: matrix not square")
		}
		m[i] = append([]float64{}, a[i]...)
		m[i] = append(m[i], b[i])
	}
	for col := 0; col < n; col++ {
		// Partial pivoting.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < n; r++ {
			factor := m[r][col] / m[col][col]
			if factor == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= factor * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}

// WeightedLeastSquares solves min_β Σ_i w_i (x_i·β − y_i)² via the normal
// equations (XᵀWX)β = XᵀWy. X is row-major with one row per sample. A tiny
// ridge term stabilizes the system when samples do not span the feature
// space, which happens for small sampling budgets in Kernel SHAP.
func WeightedLeastSquares(x [][]float64, y, w []float64, ridge float64) ([]float64, error) {
	nSamples := len(x)
	if nSamples == 0 || len(y) != nSamples || len(w) != nSamples {
		return nil, errors.New("linalg: dimension mismatch")
	}
	nFeat := len(x[0])
	xtwx := make([][]float64, nFeat)
	for i := range xtwx {
		xtwx[i] = make([]float64, nFeat)
	}
	xtwy := make([]float64, nFeat)
	for s := 0; s < nSamples; s++ {
		if len(x[s]) != nFeat {
			return nil, errors.New("linalg: ragged design matrix")
		}
		ws := w[s]
		for i := 0; i < nFeat; i++ {
			xi := x[s][i]
			if xi == 0 {
				continue
			}
			wxi := ws * xi
			for j := i; j < nFeat; j++ {
				xtwx[i][j] += wxi * x[s][j]
			}
			xtwy[i] += wxi * y[s]
		}
	}
	for i := 0; i < nFeat; i++ {
		xtwx[i][i] += ridge
		for j := 0; j < i; j++ {
			xtwx[i][j] = xtwx[j][i]
		}
	}
	return Solve(xtwx, xtwy)
}

// SolveRat solves the n×n rational system A·x = b exactly by fraction-free
// Gaussian elimination over big.Rat. It is used to invert the Vandermonde
// system of Proposition 3.1, where floating point would destroy the exact
// #Slices counts.
func SolveRat(a [][]*big.Rat, b []*big.Rat) ([]*big.Rat, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("linalg: dimension mismatch")
	}
	m := make([][]*big.Rat, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, errors.New("linalg: matrix not square")
		}
		m[i] = make([]*big.Rat, n+1)
		for j, v := range a[i] {
			m[i][j] = new(big.Rat).Set(v)
		}
		m[i][n] = new(big.Rat).Set(b[i])
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if m[r][col].Sign() != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv := new(big.Rat).Inv(m[col][col])
		for r := col + 1; r < n; r++ {
			if m[r][col].Sign() == 0 {
				continue
			}
			factor := new(big.Rat).Mul(m[r][col], inv)
			var t big.Rat
			for c := col; c <= n; c++ {
				t.Mul(factor, m[col][c])
				m[r][c].Sub(m[r][c], &t)
			}
		}
	}
	x := make([]*big.Rat, n)
	var t big.Rat
	for i := n - 1; i >= 0; i-- {
		sum := new(big.Rat).Set(m[i][n])
		for j := i + 1; j < n; j++ {
			t.Mul(m[i][j], x[j])
			sum.Sub(sum, &t)
		}
		x[i] = sum.Quo(sum, m[i][i])
	}
	return x, nil
}

// VandermondeRat builds the (n+1)×(n+1) Vandermonde matrix with rows
// [1, z_r, z_r², ..., z_rⁿ] for the given distinct evaluation points.
func VandermondeRat(zs []*big.Rat) [][]*big.Rat {
	n := len(zs)
	m := make([][]*big.Rat, n)
	for r, z := range zs {
		m[r] = make([]*big.Rat, n)
		m[r][0] = big.NewRat(1, 1)
		for c := 1; c < n; c++ {
			m[r][c] = new(big.Rat).Mul(m[r][c-1], z)
		}
	}
	return m
}
