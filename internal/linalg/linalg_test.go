package linalg

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

func TestSolveKnownSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := Solve(a, []float64{1, 2}); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveDimensionErrors(t *testing.T) {
	if _, err := Solve(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := Solve([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("non-square matrix accepted")
	}
	if _, err := Solve([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched b accepted")
	}
}

func TestSolveRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(6)
		a := make([][]float64, n)
		xTrue := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			a[i][i] += float64(n) // diagonally dominant → well-conditioned
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		for i := range b {
			for j := range xTrue {
				b[i] += a[i][j] * xTrue[j]
			}
		}
		x, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestWeightedLeastSquaresExactFit(t *testing.T) {
	// y = 2 + 3·x exactly: WLS must recover the coefficients.
	x := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{2, 5, 8, 11}
	w := []float64{1, 1, 2, 1}
	beta, err := WeightedLeastSquares(x, y, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-2) > 1e-9 || math.Abs(beta[1]-3) > 1e-9 {
		t.Errorf("beta = %v, want [2 3]", beta)
	}
}

func TestWeightedLeastSquaresWeighting(t *testing.T) {
	// Two contradictory samples for a single coefficient; the weighted
	// solution is the weighted mean.
	x := [][]float64{{1}, {1}}
	y := []float64{0, 1}
	w := []float64{3, 1}
	beta, err := WeightedLeastSquares(x, y, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-0.25) > 1e-9 {
		t.Errorf("beta = %v, want [0.25]", beta)
	}
}

func TestSolveRatExact(t *testing.T) {
	a := [][]*big.Rat{
		{big.NewRat(1, 1), big.NewRat(1, 2)},
		{big.NewRat(1, 3), big.NewRat(1, 4)},
	}
	// x = (1, 2): b = (1+1, 1/3+1/2) = (2, 5/6).
	b := []*big.Rat{big.NewRat(2, 1), big.NewRat(5, 6)}
	x, err := SolveRat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x[0].Cmp(big.NewRat(1, 1)) != 0 || x[1].Cmp(big.NewRat(2, 1)) != 0 {
		t.Errorf("x = %v, want [1 2]", x)
	}
}

func TestSolveRatSingular(t *testing.T) {
	a := [][]*big.Rat{
		{big.NewRat(1, 1), big.NewRat(2, 1)},
		{big.NewRat(2, 1), big.NewRat(4, 1)},
	}
	if _, err := SolveRat(a, []*big.Rat{big.NewRat(1, 1), big.NewRat(2, 1)}); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestVandermondeSolveRecoversPolynomial(t *testing.T) {
	// p(z) = 3 + 2z + z²; evaluate at z = 1, 2, 3 and recover coefficients.
	zs := []*big.Rat{big.NewRat(1, 1), big.NewRat(2, 1), big.NewRat(3, 1)}
	vm := VandermondeRat(zs)
	want := []*big.Rat{big.NewRat(3, 1), big.NewRat(2, 1), big.NewRat(1, 1)}
	b := make([]*big.Rat, 3)
	for r, z := range zs {
		v := new(big.Rat)
		pow := big.NewRat(1, 1)
		for _, c := range want {
			term := new(big.Rat).Mul(c, pow)
			v.Add(v, term)
			pow = new(big.Rat).Mul(pow, z)
		}
		b[r] = v
	}
	x, err := SolveRat(vm, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if x[i].Cmp(want[i]) != 0 {
			t.Errorf("coef[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}
