// Package flights builds the paper's running example (Figure 1): a database
// of flights (endogenous) and airports (exogenous) and the Boolean UCQ
// asking for routes from the USA to France with at most one connection. The
// paper works out the exact Shapley values for this instance, so it anchors
// the test suite:
//
//	Shapley(q, a1)          = 43/105
//	Shapley(q, a2..a5)      = 23/210
//	Shapley(q, a6, a7)      = 8/105
//	Shapley(q, a8)          = 0
package flights

import (
	"repro/internal/db"
	"repro/internal/query"
)

// Facts gives named access to the example's endogenous facts a1..a8.
type Facts struct {
	A [9]*db.Fact // A[1]..A[8]; A[0] unused
}

// Build returns the Figure 1 database and its endogenous flight facts.
func Build() (*db.Database, *Facts) {
	d := db.New()
	d.CreateRelation("Flights", "src", "dst")
	d.CreateRelation("Airports", "name", "country")

	var fs Facts
	flights := [][2]string{
		1: {"JFK", "CDG"},
		2: {"EWR", "LHR"},
		3: {"BOS", "LHR"},
		4: {"LHR", "CDG"},
		5: {"LHR", "ORY"},
		6: {"LAX", "MUC"},
		7: {"MUC", "ORY"},
		8: {"LHR", "MUC"},
	}
	for i := 1; i <= 8; i++ {
		fs.A[i] = d.MustInsert("Flights", true,
			db.String(flights[i][0]), db.String(flights[i][1]))
	}
	airports := [][2]string{
		{"JFK", "USA"}, {"EWR", "USA"}, {"BOS", "USA"}, {"LAX", "USA"},
		{"LHR", "EN"}, {"MUC", "GR"}, {"ORY", "FR"}, {"CDG", "FR"},
	}
	for _, a := range airports {
		d.MustInsert("Airports", false, db.String(a[0]), db.String(a[1]))
	}
	return d, &fs
}

// Query returns the Boolean UCQ q = q1 ∨ q2 of Figure 1c: a direct flight
// from a USA airport to a French airport, or a route with one connection.
func Query() *query.UCQ {
	return query.MustParse(`
		q() :- Airports(x, 'USA'), Airports(y, 'FR'), Flights(x, y)
		q() :- Airports(x, 'USA'), Airports(z, 'FR'), Flights(x, y), Flights(y, z)
	`)
}

// DirectQuery returns q1 alone (one direct flight).
func DirectQuery() *query.UCQ {
	return query.MustParse(`q() :- Airports(x, 'USA'), Airports(y, 'FR'), Flights(x, y)`)
}

// OneStopQuery returns q2 alone (exactly one connection).
func OneStopQuery() *query.UCQ {
	return query.MustParse(`q() :- Airports(x, 'USA'), Airports(z, 'FR'), Flights(x, y), Flights(y, z)`)
}
