package flights

import (
	"testing"

	"repro/internal/db"
)

func TestBuildStructure(t *testing.T) {
	d, fs := Build()
	if got := len(d.Relation("Flights").Facts()); got != 8 {
		t.Errorf("flights = %d, want 8", got)
	}
	if got := len(d.Relation("Airports").Facts()); got != 8 {
		t.Errorf("airports = %d, want 8", got)
	}
	if d.NumEndogenous() != 8 {
		t.Errorf("endogenous = %d, want 8 (all flights)", d.NumEndogenous())
	}
	for i := 1; i <= 8; i++ {
		if fs.A[i] == nil || !fs.A[i].Endogenous {
			t.Fatalf("a%d missing or exogenous", i)
		}
	}
	// a1 is the direct JFK→CDG flight.
	if !fs.A[1].Tuple.Equal(db.Tuple{db.String("JFK"), db.String("CDG")}) {
		t.Errorf("a1 = %v, want (JFK, CDG)", fs.A[1].Tuple)
	}
	for _, f := range d.Relation("Airports").Facts() {
		if f.Endogenous {
			t.Fatalf("airport fact %v marked endogenous", f)
		}
	}
}

func TestQueriesParse(t *testing.T) {
	if got := len(Query().Disjuncts); got != 2 {
		t.Errorf("q has %d disjuncts, want 2", got)
	}
	if !Query().IsBoolean() {
		t.Error("q should be Boolean")
	}
	if got := len(DirectQuery().Disjuncts); got != 1 {
		t.Errorf("q1 has %d disjuncts, want 1", got)
	}
	if got := len(OneStopQuery().Disjuncts[0].Atoms); got != 4 {
		t.Errorf("q2 has %d atoms, want 4", got)
	}
	// q2 is the classic non-hierarchical pattern.
	if OneStopQuery().Disjuncts[0].IsHierarchical() {
		t.Error("q2 should be non-hierarchical")
	}
}
