package updatebench

// BENCH_update.json: a machine-readable record of incremental maintenance
// performance under fact updates, emitted by cmd/benchtables. For each
// benchmark query a long-lived repro.Session is opened and warmed; then,
// for each update batch size, facts drawn from live lineages are deleted
// and the session's delta-maintained re-explanation is timed against a
// cold recompute-from-scratch Explain on the same mutated database. Every
// point cross-checks that the incremental explanations are identical to the
// cold ones before reporting a speedup.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/bench"
	"repro/internal/db"
	"repro/internal/imdb"
	"repro/internal/tpch"
)

// UpdatePoint is one (query, batch size) measurement.
type UpdatePoint struct {
	Dataset   string `json:"dataset"`
	Query     string `json:"query"`
	BatchSize int    `json:"batch_size"`
	// Tuples is the answer count before the batch; ChangedTuples how many
	// answers the batch's deletes touched (the work the incremental path
	// cannot avoid).
	Tuples        int `json:"tuples"`
	ChangedTuples int `json:"changed_tuples"`
	// IncrementalMillis times applying the batch through the session plus
	// the session's re-Explain; RecomputeMillis times a cold Explain
	// (grounding, lineage, compilation, Shapley — no cross-call cache) on
	// the identical mutated database.
	IncrementalMillis float64 `json:"incremental_ms"`
	RecomputeMillis   float64 `json:"recompute_ms"`
	Speedup           float64 `json:"speedup"`
	// ValuesMatch records the cross-check: the session's explanations are
	// tuple-for-tuple, value-for-value identical to the cold ones.
	ValuesMatch bool `json:"values_match"`
}

// UpdateBench is the top-level BENCH_update.json document.
type UpdateBench struct {
	GeneratedAt string        `json:"generated_at"`
	MaxProcs    int           `json:"maxprocs"`
	BatchSizes  []int         `json:"batch_sizes"`
	Points      []UpdatePoint `json:"points"`
}

// defaultUpdateQueries are the corpus queries the update benchmark runs
// when the caller does not choose: moderate answer counts, join-shaped
// lineage, both datasets.
var defaultUpdateQueries = map[string]bool{
	"q3": true, "q10": true, "q19": true, // TPC-H
	"1a": true, "8d": true, // IMDB
}

// RunUpdateBench measures incremental maintenance against full
// recomputation on the bench corpus. queries filters by query name (nil =
// a default subset); repeats > 1 keeps the best (minimum) time per side,
// damping scheduler noise the way testing.B's repetitions do.
func RunUpdateBench(ctx context.Context, opts bench.Options, batchSizes []int, queries map[string]bool, repeats int) (*UpdateBench, error) {
	if repeats < 1 {
		repeats = 1
	}
	if queries == nil {
		queries = defaultUpdateQueries
	}
	rep := &UpdateBench{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		MaxProcs:    runtime.GOMAXPROCS(0),
		BatchSizes:  batchSizes,
	}
	type suite struct {
		name     string
		generate func() *db.Database
		queries  []bench.NamedQuery
	}
	suites := []suite{
		{"TPC-H", func() *db.Database { return tpch.Generate(opts.TPCH) }, nil},
		{"IMDB", func() *db.Database { return imdb.Generate(opts.IMDB) }, nil},
	}
	for _, q := range tpch.Queries() {
		suites[0].queries = append(suites[0].queries, bench.NamedQuery{Name: q.Name, Q: q.Q})
	}
	for _, q := range imdb.Queries() {
		suites[1].queries = append(suites[1].queries, bench.NamedQuery{Name: q.Name, Q: q.Q})
	}
	for _, st := range suites {
		for _, nq := range st.queries {
			if !queries[nq.Name] {
				continue
			}
			points, err := updateBenchQuery(ctx, st.name, nq, st.generate(), opts, batchSizes, repeats)
			if err != nil {
				return nil, err
			}
			rep.Points = append(rep.Points, points...)
		}
	}
	return rep, nil
}

// sessionOptions maps bench options onto the session's facade options. The
// bench meaning of CacheSize == 0 is "no cache", which the facade spells -1.
func sessionOptions(opts bench.Options) repro.Options {
	cacheSize := opts.CacheSize
	if cacheSize == 0 {
		cacheSize = -1
	}
	return repro.Options{
		Timeout:          opts.Timeout,
		MaxNodes:         opts.MaxNodes,
		Workers:          opts.Workers,
		CompileWorkers:   opts.CompileWorkers,
		NoCanonicalCache: opts.NoCanonicalCache,
		Strategy:         opts.Strategy,
		CacheSize:        cacheSize,
	}
}

func updateBenchQuery(ctx context.Context, dataset string, nq bench.NamedQuery, d *db.Database, opts bench.Options, batchSizes []int, repeats int) ([]UpdatePoint, error) {
	sopts := sessionOptions(opts)
	coldOpts := sopts
	coldOpts.CacheSize = -1 // recompute-from-scratch baseline: no warm circuits
	s, err := repro.Open(d, nq.Q, sopts)
	if err != nil {
		return nil, fmt.Errorf("bench: update %s/%s: %w", dataset, nq.Name, err)
	}
	defer s.Close()
	warm, err := s.Explain(ctx)
	if err != nil {
		return nil, fmt.Errorf("bench: update %s/%s: %w", dataset, nq.Name, err)
	}
	if len(warm) == 0 {
		return nil, nil
	}
	var points []UpdatePoint
	for _, k := range batchSizes {
		var best *UpdatePoint
		for rep := 0; rep < repeats; rep++ {
			p, err := updateBenchBatch(ctx, s, d, nq.Q, coldOpts, warm, k)
			if err != nil {
				return nil, fmt.Errorf("bench: update %s/%s batch %d: %w", dataset, nq.Name, k, err)
			}
			if p == nil {
				break // not enough live lineage facts for this batch size
			}
			if !p.ValuesMatch {
				return nil, fmt.Errorf("bench: update %s/%s batch %d: incremental and cold explanations diverged", dataset, nq.Name, k)
			}
			// Restore the deleted facts (fresh IDs, identical content) so
			// the next measurement starts from an equivalent database.
			warm, err = s.Explain(ctx)
			if err != nil {
				return nil, err
			}
			if best == nil {
				best = p
			} else {
				// Keep the minimum per side independently: the least-noise
				// estimate of each configuration, as testing.B repetitions do.
				best.IncrementalMillis = minf(best.IncrementalMillis, p.IncrementalMillis)
				best.RecomputeMillis = minf(best.RecomputeMillis, p.RecomputeMillis)
			}
		}
		if best != nil {
			if best.IncrementalMillis > 0 {
				best.Speedup = best.RecomputeMillis / best.IncrementalMillis
			}
			best.Dataset, best.Query, best.BatchSize = dataset, nq.Name, k
			points = append(points, *best)
		}
	}
	return points, nil
}

// updateBenchBatch deletes k facts drawn from live lineages, times the
// session's incremental re-explanation against a cold Explain on the
// mutated database, verifies they agree, and re-inserts the deleted facts.
// It returns nil when fewer than k distinct lineage facts exist.
func updateBenchBatch(ctx context.Context, s *repro.Session, d *db.Database, q *repro.Query, coldOpts repro.Options, warm []repro.TupleExplanation, k int) (*UpdatePoint, error) {
	// Fact pool: distinct endogenous facts appearing in some lineage,
	// round-robin across tuples so a multi-fact batch spreads its damage.
	seen := make(map[repro.FactID]bool)
	var pool []repro.FactID
	for i := 0; ; i++ {
		advanced := false
		for _, e := range warm {
			if i < len(e.Ranking) {
				advanced = true
				if f := e.Ranking[i]; !seen[f] {
					seen[f] = true
					pool = append(pool, f)
				}
			}
		}
		if !advanced || len(pool) >= k {
			break
		}
	}
	if len(pool) < k {
		return nil, nil
	}
	pool = pool[:k]

	changed := make(map[string]bool)
	for _, e := range warm {
		for _, id := range pool {
			if _, ok := e.Values[id]; ok {
				changed[e.Tuple.Key()] = true
				break
			}
			if e.Proxy != nil {
				if _, ok := e.Proxy[id]; ok {
					changed[e.Tuple.Key()] = true
					break
				}
			}
		}
	}

	type saved struct {
		relation   string
		endogenous bool
		values     []repro.Value
	}
	restore := make([]saved, 0, k)
	t0 := time.Now()
	for _, id := range pool {
		f := d.Fact(id)
		restore = append(restore, saved{f.Relation, f.Endogenous, f.Tuple})
		if err := s.Delete(id); err != nil {
			return nil, err
		}
	}
	inc, err := s.Explain(ctx)
	if err != nil {
		return nil, err
	}
	incTime := time.Since(t0)

	t1 := time.Now()
	cold, err := repro.Explain(ctx, d, q, coldOpts)
	if err != nil {
		return nil, err
	}
	coldTime := time.Since(t1)

	p := &UpdatePoint{
		Tuples:            len(warm),
		ChangedTuples:     len(changed),
		IncrementalMillis: float64(incTime) / float64(time.Millisecond),
		RecomputeMillis:   float64(coldTime) / float64(time.Millisecond),
		ValuesMatch:       explanationsAgree(inc, cold),
	}
	for _, sv := range restore {
		if _, err := s.Insert(sv.relation, sv.endogenous, sv.values...); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// explanationsAgree reports tuple-for-tuple agreement: same tuples in the
// same order, and — for tuples both sides explained exactly — identical
// big.Rat Shapley values. Tuples where either side fell back to the proxy
// (a timing-dependent outcome) are compared on tuple identity only.
func explanationsAgree(a, b []repro.TupleExplanation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Tuple.Equal(b[i].Tuple) {
			return false
		}
		if a[i].Method != repro.MethodExact || b[i].Method != repro.MethodExact {
			continue
		}
		if len(a[i].Values) != len(b[i].Values) {
			return false
		}
		for f, av := range a[i].Values {
			bv, ok := b[i].Values[f]
			if !ok || av.Cmp(bv) != 0 {
				return false
			}
		}
	}
	return true
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// WriteUpdateBench writes the report as indented JSON.
func WriteUpdateBench(path string, rep *UpdateBench) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
