package updatebench

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/bench"
)

func TestRunUpdateBenchSmallCorpus(t *testing.T) {
	opts := bench.DefaultOptions()
	opts.TPCH = opts.TPCH.Scaled(0.25)
	opts.IMDB = opts.IMDB.Scaled(0.25)
	rep, err := RunUpdateBench(context.Background(), opts,
		[]int{1, 2}, map[string]bool{"q3": true, "1a": true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) == 0 {
		t.Fatal("no measurement points produced")
	}
	for _, p := range rep.Points {
		if !p.ValuesMatch {
			t.Errorf("%s/%s batch %d: incremental and cold explanations diverged",
				p.Dataset, p.Query, p.BatchSize)
		}
		if p.IncrementalMillis <= 0 || p.RecomputeMillis <= 0 {
			t.Errorf("%s/%s batch %d: non-positive timings %+v",
				p.Dataset, p.Query, p.BatchSize, p)
		}
		if p.ChangedTuples < 1 || p.ChangedTuples > p.Tuples {
			t.Errorf("%s/%s batch %d: implausible changed-tuple count %d of %d",
				p.Dataset, p.Query, p.BatchSize, p.ChangedTuples, p.Tuples)
		}
	}
	path := filepath.Join(t.TempDir(), "BENCH_update.json")
	if err := WriteUpdateBench(path, rep); err != nil {
		t.Fatal(err)
	}
}
