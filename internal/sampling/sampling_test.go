package sampling

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/flights"
)

// flightsGame builds the sampling game for the running example.
func flightsGame(t *testing.T) (*Game, *flights.Facts) {
	t.Helper()
	d, fs := flights.Build()
	b := circuit.NewBuilder()
	elin, err := engine.EvalBoolean(d, flights.Query(), b, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NewGame(elin), fs
}

func TestGameEvalMatchesCircuit(t *testing.T) {
	d, _ := flights.Build()
	b := circuit.NewBuilder()
	elin, err := engine.EvalBoolean(d, flights.Query(), b, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGame(elin)
	if g.NumPlayers() != 7 {
		t.Fatalf("players = %d, want 7 (a8 absent from lineage)", g.NumPlayers())
	}
	present := make([]bool, g.NumPlayers())
	assign := make(map[circuit.Var]bool)
	for mask := 0; mask < 1<<g.NumPlayers(); mask++ {
		for i, p := range g.Players {
			in := mask&(1<<i) != 0
			present[i] = in
			assign[circuit.Var(p)] = in
		}
		if g.Eval(present) != circuit.Eval(elin, assign) {
			t.Fatalf("Game.Eval diverges from circuit.Eval at mask %07b", mask)
		}
	}
}

func TestEvalSet(t *testing.T) {
	g, fs := flightsGame(t)
	if !g.EvalSet(map[db.FactID]bool{fs.A[1].ID: true}) {
		t.Error("a1 alone should satisfy the query")
	}
	if g.EvalSet(map[db.FactID]bool{fs.A[2].ID: true}) {
		t.Error("a2 alone should not satisfy the query")
	}
	if !g.EvalSet(map[db.FactID]bool{fs.A[6].ID: true, fs.A[7].ID: true}) {
		t.Error("a6+a7 should satisfy the query")
	}
}

// TestExactBySubsets reproduces the paper's exact values as floats.
func TestExactBySubsets(t *testing.T) {
	g, fs := flightsGame(t)
	exact := ExactBySubsets(g)
	// Careful: the game has 7 players (a8 missing), but the paper's values
	// are over 8 facts. Shapley over the 7-player game differs from the
	// 8-fact game only by a8's null-player removal — values are unchanged
	// because adding null players does not affect the others' values.
	want := map[db.FactID]float64{
		fs.A[1].ID: 43.0 / 105,
		fs.A[2].ID: 23.0 / 210,
		fs.A[3].ID: 23.0 / 210,
		fs.A[4].ID: 23.0 / 210,
		fs.A[5].ID: 23.0 / 210,
		fs.A[6].ID: 8.0 / 105,
		fs.A[7].ID: 8.0 / 105,
	}
	for id, w := range want {
		if math.Abs(exact[id]-w) > 1e-12 {
			t.Errorf("exact[%d] = %v, want %v", id, exact[id], w)
		}
	}
}

func TestMonteCarloConverges(t *testing.T) {
	g, _ := flightsGame(t)
	exact := ExactBySubsets(g)
	rng := rand.New(rand.NewSource(97))
	approx := MonteCarlo(g, 4000*g.NumPlayers(), rng)
	for _, p := range g.Players {
		if math.Abs(approx[p]-exact[p]) > 0.03 {
			t.Errorf("MC[%d] = %v, exact %v (off by %v)", p, approx[p], exact[p],
				math.Abs(approx[p]-exact[p]))
		}
	}
}

func TestMonteCarloDeterministicSeed(t *testing.T) {
	g, _ := flightsGame(t)
	a := MonteCarlo(g, 100, rand.New(rand.NewSource(1)))
	b := MonteCarlo(g, 100, rand.New(rand.NewSource(1)))
	for _, p := range g.Players {
		if a[p] != b[p] {
			t.Fatalf("same seed gave different results for %d: %v vs %v", p, a[p], b[p])
		}
	}
}

// TestKernelSHAPExhaustiveRecoversShapley exercises the known property that
// the SHAP kernel regression over all coalitions yields the exact Shapley
// values.
func TestKernelSHAPExhaustiveRecoversShapley(t *testing.T) {
	g, _ := flightsGame(t)
	exact := ExactBySubsets(g)
	got := KernelSHAPExhaustive(g)
	for _, p := range g.Players {
		if math.Abs(got[p]-exact[p]) > 1e-5 {
			t.Errorf("KernelSHAP exhaustive[%d] = %v, want %v", p, got[p], exact[p])
		}
	}
}

func TestKernelSHAPSampledReasonable(t *testing.T) {
	g, _ := flightsGame(t)
	exact := ExactBySubsets(g)
	rng := rand.New(rand.NewSource(13))
	got := KernelSHAP(g, 50*g.NumPlayers(), rng)
	for _, p := range g.Players {
		if math.Abs(got[p]-exact[p]) > 0.15 {
			t.Errorf("KernelSHAP[%d] = %v, want ≈ %v", p, got[p], exact[p])
		}
	}
}

func TestSinglePlayerGames(t *testing.T) {
	d, _ := flights.Build()
	b := circuit.NewBuilder()
	elin, err := engine.EvalBoolean(d, flights.DirectQuery(), b, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGame(elin)
	if g.NumPlayers() != 1 {
		t.Fatalf("players = %d, want 1", g.NumPlayers())
	}
	rng := rand.New(rand.NewSource(3))
	if v := KernelSHAP(g, 10, rng)[g.Players[0]]; v != 1 {
		t.Errorf("KernelSHAP dictator = %v, want 1", v)
	}
	if v := KernelSHAPExhaustive(g)[g.Players[0]]; v != 1 {
		t.Errorf("KernelSHAPExhaustive dictator = %v, want 1", v)
	}
	if v := MonteCarlo(g, 10, rng)[g.Players[0]]; v != 1 {
		t.Errorf("MonteCarlo dictator = %v, want 1", v)
	}
}

func TestEmptyGame(t *testing.T) {
	b := circuit.NewBuilder()
	g := NewGame(b.False())
	if g.NumPlayers() != 0 {
		t.Fatalf("players = %d, want 0", g.NumPlayers())
	}
	rng := rand.New(rand.NewSource(3))
	if len(MonteCarlo(g, 10, rng)) != 0 || len(KernelSHAP(g, 10, rng)) != 0 {
		t.Error("empty game produced values")
	}
	if g.Eval(nil) {
		t.Error("false lineage evaluated true")
	}
}

func TestSortedPlayers(t *testing.T) {
	m := map[db.FactID]float64{3: 1, 1: 2, 2: 0}
	got := SortedPlayers(m)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("SortedPlayers = %v", got)
	}
}
