package sampling

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/flights"
)

// flightsGame builds the sampling game for the running example.
func flightsGame(t *testing.T) (*Game, *flights.Facts) {
	t.Helper()
	d, fs := flights.Build()
	b := circuit.NewBuilder()
	elin, err := engine.EvalBoolean(d, flights.Query(), b, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NewGame(elin), fs
}

func TestGameEvalMatchesCircuit(t *testing.T) {
	d, _ := flights.Build()
	b := circuit.NewBuilder()
	elin, err := engine.EvalBoolean(d, flights.Query(), b, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGame(elin)
	if g.NumPlayers() != 7 {
		t.Fatalf("players = %d, want 7 (a8 absent from lineage)", g.NumPlayers())
	}
	present := make([]bool, g.NumPlayers())
	assign := make(map[circuit.Var]bool)
	for mask := 0; mask < 1<<g.NumPlayers(); mask++ {
		for i, p := range g.Players {
			in := mask&(1<<i) != 0
			present[i] = in
			assign[circuit.Var(p)] = in
		}
		if g.Eval(present) != circuit.Eval(elin, assign) {
			t.Fatalf("Game.Eval diverges from circuit.Eval at mask %07b", mask)
		}
	}
}

func TestEvalSet(t *testing.T) {
	g, fs := flightsGame(t)
	if !g.EvalSet(map[db.FactID]bool{fs.A[1].ID: true}) {
		t.Error("a1 alone should satisfy the query")
	}
	if g.EvalSet(map[db.FactID]bool{fs.A[2].ID: true}) {
		t.Error("a2 alone should not satisfy the query")
	}
	if !g.EvalSet(map[db.FactID]bool{fs.A[6].ID: true, fs.A[7].ID: true}) {
		t.Error("a6+a7 should satisfy the query")
	}
}

// TestExactBySubsets reproduces the paper's exact values as floats.
func TestExactBySubsets(t *testing.T) {
	g, fs := flightsGame(t)
	exact := ExactBySubsets(g)
	// Careful: the game has 7 players (a8 missing), but the paper's values
	// are over 8 facts. Shapley over the 7-player game differs from the
	// 8-fact game only by a8's null-player removal — values are unchanged
	// because adding null players does not affect the others' values.
	want := map[db.FactID]float64{
		fs.A[1].ID: 43.0 / 105,
		fs.A[2].ID: 23.0 / 210,
		fs.A[3].ID: 23.0 / 210,
		fs.A[4].ID: 23.0 / 210,
		fs.A[5].ID: 23.0 / 210,
		fs.A[6].ID: 8.0 / 105,
		fs.A[7].ID: 8.0 / 105,
	}
	for id, w := range want {
		if math.Abs(exact[id]-w) > 1e-12 {
			t.Errorf("exact[%d] = %v, want %v", id, exact[id], w)
		}
	}
}

func TestMonteCarloConverges(t *testing.T) {
	g, _ := flightsGame(t)
	exact := ExactBySubsets(g)
	rng := rand.New(rand.NewSource(97))
	approx := MonteCarlo(g, 4000*g.NumPlayers(), rng)
	for _, p := range g.Players {
		if math.Abs(approx[p]-exact[p]) > 0.03 {
			t.Errorf("MC[%d] = %v, exact %v (off by %v)", p, approx[p], exact[p],
				math.Abs(approx[p]-exact[p]))
		}
	}
}

func TestMonteCarloDeterministicSeed(t *testing.T) {
	g, _ := flightsGame(t)
	a := MonteCarlo(g, 100, rand.New(rand.NewSource(1)))
	b := MonteCarlo(g, 100, rand.New(rand.NewSource(1)))
	for _, p := range g.Players {
		if a[p] != b[p] {
			t.Fatalf("same seed gave different results for %d: %v vs %v", p, a[p], b[p])
		}
	}
}

// TestKernelSHAPExhaustiveRecoversShapley exercises the known property that
// the SHAP kernel regression over all coalitions yields the exact Shapley
// values.
func TestKernelSHAPExhaustiveRecoversShapley(t *testing.T) {
	g, _ := flightsGame(t)
	exact := ExactBySubsets(g)
	got := KernelSHAPExhaustive(g)
	for _, p := range g.Players {
		if math.Abs(got[p]-exact[p]) > 1e-5 {
			t.Errorf("KernelSHAP exhaustive[%d] = %v, want %v", p, got[p], exact[p])
		}
	}
}

func TestKernelSHAPSampledReasonable(t *testing.T) {
	g, _ := flightsGame(t)
	exact := ExactBySubsets(g)
	rng := rand.New(rand.NewSource(13))
	got := KernelSHAP(g, 50*g.NumPlayers(), rng)
	for _, p := range g.Players {
		if math.Abs(got[p]-exact[p]) > 0.15 {
			t.Errorf("KernelSHAP[%d] = %v, want ≈ %v", p, got[p], exact[p])
		}
	}
}

func TestSinglePlayerGames(t *testing.T) {
	d, _ := flights.Build()
	b := circuit.NewBuilder()
	elin, err := engine.EvalBoolean(d, flights.DirectQuery(), b, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGame(elin)
	if g.NumPlayers() != 1 {
		t.Fatalf("players = %d, want 1", g.NumPlayers())
	}
	rng := rand.New(rand.NewSource(3))
	if v := KernelSHAP(g, 10, rng)[g.Players[0]]; v != 1 {
		t.Errorf("KernelSHAP dictator = %v, want 1", v)
	}
	if v := KernelSHAPExhaustive(g)[g.Players[0]]; v != 1 {
		t.Errorf("KernelSHAPExhaustive dictator = %v, want 1", v)
	}
	if v := MonteCarlo(g, 10, rng)[g.Players[0]]; v != 1 {
		t.Errorf("MonteCarlo dictator = %v, want 1", v)
	}
}

func TestEmptyGame(t *testing.T) {
	b := circuit.NewBuilder()
	g := NewGame(b.False())
	if g.NumPlayers() != 0 {
		t.Fatalf("players = %d, want 0", g.NumPlayers())
	}
	rng := rand.New(rand.NewSource(3))
	if len(MonteCarlo(g, 10, rng)) != 0 || len(KernelSHAP(g, 10, rng)) != 0 {
		t.Error("empty game produced values")
	}
	if g.Eval(nil) {
		t.Error("false lineage evaluated true")
	}
}

func TestSortedPlayers(t *testing.T) {
	m := map[db.FactID]float64{3: 1, 1: 2, 2: 0}
	got := SortedPlayers(m)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("SortedPlayers = %v", got)
	}
}

func TestGameHasInjectedRand(t *testing.T) {
	g, _ := flightsGame(t)
	if g.Rand() == nil {
		t.Fatal("NewGame left the game without a rand source")
	}
	g2, _ := flightsGame(t)
	// Same lineage → same fingerprint → same default seed: the two games'
	// generators produce identical streams.
	if g.Rand().Int63() != g2.Rand().Int63() {
		t.Error("identical games seeded differently")
	}
	g.Reseed(99)
	g2.Reseed(99)
	if g.Rand().Int63() != g2.Rand().Int63() {
		t.Error("Reseed(99) gave divergent streams")
	}
}

func TestFingerprintStable(t *testing.T) {
	g, _ := flightsGame(t)
	g2, _ := flightsGame(t)
	if g.Fingerprint() != g2.Fingerprint() {
		t.Error("rebuilding the same lineage changed the fingerprint")
	}
	if g.Fingerprint() != g.Fingerprint() {
		t.Error("fingerprint is not idempotent")
	}
}

func TestDeriveSeedMixesOverride(t *testing.T) {
	fp := uint64(0x1234)
	base := DeriveSeed(fp, 0)
	if base == DeriveSeed(fp, 1) || base == DeriveSeed(fp, -1) {
		t.Error("override did not change the derived seed")
	}
	if DeriveSeed(fp, 5) != DeriveSeed(fp, 5) {
		t.Error("DeriveSeed is not deterministic")
	}
	if DeriveSeed(fp, 0) == DeriveSeed(fp+1, 0) {
		t.Error("fingerprint did not change the derived seed")
	}
}

func TestMonteCarloCIDeterministicAndCalibratedShape(t *testing.T) {
	g, _ := flightsGame(t)
	cfg := Config{MinPermutations: 300, TargetCI: 1}
	a, err := g.MonteCarloCI(context.Background(), 17, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.MonteCarloCI(context.Background(), 17, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Permutations != 300 || a.Seed != 17 {
		t.Fatalf("spend = %d perms seed %d, want 300 perms seed 17", a.Permutations, a.Seed)
	}
	for _, p := range g.Players {
		if a.Estimates[p] != b.Estimates[p] {
			t.Fatalf("same seed diverged on %d: %+v vs %+v", p, a.Estimates[p], b.Estimates[p])
		}
		e := a.Estimates[p]
		if e.CILow > e.Value || e.Value > e.CIHigh {
			t.Errorf("player %d: value %v outside CI [%v, %v]", p, e.Value, e.CILow, e.CIHigh)
		}
	}
	exact := ExactBySubsets(g)
	for _, p := range g.Players {
		if math.Abs(a.Estimates[p].Value-exact[p]) > 0.1 {
			t.Errorf("player %d: estimate %v far from exact %v", p, a.Estimates[p].Value, exact[p])
		}
	}
}

func TestMonteCarloCIRefinesTowardTarget(t *testing.T) {
	g, _ := flightsGame(t)
	a, err := g.MonteCarloCI(context.Background(), 3, Config{MinPermutations: 64, TargetCI: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	if a.Permutations <= 64 {
		t.Fatalf("refinement never ran past the floor (%d permutations)", a.Permutations)
	}
	widest := 0.0
	for _, p := range g.Players {
		if hw := a.Estimates[p].CIHigh - a.Estimates[p].Value; hw > widest {
			widest = hw
		}
	}
	// Either the target was reached or the permutation ceiling stopped us.
	if widest > 0.04 && a.Permutations < 16*64 {
		t.Errorf("stopped at half-width %v with only %d permutations", widest, a.Permutations)
	}
}

func TestMonteCarloCICancellation(t *testing.T) {
	g, _ := flightsGame(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.MonteCarloCI(ctx, 1, Config{}); err == nil {
		t.Fatal("cancelled context produced estimates")
	}
}
