// Package sampling implements the two inexact baselines of Section 6.2:
// Monte Carlo permutation sampling [Mann & Shapley 1960] and Kernel SHAP
// [Lundberg & Lee 2017], both adapted to database provenance: the players
// are the distinct endogenous facts of a lineage circuit and the game is the
// Boolean value of the lineage on a sub-instance.
package sampling

import (
	"context"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/linalg"
)

// Game is a Boolean cooperative game over the distinct facts of a lineage
// circuit, with a fast slice-based evaluator (the circuit is flattened to a
// postorder program once, then evaluated thousands of times). Each Game owns
// its random source: estimates drawn through the per-game methods are a pure
// function of the game and its seed (see Reseed), never of global process
// state. A Game is not safe for concurrent use.
type Game struct {
	Players []db.FactID
	prog    []instr
	varSlot map[db.FactID]int
	rng     *rand.Rand
	evalBuf []bool // reusable value slots for the sampling hot loop
}

type instr struct {
	kind     circuit.Kind
	val      bool
	slot     int   // assignment slot for var gates
	children []int // program indices
}

// NewGame flattens the lineage circuit. Players are the circuit's distinct
// variables in increasing fact-ID order.
func NewGame(lineage *circuit.Node) *Game {
	vars := circuit.Vars(lineage)
	g := &Game{varSlot: make(map[db.FactID]int, len(vars))}
	for i, v := range vars {
		g.Players = append(g.Players, db.FactID(v))
		g.varSlot[db.FactID(v)] = i
	}
	index := make(map[int]int)
	var flatten func(n *circuit.Node) int
	flatten = func(n *circuit.Node) int {
		if idx, ok := index[n.ID()]; ok {
			return idx
		}
		in := instr{kind: n.Kind, val: n.Val}
		if n.Kind == circuit.KindVar {
			in.slot = g.varSlot[db.FactID(n.Var)]
		}
		for _, c := range n.Children {
			in.children = append(in.children, flatten(c))
		}
		g.prog = append(g.prog, in)
		idx := len(g.prog) - 1
		index[n.ID()] = idx
		return idx
	}
	flatten(lineage)
	g.rng = rand.New(rand.NewSource(DeriveSeed(g.Fingerprint(), 0)))
	return g
}

// NumPlayers returns the number of distinct facts in the lineage.
func (g *Game) NumPlayers() int { return len(g.Players) }

// Reseed resets the game's random source. Two games over the same lineage
// reseeded identically produce identical estimate streams, which is what the
// calibration tests and the anytime serving tier's reproducibility contract
// rely on.
func (g *Game) Reseed(seed int64) { g.rng = rand.New(rand.NewSource(seed)) }

// Rand returns the game's random source (for the free-function samplers
// below, which predate per-game seeding and still take an explicit source).
func (g *Game) Rand() *rand.Rand { return g.rng }

// Fingerprint hashes the flattened game program — gate kinds, constant
// values, variable slots, and child indices, all expressed in player-slot
// space rather than raw fact IDs — so two lineages that are isomorphic
// modulo fact renaming fingerprint identically. It is the canonical lineage
// key the anytime tier derives deterministic sampling seeds from.
func (g *Game) Fingerprint() uint64 {
	h := fnv.New64a()
	buf := make([]byte, 0, 16)
	put := func(v uint64) {
		buf = buf[:0]
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(v>>(8*i)))
		}
		h.Write(buf)
	}
	put(uint64(len(g.Players)))
	for _, in := range g.prog {
		put(uint64(in.kind))
		if in.val {
			put(1)
		} else {
			put(0)
		}
		put(uint64(in.slot))
		put(uint64(len(in.children)))
		for _, c := range in.children {
			put(uint64(c))
		}
	}
	return h.Sum64()
}

// DeriveSeed mixes a lineage fingerprint with a request-supplied override
// into a sampling seed (splitmix64 finalizer). override == 0 yields the
// canonical per-lineage seed; any other value perturbs it reproducibly, so a
// client can ask for an independent estimate without losing determinism.
func DeriveSeed(fingerprint uint64, override int64) int64 {
	z := fingerprint + uint64(override)*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Eval evaluates the game on a coalition given as a presence slice aligned
// with Players.
func (g *Game) Eval(present []bool) bool {
	vals := make([]bool, len(g.prog))
	for i, in := range g.prog {
		switch in.kind {
		case circuit.KindVar:
			vals[i] = present[in.slot]
		case circuit.KindConst:
			vals[i] = in.val
		case circuit.KindNot:
			vals[i] = !vals[in.children[0]]
		case circuit.KindAnd:
			v := true
			for _, c := range in.children {
				if !vals[c] {
					v = false
					break
				}
			}
			vals[i] = v
		case circuit.KindOr:
			v := false
			for _, c := range in.children {
				if vals[c] {
					v = true
					break
				}
			}
			vals[i] = v
		}
	}
	if len(vals) == 0 {
		return false
	}
	return vals[len(vals)-1]
}

// EvalSet evaluates the game on a coalition given as a fact set.
func (g *Game) EvalSet(coalition map[db.FactID]bool) bool {
	present := make([]bool, len(g.Players))
	for i, p := range g.Players {
		present[i] = coalition[p]
	}
	return g.Eval(present)
}

// evalReusing is Eval over a game-owned value buffer, so the sampling loops
// do not allocate per evaluation.
func (g *Game) evalReusing(present []bool) bool {
	if cap(g.evalBuf) < len(g.prog) {
		g.evalBuf = make([]bool, len(g.prog))
	}
	vals := g.evalBuf[:len(g.prog)]
	for i, in := range g.prog {
		switch in.kind {
		case circuit.KindVar:
			vals[i] = present[in.slot]
		case circuit.KindConst:
			vals[i] = in.val
		case circuit.KindNot:
			vals[i] = !vals[in.children[0]]
		case circuit.KindAnd:
			v := true
			for _, c := range in.children {
				if !vals[c] {
					v = false
					break
				}
			}
			vals[i] = v
		case circuit.KindOr:
			v := false
			for _, c := range in.children {
				if vals[c] {
					v = true
					break
				}
			}
			vals[i] = v
		}
	}
	if len(vals) == 0 {
		return false
	}
	return vals[len(vals)-1]
}

// Estimate is one fact's sampled Shapley value with a 95% confidence
// interval. The interval is a normal approximation over the permutation
// sample — Value is always inside [CILow, CIHigh], and all three are finite.
type Estimate struct {
	Value  float64
	CILow  float64
	CIHigh float64
}

// Config bounds a MonteCarloCI run.
type Config struct {
	// MinPermutations is the floor of player permutations sampled before any
	// stopping rule applies (≤ 0 = DefaultMinPermutations). The estimate
	// after exactly MinPermutations is deterministic given the game's seed.
	MinPermutations int
	// MaxPermutations caps the CI refinement loop (≤ 0 = 16·MinPermutations).
	MaxPermutations int
	// TargetCI is the 95%-CI half-width at which refinement stops, checked
	// against the widest per-fact interval after each batch. ≤ 0 uses
	// DefaultTargetCI; ≥ 1 disables refinement entirely (the run is exactly
	// MinPermutations, the fully deterministic mode the calibration tests
	// use).
	TargetCI float64
}

// Defaults for Config.
const (
	DefaultMinPermutations = 256
	DefaultTargetCI        = 0.05
)

func (c Config) withDefaults() Config {
	if c.MinPermutations <= 0 {
		c.MinPermutations = DefaultMinPermutations
	}
	if c.MaxPermutations <= 0 {
		c.MaxPermutations = 16 * c.MinPermutations
	}
	if c.MaxPermutations < c.MinPermutations {
		c.MaxPermutations = c.MinPermutations
	}
	if c.TargetCI <= 0 {
		c.TargetCI = DefaultTargetCI
	}
	return c
}

// Approx is a full sampled explanation: every player's estimate with error
// bars, plus the sampling provenance (how many permutations and evaluations
// were spent, and the seed that reproduces the run).
type Approx struct {
	Estimates    map[db.FactID]Estimate
	Permutations int
	Evals        int
	Seed         int64
}

// ciBatch is how many permutations MonteCarloCI samples between context and
// target-CI checks.
const ciBatch = 64

// z95 is the two-sided 95% normal quantile.
const z95 = 1.959963984540054

// MonteCarloCI approximates every player's Shapley value by permutation
// sampling [Mann & Shapley 1960] with per-fact 95% confidence intervals: it
// draws cfg.MinPermutations permutations, then refines in batches until the
// widest interval's half-width reaches cfg.TargetCI or cfg.MaxPermutations
// is spent. Each permutation contributes one marginal per player (−1, 0, or
// +1 for a Boolean game), so the CI is the normal approximation over those
// marginals. The run consumes the game's seeded random source (see Reseed):
// the same game, seed, and config produce bit-identical estimates. ctx is
// checked between batches; cancellation returns the context's error and no
// estimates.
func (g *Game) MonteCarloCI(ctx context.Context, seed int64, cfg Config) (*Approx, error) {
	cfg = cfg.withDefaults()
	g.Reseed(seed)
	n := g.NumPlayers()
	ap := &Approx{Estimates: make(map[db.FactID]Estimate, n), Seed: seed}
	if n == 0 {
		return ap, nil
	}

	// Per player: Σ marginals and the count of nonzero marginals. Marginals
	// are ±1, so the nonzero count is also Σ marginal², which is all the
	// variance needs.
	sum := make([]int64, n)
	nonzero := make([]int64, n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	present := make([]bool, n)

	perms := 0
	for perms < cfg.MinPermutations || (perms < cfg.MaxPermutations && cfg.TargetCI < 1 && g.widestHalfWidth(sum, nonzero, perms) > cfg.TargetCI) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		batch := ciBatch
		if perms < cfg.MinPermutations && cfg.MinPermutations-perms < batch {
			batch = cfg.MinPermutations - perms
		}
		if cfg.MaxPermutations-perms < batch {
			batch = cfg.MaxPermutations - perms
		}
		for r := 0; r < batch; r++ {
			g.rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			for i := range present {
				present[i] = false
			}
			prev := g.evalReusing(present)
			for _, p := range perm {
				present[p] = true
				cur := g.evalReusing(present)
				if cur != prev {
					if cur {
						sum[p]++
					} else {
						sum[p]--
					}
					nonzero[p]++
				}
				prev = cur
			}
		}
		perms += batch
		ap.Evals += batch * (n + 1)
	}

	ap.Permutations = perms
	for i, p := range g.Players {
		ap.Estimates[p] = estimateFrom(sum[i], nonzero[i], perms)
	}
	return ap, nil
}

// estimateFrom turns one player's marginal tallies into a 95% CI estimate.
func estimateFrom(sum, nonzero int64, perms int) Estimate {
	r := float64(perms)
	mean := float64(sum) / r
	hw := 1.0 // conservative interval when variance is undefined
	if perms >= 2 {
		// Sample variance of ±1/0 marginals: (Σm² − (Σm)²/R)/(R−1).
		variance := (float64(nonzero) - float64(sum)*float64(sum)/r) / (r - 1)
		if variance < 0 {
			variance = 0
		}
		hw = z95 * math.Sqrt(variance/r)
	}
	return Estimate{Value: mean, CILow: mean - hw, CIHigh: mean + hw}
}

// widestHalfWidth is the refinement loop's stopping statistic: the largest
// per-player 95% half-width at the current sample size.
func (g *Game) widestHalfWidth(sum, nonzero []int64, perms int) float64 {
	if perms < 2 {
		return math.Inf(1)
	}
	widest := 0.0
	for i := range sum {
		e := estimateFrom(sum[i], nonzero[i], perms)
		if hw := e.CIHigh - e.Value; hw > widest {
			widest = hw
		}
	}
	return widest
}

// MonteCarlo approximates the Shapley value of every player with a budget of
// `budget` game evaluations (= ⌈budget/n⌉ permutations of the n players, as
// in Section 6.2 where budgets are expressed as r·n samples). Facts never
// appearing in the lineage are not players and implicitly score 0.
func MonteCarlo(g *Game, budget int, rng *rand.Rand) map[db.FactID]float64 {
	n := g.NumPlayers()
	out := make(map[db.FactID]float64, n)
	if n == 0 {
		return out
	}
	perms := (budget + n - 1) / n
	if perms < 1 {
		perms = 1
	}
	acc := make([]float64, n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	present := make([]bool, n)
	for r := 0; r < perms; r++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for i := range present {
			present[i] = false
		}
		prev := g.Eval(present)
		for _, p := range perm {
			present[p] = true
			cur := g.Eval(present)
			if cur != prev {
				if cur {
					acc[p]++
				} else {
					acc[p]--
				}
			}
			prev = cur
		}
	}
	for i, p := range g.Players {
		out[p] = acc[i] / float64(perms)
	}
	return out
}

// KernelSHAP approximates Shapley values by sampling `budget` coalitions,
// weighting them with the SHAP kernel π(s) = (M−1)/(C(M,s)·s·(M−s)), and
// solving a weighted least-squares problem for the linear surrogate
// g(z) = φ0 + Σ φ_i z_i. Following the paper's adaptation, the explained
// vector is all-ones and the background is a single all-zeros example, so
// the surrogate's targets are plain lineage evaluations. The empty and full
// coalitions anchor the regression with large weights, enforcing
// g(∅) ≈ h(∅) and g(1) ≈ h(1).
func KernelSHAP(g *Game, budget int, rng *rand.Rand) map[db.FactID]float64 {
	m := g.NumPlayers()
	out := make(map[db.FactID]float64, m)
	if m == 0 {
		return out
	}
	if m == 1 {
		// φ = h({f}) − h(∅) directly; the kernel is undefined for M=1.
		out[g.Players[0]] = btof(g.Eval([]bool{true})) - btof(g.Eval([]bool{false}))
		return out
	}

	type sample struct {
		z []bool
		w float64
	}
	var samples []sample

	// Size distribution proportional to total kernel mass per size.
	sizeWeights := make([]float64, m) // index s = 1..m-1
	totalW := 0.0
	for s := 1; s <= m-1; s++ {
		w := float64(m-1) / (float64(s) * float64(m-s)) // mass of the whole size class
		sizeWeights[s-1] = w
		totalW += w
	}

	const anchorWeight = 1e6
	empty := make([]bool, m)
	full := make([]bool, m)
	for i := range full {
		full[i] = true
	}
	samples = append(samples,
		sample{z: empty, w: anchorWeight},
		sample{z: full, w: anchorWeight})

	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	for k := 0; k < budget; k++ {
		// Sample a size, then a uniform coalition of that size. A uniform
		// coalition within a size class carries the class weight evenly, so
		// per-sample regression weight is constant; we use 1.
		r := rng.Float64() * totalW
		s := 1
		for ; s < m-1; s++ {
			if r < sizeWeights[s-1] {
				break
			}
			r -= sizeWeights[s-1]
		}
		rng.Shuffle(m, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		z := make([]bool, m)
		for _, p := range idx[:s] {
			z[p] = true
		}
		samples = append(samples, sample{z: z, w: 1})
	}

	// Design matrix with intercept column (φ0) followed by per-player
	// indicator columns.
	x := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	w := make([]float64, len(samples))
	for i, s := range samples {
		row := make([]float64, m+1)
		row[0] = 1
		for j, in := range s.z {
			if in {
				row[j+1] = 1
			}
		}
		x[i] = row
		y[i] = btof(g.Eval(s.z))
		w[i] = s.w
	}
	beta, err := linalg.WeightedLeastSquares(x, y, w, 1e-9)
	if err != nil {
		// Degenerate sample set: fall back to zeros rather than failing the
		// whole comparison run.
		for _, p := range g.Players {
			out[p] = 0
		}
		return out
	}
	for i, p := range g.Players {
		out[p] = beta[i+1]
	}
	return out
}

// KernelSHAPExhaustive runs the Kernel SHAP regression over every coalition
// with its exact kernel weight. With full coverage, the weighted regression
// recovers the exact Shapley values (a known property of the SHAP kernel),
// which makes this the correctness oracle for the sampled variant. It is
// exponential in the number of players.
func KernelSHAPExhaustive(g *Game) map[db.FactID]float64 {
	m := g.NumPlayers()
	out := make(map[db.FactID]float64, m)
	if m == 0 {
		return out
	}
	if m == 1 {
		out[g.Players[0]] = btof(g.Eval([]bool{true})) - btof(g.Eval([]bool{false}))
		return out
	}
	var x [][]float64
	var y, w []float64
	const anchorWeight = 1e8
	binom := func(n, k int) float64 {
		res := 1.0
		for i := 1; i <= k; i++ {
			res = res * float64(n-i+1) / float64(i)
		}
		return res
	}
	for mask := 0; mask < 1<<m; mask++ {
		s := 0
		z := make([]bool, m)
		row := make([]float64, m+1)
		row[0] = 1
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				z[i] = true
				row[i+1] = 1
				s++
			}
		}
		var weight float64
		if s == 0 || s == m {
			weight = anchorWeight
		} else {
			weight = float64(m-1) / (binom(m, s) * float64(s) * float64(m-s))
		}
		x = append(x, row)
		y = append(y, btof(g.Eval(z)))
		w = append(w, weight)
	}
	beta, err := linalg.WeightedLeastSquares(x, y, w, 1e-12)
	if err != nil {
		return out
	}
	for i, p := range g.Players {
		out[p] = beta[i+1]
	}
	return out
}

// ExactBySubsets computes exact Shapley values of the game by subset
// enumeration, returned as floats; a convenience oracle for tests and small
// benchmarks.
func ExactBySubsets(g *Game) map[db.FactID]float64 {
	m := g.NumPlayers()
	out := make(map[db.FactID]float64, m)
	if m == 0 {
		return out
	}
	vals := make([]bool, 1<<m)
	z := make([]bool, m)
	for mask := 0; mask < 1<<m; mask++ {
		for i := 0; i < m; i++ {
			z[i] = mask&(1<<i) != 0
		}
		vals[mask] = g.Eval(z)
	}
	// coef[k] = k!(m−k−1)!/m! = 1/(m·C(m−1,k)).
	coefs := make([]float64, m)
	for k := 0; k < m; k++ {
		binom := 1.0
		for i := 1; i <= k; i++ {
			binom = binom * float64(m-i) / float64(i)
		}
		coefs[k] = 1 / (float64(m) * binom)
	}
	for i, p := range g.Players {
		total := 0.0
		bit := 1 << i
		for mask := 0; mask < 1<<m; mask++ {
			if mask&bit != 0 {
				continue
			}
			with, without := vals[mask|bit], vals[mask]
			if with == without {
				continue
			}
			k := popcount(mask)
			if with {
				total += coefs[k]
			} else {
				total -= coefs[k]
			}
		}
		out[p] = total
	}
	return out
}

func btof(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// SortedPlayers returns the players sorted by ID (a stable iteration helper
// for reports).
func SortedPlayers(m map[db.FactID]float64) []db.FactID {
	ids := make([]db.FactID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
