package dnnf

// This file implements Lemma 4.6 of the paper: given a d-DNNF C'' equivalent
// to Tseytin(C') for a Boolean circuit C', produce in time O(|C''|) a d-DNNF
// C''' equivalent to C' itself, whose variables are exactly the original
// (non-auxiliary) variables. The construction: remove unsatisfiable gates,
// drop gates disconnected from the output, and replace every literal z or ¬z
// on an auxiliary variable z ∈ Z with a constant 1-gate. Correctness rests
// on the Tseytin properties — every satisfying assignment of C' has exactly
// one satisfying extension to Z, and non-satisfying assignments have none —
// so each original model is counted exactly once after the replacement.

// EliminateAux applies Lemma 4.6: it returns a d-DNNF over the original
// variables only, equivalent to the circuit the Tseytin CNF was built from.
// isAux reports whether a variable is a Tseytin auxiliary.
func EliminateAux(n *Node, isAux func(v int) bool) *Node {
	sat := satisfiable(n)
	b := NewBuilder()
	memo := make(map[int]*Node)
	var rec func(*Node) *Node
	rec = func(m *Node) *Node {
		if r, ok := memo[m.id]; ok {
			return r
		}
		var r *Node
		switch {
		case !sat[m.id]:
			r = b.False()
		case m.Kind == KindTrue:
			r = b.True()
		case m.Kind == KindFalse:
			r = b.False()
		case m.Kind == KindLit:
			v := m.Lit
			if v < 0 {
				v = -v
			}
			if isAux(v) {
				r = b.True()
			} else {
				r = b.Lit(m.Lit)
			}
		case m.Kind == KindAnd:
			cs := make([]*Node, len(m.Children))
			for i, c := range m.Children {
				cs[i] = rec(c)
			}
			r = b.And(cs...)
		default: // KindOr
			cs := make([]*Node, 0, len(m.Children))
			for _, c := range m.Children {
				if sat[c.id] {
					cs = append(cs, rec(c))
				}
			}
			dec := m.Decision
			if dec != 0 && isAux(dec) {
				dec = 0
			}
			r = b.orSlice(dec, cs)
		}
		memo[m.id] = r
		return r
	}
	return rec(n)
}

// satisfiable computes, for every node in the DAG, whether it has at least
// one satisfying assignment. Under decomposability an ∧ is satisfiable iff
// all children are; an ∨ iff any child is.
func satisfiable(n *Node) map[int]bool {
	sat := make(map[int]bool)
	Visit(n, func(m *Node) {
		switch m.Kind {
		case KindTrue, KindLit:
			sat[m.id] = true
		case KindFalse:
			sat[m.id] = false
		case KindAnd:
			ok := true
			for _, c := range m.Children {
				if !sat[c.id] {
					ok = false
					break
				}
			}
			sat[m.id] = ok
		case KindOr:
			ok := false
			for _, c := range m.Children {
				if sat[c.id] {
					ok = true
					break
				}
			}
			sat[m.id] = ok
		}
	})
	return sat
}
