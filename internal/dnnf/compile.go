package dnnf

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cnf"
)

// Compilation errors. A compilation that exceeds its time or size budget
// fails with one of these; the hybrid strategy of Section 6.3 falls back to
// CNF Proxy on such failures, mirroring the paper's out-of-memory and
// timeout failures of c2d.
var (
	ErrTimeout    = errors.New("dnnf: compilation timed out")
	ErrNodeBudget = errors.New("dnnf: compilation exceeded node budget")
)

// VarOrder selects the branching-variable heuristic.
type VarOrder uint8

// Branching heuristics.
const (
	// OrderMostFrequent branches on the variable occurring in the most
	// active clauses (a dynamic degree heuristic, the default).
	OrderMostFrequent VarOrder = iota
	// OrderLexicographic branches on the smallest-numbered variable; kept
	// as an ablation baseline.
	OrderLexicographic
)

// Options configures compilation.
type Options struct {
	// Timeout bounds wall-clock compilation time; zero means no limit.
	Timeout time.Duration
	// MaxNodes bounds the number of d-DNNF nodes allocated; zero means no
	// limit. This plays the role of c2d running out of memory.
	MaxNodes int
	// DisableCache turns off component caching (ablation).
	DisableCache bool
	// Order selects the branching heuristic.
	Order VarOrder
	// Cache, when non-nil, is a cross-call LRU consulted before compiling
	// and updated after: repeated compilations of the same formula return
	// the previously compiled circuit. Safe for concurrent use.
	Cache *CompileCache
}

// Stats reports compilation effort.
type Stats struct {
	Decisions    int
	Propagations int
	CacheHits    int
	CacheMisses  int
	Components   int
	Nodes        int
	Elapsed      time.Duration
	// CrossCallHit reports that the whole compilation was answered from a
	// cross-call CompileCache, in which case the effort counters are zero.
	CrossCallHit bool
}

func (s Stats) String() string {
	return fmt.Sprintf("decisions=%d props=%d cacheHits=%d cacheMisses=%d components=%d nodes=%d crossHit=%v elapsed=%v",
		s.Decisions, s.Propagations, s.CacheHits, s.CacheMisses, s.Components, s.Nodes, s.CrossCallHit, s.Elapsed)
}

// compiler carries the mutable compilation state.
type compiler struct {
	ctx      context.Context
	b        *Builder
	opts     Options
	cache    map[string]*Node
	stats    Stats
	deadline time.Time
	steps    int
}

// Compile translates a CNF formula into an equivalent d-DNNF using
// exhaustive DPLL with unit propagation, connected-component decomposition
// (yielding decomposable ∧-gates), Shannon decisions (yielding deterministic
// ∨-gates), and component caching — the classic construction behind c2d and
// dsharp. The context carries external cancellation (distinct from
// Options.Timeout, which is this compilation's own budget and yields
// ErrTimeout); ctx errors are returned as-is.
func Compile(ctx context.Context, f *cnf.Formula, opts Options) (*Node, Stats, error) {
	start := time.Now()
	c := &compiler{
		ctx:   ctx,
		b:     NewBuilder(),
		opts:  opts,
		cache: make(map[string]*Node),
	}
	if opts.Timeout > 0 {
		c.deadline = start.Add(opts.Timeout)
	}
	clauses := make([]cnf.Clause, 0, len(f.Clauses))
	for _, cl := range f.Clauses {
		norm, taut := normalizeClause(cl)
		if taut {
			continue
		}
		if len(norm) == 0 {
			return c.b.False(), c.stats, nil
		}
		clauses = append(clauses, norm)
	}
	var signature string
	if opts.Cache != nil {
		signature = formulaSignature(clauses, f, opts)
		// Single-flight loop: serve a hit, or become the leader and
		// compile, or wait for the in-flight leader and re-check. Waiters
		// of a failed leader contend to lead the next round, so duplicate
		// formulas compiled concurrently still pay for one compilation.
		for {
			if root, nodes, ok := opts.Cache.get(signature); ok {
				if opts.MaxNodes > 0 && nodes > opts.MaxNodes {
					// The node budget models memory exhaustion; comparing
					// against the original compilation's allocation count
					// makes a warm hit fail exactly where a cold compile
					// would, independent of cache warmth.
					return nil, c.stats, ErrNodeBudget
				}
				c.stats.CrossCallHit = true
				c.stats.Nodes = nodes
				c.stats.Elapsed = time.Since(start)
				return root, c.stats, nil
			}
			leader, wait := opts.Cache.acquire(signature)
			if leader {
				defer opts.Cache.release(signature)
				break
			}
			wait()
		}
	}
	root, err := c.compile(clauses)
	c.stats.Elapsed = time.Since(start)
	c.stats.Nodes = c.b.NumNodes()
	if err != nil {
		return nil, c.stats, err
	}
	if opts.Cache != nil {
		opts.Cache.put(signature, root, c.stats.Nodes)
	}
	return root, c.stats, nil
}

// normalizeClause sorts literals, removes duplicates, and detects
// tautologies (clauses containing both v and ¬v).
func normalizeClause(cl cnf.Clause) (cnf.Clause, bool) {
	out := make(cnf.Clause, len(cl))
	copy(out, cl)
	sort.Slice(out, func(i, j int) bool {
		vi, vj := out[i].Var(), out[j].Var()
		if vi != vj {
			return vi < vj
		}
		return out[i] < out[j]
	})
	w := 0
	for i, l := range out {
		if i > 0 && out[w-1] == l {
			continue
		}
		if i > 0 && out[w-1] == -l {
			return nil, true
		}
		out[w] = l
		w++
	}
	return out[:w], false
}

func (c *compiler) checkBudget() error {
	c.steps++
	if c.steps%64 == 0 {
		if err := c.ctx.Err(); err != nil {
			return err
		}
		if !c.deadline.IsZero() && time.Now().After(c.deadline) {
			return ErrTimeout
		}
	}
	if c.opts.MaxNodes > 0 && c.b.NumNodes() > c.opts.MaxNodes {
		return ErrNodeBudget
	}
	return nil
}

// compile compiles a set of normalized clauses (no duplicates or
// tautologies) into a d-DNNF node.
func (c *compiler) compile(clauses []cnf.Clause) (*Node, error) {
	if err := c.checkBudget(); err != nil {
		return nil, err
	}

	// Unit propagation.
	units, rest, conflict := propagate(clauses)
	c.stats.Propagations += len(units)
	if conflict {
		return c.b.False(), nil
	}
	unitNodes := make([]*Node, 0, len(units)+2)
	for _, l := range units {
		unitNodes = append(unitNodes, c.b.Lit(int(l)))
	}
	if len(rest) == 0 {
		return c.b.And(unitNodes...), nil
	}

	// Connected-component decomposition.
	comps := components(rest)
	if len(comps) > 1 {
		c.stats.Components++
	}
	parts := unitNodes
	for _, comp := range comps {
		node, err := c.compileComponent(comp)
		if err != nil {
			return nil, err
		}
		parts = append(parts, node)
	}
	return c.b.And(parts...), nil
}

// compileComponent compiles a single connected component, consulting the
// component cache.
func (c *compiler) compileComponent(clauses []cnf.Clause) (*Node, error) {
	var key string
	if !c.opts.DisableCache {
		key = cacheKey(clauses)
		if n, ok := c.cache[key]; ok {
			c.stats.CacheHits++
			return n, nil
		}
		c.stats.CacheMisses++
	}

	v := c.pickVar(clauses)
	c.stats.Decisions++

	hiClauses, hiEmpty := assign(clauses, cnf.Lit(v))
	var hi *Node
	var err error
	if hiEmpty {
		hi = c.b.False()
	} else if hi, err = c.compile(hiClauses); err != nil {
		return nil, err
	}

	loClauses, loEmpty := assign(clauses, cnf.Lit(-v))
	var lo *Node
	if loEmpty {
		lo = c.b.False()
	} else if lo, err = c.compile(loClauses); err != nil {
		return nil, err
	}

	n := c.b.Decision(v, hi, lo)
	if !c.opts.DisableCache {
		c.cache[key] = n
	}
	return n, nil
}

// pickVar selects the branching variable per the configured heuristic.
func (c *compiler) pickVar(clauses []cnf.Clause) int {
	switch c.opts.Order {
	case OrderLexicographic:
		best := 0
		for _, cl := range clauses {
			for _, l := range cl {
				if v := l.Var(); best == 0 || v < best {
					best = v
				}
			}
		}
		return best
	default:
		counts := make(map[int]int)
		for _, cl := range clauses {
			for _, l := range cl {
				counts[l.Var()]++
			}
		}
		best, bestCount := 0, -1
		for v, n := range counts {
			if n > bestCount || (n == bestCount && v < best) {
				best, bestCount = v, n
			}
		}
		return best
	}
}

// propagate performs exhaustive unit propagation. It returns the implied
// literals, the residual clauses (each with ≥2 literals, mentioning no
// assigned variable), and whether a conflict was derived.
func propagate(clauses []cnf.Clause) (units []cnf.Lit, rest []cnf.Clause, conflict bool) {
	assignment := make(map[int]bool)
	work := clauses
	for {
		var pending []cnf.Lit
		for _, cl := range work {
			if len(cl) == 1 {
				pending = append(pending, cl[0])
			}
		}
		if len(pending) == 0 {
			break
		}
		for _, l := range pending {
			v := l.Var()
			want := l.Positive()
			if have, ok := assignment[v]; ok {
				if have != want {
					return nil, nil, true
				}
				continue
			}
			assignment[v] = want
			units = append(units, l)
		}
		next := make([]cnf.Clause, 0, len(work))
		for _, cl := range work {
			reduced, sat, empty := reduce(cl, assignment)
			if sat {
				continue
			}
			if empty {
				return nil, nil, true
			}
			next = append(next, reduced)
		}
		work = next
	}
	return units, work, false
}

// reduce simplifies a clause under a partial assignment.
func reduce(cl cnf.Clause, assignment map[int]bool) (out cnf.Clause, sat, empty bool) {
	keep := cl[:0:0]
	for _, l := range cl {
		val, ok := assignment[l.Var()]
		if !ok {
			keep = append(keep, l)
			continue
		}
		if val == l.Positive() {
			return nil, true, false
		}
	}
	if len(keep) == 0 {
		return nil, false, true
	}
	return keep, false, false
}

// assign simplifies the clauses under a single literal assignment. It
// returns the residual clauses and whether an empty clause was derived.
func assign(clauses []cnf.Clause, l cnf.Lit) ([]cnf.Clause, bool) {
	out := make([]cnf.Clause, 0, len(clauses))
	for _, cl := range clauses {
		sat := false
		removed := false
		for _, m := range cl {
			if m == l {
				sat = true
				break
			}
			if m == -l {
				removed = true
			}
		}
		if sat {
			continue
		}
		if !removed {
			out = append(out, cl)
			continue
		}
		keep := make(cnf.Clause, 0, len(cl)-1)
		for _, m := range cl {
			if m != -l {
				keep = append(keep, m)
			}
		}
		if len(keep) == 0 {
			return nil, true
		}
		out = append(out, keep)
	}
	return out, false
}

// components partitions clauses into connected components of the
// clause-variable incidence graph, using union-find over variables.
func components(clauses []cnf.Clause) [][]cnf.Clause {
	parent := make(map[int]int)
	var find func(int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, cl := range clauses {
		for i := 1; i < len(cl); i++ {
			union(cl[0].Var(), cl[i].Var())
		}
	}
	groups := make(map[int][]cnf.Clause)
	var roots []int
	for _, cl := range clauses {
		r := find(cl[0].Var())
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], cl)
	}
	sort.Ints(roots)
	out := make([][]cnf.Clause, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// cacheKey renders a clause set canonically. Clauses are assumed
// literal-sorted (normalizeClause sorts them and all simplifications
// preserve relative order).
func cacheKey(clauses []cnf.Clause) string {
	strs := make([]string, len(clauses))
	for i, cl := range clauses {
		var sb strings.Builder
		for _, l := range cl {
			fmt.Fprintf(&sb, "%d ", int(l))
		}
		strs[i] = sb.String()
	}
	sort.Strings(strs)
	return strings.Join(strs, ";")
}
