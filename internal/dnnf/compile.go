package dnnf

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cnf"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Compilation errors. A compilation that exceeds its time or size budget
// fails with one of these; the hybrid strategy of Section 6.3 falls back to
// CNF Proxy on such failures, mirroring the paper's out-of-memory and
// timeout failures of c2d.
var (
	ErrTimeout    = errors.New("dnnf: compilation timed out")
	ErrNodeBudget = errors.New("dnnf: compilation exceeded node budget")
)

// VarOrder selects the branching-variable heuristic.
type VarOrder uint8

// Branching heuristics.
const (
	// OrderMostFrequent branches on the variable occurring in the most
	// active clauses (a dynamic degree heuristic, the default).
	OrderMostFrequent VarOrder = iota
	// OrderLexicographic branches on the smallest-numbered variable; kept
	// as an ablation baseline.
	OrderLexicographic
	// OrderJeroslowWang branches on the variable maximizing the two-sided
	// Jeroslow–Wang score Σ_{cl ∋ v} 2^-|cl| over the active clauses — a
	// dynamic heuristic that weights short clauses exponentially harder
	// than the plain occurrence count does. It explores a genuinely
	// different decision tree from OrderMostFrequent, which is what makes
	// it a useful portfolio racer.
	OrderJeroslowWang

	// numVarOrders bounds the VarOrder space (used by the portfolio win
	// counters).
	numVarOrders = 3
)

// String names the heuristic ("freq", "lex", "jw").
func (o VarOrder) String() string {
	switch o {
	case OrderLexicographic:
		return "lex"
	case OrderJeroslowWang:
		return "jw"
	default:
		return "freq"
	}
}

// ParseVarOrder parses a heuristic name as printed by VarOrder.String.
func ParseVarOrder(s string) (VarOrder, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "freq", "most-frequent":
		return OrderMostFrequent, nil
	case "lex", "lexicographic":
		return OrderLexicographic, nil
	case "jw", "jeroslow-wang":
		return OrderJeroslowWang, nil
	}
	return OrderMostFrequent, fmt.Errorf("dnnf: unknown variable order %q (want freq, lex, or jw)", s)
}

// Options configures compilation.
type Options struct {
	// Timeout bounds wall-clock compilation time; zero means no limit.
	Timeout time.Duration
	// MaxNodes bounds the number of d-DNNF nodes allocated; zero means no
	// limit. This plays the role of c2d running out of memory.
	MaxNodes int
	// DisableCache turns off component caching (ablation).
	DisableCache bool
	// Order selects the branching heuristic.
	Order VarOrder
	// Cache, when non-nil, is a cross-call LRU consulted before compiling
	// and updated after: repeated compilations of the same formula return
	// the previously compiled circuit. Safe for concurrent use.
	Cache *CompileCache
	// Workers bounds intra-compilation parallelism: independent connected
	// components of the residual clause set fan out across up to Workers
	// goroutines (≤ 0 = GOMAXPROCS). Workers == 1 is the fully sequential
	// compiler and produces the exact circuit (node IDs included) the
	// pre-parallel implementation did; higher counts produce semantically
	// identical circuits whose node numbering depends on scheduling.
	Workers int
	// Speculate additionally compiles the hi and lo cofactors of shallow
	// Shannon decisions concurrently — the two cofactors are independent by
	// construction, so this parallelizes single-component instances, where
	// component fan-out has nothing to split. Speculation rides the same
	// spawn-token pool as the component fan-out (so Workers still bounds
	// total parallelism), is capped by the same recursion depth, and is
	// inert at Workers == 1. A branch that fails its budget cancels its
	// in-flight sibling immediately; cofactors that are unsatisfiable at
	// assignment time never spawn a sibling at all. Node and step budgets
	// are accounted on shared atomics, so MaxNodes semantics are unchanged.
	Speculate bool
	// Portfolio races the same CNF under different branching heuristics
	// (the configured Order plus the dynamic heuristics it is not), each
	// racer on its own builder with an equal share of the Workers budget.
	// The first racer to finish wins: its circuit is returned (and enters
	// Cache under the canonical key, so a win anywhere is fleet-wide) and
	// the losers are cancelled via context. Requires Workers ≥ 2 to engage;
	// with Workers == 1 compilation is byte-identical to the sequential
	// compiler. MaxNodes bounds each racer's builder: the compilation fails
	// with ErrNodeBudget only when every racer exhausts it.
	Portfolio bool
	// NoCanonicalCache keys the cross-call Cache by the byte-identical
	// formula signature instead of the rename-invariant canonical form
	// (ablation). With canonical keying — the default — compilations of
	// formulas that are equal up to a variable renaming share one cache
	// entry; the cached circuit is relabeled to the caller's variables on
	// each hit.
	NoCanonicalCache bool
	// CacheOwner tags the Cache entry this compilation populates with the
	// identity of the fact-ID universe its variables come from (the
	// database ID, for lineage compilations; 0 = untagged). It scopes
	// CompileCache.Invalidate — fact IDs collide across databases — and
	// never affects lookups.
	CacheOwner uint64
}

// Stats reports compilation effort.
type Stats struct {
	Decisions    int
	Propagations int
	CacheHits    int
	CacheMisses  int
	Components   int
	Nodes        int
	Elapsed      time.Duration
	// CrossCallHit reports that the whole compilation was answered from a
	// cross-call CompileCache, in which case the effort counters are zero.
	CrossCallHit bool
	// RenamedHit reports that the cross-call hit was served under the
	// canonical key for a formula that differed from the cached one by a
	// variable renaming, so the circuit was relabeled for this caller.
	RenamedHit bool
	// SpeculatedDecisions counts Shannon decisions whose cofactors compiled
	// concurrently; SpeculationCancels counts siblings that were cancelled
	// mid-flight because the other branch failed its budget.
	SpeculatedDecisions int
	SpeculationCancels  int
	// PortfolioRacers is how many heuristics raced this compilation (0 when
	// portfolio mode was off or did not engage); PortfolioLosersCancelled
	// counts racers cancelled after the winner finished; PortfolioWinner
	// names the winning heuristic ("" when no race ran). The effort
	// counters above are the winning racer's.
	PortfolioRacers          int
	PortfolioLosersCancelled int
	PortfolioWinner          string
}

func (s Stats) String() string {
	out := fmt.Sprintf("decisions=%d props=%d cacheHits=%d cacheMisses=%d components=%d nodes=%d crossHit=%v renamedHit=%v elapsed=%v",
		s.Decisions, s.Propagations, s.CacheHits, s.CacheMisses, s.Components, s.Nodes, s.CrossCallHit, s.RenamedHit, s.Elapsed)
	if s.SpeculatedDecisions > 0 || s.SpeculationCancels > 0 {
		out += fmt.Sprintf(" speculated=%d specCancels=%d", s.SpeculatedDecisions, s.SpeculationCancels)
	}
	if s.PortfolioRacers > 0 {
		out += fmt.Sprintf(" portfolio=%d winner=%s losersCancelled=%d", s.PortfolioRacers, s.PortfolioWinner, s.PortfolioLosersCancelled)
	}
	return out
}

// parallelComponentFloor is the size cutoff for fanning a component out to
// another goroutine: components with fewer clauses compile in about the time
// a goroutine handoff costs, so they stay on the current worker.
const parallelComponentFloor = 8

// speculateClauseFloor is the analogous cutoff for speculative decision
// branching: a cofactor of a smaller clause set compiles faster than the
// spawn costs.
const speculateClauseFloor = 8

// compiler carries the mutable compilation state. All fields written during
// the recursion are either atomic or mutex-guarded, because the component
// fan-out and speculative decision branching may run subproblems on several
// goroutines at once.
type compiler struct {
	b        *Builder
	opts     Options
	deadline time.Time
	// limit is the spawn budget shared by component fan-out and speculative
	// decision branching; nil means the fully sequential compiler.
	limit *parallel.Limit

	cacheMu sync.RWMutex
	cache   map[string]*Node

	decisions    atomic.Int64
	propagations atomic.Int64
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	components   atomic.Int64
	steps        atomic.Int64
	speculated   atomic.Int64
	specCancels  atomic.Int64
}

// newCompiler builds a compiler for one (possibly racing) compilation.
// start anchors the deadline so portfolio racers share one clock.
func newCompiler(opts Options, start time.Time) *compiler {
	c := &compiler{
		b:     NewBuilder(),
		opts:  opts,
		cache: make(map[string]*Node),
		limit: parallel.NewLimit(parallel.Workers(opts.Workers) - 1),
	}
	if opts.Timeout > 0 {
		c.deadline = start.Add(opts.Timeout)
	}
	return c
}

// snapshot folds the atomic counters into a Stats value.
func (c *compiler) snapshot(start time.Time) Stats {
	return Stats{
		Decisions:           int(c.decisions.Load()),
		Propagations:        int(c.propagations.Load()),
		CacheHits:           int(c.cacheHits.Load()),
		CacheMisses:         int(c.cacheMisses.Load()),
		Components:          int(c.components.Load()),
		Nodes:               c.b.NumNodes(),
		SpeculatedDecisions: int(c.speculated.Load()),
		SpeculationCancels:  int(c.specCancels.Load()),
		Elapsed:             time.Since(start),
	}
}

// compileRoot runs the recursive compilation from the top, seeding the
// occurrence counts when the configured heuristic consumes them.
func (c *compiler) compileRoot(ctx context.Context, clauses []cnf.Clause) (*Node, error) {
	var counts *occCounts
	if c.opts.Order == OrderMostFrequent {
		counts = newOccCounts(clauses)
	}
	return c.compile(ctx, clauses, 0, counts)
}

// Compile translates a CNF formula into an equivalent d-DNNF using
// exhaustive DPLL with unit propagation, connected-component decomposition
// (yielding decomposable ∧-gates), Shannon decisions (yielding deterministic
// ∨-gates), and component caching — the classic construction behind c2d and
// dsharp. The context carries external cancellation (distinct from
// Options.Timeout, which is this compilation's own budget and yields
// ErrTimeout); ctx errors are returned as-is. When ctx carries a trace
// collector, the compilation records a "dnnf" span annotated with the
// workers granted, the cache-hit kind, and the speculation and portfolio
// outcomes.
func Compile(ctx context.Context, f *cnf.Formula, opts Options) (*Node, Stats, error) {
	ctx, sp := trace.Start(ctx, "dnnf")
	root, stats, err := compileFormula(ctx, f, opts)
	if sp != nil {
		sp.Set("clauses", len(f.Clauses))
		sp.Set("workers", parallel.Workers(opts.Workers))
		sp.Set("nodes", stats.Nodes)
		sp.Set("decisions", stats.Decisions)
		if opts.Cache != nil {
			switch {
			case stats.RenamedHit:
				sp.Set("cache", "renamed")
			case stats.CrossCallHit:
				sp.Set("cache", "identical")
			default:
				sp.Set("cache", "miss")
			}
		}
		if opts.Speculate {
			sp.Set("speculated", stats.SpeculatedDecisions)
			sp.Set("speculation_cancels", stats.SpeculationCancels)
		}
		if stats.PortfolioRacers > 0 {
			sp.Set("portfolio_racers", stats.PortfolioRacers)
			sp.Set("portfolio_winner", stats.PortfolioWinner)
			sp.Set("portfolio_losers_cancelled", stats.PortfolioLosersCancelled)
		}
		if err != nil {
			sp.Set("error", err.Error())
		}
		sp.End()
	}
	return root, stats, err
}

// compileFormula is Compile without the tracing shim.
func compileFormula(ctx context.Context, f *cnf.Formula, opts Options) (*Node, Stats, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		// An already-cancelled caller gets its error immediately — the
		// periodic in-search budget check samples only every few dozen
		// steps, which could let a tiny compile slip through complete.
		return nil, Stats{}, err
	}
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = start.Add(opts.Timeout)
	}
	clauses := make([]cnf.Clause, 0, len(f.Clauses))
	for _, cl := range f.Clauses {
		norm, taut := normalizeClause(cl)
		if taut {
			continue
		}
		if len(norm) == 0 {
			b := NewBuilder()
			return b.False(), Stats{Nodes: b.NumNodes(), Elapsed: time.Since(start)}, nil
		}
		clauses = append(clauses, norm)
	}
	var signature string
	var toCanon map[int]int
	if opts.Cache != nil {
		if opts.NoCanonicalCache {
			signature = formulaSignature(clauses, f, opts)
		} else {
			// Canonicalization honors the same budget as the compilation
			// proper, so a pathological labeling cannot outlive the
			// caller's deadline or ignore cancellation.
			budget := func() error {
				if err := ctx.Err(); err != nil {
					return err
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return ErrTimeout
				}
				return nil
			}
			var canonKey string
			var err error
			toCanon, canonKey, err = canonicalForm(clauses, func(v int) bool { return f.Aux[v] }, budget)
			if err != nil {
				return nil, Stats{Elapsed: time.Since(start)}, err
			}
			signature = canonicalSignature(canonKey, toCanon, f, opts)
		}
		// Single-flight loop: serve a hit, or become the leader and
		// compile, or wait for the in-flight leader and re-check. Waiters
		// of a failed leader contend to lead the next round, so duplicate
		// formulas compiled concurrently still pay for one compilation.
		for {
			if entry, ok := opts.Cache.get(signature); ok {
				if opts.MaxNodes > 0 && entry.nodes > opts.MaxNodes {
					// The node budget models memory exhaustion; comparing
					// against the original compilation's allocation count
					// makes a warm hit fail exactly where a cold compile
					// would, independent of cache warmth.
					return nil, Stats{Elapsed: time.Since(start)}, ErrNodeBudget
				}
				root, renamed, ok := rebindCached(entry, toCanon)
				if !ok {
					// The stored renaming does not line up with this
					// caller's (it can only happen after a hash-collision
					// canonicalization defect); compile fresh rather than
					// serve a miswired circuit.
					break
				}
				if renamed {
					opts.Cache.noteRenamed()
				}
				stats := Stats{Elapsed: time.Since(start)}
				stats.CrossCallHit = true
				stats.RenamedHit = renamed
				stats.Nodes = entry.nodes
				return root, stats, nil
			}
			leader, wait := opts.Cache.acquire(signature)
			if leader {
				defer opts.Cache.release(signature)
				break
			}
			wait()
		}
	}
	var root *Node
	var stats Stats
	var err error
	if orders := portfolioOrders(opts); len(orders) > 1 {
		root, stats, err = racePortfolio(ctx, clauses, opts, orders, start)
	} else {
		c := newCompiler(opts, start)
		root, err = c.compileRoot(ctx, clauses)
		stats = c.snapshot(start)
	}
	recordGlobalCounters(stats)
	if err != nil {
		return nil, stats, err
	}
	if opts.Cache != nil {
		opts.Cache.put(signature, root, stats.Nodes, invertRenaming(toCanon), f.OriginalVars(), opts.CacheOwner)
	}
	return root, stats, nil
}

// rebindCached maps a cache entry's circuit into the caller's variable
// space. Byte-identical entries (fromCanon == nil) are returned as-is;
// canonical entries are relabeled through canon unless the composite
// renaming is the identity. The final return is false when the two
// renamings are inconsistent — a sign the entry must not be served.
func rebindCached(entry *cacheEntry, toCanon map[int]int) (root *Node, renamed, ok bool) {
	if entry.fromCanon == nil {
		return entry.root, false, true
	}
	if len(entry.fromCanon) != len(toCanon) {
		return nil, false, false
	}
	fromCanon := invertRenaming(toCanon)
	m := make(map[int]int, len(entry.fromCanon))
	identity := true
	for canon, cachedVar := range entry.fromCanon {
		callerVar, exists := fromCanon[canon]
		if !exists {
			return nil, false, false
		}
		m[cachedVar] = callerVar
		if cachedVar != callerVar {
			identity = false
		}
	}
	if identity {
		return entry.root, false, true
	}
	return Relabel(NewBuilder(), entry.root, m), true, true
}

// invertRenaming flips a var→canon map into canon→var; nil stays nil.
func invertRenaming(toCanon map[int]int) map[int]int {
	if toCanon == nil {
		return nil
	}
	out := make(map[int]int, len(toCanon))
	for v, canon := range toCanon {
		out[canon] = v
	}
	return out
}

// normalizeClause sorts literals, removes duplicates, and detects
// tautologies (clauses containing both v and ¬v). Clauses that are already
// strictly sorted and duplicate-free — the common case for clauses that
// round-trip through the parser or arrive pre-normalized — are returned
// as-is, without copying.
func normalizeClause(cl cnf.Clause) (cnf.Clause, bool) {
	clean := true
	for i := 1; i < len(cl); i++ {
		prev, cur := cl[i-1], cl[i]
		pv, cv := prev.Var(), cur.Var()
		if pv < cv {
			continue
		}
		if pv == cv && prev == -cur {
			// Both polarities of one variable: a tautology no matter how
			// the rest of the clause is ordered.
			return nil, true
		}
		clean = false
		break
	}
	if clean {
		return cl, false
	}
	out := make(cnf.Clause, len(cl))
	copy(out, cl)
	sort.Slice(out, func(i, j int) bool {
		vi, vj := out[i].Var(), out[j].Var()
		if vi != vj {
			return vi < vj
		}
		return out[i] < out[j]
	})
	w := 0
	for i, l := range out {
		if i > 0 && out[w-1] == l {
			continue
		}
		if i > 0 && out[w-1] == -l {
			return nil, true
		}
		out[w] = l
		w++
	}
	return out[:w], false
}

func (c *compiler) checkBudget(ctx context.Context) error {
	if c.steps.Add(1)%64 == 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !c.deadline.IsZero() && time.Now().After(c.deadline) {
			return ErrTimeout
		}
	}
	if c.opts.MaxNodes > 0 && c.b.NumNodes() > c.opts.MaxNodes {
		return ErrNodeBudget
	}
	return nil
}

// parallelSpawnDepth caps how deep in the decision recursion component
// fan-out and speculative branching may still spawn goroutines: past it,
// subproblems are small enough that handoff overhead dominates, even when
// the clause-count floor passes.
const parallelSpawnDepth = 32

// compile compiles a set of normalized clauses (no duplicates or
// tautologies) into a d-DNNF node. depth counts Shannon decisions above this
// call and gates the parallel fan-out. counts, when non-nil, is owned by
// this call and reflects exactly the given clause set; it is maintained
// through propagation and conditioning for the dynamic branching heuristic.
func (c *compiler) compile(ctx context.Context, clauses []cnf.Clause, depth int, counts *occCounts) (*Node, error) {
	if err := c.checkBudget(ctx); err != nil {
		return nil, err
	}

	// Unit propagation.
	units, rest, conflict := propagate(clauses, counts)
	c.propagations.Add(int64(len(units)))
	if conflict {
		return c.b.False(), nil
	}
	unitNodes := make([]*Node, 0, len(units)+2)
	for _, l := range units {
		unitNodes = append(unitNodes, c.b.Lit(int(l)))
	}
	if len(rest) == 0 {
		return c.b.And(unitNodes...), nil
	}

	// Connected-component decomposition.
	comps := components(rest)
	if len(comps) > 1 {
		c.components.Add(1)
	}
	nodes, err := c.compileComponents(ctx, comps, depth, counts)
	if err != nil {
		return nil, err
	}
	return c.b.And(append(unitNodes, nodes...)...), nil
}

// componentCounts returns the occurrence counts to hand a component of a
// split. A single component inherits the caller's counts wholesale (every
// occurrence it tracks belongs to that component); a multi-way split
// rebuilds per-component counts — the split already paid a pass over each
// component's clauses, and fresh maps keep downstream branch clones small.
func componentCounts(comps [][]cnf.Clause, i int, counts *occCounts) *occCounts {
	if counts == nil {
		return nil
	}
	if len(comps) == 1 {
		return counts
	}
	return newOccCounts(comps[i])
}

// compileComponents compiles each component, fanning them out across the
// spawn budget when one is configured. Components are independent
// subproblems (disjoint variables), so any interleaving builds the same
// hash-consed nodes; results are assembled in component order either way.
func (c *compiler) compileComponents(ctx context.Context, comps [][]cnf.Clause, depth int, counts *occCounts) ([]*Node, error) {
	nodes := make([]*Node, len(comps))
	if c.limit == nil || len(comps) == 1 || depth > parallelSpawnDepth {
		for i, comp := range comps {
			n, err := c.compileComponent(ctx, comp, depth, componentCounts(comps, i, counts))
			if err != nil {
				return nil, err
			}
			nodes[i] = n
		}
		return nodes, nil
	}
	errs := make([]error, len(comps))
	var wg sync.WaitGroup
	for i := 1; i < len(comps); i++ {
		i := i
		cnt := componentCounts(comps, i, counts)
		if len(comps[i]) >= parallelComponentFloor &&
			c.limit.Go(&wg, func() { nodes[i], errs[i] = c.compileComponent(ctx, comps[i], depth, cnt) }) {
			continue
		}
		nodes[i], errs[i] = c.compileComponent(ctx, comps[i], depth, cnt)
	}
	// The current goroutine takes the first component itself — with no spare
	// tokens the whole loop degenerates to the sequential order shifted by
	// one, and with tokens it overlaps with the spawned workers.
	nodes[0], errs[0] = c.compileComponent(ctx, comps[0], depth, componentCounts(comps, 0, counts))
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return nodes, nil
}

// compileComponent compiles a single connected component, consulting the
// component cache. counts is owned by this call (branches clone or inherit
// it) and may be nil when the heuristic does not consume counts.
func (c *compiler) compileComponent(ctx context.Context, clauses []cnf.Clause, depth int, counts *occCounts) (*Node, error) {
	var key string
	if !c.opts.DisableCache {
		key = cacheKey(clauses)
		c.cacheMu.RLock()
		n := c.cache[key]
		c.cacheMu.RUnlock()
		if n != nil {
			c.cacheHits.Add(1)
			return n, nil
		}
		// Concurrent workers may both miss the same component and compile
		// it twice; the builder's hash-consing collapses the duplicates to
		// one node, so the only cost is the redundant search effort.
		c.cacheMisses.Add(1)
	}

	v := c.pickVar(clauses, counts)
	c.decisions.Add(1)

	// The hi branch gets a clone of the counts; the lo branch inherits the
	// original (it is compiled last on the sequential path and owns its
	// copy exclusively on the speculative one). Conditioning itself is pure
	// on the clause slices, so computing both cofactors up front changes
	// nothing about the sequential compiler's node allocation order.
	hiCounts := counts.clone()
	loCounts := counts
	hiClauses, hiEmpty := assign(clauses, cnf.Lit(v), hiCounts)
	loClauses, loEmpty := assign(clauses, cnf.Lit(-v), loCounts)

	var hi, lo *Node
	var err error
	speculated := false
	if c.opts.Speculate && c.limit != nil && depth <= parallelSpawnDepth &&
		!hiEmpty && !loEmpty && len(clauses) >= speculateClauseFloor {
		// Both cofactors carry real work: try to compile them concurrently.
		// An unsatisfiable-at-assignment cofactor never reaches this point,
		// so a speculated sibling is never trivially wasted.
		hi, lo, speculated, err = c.speculateBranches(ctx, hiClauses, loClauses, hiCounts, loCounts, depth)
		if err != nil {
			return nil, err
		}
	}
	if !speculated {
		if hiEmpty {
			hi = c.b.False()
		} else if hi, err = c.compile(ctx, hiClauses, depth+1, hiCounts); err != nil {
			return nil, err
		}
		if loEmpty {
			lo = c.b.False()
		} else if lo, err = c.compile(ctx, loClauses, depth+1, loCounts); err != nil {
			return nil, err
		}
	}

	n := c.b.Decision(v, hi, lo)
	if !c.opts.DisableCache {
		c.cacheMu.Lock()
		c.cache[key] = n
		c.cacheMu.Unlock()
	}
	return n, nil
}

// speculateBranches compiles the two cofactors of a Shannon decision
// concurrently when a spawn token is idle: the hi cofactor on a fresh
// goroutine, the lo cofactor on the calling one. The cofactors are variable-
// disjoint subproblems of the same component split by the decision variable,
// so they are independent by construction; node and step budgets are
// accounted on the compiler's shared atomics, which keeps MaxNodes semantics
// identical to the sequential order. A branch that fails cancels the branch
// context so its in-flight sibling aborts at its next budget check instead
// of running to completion. ok == false means no token was idle and nothing
// ran — the caller falls back to sequential compilation.
func (c *compiler) speculateBranches(ctx context.Context, hiClauses, loClauses []cnf.Clause, hiCounts, loCounts *occCounts, depth int) (hi, lo *Node, ok bool, err error) {
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	var hiErr, loErr error
	if !c.limit.Go(&wg, func() {
		if hi, hiErr = c.compile(bctx, hiClauses, depth+1, hiCounts); hiErr != nil {
			cancel()
		}
	}) {
		return nil, nil, false, nil
	}
	c.speculated.Add(1)
	if lo, loErr = c.compile(bctx, loClauses, depth+1, loCounts); loErr != nil {
		cancel()
	}
	wg.Wait()
	return hi, lo, true, c.reconcileBranchErrs(ctx, hiErr, loErr)
}

// reconcileBranchErrs folds the two speculative branch outcomes into the
// error the sequential compiler would have reported. The caller's own
// cancellation wins outright; otherwise a branch's context.Canceled can only
// be sibling-induced (the branch context is cancelled exactly when a branch
// fails), so the sibling's real budget error — ErrNodeBudget, ErrTimeout —
// is surfaced instead of the induced cancellation.
func (c *compiler) reconcileBranchErrs(ctx context.Context, hiErr, loErr error) error {
	if hiErr == nil && loErr == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if errors.Is(hiErr, context.Canceled) || errors.Is(loErr, context.Canceled) {
		c.specCancels.Add(1)
	}
	for _, err := range []error{hiErr, loErr} {
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	if hiErr != nil {
		return hiErr
	}
	return loErr
}

// pickVar selects the branching variable per the configured heuristic.
// counts, when non-nil, is the incrementally maintained occurrence count of
// every variable in the clause set (see occCounts); the most-frequent
// heuristic consumes it and falls back to recomputation without it.
func (c *compiler) pickVar(clauses []cnf.Clause, counts *occCounts) int {
	switch c.opts.Order {
	case OrderLexicographic:
		best := 0
		for _, cl := range clauses {
			for _, l := range cl {
				if v := l.Var(); best == 0 || v < best {
					best = v
				}
			}
		}
		return best
	case OrderJeroslowWang:
		return pickJeroslowWang(clauses)
	default:
		if counts != nil {
			return counts.pickMostFrequent(clauses)
		}
		return pickMostFrequentRecompute(clauses)
	}
}

// pickMostFrequentRecompute is the from-scratch most-frequent heuristic: a
// full occurrence-count rebuild per decision. Kept as the counts == nil
// fallback and as the oracle the incremental occCounts implementation is
// agreement-tested against.
func pickMostFrequentRecompute(clauses []cnf.Clause) int {
	counts := make(map[int]int)
	for _, cl := range clauses {
		for _, l := range cl {
			counts[l.Var()]++
		}
	}
	best, bestCount := 0, -1
	for v, n := range counts {
		if n > bestCount || (n == bestCount && v < best) {
			best, bestCount = v, n
		}
	}
	return best
}

// pickJeroslowWang scores every variable by the two-sided Jeroslow–Wang
// measure Σ 2^-|cl| over the clauses mentioning it and returns the maximum,
// ties broken by the smaller variable. Scores are sums of dyadic rationals
// accumulated in deterministic clause order, so the choice is reproducible.
func pickJeroslowWang(clauses []cnf.Clause) int {
	scores := make(map[int]float64)
	for _, cl := range clauses {
		w := 1.0
		for i := 0; i < len(cl) && i < 62; i++ {
			w /= 2
		}
		for _, l := range cl {
			scores[l.Var()] += w
		}
	}
	best, bestScore := 0, -1.0
	for v, s := range scores {
		if s > bestScore || (s == bestScore && v < best) {
			best, bestScore = v, s
		}
	}
	return best
}

// propagate performs exhaustive unit propagation. It returns the implied
// literals, the residual clauses (each with ≥2 literals, mentioning no
// assigned variable), and whether a conflict was derived. counts, when
// non-nil, is maintained to reflect the residual clause set (its contents
// are unspecified when a conflict is reported — the branch is dead).
func propagate(clauses []cnf.Clause, counts *occCounts) (units []cnf.Lit, rest []cnf.Clause, conflict bool) {
	assignment := make(map[int]bool)
	work := clauses
	for {
		var pending []cnf.Lit
		for _, cl := range work {
			if len(cl) == 1 {
				pending = append(pending, cl[0])
			}
		}
		if len(pending) == 0 {
			break
		}
		for _, l := range pending {
			v := l.Var()
			want := l.Positive()
			if have, ok := assignment[v]; ok {
				if have != want {
					return nil, nil, true
				}
				continue
			}
			assignment[v] = want
			units = append(units, l)
		}
		next := make([]cnf.Clause, 0, len(work))
		for _, cl := range work {
			reduced, sat, empty := reduce(cl, assignment, counts)
			if sat {
				continue
			}
			if empty {
				return nil, nil, true
			}
			next = append(next, reduced)
		}
		work = next
	}
	return units, work, false
}

// reduce simplifies a clause under a partial assignment, maintaining counts:
// a satisfied clause leaves the residual set wholesale, a falsified literal
// is struck from its clause.
func reduce(cl cnf.Clause, assignment map[int]bool, counts *occCounts) (out cnf.Clause, sat, empty bool) {
	keep := cl[:0:0]
	for _, l := range cl {
		val, ok := assignment[l.Var()]
		if !ok {
			keep = append(keep, l)
			continue
		}
		if val == l.Positive() {
			counts.removeClause(cl)
			return nil, true, false
		}
	}
	if counts != nil && len(keep) < len(cl) {
		for _, l := range cl {
			if _, ok := assignment[l.Var()]; ok {
				counts.removeLit(l.Var())
			}
		}
	}
	if len(keep) == 0 {
		return nil, false, true
	}
	return keep, false, false
}

// assign simplifies the clauses under a single literal assignment. It
// returns the residual clauses and whether an empty clause was derived.
// counts, when non-nil, is maintained to reflect the residual (unspecified
// after an empty-clause derivation — the branch is dead).
func assign(clauses []cnf.Clause, l cnf.Lit, counts *occCounts) ([]cnf.Clause, bool) {
	out := make([]cnf.Clause, 0, len(clauses))
	for _, cl := range clauses {
		sat := false
		removed := false
		for _, m := range cl {
			if m == l {
				sat = true
				break
			}
			if m == -l {
				removed = true
			}
		}
		if sat {
			counts.removeClause(cl)
			continue
		}
		if !removed {
			out = append(out, cl)
			continue
		}
		counts.removeLit(l.Var())
		keep := make(cnf.Clause, 0, len(cl)-1)
		for _, m := range cl {
			if m != -l {
				keep = append(keep, m)
			}
		}
		if len(keep) == 0 {
			return nil, true
		}
		out = append(out, keep)
	}
	return out, false
}

// components partitions clauses into connected components of the
// clause-variable incidence graph, using union-find over variables.
func components(clauses []cnf.Clause) [][]cnf.Clause {
	parent := make(map[int]int)
	var find func(int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, cl := range clauses {
		for i := 1; i < len(cl); i++ {
			union(cl[0].Var(), cl[i].Var())
		}
	}
	groups := make(map[int][]cnf.Clause)
	var roots []int
	for _, cl := range clauses {
		r := find(cl[0].Var())
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], cl)
	}
	sort.Ints(roots)
	out := make([][]cnf.Clause, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// TopLevelComponents reports how many connected components the formula's
// normalized clause set splits into before any propagation — the number of
// independent subproblems the parallel compiler can fan out immediately.
func TopLevelComponents(f *cnf.Formula) int {
	clauses := make([]cnf.Clause, 0, len(f.Clauses))
	for _, cl := range f.Clauses {
		norm, taut := normalizeClause(cl)
		if taut || len(norm) == 0 {
			continue
		}
		clauses = append(clauses, norm)
	}
	return len(components(clauses))
}

// cacheKey renders a clause set canonically. Clauses are assumed
// literal-sorted (normalizeClause sorts them and all simplifications
// preserve relative order).
func cacheKey(clauses []cnf.Clause) string {
	strs := make([]string, len(clauses))
	for i, cl := range clauses {
		var sb strings.Builder
		for _, l := range cl {
			fmt.Fprintf(&sb, "%d ", int(l))
		}
		strs[i] = sb.String()
	}
	sort.Strings(strs)
	return strings.Join(strs, ";")
}
