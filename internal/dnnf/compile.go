package dnnf

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cnf"
	"repro/internal/parallel"
)

// Compilation errors. A compilation that exceeds its time or size budget
// fails with one of these; the hybrid strategy of Section 6.3 falls back to
// CNF Proxy on such failures, mirroring the paper's out-of-memory and
// timeout failures of c2d.
var (
	ErrTimeout    = errors.New("dnnf: compilation timed out")
	ErrNodeBudget = errors.New("dnnf: compilation exceeded node budget")
)

// VarOrder selects the branching-variable heuristic.
type VarOrder uint8

// Branching heuristics.
const (
	// OrderMostFrequent branches on the variable occurring in the most
	// active clauses (a dynamic degree heuristic, the default).
	OrderMostFrequent VarOrder = iota
	// OrderLexicographic branches on the smallest-numbered variable; kept
	// as an ablation baseline.
	OrderLexicographic
)

// Options configures compilation.
type Options struct {
	// Timeout bounds wall-clock compilation time; zero means no limit.
	Timeout time.Duration
	// MaxNodes bounds the number of d-DNNF nodes allocated; zero means no
	// limit. This plays the role of c2d running out of memory.
	MaxNodes int
	// DisableCache turns off component caching (ablation).
	DisableCache bool
	// Order selects the branching heuristic.
	Order VarOrder
	// Cache, when non-nil, is a cross-call LRU consulted before compiling
	// and updated after: repeated compilations of the same formula return
	// the previously compiled circuit. Safe for concurrent use.
	Cache *CompileCache
	// Workers bounds intra-compilation parallelism: independent connected
	// components of the residual clause set fan out across up to Workers
	// goroutines (≤ 0 = GOMAXPROCS). Workers == 1 is the fully sequential
	// compiler and produces the exact circuit (node IDs included) the
	// pre-parallel implementation did; higher counts produce semantically
	// identical circuits whose node numbering depends on scheduling.
	Workers int
	// NoCanonicalCache keys the cross-call Cache by the byte-identical
	// formula signature instead of the rename-invariant canonical form
	// (ablation). With canonical keying — the default — compilations of
	// formulas that are equal up to a variable renaming share one cache
	// entry; the cached circuit is relabeled to the caller's variables on
	// each hit.
	NoCanonicalCache bool
	// CacheOwner tags the Cache entry this compilation populates with the
	// identity of the fact-ID universe its variables come from (the
	// database ID, for lineage compilations; 0 = untagged). It scopes
	// CompileCache.Invalidate — fact IDs collide across databases — and
	// never affects lookups.
	CacheOwner uint64
}

// Stats reports compilation effort.
type Stats struct {
	Decisions    int
	Propagations int
	CacheHits    int
	CacheMisses  int
	Components   int
	Nodes        int
	Elapsed      time.Duration
	// CrossCallHit reports that the whole compilation was answered from a
	// cross-call CompileCache, in which case the effort counters are zero.
	CrossCallHit bool
	// RenamedHit reports that the cross-call hit was served under the
	// canonical key for a formula that differed from the cached one by a
	// variable renaming, so the circuit was relabeled for this caller.
	RenamedHit bool
}

func (s Stats) String() string {
	return fmt.Sprintf("decisions=%d props=%d cacheHits=%d cacheMisses=%d components=%d nodes=%d crossHit=%v renamedHit=%v elapsed=%v",
		s.Decisions, s.Propagations, s.CacheHits, s.CacheMisses, s.Components, s.Nodes, s.CrossCallHit, s.RenamedHit, s.Elapsed)
}

// parallelComponentFloor is the size cutoff for fanning a component out to
// another goroutine: components with fewer clauses compile in about the time
// a goroutine handoff costs, so they stay on the current worker.
const parallelComponentFloor = 8

// compiler carries the mutable compilation state. All fields written during
// the recursion are either atomic or mutex-guarded, because the component
// fan-out may run subproblems on several goroutines at once.
type compiler struct {
	ctx      context.Context
	b        *Builder
	opts     Options
	deadline time.Time
	// limit is the spawn budget for component fan-out; nil means the fully
	// sequential compiler.
	limit *parallel.Limit

	cacheMu sync.RWMutex
	cache   map[string]*Node

	decisions    atomic.Int64
	propagations atomic.Int64
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	components   atomic.Int64
	steps        atomic.Int64
}

// snapshot folds the atomic counters into a Stats value.
func (c *compiler) snapshot(start time.Time) Stats {
	return Stats{
		Decisions:    int(c.decisions.Load()),
		Propagations: int(c.propagations.Load()),
		CacheHits:    int(c.cacheHits.Load()),
		CacheMisses:  int(c.cacheMisses.Load()),
		Components:   int(c.components.Load()),
		Nodes:        c.b.NumNodes(),
		Elapsed:      time.Since(start),
	}
}

// Compile translates a CNF formula into an equivalent d-DNNF using
// exhaustive DPLL with unit propagation, connected-component decomposition
// (yielding decomposable ∧-gates), Shannon decisions (yielding deterministic
// ∨-gates), and component caching — the classic construction behind c2d and
// dsharp. The context carries external cancellation (distinct from
// Options.Timeout, which is this compilation's own budget and yields
// ErrTimeout); ctx errors are returned as-is.
func Compile(ctx context.Context, f *cnf.Formula, opts Options) (*Node, Stats, error) {
	start := time.Now()
	c := &compiler{
		ctx:   ctx,
		b:     NewBuilder(),
		opts:  opts,
		cache: make(map[string]*Node),
		limit: parallel.NewLimit(parallel.Workers(opts.Workers) - 1),
	}
	if opts.Timeout > 0 {
		c.deadline = start.Add(opts.Timeout)
	}
	clauses := make([]cnf.Clause, 0, len(f.Clauses))
	for _, cl := range f.Clauses {
		norm, taut := normalizeClause(cl)
		if taut {
			continue
		}
		if len(norm) == 0 {
			return c.b.False(), c.snapshot(start), nil
		}
		clauses = append(clauses, norm)
	}
	var signature string
	var toCanon map[int]int
	if opts.Cache != nil {
		if opts.NoCanonicalCache {
			signature = formulaSignature(clauses, f, opts)
		} else {
			// Canonicalization honors the same budget as the compilation
			// proper, so a pathological labeling cannot outlive the
			// caller's deadline or ignore cancellation.
			budget := func() error {
				if err := ctx.Err(); err != nil {
					return err
				}
				if !c.deadline.IsZero() && time.Now().After(c.deadline) {
					return ErrTimeout
				}
				return nil
			}
			var canonKey string
			var err error
			toCanon, canonKey, err = canonicalForm(clauses, func(v int) bool { return f.Aux[v] }, budget)
			if err != nil {
				return nil, c.snapshot(start), err
			}
			signature = canonicalSignature(canonKey, toCanon, f, opts)
		}
		// Single-flight loop: serve a hit, or become the leader and
		// compile, or wait for the in-flight leader and re-check. Waiters
		// of a failed leader contend to lead the next round, so duplicate
		// formulas compiled concurrently still pay for one compilation.
		for {
			if entry, ok := opts.Cache.get(signature); ok {
				if opts.MaxNodes > 0 && entry.nodes > opts.MaxNodes {
					// The node budget models memory exhaustion; comparing
					// against the original compilation's allocation count
					// makes a warm hit fail exactly where a cold compile
					// would, independent of cache warmth.
					return nil, c.snapshot(start), ErrNodeBudget
				}
				root, renamed, ok := rebindCached(entry, toCanon)
				if !ok {
					// The stored renaming does not line up with this
					// caller's (it can only happen after a hash-collision
					// canonicalization defect); compile fresh rather than
					// serve a miswired circuit.
					break
				}
				if renamed {
					opts.Cache.noteRenamed()
				}
				stats := c.snapshot(start)
				stats.CrossCallHit = true
				stats.RenamedHit = renamed
				stats.Nodes = entry.nodes
				return root, stats, nil
			}
			leader, wait := opts.Cache.acquire(signature)
			if leader {
				defer opts.Cache.release(signature)
				break
			}
			wait()
		}
	}
	root, err := c.compile(clauses, 0)
	stats := c.snapshot(start)
	if err != nil {
		return nil, stats, err
	}
	if opts.Cache != nil {
		opts.Cache.put(signature, root, stats.Nodes, invertRenaming(toCanon), f.OriginalVars(), opts.CacheOwner)
	}
	return root, stats, nil
}

// rebindCached maps a cache entry's circuit into the caller's variable
// space. Byte-identical entries (fromCanon == nil) are returned as-is;
// canonical entries are relabeled through canon unless the composite
// renaming is the identity. The final return is false when the two
// renamings are inconsistent — a sign the entry must not be served.
func rebindCached(entry *cacheEntry, toCanon map[int]int) (root *Node, renamed, ok bool) {
	if entry.fromCanon == nil {
		return entry.root, false, true
	}
	if len(entry.fromCanon) != len(toCanon) {
		return nil, false, false
	}
	fromCanon := invertRenaming(toCanon)
	m := make(map[int]int, len(entry.fromCanon))
	identity := true
	for canon, cachedVar := range entry.fromCanon {
		callerVar, exists := fromCanon[canon]
		if !exists {
			return nil, false, false
		}
		m[cachedVar] = callerVar
		if cachedVar != callerVar {
			identity = false
		}
	}
	if identity {
		return entry.root, false, true
	}
	return Relabel(NewBuilder(), entry.root, m), true, true
}

// invertRenaming flips a var→canon map into canon→var; nil stays nil.
func invertRenaming(toCanon map[int]int) map[int]int {
	if toCanon == nil {
		return nil
	}
	out := make(map[int]int, len(toCanon))
	for v, canon := range toCanon {
		out[canon] = v
	}
	return out
}

// normalizeClause sorts literals, removes duplicates, and detects
// tautologies (clauses containing both v and ¬v). Clauses that are already
// strictly sorted and duplicate-free — the common case for clauses that
// round-trip through the parser or arrive pre-normalized — are returned
// as-is, without copying.
func normalizeClause(cl cnf.Clause) (cnf.Clause, bool) {
	clean := true
	for i := 1; i < len(cl); i++ {
		prev, cur := cl[i-1], cl[i]
		pv, cv := prev.Var(), cur.Var()
		if pv < cv {
			continue
		}
		if pv == cv && prev == -cur {
			// Both polarities of one variable: a tautology no matter how
			// the rest of the clause is ordered.
			return nil, true
		}
		clean = false
		break
	}
	if clean {
		return cl, false
	}
	out := make(cnf.Clause, len(cl))
	copy(out, cl)
	sort.Slice(out, func(i, j int) bool {
		vi, vj := out[i].Var(), out[j].Var()
		if vi != vj {
			return vi < vj
		}
		return out[i] < out[j]
	})
	w := 0
	for i, l := range out {
		if i > 0 && out[w-1] == l {
			continue
		}
		if i > 0 && out[w-1] == -l {
			return nil, true
		}
		out[w] = l
		w++
	}
	return out[:w], false
}

func (c *compiler) checkBudget() error {
	if c.steps.Add(1)%64 == 0 {
		if err := c.ctx.Err(); err != nil {
			return err
		}
		if !c.deadline.IsZero() && time.Now().After(c.deadline) {
			return ErrTimeout
		}
	}
	if c.opts.MaxNodes > 0 && c.b.NumNodes() > c.opts.MaxNodes {
		return ErrNodeBudget
	}
	return nil
}

// parallelSpawnDepth caps how deep in the decision recursion component
// fan-out may still spawn goroutines: past it, subproblems are small enough
// that handoff overhead dominates, even when the clause-count floor passes.
const parallelSpawnDepth = 32

// compile compiles a set of normalized clauses (no duplicates or
// tautologies) into a d-DNNF node. depth counts Shannon decisions above this
// call and gates the parallel fan-out.
func (c *compiler) compile(clauses []cnf.Clause, depth int) (*Node, error) {
	if err := c.checkBudget(); err != nil {
		return nil, err
	}

	// Unit propagation.
	units, rest, conflict := propagate(clauses)
	c.propagations.Add(int64(len(units)))
	if conflict {
		return c.b.False(), nil
	}
	unitNodes := make([]*Node, 0, len(units)+2)
	for _, l := range units {
		unitNodes = append(unitNodes, c.b.Lit(int(l)))
	}
	if len(rest) == 0 {
		return c.b.And(unitNodes...), nil
	}

	// Connected-component decomposition.
	comps := components(rest)
	if len(comps) > 1 {
		c.components.Add(1)
	}
	nodes, err := c.compileComponents(comps, depth)
	if err != nil {
		return nil, err
	}
	return c.b.And(append(unitNodes, nodes...)...), nil
}

// compileComponents compiles each component, fanning them out across the
// spawn budget when one is configured. Components are independent
// subproblems (disjoint variables), so any interleaving builds the same
// hash-consed nodes; results are assembled in component order either way.
func (c *compiler) compileComponents(comps [][]cnf.Clause, depth int) ([]*Node, error) {
	nodes := make([]*Node, len(comps))
	if c.limit == nil || len(comps) == 1 || depth > parallelSpawnDepth {
		for i, comp := range comps {
			n, err := c.compileComponent(comp, depth)
			if err != nil {
				return nil, err
			}
			nodes[i] = n
		}
		return nodes, nil
	}
	errs := make([]error, len(comps))
	var wg sync.WaitGroup
	for i := 1; i < len(comps); i++ {
		i := i
		if len(comps[i]) >= parallelComponentFloor &&
			c.limit.Go(&wg, func() { nodes[i], errs[i] = c.compileComponent(comps[i], depth) }) {
			continue
		}
		nodes[i], errs[i] = c.compileComponent(comps[i], depth)
	}
	// The current goroutine takes the first component itself — with no spare
	// tokens the whole loop degenerates to the sequential order shifted by
	// one, and with tokens it overlaps with the spawned workers.
	nodes[0], errs[0] = c.compileComponent(comps[0], depth)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return nodes, nil
}

// compileComponent compiles a single connected component, consulting the
// component cache.
func (c *compiler) compileComponent(clauses []cnf.Clause, depth int) (*Node, error) {
	var key string
	if !c.opts.DisableCache {
		key = cacheKey(clauses)
		c.cacheMu.RLock()
		n := c.cache[key]
		c.cacheMu.RUnlock()
		if n != nil {
			c.cacheHits.Add(1)
			return n, nil
		}
		// Concurrent workers may both miss the same component and compile
		// it twice; the builder's hash-consing collapses the duplicates to
		// one node, so the only cost is the redundant search effort.
		c.cacheMisses.Add(1)
	}

	v := c.pickVar(clauses)
	c.decisions.Add(1)

	hiClauses, hiEmpty := assign(clauses, cnf.Lit(v))
	var hi *Node
	var err error
	if hiEmpty {
		hi = c.b.False()
	} else if hi, err = c.compile(hiClauses, depth+1); err != nil {
		return nil, err
	}

	loClauses, loEmpty := assign(clauses, cnf.Lit(-v))
	var lo *Node
	if loEmpty {
		lo = c.b.False()
	} else if lo, err = c.compile(loClauses, depth+1); err != nil {
		return nil, err
	}

	n := c.b.Decision(v, hi, lo)
	if !c.opts.DisableCache {
		c.cacheMu.Lock()
		c.cache[key] = n
		c.cacheMu.Unlock()
	}
	return n, nil
}

// pickVar selects the branching variable per the configured heuristic.
func (c *compiler) pickVar(clauses []cnf.Clause) int {
	switch c.opts.Order {
	case OrderLexicographic:
		best := 0
		for _, cl := range clauses {
			for _, l := range cl {
				if v := l.Var(); best == 0 || v < best {
					best = v
				}
			}
		}
		return best
	default:
		counts := make(map[int]int)
		for _, cl := range clauses {
			for _, l := range cl {
				counts[l.Var()]++
			}
		}
		best, bestCount := 0, -1
		for v, n := range counts {
			if n > bestCount || (n == bestCount && v < best) {
				best, bestCount = v, n
			}
		}
		return best
	}
}

// propagate performs exhaustive unit propagation. It returns the implied
// literals, the residual clauses (each with ≥2 literals, mentioning no
// assigned variable), and whether a conflict was derived.
func propagate(clauses []cnf.Clause) (units []cnf.Lit, rest []cnf.Clause, conflict bool) {
	assignment := make(map[int]bool)
	work := clauses
	for {
		var pending []cnf.Lit
		for _, cl := range work {
			if len(cl) == 1 {
				pending = append(pending, cl[0])
			}
		}
		if len(pending) == 0 {
			break
		}
		for _, l := range pending {
			v := l.Var()
			want := l.Positive()
			if have, ok := assignment[v]; ok {
				if have != want {
					return nil, nil, true
				}
				continue
			}
			assignment[v] = want
			units = append(units, l)
		}
		next := make([]cnf.Clause, 0, len(work))
		for _, cl := range work {
			reduced, sat, empty := reduce(cl, assignment)
			if sat {
				continue
			}
			if empty {
				return nil, nil, true
			}
			next = append(next, reduced)
		}
		work = next
	}
	return units, work, false
}

// reduce simplifies a clause under a partial assignment.
func reduce(cl cnf.Clause, assignment map[int]bool) (out cnf.Clause, sat, empty bool) {
	keep := cl[:0:0]
	for _, l := range cl {
		val, ok := assignment[l.Var()]
		if !ok {
			keep = append(keep, l)
			continue
		}
		if val == l.Positive() {
			return nil, true, false
		}
	}
	if len(keep) == 0 {
		return nil, false, true
	}
	return keep, false, false
}

// assign simplifies the clauses under a single literal assignment. It
// returns the residual clauses and whether an empty clause was derived.
func assign(clauses []cnf.Clause, l cnf.Lit) ([]cnf.Clause, bool) {
	out := make([]cnf.Clause, 0, len(clauses))
	for _, cl := range clauses {
		sat := false
		removed := false
		for _, m := range cl {
			if m == l {
				sat = true
				break
			}
			if m == -l {
				removed = true
			}
		}
		if sat {
			continue
		}
		if !removed {
			out = append(out, cl)
			continue
		}
		keep := make(cnf.Clause, 0, len(cl)-1)
		for _, m := range cl {
			if m != -l {
				keep = append(keep, m)
			}
		}
		if len(keep) == 0 {
			return nil, true
		}
		out = append(out, keep)
	}
	return out, false
}

// components partitions clauses into connected components of the
// clause-variable incidence graph, using union-find over variables.
func components(clauses []cnf.Clause) [][]cnf.Clause {
	parent := make(map[int]int)
	var find func(int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, cl := range clauses {
		for i := 1; i < len(cl); i++ {
			union(cl[0].Var(), cl[i].Var())
		}
	}
	groups := make(map[int][]cnf.Clause)
	var roots []int
	for _, cl := range clauses {
		r := find(cl[0].Var())
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], cl)
	}
	sort.Ints(roots)
	out := make([][]cnf.Clause, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// TopLevelComponents reports how many connected components the formula's
// normalized clause set splits into before any propagation — the number of
// independent subproblems the parallel compiler can fan out immediately.
func TopLevelComponents(f *cnf.Formula) int {
	clauses := make([]cnf.Clause, 0, len(f.Clauses))
	for _, cl := range f.Clauses {
		norm, taut := normalizeClause(cl)
		if taut || len(norm) == 0 {
			continue
		}
		clauses = append(clauses, norm)
	}
	return len(components(clauses))
}

// cacheKey renders a clause set canonically. Clauses are assumed
// literal-sorted (normalizeClause sorts them and all simplifications
// preserve relative order).
func cacheKey(clauses []cnf.Clause) string {
	strs := make([]string, len(clauses))
	for i, cl := range clauses {
		var sb strings.Builder
		for _, l := range cl {
			fmt.Fprintf(&sb, "%d ", int(l))
		}
		strs[i] = sb.String()
	}
	sort.Strings(strs)
	return strings.Join(strs, ";")
}
