// Package dnnf implements deterministic decomposable negation normal form
// (d-DNNF) circuits, a knowledge compiler from CNF to d-DNNF (the repo's
// substitute for the c2d compiler used in the paper), model counting, and
// the Tseytin auxiliary-variable elimination of Lemma 4.6.
//
// A d-DNNF is a Boolean circuit whose leaves are literals or constants, in
// which every ∧-gate is decomposable (its children mention disjoint
// variables) and every ∨-gate is deterministic (no assignment satisfies two
// of its children). These two properties make weighted model counting — and
// the paper's #SAT_k dynamic program — linear in the circuit size.
package dnnf

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind enumerates d-DNNF node kinds.
type Kind uint8

// Node kinds.
const (
	KindLit Kind = iota
	KindTrue
	KindFalse
	KindAnd
	KindOr
)

// Node is a node in a d-DNNF DAG. Nodes are immutable and shared; construct
// them through a Builder.
type Node struct {
	Kind     Kind
	Lit      int // for KindLit: +v or -v
	Children []*Node
	// Decision is the Shannon decision variable for ∨-nodes produced by the
	// compiler (0 when unknown). It witnesses determinism: one child implies
	// the variable, the other its negation.
	Decision int

	id   int
	vars []int // sorted variable support, computed at construction
}

// ID returns a builder-unique node identifier.
func (n *Node) ID() int { return n.id }

// Vars returns the sorted variable support of the node. The slice is shared;
// callers must not modify it.
func (n *Node) Vars() []int { return n.vars }

// numShards is the unique-table shard count of a Builder. Sharding keeps the
// hash-consing critical sections short when the parallel compiler's workers
// intern nodes concurrently; 16 shards comfortably cover the worker counts
// the compiler runs with.
const numShards = 16

// nodeShard is one mutex-guarded slice of a unique-table.
type nodeShard struct {
	mu sync.RWMutex
	m  map[string]*Node
}

// intern returns the node stored under key, constructing it with mk (under
// the shard lock, so exactly one node per key is ever published) on a miss.
func (s *nodeShard) intern(key string, mk func() *Node) *Node {
	s.mu.RLock()
	n := s.m[key]
	s.mu.RUnlock()
	if n != nil {
		return n
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.m[key]; n != nil {
		return n
	}
	n = mk()
	s.m[key] = n
	return n
}

// shardIndex hashes an intern key to a shard (FNV-1a; constants shared with
// the canonicalization hashing in canon.go).
func shardIndex(key string) int {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return int(h % numShards)
}

// Builder hash-conses d-DNNF nodes. It is safe for concurrent use: the
// parallel compiler's workers intern nodes into the same builder, so
// structurally equal subcircuits built on different goroutines still collapse
// to one node. Node IDs are allocated atomically; under a single goroutine
// (the sequential compiler) the allocation order — and therefore the entire
// built circuit — is identical to the pre-concurrent builder's.
type Builder struct {
	nextID atomic.Int64
	trueN  *Node
	falseN *Node
	litMu  sync.RWMutex
	lits   map[int]*Node
	ands   [numShards]nodeShard
	ors    [numShards]nodeShard
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	b := &Builder{lits: make(map[int]*Node)}
	for i := range b.ands {
		b.ands[i].m = make(map[string]*Node)
		b.ors[i].m = make(map[string]*Node)
	}
	b.trueN = &Node{Kind: KindTrue, id: b.fresh()}
	b.falseN = &Node{Kind: KindFalse, id: b.fresh()}
	return b
}

func (b *Builder) fresh() int {
	return int(b.nextID.Add(1))
}

// NumNodes returns the number of nodes allocated so far, used for compile
// budgets.
func (b *Builder) NumNodes() int { return int(b.nextID.Load()) }

// True returns the constant-true node.
func (b *Builder) True() *Node { return b.trueN }

// False returns the constant-false node.
func (b *Builder) False() *Node { return b.falseN }

// Lit returns the leaf for literal l (+v or -v).
func (b *Builder) Lit(l int) *Node {
	if l == 0 {
		panic("dnnf: zero literal")
	}
	b.litMu.RLock()
	n := b.lits[l]
	b.litMu.RUnlock()
	if n != nil {
		return n
	}
	v := l
	if v < 0 {
		v = -v
	}
	b.litMu.Lock()
	defer b.litMu.Unlock()
	if n := b.lits[l]; n != nil {
		return n
	}
	n = &Node{Kind: KindLit, Lit: l, id: b.fresh(), vars: []int{v}}
	b.lits[l] = n
	return n
}

// mergeVars returns the sorted union of children variable supports. It
// panics if requireDisjoint is set and two children share a variable: such a
// conjunction would not be decomposable.
func mergeVars(children []*Node, requireDisjoint bool) []int {
	total := 0
	for _, c := range children {
		total += len(c.vars)
	}
	out := make([]int, 0, total)
	for _, c := range children {
		out = append(out, c.vars...)
	}
	sort.Ints(out)
	w := 0
	for i, v := range out {
		if i > 0 && out[w-1] == v {
			if requireDisjoint {
				panic(fmt.Sprintf("dnnf: non-decomposable ∧ over variable %d", v))
			}
			continue
		}
		out[w] = v
		w++
	}
	return out[:w]
}

func childKey(children []*Node) string {
	var sb strings.Builder
	for _, c := range children {
		fmt.Fprintf(&sb, "%d,", c.id)
	}
	return sb.String()
}

// And returns the decomposable conjunction of the children. Constant
// children are folded; it panics if the children's supports overlap.
func (b *Builder) And(children ...*Node) *Node {
	kept := make([]*Node, 0, len(children))
	for _, c := range children {
		switch c.Kind {
		case KindTrue:
			continue
		case KindFalse:
			return b.falseN
		}
		kept = append(kept, c)
	}
	switch len(kept) {
	case 0:
		return b.trueN
	case 1:
		return kept[0]
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].id < kept[j].id })
	key := childKey(kept)
	return b.ands[shardIndex(key)].intern(key, func() *Node {
		return &Node{Kind: KindAnd, Children: kept, id: b.fresh(), vars: mergeVars(kept, true)}
	})
}

// Decision returns the deterministic disjunction (v ∧ hi) ∨ (¬v ∧ lo) with
// the decision variable recorded, folding constant branches.
func (b *Builder) Decision(v int, hi, lo *Node) *Node {
	hiBranch := b.And(b.Lit(v), hi)
	loBranch := b.And(b.Lit(-v), lo)
	return b.orSlice(v, []*Node{hiBranch, loBranch})
}

// Or returns a disjunction asserted deterministic by the caller. Use
// Decision when the children are Shannon branches of a variable.
func (b *Builder) Or(children ...*Node) *Node {
	return b.orSlice(0, children)
}

func (b *Builder) orSlice(decision int, children []*Node) *Node {
	kept := make([]*Node, 0, len(children))
	for _, c := range children {
		switch c.Kind {
		case KindFalse:
			continue
		case KindTrue:
			// A true child makes the disjunction true; determinism then
			// forces all siblings to be false, so folding is sound.
			return b.trueN
		}
		kept = append(kept, c)
	}
	switch len(kept) {
	case 0:
		return b.falseN
	case 1:
		return kept[0]
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].id < kept[j].id })
	key := fmt.Sprintf("%d|%s", decision, childKey(kept))
	return b.ors[shardIndex(key)].intern(key, func() *Node {
		return &Node{Kind: KindOr, Children: kept, Decision: decision, id: b.fresh(),
			vars: mergeVars(kept, false)}
	})
}

// Size returns the number of distinct nodes reachable from n.
func Size(n *Node) int {
	count := 0
	Visit(n, func(*Node) { count++ })
	return count
}

// NumEdges returns the number of child edges reachable from n.
func NumEdges(n *Node) int {
	edges := 0
	Visit(n, func(m *Node) { edges += len(m.Children) })
	return edges
}

// Visit walks the DAG rooted at n, children before parents, visiting each
// node exactly once.
func Visit(n *Node, f func(*Node)) {
	seen := make(map[int]bool)
	var rec func(*Node)
	rec = func(m *Node) {
		if seen[m.id] {
			return
		}
		seen[m.id] = true
		for _, c := range m.Children {
			rec(c)
		}
		f(m)
	}
	rec(n)
}

// Eval evaluates the node under the assignment (absent variables are false).
func Eval(n *Node, assign map[int]bool) bool {
	memo := make(map[int]bool)
	var rec func(*Node) bool
	rec = func(m *Node) bool {
		if v, ok := memo[m.id]; ok {
			return v
		}
		var v bool
		switch m.Kind {
		case KindTrue:
			v = true
		case KindFalse:
			v = false
		case KindLit:
			if m.Lit > 0 {
				v = assign[m.Lit]
			} else {
				v = !assign[-m.Lit]
			}
		case KindAnd:
			v = true
			for _, c := range m.Children {
				if !rec(c) {
					v = false
					break
				}
			}
		case KindOr:
			for _, c := range m.Children {
				if rec(c) {
					v = true
					break
				}
			}
		}
		memo[m.id] = v
		return v
	}
	return rec(n)
}

// Condition returns the node with every variable in assign fixed to the
// given constant, rebuilt in builder b. Conditioning preserves determinism
// and decomposability.
func Condition(b *Builder, n *Node, assign map[int]bool) *Node {
	memo := make(map[int]*Node)
	var rec func(*Node) *Node
	rec = func(m *Node) *Node {
		if r, ok := memo[m.id]; ok {
			return r
		}
		var r *Node
		switch m.Kind {
		case KindTrue:
			r = b.True()
		case KindFalse:
			r = b.False()
		case KindLit:
			v := m.Lit
			neg := false
			if v < 0 {
				v, neg = -v, true
			}
			if val, ok := assign[v]; ok {
				if val != neg {
					r = b.True()
				} else {
					r = b.False()
				}
			} else {
				r = b.Lit(m.Lit)
			}
		case KindAnd:
			cs := make([]*Node, len(m.Children))
			for i, c := range m.Children {
				cs[i] = rec(c)
			}
			r = b.And(cs...)
		case KindOr:
			cs := make([]*Node, len(m.Children))
			for i, c := range m.Children {
				cs[i] = rec(c)
			}
			r = b.orSlice(m.Decision, cs)
		}
		memo[m.id] = r
		return r
	}
	return rec(n)
}

// CountModels returns the number of satisfying assignments of n over the
// given variable universe, which must contain Vars(n). It is exact
// (math/big) and linear in the circuit size.
func CountModels(n *Node, universe []int) *big.Int {
	missing := len(universe) - len(n.vars)
	if missing < 0 {
		panic("dnnf: universe smaller than node support")
	}
	c := countOverSupport(n)
	return c.Mul(c, new(big.Int).Lsh(big.NewInt(1), uint(missing)))
}

// countOverSupport counts satisfying assignments over exactly Vars(n).
func countOverSupport(n *Node) *big.Int {
	memo := make(map[int]*big.Int)
	one := big.NewInt(1)
	var rec func(*Node) *big.Int
	rec = func(m *Node) *big.Int {
		if v, ok := memo[m.id]; ok {
			return v
		}
		var v *big.Int
		switch m.Kind {
		case KindTrue, KindLit:
			v = one
		case KindFalse:
			v = big.NewInt(0)
		case KindAnd:
			v = big.NewInt(1)
			for _, c := range m.Children {
				v.Mul(v, rec(c))
			}
		case KindOr:
			v = big.NewInt(0)
			for _, c := range m.Children {
				// A child covering fewer variables stands for any value of
				// the gap variables: scale by 2^gap.
				gap := uint(len(m.vars) - len(c.vars))
				t := new(big.Int).Lsh(rec(c), gap)
				v.Add(v, t)
			}
		}
		memo[m.id] = v
		return v
	}
	return rec(n)
}

// WMC computes the weighted model count of n with per-variable rational
// weights: weight(v) for the positive literal and 1-weight(v) for the
// negative one. Because each variable's two weights sum to 1, variables
// outside a child's support contribute factor 1 and need no correction; the
// result is the probability Pr(q, (D,π)) when n represents the lineage of q
// on the tuple-independent database (D,π).
func WMC(n *Node, weight func(v int) *big.Rat) *big.Rat {
	memo := make(map[int]*big.Rat)
	oneRat := new(big.Rat).SetInt64(1)
	var rec func(*Node) *big.Rat
	rec = func(m *Node) *big.Rat {
		if v, ok := memo[m.id]; ok {
			return v
		}
		var v *big.Rat
		switch m.Kind {
		case KindTrue:
			v = oneRat
		case KindFalse:
			v = new(big.Rat)
		case KindLit:
			va := m.Lit
			if va > 0 {
				v = weight(va)
			} else {
				v = new(big.Rat).Sub(oneRat, weight(-va))
			}
		case KindAnd:
			v = new(big.Rat).SetInt64(1)
			for _, c := range m.Children {
				v.Mul(v, rec(c))
			}
		case KindOr:
			v = new(big.Rat)
			for _, c := range m.Children {
				// Gap variables contribute weight(v) + (1-weight(v)) = 1.
				// (Contrast with CountModels, where an unconstrained
				// variable contributes factor 2.)
				v.Add(v, rec(c))
			}
		}
		memo[m.id] = v
		return v
	}
	return new(big.Rat).Set(rec(n))
}
