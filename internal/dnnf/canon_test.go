package dnnf

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

// randomPermutation returns a bijection over f's variables, mapping into a
// fresh, possibly shifted id range so renamed formulas don't share numbering
// with the originals.
func randomPermutation(rng *rand.Rand, f *cnf.Formula, shift int) map[int]int {
	vars := f.Vars()
	targets := make([]int, len(vars))
	for i := range targets {
		targets[i] = shift + i + 1
	}
	rng.Shuffle(len(targets), func(i, j int) { targets[i], targets[j] = targets[j], targets[i] })
	m := make(map[int]int, len(vars))
	for i, v := range vars {
		m[v] = targets[i]
	}
	return m
}

// permuteFormula applies a variable renaming to every clause and to the
// auxiliary-variable bookkeeping.
func permuteFormula(f *cnf.Formula, m map[int]int) *cnf.Formula {
	out := &cnf.Formula{Aux: make(map[int]bool)}
	for _, cl := range f.Clauses {
		rc := make(cnf.Clause, len(cl))
		for i, l := range cl {
			nv := cnf.Lit(m[l.Var()])
			if !l.Positive() {
				nv = -nv
			}
			rc[i] = nv
		}
		out.Clauses = append(out.Clauses, rc)
	}
	for v, isAux := range f.Aux {
		if nv, ok := m[v]; ok {
			out.Aux[nv] = isAux
		}
	}
	for _, v := range out.Vars() {
		if v > out.MaxVar {
			out.MaxVar = v
		}
	}
	return out
}

func normalizeAll(t *testing.T, f *cnf.Formula) []cnf.Clause {
	t.Helper()
	var out []cnf.Clause
	for _, cl := range f.Clauses {
		norm, taut := normalizeClause(cl)
		if taut {
			continue
		}
		if len(norm) == 0 {
			t.Fatal("empty clause in test formula")
		}
		out = append(out, norm)
	}
	return out
}

// TestCanonicalFormInvariantUnderRenaming checks the heart of the canonical
// cache: renaming a formula's variables by a random bijection leaves its
// canonical key unchanged, and the two toCanon maps compose into the
// original renaming.
func TestCanonicalFormInvariantUnderRenaming(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		f := randomCNF(rng, 2+rng.Intn(6), 1+rng.Intn(8))
		perm := randomPermutation(rng, f, rng.Intn(50))
		g := permuteFormula(f, perm)

		isAuxF := func(v int) bool { return f.Aux[v] }
		isAuxG := func(v int) bool { return g.Aux[v] }
		toCanonF, keyF, errF := canonicalForm(normalizeAll(t, f), isAuxF, nil)
		toCanonG, keyG, errG := canonicalForm(normalizeAll(t, g), isAuxG, nil)
		if errF != nil || errG != nil {
			t.Fatalf("trial %d: canonicalForm errors %v / %v", trial, errF, errG)
		}
		if keyF != keyG {
			t.Fatalf("trial %d: canonical keys differ under renaming\nf: %v\nkeyF: %q\nkeyG: %q", trial, f.Clauses, keyF, keyG)
		}
		// The two canonical maps need not reproduce perm on automorphic
		// variables (symmetric variables may swap canonical indices), but
		// their composition must be an isomorphism of the clause sets —
		// exactly the property cache relabeling relies on.
		fromCanonG := make(map[int]int, len(toCanonG))
		for v, canon := range toCanonG {
			fromCanonG[canon] = v
		}
		composite := make(map[int]int, len(toCanonF))
		for v, canon := range toCanonF {
			composite[v] = fromCanonG[canon]
		}
		mapped := make([]cnf.Clause, 0, len(f.Clauses))
		for _, cl := range normalizeAll(t, f) {
			rc := make(cnf.Clause, len(cl))
			for i, l := range cl {
				nv := cnf.Lit(composite[l.Var()])
				if !l.Positive() {
					nv = -nv
				}
				rc[i] = nv
			}
			norm, taut := normalizeClause(rc)
			if taut {
				t.Fatalf("trial %d: renaming introduced a tautology", trial)
			}
			mapped = append(mapped, norm)
		}
		if got, want := cacheKey(mapped), cacheKey(normalizeAll(t, g)); got != want {
			t.Fatalf("trial %d: composite canonical map is not an isomorphism\nf: %v\ng: %v", trial, f.Clauses, g.Clauses)
		}
	}
}

// TestCanonicalCacheRenamedHit compiles a formula, then its renamed copy,
// and requires the copy to be served from the cache via relabeling — with
// the returned circuit exactly equivalent to the renamed formula.
func TestCanonicalCacheRenamedHit(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 100; trial++ {
		f := randomCNF(rng, 2+rng.Intn(5), 1+rng.Intn(7))
		if len(normalizeAll(t, f)) == 0 {
			// All clauses tautological: no variables survive, so there is
			// nothing to relabel.
			continue
		}
		// Shift past any possible original id so the renaming is never the
		// identity and the hit must relabel.
		perm := randomPermutation(rng, f, 10+rng.Intn(20))
		g := permuteFormula(f, perm)

		cache := NewCompileCache(4)
		if _, stats, err := Compile(context.Background(), f, Options{Cache: cache}); err != nil {
			t.Fatal(err)
		} else if stats.CrossCallHit {
			t.Fatal("cold compilation reported a hit")
		}
		warm, stats, err := Compile(context.Background(), g, Options{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if !stats.CrossCallHit {
			t.Fatalf("trial %d: renamed-isomorphic formula missed the canonical cache\nf: %v\ng: %v", trial, f.Clauses, g.Clauses)
		}
		// The shift guarantees at least one variable moved, so the hit must
		// have relabeled the cached circuit.
		if !stats.RenamedHit {
			t.Fatalf("trial %d: hit on shifted variables did not report relabeling", trial)
		}
		universe := g.Vars()
		if len(universe) > 16 {
			t.Fatalf("trial %d: universe unexpectedly large", trial)
		}
		assign := make(map[int]bool)
		for mask := 0; mask < 1<<len(universe); mask++ {
			for i, v := range universe {
				assign[v] = mask&(1<<i) != 0
			}
			if Eval(warm, assign) != g.Eval(assign) {
				t.Fatalf("trial %d: relabeled cached circuit differs from renamed formula at %v\nf: %v\ng: %v",
					trial, assign, f.Clauses, g.Clauses)
			}
		}
	}
}

// TestCanonicalCachePolarityMiss pins down soundness for near-misses: two
// formulas with the same clause shapes but non-isomorphic polarity patterns
// must not alias. {(1∨2),(1∨3)} has a variable occurring positively twice;
// {(¬1∨2),(1∨3)} does not — no renaming maps one onto the other.
func TestCanonicalCachePolarityMiss(t *testing.T) {
	a := &cnf.Formula{Clauses: []cnf.Clause{{1, 2}, {1, 3}}, Aux: map[int]bool{}, MaxVar: 3}
	b := &cnf.Formula{Clauses: []cnf.Clause{{-1, 2}, {1, 3}}, Aux: map[int]bool{}, MaxVar: 3}
	cache := NewCompileCache(4)
	if _, _, err := Compile(context.Background(), a, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	_, stats, err := Compile(context.Background(), b, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CrossCallHit {
		t.Error("different-polarity formula served from the cache")
	}
	if identical, renamed, misses := cache.CanonicalStats(); identical != 0 || renamed != 0 || misses != 2 {
		t.Errorf("CanonicalStats = (%d, %d, %d), want (0, 0, 2)", identical, renamed, misses)
	}
}

// TestCanonicalCacheIdenticalFormulaSharesRoot verifies that byte-identical
// re-compilation is still served without relabeling: the renaming composes
// to the identity, so the hit returns the cached root itself.
func TestCanonicalCacheIdenticalFormulaSharesRoot(t *testing.T) {
	f := &cnf.Formula{
		Clauses: []cnf.Clause{{1, 2}, {-1, 3}, {2, -3}},
		Aux:     map[int]bool{},
		MaxVar:  3,
	}
	cache := NewCompileCache(4)
	first, _, err := Compile(context.Background(), f, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	second, stats, err := Compile(context.Background(), f, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CrossCallHit || stats.RenamedHit {
		t.Fatalf("identical formula: CrossCallHit=%v RenamedHit=%v, want hit without relabeling", stats.CrossCallHit, stats.RenamedHit)
	}
	if first != second {
		t.Error("identity hit returned a relabeled copy instead of the cached root")
	}
	if identical, renamed, _ := cache.CanonicalStats(); identical != 1 || renamed != 0 {
		t.Errorf("CanonicalStats identical=%d renamed=%d, want 1/0", identical, renamed)
	}
}

// TestCanonicalCacheDisabledByToggle checks the ablation switch: with
// NoCanonicalCache set, a renamed-isomorphic formula is a miss.
func TestCanonicalCacheDisabledByToggle(t *testing.T) {
	f := &cnf.Formula{Clauses: []cnf.Clause{{1, 2}, {-1, 3}}, Aux: map[int]bool{}, MaxVar: 3}
	g := permuteFormula(f, map[int]int{1: 7, 2: 9, 3: 8})
	cache := NewCompileCache(4)
	opts := Options{Cache: cache, NoCanonicalCache: true}
	if _, _, err := Compile(context.Background(), f, opts); err != nil {
		t.Fatal(err)
	}
	_, stats, err := Compile(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CrossCallHit {
		t.Error("byte-identical keying served a renamed formula")
	}
	// And the byte-identical path still hits on the exact same formula.
	if _, stats, err = Compile(context.Background(), g, opts); err != nil || !stats.CrossCallHit {
		t.Errorf("byte-identical re-compilation missed (err=%v hit=%v)", err, stats.CrossCallHit)
	}
}

// TestCanonicalFormLargeSymmetricOrbit exercises the individualization cap:
// a single wide clause makes every variable interchangeable (one automorphism
// orbit far larger than maxIndividualizationRounds), the labeling must still
// finish promptly, and a renamed copy must still produce the same key —
// automorphic ties render identically no matter how they are broken.
func TestCanonicalFormLargeSymmetricOrbit(t *testing.T) {
	const n = 500
	wide := make(cnf.Clause, n)
	for i := range wide {
		wide[i] = cnf.Lit(i + 1)
	}
	f := &cnf.Formula{Clauses: []cnf.Clause{wide}, Aux: map[int]bool{}, MaxVar: n}
	rng := rand.New(rand.NewSource(113))
	g := permuteFormula(f, randomPermutation(rng, f, 1000))
	_, keyF, err := canonicalForm(normalizeAll(t, f), func(int) bool { return false }, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, keyG, err := canonicalForm(normalizeAll(t, g), func(int) bool { return false }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if keyF != keyG {
		t.Error("symmetric-orbit keys differ under renaming despite the individualization cap")
	}
}

// TestCanonicalFormHonorsBudgetCheck verifies cancellation reaches the
// labeling: a failing check aborts canonicalForm with that error.
func TestCanonicalFormHonorsBudgetCheck(t *testing.T) {
	f := &cnf.Formula{Clauses: []cnf.Clause{{1, 2}, {-1, 3}, {2, -3}}, Aux: map[int]bool{}, MaxVar: 3}
	boom := errors.New("budget")
	if _, _, err := canonicalForm(normalizeAll(t, f), func(int) bool { return false }, func() error { return boom }); err != boom {
		t.Fatalf("err = %v, want the check's error", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cache := NewCompileCache(4)
	if _, _, err := Compile(ctx, f, Options{Cache: cache}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Compile with canonical cache: err = %v, want context.Canceled", err)
	}
}

// TestRelabelPreservesSemantics checks Relabel in isolation: the relabeled
// circuit evaluates exactly like the original with the assignment pulled
// back through the renaming, and keeps the d-D structural invariants.
func TestRelabelPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 80; trial++ {
		f := randomCNF(rng, 2+rng.Intn(5), 1+rng.Intn(7))
		n, _, err := Compile(context.Background(), f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		perm := randomPermutation(rng, f, rng.Intn(30))
		relabeled := Relabel(NewBuilder(), n, perm)
		if err := Validate(relabeled, 12); err != nil {
			t.Fatalf("trial %d: relabeled circuit invalid: %v", trial, err)
		}
		universe := f.Vars()
		assign := make(map[int]bool)
		renamedAssign := make(map[int]bool)
		for mask := 0; mask < 1<<len(universe); mask++ {
			for i, v := range universe {
				val := mask&(1<<i) != 0
				assign[v] = val
				renamedAssign[perm[v]] = val
			}
			if Eval(relabeled, renamedAssign) != Eval(n, assign) {
				t.Fatalf("trial %d: relabeled circuit diverges at %v", trial, assign)
			}
		}
	}
}
