package dnnf

import "repro/internal/cnf"

// occCounts tracks, for every variable of a residual clause set, the number
// of clauses mentioning it. The dynamic most-frequent branching heuristic
// needs exactly these counts at every Shannon decision; recomputing them
// from scratch per decision costs a map build over all literals, so the
// compiler instead maintains one occCounts per branch incrementally: assign
// and propagate report every clause they satisfy and every literal they
// strike, and pickVar reduces to a lookup scan.
//
// Ownership discipline (this is what makes the concurrent speculative
// compiler safe without locks): an occCounts is mutated only by the single
// goroutine that owns it. At a Shannon decision the hi branch receives a
// clone and the lo branch inherits the original; at a multi-way component
// split each component rebuilds fresh counts (splits already pay a pass over
// every component clause, and per-component maps keep clones small). A nil
// *occCounts disables maintenance — every method is a no-op — so heuristics
// that do not consume counts pay nothing.
type occCounts struct {
	m map[int]int
}

// newOccCounts builds the counts for a clause set. Clauses are normalized
// (each variable appears at most once per clause), so the count of v is the
// number of clauses whose literal set mentions v.
func newOccCounts(clauses []cnf.Clause) *occCounts {
	c := &occCounts{m: make(map[int]int)}
	for _, cl := range clauses {
		for _, l := range cl {
			c.m[l.Var()]++
		}
	}
	return c
}

// clone returns an independent copy for a speculative or hi branch.
func (c *occCounts) clone() *occCounts {
	if c == nil {
		return nil
	}
	out := &occCounts{m: make(map[int]int, len(c.m))}
	for v, n := range c.m {
		out.m[v] = n
	}
	return out
}

// get returns the occurrence count of v.
func (c *occCounts) get(v int) int { return c.m[v] }

// removeClause notes that an entire clause left the residual set (it became
// satisfied): every variable it mentions loses one occurrence.
func (c *occCounts) removeClause(cl cnf.Clause) {
	if c == nil {
		return
	}
	for _, l := range cl {
		c.removeLit(l.Var())
	}
}

// removeLit notes that one literal was struck from a surviving clause.
func (c *occCounts) removeLit(v int) {
	if c == nil {
		return
	}
	if n := c.m[v] - 1; n > 0 {
		c.m[v] = n
	} else {
		delete(c.m, v)
	}
}

// pickMostFrequent scans the clause set's literals and returns the variable
// with the highest maintained occurrence count, ties broken by the smaller
// variable — the same total order the recomputing heuristic uses, so the two
// implementations agree on every input (property-tested). Scanning literals
// instead of the counts map keeps the choice independent of map iteration
// order and correct under component splits: a variable's occurrences all lie
// in one component, so the branch-global counts restricted to this
// component's literals are exactly the per-component counts.
func (c *occCounts) pickMostFrequent(clauses []cnf.Clause) int {
	best, bestCount := 0, -1
	for _, cl := range clauses {
		for _, l := range cl {
			v := l.Var()
			n := c.m[v]
			if n > bestCount || (n == bestCount && v < best) {
				best, bestCount = v, n
			}
		}
	}
	return best
}
