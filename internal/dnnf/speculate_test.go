package dnnf

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/cnf"
)

// singleComponentCNF builds one connected random width-3 block: the shape
// that defeats component fan-out and that speculation and portfolio mode
// exist for.
func singleComponentCNF(rng *rand.Rand, vars, clauses int) *cnf.Formula {
	return blockCNF(rng, 1, vars, clauses, func() int { return 3 })
}

// hardSingleComponentCNF picks a clause/variable ratio of ~3.5 — dense
// enough for deep search, sparse enough not to refute in a handful of
// decisions (random 3-CNF above ratio ~4.3 is almost surely UNSAT and dies
// at the first conflict).
func hardSingleComponentCNF(rng *rand.Rand, vars int) *cnf.Formula {
	return singleComponentCNF(rng, vars, vars*7/2)
}

// TestSpeculativeCompileMatchesSequential is the semantic-identity property
// for the new parallelism sources: across random single- and multi-component
// CNFs and worker counts, speculation, portfolio mode, and their combination
// produce circuits with the same model count and pointwise evaluation as the
// sequential compiler. Run under -race in CI, this also exercises the
// concurrent branch bookkeeping.
func TestSpeculativeCompileMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	variants := []Options{
		{Speculate: true},
		{Portfolio: true},
		{Speculate: true, Portfolio: true},
	}
	for trial := 0; trial < 20; trial++ {
		var f *cnf.Formula
		if trial%2 == 0 {
			f = singleComponentCNF(rng, 9, 24)
		} else {
			f = multiComponentCNF(rng, 1+rng.Intn(3), 4, 6)
		}
		universe := f.Vars()
		serial, _, err := Compile(context.Background(), f, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := CountModels(serial, universe)
		for _, base := range variants {
			for _, workers := range []int{1, 2, 4, 8} {
				opts := base
				opts.Workers = workers
				par, _, err := Compile(context.Background(), f, opts)
				if err != nil {
					t.Fatalf("trial %d %+v: %v", trial, opts, err)
				}
				if err := Validate(par, len(universe)); err != nil {
					t.Fatalf("trial %d %+v: %v", trial, opts, err)
				}
				if got := CountModels(par, universe); got.Cmp(want) != 0 {
					t.Fatalf("trial %d %+v: model count %v, want %v", trial, opts, got, want)
				}
				if len(universe) <= 12 {
					assign := make(map[int]bool)
					for mask := 0; mask < 1<<len(universe); mask++ {
						for i, v := range universe {
							assign[v] = mask&(1<<i) != 0
						}
						if Eval(par, assign) != Eval(serial, assign) {
							t.Fatalf("trial %d %+v: circuits diverge at %v", trial, opts, assign)
						}
					}
				}
			}
		}
	}
}

// TestSpeculationEngages pins that the speculative path actually runs on the
// instances it targets (a hard single-component CNF with idle workers) — a
// guard against the guard conditions silently turning the feature off.
func TestSpeculationEngages(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	f := hardSingleComponentCNF(rng, 40)
	_, stats, err := Compile(context.Background(), f, Options{Workers: 4, Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SpeculatedDecisions == 0 {
		t.Fatalf("no decisions speculated on a single-component instance at workers=4: %+v", stats)
	}
}

// TestPortfolioEngagesAndReportsWinner checks the race actually runs at
// workers ≥ 2, reports a parseable winner, and yields the sequential model
// count.
func TestPortfolioEngagesAndReportsWinner(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	f := singleComponentCNF(rng, 12, 40)
	universe := f.Vars()
	serial, _, err := Compile(context.Background(), f, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := CountModels(serial, universe)
	root, stats, err := Compile(context.Background(), f, Options{Workers: 4, Portfolio: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PortfolioRacers < 2 {
		t.Fatalf("portfolio did not engage: %+v", stats)
	}
	if _, err := ParseVarOrder(stats.PortfolioWinner); err != nil {
		t.Fatalf("unparseable winner %q", stats.PortfolioWinner)
	}
	if got := CountModels(root, universe); got.Cmp(want) != 0 {
		t.Fatalf("portfolio model count %v, want %v", got, want)
	}
}

// TestSpeculativeNodeBudgetIdentical pins the MaxNodes contract: budget
// exhaustion inside a speculative branch (and inside every portfolio racer)
// surfaces as the same ErrNodeBudget the sequential compiler reports, never
// as a cancellation artifact of the sibling teardown.
func TestSpeculativeNodeBudgetIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	f := hardSingleComponentCNF(rng, 40)
	for _, opts := range []Options{
		{Workers: 1, MaxNodes: 3},
		{Workers: 4, MaxNodes: 3, Speculate: true},
		{Workers: 4, MaxNodes: 3, Portfolio: true},
		{Workers: 8, MaxNodes: 3, Speculate: true, Portfolio: true},
	} {
		_, _, err := Compile(context.Background(), f, opts)
		if !errors.Is(err, ErrNodeBudget) {
			t.Fatalf("%+v: err = %v, want ErrNodeBudget", opts, err)
		}
	}
}

// TestSpeculativeCallerCancellation pins that caller cancellation mid-compile
// is an error (the caller's context error), not a silent fallback — for the
// plain, speculative, and portfolio compilers alike.
func TestSpeculativeCallerCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(233))
	f := hardSingleComponentCNF(rng, 44)
	for _, opts := range []Options{
		{Workers: 4, Speculate: true},
		{Workers: 4, Portfolio: true},
		{Workers: 4, Speculate: true, Portfolio: true},
	} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, _, err := Compile(ctx, f, opts); !errors.Is(err, context.Canceled) {
			t.Fatalf("pre-cancelled %+v: err = %v, want context.Canceled", opts, err)
		}
		tctx, tcancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		_, _, err := Compile(tctx, f, opts)
		tcancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("mid-compile deadline %+v: err = %v, want nil or DeadlineExceeded", opts, err)
		}
	}
}

// TestSpeculationNoGoroutineLeak compiles many instances — successes, budget
// failures, and cancellations, all with speculation and portfolio on — and
// asserts the goroutine count settles back to the baseline: cancelled losers
// must release their spawn tokens and exit.
func TestSpeculationNoGoroutineLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(239))
	before := runtime.NumGoroutine()
	for i := 0; i < 30; i++ {
		f := hardSingleComponentCNF(rng, 30)
		opts := Options{Workers: 4, Speculate: true, Portfolio: i%2 == 0}
		switch i % 3 {
		case 1:
			opts.MaxNodes = 5 // budget failure inside branches
		case 2:
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			Compile(ctx, f, opts)
			continue
		}
		Compile(context.Background(), f, opts)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPickVarIncrementalAgreesWithRecompute random-walks conditioning and
// propagation over random clause sets, maintaining an occCounts alongside,
// and checks two invariants at every step: the maintained map is exactly the
// from-scratch count of the current residual, and the incremental
// most-frequent pick equals the recomputing oracle's.
func TestPickVarIncrementalAgreesWithRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(241))
	for trial := 0; trial < 60; trial++ {
		raw := singleComponentCNF(rng, 10, 30)
		clauses := make([]cnf.Clause, 0, len(raw.Clauses))
		for _, cl := range raw.Clauses {
			norm, taut := normalizeClause(cl)
			if !taut && len(norm) > 0 {
				clauses = append(clauses, norm)
			}
		}
		counts := newOccCounts(clauses)
		for step := 0; len(clauses) > 0; step++ {
			if got := newOccCounts(clauses); !reflect.DeepEqual(counts.m, got.m) {
				t.Fatalf("trial %d step %d: maintained counts %v, recomputed %v", trial, step, counts.m, got.m)
			}
			inc := counts.pickMostFrequent(clauses)
			if rec := pickMostFrequentRecompute(clauses); inc != rec {
				t.Fatalf("trial %d step %d: incremental pick %d, recompute pick %d", trial, step, inc, rec)
			}
			// Alternate conditioning steps with propagation rounds, like the
			// compiler does.
			if step%3 == 2 {
				_, rest, conflict := propagate(clauses, counts)
				if conflict {
					break // counts unspecified on dead branches
				}
				clauses = rest
				continue
			}
			l := cnf.Lit(inc)
			if rng.Intn(2) == 0 {
				l = -l
			}
			next, empty := assign(clauses, l, counts)
			if empty {
				break
			}
			clauses = next
		}
	}
}

func TestParseVarOrder(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want VarOrder
	}{
		{"freq", OrderMostFrequent},
		{"", OrderMostFrequent},
		{"lex", OrderLexicographic},
		{"jw", OrderJeroslowWang},
		{"JW", OrderJeroslowWang},
	} {
		got, err := ParseVarOrder(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseVarOrder(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if _, err := ParseVarOrder(got.String()); err != nil {
			t.Fatalf("String/Parse round-trip failed for %v", got)
		}
	}
	if _, err := ParseVarOrder("bogus"); err == nil {
		t.Fatal("ParseVarOrder accepted a bogus name")
	}
}

// BenchmarkPickVar measures the satellite win: the incremental occurrence
// counter versus the per-decision recompute, on a mid-size residual.
func BenchmarkPickVar(b *testing.B) {
	rng := rand.New(rand.NewSource(251))
	raw := singleComponentCNF(rng, 60, 260)
	clauses := make([]cnf.Clause, 0, len(raw.Clauses))
	for _, cl := range raw.Clauses {
		if norm, taut := normalizeClause(cl); !taut && len(norm) > 0 {
			clauses = append(clauses, norm)
		}
	}
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pickMostFrequentRecompute(clauses)
		}
	})
	b.Run("incremental", func(b *testing.B) {
		counts := newOccCounts(clauses)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			counts.pickMostFrequent(clauses)
		}
	})
}

// BenchmarkCompileSpeculative compiles a hard single-component CNF with and
// without speculation at 4 workers — the headline scaling the PR targets.
func BenchmarkCompileSpeculative(b *testing.B) {
	rng := rand.New(rand.NewSource(257))
	f := hardSingleComponentCNF(rng, 40)
	for _, bc := range []struct {
		name string
		opts Options
	}{
		{"sequential", Options{Workers: 1}},
		{"workers4", Options{Workers: 4}},
		{"workers4-speculate", Options{Workers: 4, Speculate: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := Compile(context.Background(), f, bc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompilePortfolio races heuristics on the same instance versus
// running the default heuristic alone.
func BenchmarkCompilePortfolio(b *testing.B) {
	rng := rand.New(rand.NewSource(263))
	f := hardSingleComponentCNF(rng, 36)
	for _, bc := range []struct {
		name string
		opts Options
	}{
		{"default-order", Options{Workers: 4}},
		{"jw-order", Options{Workers: 4, Order: OrderJeroslowWang}},
		{"portfolio", Options{Workers: 4, Portfolio: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := Compile(context.Background(), f, bc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
