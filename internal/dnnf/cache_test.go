package dnnf

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cnf"
)

// chainFormula returns a small satisfiable CNF parameterized by k so tests
// can mint distinct formulas: (x1 ∨ x2) ∧ (¬x1 ∨ x3) ∧ (xk).
func chainFormula(k int) *cnf.Formula {
	return &cnf.Formula{
		Clauses: []cnf.Clause{
			{cnf.Lit(1), cnf.Lit(2)},
			{cnf.Lit(-1), cnf.Lit(3)},
			{cnf.Lit(k)},
		},
		Aux:    map[int]bool{},
		MaxVar: k,
	}
}

func TestCompileCacheHitReturnsSameCircuit(t *testing.T) {
	cache := NewCompileCache(4)
	f := chainFormula(3)
	first, stats1, err := Compile(context.Background(), f, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if stats1.CrossCallHit {
		t.Fatal("first compilation reported a cross-call hit")
	}
	second, stats2, err := Compile(context.Background(), f, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.CrossCallHit {
		t.Fatal("second compilation missed the cache")
	}
	if first != second {
		t.Error("cache hit returned a different root node")
	}
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
}

func TestCompileCacheStatsAndInvalidate(t *testing.T) {
	cache := NewCompileCache(8)
	// Two formulas over disjoint variable sets (different clause shapes so
	// canonical keying cannot merge them).
	f1 := chainFormula(3) // vars 1..3
	f2 := &cnf.Formula{
		Clauses: []cnf.Clause{{cnf.Lit(10), cnf.Lit(11)}, {cnf.Lit(-10), cnf.Lit(-11)}},
		Aux:     map[int]bool{},
		MaxVar:  11,
	}
	for _, f := range []*cnf.Formula{f1, f2} {
		if _, _, err := Compile(context.Background(), f, Options{Cache: cache}); err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.Len != 2 || st.Misses != 2 || st.Capacity != 8 {
		t.Fatalf("Stats = %+v, want Len=2 Misses=2 Capacity=8", st)
	}

	// Invalidating a variable outside every support set drops nothing.
	if n := cache.Invalidate(0, 99); n != 0 {
		t.Errorf("Invalidate(99) dropped %d entries, want 0", n)
	}
	// A mismatched owner tag protects entries even when the fact matches:
	// fact IDs collide across databases, so another database's updates must
	// never evict this one's circuits.
	if n := cache.Invalidate(42, 2); n != 0 {
		t.Errorf("Invalidate with foreign owner dropped %d entries, want 0", n)
	}
	// Invalidating a fact mentioned only by f1, under the owner tag the
	// entries were compiled with, evicts exactly f1's entry.
	if n := cache.Invalidate(0, 2); n != 1 {
		t.Errorf("Invalidate(2) dropped %d entries, want 1", n)
	}
	st := cache.Stats()
	if st.Len != 1 || st.Invalidations != 1 {
		t.Fatalf("after Invalidate: %+v, want Len=1 Invalidations=1", st)
	}
	// f2 must still be served warm; f1 must recompile.
	_, s2, err := Compile(context.Background(), f2, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.CrossCallHit {
		t.Error("entry with untouched support was invalidated")
	}
	_, s1, err := Compile(context.Background(), f1, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if s1.CrossCallHit {
		t.Error("invalidated entry still served from cache")
	}
}

func TestCompileCacheEvictionCounter(t *testing.T) {
	cache := NewCompileCache(2)
	for k := 3; k <= 6; k++ {
		// Byte-identical keying: the chain formulas are isomorphic modulo
		// renaming, so canonical keying would collapse them to one entry.
		if _, _, err := Compile(context.Background(), chainFormula(k), Options{Cache: cache, NoCanonicalCache: true}); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Evictions != 2 || st.Len != 2 {
		t.Errorf("Stats = %+v, want Evictions=2 Len=2", st)
	}
}

func TestCompileCacheDistinguishesAuxBookkeeping(t *testing.T) {
	cache := NewCompileCache(4)
	plain := chainFormula(3)
	marked := chainFormula(3)
	marked.Aux = map[int]bool{3: true}
	if _, _, err := Compile(context.Background(), plain, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	_, stats, err := Compile(context.Background(), marked, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CrossCallHit {
		t.Error("formulas with different Aux sets aliased in the cache")
	}
}

func TestCompileCacheLRUEviction(t *testing.T) {
	cache := NewCompileCache(2)
	ctx := context.Background()
	a, b, c := chainFormula(1), chainFormula(2), chainFormula(3)
	for _, f := range []*cnf.Formula{a, b, c} { // c evicts a
		if _, _, err := Compile(ctx, f, Options{Cache: cache}); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", cache.Len())
	}
	if _, stats, _ := Compile(ctx, a, Options{Cache: cache}); stats.CrossCallHit {
		t.Error("evicted entry still served")
	}
	if _, stats, _ := Compile(ctx, c, Options{Cache: cache}); !stats.CrossCallHit {
		t.Error("recent entry was evicted")
	}
}

func TestCompileCacheHitRespectsNodeBudget(t *testing.T) {
	cache := NewCompileCache(4)
	f := chainFormula(3)
	if _, _, err := Compile(context.Background(), f, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	// The cached circuit has more than one node, so a 1-node budget must
	// fail exactly as a cold compilation would.
	if _, _, err := Compile(context.Background(), f, Options{Cache: cache, MaxNodes: 1}); err != ErrNodeBudget {
		t.Fatalf("err = %v, want ErrNodeBudget", err)
	}
}

func TestCompileCacheConcurrentUse(t *testing.T) {
	cache := NewCompileCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f := chainFormula(1 + (g+i)%12) // overlap across goroutines
				if _, _, err := Compile(context.Background(), f, Options{Cache: cache}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if cache.Len() > 8 {
		t.Errorf("cache grew past capacity: %d", cache.Len())
	}
}

func TestCompileCacheGrow(t *testing.T) {
	cache := NewCompileCache(1)
	cache.Grow(3)
	ctx := context.Background()
	for k := 1; k <= 3; k++ {
		if _, _, err := Compile(ctx, chainFormula(k), Options{Cache: cache}); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != 3 {
		t.Errorf("grown cache holds %d entries, want 3", cache.Len())
	}
	cache.Grow(2) // never shrinks
	if cache.Len() != 3 {
		t.Errorf("Grow shrank the cache to %d", cache.Len())
	}
}

func TestCompileCachedResultMatchesCold(t *testing.T) {
	cache := NewCompileCache(4)
	ctx := context.Background()
	for k := 1; k <= 4; k++ {
		f := chainFormula(k)
		cold, _, err := Compile(ctx, f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := Compile(ctx, f, Options{Cache: cache}); err != nil {
			t.Fatal(err)
		}
		warm, _, err := Compile(ctx, f, Options{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		vars := f.Vars()
		if got, want := CountModels(warm, vars), CountModels(cold, vars); got.Cmp(want) != 0 {
			t.Errorf("k=%s: cached model count %v, cold %v", strconv.Itoa(k), got, want)
		}
	}
}

func TestCompileCacheKeyedByCompilationConfig(t *testing.T) {
	cache := NewCompileCache(8)
	ctx := context.Background()
	f := chainFormula(3)
	if _, _, err := Compile(ctx, f, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	_, stats, err := Compile(ctx, f, Options{Cache: cache, Order: OrderLexicographic})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CrossCallHit {
		t.Error("lexicographic compilation served a most-frequent-order circuit")
	}
	_, stats, err = Compile(ctx, f, Options{Cache: cache, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CrossCallHit {
		t.Error("component-cache ablation served a cached-config circuit")
	}
}

// TestCompileCacheSingleFlight floods one formula from many goroutines and
// checks that only one of them did the compilation work (the rest report
// cross-call hits), so concurrent duplicates pay for one compile.
func TestCompileCacheSingleFlight(t *testing.T) {
	cache := NewCompileCache(4)
	f := chainFormula(3)
	const goroutines = 16
	var wg sync.WaitGroup
	var cold atomic.Int32
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, stats, err := Compile(context.Background(), f, Options{Cache: cache})
			if err != nil {
				t.Error(err)
				return
			}
			if !stats.CrossCallHit {
				cold.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := cold.Load(); n != 1 {
		t.Errorf("%d goroutines compiled cold, want exactly 1", n)
	}
}
