package dnnf

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cnf"
	"repro/internal/parallel"
)

// portfolioOrders decides whether portfolio mode engages for this
// compilation and, if so, which heuristics race. The configured Order always
// races (so portfolio mode never regresses a deliberate heuristic choice),
// joined by the dynamic heuristics it is not — OrderMostFrequent and
// OrderJeroslowWang, which explore genuinely different decision trees.
// OrderLexicographic is not added implicitly: it loses so reliably on real
// lineages that a lane spent on it starves the productive racers. The field
// is capped at the worker count (each racer needs at least one worker) and
// collapses below two racers to nil, meaning: compile normally.
func portfolioOrders(opts Options) []VarOrder {
	if !opts.Portfolio {
		return nil
	}
	workers := parallel.Workers(opts.Workers)
	if workers < 2 {
		return nil
	}
	orders := []VarOrder{opts.Order}
	for _, o := range []VarOrder{OrderMostFrequent, OrderJeroslowWang} {
		if o != opts.Order {
			orders = append(orders, o)
		}
	}
	if len(orders) > workers {
		orders = orders[:workers]
	}
	if len(orders) < 2 {
		return nil
	}
	return orders
}

// racerResult is one portfolio lane's outcome.
type racerResult struct {
	order VarOrder
	root  *Node
	stats Stats
	err   error
}

// racePortfolio compiles the same clause set under each heuristic
// concurrently, each racer on its own builder (hash-consing tables are
// per-builder, so racers share nothing and need no coordination) with an
// equal share of the worker budget for its own internal fan-out and
// speculation. The first racer to succeed wins: the others are cancelled via
// context and their circuits discarded. Losers that fail for their own
// reasons (e.g. one heuristic blows the node budget while another fits) do
// not fail the compilation; only when every racer fails is an error
// returned, preferring the first real (non-cancellation) failure so
// ErrNodeBudget/ErrTimeout surface rather than a cancellation artifact.
func racePortfolio(ctx context.Context, clauses []cnf.Clause, opts Options, orders []VarOrder, start time.Time) (*Node, Stats, error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Split the worker budget evenly across lanes. Each lane's sub-compiler
	// sizes its own spawn pool from this share, so total goroutine fan-out
	// stays bounded by the caller's Workers.
	per := parallel.Workers(opts.Workers) / len(orders)
	if per < 1 {
		per = 1
	}

	results := make(chan racerResult, len(orders))
	var wg sync.WaitGroup
	for _, order := range orders {
		order := order
		lane := opts
		lane.Order = order
		lane.Workers = per
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := newCompiler(lane, start)
			root, err := c.compileRoot(rctx, clauses)
			stats := c.snapshot(start)
			results <- racerResult{order: order, root: root, stats: stats, err: err}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	var winner *racerResult
	var firstErr error
	losersCancelled := 0
	for r := range results {
		r := r
		if r.err == nil && winner == nil {
			winner = &r
			// First finisher wins; everyone still running is now wasted
			// work — cancel promptly so their spawn tokens and CPU come
			// back. Remaining sends land in the buffered channel, so the
			// closer goroutine never blocks.
			cancel()
			continue
		}
		if r.err != nil {
			if errors.Is(r.err, context.Canceled) && ctx.Err() == nil {
				losersCancelled++
			} else if firstErr == nil || errors.Is(firstErr, context.Canceled) {
				firstErr = r.err
			}
		}
	}
	if winner == nil {
		if err := ctx.Err(); err != nil {
			// The caller cancelled mid-race: report that, not whichever
			// lane happened to observe it first.
			return nil, Stats{Elapsed: time.Since(start)}, err
		}
		if firstErr == nil {
			firstErr = context.Canceled // unreachable: no winner implies an error
		}
		return nil, Stats{Elapsed: time.Since(start)}, firstErr
	}
	stats := winner.stats
	stats.Elapsed = time.Since(start)
	stats.PortfolioRacers = len(orders)
	stats.PortfolioLosersCancelled = losersCancelled
	stats.PortfolioWinner = winner.order.String()
	return winner.root, stats, nil
}

// Process-wide speculation/portfolio counters, surfaced by the shapleyd
// /v1/stats endpoint. They aggregate across every compilation in the
// process, cheap enough to record unconditionally.
var (
	globalSpeculated   atomic.Int64
	globalSpecCancels  atomic.Int64
	globalRaces        atomic.Int64
	globalRaceLosers   atomic.Int64
	globalWinsByOrder  [numVarOrders]atomic.Int64
	globalCompilations atomic.Int64
)

// recordGlobalCounters folds one compilation's stats into the process-wide
// counters.
func recordGlobalCounters(s Stats) {
	globalCompilations.Add(1)
	if s.SpeculatedDecisions > 0 {
		globalSpeculated.Add(int64(s.SpeculatedDecisions))
	}
	if s.SpeculationCancels > 0 {
		globalSpecCancels.Add(int64(s.SpeculationCancels))
	}
	if s.PortfolioRacers > 0 {
		globalRaces.Add(1)
		globalRaceLosers.Add(int64(s.PortfolioLosersCancelled))
		if o, err := ParseVarOrder(s.PortfolioWinner); err == nil {
			globalWinsByOrder[o].Add(1)
		}
	}
}

// CompilerCounters is a snapshot of the process-wide compiler activity.
type CompilerCounters struct {
	// Compilations counts completed Compile calls (hits excluded).
	Compilations int64
	// SpeculatedDecisions and SpeculationCancels aggregate the per-compile
	// Stats fields of the same names.
	SpeculatedDecisions int64
	SpeculationCancels  int64
	// PortfolioRaces counts compilations that raced heuristics;
	// PortfolioLosersCancelled the racers cancelled after a win; WinsByOrder
	// the wins per heuristic name.
	PortfolioRaces           int64
	PortfolioLosersCancelled int64
	WinsByOrder              map[string]int64
}

// SpeculationCounters snapshots the process-wide speculation and portfolio
// counters.
func SpeculationCounters() CompilerCounters {
	wins := make(map[string]int64)
	for o := VarOrder(0); o < numVarOrders; o++ {
		if n := globalWinsByOrder[o].Load(); n > 0 {
			wins[o.String()] = n
		}
	}
	return CompilerCounters{
		Compilations:             globalCompilations.Load(),
		SpeculatedDecisions:      globalSpeculated.Load(),
		SpeculationCancels:       globalSpecCancels.Load(),
		PortfolioRaces:           globalRaces.Load(),
		PortfolioLosersCancelled: globalRaceLosers.Load(),
		WinsByOrder:              wins,
	}
}
