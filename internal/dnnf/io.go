package dnnf

// c2d-compatible serialization of d-DNNF circuits. The format is the "nnf"
// file format produced by the c2d compiler the paper uses:
//
//	nnf <#nodes> <#edges> <#vars>
//	L <lit>                     leaf literal
//	A <k> <child...>            and-node with k children
//	O <decision-var> <k> <child...>   or-node (0 if no decision variable)
//
// Children reference earlier lines (0-based), so files are topologically
// sorted. True is encoded as `A 0` and false as `O 0 0`, as c2d does.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteNNF serializes the circuit in c2d's nnf format.
func WriteNNF(w io.Writer, n *Node) error {
	bw := bufio.NewWriter(w)
	// Assign line numbers in children-first order.
	line := make(map[int]int)
	var nodes []*Node
	Visit(n, func(m *Node) {
		line[m.ID()] = len(nodes)
		nodes = append(nodes, m)
	})
	maxVar := 0
	for _, v := range n.Vars() {
		if v > maxVar {
			maxVar = v
		}
	}
	if _, err := fmt.Fprintf(bw, "nnf %d %d %d\n", len(nodes), NumEdges(n), maxVar); err != nil {
		return err
	}
	for _, m := range nodes {
		switch m.Kind {
		case KindLit:
			fmt.Fprintf(bw, "L %d\n", m.Lit)
		case KindTrue:
			fmt.Fprintln(bw, "A 0")
		case KindFalse:
			fmt.Fprintln(bw, "O 0 0")
		case KindAnd:
			fmt.Fprintf(bw, "A %d", len(m.Children))
			for _, c := range m.Children {
				fmt.Fprintf(bw, " %d", line[c.ID()])
			}
			fmt.Fprintln(bw)
		case KindOr:
			fmt.Fprintf(bw, "O %d %d", m.Decision, len(m.Children))
			for _, c := range m.Children {
				fmt.Fprintf(bw, " %d", line[c.ID()])
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

// ParseNNF reads a circuit in c2d's nnf format. The caller asserts (or
// separately validates) determinism and decomposability; the parser checks
// only well-formedness. The last node is the root, as in c2d's output.
func ParseNNF(r io.Reader) (*Node, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	b := NewBuilder()
	var nodes []*Node
	sawHeader := false
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "nnf":
			if len(fields) != 4 {
				return nil, fmt.Errorf("dnnf: malformed header %q", text)
			}
			sawHeader = true
		case "L":
			if !sawHeader || len(fields) != 2 {
				return nil, fmt.Errorf("dnnf: malformed literal line %q", text)
			}
			lit, err := strconv.Atoi(fields[1])
			if err != nil || lit == 0 {
				return nil, fmt.Errorf("dnnf: bad literal %q", fields[1])
			}
			nodes = append(nodes, b.Lit(lit))
		case "A":
			if !sawHeader || len(fields) < 2 {
				return nil, fmt.Errorf("dnnf: malformed and line %q", text)
			}
			children, err := parseChildren(fields[1], fields[2:], nodes)
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, b.And(children...))
		case "O":
			if !sawHeader || len(fields) < 3 {
				return nil, fmt.Errorf("dnnf: malformed or line %q", text)
			}
			dec, err := strconv.Atoi(fields[1])
			if err != nil || dec < 0 {
				return nil, fmt.Errorf("dnnf: bad decision variable %q", fields[1])
			}
			children, err := parseChildren(fields[2], fields[3:], nodes)
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, b.orSlice(dec, children))
		default:
			return nil, fmt.Errorf("dnnf: unknown line type %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("dnnf: empty nnf file")
	}
	return nodes[len(nodes)-1], nil
}

func parseChildren(countField string, refs []string, nodes []*Node) ([]*Node, error) {
	k, err := strconv.Atoi(countField)
	if err != nil || k < 0 || k != len(refs) {
		return nil, fmt.Errorf("dnnf: child count %q does not match %d references", countField, len(refs))
	}
	out := make([]*Node, k)
	for i, ref := range refs {
		idx, err := strconv.Atoi(ref)
		if err != nil || idx < 0 || idx >= len(nodes) {
			return nil, fmt.Errorf("dnnf: bad child reference %q", ref)
		}
		out[i] = nodes[idx]
	}
	return out, nil
}
