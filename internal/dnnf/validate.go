package dnnf

import (
	"fmt"

	"repro/internal/circuit"
)

// CheckDecomposable verifies that every ∧-gate in the DAG has children with
// pairwise disjoint variable supports. The Builder enforces this at
// construction time; the check exists for circuits converted from external
// representations and for property tests.
func CheckDecomposable(n *Node) error {
	var fail error
	Visit(n, func(m *Node) {
		if fail != nil || m.Kind != KindAnd {
			return
		}
		seen := make(map[int]bool)
		for _, c := range m.Children {
			for _, v := range c.vars {
				if seen[v] {
					fail = fmt.Errorf("dnnf: ∧-gate %d not decomposable: variable %d repeats", m.id, v)
					return
				}
				seen[v] = true
			}
		}
	})
	return fail
}

// CheckDeterministic verifies, by brute force over all assignments to each
// ∨-gate's support, that no assignment satisfies two distinct children. It
// is exponential in the gate support size and intended for tests; it
// returns an error if any gate has support larger than maxVars.
func CheckDeterministic(n *Node, maxVars int) error {
	var fail error
	Visit(n, func(m *Node) {
		if fail != nil || m.Kind != KindOr {
			return
		}
		if len(m.vars) > maxVars {
			fail = fmt.Errorf("dnnf: ∨-gate %d support %d exceeds brute-force limit %d",
				m.id, len(m.vars), maxVars)
			return
		}
		assign := make(map[int]bool, len(m.vars))
		for mask := 0; mask < 1<<len(m.vars); mask++ {
			for i, v := range m.vars {
				assign[v] = mask&(1<<i) != 0
			}
			hits := 0
			for _, c := range m.Children {
				if Eval(c, assign) {
					hits++
				}
			}
			if hits > 1 {
				fail = fmt.Errorf("dnnf: ∨-gate %d not deterministic: %d children satisfied by %v",
					m.id, hits, assign)
				return
			}
		}
	})
	return fail
}

// Validate runs both structural checks (brute-force determinism limited to
// gates with at most maxVars support variables).
func Validate(n *Node, maxVars int) error {
	if err := CheckDecomposable(n); err != nil {
		return err
	}
	return CheckDeterministic(n, maxVars)
}

// FromCircuit converts a Boolean circuit that is already deterministic and
// decomposable — such as the hand-built circuit of Figure 2 — into a d-DNNF
// node. Negation gates must apply only to variables (NNF); the function
// returns an error otherwise. Determinism and decomposability are the
// caller's claim; use Validate to verify on small inputs.
func FromCircuit(b *Builder, root *circuit.Node) (*Node, error) {
	memo := make(map[int]*Node)
	var rec func(*circuit.Node) (*Node, error)
	rec = func(m *circuit.Node) (*Node, error) {
		if r, ok := memo[m.ID()]; ok {
			return r, nil
		}
		var r *Node
		switch m.Kind {
		case circuit.KindVar:
			r = b.Lit(int(m.Var))
		case circuit.KindConst:
			if m.Val {
				r = b.True()
			} else {
				r = b.False()
			}
		case circuit.KindNot:
			c := m.Children[0]
			if c.Kind != circuit.KindVar {
				return nil, fmt.Errorf("dnnf: negation of non-variable gate (kind %v); circuit is not in NNF", c.Kind)
			}
			r = b.Lit(-int(c.Var))
		case circuit.KindAnd:
			cs := make([]*Node, len(m.Children))
			for i, c := range m.Children {
				cc, err := rec(c)
				if err != nil {
					return nil, err
				}
				cs[i] = cc
			}
			r = b.And(cs...)
		case circuit.KindOr:
			cs := make([]*Node, len(m.Children))
			for i, c := range m.Children {
				cc, err := rec(c)
				if err != nil {
					return nil, err
				}
				cs[i] = cc
			}
			r = b.Or(cs...)
		}
		memo[m.ID()] = r
		return r, nil
	}
	return rec(root)
}
