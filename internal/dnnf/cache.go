package dnnf

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cnf"
)

// CompileCache is a bounded, signature-keyed, cross-call LRU cache of
// compiled d-DNNF roots. Where the per-compilation component cache (see
// compiler.cache) only lives for one Compile call, a CompileCache is shared
// across calls — and across goroutines — so repeated explanations of shared
// lineage (the same output tuple re-explained, or distinct tuples whose
// provenance Tseytin-encodes to the same CNF) reuse the compiled circuit
// instead of recompiling it from scratch.
//
// Keys are, by default, the canonical (rename-invariant) clause-hypergraph
// signature — so distinct tuples whose provenance is isomorphic modulo
// variable renaming share one compilation, with the circuit relabeled to
// each caller's variables on a hit — extended with the compilation options
// and the formula's auxiliary-variable bookkeeping, so equal clause
// structure under different Tseytin bookkeeping never aliases. With
// Options.NoCanonicalCache the key degrades to the byte-identical formula
// signature. Values are immutable node DAGs; sharing them between concurrent
// readers is safe because Nodes are never mutated after construction.
type CompileCache struct {
	mu            sync.Mutex
	capacity      int
	order         *list.List // front = most recently used; values are *cacheEntry
	entries       map[string]*list.Element
	inflight      map[string]*sync.WaitGroup
	hits          int64
	misses        int64
	renamed       int64
	evictions     int64
	invalidations int64
}

type cacheEntry struct {
	key  string
	root *Node
	// nodes is the builder allocation count of the original compilation —
	// the same quantity Options.MaxNodes bounds — so budget checks on warm
	// hits reproduce the cold outcome instead of measuring the (smaller)
	// final DAG.
	nodes int
	// fromCanon maps canonical variable indices back to the variables of
	// the compilation that populated this entry; nil for byte-identical
	// (non-canonical) entries. A hit composes it with the caller's own
	// canonical map to relabel root into the caller's variable space.
	fromCanon map[int]int
	// support is the sorted set of original (non-auxiliary) variables —
	// fact IDs, for lineage compilations — of the compilation that
	// populated this entry. Invalidate uses it to evict only circuits
	// whose lineage actually mentions an updated fact.
	support []int
	// owner scopes support: fact IDs are only unique within one database,
	// so Invalidate matches an entry's support only when the owner tags
	// agree (Options.CacheOwner; 0 = untagged). Lookups never consult the
	// owner — canonical hits across databases stay shared.
	owner uint64
}

// DefaultCompileCacheSize is the capacity used when a knob asks for "a
// cache" without saying how big (CacheSize == 0 at the facade).
const DefaultCompileCacheSize = 256

// NewCompileCache returns an empty LRU cache holding at most capacity
// compiled circuits; capacity ≤ 0 is treated as DefaultCompileCacheSize.
func NewCompileCache(capacity int) *CompileCache {
	if capacity <= 0 {
		capacity = DefaultCompileCacheSize
	}
	return &CompileCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*sync.WaitGroup),
	}
}

// Grow raises the cache capacity to at least capacity (it never shrinks a
// live cache, so concurrent users keep their working sets).
func (c *CompileCache) Grow(capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if capacity > c.capacity {
		c.capacity = capacity
	}
}

// Len returns the number of cached circuits.
func (c *CompileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// CacheStats is a point-in-time snapshot of a CompileCache's cumulative
// counters plus its current occupancy.
type CacheStats struct {
	// Hits and Misses count lookups; Hits = IdenticalHits + RenamedHits.
	Hits, Misses int64
	// IdenticalHits are hits whose formula matched the cached one
	// byte-for-byte (or keying was non-canonical); RenamedHits were served
	// through a nontrivial canonical relabeling.
	IdenticalHits, RenamedHits int64
	// Evictions counts entries displaced by the LRU capacity bound.
	Evictions int64
	// Invalidations counts entries dropped by Invalidate (fact updates).
	Invalidations int64
	// Len and Capacity describe current occupancy.
	Len, Capacity int
}

// HitRate returns Hits / (Hits + Misses), or 0 for an untouched cache.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Sub returns the counter deltas s − o (occupancy fields are kept from s),
// for per-query or per-phase reporting from two snapshots.
func (s CacheStats) Sub(o CacheStats) CacheStats {
	return CacheStats{
		Hits:          s.Hits - o.Hits,
		Misses:        s.Misses - o.Misses,
		IdenticalHits: s.IdenticalHits - o.IdenticalHits,
		RenamedHits:   s.RenamedHits - o.RenamedHits,
		Evictions:     s.Evictions - o.Evictions,
		Invalidations: s.Invalidations - o.Invalidations,
		Len:           s.Len,
		Capacity:      s.Capacity,
	}
}

// Stats returns a snapshot of the cache's hit/miss/eviction counters.
func (c *CompileCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		IdenticalHits: c.hits - c.renamed,
		RenamedHits:   c.renamed,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Len:           c.order.Len(),
		Capacity:      c.capacity,
	}
}

// Invalidate evicts every cached circuit populated under the given owner
// tag whose supporting fact set mentions any of the given variables (fact
// IDs) and returns how many entries were dropped. After a fact update, only
// compilations whose lineage actually involved the touched facts can be
// stale working set; entries populated from unrelated lineages — other
// owners' databases with colliding fact IDs, or renamed-isomorphic entries
// serving other fact-ID universes — survive.
func (c *CompileCache) Invalidate(owner uint64, vars ...int) int {
	if len(vars) == 0 {
		return 0
	}
	touched := make(map[int]bool, len(vars))
	for _, v := range vars {
		touched[v] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if e.owner == owner {
			for _, v := range e.support {
				if touched[v] {
					c.order.Remove(el)
					delete(c.entries, e.key)
					dropped++
					break
				}
			}
		}
		el = next
	}
	c.invalidations += int64(dropped)
	return dropped
}

// CanonicalStats splits the cumulative hit count into identical hits (the
// caller's formula matched the cached one byte-for-byte, or keying was
// non-canonical) and renamed hits (served through a nontrivial canonical
// relabeling), alongside the miss count.
func (c *CompileCache) CanonicalStats() (identical, renamed, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits - c.renamed, c.renamed, c.misses
}

// noteRenamed records that a hit required relabeling the cached circuit.
func (c *CompileCache) noteRenamed() {
	c.mu.Lock()
	c.renamed++
	c.mu.Unlock()
}

func (c *CompileCache) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.entries[key]
	if !found {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

func (c *CompileCache) put(key string, root *Node, nodes int, fromCanon map[int]int, support []int, owner uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.root, e.nodes, e.fromCanon, e.support, e.owner = root, nodes, fromCanon, support, owner
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, root: root, nodes: nodes, fromCanon: fromCanon, support: support, owner: owner})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// acquire implements single-flight: the first caller for a missing key
// becomes the leader (leader == true) and must call release when done,
// success or failure; concurrent callers get leader == false and a wait
// function that blocks until the leader releases, after which they re-check
// the cache (and, if the leader failed, contend to become the next leader).
func (c *CompileCache) acquire(key string) (leader bool, wait func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if wg, ok := c.inflight[key]; ok {
		return false, wg.Wait
	}
	wg := new(sync.WaitGroup)
	wg.Add(1)
	c.inflight[key] = wg
	return true, nil
}

func (c *CompileCache) release(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inflight[key].Done()
	delete(c.inflight, key)
}

// formulaSignature renders a formula byte-identically for cross-call cache
// lookups under Options.NoCanonicalCache: the normalized clause-set
// signature (the same form the component cache uses), the
// compilation-affecting options (branching order and component-cache
// ablation — a hit must return a circuit compiled under the configuration
// the caller asked to measure), plus the auxiliary-variable markers. The
// "b:" prefix keeps this keyspace disjoint from canonical signatures in a
// shared cache.
func formulaSignature(clauses []cnf.Clause, f *cnf.Formula, opts Options) string {
	var sb strings.Builder
	sb.WriteString("b:")
	sb.WriteString(cacheKey(clauses))
	sb.WriteByte('|')
	sb.WriteString(strconv.Itoa(int(opts.Order)))
	sb.WriteByte('|')
	sb.WriteString(strconv.FormatBool(opts.DisableCache))
	sb.WriteByte('#')
	// Aux variables are assigned densely above the reserved range by the
	// Tseytin transformation; recording the boundary and count is enough to
	// distinguish bookkeeping without sorting the whole set.
	minAux, maxAux, numAux := 0, 0, 0
	for v := range f.Aux {
		if numAux == 0 || v < minAux {
			minAux = v
		}
		if v > maxAux {
			maxAux = v
		}
		numAux++
	}
	sb.WriteString(strconv.Itoa(minAux))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(maxAux))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(numAux))
	return sb.String()
}
