package dnnf

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cnf"
)

// CompileCache is a bounded, signature-keyed, cross-call LRU cache of
// compiled d-DNNF roots. Where the per-compilation component cache (see
// compiler.cache) only lives for one Compile call, a CompileCache is shared
// across calls — and across goroutines — so repeated explanations of shared
// lineage (the same output tuple re-explained, or distinct tuples whose
// provenance Tseytin-encodes to the same CNF) reuse the compiled circuit
// instead of recompiling it from scratch.
//
// Keys are the canonical clause-set signature extended with the formula's
// auxiliary-variable set, so two formulas with equal clauses but different
// Tseytin bookkeeping never alias. Values are immutable node DAGs; sharing
// them between concurrent readers is safe because Nodes are never mutated
// after construction.
type CompileCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element
	inflight map[string]*sync.WaitGroup
	hits     int64
	misses   int64
}

type cacheEntry struct {
	key  string
	root *Node
	// nodes is the builder allocation count of the original compilation —
	// the same quantity Options.MaxNodes bounds — so budget checks on warm
	// hits reproduce the cold outcome instead of measuring the (smaller)
	// final DAG.
	nodes int
}

// DefaultCompileCacheSize is the capacity used when a knob asks for "a
// cache" without saying how big (CacheSize == 0 at the facade).
const DefaultCompileCacheSize = 256

// NewCompileCache returns an empty LRU cache holding at most capacity
// compiled circuits; capacity ≤ 0 is treated as DefaultCompileCacheSize.
func NewCompileCache(capacity int) *CompileCache {
	if capacity <= 0 {
		capacity = DefaultCompileCacheSize
	}
	return &CompileCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*sync.WaitGroup),
	}
}

// Grow raises the cache capacity to at least capacity (it never shrinks a
// live cache, so concurrent users keep their working sets).
func (c *CompileCache) Grow(capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if capacity > c.capacity {
		c.capacity = capacity
	}
}

// Len returns the number of cached circuits.
func (c *CompileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *CompileCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *CompileCache) get(key string) (root *Node, nodes int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.entries[key]
	if !found {
		c.misses++
		return nil, 0, false
	}
	c.hits++
	c.order.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.root, e.nodes, true
}

func (c *CompileCache) put(key string, root *Node, nodes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.root, e.nodes = root, nodes
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, root: root, nodes: nodes})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// acquire implements single-flight: the first caller for a missing key
// becomes the leader (leader == true) and must call release when done,
// success or failure; concurrent callers get leader == false and a wait
// function that blocks until the leader releases, after which they re-check
// the cache (and, if the leader failed, contend to become the next leader).
func (c *CompileCache) acquire(key string) (leader bool, wait func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if wg, ok := c.inflight[key]; ok {
		return false, wg.Wait
	}
	wg := new(sync.WaitGroup)
	wg.Add(1)
	c.inflight[key] = wg
	return true, nil
}

func (c *CompileCache) release(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inflight[key].Done()
	delete(c.inflight, key)
}

// formulaSignature renders a formula canonically for cross-call cache
// lookups: the normalized clause-set signature (the same canonical form the
// component cache uses), the compilation-affecting options (branching order
// and component-cache ablation — a hit must return a circuit compiled under
// the configuration the caller asked to measure), plus the
// auxiliary-variable markers.
func formulaSignature(clauses []cnf.Clause, f *cnf.Formula, opts Options) string {
	var sb strings.Builder
	sb.WriteString(cacheKey(clauses))
	sb.WriteByte('|')
	sb.WriteString(strconv.Itoa(int(opts.Order)))
	sb.WriteByte('|')
	sb.WriteString(strconv.FormatBool(opts.DisableCache))
	sb.WriteByte('#')
	// Aux variables are assigned densely above the reserved range by the
	// Tseytin transformation; recording the boundary and count is enough to
	// distinguish bookkeeping without sorting the whole set.
	minAux, maxAux, numAux := 0, 0, 0
	for v := range f.Aux {
		if numAux == 0 || v < minAux {
			minAux = v
		}
		if v > maxAux {
			maxAux = v
		}
		numAux++
	}
	sb.WriteString(strconv.Itoa(minAux))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(maxAux))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(numAux))
	return sb.String()
}
