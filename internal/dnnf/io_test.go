package dnnf

import (
	"bytes"
	"context"
	"math/big"
	"math/rand"
	"strings"
	"testing"
)

func TestNNFRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 60; trial++ {
		f := randomCNF(rng, 1+rng.Intn(6), rng.Intn(8))
		n, _, err := Compile(context.Background(), f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteNNF(&buf, n); err != nil {
			t.Fatal(err)
		}
		back, err := ParseNNF(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		universe := f.Vars()
		a, b := CountModels(n, universe), CountModels(back, universe)
		if a.Cmp(b) != 0 {
			t.Fatalf("trial %d: round trip changed model count: %v vs %v", trial, a, b)
		}
		// Pointwise check on small universes.
		if len(universe) <= 10 {
			assign := make(map[int]bool)
			for mask := 0; mask < 1<<len(universe); mask++ {
				for i, v := range universe {
					assign[v] = mask&(1<<i) != 0
				}
				if Eval(n, assign) != Eval(back, assign) {
					t.Fatalf("trial %d: round trip changed semantics", trial)
				}
			}
		}
	}
}

func TestNNFFormat(t *testing.T) {
	b := NewBuilder()
	n := b.Decision(1, b.Lit(2), b.Lit(3))
	var buf bytes.Buffer
	if err := WriteNNF(&buf, n); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "nnf ") {
		t.Errorf("missing header: %q", out)
	}
	for _, want := range []string{"L 1", "L -1", "L 2", "L 3", "O 1 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestNNFConstants(t *testing.T) {
	b := NewBuilder()
	for _, n := range []*Node{b.True(), b.False()} {
		var buf bytes.Buffer
		if err := WriteNNF(&buf, n); err != nil {
			t.Fatal(err)
		}
		back, err := ParseNNF(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.Kind != n.Kind {
			t.Errorf("constant round trip: got %v, want %v", back.Kind, n.Kind)
		}
	}
}

func TestParseNNFErrors(t *testing.T) {
	cases := []string{
		"",                         // empty
		"L 1\n",                    // literal before header
		"nnf 1 0 1\nL 0\n",         // zero literal
		"nnf 1 0 1\nX 1\n",         // unknown line
		"nnf 2 1 1\nL 1\nA 1 5\n",  // forward/out-of-range reference
		"nnf 2 1 1\nL 1\nA 2 0\n",  // count mismatch
		"nnf 2 1 1\nL 1\nO -1 1 0", // bad decision var
		"nnf 1 0\n",                // malformed header
	}
	for _, in := range cases {
		if _, err := ParseNNF(strings.NewReader(in)); err == nil {
			t.Errorf("ParseNNF(%q) succeeded, want error", in)
		}
	}
}

func TestParseNNFCountsPreserved(t *testing.T) {
	// A hand-written nnf: (x1 ∧ x2) ∨ (¬x1 ∧ x3) with decision on 1.
	in := `nnf 7 6 3
L 1
L 2
L -1
L 3
A 2 0 1
A 2 2 3
O 1 2 4 5
`
	n, err := ParseNNF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := CountModels(n, []int{1, 2, 3}); got.Cmp(big.NewInt(4)) != 0 {
		t.Errorf("models = %v, want 4", got)
	}
	if err := Validate(n, 8); err != nil {
		t.Error(err)
	}
}
