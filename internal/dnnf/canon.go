package dnnf

// Canonical (rename-invariant) formula labeling for the cross-call compile
// cache. Real query workloads produce many tuples whose lineages are
// isomorphic modulo variable renaming — the same join pattern instantiated
// over different facts Tseytin-encodes to structurally identical CNFs with
// different variable numbers. Keying the CompileCache on a canonical
// labeling of the clause hypergraph lets all of them share one compilation;
// the cached circuit is relabeled (one linear pass) to each caller's
// variables on a hit.
//
// The labeling is iterative Weisfeiler–Leman-style color refinement on the
// clause–variable incidence graph with polarity-typed edges, followed by
// ordered individualization when refinement alone does not separate all
// variables. The scheme is sound by construction: the cache key is the fully
// relabeled clause set itself, so two formulas share a key only if they are
// literally identical after their respective renamings — i.e. genuinely
// isomorphic. Refinement quality only affects completeness (how many
// isomorphic pairs are detected), never correctness.

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/cnf"
)

// fnv-1a constants, used for all color hashing.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Initial colors. Auxiliary (Tseytin) variables must never alias original
// ones, so the two classes start separated.
const (
	colorOriginal uint64 = 0x9e3779b97f4a7c15
	colorAux      uint64 = 0xc2b2ae3d27d4eb4f
)

func mix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

func hashSeq(seed uint64, xs []uint64) uint64 {
	h := mix(fnvOffset, seed)
	for _, x := range xs {
		h = mix(h, x)
	}
	return h
}

// occurrence is one literal occurrence of a variable, as seen from the
// variable's side of the incidence graph.
type occurrence struct {
	clause   int
	positive bool
}

// maxIndividualizationRounds bounds the individualization loop: each round
// re-refines after separating one variable, so a formula with one large
// orbit of interchangeable variables (a wide symmetric ∨, say) would
// otherwise cost O(n) refinements. Past the cap, residual ties break by
// original variable id — still sound (the key is the relabeled clause set),
// and still rename-invariant for genuinely automorphic ties, where every
// choice renders the same clause set.
const maxIndividualizationRounds = 64

// canonicalForm computes a deterministic canonical variable labeling of the
// clause set and renders the relabeled clauses as a cache key. toCanon maps
// every occurring variable to its canonical index in 1..n. Renaming the
// input formula's variables by any bijection yields the same key (and
// composable toCanon maps) whenever refinement separates all variables —
// which it does for the non-regular incidence structures Tseytin encodings
// produce; residual ties are individualized in color order, which can only
// cost cache hits, never correctness.
//
// check, when non-nil, is invoked once per refinement and individualization
// round so compile budgets and caller cancellation reach canonicalization
// too; its error aborts the labeling.
func canonicalForm(clauses []cnf.Clause, isAux func(int) bool, check func() error) (toCanon map[int]int, key string, err error) {
	varIdx := make(map[int]int)
	var vars []int
	for _, cl := range clauses {
		for _, l := range cl {
			v := l.Var()
			if _, ok := varIdx[v]; !ok {
				varIdx[v] = len(vars)
				vars = append(vars, v)
			}
		}
	}
	n := len(vars)

	occs := make([][]occurrence, n)
	for ci, cl := range clauses {
		for _, l := range cl {
			i := varIdx[l.Var()]
			occs[i] = append(occs[i], occurrence{clause: ci, positive: l.Positive()})
		}
	}

	color := make([]uint64, n)
	for i, v := range vars {
		if isAux(v) {
			color[i] = colorAux
		} else {
			color[i] = colorOriginal
		}
	}

	distinct := func() int {
		seen := make(map[uint64]bool, n)
		for _, c := range color {
			seen[c] = true
		}
		return len(seen)
	}

	// refine runs WL iterations until the number of color classes stops
	// growing. Each round hashes every clause from its members' colors and
	// polarities, then every variable from its own color and its typed
	// clause neighborhood.
	clauseSig := make([]uint64, len(clauses))
	refine := func() error {
		prev := distinct()
		for round := 0; round < n; round++ {
			if check != nil {
				if err := check(); err != nil {
					return err
				}
			}
			for ci, cl := range clauses {
				sig := make([]uint64, len(cl))
				for j, l := range cl {
					s := color[varIdx[l.Var()]]
					if l.Positive() {
						s = mix(s, 1)
					} else {
						s = mix(s, 2)
					}
					sig[j] = s
				}
				sort.Slice(sig, func(a, b int) bool { return sig[a] < sig[b] })
				clauseSig[ci] = hashSeq(uint64(len(cl)), sig)
			}
			next := make([]uint64, n)
			for i := range vars {
				sig := make([]uint64, len(occs[i]))
				for j, oc := range occs[i] {
					s := clauseSig[oc.clause]
					if oc.positive {
						s = mix(s, 1)
					} else {
						s = mix(s, 2)
					}
					sig[j] = s
				}
				sort.Slice(sig, func(a, b int) bool { return sig[a] < sig[b] })
				next[i] = hashSeq(color[i], sig)
			}
			copy(color, next)
			cur := distinct()
			if cur == prev || cur == n {
				return nil
			}
			prev = cur
		}
		return nil
	}

	// byColor orders variable indices by (color, original id). The color is
	// the rename-invariant part; the original id only breaks ties inside a
	// color class, where members are interchangeable whenever they are
	// genuine automorphisms.
	byColor := func() []int {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ia, ib := order[a], order[b]
			if color[ia] != color[ib] {
				return color[ia] < color[ib]
			}
			return vars[ia] < vars[ib]
		})
		return order
	}

	// Individualize until the partition is discrete: give the first member
	// of the first non-singleton class (in color order) a fresh color and
	// re-refine. Each round separates at least one variable; the round cap
	// bounds the worst case on large symmetric orbits, past which byColor's
	// original-id tie-break orders the remainder.
	if err := refine(); err != nil {
		return nil, "", err
	}
	salt := uint64(0)
	for round := 0; distinct() < n && round < maxIndividualizationRounds; round++ {
		if check != nil {
			if err := check(); err != nil {
				return nil, "", err
			}
		}
		order := byColor()
		for k := 0; k < n; {
			j := k
			for j < n && color[order[j]] == color[order[k]] {
				j++
			}
			if j-k > 1 {
				salt++
				color[order[k]] = mix(color[order[k]], 0xdeadbeef+salt)
				break
			}
			k = j
		}
		if err := refine(); err != nil {
			return nil, "", err
		}
	}

	order := byColor()
	toCanon = make(map[int]int, n)
	for rank, i := range order {
		toCanon[vars[i]] = rank + 1
	}

	relabeled := make([]cnf.Clause, len(clauses))
	for i, cl := range clauses {
		rc := make(cnf.Clause, len(cl))
		for j, l := range cl {
			nv := cnf.Lit(toCanon[l.Var()])
			if !l.Positive() {
				nv = -nv
			}
			rc[j] = nv
		}
		sort.Slice(rc, func(a, b int) bool {
			va, vb := rc[a].Var(), rc[b].Var()
			if va != vb {
				return va < vb
			}
			return rc[a] < rc[b]
		})
		relabeled[i] = rc
	}
	return toCanon, cacheKey(relabeled), nil
}

// canonicalSignature builds the cross-call cache key for canonical keying:
// the canonical clause rendering, the compilation-affecting options, and the
// canonical positions of the auxiliary variables (so isomorphism is required
// to respect Tseytin bookkeeping). The "c:" prefix keeps canonical and
// byte-identical keyspaces disjoint within one shared cache.
func canonicalSignature(canonKey string, toCanon map[int]int, f *cnf.Formula, opts Options) string {
	auxCanon := make([]int, 0, len(f.Aux))
	for v, canon := range toCanon {
		if f.Aux[v] {
			auxCanon = append(auxCanon, canon)
		}
	}
	sort.Ints(auxCanon)
	var sb strings.Builder
	sb.WriteString("c:")
	sb.WriteString(canonKey)
	sb.WriteByte('|')
	sb.WriteString(strconv.Itoa(int(opts.Order)))
	sb.WriteByte('|')
	sb.WriteString(strconv.FormatBool(opts.DisableCache))
	sb.WriteByte('#')
	for i, a := range auxCanon {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(a))
	}
	return sb.String()
}

// Relabel rebuilds the d-DNNF rooted at n in builder b with every variable v
// replaced by m[v]; variables absent from m are kept. The mapping must be a
// bijection on the circuit's variables — renaming then preserves determinism
// and decomposability, so the result is a valid d-DNNF of the renamed
// formula. Cost is one linear pass over the DAG.
func Relabel(b *Builder, n *Node, m map[int]int) *Node {
	memo := make(map[int]*Node)
	var rec func(*Node) *Node
	rec = func(nd *Node) *Node {
		if r, ok := memo[nd.id]; ok {
			return r
		}
		var r *Node
		switch nd.Kind {
		case KindTrue:
			r = b.True()
		case KindFalse:
			r = b.False()
		case KindLit:
			v := nd.Lit
			neg := false
			if v < 0 {
				v, neg = -v, true
			}
			if nv, ok := m[v]; ok {
				v = nv
			}
			if neg {
				r = b.Lit(-v)
			} else {
				r = b.Lit(v)
			}
		case KindAnd:
			cs := make([]*Node, len(nd.Children))
			for i, c := range nd.Children {
				cs[i] = rec(c)
			}
			r = b.And(cs...)
		case KindOr:
			cs := make([]*Node, len(nd.Children))
			for i, c := range nd.Children {
				cs[i] = rec(c)
			}
			dec := nd.Decision
			if dec != 0 {
				if nv, ok := m[dec]; ok {
					dec = nv
				}
			}
			r = b.orSlice(dec, cs)
		}
		memo[nd.id] = r
		return r
	}
	return rec(n)
}
