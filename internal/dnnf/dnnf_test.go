package dnnf

import (
	"context"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/cnf"
)

func TestBuilderFolding(t *testing.T) {
	b := NewBuilder()
	x := b.Lit(1)
	if got := b.And(x, b.True()); got != x {
		t.Error("And(x, true) != x")
	}
	if got := b.And(x, b.False()); got != b.False() {
		t.Error("And(x, false) != false")
	}
	if got := b.Or(x, b.False()); got != x {
		t.Error("Or(x, false) != x")
	}
	if got := b.Or(); got != b.False() {
		t.Error("Or() != false")
	}
	if got := b.And(); got != b.True() {
		t.Error("And() != true")
	}
}

func TestBuilderRejectsNonDecomposable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("And over overlapping supports did not panic")
		}
	}()
	b := NewBuilder()
	b.And(b.Lit(1), b.Lit(-1))
}

func TestDecisionNode(t *testing.T) {
	b := NewBuilder()
	// f = (x1 ∧ x2) ∨ (¬x1 ∧ x3)
	n := b.Decision(1, b.Lit(2), b.Lit(3))
	if n.Kind != KindOr || n.Decision != 1 {
		t.Fatalf("Decision produced %v with decision %d", n.Kind, n.Decision)
	}
	cases := []struct {
		a    map[int]bool
		want bool
	}{
		{map[int]bool{1: true, 2: true}, true},
		{map[int]bool{1: true, 2: false, 3: true}, false},
		{map[int]bool{1: false, 3: true}, true},
		{map[int]bool{1: false, 3: false}, false},
	}
	for _, c := range cases {
		if Eval(n, c.a) != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.a, !c.want, c.want)
		}
	}
	if err := Validate(n, 10); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestCountModelsSmall(t *testing.T) {
	b := NewBuilder()
	// (x1 ∧ x2) ∨ (¬x1 ∧ x3): models over {1,2,3}:
	// 110, 111, 001, 011 → 4.
	n := b.Decision(1, b.Lit(2), b.Lit(3))
	if got := CountModels(n, []int{1, 2, 3}); got.Cmp(big.NewInt(4)) != 0 {
		t.Errorf("CountModels = %v, want 4", got)
	}
	// Over a larger universe each extra variable doubles the count.
	if got := CountModels(n, []int{1, 2, 3, 4, 5}); got.Cmp(big.NewInt(16)) != 0 {
		t.Errorf("CountModels over 5 vars = %v, want 16", got)
	}
}

func TestWMC(t *testing.T) {
	b := NewBuilder()
	n := b.Decision(1, b.Lit(2), b.Lit(3))
	half := big.NewRat(1, 2)
	// With all probabilities 1/2 over support {1,2,3}: 4/8 = 1/2.
	got := WMC(n, func(v int) *big.Rat { return half })
	if got.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("WMC = %v, want 1/2", got)
	}
	// Pr[x1]=1 forces x2: expect 1·Pr[x2] = 1/3 with Pr[x2]=1/3.
	got = WMC(n, func(v int) *big.Rat {
		switch v {
		case 1:
			return big.NewRat(1, 1)
		case 2:
			return big.NewRat(1, 3)
		default:
			return half
		}
	})
	if got.Cmp(big.NewRat(1, 3)) != 0 {
		t.Errorf("WMC = %v, want 1/3", got)
	}
}

// TestCompileAgainstBruteForce compiles random CNFs and cross-checks the
// model count, the d-D structural properties, and pointwise equivalence.
func TestCompileAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 120; trial++ {
		f := randomCNF(rng, 1+rng.Intn(6), rng.Intn(8))
		n, stats, err := Compile(context.Background(), f, Options{})
		if err != nil {
			t.Fatalf("trial %d: compile: %v (%v)", trial, err, stats)
		}
		if err := Validate(n, 12); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		universe := f.Vars()
		want := bruteCount(f, universe)
		got := CountModels(n, universe)
		if got.Cmp(big.NewInt(int64(want))) != 0 {
			t.Fatalf("trial %d: model count %v, want %d\nformula: %v", trial, got, want, f.Clauses)
		}
		// Pointwise check.
		assign := make(map[int]bool)
		for mask := 0; mask < 1<<len(universe); mask++ {
			for i, v := range universe {
				assign[v] = mask&(1<<i) != 0
			}
			if Eval(n, assign) != f.Eval(assign) {
				t.Fatalf("trial %d: compiled circuit differs from CNF at %v", trial, assign)
			}
		}
	}
}

func TestCompileUnsat(t *testing.T) {
	f := &cnf.Formula{Clauses: []cnf.Clause{{1}, {-1}}, Aux: map[int]bool{}, MaxVar: 1}
	n, _, err := Compile(context.Background(), f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != KindFalse {
		t.Errorf("unsat CNF compiled to %v, want false", n.Kind)
	}
}

func TestCompileEmptyAndTautology(t *testing.T) {
	empty := &cnf.Formula{Aux: map[int]bool{}}
	n, _, err := Compile(context.Background(), empty, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != KindTrue {
		t.Errorf("empty CNF compiled to %v, want true", n.Kind)
	}
	taut := &cnf.Formula{Clauses: []cnf.Clause{{1, -1}}, Aux: map[int]bool{}, MaxVar: 1}
	n, _, err = Compile(context.Background(), taut, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != KindTrue {
		t.Errorf("tautology compiled to %v, want true", n.Kind)
	}
}

func TestCompileLexicographicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		f := randomCNF(rng, 1+rng.Intn(5), rng.Intn(6))
		universe := f.Vars()
		want := bruteCount(f, universe)
		n, _, err := Compile(context.Background(), f, Options{Order: OrderLexicographic})
		if err != nil {
			t.Fatal(err)
		}
		if got := CountModels(n, universe); got.Cmp(big.NewInt(int64(want))) != 0 {
			t.Fatalf("trial %d: lexicographic order count %v, want %d", trial, got, want)
		}
	}
}

func TestCompileWithoutCacheMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 40; trial++ {
		f := randomCNF(rng, 1+rng.Intn(5), rng.Intn(6))
		universe := f.Vars()
		a, _, err := Compile(context.Background(), f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := Compile(context.Background(), f, Options{DisableCache: true})
		if err != nil {
			t.Fatal(err)
		}
		ca, cb := CountModels(a, universe), CountModels(b, universe)
		if ca.Cmp(cb) != 0 {
			t.Fatalf("trial %d: cache on/off disagree: %v vs %v", trial, ca, cb)
		}
	}
}

func TestCompileNodeBudget(t *testing.T) {
	// MaxNodes 1 is below even the builder's two constant nodes, so any
	// nonempty compilation must report budget exhaustion.
	f := &cnf.Formula{Clauses: []cnf.Clause{{1, 2}, {-1, 2}}, Aux: map[int]bool{}, MaxVar: 2}
	_, _, err := Compile(context.Background(), f, Options{MaxNodes: 1})
	if err != ErrNodeBudget {
		t.Errorf("err = %v, want ErrNodeBudget", err)
	}
}

func TestConditionPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 40; trial++ {
		f := randomCNF(rng, 1+rng.Intn(5), rng.Intn(6))
		n, _, err := Compile(context.Background(), f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		universe := f.Vars()
		if len(universe) == 0 {
			continue
		}
		v := universe[rng.Intn(len(universe))]
		val := rng.Intn(2) == 0
		b := NewBuilder()
		cond := Condition(b, n, map[int]bool{v: val})
		assign := make(map[int]bool)
		for mask := 0; mask < 1<<len(universe); mask++ {
			for i, u := range universe {
				assign[u] = mask&(1<<i) != 0
			}
			if assign[v] != val {
				continue
			}
			if Eval(cond, assign) != Eval(n, assign) {
				t.Fatalf("trial %d: conditioning on %d=%v changed semantics", trial, v, val)
			}
		}
	}
}

// TestEliminateAux verifies Lemma 4.6 end to end: circuit → Tseytin →
// compile → eliminate, then compare against the original circuit pointwise
// and check the d-D structural properties.
func TestEliminateAux(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 100; trial++ {
		cb := circuit.NewBuilder()
		c := randomBoolCircuit(rng, cb, 1+rng.Intn(5), 3)
		orig := circuit.Vars(c)
		f := cnf.Tseytin(c)
		compiled, _, err := Compile(context.Background(), f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		reduced := EliminateAux(compiled, func(v int) bool { return f.Aux[v] })
		for _, v := range reduced.Vars() {
			if f.Aux[v] {
				t.Fatalf("trial %d: auxiliary variable %d survives elimination", trial, v)
			}
		}
		if err := Validate(reduced, 12); err != nil {
			t.Fatalf("trial %d: reduced circuit invalid: %v", trial, err)
		}
		assign := make(map[int]bool)
		cassign := make(map[circuit.Var]bool)
		for mask := 0; mask < 1<<len(orig); mask++ {
			for i, v := range orig {
				val := mask&(1<<i) != 0
				assign[int(v)] = val
				cassign[v] = val
			}
			if Eval(reduced, assign) != circuit.Eval(c, cassign) {
				t.Fatalf("trial %d: reduced circuit differs from original at %v", trial, assign)
			}
		}
	}
}

func TestSizeHelpers(t *testing.T) {
	b := NewBuilder()
	n := b.Decision(1, b.Lit(2), b.Lit(3))
	if Size(n) <= 0 || NumEdges(n) <= 0 {
		t.Errorf("Size = %d NumEdges = %d; want positive", Size(n), NumEdges(n))
	}
}

// --- helpers ---

func bruteCount(f *cnf.Formula, universe []int) int {
	count := 0
	assign := make(map[int]bool)
	for mask := 0; mask < 1<<len(universe); mask++ {
		for i, v := range universe {
			assign[v] = mask&(1<<i) != 0
		}
		if f.Eval(assign) {
			count++
		}
	}
	return count
}

func randomCNF(rng *rand.Rand, nVars, nClauses int) *cnf.Formula {
	f := &cnf.Formula{Aux: map[int]bool{}, MaxVar: nVars}
	for i := 0; i < nClauses; i++ {
		width := 1 + rng.Intn(3)
		clause := make(cnf.Clause, 0, width)
		for j := 0; j < width; j++ {
			v := 1 + rng.Intn(nVars)
			l := cnf.Lit(v)
			if rng.Intn(2) == 0 {
				l = -l
			}
			clause = append(clause, l)
		}
		f.Clauses = append(f.Clauses, clause)
	}
	return f
}

// randomBoolCircuit builds a random circuit over variables 1..nVars with
// negations at the leaves.
func randomBoolCircuit(rng *rand.Rand, b *circuit.Builder, nVars, depth int) *circuit.Node {
	if depth == 0 || rng.Intn(4) == 0 {
		v := b.Variable(circuit.Var(1 + rng.Intn(nVars)))
		if rng.Intn(4) == 0 {
			return b.Not(v)
		}
		return v
	}
	n := 2 + rng.Intn(2)
	cs := make([]*circuit.Node, n)
	for i := range cs {
		cs[i] = randomBoolCircuit(rng, b, nVars, depth-1)
	}
	if rng.Intn(2) == 0 {
		return b.And(cs...)
	}
	return b.Or(cs...)
}
