package dnnf

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

// multiComponentCNF builds `blocks` disjoint random CNF blocks (widths 2-3),
// giving the top-level compile call that many independent components to fan
// out.
func multiComponentCNF(rng *rand.Rand, blocks, varsPer, clausesPer int) *cnf.Formula {
	return blockCNF(rng, blocks, varsPer, clausesPer, func() int { return 2 + rng.Intn(2) })
}

// hardMultiComponentCNF is the width-3-only variant: without width-2 clauses
// the blocks keep real search work, which the parallel benchmark needs.
func hardMultiComponentCNF(rng *rand.Rand, blocks, varsPer, clausesPer int) *cnf.Formula {
	return blockCNF(rng, blocks, varsPer, clausesPer, func() int { return 3 })
}

func blockCNF(rng *rand.Rand, blocks, varsPer, clausesPer int, width func() int) *cnf.Formula {
	f := &cnf.Formula{Aux: map[int]bool{}}
	for b := 0; b < blocks; b++ {
		base := b * varsPer
		for i := 0; i < clausesPer; i++ {
			w := width()
			clause := make(cnf.Clause, 0, w)
			for j := 0; j < w; j++ {
				v := base + 1 + rng.Intn(varsPer)
				l := cnf.Lit(v)
				if rng.Intn(2) == 0 {
					l = -l
				}
				clause = append(clause, l)
			}
			f.Clauses = append(f.Clauses, clause)
		}
	}
	f.MaxVar = blocks * varsPer
	return f
}

// TestParallelCompileMatchesSequential is the race-coverage contract for the
// parallel compiler: at several worker counts (including 1), compilation of
// random multi-component CNFs produces circuits semantically equal to the
// sequential ones — same model counts and pointwise-equal evaluation.
// Running under -race also exercises the concurrent builder and caches.
func TestParallelCompileMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 25; trial++ {
		f := multiComponentCNF(rng, 1+rng.Intn(4), 4, 5)
		universe := f.Vars()
		serial, _, err := Compile(context.Background(), f, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := CountModels(serial, universe)
		for _, workers := range []int{1, 2, 4, 8} {
			par, _, err := Compile(context.Background(), f, Options{Workers: workers})
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			if err := Validate(par, len(universe)); err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			if got := CountModels(par, universe); got.Cmp(want) != 0 {
				t.Fatalf("trial %d workers=%d: model count %v, want %v", trial, workers, got, want)
			}
			if len(universe) <= 16 {
				assign := make(map[int]bool)
				for mask := 0; mask < 1<<len(universe); mask++ {
					for i, v := range universe {
						assign[v] = mask&(1<<i) != 0
					}
					if Eval(par, assign) != Eval(serial, assign) {
						t.Fatalf("trial %d workers=%d: circuits diverge at %v", trial, workers, assign)
					}
				}
			}
		}
	}
}

// TestWorkersOneIsDeterministic pins the workers=1 guarantee: the sequential
// path allocates node IDs in a fixed order, so two runs serialize to
// byte-identical NNF files. Speculation and portfolio mode are inert at
// workers=1 (no spawn tokens, fewer workers than racers), so enabling them
// must leave the bytes identical too.
func TestWorkersOneIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	variants := []Options{
		{Workers: 1},
		{Workers: 1, Speculate: true},
		{Workers: 1, Portfolio: true},
		{Workers: 1, Speculate: true, Portfolio: true},
	}
	for trial := 0; trial < 10; trial++ {
		f := multiComponentCNF(rng, 3, 4, 5)
		var want []byte
		for vi, opts := range variants {
			for run := 0; run < 2; run++ {
				n, stats, err := Compile(context.Background(), f, opts)
				if err != nil {
					t.Fatal(err)
				}
				if stats.SpeculatedDecisions != 0 || stats.PortfolioRacers != 0 {
					t.Fatalf("trial %d variant %d: speculation/portfolio engaged at workers=1: %+v", trial, vi, stats)
				}
				var buf bytes.Buffer
				if err := WriteNNF(&buf, n); err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want = buf.Bytes()
				} else if !bytes.Equal(want, buf.Bytes()) {
					t.Fatalf("trial %d variant %d run %d: workers=1 circuit diverges from plain sequential", trial, vi, run)
				}
			}
		}
	}
}

// TestParallelCompileBudgetsStillEnforced checks that the node budget fires
// under parallel compilation too (the check reads the shared builder's
// atomic allocation count).
func TestParallelCompileBudgetsStillEnforced(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	f := multiComponentCNF(rng, 4, 6, 14)
	_, _, err := Compile(context.Background(), f, Options{Workers: 4, MaxNodes: 3})
	if err != ErrNodeBudget {
		t.Fatalf("err = %v, want ErrNodeBudget", err)
	}
}

func TestNormalizeClauseFastPath(t *testing.T) {
	sorted := cnf.Clause{-1, 2, 5}
	norm, taut := normalizeClause(sorted)
	if taut {
		t.Fatal("sorted clause misreported as tautology")
	}
	if &norm[0] != &sorted[0] {
		t.Error("already-normalized clause was copied")
	}

	unsorted := cnf.Clause{5, -1, 2}
	norm, taut = normalizeClause(unsorted)
	if taut || len(norm) != 3 || &norm[0] == &unsorted[0] {
		t.Errorf("unsorted clause: norm=%v taut=%v (copy expected)", norm, taut)
	}
	if norm[0] != -1 || norm[1] != 2 || norm[2] != 5 {
		t.Errorf("unsorted clause normalized to %v", norm)
	}

	if _, taut := normalizeClause(cnf.Clause{-3, 3}); !taut {
		t.Error("adjacent ¬v, v not detected as tautology")
	}
	if _, taut := normalizeClause(cnf.Clause{3, 1, -3}); !taut {
		t.Error("out-of-order tautology not detected")
	}
	norm, taut = normalizeClause(cnf.Clause{2, 2, 1})
	if taut || len(norm) != 2 || norm[0] != 1 || norm[1] != 2 {
		t.Errorf("duplicate literal clause normalized to %v (taut=%v)", norm, taut)
	}
	// Adjacent duplicates in otherwise sorted order must still dedup (the
	// fast path may not return them as-is).
	norm, taut = normalizeClause(cnf.Clause{1, 2, 2})
	if taut || len(norm) != 2 {
		t.Errorf("sorted clause with duplicate normalized to %v (taut=%v)", norm, taut)
	}
}

// BenchmarkNormalizeClause is the satellite's benchmark guard: the fast path
// must make pre-sorted clauses (the common case on parser round-trips)
// allocation-free.
func BenchmarkNormalizeClause(b *testing.B) {
	sorted := cnf.Clause{1, 2, -3, 4, 5, 6, -7}
	unsorted := cnf.Clause{6, 2, -7, 5, 1, -3, 4}
	b.Run("sorted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, taut := normalizeClause(sorted); taut {
				b.Fatal("tautology")
			}
		}
	})
	b.Run("unsorted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, taut := normalizeClause(unsorted); taut {
				b.Fatal("tautology")
			}
		}
	})
}

// BenchmarkCompileParallel measures the component fan-out on a CNF with four
// independent hard components, serial versus several worker counts. On a
// multi-core machine the 4-worker configuration should approach a 4x
// speedup; on a single-CPU machine it documents the (small) overhead.
func BenchmarkCompileParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(101))
	f := hardMultiComponentCNF(rng, 4, 26, 65)
	universe := f.Vars()
	serial, _, err := Compile(context.Background(), f, Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	want := CountModels(serial, universe)
	for _, workers := range []int{1, 2, 4} {
		par, _, err := Compile(context.Background(), f, Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if got := CountModels(par, universe); got.Cmp(want) != 0 {
			b.Fatalf("workers=%d: model count %v, want %v", workers, got, want)
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := Compile(context.Background(), f, Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
