package tpch

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/engine"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	if a.NumFacts() != b.NumFacts() {
		t.Fatalf("same seed produced %d vs %d facts", a.NumFacts(), b.NumFacts())
	}
	for _, rel := range a.RelationNames() {
		fa, fb := a.Relation(rel).Facts(), b.Relation(rel).Facts()
		if len(fa) != len(fb) {
			t.Fatalf("%s: %d vs %d facts", rel, len(fa), len(fb))
		}
		for i := range fa {
			if !fa[i].Tuple.Equal(fb[i].Tuple) {
				t.Fatalf("%s[%d]: %v vs %v", rel, i, fa[i].Tuple, fb[i].Tuple)
			}
		}
	}
}

func TestGenerateSchema(t *testing.T) {
	d := Generate(DefaultConfig())
	want := []string{"region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem"}
	names := d.RelationNames()
	if len(names) != len(want) {
		t.Fatalf("relations = %v", names)
	}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("relation %d = %s, want %s", i, names[i], w)
		}
	}
}

func TestEndogenousRoles(t *testing.T) {
	d := Generate(DefaultConfig())
	endoRels := map[string]bool{"lineitem": true, "orders": true, "partsupp": true}
	for _, rel := range d.RelationNames() {
		for _, f := range d.Relation(rel).Facts() {
			if f.Endogenous != endoRels[rel] {
				t.Fatalf("%s fact endogenous=%v, want %v", rel, f.Endogenous, endoRels[rel])
			}
		}
	}
}

func TestForeignKeyIntegrity(t *testing.T) {
	d := Generate(DefaultConfig())
	orders := map[int64]bool{}
	for _, f := range d.Relation("orders").Facts() {
		orders[f.Tuple[0].AsInt()] = true
	}
	parts := map[int64]bool{}
	for _, f := range d.Relation("part").Facts() {
		parts[f.Tuple[0].AsInt()] = true
	}
	supps := map[int64]bool{}
	for _, f := range d.Relation("supplier").Facts() {
		supps[f.Tuple[0].AsInt()] = true
	}
	custs := map[int64]bool{}
	for _, f := range d.Relation("customer").Facts() {
		custs[f.Tuple[0].AsInt()] = true
	}
	for _, f := range d.Relation("lineitem").Facts() {
		if !orders[f.Tuple[0].AsInt()] {
			t.Fatalf("lineitem references missing order %v", f.Tuple[0])
		}
		if !parts[f.Tuple[1].AsInt()] {
			t.Fatalf("lineitem references missing part %v", f.Tuple[1])
		}
		if !supps[f.Tuple[2].AsInt()] {
			t.Fatalf("lineitem references missing supplier %v", f.Tuple[2])
		}
	}
	for _, f := range d.Relation("orders").Facts() {
		if !custs[f.Tuple[1].AsInt()] {
			t.Fatalf("order references missing customer %v", f.Tuple[1])
		}
	}
}

func TestDatesValid(t *testing.T) {
	d := Generate(DefaultConfig())
	check := func(v int64, what string) {
		y, m, day := v/10000, (v/100)%100, v%100
		if y < 1992 || y > 1999 || m < 1 || m > 12 || day < 1 || day > 31 {
			t.Fatalf("%s date %d is not a valid YYYYMMDD", what, v)
		}
	}
	for _, f := range d.Relation("orders").Facts() {
		check(f.Tuple[4].AsInt(), "order")
	}
	for _, f := range d.Relation("lineitem").Facts() {
		ship := f.Tuple[7].AsInt()
		check(ship, "ship")
	}
}

func TestShipAfterOrder(t *testing.T) {
	d := Generate(DefaultConfig())
	orderDate := map[int64]int64{}
	for _, f := range d.Relation("orders").Facts() {
		orderDate[f.Tuple[0].AsInt()] = f.Tuple[4].AsInt()
	}
	for _, f := range d.Relation("lineitem").Facts() {
		if f.Tuple[7].AsInt() <= orderDate[f.Tuple[0].AsInt()] {
			t.Fatalf("lineitem shipped (%d) on or before its order date (%d)",
				f.Tuple[7].AsInt(), orderDate[f.Tuple[0].AsInt()])
		}
	}
}

func TestScaled(t *testing.T) {
	base := DefaultConfig()
	half := base.Scaled(0.5)
	if half.Customers != base.Customers/2 {
		t.Errorf("Scaled(0.5).Customers = %d, want %d", half.Customers, base.Customers/2)
	}
	tiny := base.Scaled(0.0001)
	if tiny.Customers < 1 || tiny.Parts < 1 || tiny.Suppliers < 1 {
		t.Errorf("Scaled floor broken: %+v", tiny)
	}
	small := Generate(half)
	full := Generate(base)
	if len(small.Relation("lineitem").Facts()) >= len(full.Relation("lineitem").Facts()) {
		t.Error("scaling did not reduce lineitem count")
	}
}

func TestAllQueriesEvaluate(t *testing.T) {
	d := Generate(DefaultConfig())
	answered := 0
	for _, bq := range Queries() {
		b := circuit.NewBuilder()
		answers, err := engine.Eval(d, bq.Q, b, engine.Options{Mode: engine.ModeEndogenous})
		if err != nil {
			t.Fatalf("%s: %v", bq.Name, err)
		}
		if len(answers) > 0 {
			answered++
		}
		// Lineage of every answer must mention only endogenous facts.
		for _, a := range answers {
			for _, v := range circuit.Vars(a.Lineage) {
				f := d.Fact(db.FactID(v))
				if f == nil || !f.Endogenous {
					t.Fatalf("%s: lineage references non-endogenous fact %d", bq.Name, v)
				}
			}
		}
	}
	// The generator is biased so that (nearly) all suite queries produce
	// output at the default scale; require at least 6 of 8.
	if answered < 6 {
		t.Errorf("only %d/%d queries produced output at default scale", answered, len(Queries()))
	}
}

func TestQueryMetadata(t *testing.T) {
	for _, bq := range Queries() {
		if bq.Q.NumAtoms() < 2 && bq.Name != "q19" {
			t.Errorf("%s: suspiciously few atoms (%d)", bq.Name, bq.Q.NumAtoms())
		}
		if bq.Q.NumFilters() == 0 {
			t.Errorf("%s: no filter conditions", bq.Name)
		}
	}
}
