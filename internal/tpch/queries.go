package tpch

import (
	"repro/internal/query"
)

// BenchQuery is one entry of the benchmark suite: a named query with the
// paper's per-query metadata (Table 1's #joined tables and #filter columns
// are derived from the query structure itself).
type BenchQuery struct {
	Name string
	Q    *query.UCQ
}

// Queries returns the de-aggregated TPC-H query suite mirroring the eight
// representative TPC-H rows of Table 1 (Q3, Q5, Q7, Q10, Q11, Q16, Q18,
// Q19). Aggregations and nesting are removed as in the paper; each query
// keeps its join graph and selection predicates and projects a join
// attribute so that output tuples have multi-witness provenance.
func Queries() []BenchQuery {
	return []BenchQuery{
		{
			// Q3 (shipping priority): BUILDING-segment customers with
			// orders placed before a date and lines shipped after it.
			Name: "q3",
			Q: query.MustParse(`
				q(ok) :- customer(ck, cn, cnk, 'BUILDING', cb),
				         orders(ok, ck, os, tp, od, op),
				         lineitem(ok, pk, sk, ln, qty, ep, disc, sd, sm, rf),
				         od < 19970101, sd > 19950101
			`),
		},
		{
			// Q5 (local supplier volume): customer and supplier in the same
			// ASIA nation.
			Name: "q5",
			Q: query.MustParse(`
				q(nn) :- customer(ck, cn, nk, seg, cb),
				         orders(ok, ck, os, tp, od, op),
				         lineitem(ok, pk, sk, ln, qty, ep, disc, sd, sm, rf),
				         supplier(sk, sn, nk, sb),
				         nation(nk, nn, rk),
				         region(rk, 'ASIA'),
				         od >= 19940101, od < 19970101
			`),
		},
		{
			// Q7 (volume shipping): goods shipped from a FRANCE supplier to
			// a GERMANY customer.
			Name: "q7",
			Q: query.MustParse(`
				q(sn) :- supplier(sk, sn, snk, sb),
				         lineitem(ok, pk, sk, ln, qty, ep, disc, sd, sm, rf),
				         orders(ok, ck, os, tp, od, op),
				         customer(ck, cn, cnk, seg, cb),
				         nation(snk, 'FRANCE', rk1),
				         nation(cnk, 'GERMANY', rk2)
			`),
		},
		{
			// Q9 (product-type profit, de-aggregated): nations whose
			// suppliers shipped promo-brand parts, projected on nation.
			// One output tuple per nation aggregates every qualifying
			// lineitem of that nation's suppliers, so per-tuple provenance
			// grows linearly with the lineitem table — these are the
			// paper's "difficult outputs" of Figure 5b.
			Name: "q9",
			Q: query.MustParse(`
				q(nn) :- supplier(sk, sn, nk, sb),
				         nation(nk, nn, rk),
				         lineitem(ok, pk, sk, ln, qty, ep, disc, sd, sm, rf),
				         orders(ok, ck, os, tp, od, op),
				         part(pk, pn, br, ty, sz, ct),
				         ty ~ 'PROMO'
			`),
		},
		{
			// Q10 (returned items): customers whose lines were returned.
			Name: "q10",
			Q: query.MustParse(`
				q(ck) :- customer(ck, cn, nk, seg, cb),
				         orders(ok, ck, os, tp, od, op),
				         lineitem(ok, pk, sk, ln, qty, ep, disc, sd, sm, 'R'),
				         nation(nk, nn, rk),
				         od >= 19930701, od < 19950101
			`),
		},
		{
			// Q11 (important stock): parts supplied from GERMANY.
			Name: "q11",
			Q: query.MustParse(`
				q(pk) :- partsupp(pk, sk, aq, sc),
				         supplier(sk, sn, nk, sb),
				         nation(nk, 'GERMANY', rk)
			`),
		},
		{
			// Q16 (parts/supplier relationship): medium-size promo parts
			// and their suppliers.
			Name: "q16",
			Q: query.MustParse(`
				q(br) :- partsupp(pk, sk, aq, sc),
				         part(pk, pn, br, ty, sz, ct),
				         supplier(sk, sn, nk, sb),
				         ty ~ 'PROMO', sz >= 10, sz <= 40
			`),
		},
		{
			// Q18 (large-volume customers): big-quantity lines of large
			// orders.
			Name: "q18",
			Q: query.MustParse(`
				q(ck) :- customer(ck, cn, nk, seg, cb),
				         orders(ok, ck, os, tp, od, op),
				         lineitem(ok, pk, sk, ln, qty, ep, disc, sd, sm, rf),
				         qty > 40, tp > 200000
			`),
		},
		{
			// Q19 (discounted revenue): three brand/container/quantity
			// bands as a union, Boolean output (the paper reports a single
			// output tuple for Q19).
			Name: "q19",
			Q: query.MustParse(`
				q() :- lineitem(ok, pk, sk, ln, qty, ep, disc, sd, 'AIR', rf), part(pk, pn, 'Brand#11', ty, sz, ct), ct ^ 'SM', qty >= 1, qty <= 40, sz <= 30
				q() :- lineitem(ok, pk, sk, ln, qty, ep, disc, sd, 'AIR REG', rf), part(pk, pn, 'Brand#22', ty, sz, ct), ct ^ 'MED', qty >= 1, qty <= 45, sz <= 35
				q() :- lineitem(ok, pk, sk, ln, qty, ep, disc, sd, 'SHIP', rf), part(pk, pn, 'Brand#33', ty, sz, ct), ct ^ 'LG', qty >= 5, qty <= 50, sz <= 40
			`),
		},
	}
}
