// Package tpch provides a deterministic synthetic generator for the TPC-H
// schema and the de-nested, de-aggregated query suite used in the paper's
// evaluation (Section 6: queries based on TPC-H with nested queries and
// aggregations removed, keeping the SPJU core that ProvSQL supports).
//
// The generator substitutes for the 1.4 GB official dataset: it produces the
// same eight-table star schema with foreign-key-correlated values at a
// configurable scale, so the lineage shapes that drive the paper's
// algorithms (multi-way joins fanning out from lineitem) are preserved at
// laptop scale. Fact roles follow the paper's setup: the large fact tables
// (lineitem, orders) are endogenous, dimension tables exogenous.
package tpch

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/db"
)

// Config controls the size and shape of the generated instance.
type Config struct {
	// Customers is the number of customer facts; orders, lineitems scale
	// from it.
	Customers int
	// OrdersPerCustomer is the mean number of orders per customer.
	OrdersPerCustomer int
	// LinesPerOrder is the maximum number of lineitems per order (actual
	// count is 1..LinesPerOrder).
	LinesPerOrder int
	// Parts and Suppliers size the product side.
	Parts     int
	Suppliers int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultConfig returns a small instance suitable for tests and quick
// benchmarks (hundreds of lineitems).
func DefaultConfig() Config {
	return Config{
		Customers:         30,
		OrdersPerCustomer: 3,
		LinesPerOrder:     4,
		Parts:             40,
		Suppliers:         10,
		Seed:              42,
	}
}

// Scaled multiplies the table cardinalities of the config by factor
// (minimum 1 row each), used by the Figure 5 scalability sweep.
func (c Config) Scaled(factor float64) Config {
	scale := func(n int) int {
		v := int(float64(n) * factor)
		if v < 1 {
			v = 1
		}
		return v
	}
	c.Customers = scale(c.Customers)
	c.Parts = scale(c.Parts)
	c.Suppliers = scale(c.Suppliers)
	return c
}

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nations = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ETHIOPIA", 0}, {"KENYA", 0},
	{"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1}, {"UNITED STATES", 1},
	{"CHINA", 2}, {"INDIA", 2}, {"JAPAN", 2}, {"INDONESIA", 2}, {"VIETNAM", 2},
	{"FRANCE", 3}, {"GERMANY", 3}, {"ROMANIA", 3}, {"RUSSIA", 3}, {"UNITED KINGDOM", 3},
	{"EGYPT", 4}, {"IRAN", 4}, {"IRAQ", 4}, {"JORDAN", 4}, {"SAUDI ARABIA", 4},
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var shipmodes = []string{"AIR", "AIR REG", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
var containers = []string{"SM CASE", "SM BOX", "SM PACK", "MED BAG", "MED BOX", "MED PKG", "LG CASE", "LG BOX", "LG PACK"}
var types = []string{"STANDARD TIN", "STANDARD BRASS", "ECONOMY TIN", "ECONOMY BRASS", "PROMO TIN", "PROMO BRASS", "SMALL PLATED", "MEDIUM PLATED"}
var returnFlags = []string{"R", "A", "N"}

// brands is restricted to the five "doubled" brands so the Q19 brand
// constants have useful selectivity at small scales.
var brands = []string{"Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"}

// epoch anchors order dates; dates are stored as YYYYMMDD integers so the
// engine's integer comparisons order them correctly.
var epoch = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)

func dateInt(t time.Time) int64 {
	return int64(t.Year())*10000 + int64(t.Month())*100 + int64(t.Day())
}

func nationIndex(name string) int {
	for i, n := range nations {
		if n.name == name {
			return i
		}
	}
	panic("tpch: unknown nation " + name)
}

// Generate builds the database. The fact tables — lineitem, orders, and
// partsupp — are endogenous; dimension facts are exogenous.
func Generate(cfg Config) *db.Database {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := db.New()
	d.CreateRelation("region", "regionkey", "name")
	d.CreateRelation("nation", "nationkey", "name", "regionkey")
	d.CreateRelation("supplier", "suppkey", "name", "nationkey", "acctbal")
	d.CreateRelation("part", "partkey", "name", "brand", "type", "size", "container")
	d.CreateRelation("partsupp", "partkey", "suppkey", "availqty", "supplycost")
	d.CreateRelation("customer", "custkey", "name", "nationkey", "mktsegment", "acctbal")
	d.CreateRelation("orders", "orderkey", "custkey", "orderstatus", "totalprice", "orderdate", "orderpriority")
	d.CreateRelation("lineitem", "orderkey", "partkey", "suppkey", "linenumber",
		"quantity", "extendedprice", "discount", "shipdate", "shipmode", "returnflag")

	for i, r := range regions {
		d.MustInsert("region", false, db.Int(int64(i)), db.String(r))
	}
	for i, n := range nations {
		d.MustInsert("nation", false, db.Int(int64(i)), db.String(n.name), db.Int(int64(n.region)))
	}
	// Nation choices are biased toward the constants the query suite
	// selects on (FRANCE and GERMANY for suppliers; GERMANY and the ASIA
	// nations for customers) so that small instances still produce output
	// tuples for every query — the experiments need lineage, not realism
	// of the marginals.
	franceIdx, germanyIdx := nationIndex("FRANCE"), nationIndex("GERMANY")
	asia := []int{nationIndex("CHINA"), nationIndex("INDIA"), nationIndex("JAPAN")}
	supplierNation := func() int64 {
		if rng.Intn(2) == 0 {
			return int64([]int{franceIdx, germanyIdx}[rng.Intn(2)])
		}
		return int64(rng.Intn(len(nations)))
	}
	customerNation := func() int64 {
		switch rng.Intn(4) {
		case 0:
			return int64(germanyIdx)
		case 1:
			return int64(asia[rng.Intn(len(asia))])
		default:
			return int64(rng.Intn(len(nations)))
		}
	}
	for s := 1; s <= cfg.Suppliers; s++ {
		d.MustInsert("supplier", false,
			db.Int(int64(s)),
			db.String(fmt.Sprintf("Supplier#%03d", s)),
			db.Int(supplierNation()),
			db.Int(int64(rng.Intn(10000))))
	}
	for p := 1; p <= cfg.Parts; p++ {
		d.MustInsert("part", false,
			db.Int(int64(p)),
			db.String(fmt.Sprintf("Part#%04d", p)),
			db.String(brands[rng.Intn(len(brands))]),
			db.String(types[rng.Intn(len(types))]),
			db.Int(int64(1+rng.Intn(50))),
			db.String(containers[rng.Intn(len(containers))]))
	}
	// Each part has 1-2 suppliers (partsupp). Like lineitem and orders,
	// partsupp is a fact table and is endogenous: Q11 and Q16 attribute
	// contributions to its rows.
	for p := 1; p <= cfg.Parts; p++ {
		nSupp := 1 + rng.Intn(2)
		for s := 0; s < nSupp; s++ {
			d.MustInsert("partsupp", true,
				db.Int(int64(p)),
				db.Int(int64(1+rng.Intn(cfg.Suppliers))),
				db.Int(int64(1+rng.Intn(1000))),
				db.Int(int64(1+rng.Intn(100))))
		}
	}
	for c := 1; c <= cfg.Customers; c++ {
		d.MustInsert("customer", false,
			db.Int(int64(c)),
			db.String(fmt.Sprintf("Customer#%04d", c)),
			db.Int(customerNation()),
			db.String(segments[rng.Intn(len(segments))]),
			db.Int(int64(rng.Intn(10000))))
	}
	orderKey := 0
	for c := 1; c <= cfg.Customers; c++ {
		nOrders := 1 + rng.Intn(2*cfg.OrdersPerCustomer)
		for o := 0; o < nOrders; o++ {
			orderKey++
			ordered := epoch.AddDate(0, 0, rng.Intn(7*365))
			date := dateInt(ordered)
			d.MustInsert("orders", true,
				db.Int(int64(orderKey)),
				db.Int(int64(c)),
				db.String([]string{"O", "F", "P"}[rng.Intn(3)]),
				db.Int(int64(1000+rng.Intn(400000))),
				db.Int(date),
				db.String(priorities[rng.Intn(len(priorities))]))
			nLines := 1 + rng.Intn(cfg.LinesPerOrder)
			for l := 1; l <= nLines; l++ {
				ship := dateInt(ordered.AddDate(0, 0, 1+rng.Intn(90)))
				d.MustInsert("lineitem", true,
					db.Int(int64(orderKey)),
					db.Int(int64(1+rng.Intn(cfg.Parts))),
					db.Int(int64(1+rng.Intn(cfg.Suppliers))),
					db.Int(int64(l)),
					db.Int(int64(1+rng.Intn(50))),
					db.Int(int64(100+rng.Intn(90000))),
					db.Int(int64(rng.Intn(11))),
					db.Int(ship),
					db.String(shipmodes[rng.Intn(len(shipmodes))]),
					db.String(returnFlags[rng.Intn(len(returnFlags))]))
			}
		}
	}
	return d
}
