// Package parallel provides the worker-pool primitive used to fan the
// explanation pipeline out across CPU cores: per-answer lineage compilation
// and per-fact Shapley computation are both embarrassingly parallel, and both
// must produce results that are indistinguishable from the serial order.
//
// The contract is deliberately narrow: tasks are indexed 0..n-1, each task
// writes only to its own slot, and error reporting is deterministic (the
// error of the lowest-indexed failing task wins, regardless of completion
// order). Cancellation is cooperative via context.Context.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values ≤ 0 mean "one worker per
// available CPU" (GOMAXPROCS); positive values are taken as-is.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Limit is a concurrency budget for recursive divide-and-conquer fan-out,
// where ForEach's flat task model does not fit: a fixed pool of spawn tokens
// is shared by every recursion level, so however deep the subdivision goes,
// at most `extra` helper goroutines run beyond the calling one. Whichever
// branch point forks next claims idle capacity — work distribution by
// spawn-time stealing rather than by queueing.
//
// A nil *Limit is valid and never spawns, so "sequential" needs no special
// casing at call sites.
type Limit struct {
	slots chan struct{}
}

// NewLimit returns a budget of extra helper goroutines; extra ≤ 0 yields nil
// (purely sequential execution).
func NewLimit(extra int) *Limit {
	if extra <= 0 {
		return nil
	}
	return &Limit{slots: make(chan struct{}, extra)}
}

// Go runs fn on a fresh goroutine if a spawn token is idle, registering it
// with wg and returning true; with no token (or a nil Limit) it returns false
// without running fn, and the caller runs the work inline. Go never blocks.
// The caller must wg.Wait before reading anything fn writes.
func (l *Limit) Go(wg *sync.WaitGroup, fn func()) bool {
	if l == nil {
		return false
	}
	select {
	case l.slots <- struct{}{}:
	default:
		return false
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { <-l.slots }()
		fn()
	}()
	return true
}

// ForEach runs fn(worker, i) for every i in [0, n) across at most `workers`
// goroutines (clamped to n; values ≤ 0 mean GOMAXPROCS). The worker argument
// identifies the executing worker in [0, workers) so callers can keep
// per-worker scratch state (e.g. a dnnf.Builder) without locking.
//
// Tasks are claimed in index order. When a task fails or ctx is cancelled,
// no new tasks start; in-flight tasks run to completion. The returned error
// is deterministic: the error of the lowest-indexed failing task, or ctx's
// error if cancellation struck first. With workers == 1 the loop degenerates
// to a plain serial for-loop on the calling goroutine.
func ForEach(ctx context.Context, n, workers int, fn func(worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64 // next task index to claim
		stop    atomic.Bool  // set on first failure or cancellation
		wg      sync.WaitGroup
		mu      sync.Mutex
		errIdx  = n // index of the lowest-indexed failing task
		taskErr error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, taskErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	done := ctx.Done()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				select {
				case <-done:
					stop.Store(true)
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(worker, i); err != nil {
					fail(i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if taskErr != nil {
		return taskErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}
