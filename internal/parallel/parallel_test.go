package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 100
			var counts [n]atomic.Int32
			err := ForEach(context.Background(), n, workers, func(_, i int) error {
				counts[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Errorf("index %d visited %d times", i, got)
				}
			}
		})
	}
}

func TestForEachWorkerIDsAreDistinctSlots(t *testing.T) {
	const n, workers = 200, 4
	var perWorker [workers]atomic.Int32
	err := ForEach(context.Background(), n, workers, func(w, _ int) error {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of range", w)
		}
		perWorker[w].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := int32(0)
	for i := range perWorker {
		total += perWorker[i].Load()
	}
	if total != n {
		t.Errorf("total tasks = %d, want %d", total, n)
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(context.Background(), 0, 8, func(_, _ int) error {
		t.Error("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachSerialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := ForEach(context.Background(), 10, 1, func(_, i int) error {
		ran = append(ran, i)
		if i == 3 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(ran) != 4 {
		t.Errorf("ran %v, want indices 0..3", ran)
	}
}

func TestForEachParallelReportsLowestIndexedError(t *testing.T) {
	// Every task fails; whatever interleaving occurs, task 0 always runs
	// (it is claimed first), so its error must win.
	err := ForEach(context.Background(), 50, 8, func(_, i int) error {
		return fmt.Errorf("task %d", i)
	})
	if err == nil || err.Error() != "task 0" {
		t.Fatalf("err = %v, want task 0", err)
	}
}

func TestForEachCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ForEach(ctx, 100, workers, func(_, _ int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want Canceled", workers, err)
		}
		// A pre-cancelled context admits no new tasks on the serial path
		// and at most a benign handful on the parallel one (each worker
		// observes ctx before claiming).
		if workers == 1 && ran.Load() != 0 {
			t.Errorf("serial path ran %d tasks after cancellation", ran.Load())
		}
	}
}

func TestForEachCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEach(ctx, 1000, 4, func(_, i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Errorf("cancellation did not stop the loop (ran %d)", n)
	}
}

func TestLimitNilNeverSpawns(t *testing.T) {
	var l *Limit
	var wg sync.WaitGroup
	if l.Go(&wg, func() { t.Error("nil Limit ran fn") }) {
		t.Error("nil Limit claimed to spawn")
	}
	if NewLimit(0) != nil || NewLimit(-3) != nil {
		t.Error("NewLimit(≤0) must return nil")
	}
}

func TestLimitCapsConcurrentSpawns(t *testing.T) {
	const extra = 3
	l := NewLimit(extra)
	var wg sync.WaitGroup
	release := make(chan struct{})
	spawned := 0
	for i := 0; i < 10; i++ {
		if l.Go(&wg, func() { <-release }) {
			spawned++
		}
	}
	if spawned != extra {
		t.Errorf("spawned %d goroutines, want %d", spawned, extra)
	}
	close(release)
	wg.Wait()
	// Tokens are returned on completion: capacity is reusable.
	var wg2 sync.WaitGroup
	if !l.Go(&wg2, func() {}) {
		t.Error("token not returned after completion")
	}
	wg2.Wait()
}

func TestLimitRecursiveFanOutCompletes(t *testing.T) {
	// A binary recursion sharing one small Limit must finish all leaves no
	// matter which branch points win the spawn race.
	l := NewLimit(2)
	var leaves atomic.Int32
	var rec func(depth int)
	rec = func(depth int) {
		if depth == 0 {
			leaves.Add(1)
			return
		}
		var inner sync.WaitGroup
		if !l.Go(&inner, func() { rec(depth - 1) }) {
			rec(depth - 1)
		}
		rec(depth - 1)
		inner.Wait()
	}
	rec(6)
	if n := leaves.Load(); n != 64 {
		t.Errorf("visited %d leaves, want 64", n)
	}
}

func TestWorkersKnob(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("positive knob not respected")
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Error("non-positive knob must resolve to ≥1 worker")
	}
}
