// Package query defines the query language of the engine: unions of
// conjunctive queries (UCQs) with comparison filters — the
// Select-Project-Join-Union fragment the paper's implementation supports —
// plus a small datalog-style text parser and the hierarchy test for
// self-join-free conjunctive queries.
package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/db"
)

// Term is an argument of an atom: either a variable or a constant.
type Term struct {
	// Var is the variable name; empty for constants.
	Var string
	// Const is the constant value; meaningful only when Var is empty.
	Const db.Value
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v db.Value) Term { return Term{Const: v} }

// CInt returns an integer constant term.
func CInt(v int64) Term { return C(db.Int(v)) }

// CStr returns a string constant term.
func CStr(v string) Term { return C(db.String(v)) }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	if t.Const.Kind() == db.KindString {
		return fmt.Sprintf("%q", t.Const.AsString())
	}
	return t.Const.String()
}

// Atom is a relational atom R(t1, ..., tk).
type Atom struct {
	Relation string
	Args     []Term
}

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Relation + "(" + strings.Join(parts, ", ") + ")"
}

// Vars returns the distinct variables of the atom in order of appearance.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range a.Args {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

// Op is a comparison operator used in filters.
type Op uint8

// Filter operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	// OpContains matches string containment (a simplified LIKE '%s%').
	OpContains
	// OpPrefix matches string prefixes (LIKE 's%').
	OpPrefix
)

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpContains:
		return "~"
	case OpPrefix:
		return "^"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Filter is a comparison between a variable and either a constant or a
// second variable (Right.Var non-empty).
type Filter struct {
	Left  string
	Op    Op
	Right Term
}

// Eval evaluates the filter given a variable binding.
func (f Filter) Eval(binding map[string]db.Value) (bool, error) {
	l, ok := binding[f.Left]
	if !ok {
		return false, fmt.Errorf("query: filter references unbound variable %q", f.Left)
	}
	var r db.Value
	if f.Right.IsVar() {
		r, ok = binding[f.Right.Var]
		if !ok {
			return false, fmt.Errorf("query: filter references unbound variable %q", f.Right.Var)
		}
	} else {
		r = f.Right.Const
	}
	return f.EvalValues(l, r)
}

// EvalValues evaluates the filter's comparison on already-resolved operand
// values. The streaming evaluator resolves variables to registers at plan
// time and calls this directly, skipping the binding-map lookups of Eval.
func (f Filter) EvalValues(l, r db.Value) (bool, error) {
	switch f.Op {
	case OpEq:
		return l.Compare(r) == 0, nil
	case OpNe:
		return l.Compare(r) != 0, nil
	case OpLt:
		return l.Compare(r) < 0, nil
	case OpLe:
		return l.Compare(r) <= 0, nil
	case OpGt:
		return l.Compare(r) > 0, nil
	case OpGe:
		return l.Compare(r) >= 0, nil
	case OpContains:
		return strings.Contains(l.AsString(), r.AsString()), nil
	case OpPrefix:
		return strings.HasPrefix(l.AsString(), r.AsString()), nil
	default:
		return false, fmt.Errorf("query: unknown operator %v", f.Op)
	}
}

func (f Filter) String() string {
	return fmt.Sprintf("%s %s %s", f.Left, f.Op, f.Right)
}

// CQ is a conjunctive query with filters: head variables, a conjunction of
// atoms, and comparison conditions. An empty Head makes the query Boolean.
type CQ struct {
	Head    []string
	Atoms   []Atom
	Filters []Filter
}

func (q CQ) String() string {
	parts := make([]string, 0, len(q.Atoms)+len(q.Filters))
	for _, a := range q.Atoms {
		parts = append(parts, a.String())
	}
	for _, f := range q.Filters {
		parts = append(parts, f.String())
	}
	return fmt.Sprintf("q(%s) :- %s", strings.Join(q.Head, ", "), strings.Join(parts, ", "))
}

// Validate checks that the query is safe: every head and filter variable
// occurs in some atom.
func (q CQ) Validate() error {
	bound := make(map[string]bool)
	for _, a := range q.Atoms {
		for _, v := range a.Vars() {
			bound[v] = true
		}
	}
	for _, h := range q.Head {
		if !bound[h] {
			return fmt.Errorf("query: head variable %q not bound by any atom", h)
		}
	}
	for _, f := range q.Filters {
		if !bound[f.Left] {
			return fmt.Errorf("query: filter variable %q not bound by any atom", f.Left)
		}
		if f.Right.IsVar() && !bound[f.Right.Var] {
			return fmt.Errorf("query: filter variable %q not bound by any atom", f.Right.Var)
		}
	}
	return nil
}

// HasSelfJoin reports whether some relation name appears in two atoms.
func (q CQ) HasSelfJoin() bool {
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		if seen[a.Relation] {
			return true
		}
		seen[a.Relation] = true
	}
	return false
}

// IsHierarchical implements the hierarchy test for self-join-free
// conjunctive queries [Dalvi & Suciu]: for every pair of existential
// variables x, y, the sets of atoms containing x and containing y must be
// nested or disjoint. Hierarchical sjf-CQs are exactly the queries for which
// both PQE and Shapley computation are tractable (the dichotomy of Livshits
// et al.). The result is meaningful only for self-join-free queries.
func (q CQ) IsHierarchical() bool {
	headSet := make(map[string]bool, len(q.Head))
	for _, h := range q.Head {
		headSet[h] = true
	}
	at := make(map[string]map[int]bool)
	for i, a := range q.Atoms {
		for _, v := range a.Vars() {
			if headSet[v] {
				continue // only existential variables participate
			}
			if at[v] == nil {
				at[v] = make(map[int]bool)
			}
			at[v][i] = true
		}
	}
	vars := make([]string, 0, len(at))
	for v := range at {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			x, y := at[vars[i]], at[vars[j]]
			if !nestedOrDisjoint(x, y) {
				return false
			}
		}
	}
	return true
}

func nestedOrDisjoint(x, y map[int]bool) bool {
	inter, onlyX, onlyY := 0, 0, 0
	for a := range x {
		if y[a] {
			inter++
		} else {
			onlyX++
		}
	}
	for a := range y {
		if !x[a] {
			onlyY++
		}
	}
	return inter == 0 || onlyX == 0 || onlyY == 0
}

// UCQ is a union of conjunctive queries with identical head arity.
type UCQ struct {
	Disjuncts []CQ
}

// NewUCQ builds a UCQ, validating arity agreement and safety.
func NewUCQ(disjuncts ...CQ) (*UCQ, error) {
	if len(disjuncts) == 0 {
		return nil, fmt.Errorf("query: UCQ needs at least one disjunct")
	}
	arity := len(disjuncts[0].Head)
	for i, d := range disjuncts {
		if len(d.Head) != arity {
			return nil, fmt.Errorf("query: disjunct %d has head arity %d, want %d", i, len(d.Head), arity)
		}
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("query: disjunct %d: %w", i, err)
		}
	}
	return &UCQ{Disjuncts: disjuncts}, nil
}

// MustUCQ is NewUCQ that panics on error, for statically known queries.
func MustUCQ(disjuncts ...CQ) *UCQ {
	u, err := NewUCQ(disjuncts...)
	if err != nil {
		panic(err)
	}
	return u
}

// Arity returns the head arity.
func (u *UCQ) Arity() int { return len(u.Disjuncts[0].Head) }

// IsBoolean reports whether the query has an empty head.
func (u *UCQ) IsBoolean() bool { return u.Arity() == 0 }

// NumAtoms returns the total number of atoms (joined tables counting
// repetitions) across disjuncts.
func (u *UCQ) NumAtoms() int {
	n := 0
	for _, d := range u.Disjuncts {
		n += len(d.Atoms)
	}
	return n
}

// NumFilters returns the total number of filter conditions plus constant
// selections embedded in atoms.
func (u *UCQ) NumFilters() int {
	n := 0
	for _, d := range u.Disjuncts {
		n += len(d.Filters)
		for _, a := range d.Atoms {
			for _, t := range a.Args {
				if !t.IsVar() {
					n++
				}
			}
		}
	}
	return n
}

func (u *UCQ) String() string {
	parts := make([]string, len(u.Disjuncts))
	for i, d := range u.Disjuncts {
		parts[i] = d.String()
	}
	return strings.Join(parts, "\n")
}
