package query

import (
	"strings"
	"testing"

	"repro/internal/db"
)

func TestParseBasic(t *testing.T) {
	u, err := Parse(`q(x, y) :- R(x, z), S(z, y, 'FR'), y > 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Disjuncts) != 1 {
		t.Fatalf("disjuncts = %d, want 1", len(u.Disjuncts))
	}
	cq := u.Disjuncts[0]
	if len(cq.Head) != 2 || cq.Head[0] != "x" || cq.Head[1] != "y" {
		t.Errorf("head = %v", cq.Head)
	}
	if len(cq.Atoms) != 2 {
		t.Fatalf("atoms = %d, want 2", len(cq.Atoms))
	}
	if cq.Atoms[1].Relation != "S" || len(cq.Atoms[1].Args) != 3 {
		t.Errorf("second atom = %v", cq.Atoms[1])
	}
	if c := cq.Atoms[1].Args[2]; c.IsVar() || c.Const.AsString() != "FR" {
		t.Errorf("constant arg = %v", c)
	}
	if len(cq.Filters) != 1 || cq.Filters[0].Op != OpGt {
		t.Errorf("filters = %v", cq.Filters)
	}
}

func TestParseUnion(t *testing.T) {
	u, err := Parse(`
		q(x) :- R(x)
		q(x) :- S(x)
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Disjuncts) != 2 {
		t.Fatalf("disjuncts = %d, want 2", len(u.Disjuncts))
	}
	if u.Arity() != 1 || u.IsBoolean() {
		t.Errorf("arity = %d, boolean = %v", u.Arity(), u.IsBoolean())
	}
}

func TestParseBoolean(t *testing.T) {
	u, err := Parse(`q() :- R(x, 7)`)
	if err != nil {
		t.Fatal(err)
	}
	if !u.IsBoolean() {
		t.Error("query should be Boolean")
	}
	if got := u.Disjuncts[0].Atoms[0].Args[1]; got.IsVar() || got.Const.AsInt() != 7 {
		t.Errorf("integer constant = %v", got)
	}
}

func TestParseLiterals(t *testing.T) {
	u := MustParse(`q() :- R(x, -5, 2.5, "dq", 'sq')`)
	args := u.Disjuncts[0].Atoms[0].Args
	if args[1].Const.AsInt() != -5 {
		t.Errorf("negative int = %v", args[1])
	}
	if args[2].Const.AsFloat() != 2.5 {
		t.Errorf("float = %v", args[2])
	}
	if args[3].Const.AsString() != "dq" || args[4].Const.AsString() != "sq" {
		t.Errorf("strings = %v %v", args[3], args[4])
	}
}

func TestParseComments(t *testing.T) {
	u, err := Parse(`
		% comment
		# another
		q() :- R(x)
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Disjuncts) != 1 {
		t.Errorf("disjuncts = %d, want 1", len(u.Disjuncts))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                                   // no rules
		`q(x)`,                               // missing body
		`q(x) :- `,                           // empty body
		`q(x) :- R(x`,                        // unterminated atom
		`q(x) :- R('oops`,                    // unterminated string
		`q(x) :- x ?? 3`,                     // bad operator
		`q(x) :- S(y)`,                       // unsafe head
		`q(x) :- R(x), y > 2`,                // unsafe filter
		"q(x) :- R(x)\nq(x,y) :- R(x), R(y)", // arity mismatch across disjuncts
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestFilterEval(t *testing.T) {
	bind := map[string]db.Value{"x": db.Int(5), "y": db.Int(7), "s": db.String("hello")}
	cases := []struct {
		f    Filter
		want bool
	}{
		{Filter{"x", OpEq, CInt(5)}, true},
		{Filter{"x", OpNe, CInt(5)}, false},
		{Filter{"x", OpLt, V("y")}, true},
		{Filter{"y", OpLe, V("x")}, false},
		{Filter{"y", OpGt, CInt(6)}, true},
		{Filter{"x", OpGe, CInt(6)}, false},
		{Filter{"s", OpContains, CStr("ell")}, true},
		{Filter{"s", OpPrefix, CStr("he")}, true},
		{Filter{"s", OpPrefix, CStr("lo")}, false},
	}
	for _, c := range cases {
		got, err := c.f.Eval(bind)
		if err != nil {
			t.Fatalf("%v: %v", c.f, err)
		}
		if got != c.want {
			t.Errorf("%v = %v, want %v", c.f, got, c.want)
		}
	}
	if _, err := (Filter{"z", OpEq, CInt(1)}).Eval(bind); err == nil {
		t.Error("unbound filter variable accepted")
	}
}

func TestIsHierarchical(t *testing.T) {
	cases := []struct {
		text string
		want bool
	}{
		// R(x), S(x,y): at(x) = {R,S} ⊇ at(y) = {S} → hierarchical.
		{`q() :- R(x), S(x, y)`, true},
		// R(x), S(x,y), T(y): at(x) = {R,S}, at(y) = {S,T} overlap without
		// containment → not hierarchical.
		{`q() :- R(x), S(x, y), T(y)`, false},
		// Disjoint variables are fine.
		{`q() :- R(x), T(y)`, true},
		// Head variables are ignored (only existential variables matter):
		// the classic non-hierarchical query becomes hierarchical once its
		// join variables are outputs.
		{`q(x) :- R(x), S(x, y), T(y)`, true},
		{`q(x, y) :- R(x), S(x, y), T(y)`, true},
		// Three-way overlap among existential variables stays rejected.
		{`q() :- R(x, y), S(y, z), T(z, x)`, false},
	}
	for _, c := range cases {
		u := MustParse(c.text)
		if got := u.Disjuncts[0].IsHierarchical(); got != c.want {
			t.Errorf("IsHierarchical(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestHasSelfJoin(t *testing.T) {
	if MustParse(`q() :- R(x), S(x)`).Disjuncts[0].HasSelfJoin() {
		t.Error("no self-join expected")
	}
	if !MustParse(`q() :- R(x, y), R(y, z)`).Disjuncts[0].HasSelfJoin() {
		t.Error("self-join expected")
	}
}

func TestCountingHelpers(t *testing.T) {
	u := MustParse(`
		q(x) :- R(x, 'a'), S(x, y), y > 2
		q(x) :- T(x, 5)
	`)
	if got := u.NumAtoms(); got != 3 {
		t.Errorf("NumAtoms = %d, want 3", got)
	}
	// Filters: y>2 plus constants 'a' and 5.
	if got := u.NumFilters(); got != 3 {
		t.Errorf("NumFilters = %d, want 3", got)
	}
}

func TestStringRoundtrip(t *testing.T) {
	u := MustParse(`q(x) :- R(x, 'a'), x < 5`)
	s := u.String()
	for _, want := range []string{"R(x,", `"a"`, "x < 5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestAtomVars(t *testing.T) {
	a := Atom{Relation: "R", Args: []Term{V("x"), CInt(1), V("y"), V("x")}}
	vars := a.Vars()
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Errorf("Vars = %v, want [x y]", vars)
	}
}
