package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/db"
)

// Parse reads a UCQ in datalog-style syntax. Each non-empty line is one
// rule; all rules must share the same head variables and their union is the
// query. Syntax:
//
//	q(x, y) :- Flights(x, z), Airports(z, 'FR'), y > 3, name ~ 'Inc'
//
// Identifiers are variables; quoted strings and numeric literals are
// constants. Comparisons between a variable and a constant or variable use
// =, !=, <, <=, >, >=, ~ (contains), ^ (prefix). A Boolean query has an
// empty head: q() :- ...
func Parse(text string) (*UCQ, error) {
	// A rule starts at a line containing ":-"; following lines without it
	// are continuations of the same rule.
	var rules []string
	var startLines []int
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Contains(line, ":-") || len(rules) == 0 {
			rules = append(rules, line)
			startLines = append(startLines, lineNo+1)
		} else {
			rules[len(rules)-1] += " " + line
		}
	}
	var disjuncts []CQ
	for i, rule := range rules {
		cq, err := parseRule(rule)
		if err != nil {
			return nil, fmt.Errorf("query: rule at line %d: %w", startLines[i], err)
		}
		disjuncts = append(disjuncts, cq)
	}
	if len(disjuncts) == 0 {
		return nil, fmt.Errorf("query: no rules found")
	}
	return NewUCQ(disjuncts...)
}

// MustParse is Parse that panics on error.
func MustParse(text string) *UCQ {
	u, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return u
}

type tokenizer struct {
	input string
	pos   int
}

func (t *tokenizer) skipSpace() {
	for t.pos < len(t.input) && unicode.IsSpace(rune(t.input[t.pos])) {
		t.pos++
	}
}

func (t *tokenizer) peek() byte {
	t.skipSpace()
	if t.pos >= len(t.input) {
		return 0
	}
	return t.input[t.pos]
}

func (t *tokenizer) eof() bool { return t.peek() == 0 }

func (t *tokenizer) consume(s string) bool {
	t.skipSpace()
	if strings.HasPrefix(t.input[t.pos:], s) {
		t.pos += len(s)
		return true
	}
	return false
}

func (t *tokenizer) expect(s string) error {
	if !t.consume(s) {
		return fmt.Errorf("expected %q at position %d (%q)", s, t.pos, remain(t))
	}
	return nil
}

func remain(t *tokenizer) string {
	r := t.input[t.pos:]
	if len(r) > 20 {
		r = r[:20] + "..."
	}
	return r
}

func (t *tokenizer) ident() (string, error) {
	t.skipSpace()
	start := t.pos
	for t.pos < len(t.input) {
		c := rune(t.input[t.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			t.pos++
		} else {
			break
		}
	}
	if t.pos == start {
		return "", fmt.Errorf("expected identifier at position %d (%q)", start, remain(t))
	}
	return t.input[start:t.pos], nil
}

// term parses a variable, quoted string, or numeric literal.
func (t *tokenizer) term() (Term, error) {
	t.skipSpace()
	if t.pos >= len(t.input) {
		return Term{}, fmt.Errorf("expected term at end of input")
	}
	c := t.input[t.pos]
	switch {
	case c == '\'' || c == '"':
		quote := c
		t.pos++
		start := t.pos
		for t.pos < len(t.input) && t.input[t.pos] != quote {
			t.pos++
		}
		if t.pos >= len(t.input) {
			return Term{}, fmt.Errorf("unterminated string literal")
		}
		s := t.input[start:t.pos]
		t.pos++
		return C(db.String(s)), nil
	case c == '-' || unicode.IsDigit(rune(c)):
		start := t.pos
		t.pos++
		isFloat := false
		for t.pos < len(t.input) {
			d := t.input[t.pos]
			if d == '.' {
				isFloat = true
				t.pos++
				continue
			}
			if !unicode.IsDigit(rune(d)) {
				break
			}
			t.pos++
		}
		lit := t.input[start:t.pos]
		if isFloat {
			f, err := strconv.ParseFloat(lit, 64)
			if err != nil {
				return Term{}, fmt.Errorf("bad float literal %q: %v", lit, err)
			}
			return C(db.Float(f)), nil
		}
		n, err := strconv.ParseInt(lit, 10, 64)
		if err != nil {
			return Term{}, fmt.Errorf("bad integer literal %q: %v", lit, err)
		}
		return C(db.Int(n)), nil
	default:
		name, err := t.ident()
		if err != nil {
			return Term{}, err
		}
		return V(name), nil
	}
}

var operators = []struct {
	text string
	op   Op
}{
	{"!=", OpNe}, {"<=", OpLe}, {">=", OpGe},
	{"=", OpEq}, {"<", OpLt}, {">", OpGt}, {"~", OpContains}, {"^", OpPrefix},
}

func parseRule(line string) (CQ, error) {
	t := &tokenizer{input: line}
	var cq CQ
	// Head: q(x, y) or q()
	if _, err := t.ident(); err != nil {
		return cq, fmt.Errorf("head: %w", err)
	}
	if err := t.expect("("); err != nil {
		return cq, err
	}
	if !t.consume(")") {
		for {
			v, err := t.ident()
			if err != nil {
				return cq, fmt.Errorf("head variable: %w", err)
			}
			cq.Head = append(cq.Head, v)
			if t.consume(")") {
				break
			}
			if err := t.expect(","); err != nil {
				return cq, err
			}
		}
	}
	if err := t.expect(":-"); err != nil {
		return cq, err
	}
	// Body: atoms and filters separated by commas.
	for {
		name, err := t.ident()
		if err != nil {
			return cq, fmt.Errorf("body: %w", err)
		}
		if t.consume("(") {
			atom := Atom{Relation: name}
			if !t.consume(")") {
				for {
					term, err := t.term()
					if err != nil {
						return cq, fmt.Errorf("atom %s: %w", name, err)
					}
					atom.Args = append(atom.Args, term)
					if t.consume(")") {
						break
					}
					if err := t.expect(","); err != nil {
						return cq, err
					}
				}
			}
			cq.Atoms = append(cq.Atoms, atom)
		} else {
			// Filter: name OP term.
			matched := false
			var op Op
			for _, cand := range operators {
				if t.consume(cand.text) {
					op, matched = cand.op, true
					break
				}
			}
			if !matched {
				return cq, fmt.Errorf("expected comparison operator after %q (%q)", name, remain(t))
			}
			rhs, err := t.term()
			if err != nil {
				return cq, fmt.Errorf("filter %s: %w", name, err)
			}
			cq.Filters = append(cq.Filters, Filter{Left: name, Op: op, Right: rhs})
		}
		if t.eof() {
			break
		}
		if err := t.expect(","); err != nil {
			return cq, err
		}
	}
	return cq, nil
}
