package server

import (
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/flights"
	"repro/internal/wire"
)

// checkDegradedResponse asserts every tuple of a served response is a
// well-formed marked approximation: approximate flag, positive sample
// count, and finite ordered confidence bounds around every score.
func checkDegradedResponse(t *testing.T, resp wire.ExplainResponse, label string) {
	t.Helper()
	if len(resp.Tuples) == 0 {
		t.Fatalf("%s: no tuples served", label)
	}
	for _, tup := range resp.Tuples {
		if !tup.Approximate || tup.Method != "approximate" {
			t.Fatalf("%s: method %q approximate=%v, want a marked approximation",
				label, tup.Method, tup.Approximate)
		}
		if tup.Samples <= 0 {
			t.Errorf("%s: %d samples reported", label, tup.Samples)
		}
		for _, f := range tup.Facts {
			if f.CILow == nil || f.CIHigh == nil {
				t.Fatalf("%s: fact %d missing confidence bounds", label, f.ID)
			}
			lo, hi := *f.CILow, *f.CIHigh
			if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) {
				t.Fatalf("%s: fact %d non-finite bounds [%v, %v]", label, f.ID, lo, hi)
			}
			if lo > hi || f.Score < lo || f.Score > hi {
				t.Errorf("%s: fact %d score %v outside CI [%v, %v]", label, f.ID, f.Score, lo, hi)
			}
			if f.ValueRat != "" {
				t.Errorf("%s: approximate fact %d claims exact rational %q", label, f.ID, f.ValueRat)
			}
		}
	}
}

// TestServerStarvedBudgetDegrades boots the server with a starvation node
// budget: every explain — pooled and open-per-request — must answer 200
// with marked approximate values, never a 5xx, and the /v1/stats degraded
// counter must tick per degraded request.
func TestServerStarvedBudgetDegrades(t *testing.T) {
	url, _, _ := newTestServer(t, Config{
		Options: repro.Options{
			Budget: repro.ExplainBudget{MaxNodes: 1, MinSamples: 128},
		},
	})
	req := wire.ExplainRequest{Dataset: "flights", Query: flights.Query().String()}
	degraded := 0
	for _, noPool := range []bool{false, true} {
		req.NoPool = noPool
		var resp wire.ExplainResponse
		status, raw := postJSON(t, url+"/v1/explain", req, &resp)
		if status != http.StatusOK {
			t.Fatalf("nopool=%v: status %d, want 200: %s", noPool, status, raw)
		}
		checkDegradedResponse(t, resp, "starved server")
		degraded++
	}

	rt := routeStats(t, getStats(t, url), "/v1/explain")
	if rt.Degraded < int64(degraded) {
		t.Errorf("degraded counter = %d, want ≥ %d", rt.Degraded, degraded)
	}
	if rt.Errors != 0 {
		t.Errorf("explain route reports %d errors on degraded traffic", rt.Errors)
	}
}

// TestServerPerRequestBudget maps request knobs onto the budget: budget_ms
// with mode=approximate degrades one request on an otherwise exact server,
// and the next unbudgeted request serves exact values again.
func TestServerPerRequestBudget(t *testing.T) {
	url, _, d := newTestServer(t, Config{})
	q := flights.Query().String()

	var resp wire.ExplainResponse
	status, raw := postJSON(t, url+"/v1/explain", wire.ExplainRequest{
		Dataset: "flights", Query: q, Mode: "approximate", MinSamples: 128, Seed: 7,
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("budgeted explain: status %d: %s", status, raw)
	}
	checkDegradedResponse(t, resp, "per-request approximate")

	// Same request, same seed: byte-identical estimates — unless the
	// background upgrade already replaced the cached answer with the exact
	// one, which a budgeted request rightly serves as-is.
	var resp2 wire.ExplainResponse
	if status, raw := postJSON(t, url+"/v1/explain", wire.ExplainRequest{
		Dataset: "flights", Query: q, Mode: "approximate", MinSamples: 128, Seed: 7,
	}, &resp2); status != http.StatusOK {
		t.Fatalf("repeat budgeted explain: status %d: %s", status, raw)
	}
	for i, tup := range resp.Tuples {
		if resp2.Tuples[i].Method == "exact" {
			continue // upgraded in place between the two requests
		}
		for j, f := range tup.Facts {
			g := resp2.Tuples[i].Facts[j]
			if f.Score != g.Score || *f.CILow != *g.CILow || *f.CIHigh != *g.CIHigh {
				t.Fatalf("same seed diverged on fact %d: %v vs %v", f.ID, f, g)
			}
		}
	}

	// Unbudgeted requests on the same pooled session stay exact (the
	// degraded cache entry never leaks into them).
	var exact wire.ExplainResponse
	if status, raw := postJSON(t, url+"/v1/explain", wire.ExplainRequest{
		Dataset: "flights", Query: q,
	}, &exact); status != http.StatusOK {
		t.Fatalf("unbudgeted explain: status %d: %s", status, raw)
	}
	assertServedMatchesCold(t, exact, d, "unbudgeted after degraded")

	// budget_ms alone arms a deadline; a 1 µs budget degrades mid-compile
	// rather than 504ing. Driven through the open-per-request path, since
	// the pooled session rightly serves its cached exact answer within any
	// budget.
	var tiny wire.ExplainResponse
	if status, raw := postJSON(t, url+"/v1/explain", wire.ExplainRequest{
		Dataset: "flights", Query: q, NoPool: true, BudgetMs: 0.001, MinSamples: 64,
	}, &tiny); status != http.StatusOK {
		t.Fatalf("budget_ms explain: status %d: %s", status, raw)
	}
	checkDegradedResponse(t, tiny, "budget_ms deadline")
}

// TestServerBudgetValidation rejects malformed budget knobs with 400s.
func TestServerBudgetValidation(t *testing.T) {
	url, _, _ := newTestServer(t, Config{})
	q := flights.Query().String()
	cases := []struct {
		name string
		req  wire.ExplainRequest
		want string
	}{
		{"bad mode", wire.ExplainRequest{Dataset: "flights", Query: q, Mode: "fast"}, "unknown explain mode"},
		{"negative budget", wire.ExplainRequest{Dataset: "flights", Query: q, BudgetMs: -1}, "budget_ms"},
		{"negative samples", wire.ExplainRequest{Dataset: "flights", Query: q, MinSamples: -1}, "min_samples"},
	}
	for _, c := range cases {
		status, raw := postJSON(t, url+"/v1/explain", c.req, nil)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", c.name, status, raw)
		}
		if !strings.Contains(raw, c.want) {
			t.Errorf("%s: error %q missing %q", c.name, raw, c.want)
		}
	}
}

// TestServerDegradedThenUpgraded: after a degraded pooled explain, the
// session's background upgrade eventually flips the cached answer to exact,
// observable through continued budgeted requests.
func TestServerDegradedThenUpgraded(t *testing.T) {
	url, _, d := newTestServer(t, Config{})
	q := flights.Query().String()
	req := wire.ExplainRequest{Dataset: "flights", Query: q, Mode: "approximate", MinSamples: 64}

	var resp wire.ExplainResponse
	if status, raw := postJSON(t, url+"/v1/explain", req, &resp); status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	checkDegradedResponse(t, resp, "initial degraded")

	// Keep asking with the budget enabled; the background upgrade installs
	// the exact answer, which budgeted requests then serve as-is.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if status, raw := postJSON(t, url+"/v1/explain", req, &resp); status != http.StatusOK {
			t.Fatalf("status %d: %s", status, raw)
		}
		if len(resp.Tuples) > 0 && resp.Tuples[0].Method == "exact" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background upgrade never surfaced through the server")
		}
		time.Sleep(5 * time.Millisecond)
	}
	assertServedMatchesCold(t, resp, d, "upgraded served answer")
}
