package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/flights"
	"repro/internal/wire"
)

// newTestServer starts an httptest server over a fresh flights database and
// returns its base URL plus the server and database.
func newTestServer(t *testing.T, cfg Config) (string, *Server, *repro.Database) {
	t.Helper()
	d, _ := flights.Build()
	if cfg.Datasets == nil {
		cfg.Datasets = map[string]*repro.Database{"flights": d}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return ts.URL, s, d
}

func postJSON(t *testing.T, url string, body, into any) (int, string) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if into != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, into); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, raw)
		}
	}
	return resp.StatusCode, string(raw)
}

// assertServedMatchesCold compares a served explain response to a cold
// repro.Explain on the mirror database: tuple count, method, ranking order,
// and big.Rat-identical exact values.
func assertServedMatchesCold(t *testing.T, resp wire.ExplainResponse, mirror *repro.Database, label string) {
	t.Helper()
	cold, err := repro.Explain(context.Background(), mirror, flights.Query(), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Tuples) != len(cold) {
		t.Fatalf("%s: served %d tuples, cold %d", label, len(resp.Tuples), len(cold))
	}
	for i := range cold {
		got, want := resp.Tuples[i], &cold[i]
		if got.Method != want.Method.String() {
			t.Fatalf("%s: tuple %d method %q, want %q", label, i, got.Method, want.Method)
		}
		if len(got.Facts) != len(want.Ranking) {
			t.Fatalf("%s: tuple %d has %d facts, want %d", label, i, len(got.Facts), len(want.Ranking))
		}
		for j, id := range want.Ranking {
			f := got.Facts[j]
			if f.ID != int64(id) {
				t.Fatalf("%s: tuple %d rank %d is fact #%d, want #%d", label, i, j, f.ID, id)
			}
			if wantRat := want.Values[id].RatString(); f.ValueRat != wantRat {
				t.Fatalf("%s: tuple %d fact #%d = %s, want %s (big.Rat mismatch)",
					label, i, id, f.ValueRat, wantRat)
			}
		}
	}
}

// TestServerExplainUpdatePropertyRandomized is the acceptance bar: a
// randomized interleaving of explains (pooled and open-per-request) and
// update batches (pooled-session-routed and direct), with every served
// explanation cross-checked big.Rat-identical against a cold repro.Explain
// on a mirror database maintained by the same mutation sequence.
func TestServerExplainUpdatePropertyRandomized(t *testing.T) {
	url, _, _ := newTestServer(t, Config{PoolSize: 4})
	mirror, _ := flights.Build()
	qtext := flights.Query().String()
	rng := rand.New(rand.NewSource(7))

	usa := []string{"JFK", "EWR", "BOS", "LAX"}
	fr := []string{"CDG", "ORY"}
	// live tracks server fact IDs of endogenous flights currently present
	// (initial a1..a8 plus survivors of our inserts); the sequential driver
	// keeps mirror IDs identical to server IDs.
	var live []int64
	for _, f := range mirror.EndogenousFacts() {
		live = append(live, int64(f.ID))
	}

	explains := 0
	for op := 0; op < 60; op++ {
		k := rng.Intn(5)
		if k >= 3 && len(live) == 0 {
			k = 2 // nothing to delete; insert instead
		}
		switch {
		case k <= 1: // explain (pooled on k==0, open-per-request on k==1)
			var resp wire.ExplainResponse
			status, raw := postJSON(t, url+"/v1/explain", wire.ExplainRequest{
				Dataset: "flights", Query: qtext, NoPool: k == 1,
			}, &resp)
			if status != http.StatusOK {
				t.Fatalf("op %d: explain -> %d: %s", op, status, raw)
			}
			assertServedMatchesCold(t, resp, mirror, fmt.Sprintf("op %d (nopool=%v)", op, k == 1))
			explains++
		case k == 2: // insert a joining flight
			src, dst := usa[rng.Intn(len(usa))], fr[rng.Intn(len(fr))]
			req := wire.UpdateRequest{
				Dataset: "flights",
				Inserts: []wire.InsertSpec{{
					Relation: "Flights", Endogenous: true,
					Values: []json.RawMessage{
						json.RawMessage(fmt.Sprintf("%q", src)),
						json.RawMessage(fmt.Sprintf("%q", dst)),
					},
				}},
			}
			pooled := rng.Intn(2) == 0
			if pooled {
				req.Query = qtext
			}
			var resp wire.UpdateResponse
			status, raw := postJSON(t, url+"/v1/update", req, &resp)
			if status != http.StatusOK {
				t.Fatalf("op %d: insert -> %d: %s", op, status, raw)
			}
			if resp.Pooled != pooled {
				t.Fatalf("op %d: pooled = %v, want %v", op, resp.Pooled, pooled)
			}
			f := mirror.MustInsert("Flights", true, repro.String(src), repro.String(dst))
			if len(resp.InsertedIDs) != 1 || resp.InsertedIDs[0] != int64(f.ID) {
				t.Fatalf("op %d: inserted IDs %v, mirror assigned %d — ID streams diverged",
					op, resp.InsertedIDs, f.ID)
			}
			live = append(live, int64(f.ID))
		default: // delete a random live endogenous flight
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			req := wire.UpdateRequest{
				Dataset: "flights",
				Deletes: []wire.DeleteSpec{{ID: id}},
			}
			if rng.Intn(2) == 0 {
				req.Query = qtext
			}
			var resp wire.UpdateResponse
			status, raw := postJSON(t, url+"/v1/update", req, &resp)
			if status != http.StatusOK {
				t.Fatalf("op %d: delete #%d -> %d: %s", op, id, status, raw)
			}
			if err := mirror.Delete(repro.FactID(id)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if explains == 0 {
		t.Fatal("randomized schedule exercised no explains")
	}

	// Final quiesced cross-check through both paths.
	for _, noPool := range []bool{false, true} {
		var resp wire.ExplainResponse
		status, raw := postJSON(t, url+"/v1/explain", wire.ExplainRequest{
			Dataset: "flights", Query: qtext, NoPool: noPool,
		}, &resp)
		if status != http.StatusOK {
			t.Fatalf("final explain -> %d: %s", status, raw)
		}
		assertServedMatchesCold(t, resp, mirror, fmt.Sprintf("final (nopool=%v)", noPool))
	}
}

// TestServerConcurrentClients hammers the service with concurrent explain
// and net-zero update traffic; everything must come back 2xx and the
// quiesced state must match the paper's flights ground truth.
func TestServerConcurrentClients(t *testing.T) {
	url, srv, _ := newTestServer(t, Config{PoolSize: 4})
	qtext := flights.Query().String()
	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			src := []string{"JFK", "EWR", "BOS", "LAX"}[c%4]
			for r := 0; r < 4; r++ {
				if c%2 == 0 {
					// Update client: insert then delete its own fact
					// through the pooled batcher.
					var ins wire.UpdateResponse
					blob, _ := json.Marshal(wire.UpdateRequest{
						Dataset: "flights", Query: qtext,
						Inserts: []wire.InsertSpec{{
							Relation: "Flights", Endogenous: true,
							Values: []json.RawMessage{
								json.RawMessage(fmt.Sprintf("%q", src)),
								json.RawMessage(`"ORY"`),
							},
						}},
					})
					resp, err := http.Post(url+"/v1/update", "application/json", bytes.NewReader(blob))
					if err != nil {
						errs <- err
						return
					}
					raw, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("insert -> %d: %s", resp.StatusCode, raw)
						return
					}
					if err := json.Unmarshal(raw, &ins); err != nil {
						errs <- err
						return
					}
					blob, _ = json.Marshal(wire.UpdateRequest{
						Dataset: "flights", Query: qtext,
						Deletes: []wire.DeleteSpec{{ID: ins.InsertedIDs[0]}},
					})
					resp, err = http.Post(url+"/v1/update", "application/json", bytes.NewReader(blob))
					if err != nil {
						errs <- err
						return
					}
					raw, _ = io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("delete -> %d: %s", resp.StatusCode, raw)
						return
					}
				} else {
					blob, _ := json.Marshal(wire.ExplainRequest{
						Dataset: "flights", Query: qtext, NoPool: r%2 == 1,
					})
					resp, err := http.Post(url+"/v1/explain", "application/json", bytes.NewReader(blob))
					if err != nil {
						errs <- err
						return
					}
					raw, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("explain -> %d: %s", resp.StatusCode, raw)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesced: the traffic was net-zero, so the state matches a fresh
	// flights database.
	fresh, _ := flights.Build()
	var resp wire.ExplainResponse
	status, raw := postJSON(t, url+"/v1/explain", wire.ExplainRequest{Dataset: "flights", Query: qtext}, &resp)
	if status != http.StatusOK {
		t.Fatalf("final explain -> %d: %s", status, raw)
	}
	assertServedMatchesCold(t, resp, fresh, "quiesced")

	st := srv.PoolStats()
	if st.UpdateBatches > st.UpdateRequests {
		t.Errorf("update batches %d > requests %d", st.UpdateBatches, st.UpdateRequests)
	}
	if st.Opens < 1 || st.Reuses < 1 {
		t.Errorf("pool counters show no reuse: %+v", st)
	}
}

// TestServerHTTPBasics covers the protocol edges: health, stats, content
// deletes, top truncation, and the 4xx surface.
func TestServerHTTPBasics(t *testing.T) {
	url, _, _ := newTestServer(t, Config{PoolSize: 2})
	qtext := flights.Query().String()

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	// Top truncation.
	var er wire.ExplainResponse
	status, raw := postJSON(t, url+"/v1/explain", wire.ExplainRequest{Dataset: "flights", Query: qtext, Top: 2}, &er)
	if status != http.StatusOK || len(er.Tuples) != 1 || len(er.Tuples[0].Facts) != 2 {
		t.Fatalf("top=2 explain: %d %s", status, raw)
	}
	if er.Tuples[0].Facts[0].ValueRat != "43/105" {
		t.Errorf("top fact = %s, want 43/105", er.Tuples[0].Facts[0].ValueRat)
	}

	// Content-addressed delete + reinsert round trip.
	var ur wire.UpdateResponse
	status, raw = postJSON(t, url+"/v1/update", wire.UpdateRequest{
		Dataset: "flights", Query: qtext,
		Deletes: []wire.DeleteSpec{{Relation: "Flights", Values: []json.RawMessage{
			json.RawMessage(`"JFK"`), json.RawMessage(`"CDG"`),
		}}},
	}, &ur)
	if status != http.StatusOK || len(ur.DeletedIDs) != 1 {
		t.Fatalf("content delete: %d %s", status, raw)
	}
	status, raw = postJSON(t, url+"/v1/update", wire.UpdateRequest{
		Dataset: "flights", Query: qtext,
		Inserts: []wire.InsertSpec{{Relation: "Flights", Endogenous: true, Values: []json.RawMessage{
			json.RawMessage(`"JFK"`), json.RawMessage(`"CDG"`),
		}}},
	}, &ur)
	if status != http.StatusOK {
		t.Fatalf("reinsert: %d %s", status, raw)
	}
	fresh, _ := flights.Build()
	status, _ = postJSON(t, url+"/v1/explain", wire.ExplainRequest{Dataset: "flights", Query: qtext}, &er)
	if status != http.StatusOK {
		t.Fatal("explain after delete/reinsert failed")
	}
	// Values match ground truth by content even though the reinserted fact
	// has a fresh ID.
	cold, err := repro.Explain(context.Background(), fresh, flights.Query(), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantTop := cold[0].Values[repro.FactID(1)].RatString()
	if er.Tuples[0].Facts[0].ValueRat != wantTop ||
		er.Tuples[0].Facts[0].Relation != "Flights" ||
		er.Tuples[0].Facts[0].Tuple[0] != "JFK" {
		t.Errorf("after reinsert, top fact = %+v, want JFK->CDG at %s", er.Tuples[0].Facts[0], wantTop)
	}

	// Stats surface.
	resp, err = http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st wire.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Pool.Opens < 1 || st.Pool.UpdateRequests != 2 {
		t.Errorf("stats pool: %+v", st.Pool)
	}
	if len(st.Routes) == 0 {
		t.Error("stats has no route counters")
	}
	if st.Cache.Hits+st.Cache.Misses == 0 {
		t.Error("stats shows an untouched compile cache after explains")
	}

	// 4xx surface.
	for _, c := range []struct {
		path string
		body any
		want int
	}{
		{"/v1/explain", wire.ExplainRequest{Dataset: "nope", Query: qtext}, http.StatusBadRequest},
		{"/v1/explain", wire.ExplainRequest{Dataset: "flights", Query: "not a query"}, http.StatusBadRequest},
		{"/v1/update", wire.UpdateRequest{Dataset: "flights", Query: qtext, Deletes: []wire.DeleteSpec{{ID: 99999}}}, http.StatusBadRequest},
		{"/v1/update", wire.UpdateRequest{Dataset: "flights", Inserts: []wire.InsertSpec{{Relation: "NoRel", Values: []json.RawMessage{json.RawMessage(`1`)}}}}, http.StatusBadRequest},
	} {
		status, raw := postJSON(t, url+c.path, c.body, nil)
		if status != c.want {
			t.Errorf("%s %+v -> %d (%s), want %d", c.path, c.body, status, raw, c.want)
		}
	}
	resp, err = http.Get(url + "/v1/explain")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/explain -> %d, want 405", resp.StatusCode)
	}
}

// TestServerConfigValidation: bad configurations fail at New.
func TestServerConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no datasets succeeded")
	}
	d, _ := flights.Build()
	if _, err := New(Config{
		Datasets: map[string]*repro.Database{"flights": d},
		Options:  repro.Options{Workers: -1},
	}); err == nil {
		t.Error("New with invalid options succeeded")
	}
}
