package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/flights"
)

// newTestPool builds a pool over one flights database with a real session
// opener, returning the pool and the shared database.
func newTestPool(t *testing.T, capacity int) (*Pool, *repro.Database) {
	t.Helper()
	d, _ := flights.Build()
	locks := map[string]*sync.RWMutex{"flights": new(sync.RWMutex)}
	p := NewPool(capacity, func(k Key) (*repro.Session, error) {
		if k.Dataset != "flights" {
			return nil, fmt.Errorf("server: unknown dataset %q", k.Dataset)
		}
		q, err := repro.ParseQuery(k.Query)
		if err != nil {
			return nil, err
		}
		return repro.Open(d, q, repro.Options{})
	}, func(ds string) *sync.RWMutex { return locks[ds] })
	t.Cleanup(p.Close)
	return p, d
}

func flightsKey() Key {
	return Key{Dataset: "flights", Query: flights.Query().String()}
}

// TestPoolSingleFlightAndReuse: concurrent first requests for one key open
// the session exactly once; every later request reuses it.
func TestPoolSingleFlightAndReuse(t *testing.T) {
	p, _ := newTestPool(t, 4)
	ctx := context.Background()
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Explain(ctx, flightsKey(), repro.ExplainBudget{}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Opens != 1 {
		t.Errorf("opens = %d, want 1 (single-flight)", st.Opens)
	}
	if st.Reuses != n-1 {
		t.Errorf("reuses = %d, want %d", st.Reuses, n-1)
	}
	if st.Sessions != 1 {
		t.Errorf("sessions = %d, want 1", st.Sessions)
	}
}

// TestPoolLRUEviction: a bounded pool closes the least recently used
// session when a new key exceeds capacity, and transparently reopens it on
// the next request.
func TestPoolLRUEviction(t *testing.T) {
	p, _ := newTestPool(t, 2)
	ctx := context.Background()
	keys := []Key{
		{Dataset: "flights", Query: flights.Query().String()},
		{Dataset: "flights", Query: flights.DirectQuery().String()},
		{Dataset: "flights", Query: flights.OneStopQuery().String()},
	}
	for _, k := range keys {
		if _, err := p.Explain(ctx, k, repro.ExplainBudget{}); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Opens != 3 || st.Evictions != 1 || st.Sessions != 2 {
		t.Fatalf("after 3 keys at capacity 2: %+v, want 3 opens, 1 eviction, 2 sessions", st)
	}
	// keys[0] was evicted (LRU); explaining it again reopens.
	if _, err := p.Explain(ctx, keys[0], repro.ExplainBudget{}); err != nil {
		t.Fatal(err)
	}
	st = p.Stats()
	if st.Opens != 4 || st.Evictions != 2 {
		t.Errorf("after revisiting the evicted key: %+v, want 4 opens, 2 evictions", st)
	}
}

// TestPoolOpenFailure: a failing open propagates to every single-flight
// waiter and leaves the pool clean for a later successful key.
func TestPoolOpenFailure(t *testing.T) {
	p, _ := newTestPool(t, 2)
	ctx := context.Background()
	bad := Key{Dataset: "nope", Query: flights.Query().String()}
	const n = 4
	var wg sync.WaitGroup
	errCount := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := p.Explain(ctx, bad, repro.ExplainBudget{})
			errCount <- err
		}()
	}
	wg.Wait()
	close(errCount)
	for err := range errCount {
		if err == nil || !strings.Contains(err.Error(), "unknown dataset") {
			t.Fatalf("want unknown-dataset error, got %v", err)
		}
	}
	if st := p.Stats(); st.Sessions != 0 || st.Opens != 0 {
		t.Errorf("failed opens left state: %+v", st)
	}
	if _, err := p.Explain(ctx, flightsKey(), repro.ExplainBudget{}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolUpdateCoalescing drives the batcher deterministically: with an
// application marked in flight, concurrent update requests pile into
// pending; draining applies all of them in ONE Session.Apply and reports
// the coalesced batch size to every request.
func TestPoolUpdateCoalescing(t *testing.T) {
	p, d := newTestPool(t, 2)
	ctx := context.Background()
	key := flightsKey()

	// Materialize the entry and pretend a leader is mid-application.
	e, err := p.acquire(key)
	if err != nil {
		t.Fatal(err)
	}
	e.bmu.Lock()
	e.applying = true
	e.bmu.Unlock()

	const n = 3
	usa := []string{"JFK", "EWR", "BOS"}
	results := make(chan struct {
		facts   []*repro.Fact
		batched int
		err     error
	}, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			facts, batched, err := p.Update(context.Background(), key, []repro.Mutation{
				repro.InsertOp("Flights", true, repro.String(usa[i]), repro.String("ORY")),
			})
			results <- struct {
				facts   []*repro.Fact
				batched int
				err     error
			}{facts, batched, err}
		}(i)
	}

	// Wait for all three requests to enqueue behind the fake leader.
	waitFor(t, func() bool {
		e.bmu.Lock()
		defer e.bmu.Unlock()
		return len(e.pending) == n
	})

	// Drain exactly as the leader loop does.
	e.bmu.Lock()
	batch := e.pending
	e.pending = nil
	e.bmu.Unlock()
	p.applyBatch(context.Background(), e, batch)
	e.bmu.Lock()
	e.applying = false
	e.bmu.Unlock()

	wg.Wait()
	close(results)
	inserted := 0
	for res := range results {
		if res.err != nil {
			t.Fatal(res.err)
		}
		if res.batched != n {
			t.Errorf("batched = %d, want %d", res.batched, n)
		}
		if len(res.facts) != 1 || res.facts[0] == nil {
			t.Fatalf("facts = %v, want the one inserted fact", res.facts)
		}
		inserted++
	}
	if inserted != n {
		t.Fatalf("%d results, want %d", inserted, n)
	}
	p.release(e)

	st := p.Stats()
	if st.UpdateRequests != n || st.UpdateBatches != 1 || st.CoalescedBatches != 1 {
		t.Errorf("batcher counters: %+v, want %d requests in 1 coalesced batch", st, n)
	}

	// The session absorbed all three inserts: the explanation matches a
	// cold Explain on the mutated database.
	es, err := p.Explain(ctx, key, repro.ExplainBudget{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := repro.Explain(ctx, d, flights.Query(), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != len(cold) {
		t.Fatalf("%d tuples, want %d", len(es), len(cold))
	}
	for i := range cold {
		for f, v := range cold[i].Values {
			if got := es[i].Values[f]; got == nil || got.Cmp(v) != 0 {
				t.Fatalf("tuple %d fact %d: %v, want %v", i, f, got, v)
			}
		}
	}
}

// TestPoolUpdateSequential: uncontended updates apply one batch per request
// (no artificial batching delay) and count no coalescing.
func TestPoolUpdateSequential(t *testing.T) {
	p, _ := newTestPool(t, 2)
	key := flightsKey()
	facts, batched, err := p.Update(context.Background(), key, []repro.Mutation{
		repro.InsertOp("Flights", true, repro.String("JFK"), repro.String("ORY")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if batched != 1 {
		t.Errorf("batched = %d, want 1", batched)
	}
	if _, _, err := p.Update(context.Background(), key, []repro.Mutation{repro.DeleteOp(facts[0].ID)}); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.UpdateRequests != 2 || st.UpdateBatches != 2 || st.CoalescedBatches != 0 {
		t.Errorf("counters: %+v, want 2 requests, 2 batches, 0 coalesced", st)
	}
}

// TestPoolBatchErrorAttribution pins the coalesced-failure semantics: in a
// batch [good, bad, good], the first request succeeds (its mutations were
// applied), the request owning the failing mutation gets the error, and the
// unreached request is requeued and applied in the next batch — one
// client's bad mutation never fails its neighbors.
func TestPoolBatchErrorAttribution(t *testing.T) {
	p, _ := newTestPool(t, 2)
	key := flightsKey()
	e, err := p.acquire(key)
	if err != nil {
		t.Fatal(err)
	}
	defer p.release(e)

	mk := func(muts ...repro.Mutation) *updateCall {
		return &updateCall{muts: muts, done: make(chan struct{})}
	}
	good1 := mk(repro.InsertOp("Flights", true, repro.String("JFK"), repro.String("ORY")))
	bad := mk(repro.DeleteOp(repro.FactID(9999)))
	good2 := mk(repro.InsertOp("Flights", true, repro.String("BOS"), repro.String("ORY")))

	requeue := p.applyBatch(context.Background(), e, []*updateCall{good1, bad, good2})
	<-good1.done
	<-bad.done
	if good1.err != nil || good1.facts[0] == nil {
		t.Errorf("fully applied neighbor failed: err=%v facts=%v", good1.err, good1.facts)
	}
	if bad.err == nil || !errors.Is(bad.err, repro.ErrNoFact) {
		t.Errorf("failing call's error = %v, want ErrNoFact", bad.err)
	}
	if len(requeue) != 1 || requeue[0] != good2 {
		t.Fatalf("requeue = %v, want the unreached call", requeue)
	}
	select {
	case <-good2.done:
		t.Fatal("unreached call resolved before its requeue ran")
	default:
	}
	if rq := p.applyBatch(context.Background(), e, requeue); len(rq) != 0 {
		t.Fatalf("requeued batch requeued again: %v", rq)
	}
	<-good2.done
	if good2.err != nil || good2.facts[0] == nil {
		t.Errorf("requeued call failed: err=%v facts=%v", good2.err, good2.facts)
	}
	if st := p.Stats(); st.UpdateBatches != 2 {
		t.Errorf("update batches = %d, want 2 (original + requeue)", st.UpdateBatches)
	}
}

// TestPoolUpdateOnClosedSession: a batch-wide Apply failure (nil results)
// must error every call instead of panicking the leader and wedging the
// key's update path.
func TestPoolUpdateOnClosedSession(t *testing.T) {
	p, _ := newTestPool(t, 2)
	key := flightsKey()
	e, err := p.acquire(key)
	if err != nil {
		t.Fatal(err)
	}
	e.sess.Close()
	p.release(e)

	done := make(chan error, 1)
	go func() {
		_, _, err := p.Update(context.Background(), key, []repro.Mutation{
			repro.InsertOp("Flights", true, repro.String("JFK"), repro.String("ORY")),
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "session is closed") {
			t.Fatalf("Update on closed session: %v, want ErrSessionClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Update wedged on a closed session")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		// Cede the scheduler; 2000 * 1ms bounds the wait at 2s.
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}
