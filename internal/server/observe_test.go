package server

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/flights"
	"repro/internal/promlint"
	"repro/internal/wire"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// TestExplainTraceSpans: a trace:true explain returns the span tree — root
// "explain" whose duration is the reported request latency, with the
// acquire/tuple/tseytin/compile/dnnf stages nested inside, and compiler
// node counts attached where the pipeline produced them.
func TestExplainTraceSpans(t *testing.T) {
	url, _, _ := newTestServer(t, Config{})
	req := wire.ExplainRequest{Dataset: "flights", Query: flights.Query().String(), Trace: true}
	var resp wire.ExplainResponse
	status, raw := postJSON(t, url+"/v1/explain", req, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if resp.RequestID == "" {
		t.Error("response missing request_id")
	}
	root := resp.Trace
	if root == nil {
		t.Fatal("trace:true response has no trace")
	}
	if root.Name != "explain" {
		t.Fatalf("root span %q, want explain", root.Name)
	}
	// The root's duration is the reported request latency.
	if math.Abs(root.DurationMs-resp.ElapsedMs) > 0.01 {
		t.Errorf("root span %vms != elapsed_ms %v", root.DurationMs, resp.ElapsedMs)
	}
	// Direct children (acquire + one span per tuple) partition the request:
	// their durations sum to at most the root's, and — since the pipeline is
	// synchronous — account for nearly all of it.
	var sum float64
	for _, c := range root.Children {
		sum += c.DurationMs
	}
	if sum > root.DurationMs+1 {
		t.Errorf("children sum %vms exceeds root %vms", sum, root.DurationMs)
	}
	for _, name := range []string{"acquire", "tuple", "tseytin", "compile", "dnnf", "shapley"} {
		if root.Find(name) == nil {
			t.Errorf("trace has no %q span:\n%s", name, raw)
		}
	}
	if sp := root.Find("dnnf"); sp != nil {
		nodes, ok := sp.Attrs["nodes"].(float64)
		if !ok || nodes <= 0 {
			t.Errorf("dnnf span nodes attr = %v, want > 0", sp.Attrs["nodes"])
		}
	}

	// A repeat explain of the same pooled key serves the session's tuple
	// cache; the tuple span says so.
	var warm wire.ExplainResponse
	if status, raw := postJSON(t, url+"/v1/explain", req, &warm); status != http.StatusOK {
		t.Fatalf("warm status %d: %s", status, raw)
	}
	tup := warm.Trace.Find("tuple")
	if tup == nil {
		t.Fatal("warm trace has no tuple span")
	}
	if cached, _ := tup.Attrs["cached"].(bool); !cached {
		t.Errorf("warm tuple span cached attr = %v, want true", tup.Attrs["cached"])
	}

	// Without trace:true the tree stays server-side.
	req.Trace = false
	var quiet wire.ExplainResponse
	if status, _ := postJSON(t, url+"/v1/explain", req, &quiet); status != http.StatusOK {
		t.Fatalf("untraced status %d", status)
	}
	if quiet.Trace != nil {
		t.Error("untraced response carries a trace")
	}
}

// TestDegradedCauseAndMetrics: a starved node budget degrades every tuple
// with cause node_budget, which surfaces in the wire response, the labeled
// repro_degraded_total counter, and a /metrics exposition that passes the
// same validation CI applies.
func TestDegradedCauseAndMetrics(t *testing.T) {
	url, _, _ := newTestServer(t, Config{
		Options: repro.Options{
			Budget: repro.ExplainBudget{MaxNodes: 1, MinSamples: 128},
		},
	})
	var resp wire.ExplainResponse
	req := wire.ExplainRequest{Dataset: "flights", Query: flights.Query().String()}
	if status, raw := postJSON(t, url+"/v1/explain", req, &resp); status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	for _, tup := range resp.Tuples {
		if tup.DegradedCause != "node_budget" {
			t.Errorf("tuple degraded_cause = %q, want node_budget", tup.DegradedCause)
		}
	}

	status, text := getBody(t, url+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	if _, err := promlint.Validate(text); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	samples, _, err := promlint.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	for _, require := range []string{
		`repro_requests_total{route="/v1/explain",code="200"}`,
		`repro_degraded_total{route="/v1/explain",cause="node_budget"}`,
		`repro_request_duration_seconds_bucket{route="/v1/explain",le="+Inf"}`,
		`repro_stage_duration_seconds_bucket{stage="compile",le="+Inf"}`,
		`repro_stage_duration_seconds_bucket{stage="approx",le="+Inf"}`,
		"repro_pool_sessions",
		`repro_dataset_facts{dataset="flights"}`,
	} {
		if err := promlint.Require(samples, require); err != nil {
			t.Errorf("%v", err)
		}
	}
}

// TestSlowLog: with a 1ns threshold every explain is slow; the ring serves
// the request's identity and full trace, and stays bounded.
func TestSlowLog(t *testing.T) {
	url, _, _ := newTestServer(t, Config{SlowThreshold: time.Nanosecond, SlowLogSize: 2})
	req := wire.ExplainRequest{Dataset: "flights", Query: flights.Query().String()}
	ids := make(map[string]bool)
	for i := 0; i < 3; i++ {
		var resp wire.ExplainResponse
		if status, raw := postJSON(t, url+"/v1/explain", req, &resp); status != http.StatusOK {
			t.Fatalf("status %d: %s", status, raw)
		}
		ids[resp.RequestID] = true
	}
	status, raw := getBody(t, url+"/v1/debug/slow")
	if status != http.StatusOK {
		t.Fatalf("/v1/debug/slow status %d", status)
	}
	var slow wire.SlowResponse
	if err := json.Unmarshal([]byte(raw), &slow); err != nil {
		t.Fatalf("decode: %v\n%s", err, raw)
	}
	if len(slow.Entries) != 2 {
		t.Fatalf("slow log retained %d entries, want ring cap 2", len(slow.Entries))
	}
	for _, e := range slow.Entries {
		if !ids[e.RequestID] {
			t.Errorf("slow entry has unknown request_id %q", e.RequestID)
		}
		if e.Trace == nil || e.Trace.Name != "explain" {
			t.Errorf("slow entry %s missing its trace", e.RequestID)
		}
		if e.ElapsedMs <= 0 || e.Dataset != "flights" {
			t.Errorf("malformed slow entry: %+v", e)
		}
	}
}

// TestRequestIDs: every response carries a distinct X-Request-Id, echoed in
// explain bodies.
func TestRequestIDs(t *testing.T) {
	url, _, _ := newTestServer(t, Config{})
	req := wire.ExplainRequest{Dataset: "flights", Query: flights.Query().String()}
	blob, _ := json.Marshal(req)
	seen := make(map[string]bool)
	for i := 0; i < 2; i++ {
		resp, err := http.Post(url+"/v1/explain", "application/json", strings.NewReader(string(blob)))
		if err != nil {
			t.Fatal(err)
		}
		header := resp.Header.Get("X-Request-Id")
		var body wire.ExplainResponse
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if header == "" || header != body.RequestID {
			t.Fatalf("header id %q vs body id %q", header, body.RequestID)
		}
		if seen[header] {
			t.Fatalf("request ID %q repeated", header)
		}
		seen[header] = true
	}
}

// TestPprofGate: /debug/pprof is absent by default, present for loopback
// clients when enabled, and 403 for non-loopback clients.
func TestPprofGate(t *testing.T) {
	url, _, _ := newTestServer(t, Config{})
	if status, _ := getBody(t, url+"/debug/pprof/"); status != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", status)
	}

	url2, s2, _ := newTestServer(t, Config{EnablePprof: true})
	// httptest clients connect over loopback, so the gate admits them.
	if status, raw := getBody(t, url2+"/debug/pprof/cmdline"); status != http.StatusOK {
		t.Errorf("pprof on, loopback: status %d: %s", status, raw)
	}
	// A non-loopback peer is refused (RemoteAddr set by hand, as httptest
	// would for a remote client).
	r := httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil)
	r.RemoteAddr = "192.0.2.1:4242"
	w := httptest.NewRecorder()
	s2.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusForbidden {
		t.Errorf("pprof on, remote: status %d, want 403", w.Code)
	}
}
