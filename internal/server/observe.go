package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro"
	"repro/internal/dnnf"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// Request IDs: a per-process random base plus a sequence number, so IDs are
// unique across restarts without coordination and still sort by arrival
// within one process. The ID is assigned in instrument, sent back as the
// X-Request-Id header, echoed in response bodies, and tags every log line
// and slow-log entry for the request.

func newIDBase() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to the clock.
		return strconv.FormatInt(time.Now().UnixNano()&0xffffffff, 16)
	}
	return hex.EncodeToString(b[:])
}

func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%s-%06d", s.idBase, s.idSeq.Add(1))
}

// requestIDKey carries the assigned request ID through the request context.
type requestIDKey struct{}

// requestID returns the ID instrument assigned, or "" outside a request.
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey{}).(string)
	return id
}

// slowLog is the ring buffer behind GET /v1/debug/slow: the most recent
// requests whose wall clock met the configured threshold, each with its
// full stage trace. Bounded, so a misbehaving workload cannot grow it.
type slowLog struct {
	mu      sync.Mutex
	cap     int
	entries []wire.SlowEntry
	next    int // ring cursor once len == cap
}

// DefaultSlowLogSize bounds the slow-explain ring when the configuration
// does not.
const DefaultSlowLogSize = 128

func newSlowLog(capacity int) *slowLog {
	if capacity <= 0 {
		capacity = DefaultSlowLogSize
	}
	return &slowLog{cap: capacity}
}

func (l *slowLog) add(e wire.SlowEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
		return
	}
	l.entries[l.next] = e
	l.next = (l.next + 1) % l.cap
}

// snapshot returns the retained entries oldest first.
func (l *slowLog) snapshot() []wire.SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]wire.SlowEntry, 0, len(l.entries))
	out = append(out, l.entries[l.next:]...)
	out = append(out, l.entries[:l.next]...)
	return out
}

// handleSlow serves the slow-explain ring. Like /v1/stats it is
// admission-exempt: the whole point is observing a server that is slow.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, wire.SlowResponse{
		ThresholdMs: float64(s.cfg.SlowThreshold) / float64(time.Millisecond),
		Entries:     s.slow.snapshot(),
	})
}

// handleMetrics serves the Prometheus text exposition: the recorder's
// request/stage series first, then process-level gauges for the session
// pool, the compilation cache, the compiler's speculation/portfolio
// counters, and each dataset. It supersedes /v1/stats for scraping while
// /v1/stats remains for human-readable JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	w.Header().Set("Content-Type", metrics.PromContentType)
	s.rec.WritePrometheus(w)
	writeProcessMetrics(w, s)
}

func writeProcessMetrics(w io.Writer, s *Server) {
	pool := s.pool.Stats()
	counter := func(name, help string, v int64) {
		metrics.WriteHeader(w, name, "counter", help)
		metrics.WriteSample(w, name, nil, float64(v))
	}
	metrics.WriteGauge(w, "repro_pool_sessions", "Pooled sessions currently open.", nil, float64(pool.Sessions))
	metrics.WriteGauge(w, "repro_pool_capacity", "Session pool capacity.", nil, float64(pool.Capacity))
	counter("repro_pool_opens_total", "Sessions opened (cold grounding).", pool.Opens)
	counter("repro_pool_reuses_total", "Requests served by an already-warm pooled session.", pool.Reuses)
	counter("repro_pool_evictions_total", "Sessions closed by the LRU capacity bound.", pool.Evictions)
	counter("repro_pool_update_requests_total", "Update requests routed through pooled sessions.", pool.UpdateRequests)
	counter("repro_pool_update_batches_total", "Coalesced session applications covering those requests.", pool.UpdateBatches)

	cache := repro.CompileCacheStats()
	metrics.WriteHeader(w, "repro_compile_cache_hits_total", "counter",
		"Compilation cache hits by kind: identical (same CNF) or renamed (isomorphic modulo variable names).")
	metrics.WriteSample(w, "repro_compile_cache_hits_total", []metrics.Label{{Name: "kind", Value: "identical"}}, float64(cache.IdenticalHits))
	metrics.WriteSample(w, "repro_compile_cache_hits_total", []metrics.Label{{Name: "kind", Value: "renamed"}}, float64(cache.RenamedHits))
	counter("repro_compile_cache_misses_total", "Compilation cache misses.", cache.Misses)
	counter("repro_compile_cache_evictions_total", "Compilation cache LRU evictions.", cache.Evictions)
	counter("repro_compile_cache_invalidations_total", "Compilation cache epoch invalidations.", cache.Invalidations)
	metrics.WriteGauge(w, "repro_compile_cache_entries", "Compilation cache occupancy.", nil, float64(cache.Len))

	comp := dnnf.SpeculationCounters()
	counter("repro_compilations_total", "d-DNNF compilations run.", comp.Compilations)
	counter("repro_speculated_decisions_total", "Shannon decisions whose cofactors compiled concurrently.", comp.SpeculatedDecisions)
	counter("repro_speculation_cancels_total", "Speculative siblings cancelled after a budget failure.", comp.SpeculationCancels)
	counter("repro_portfolio_races_total", "Compilations raced across variable-order heuristics.", comp.PortfolioRaces)

	names := make([]string, 0, len(s.cfg.Datasets))
	for name := range s.cfg.Datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	metrics.WriteHeader(w, "repro_dataset_facts", "gauge", "Facts per served dataset.")
	for _, name := range names {
		lock := s.locks[name]
		lock.RLock()
		n := s.cfg.Datasets[name].NumFacts()
		lock.RUnlock()
		metrics.WriteSample(w, "repro_dataset_facts", []metrics.Label{{Name: "dataset", Value: name}}, float64(n))
	}
	metrics.WriteHeader(w, "repro_dataset_degraded", "gauge", "1 when the dataset's store is degraded to read-only.")
	for _, name := range names {
		lock := s.locks[name]
		lock.RLock()
		derr := s.cfg.Datasets[name].Err()
		lock.RUnlock()
		v := 0.0
		if derr != nil {
			v = 1
		}
		metrics.WriteSample(w, "repro_dataset_degraded", []metrics.Label{{Name: "dataset", Value: name}}, v)
	}
}

// loopbackOnly gates a handler to loopback clients: profiling endpoints
// expose process internals, so a server listening on a routable address
// still refuses remote profile requests unless explicitly opened up.
func loopbackOnly(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			host = r.RemoteAddr
		}
		ip := net.ParseIP(host)
		if ip == nil || !ip.IsLoopback() {
			writeError(w, http.StatusForbidden, fmt.Errorf("server: profiling is loopback-only (from %s)", r.RemoteAddr))
			return
		}
		h.ServeHTTP(w, r)
	})
}

// registerPprof mounts net/http/pprof under /debug/pprof/, loopback-gated
// and admission-exempt (profiling a wedged server is exactly when admission
// would refuse).
func (s *Server) registerPprof() {
	s.mux.Handle("/debug/pprof/", loopbackOnly(http.HandlerFunc(pprof.Index)))
	s.mux.Handle("/debug/pprof/cmdline", loopbackOnly(http.HandlerFunc(pprof.Cmdline)))
	s.mux.Handle("/debug/pprof/profile", loopbackOnly(http.HandlerFunc(pprof.Profile)))
	s.mux.Handle("/debug/pprof/symbol", loopbackOnly(http.HandlerFunc(pprof.Symbol)))
	s.mux.Handle("/debug/pprof/trace", loopbackOnly(http.HandlerFunc(pprof.Trace)))
}
