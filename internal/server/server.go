// Package server is the explanation service: an HTTP front end over
// repro.Session for the paper's interactive workload at serving scale. Where
// cmd/shapley answers one question per process, the server keeps a keyed
// pool of warm sessions — one per (database, query) — so sustained traffic
// from many concurrent clients hits the incremental-maintenance and
// compilation caches end to end, and batches concurrent update requests
// into single coalesced session applications.
//
// The wire API (JSON bodies, see internal/wire):
//
//	POST /v1/explain  — explain every output tuple of a query
//	POST /v1/update   — apply a batch of fact insertions/deletions
//	GET  /v1/stats    — pool, compilation-cache, and request counters
//	GET  /healthz     — liveness
//
// Explain requests may carry a per-request compute budget: "budget_ms"
// bounds the exact pipeline's wall clock, "mode" picks the degradation
// policy ("auto", "exact", or "approximate"), and "min_samples"/"seed"
// steer the sampling fallback. A budgeted request that exhausts its budget
// still answers 200: each degraded tuple is marked "approximate": true with
// "samples" and per-fact "ci_low"/"ci_high" 95% confidence bounds instead
// of exact rationals, and the route's "degraded" counter in /v1/stats
// ticks. Unbudgeted requests are byte-identical to the pre-budget wire
// format. Degraded pooled answers are upgraded to exact in the background,
// so subsequent explains of the same key serve exact values.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/dnnf"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Config configures a Server.
type Config struct {
	// Datasets are the served databases, by the name explain/update
	// requests address them with.
	Datasets map[string]*repro.Database
	// Options configures every session the server opens (pooled or not).
	Options repro.Options
	// PoolSize bounds the session pool (≤ 0 = DefaultPoolSize). The least
	// recently used session is closed when a new (dataset, query) pair
	// would exceed it.
	PoolSize int
	// LatencyWindow sizes the per-route latency sample behind /v1/stats
	// (≤ 0 = metrics.DefaultLatencyWindow).
	LatencyWindow int
	// RequestTimeout bounds each explain/update request's wall clock: the
	// request context expires at the deadline, the compile/Shapley pipeline
	// aborts at its next cancellation point, and the client gets a 504.
	// Zero means no per-request deadline.
	RequestTimeout time.Duration
	// MaxInFlight bounds concurrently executing requests per work route
	// (/v1/explain and /v1/update each get their own bound; /v1/stats,
	// /metrics, /v1/debug/slow, and /healthz stay admission-free so the
	// service remains observable under overload). Excess requests are shed
	// immediately with 429 and a Retry-After header rather than queueing.
	// Zero means unbounded.
	MaxInFlight int
	// Logger receives the server's structured request logs (error responses
	// and slow explains, each tagged with its request ID). Nil uses
	// slog.Default().
	Logger *slog.Logger
	// SlowThreshold is the wall-clock bound past which an explain request is
	// recorded in the slow-explain ring (GET /v1/debug/slow) with its full
	// stage trace, and logged. Zero disables the slow log.
	SlowThreshold time.Duration
	// SlowLogSize bounds the slow-explain ring (≤ 0 = DefaultSlowLogSize).
	SlowLogSize int
	// EnablePprof mounts net/http/pprof under /debug/pprof/, restricted to
	// loopback clients.
	EnablePprof bool
}

// Server serves the explanation API over a session pool.
type Server struct {
	cfg    Config
	pool   *Pool
	locks  map[string]*sync.RWMutex
	rec    *metrics.Recorder
	mux    *http.ServeMux
	logger *slog.Logger
	slow   *slowLog
	// idBase + idSeq mint the per-request IDs (see observe.go).
	idBase string
	idSeq  atomic.Uint64
	// admit holds the per-route admission semaphores (nil when MaxInFlight
	// is unbounded): a slot must be acquired before the handler runs.
	admit map[string]chan struct{}
}

// New validates the configuration and returns a server ready to serve.
func New(cfg Config) (*Server, error) {
	if len(cfg.Datasets) == 0 {
		return nil, errors.New("server: no datasets configured")
	}
	if err := cfg.Options.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		locks:  make(map[string]*sync.RWMutex, len(cfg.Datasets)),
		rec:    metrics.NewRecorder(cfg.LatencyWindow),
		mux:    http.NewServeMux(),
		logger: cfg.Logger,
		slow:   newSlowLog(cfg.SlowLogSize),
		idBase: newIDBase(),
	}
	if s.logger == nil {
		s.logger = slog.Default()
	}
	// Out-of-trace pipeline stages (open-time grounding, background exact
	// upgrades) report into the per-stage histograms; in-trace stages report
	// through each request's trace root, so nothing counts twice.
	s.cfg.Options.StageObserver = s.rec.ObserveStage
	for name := range cfg.Datasets {
		s.locks[name] = new(sync.RWMutex)
	}
	s.pool = NewPool(cfg.PoolSize, s.openSession, func(dataset string) *sync.RWMutex {
		return s.locks[dataset]
	})
	if cfg.MaxInFlight > 0 {
		s.admit = map[string]chan struct{}{
			"/v1/explain": make(chan struct{}, cfg.MaxInFlight),
			"/v1/update":  make(chan struct{}, cfg.MaxInFlight),
		}
	}
	s.mux.HandleFunc("/v1/explain", s.instrument("/v1/explain", s.guard("/v1/explain", s.handleExplain)))
	s.mux.HandleFunc("/v1/update", s.instrument("/v1/update", s.guard("/v1/update", s.handleUpdate)))
	s.mux.HandleFunc("/v1/stats", s.instrument("/v1/stats", s.handleStats))
	s.mux.HandleFunc("/v1/debug/slow", s.instrument("/v1/debug/slow", s.handleSlow))
	s.mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	if cfg.EnablePprof {
		s.registerPprof()
	}
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close flushes the session pool (in-flight requests finish on their
// sessions, which close on release).
func (s *Server) Close() { s.pool.Close() }

// PoolStats exposes the pool counters (also served by /v1/stats).
func (s *Server) PoolStats() wire.PoolStats { return s.pool.Stats() }

func (s *Server) openSession(key Key) (*repro.Session, error) {
	d := s.cfg.Datasets[key.Dataset]
	if d == nil {
		return nil, fmt.Errorf("server: unknown dataset %q", key.Dataset)
	}
	q, err := repro.ParseQuery(key.Query)
	if err != nil {
		return nil, err
	}
	return repro.Open(d, q, s.cfg.Options)
}

// resolve maps a request's dataset name to its database and lock.
func (s *Server) resolve(dataset string) (*repro.Database, *sync.RWMutex, error) {
	d := s.cfg.Datasets[dataset]
	if d == nil {
		return nil, nil, fmt.Errorf("server: unknown dataset %q", dataset)
	}
	return d, s.locks[dataset], nil
}

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the request recorder feeding /v1/stats
// and /metrics. It assigns the request its ID (returned as X-Request-Id and
// carried in the context for handlers to echo and log), and classifies
// degradation outcomes by status: only admission control writes 429 and
// only the deadline middleware produces 504, so those statuses are the shed
// and timeout counters (panics are ambiguous with plain 500s and are
// counted where they are recovered). Error responses are logged with the
// request ID.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := s.nextRequestID()
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		d := time.Since(start)
		switch rec.status {
		case http.StatusTooManyRequests:
			s.rec.Shed(route)
		case http.StatusGatewayTimeout:
			s.rec.TimedOut(route)
		}
		s.rec.Observe(route, rec.status, d)
		if rec.status >= 400 {
			s.logger.Warn("request failed",
				"request_id", id, "route", route, "status", rec.status,
				"elapsed_ms", float64(d)/float64(time.Millisecond))
		}
	}
}

// guard is the resilience middleware on the work routes, inside instrument
// (so shed and panicked requests are still observed) and outside the
// handler. In order: admission control sheds excess concurrency with 429 +
// Retry-After before any work starts; the per-request deadline arms the
// context the compile/Shapley pipeline already honors; panic recovery turns
// a handler panic into a 500 instead of a killed connection — the session
// pool's refcounts release on the way out (deferred in Pool.Explain/Update),
// so a panicked request never wedges a pooled session.
func (s *Server) guard(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if sem := s.admit[route]; sem != nil {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			default:
				writeError(w, http.StatusTooManyRequests,
					fmt.Errorf("server: %s over capacity (%d in flight)", route, cap(sem)))
				return
			}
		}
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		defer func() {
			if v := recover(); v != nil {
				s.rec.Panicked(route)
				writeError(w, http.StatusInternalServerError,
					fmt.Errorf("server: handler panicked: %v", v))
			}
		}()
		h(w, r)
	}
}

// maxBodyBytes bounds request bodies; update batches are the largest
// legitimate payloads and stay far below this.
const maxBodyBytes = 8 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

// retryAfterSeconds is the backoff hint sent with every shed (429) and
// degraded/overloaded (503) response.
const retryAfterSeconds = 1

func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// errStatus maps an error to its HTTP status: the mutation layer's
// sentinel errors (wrapped by every client-addressable failure, including
// through repro.MutationError) are 400s; a dataset in storage-degraded
// mode is a 503 (retryable once an operator repairs the store); a request
// cut off by the per-request deadline is a 504; everything else is a 500.
// Query parse errors and unknown datasets are rejected with explicit 400s
// at the handlers before any session work starts.
func errStatus(err error) int {
	switch {
	case errors.Is(err, repro.ErrUnknownRelation) ||
		errors.Is(err, repro.ErrNoFact) ||
		errors.Is(err, repro.ErrArity):
		return http.StatusBadRequest
	case errors.Is(err, repro.ErrDegraded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return false
	}
	return true
}

// requestBudget overlays an explain request's budget knobs onto the server's
// configured budget: budget_ms sets the exact attempt's deadline, mode the
// degradation policy, min_samples the sampling floor, seed the sampling seed
// perturbation. Absent knobs keep the configured values, so an unbudgeted
// request on an unbudgeted server yields the zero (disabled) budget.
func (s *Server) requestBudget(req wire.ExplainRequest) (repro.ExplainBudget, error) {
	b := s.cfg.Options.Budget
	if req.BudgetMs < 0 {
		return b, fmt.Errorf("server: negative budget_ms %v", req.BudgetMs)
	}
	if req.MinSamples < 0 {
		return b, fmt.Errorf("server: negative min_samples %d", req.MinSamples)
	}
	if req.BudgetMs > 0 {
		b.Deadline = time.Duration(req.BudgetMs * float64(time.Millisecond))
	}
	if req.MinSamples > 0 {
		b.MinSamples = req.MinSamples
	}
	if req.Seed != 0 {
		b.Seed = req.Seed
	}
	if req.Mode != "" {
		mode, err := repro.ParseExplainMode(req.Mode)
		if err != nil {
			return b, err
		}
		b.Mode = mode
	}
	return b, nil
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req wire.ExplainRequest
	if !decodeBody(w, r, &req) {
		return
	}
	d, lock, err := s.resolve(req.Dataset)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	q, err := repro.ParseQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	budget, err := s.requestBudget(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	norm := q.String()

	// Every explain runs under a collecting trace root: span Ends feed the
	// per-stage latency histograms, the tree is returned when the request
	// asked for it, and slow requests retain it in the slow-explain ring.
	// The root's duration is the reported request latency, so the tree's
	// stage durations sum (within scheduling slack) to elapsed_ms.
	rctx, root := trace.NewRoot(r.Context(), "explain", s.rec.ObserveStage)
	var es []repro.TupleExplanation
	if req.NoPool {
		// Open-per-request baseline: ground, explain, close — the cost a
		// client pays without the pool. Holds the dataset read lock like
		// any other explain.
		opts := s.cfg.Options
		opts.Budget = budget
		lock.RLock()
		es, err = repro.Explain(rctx, d, q, opts)
		lock.RUnlock()
	} else {
		es, err = s.pool.Explain(rctx, Key{Dataset: req.Dataset, Query: norm}, budget)
	}
	if err != nil {
		root.End()
		writeError(w, errStatus(err), err)
		return
	}
	// Degraded is once per request; each distinct cause among the tuples
	// ticks the labeled cause counter once.
	causes := make(map[string]bool)
	for _, e := range es {
		if e.Method == repro.MethodApprox {
			cause := e.DegradedCause
			if cause == "" {
				cause = "unknown"
			}
			causes[cause] = true
		}
	}
	if len(causes) > 0 {
		s.rec.Degraded("/v1/explain")
		for cause := range causes {
			s.rec.DegradedCause("/v1/explain", cause)
		}
	}
	root.End()
	elapsed := root.Duration()

	resp := wire.ExplainResponse{
		Dataset:   req.Dataset,
		Query:     norm,
		Pooled:    !req.NoPool,
		ElapsedMs: float64(elapsed) / float64(time.Millisecond),
		RequestID: requestID(r),
	}
	if req.Trace {
		resp.Trace = root.Snapshot()
	}
	if s.cfg.SlowThreshold > 0 && elapsed >= s.cfg.SlowThreshold {
		s.slow.add(wire.SlowEntry{
			RequestID: resp.RequestID,
			Dataset:   req.Dataset,
			Query:     norm,
			Time:      time.Now().UTC().Format(time.RFC3339Nano),
			ElapsedMs: resp.ElapsedMs,
			Trace:     root.Snapshot(),
		})
		s.logger.Warn("slow explain",
			"request_id", resp.RequestID, "dataset", req.Dataset, "query", norm,
			"elapsed_ms", resp.ElapsedMs, "tuples", len(es))
	}

	lock.RLock()
	resp.Tuples = wire.EncodeExplanations(d, es, req.Top)
	lock.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req wire.UpdateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	d, lock, err := s.resolve(req.Dataset)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// A storage-degraded dataset refuses mutations up front: memory already
	// matches the last durable state, and applying more writes would only
	// widen the gap. Explains keep serving that state; updates 503 until an
	// operator repairs the store and restarts.
	lock.RLock()
	derr := d.Err()
	lock.RUnlock()
	if derr != nil {
		writeError(w, http.StatusServiceUnavailable, derr)
		return
	}

	// Build the mutation batch: inserts in request order, then deletes.
	// Content-addressed deletes resolve against the current database here;
	// the resolution is revalidated by Session.Apply/Database.Delete under
	// the write lock (a concurrent delete of the same fact surfaces as
	// "no fact with ID").
	muts := make([]repro.Mutation, 0, len(req.Inserts)+len(req.Deletes))
	for _, ins := range req.Inserts {
		vals, err := wire.DecodeValues(ins.Values)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		muts = append(muts, repro.InsertOp(ins.Relation, ins.Endogenous, vals...))
	}
	var deleteIDs []int64
	for _, del := range req.Deletes {
		id := repro.FactID(del.ID)
		if del.ID == 0 {
			lock.RLock()
			id, err = resolveFact(d, del)
			lock.RUnlock()
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
		}
		deleteIDs = append(deleteIDs, int64(id))
		muts = append(muts, repro.DeleteOp(id))
	}

	resp := wire.UpdateResponse{DeletedIDs: deleteIDs, RequestID: requestID(r)}
	rctx, root := trace.NewRoot(r.Context(), "update", s.rec.ObserveStage)
	defer root.End()
	var facts []*repro.Fact
	if req.Query == "" {
		// No session addressed: apply directly to the database under the
		// write lock. Pooled sessions over this dataset detect the epoch
		// change and re-ground on their next use.
		lock.Lock()
		facts, err = applyDirect(d, muts)
		lock.Unlock()
	} else {
		q, qerr := repro.ParseQuery(req.Query)
		if qerr != nil {
			writeError(w, http.StatusBadRequest, qerr)
			return
		}
		resp.Pooled = true
		facts, resp.BatchRequests, err = s.pool.Update(rctx, Key{Dataset: req.Dataset, Query: q.String()}, muts)
	}
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	for _, f := range facts {
		if f != nil {
			resp.InsertedIDs = append(resp.InsertedIDs, int64(f.ID))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// resolveFact finds the fact a content-addressed DeleteSpec names.
func resolveFact(d *repro.Database, del wire.DeleteSpec) (repro.FactID, error) {
	vals, err := wire.DecodeValues(del.Values)
	if err != nil {
		return 0, err
	}
	want := repro.Tuple(vals)
	rel := d.Relation(del.Relation)
	if rel == nil {
		return 0, fmt.Errorf("server: %w %q", repro.ErrUnknownRelation, del.Relation)
	}
	for _, f := range rel.Facts() {
		if f.Tuple.Equal(want) {
			return f.ID, nil
		}
	}
	return 0, fmt.Errorf("server: %w matching %s%s", repro.ErrNoFact, del.Relation, want)
}

// applyDirect applies a mutation batch straight to the database (the
// out-of-band path for updates not addressed to any session).
func applyDirect(d *repro.Database, muts []repro.Mutation) ([]*repro.Fact, error) {
	out := make([]*repro.Fact, len(muts))
	for i, m := range muts {
		if m.Insert {
			f, err := d.Insert(m.Relation, m.Endogenous, m.Values...)
			if err != nil {
				return out, err
			}
			out[i] = f
		} else if err := d.Delete(m.ID); err != nil {
			return out, err
		}
	}
	return out, nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	names := make([]string, 0, len(s.cfg.Datasets))
	for name := range s.cfg.Datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	datasets := make([]wire.DatasetStats, len(names))
	for i, name := range names {
		d := s.cfg.Datasets[name]
		lock := s.locks[name]
		lock.RLock()
		ds := wire.DatasetStats{Name: name, Backend: d.Backend(), Facts: d.NumFacts()}
		if derr := d.Err(); derr != nil {
			ds.Degraded = true
			ds.DegradedError = derr.Error()
		}
		lock.RUnlock()
		datasets[i] = ds
	}
	snap := s.rec.Snapshot()
	routes := make([]wire.RouteStats, len(snap))
	for i, rs := range snap {
		routes[i] = wire.RouteStats{
			Route:      rs.Route,
			Count:      rs.Count,
			Errors:     rs.Errors,
			Sheds:      rs.Sheds,
			Panics:     rs.Panics,
			Timeouts:   rs.Timeouts,
			Degraded:   rs.Degraded,
			RatePerSec: rs.RatePerSec,
			MeanMs:     rs.Latency.MeanMs,
			P50Ms:      rs.Latency.P50Ms,
			P95Ms:      rs.Latency.P95Ms,
			P99Ms:      rs.Latency.P99Ms,
			MaxMs:      rs.Latency.MaxMs,
		}
	}
	writeJSON(w, http.StatusOK, wire.StatsResponse{
		UptimeSec: s.rec.Uptime().Seconds(),
		Pool:      s.pool.Stats(),
		Cache:     wire.FromCacheStats(repro.CompileCacheStats()),
		Compiler:  wire.FromCompilerCounters(dnnf.SpeculationCounters()),
		Routes:    routes,
		Datasets:  datasets,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}
