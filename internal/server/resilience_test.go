package server

// Overload and failure tests for the resilience middleware: admission
// control sheds with 429 + Retry-After while in-flight requests complete,
// handler panics become 500s that release their pool refcounts, request
// deadlines become 504s, and a storage-degraded dataset serves reads but
// refuses updates with 503 — with /v1/stats accounting for every shed,
// panic, and timeout.

import (
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/db"
	"repro/internal/faultfs"
	"repro/internal/flights"
	"repro/internal/wire"
)

// getStats fetches and decodes GET /v1/stats.
func getStats(t *testing.T, url string) wire.StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st wire.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// routeStats finds one route's counters in a stats snapshot.
func routeStats(t *testing.T, st wire.StatsResponse, route string) wire.RouteStats {
	t.Helper()
	for _, rs := range st.Routes {
		if rs.Route == route {
			return rs
		}
	}
	t.Fatalf("route %q missing from stats %+v", route, st.Routes)
	return wire.RouteStats{}
}

// TestServerOverloadSheds saturates a MaxInFlight=1 explain route with one
// deliberately parked request: the excess request is shed immediately with
// 429 and a Retry-After hint, exempt routes stay reachable, the parked
// request still completes, and the shed shows up in /v1/stats.
func TestServerOverloadSheds(t *testing.T) {
	url, srv, _ := newTestServer(t, Config{PoolSize: 2, MaxInFlight: 1})
	qtext := flights.Query().String()

	entered := make(chan struct{})
	release := make(chan struct{})
	srv.pool.testHookExplain = func() {
		entered <- struct{}{}
		<-release
	}

	first := make(chan int, 1)
	go func() {
		status, _ := postJSON(t, url+"/v1/explain", wire.ExplainRequest{Dataset: "flights", Query: qtext}, nil)
		first <- status
	}()
	<-entered // the first request now owns the route's only slot

	// Excess request: shed at admission, before any session work.
	resp, err := http.Post(url+"/v1/explain", "application/json",
		strings.NewReader(`{"dataset":"flights","query":"`+qtext+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated explain -> %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 carries no Retry-After header")
	}

	// Observability routes are admission-exempt: both answer while the work
	// route is saturated.
	for _, path := range []string{"/healthz", "/v1/stats"} {
		r, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s under overload -> %d, want 200", path, r.StatusCode)
		}
	}

	// The parked in-flight request completes normally once unblocked.
	close(release)
	srv.pool.testHookExplain = nil
	if status := <-first; status != http.StatusOK {
		t.Fatalf("in-flight explain -> %d, want 200", status)
	}

	rs := routeStats(t, getStats(t, url), "/v1/explain")
	if rs.Sheds != 1 {
		t.Errorf("explain sheds = %d, want 1", rs.Sheds)
	}
	if rs.Errors < 1 {
		t.Errorf("shed request not counted as an error: %+v", rs)
	}
}

// TestServerPanicRecovery injects a panic while the handler holds a pooled
// session: the client gets a 500 (not a dropped connection), the panic is
// counted, the refcount releases (pool drains to zero), and the session
// keeps serving afterwards.
func TestServerPanicRecovery(t *testing.T) {
	url, srv, _ := newTestServer(t, Config{PoolSize: 2})
	qtext := flights.Query().String()

	srv.pool.testHookExplain = func() { panic("injected mid-explain failure") }
	status, raw := postJSON(t, url+"/v1/explain", wire.ExplainRequest{Dataset: "flights", Query: qtext}, nil)
	if status != http.StatusInternalServerError {
		t.Fatalf("panicked explain -> %d (%s), want 500", status, raw)
	}
	if !strings.Contains(raw, "panicked") {
		t.Errorf("500 body does not name the panic: %s", raw)
	}
	if n := srv.pool.inFlight(); n != 0 {
		t.Fatalf("pool holds %d refs after panic, want 0 (refcount leaked)", n)
	}

	// The session survives the panicked request.
	srv.pool.testHookExplain = nil
	var er wire.ExplainResponse
	if status, raw := postJSON(t, url+"/v1/explain", wire.ExplainRequest{Dataset: "flights", Query: qtext}, &er); status != http.StatusOK {
		t.Fatalf("explain after recovered panic -> %d: %s", status, raw)
	}

	rs := routeStats(t, getStats(t, url), "/v1/explain")
	if rs.Panics != 1 {
		t.Errorf("explain panics = %d, want 1", rs.Panics)
	}
}

// TestServerRequestTimeout arms an unmeetable per-request deadline: the
// pipeline aborts at its next cancellation point and the client gets a 504,
// counted in stats.
func TestServerRequestTimeout(t *testing.T) {
	url, _, _ := newTestServer(t, Config{PoolSize: 2, RequestTimeout: time.Nanosecond})
	qtext := flights.Query().String()

	status, raw := postJSON(t, url+"/v1/explain", wire.ExplainRequest{Dataset: "flights", Query: qtext}, nil)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("deadline-bound explain -> %d (%s), want 504", status, raw)
	}
	rs := routeStats(t, getStats(t, url), "/v1/explain")
	if rs.Timeouts != 1 {
		t.Errorf("explain timeouts = %d, want 1", rs.Timeouts)
	}
}

// TestServerDegradedDataset serves a dataset whose store refused a write:
// explains keep answering from the last durable state, updates are refused
// with 503 + Retry-After, and /v1/stats flags the dataset degraded.
func TestServerDegradedDataset(t *testing.T) {
	inj := faultfs.New()
	st, err := db.OpenSortedStoreConfig(db.SortedConfig{
		Dir:  t.TempDir(),
		Sync: db.SyncPolicy{Mode: db.SyncAlways},
		OpenFile: func(path string, flag int, perm os.FileMode) (db.WALFile, error) {
			return inj.Open(path, flag, perm)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewWithStore(st)
	d.CreateRelation("Flights", "src", "dst")
	d.MustInsert("Flights", true, repro.String("JFK"), repro.String("CDG"))
	d.MustInsert("Flights", false, repro.String("CDG"), repro.String("NRT"))
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	inj.CrashAt(inj.Written()) // every further byte of WAL I/O now fails
	if _, err := d.Insert("Flights", true, repro.String("BOS"), repro.String("CDG")); err == nil {
		t.Fatal("insert on crashed store succeeded")
	}
	if d.Err() == nil {
		t.Fatal("database not degraded after storage failure")
	}

	url, _, _ := newTestServer(t, Config{
		Datasets: map[string]*repro.Database{"faulty": d},
		PoolSize: 2,
	})
	qtext := "q() :- Flights(x, y), Flights(y, z)"

	// Reads still serve the last durable (= in-memory, after rollback) state.
	var er wire.ExplainResponse
	if status, raw := postJSON(t, url+"/v1/explain", wire.ExplainRequest{Dataset: "faulty", Query: qtext}, &er); status != http.StatusOK {
		t.Fatalf("explain on degraded dataset -> %d: %s", status, raw)
	}
	if len(er.Tuples) != 1 || er.Tuples[0].NumFacts != 1 {
		t.Fatalf("degraded explain = %+v, want the 1-endogenous-fact answer", er.Tuples)
	}

	// Mutations are refused before any session work, pooled or not.
	for _, query := range []string{"", qtext} {
		req := wire.UpdateRequest{
			Dataset: "faulty", Query: query,
			Inserts: []wire.InsertSpec{{Relation: "Flights", Endogenous: true, Values: []json.RawMessage{
				json.RawMessage(`"EWR"`), json.RawMessage(`"CDG"`),
			}}},
		}
		blob, _ := json.Marshal(req)
		resp, err := http.Post(url+"/v1/update", "application/json", strings.NewReader(string(blob)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("update (query=%q) on degraded dataset -> %d, want 503", query, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("503 carries no Retry-After header")
		}
	}

	ds := getStats(t, url).Datasets
	if len(ds) != 1 || !ds[0].Degraded || ds[0].DegradedError == "" {
		t.Fatalf("stats does not flag the degraded dataset: %+v", ds)
	}
}
