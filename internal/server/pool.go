package server

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"repro"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Key identifies one pooled session: a registered dataset name and the
// normalized (parsed and re-rendered) query text.
type Key struct {
	Dataset string
	Query   string
}

// Pool is a keyed pool of warm repro.Sessions, the server's unit of state:
// one session per (database, query), so repeated explains of the same query
// hit the session's per-tuple artifact caches — and, through them, the
// process-wide compilation cache — end to end.
//
// The pool provides:
//
//   - bounded size with LRU eviction: the least recently used session is
//     Closed when capacity is exceeded (deferred until in-flight requests
//     release it);
//   - single-flight opening: concurrent first requests for one key ground
//     the query once, with the followers reusing the opened session;
//   - per-session serialized access (the Session's own contract) with
//     reader/writer coordination of the shared database: explains of
//     different queries over one database run concurrently, while update
//     batches get exclusive access (repro.Session synchronizes one
//     session's methods, not the Database shared between sessions);
//   - update coalescing: concurrent Update calls for one key merge their
//     mutation batches into a single Session.Apply — one lock acquisition,
//     one batched cache invalidation — instead of queueing N applications.
type Pool struct {
	capacity int
	open     func(Key) (*repro.Session, error)
	// dbLock returns the reader/writer lock guarding the key's database.
	// Explains hold it read; update application holds it write.
	dbLock func(dataset string) *sync.RWMutex

	mu      sync.Mutex
	entries map[Key]*list.Element // values are *entry
	lru     *list.List            // front = most recently used
	opening map[Key]*openCall

	opens, reuses, evictions                        int64
	updateRequests, updateBatches, coalescedBatches int64

	// testHookExplain, when set, runs inside Explain while the session is
	// acquired (refcount raised, release deferred). Tests use it to panic
	// mid-request and assert the refcount still releases.
	testHookExplain func()
}

// DefaultPoolSize bounds the pool when the configuration does not.
const DefaultPoolSize = 8

// NewPool returns an empty pool. open is called (outside the pool lock,
// under the dataset's read lock) to ground a session for a missing key;
// dbLock maps a dataset name to the reader/writer lock serializing its
// database's writers against all of its sessions' readers.
func NewPool(capacity int, open func(Key) (*repro.Session, error), dbLock func(string) *sync.RWMutex) *Pool {
	if capacity <= 0 {
		capacity = DefaultPoolSize
	}
	return &Pool{
		capacity: capacity,
		open:     open,
		dbLock:   dbLock,
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
		opening:  make(map[Key]*openCall),
	}
}

// entry is one pooled session plus its refcount and update batcher.
type entry struct {
	key  Key
	sess *repro.Session

	// refs counts in-flight requests using the session; evicted entries are
	// closed when the last reference is released (guarded by Pool.mu).
	refs    int
	evicted bool

	// Update batcher: pending requests accumulate under bmu while a leader
	// applies the previous batch; the leader drains pending in batches
	// until none remain.
	bmu      sync.Mutex
	pending  []*updateCall
	applying bool
}

type updateCall struct {
	muts []repro.Mutation
	done chan struct{}
	// Results, valid after done is closed.
	facts   []*repro.Fact
	batched int // requests coalesced into the application that covered this call
	err     error
}

type openCall struct {
	done chan struct{}
	err  error
}

// acquire returns the pooled entry for key with its refcount raised,
// opening (and possibly evicting) under single-flight if absent.
func (p *Pool) acquire(key Key) (*entry, error) {
	for {
		p.mu.Lock()
		if el, ok := p.entries[key]; ok {
			e := el.Value.(*entry)
			p.lru.MoveToFront(el)
			e.refs++
			p.reuses++
			p.mu.Unlock()
			return e, nil
		}
		if oc, ok := p.opening[key]; ok {
			p.mu.Unlock()
			<-oc.done
			if oc.err != nil {
				return nil, oc.err
			}
			continue // re-check: the leader installed the entry (or it was already evicted)
		}
		oc := &openCall{done: make(chan struct{})}
		p.opening[key] = oc
		p.mu.Unlock()

		// dbLock is nil for a dataset the server never registered; open then
		// fails with the unknown-dataset error, no locking needed.
		lock := p.dbLock(key.Dataset)
		if lock != nil {
			lock.RLock()
		}
		sess, err := p.open(key)
		if lock != nil {
			lock.RUnlock()
		}

		p.mu.Lock()
		delete(p.opening, key)
		if err != nil {
			p.mu.Unlock()
			oc.err = err
			close(oc.done)
			return nil, err
		}
		e := &entry{key: key, sess: sess, refs: 1}
		p.entries[key] = p.lru.PushFront(e)
		p.opens++
		toClose := p.evictOverCapacityLocked(e)
		p.mu.Unlock()
		close(oc.done)
		for _, s := range toClose {
			s.Close()
		}
		return e, nil
	}
}

// evictOverCapacityLocked trims the LRU past capacity, never evicting keep
// (the entry just inserted). Entries still referenced are marked and closed
// on final release; the rest are returned for closing outside the lock.
func (p *Pool) evictOverCapacityLocked(keep *entry) []*repro.Session {
	var toClose []*repro.Session
	for p.lru.Len() > p.capacity {
		back := p.lru.Back()
		v := back.Value.(*entry)
		if v == keep {
			break
		}
		p.lru.Remove(back)
		delete(p.entries, v.key)
		v.evicted = true
		p.evictions++
		if v.refs == 0 {
			toClose = append(toClose, v.sess)
		}
	}
	return toClose
}

func (p *Pool) release(e *entry) {
	p.mu.Lock()
	e.refs--
	closeNow := e.evicted && e.refs == 0
	p.mu.Unlock()
	if closeNow {
		e.sess.Close()
	}
}

// Explain serves one explain request from the key's pooled session under the
// given per-request budget (the zero budget reproduces the session's
// configured behavior), holding the dataset's read lock for the duration
// (explains of other queries over the same database proceed concurrently;
// update application excludes them).
func (p *Pool) Explain(ctx context.Context, key Key, budget repro.ExplainBudget) ([]repro.TupleExplanation, error) {
	// The acquire span covers pool acquisition (including a cold session
	// open's grounding wait) and the dataset read-lock wait — the queueing
	// portion of a pooled explain's latency.
	_, sp := trace.Start(ctx, "acquire")
	e, err := p.acquire(key)
	if err != nil {
		sp.Set("error", err.Error())
		sp.End()
		return nil, err
	}
	defer p.release(e)
	if p.testHookExplain != nil {
		p.testHookExplain()
	}
	lock := p.dbLock(key.Dataset)
	lock.RLock()
	sp.End()
	defer lock.RUnlock()
	if budget.Enabled() {
		return e.sess.ExplainWithBudget(ctx, budget)
	}
	return e.sess.Explain(ctx)
}

// inFlight sums the refcounts of every pooled entry — the number of
// requests currently holding a session. A quiesced pool reports zero even
// after handlers panicked mid-request (release is deferred, so it runs as
// the panic unwinds).
func (p *Pool) inFlight() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for el := p.lru.Front(); el != nil; el = el.Next() {
		n += el.Value.(*entry).refs
	}
	return n
}

// Update routes one mutation batch through the key's pooled session,
// coalescing it with concurrent batches for the same key: whichever request
// finds no application in flight becomes the leader and applies every
// pending request's mutations in one Session.Apply under the database's
// write lock; the others wait for their portion's results. Returns the
// per-mutation results (aligned with muts, as Session.Apply) and how many
// requests the covering application coalesced.
//
// Failure attribution is per request: Session.Apply stops at the first
// failing mutation (leaving the session consistent) and names its index, so
// the coalesced request owning it observes the error, requests whose
// mutations were all applied before it succeed, and requests the
// application never reached are requeued into the next batch — one client's
// bad mutation never fails its neighbors. Within one request, Apply's
// documented non-transactional semantics hold: a failing request may have
// had a prefix of its own mutations applied.
// The context traces the caller's spans (batch application is not
// cancellable mid-batch); a follower's mutations may be applied under the
// leader's context, so a coalesced request's delta spans can land in the
// leader's trace rather than its own.
func (p *Pool) Update(ctx context.Context, key Key, muts []repro.Mutation) ([]*repro.Fact, int, error) {
	e, err := p.acquire(key)
	if err != nil {
		return nil, 0, err
	}
	defer p.release(e)

	p.mu.Lock()
	p.updateRequests++
	p.mu.Unlock()

	call := &updateCall{muts: muts, done: make(chan struct{})}
	e.bmu.Lock()
	e.pending = append(e.pending, call)
	if e.applying {
		// A leader is mid-application; it will pick this call up in its
		// next batch.
		e.bmu.Unlock()
		<-call.done
		return call.facts, call.batched, call.err
	}
	e.applying = true
	for len(e.pending) > 0 {
		batch := e.pending
		e.pending = nil
		e.bmu.Unlock()
		requeue := p.applyBatch(ctx, e, batch)
		e.bmu.Lock()
		e.pending = append(requeue, e.pending...)
	}
	e.applying = false
	e.bmu.Unlock()
	<-call.done
	return call.facts, call.batched, call.err
}

// applyBatch concatenates the batch's mutations, applies them in one
// Session.Apply under the database write lock, and distributes each call's
// slice of the results. On failure, the call owning the failing mutation
// gets the error, calls fully applied before it succeed, and calls the
// application never reached are returned for requeueing (their done channel
// stays open). Each applyBatch resolves at least one call, so the leader's
// drain loop always terminates.
func (p *Pool) applyBatch(ctx context.Context, e *entry, batch []*updateCall) (requeue []*updateCall) {
	var all []repro.Mutation
	for _, c := range batch {
		all = append(all, c.muts...)
	}
	lock := p.dbLock(e.key.Dataset)
	lock.Lock()
	facts, err := e.sess.ApplyContext(ctx, all)
	lock.Unlock()
	if facts == nil {
		// Apply failed before touching any mutation (closed session, failed
		// re-ground): every call observes the error below.
		facts = make([]*repro.Fact, len(all))
	}

	p.mu.Lock()
	p.updateBatches++
	if len(batch) > 1 {
		p.coalescedBatches++
	}
	p.mu.Unlock()

	// failAt is the failing mutation's index in the concatenated batch:
	// len(all) on success (nothing failed), -1 for a batch-wide failure
	// that applied nothing (closed session, re-ground error).
	failAt := len(all)
	if err != nil {
		failAt = -1
		var me *repro.MutationError
		if errors.As(err, &me) {
			failAt = me.Index
		}
	}
	off := 0
	for _, c := range batch {
		end := off + len(c.muts)
		switch {
		case end <= failAt:
			c.err = nil // every mutation of this call was applied
		case failAt == -1 || failAt >= off:
			c.err = err // batch-wide failure, or this call owns the failing mutation
		default:
			// Entirely after the failing mutation: never applied; requeue.
			requeue = append(requeue, c)
			off = end
			continue
		}
		c.facts = facts[off:end]
		c.batched = len(batch)
		off = end
		close(c.done)
	}
	return requeue
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() wire.PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return wire.PoolStats{
		Opens:            p.opens,
		Reuses:           p.reuses,
		Evictions:        p.evictions,
		Sessions:         p.lru.Len(),
		Capacity:         p.capacity,
		UpdateRequests:   p.updateRequests,
		UpdateBatches:    p.updateBatches,
		CoalescedBatches: p.coalescedBatches,
	}
}

// Close evicts and closes every pooled session. Sessions still referenced
// by in-flight requests are closed when released; the pool stays usable
// (subsequent requests reopen sessions), so Close doubles as a flush.
func (p *Pool) Close() {
	p.mu.Lock()
	var toClose []*repro.Session
	for el := p.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		e.evicted = true
		p.evictions++
		if e.refs == 0 {
			toClose = append(toClose, e.sess)
		}
	}
	p.lru.Init()
	p.entries = make(map[Key]*list.Element)
	p.mu.Unlock()
	for _, s := range toClose {
		s.Close()
	}
}
