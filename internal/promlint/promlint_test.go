package promlint

import (
	"math"
	"strings"
	"testing"
)

const goodExposition = `# HELP repro_uptime_seconds Seconds since start.
# TYPE repro_uptime_seconds gauge
repro_uptime_seconds 12.5
# HELP repro_requests_total Completed requests.
# TYPE repro_requests_total counter
repro_requests_total{route="/v1/explain",code="200"} 3
repro_requests_total{route="/v1/explain",code="400"} 1
# HELP repro_request_duration_seconds Request latency.
# TYPE repro_request_duration_seconds histogram
repro_request_duration_seconds_bucket{route="/v1/explain",le="0.005"} 1
repro_request_duration_seconds_bucket{route="/v1/explain",le="0.1"} 3
repro_request_duration_seconds_bucket{route="/v1/explain",le="+Inf"} 4
repro_request_duration_seconds_sum{route="/v1/explain"} 0.42
repro_request_duration_seconds_count{route="/v1/explain"} 4
`

func TestParseGood(t *testing.T) {
	samples, stats, err := Parse(goodExposition)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if stats.Families != 3 {
		t.Fatalf("families = %d, want 3", stats.Families)
	}
	if stats.Samples != 8 {
		t.Fatalf("samples = %d, want 8", stats.Samples)
	}
	var inf *Sample
	for i := range samples {
		if samples[i].Name == "repro_request_duration_seconds_bucket" && samples[i].Labels["le"] == "+Inf" {
			inf = &samples[i]
		}
	}
	if inf == nil || inf.Value != 4 {
		t.Fatalf("missing or wrong +Inf bucket sample: %+v", inf)
	}
}

func TestValidateGood(t *testing.T) {
	if _, err := Validate(goodExposition); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestParseLabelEscapes(t *testing.T) {
	samples, _, err := Parse("# TYPE m counter\n" + `m{a="x\\y\"z\nw"} 1` + "\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := samples[0].Labels["a"]; got != "x\\y\"z\nw" {
		t.Fatalf("unescaped label = %q", got)
	}
}

func TestParseSpecialValues(t *testing.T) {
	samples, _, err := Parse("# TYPE m gauge\nm{k=\"inf\"} +Inf\nm{k=\"nan\"} NaN\nm{k=\"ts\"} 2 1700000000000\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !math.IsInf(samples[0].Value, 1) {
		t.Fatalf("+Inf parsed as %v", samples[0].Value)
	}
	if !math.IsNaN(samples[1].Value) {
		t.Fatalf("NaN parsed as %v", samples[1].Value)
	}
	if samples[2].Value != 2 {
		t.Fatalf("timestamped sample value = %v", samples[2].Value)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"just words\n",
		"1badname 3\n",
		`m{unclosed="x 3` + "\n",
		`m{a=unquoted} 3` + "\n",
		"m notanumber\n",
		"# TYPE m notatype\n",
		"# TYPE m\n",
	}
	for _, text := range bad {
		if _, _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) accepted malformed input", text)
		}
	}
}

func TestValidateMissingType(t *testing.T) {
	_, err := Validate("orphan_metric 3\n")
	if err == nil || !strings.Contains(err.Error(), "no preceding # TYPE") {
		t.Fatalf("want missing-TYPE error, got %v", err)
	}
}

func TestValidateNonCumulative(t *testing.T) {
	text := `# TYPE h histogram
h_bucket{le="0.1"} 5
h_bucket{le="1"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`
	if _, err := Validate(text); err == nil || !strings.Contains(err.Error(), "not cumulative") {
		t.Fatalf("want non-cumulative error, got %v", err)
	}
}

func TestValidateMissingInf(t *testing.T) {
	text := `# TYPE h histogram
h_bucket{le="0.1"} 5
h_sum 1
h_count 5
`
	if _, err := Validate(text); err == nil || !strings.Contains(err.Error(), "+Inf") {
		t.Fatalf("want missing +Inf error, got %v", err)
	}
}

func TestValidateInfCountMismatch(t *testing.T) {
	text := `# TYPE h histogram
h_bucket{le="+Inf"} 5
h_sum 1
h_count 7
`
	if _, err := Validate(text); err == nil || !strings.Contains(err.Error(), "_count") {
		t.Fatalf("want +Inf/_count mismatch error, got %v", err)
	}
}

func TestValidateSeparatesSeriesByLabels(t *testing.T) {
	// Two series of the same family must not have their buckets merged:
	// each is cumulative on its own even though counts interleave.
	text := `# TYPE h histogram
h_bucket{route="a",le="0.1"} 9
h_bucket{route="a",le="+Inf"} 9
h_count{route="a"} 9
h_bucket{route="b",le="0.1"} 1
h_bucket{route="b",le="+Inf"} 2
h_count{route="b"} 2
`
	if _, err := Validate(text); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRequire(t *testing.T) {
	samples, _, err := Parse(goodExposition)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	for _, req := range []string{
		"repro_uptime_seconds",
		`repro_requests_total{route="/v1/explain"}`,
		`repro_requests_total{route="/v1/explain",code="200"}`,
		`repro_request_duration_seconds_bucket{le="+Inf"}`,
	} {
		if err := Require(samples, req); err != nil {
			t.Errorf("Require(%q): %v", req, err)
		}
	}
	for _, req := range []string{
		"repro_missing_total",
		`repro_requests_total{route="/v1/update"}`,
		`repro_requests_total{route="/v1/explain",code="500"}`,
	} {
		if err := Require(samples, req); err == nil {
			t.Errorf("Require(%q) matched but should not", req)
		}
	}
	if err := Require(samples, `repro_requests_total{bad`); err == nil {
		t.Error("malformed requirement accepted")
	}
}
