// Package promlint parses and validates the Prometheus text exposition
// format (version 0.0.4) without external dependencies. It backs
// cmd/promcheck (the CI gate on /metrics) and the server's exposition
// tests: every line must parse, every sample must belong to a family with a
// preceding # TYPE header, and histograms must be internally consistent
// (cumulative buckets, +Inf present and equal to _count).
package promlint

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed metric sample line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Stats summarizes a validated exposition.
type Stats struct {
	Families int
	Samples  int
}

// baseFamily strips the histogram/summary sample suffixes off a sample name.
func baseFamily(name string, typ map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if t := typ[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

// Parse parses an exposition body into samples, returning an error for the
// first malformed line. Comment lines other than # HELP / # TYPE are
// ignored, per the format.
func Parse(text string) ([]Sample, Stats, error) {
	samples, _, stats, err := parse(text)
	return samples, stats, err
}

func parse(text string) ([]Sample, map[string]string, Stats, error) {
	var samples []Sample
	types := make(map[string]string)
	families := make(map[string]bool)
	for i, line := range strings.Split(text, "\n") {
		lineNo := i + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				if len(fields) < 3 || !validName(fields[2]) {
					return nil, nil, Stats{}, fmt.Errorf("line %d: malformed %s comment: %q", lineNo, fields[1], line)
				}
				if fields[1] == "TYPE" {
					if len(fields) != 4 {
						return nil, nil, Stats{}, fmt.Errorf("line %d: TYPE wants exactly a name and a type: %q", lineNo, line)
					}
					switch fields[3] {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return nil, nil, Stats{}, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
					}
					types[fields[2]] = fields[3]
					families[fields[2]] = true
				}
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, nil, Stats{}, fmt.Errorf("line %d: %v", lineNo, err)
		}
		families[baseFamily(s.Name, types)] = true
		samples = append(samples, s)
	}
	return samples, types, Stats{Families: len(families), Samples: len(samples)}, nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseSample parses `name{label="value",...} value [timestamp]`.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 {
		nameEnd = brace
	} else if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
		nameEnd = sp
	} else {
		return s, fmt.Errorf("no value on sample line %q", line)
	}
	s.Name = rest[:nameEnd]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[nameEnd:]
	if brace >= 0 {
		var err error
		rest, err = parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want a value and optional timestamp after %q, got %q", s.Name, rest)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("invalid timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parseLabels consumes a `{...}` label block, returning the remainder.
func parseLabels(rest string, into map[string]string) (string, error) {
	if rest == "" || rest[0] != '{' {
		return "", fmt.Errorf("expected label block, got %q", rest)
	}
	i := 1
	for {
		for i < len(rest) && (rest[i] == ' ' || rest[i] == ',') {
			i++
		}
		if i < len(rest) && rest[i] == '}' {
			return rest[i+1:], nil
		}
		eq := strings.IndexByte(rest[i:], '=')
		if eq < 0 {
			return "", fmt.Errorf("unterminated label block in %q", rest)
		}
		name := rest[i : i+eq]
		if !validName(name) {
			return "", fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(rest) || rest[i] != '"' {
			return "", fmt.Errorf("label %q value not quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(rest) {
				return "", fmt.Errorf("unterminated label value for %q", name)
			}
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return "", fmt.Errorf("dangling escape in label %q", name)
				}
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", fmt.Errorf("unknown escape \\%c in label %q", rest[i+1], name)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		into[name] = val.String()
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid sample value %q", s)
	}
	return v, nil
}

// Validate parses the exposition and checks structural invariants:
//
//   - every line parses;
//   - every sample's family has a preceding # TYPE header;
//   - histogram buckets are cumulative in le order, carry a +Inf bucket,
//     and the +Inf count equals the series' _count sample.
func Validate(text string) (Stats, error) {
	samples, types, stats, err := parse(text)
	if err != nil {
		return stats, err
	}
	// Group histogram series by family + non-le labels.
	type series struct {
		buckets map[float64]float64 // le -> cumulative count
		count   float64
		hasCnt  bool
	}
	hists := make(map[string]*series)
	for _, s := range samples {
		base := baseFamily(s.Name, types)
		if _, ok := types[base]; !ok {
			return stats, fmt.Errorf("sample %s has no preceding # TYPE header", s.Name)
		}
		if types[base] != "histogram" {
			continue
		}
		key := base + "|" + labelKey(s.Labels)
		h := hists[key]
		if h == nil {
			h = &series{buckets: make(map[float64]float64)}
			hists[key] = h
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, ok := s.Labels["le"]
			if !ok {
				return stats, fmt.Errorf("%s bucket sample missing le label", s.Name)
			}
			bound, err := parseValue(le)
			if err != nil {
				return stats, fmt.Errorf("%s: bad le %q", s.Name, le)
			}
			h.buckets[bound] = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			h.count = s.Value
			h.hasCnt = true
		}
	}
	for key, h := range hists {
		if len(h.buckets) == 0 {
			continue
		}
		bounds := make([]float64, 0, len(h.buckets))
		for b := range h.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		prev := math.Inf(-1)
		prevCount := -1.0
		for _, b := range bounds {
			if h.buckets[b] < prevCount {
				return stats, fmt.Errorf("histogram %s: bucket le=%g count %g below le=%g count %g (not cumulative)",
					key, b, h.buckets[b], prev, prevCount)
			}
			prev, prevCount = b, h.buckets[b]
		}
		inf, ok := h.buckets[math.Inf(1)]
		if !ok {
			return stats, fmt.Errorf("histogram %s: no +Inf bucket", key)
		}
		if h.hasCnt && inf != h.count {
			return stats, fmt.Errorf("histogram %s: +Inf bucket %g != _count %g", key, inf, h.count)
		}
	}
	return stats, nil
}

// labelKey renders labels minus le, sorted, for series grouping.
func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, ",")
}

// Require checks that at least one sample matches the requirement, written
// as `name` or `name{label="value",...}`: the name must match exactly and
// the given labels must be a subset of the sample's.
func Require(samples []Sample, req string) error {
	name := req
	want := map[string]string{}
	if i := strings.IndexByte(req, '{'); i >= 0 {
		name = req[:i]
		rest, err := parseLabels(req[i:], want)
		if err != nil {
			return fmt.Errorf("bad requirement %q: %v", req, err)
		}
		if strings.TrimSpace(rest) != "" {
			return fmt.Errorf("bad requirement %q: trailing %q", req, rest)
		}
	}
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return nil
		}
	}
	return fmt.Errorf("required series %s not found", req)
}
