// Package cnf provides conjunctive normal form formulas, the Tseytin
// transformation from Boolean circuits to CNF, and DIMACS serialization.
//
// The Tseytin transformation (Section 4.2 of the paper) turns the
// endogenous-lineage circuit C' into a CNF φ of size linear in |C'| with the
// three properties the paper relies on: (1) the variables of φ are those of
// C' plus fresh auxiliary variables Z; (2) every satisfying assignment of C'
// extends to exactly one assignment of Z satisfying φ; and (3) no
// non-satisfying assignment of C' has any satisfying extension.
package cnf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/circuit"
)

// Lit is a literal: +v for the positive literal of variable v, -v for the
// negative literal. Variables are positive integers.
type Lit int

// Var returns the literal's variable.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Positive reports whether the literal is positive.
func (l Lit) Positive() bool { return l > 0 }

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// Clause is a disjunction of literals.
type Clause []Lit

func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = strconv.Itoa(int(l))
	}
	return "(" + strings.Join(parts, " ∨ ") + ")"
}

// Formula is a CNF formula together with bookkeeping distinguishing the
// original circuit variables from Tseytin auxiliaries.
type Formula struct {
	Clauses []Clause
	// Aux marks variables introduced by the Tseytin transformation.
	Aux map[int]bool
	// MaxVar is the largest variable index in use.
	MaxVar int
}

// Vars returns the sorted set of variables occurring in the formula.
func (f *Formula) Vars() []int {
	set := make(map[int]bool)
	for _, c := range f.Clauses {
		for _, l := range c {
			set[l.Var()] = true
		}
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// OriginalVars returns the sorted non-auxiliary variables of the formula.
func (f *Formula) OriginalVars() []int {
	var out []int
	for _, v := range f.Vars() {
		if !f.Aux[v] {
			out = append(out, v)
		}
	}
	return out
}

// NumClauses returns the number of clauses.
func (f *Formula) NumClauses() int { return len(f.Clauses) }

// Eval evaluates the formula under the assignment (absent variables are
// false).
func (f *Formula) Eval(assign map[int]bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if assign[l.Var()] == l.Positive() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

func (f *Formula) String() string {
	parts := make([]string, len(f.Clauses))
	for i, c := range f.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Tseytin converts the circuit rooted at root into an equisatisfiable CNF.
// Original circuit variables keep their numbering (circuit.Var values);
// every non-leaf gate receives a fresh auxiliary variable greater than any
// original variable. A final unit clause asserts the root gate.
func Tseytin(root *circuit.Node) *Formula {
	return TseytinReserving(root, 0)
}

// TseytinReserving is Tseytin with the variable range 1..reserved set aside:
// auxiliary variables are numbered strictly above both the circuit's
// variables and `reserved`. Callers translating database lineage pass the
// maximum fact ID so that auxiliaries can never collide with facts that
// happen not to appear in this particular lineage.
func TseytinReserving(root *circuit.Node, reserved int) *Formula {
	f := &Formula{Aux: make(map[int]bool), MaxVar: reserved}
	for _, v := range circuit.Vars(root) {
		if int(v) > f.MaxVar {
			f.MaxVar = int(v)
		}
	}
	lits := make(map[int]Lit) // node ID -> literal standing for the gate
	fresh := func() int {
		f.MaxVar++
		f.Aux[f.MaxVar] = true
		return f.MaxVar
	}

	var rec func(n *circuit.Node) Lit
	rec = func(n *circuit.Node) Lit {
		if l, ok := lits[n.ID()]; ok {
			return l
		}
		var l Lit
		switch n.Kind {
		case circuit.KindVar:
			l = Lit(n.Var)
		case circuit.KindConst:
			// Encode constants with a fresh defined variable so that
			// the exactly-one-extension property holds uniformly.
			g := fresh()
			l = Lit(g)
			if n.Val {
				f.Clauses = append(f.Clauses, Clause{l})
			} else {
				// A false gate is forced off; if it is the root, the final
				// unit clause makes the formula unsatisfiable, as expected.
				f.Clauses = append(f.Clauses, Clause{l.Neg()})
			}
		case circuit.KindNot:
			c := rec(n.Children[0])
			g := fresh()
			l = Lit(g)
			// g <-> ¬c
			f.Clauses = append(f.Clauses,
				Clause{l.Neg(), c.Neg()},
				Clause{l, c})
		case circuit.KindAnd:
			cs := make([]Lit, len(n.Children))
			for i, ch := range n.Children {
				cs[i] = rec(ch)
			}
			g := fresh()
			l = Lit(g)
			// g -> ci for all i; (c1 ∧ ... ∧ ck) -> g.
			long := make(Clause, 0, len(cs)+1)
			long = append(long, l)
			for _, c := range cs {
				f.Clauses = append(f.Clauses, Clause{l.Neg(), c})
				long = append(long, c.Neg())
			}
			f.Clauses = append(f.Clauses, long)
		case circuit.KindOr:
			cs := make([]Lit, len(n.Children))
			for i, ch := range n.Children {
				cs[i] = rec(ch)
			}
			g := fresh()
			l = Lit(g)
			// ci -> g for all i; g -> (c1 ∨ ... ∨ ck).
			long := make(Clause, 0, len(cs)+1)
			long = append(long, l.Neg())
			for _, c := range cs {
				f.Clauses = append(f.Clauses, Clause{l, c.Neg()})
				long = append(long, c)
			}
			f.Clauses = append(f.Clauses, long)
		}
		lits[n.ID()] = l
		return l
	}

	rootLit := rec(root)
	f.Clauses = append(f.Clauses, Clause{rootLit})
	return f
}

// WriteDIMACS writes the formula in DIMACS CNF format.
func (f *Formula) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.MaxVar, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			if _, err := fmt.Fprintf(bw, "%d ", int(l)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseDIMACS reads a DIMACS CNF file. Comment lines (c ...) are skipped.
func ParseDIMACS(r io.Reader) (*Formula, error) {
	f := &Formula{Aux: make(map[int]bool)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	sawHeader := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("cnf: malformed problem line %q", line)
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("cnf: bad variable count in %q: %v", line, err)
			}
			f.MaxVar = nv
			sawHeader = true
			continue
		}
		if !sawHeader {
			return nil, fmt.Errorf("cnf: clause before problem line: %q", line)
		}
		var clause Clause
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("cnf: bad literal %q: %v", tok, err)
			}
			if n == 0 {
				break
			}
			clause = append(clause, Lit(n))
			if v := Lit(n).Var(); v > f.MaxVar {
				f.MaxVar = v
			}
		}
		if len(clause) > 0 {
			f.Clauses = append(f.Clauses, clause)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}
