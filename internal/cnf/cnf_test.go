package cnf

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/circuit"
)

// TestTseytinProperties verifies, on random circuits, the three properties
// the paper's architecture relies on (Section 4.2): every satisfying
// assignment of the circuit has exactly one satisfying extension to the
// auxiliary variables, and no non-satisfying assignment has any.
func TestTseytinProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 80; trial++ {
		b := circuit.NewBuilder()
		nVars := 1 + rng.Intn(4)
		c := randomCircuit(rng, b, nVars, 3)
		f := Tseytin(c)

		orig := circuit.Vars(c)
		var aux []int
		for _, v := range f.Vars() {
			if f.Aux[v] {
				aux = append(aux, v)
			}
		}
		if len(aux) > 14 {
			continue // keep the brute force tractable
		}
		assign := make(map[circuit.Var]bool)
		cnfAssign := make(map[int]bool)
		for mask := 0; mask < 1<<len(orig); mask++ {
			for i, v := range orig {
				val := mask&(1<<i) != 0
				assign[v] = val
				cnfAssign[int(v)] = val
			}
			extensions := 0
			for amask := 0; amask < 1<<len(aux); amask++ {
				for i, v := range aux {
					cnfAssign[v] = amask&(1<<i) != 0
				}
				if f.Eval(cnfAssign) {
					extensions++
				}
			}
			want := 0
			if circuit.Eval(c, assign) {
				want = 1
			}
			if extensions != want {
				t.Fatalf("trial %d: assignment %v has %d satisfying extensions, want %d\ncircuit: %s",
					trial, assign, extensions, want, circuit.String(c))
			}
		}
	}
}

func TestTseytinLinearSize(t *testing.T) {
	b := circuit.NewBuilder()
	// Chain of 50 binary ORs of ANDs: size grows linearly.
	cur := b.Variable(1)
	for i := 2; i <= 50; i++ {
		cur = b.Or(cur, b.And(b.Variable(circuit.Var(i)), b.Variable(circuit.Var(i+100))))
	}
	f := Tseytin(cur)
	gates := circuit.Size(cur)
	if f.NumClauses() > 5*gates+10 {
		t.Errorf("Tseytin produced %d clauses for %d gates; expected linear growth",
			f.NumClauses(), gates)
	}
}

func TestTseytinConstantCircuits(t *testing.T) {
	b := circuit.NewBuilder()
	fTrue := Tseytin(b.True())
	// Unique aux assignment must satisfy.
	sat := 0
	for mask := 0; mask < 1<<len(fTrue.Vars()); mask++ {
		assign := make(map[int]bool)
		for i, v := range fTrue.Vars() {
			assign[v] = mask&(1<<i) != 0
		}
		if fTrue.Eval(assign) {
			sat++
		}
	}
	if sat != 1 {
		t.Errorf("Tseytin(true) has %d models, want 1", sat)
	}

	fFalse := Tseytin(b.False())
	for mask := 0; mask < 1<<len(fFalse.Vars()); mask++ {
		assign := make(map[int]bool)
		for i, v := range fFalse.Vars() {
			assign[v] = mask&(1<<i) != 0
		}
		if fFalse.Eval(assign) {
			t.Fatal("Tseytin(false) is satisfiable")
		}
	}
}

func TestLitBasics(t *testing.T) {
	l := Lit(5)
	if l.Var() != 5 || !l.Positive() || l.Neg() != Lit(-5) {
		t.Errorf("Lit(5) basics broken: var=%d pos=%v neg=%d", l.Var(), l.Positive(), l.Neg())
	}
	m := Lit(-3)
	if m.Var() != 3 || m.Positive() || m.Neg() != Lit(3) {
		t.Errorf("Lit(-3) basics broken: var=%d pos=%v neg=%d", m.Var(), m.Positive(), m.Neg())
	}
}

func TestOriginalVars(t *testing.T) {
	b := circuit.NewBuilder()
	c := b.And(b.Variable(2), b.Or(b.Variable(7), b.Variable(4)))
	f := Tseytin(c)
	got := f.OriginalVars()
	want := []int{2, 4, 7}
	if len(got) != len(want) {
		t.Fatalf("OriginalVars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OriginalVars = %v, want %v", got, want)
		}
	}
	for _, v := range got {
		if f.Aux[v] {
			t.Errorf("original variable %d marked auxiliary", v)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	f := &Formula{
		Clauses: []Clause{{1, -2, 3}, {-1}, {2, 3}},
		Aux:     map[int]bool{},
		MaxVar:  3,
	}
	var buf bytes.Buffer
	if err := f.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Clauses) != len(f.Clauses) {
		t.Fatalf("round trip clause count = %d, want %d", len(g.Clauses), len(f.Clauses))
	}
	for i := range f.Clauses {
		if len(g.Clauses[i]) != len(f.Clauses[i]) {
			t.Fatalf("clause %d length mismatch", i)
		}
		for j := range f.Clauses[i] {
			if g.Clauses[i][j] != f.Clauses[i][j] {
				t.Fatalf("clause %d literal %d = %d, want %d", i, j, g.Clauses[i][j], f.Clauses[i][j])
			}
		}
	}
	if g.MaxVar != 3 {
		t.Errorf("MaxVar = %d, want 3", g.MaxVar)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []string{
		"1 2 0",             // clause before header
		"p cnf x 2\n1 0",    // bad var count
		"p cnf 2 1\n1 a 0",  // bad literal
		"p dnf 2 1\n1 2 0",  // wrong format tag
		"p cnf 2 1 extra\n", // malformed problem line field count is 5
	}
	for _, in := range cases {
		if _, err := ParseDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("ParseDIMACS(%q) succeeded, want error", in)
		}
	}
}

func TestParseDIMACSSkipsComments(t *testing.T) {
	in := "c a comment\np cnf 2 1\nc another\n1 -2 0\n"
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 1 || len(f.Clauses[0]) != 2 {
		t.Fatalf("parsed %v, want one 2-literal clause", f.Clauses)
	}
}

func TestFormulaEval(t *testing.T) {
	f := &Formula{Clauses: []Clause{{1, 2}, {-1, 3}}}
	if !f.Eval(map[int]bool{1: true, 3: true}) {
		t.Error("satisfying assignment rejected")
	}
	if f.Eval(map[int]bool{1: true, 3: false}) {
		t.Error("falsifying assignment accepted")
	}
}

func randomCircuit(rng *rand.Rand, b *circuit.Builder, nVars, depth int) *circuit.Node {
	if depth == 0 || rng.Intn(4) == 0 {
		v := b.Variable(circuit.Var(1 + rng.Intn(nVars)))
		if rng.Intn(4) == 0 {
			return b.Not(v)
		}
		return v
	}
	n := 2 + rng.Intn(2)
	cs := make([]*circuit.Node, n)
	for i := range cs {
		cs[i] = randomCircuit(rng, b, nVars, depth-1)
	}
	if rng.Intn(2) == 0 {
		return b.And(cs...)
	}
	return b.Or(cs...)
}
