// Package circuit implements Boolean circuits over fact variables: directed
// acyclic graphs of variable, constant, NOT, AND, and OR gates.
//
// Circuits are the provenance representation produced by the query engine
// (the lineage Lin(q,D) of Imielinski and Lipski) and the input to the
// Tseytin transformation. A Builder hash-conses gates so that structurally
// identical subcircuits are shared, which keeps lineage linear in the size
// of the evaluation rather than in the number of derivations.
package circuit

import (
	"fmt"
	"sort"
	"strings"
)

// Var identifies a Boolean variable. The engine uses fact IDs as variables;
// the Tseytin transformation introduces fresh auxiliary variables above the
// maximum input variable.
type Var int

// Kind enumerates gate kinds.
type Kind uint8

// Gate kinds.
const (
	KindVar Kind = iota
	KindConst
	KindNot
	KindAnd
	KindOr
)

func (k Kind) String() string {
	switch k {
	case KindVar:
		return "var"
	case KindConst:
		return "const"
	case KindNot:
		return "not"
	case KindAnd:
		return "and"
	case KindOr:
		return "or"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Node is a gate in a circuit DAG. Nodes are immutable once created and are
// shared; always construct them through a Builder.
type Node struct {
	Kind     Kind
	Var      Var     // for KindVar
	Val      bool    // for KindConst
	Children []*Node // for KindNot (1 child), KindAnd, KindOr
	id       int     // builder-unique, for hash-consing and memoization
}

// ID returns a builder-unique identifier for the node, usable as a map key
// for memoized traversals.
func (n *Node) ID() int { return n.id }

// Builder constructs hash-consed circuit nodes. The zero value is not
// usable; call NewBuilder.
type Builder struct {
	nextID int
	vars   map[Var]*Node
	trueN  *Node
	falseN *Node
	nots   map[int]*Node
	ands   map[string]*Node
	ors    map[string]*Node
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	b := &Builder{
		vars: make(map[Var]*Node),
		nots: make(map[int]*Node),
		ands: make(map[string]*Node),
		ors:  make(map[string]*Node),
	}
	b.trueN = &Node{Kind: KindConst, Val: true, id: b.fresh()}
	b.falseN = &Node{Kind: KindConst, Val: false, id: b.fresh()}
	return b
}

func (b *Builder) fresh() int {
	b.nextID++
	return b.nextID
}

// Const returns the constant gate for v.
func (b *Builder) Const(v bool) *Node {
	if v {
		return b.trueN
	}
	return b.falseN
}

// True returns the constant-true gate.
func (b *Builder) True() *Node { return b.trueN }

// False returns the constant-false gate.
func (b *Builder) False() *Node { return b.falseN }

// Variable returns the gate for variable v.
func (b *Builder) Variable(v Var) *Node {
	if n, ok := b.vars[v]; ok {
		return n
	}
	n := &Node{Kind: KindVar, Var: v, id: b.fresh()}
	b.vars[v] = n
	return n
}

// Not returns the negation of n, folding constants and double negation.
func (b *Builder) Not(n *Node) *Node {
	switch n.Kind {
	case KindConst:
		return b.Const(!n.Val)
	case KindNot:
		return n.Children[0]
	}
	if m, ok := b.nots[n.id]; ok {
		return m
	}
	m := &Node{Kind: KindNot, Children: []*Node{n}, id: b.fresh()}
	b.nots[n.id] = m
	return m
}

// nary builds a hash-consed n-ary gate after constant folding,
// deduplication, and single-child collapse. neutral is the identity element
// (true for AND, false for OR); the opposite constant absorbs.
func (b *Builder) nary(kind Kind, cache map[string]*Node, neutral bool, children []*Node) *Node {
	seen := make(map[int]bool, len(children))
	kept := make([]*Node, 0, len(children))
	for _, c := range children {
		if c.Kind == KindConst {
			if c.Val == neutral {
				continue
			}
			return b.Const(!neutral)
		}
		if !seen[c.id] {
			seen[c.id] = true
			kept = append(kept, c)
		}
	}
	switch len(kept) {
	case 0:
		return b.Const(neutral)
	case 1:
		return kept[0]
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].id < kept[j].id })
	var key strings.Builder
	for _, c := range kept {
		fmt.Fprintf(&key, "%d,", c.id)
	}
	if n, ok := cache[key.String()]; ok {
		return n
	}
	n := &Node{Kind: kind, Children: kept, id: b.fresh()}
	cache[key.String()] = n
	return n
}

// And returns the conjunction of the children.
func (b *Builder) And(children ...*Node) *Node {
	return b.nary(KindAnd, b.ands, true, children)
}

// Or returns the disjunction of the children.
func (b *Builder) Or(children ...*Node) *Node {
	return b.nary(KindOr, b.ors, false, children)
}

// Eval evaluates the circuit rooted at n under the assignment: a variable is
// true iff assign[v] is true (absent variables are false).
func Eval(n *Node, assign map[Var]bool) bool {
	memo := make(map[int]bool)
	var rec func(*Node) bool
	rec = func(m *Node) bool {
		if v, ok := memo[m.id]; ok {
			return v
		}
		var v bool
		switch m.Kind {
		case KindVar:
			v = assign[m.Var]
		case KindConst:
			v = m.Val
		case KindNot:
			v = !rec(m.Children[0])
		case KindAnd:
			v = true
			for _, c := range m.Children {
				if !rec(c) {
					v = false
					break
				}
			}
		case KindOr:
			v = false
			for _, c := range m.Children {
				if rec(c) {
					v = true
					break
				}
			}
		}
		memo[m.id] = v
		return v
	}
	return rec(n)
}

// Vars returns the sorted set of variables appearing under n.
func Vars(n *Node) []Var {
	set := make(map[Var]bool)
	visit(n, func(m *Node) {
		if m.Kind == KindVar {
			set[m.Var] = true
		}
	})
	out := make([]Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// visit walks the DAG rooted at n once per node, in children-first order.
func visit(n *Node, f func(*Node)) {
	seen := make(map[int]bool)
	var rec func(*Node)
	rec = func(m *Node) {
		if seen[m.id] {
			return
		}
		seen[m.id] = true
		for _, c := range m.Children {
			rec(c)
		}
		f(m)
	}
	rec(n)
}

// Size returns the number of distinct gates in the DAG rooted at n.
func Size(n *Node) int {
	count := 0
	visit(n, func(*Node) { count++ })
	return count
}

// NumEdges returns the total number of child edges in the DAG rooted at n.
func NumEdges(n *Node) int {
	edges := 0
	visit(n, func(m *Node) { edges += len(m.Children) })
	return edges
}

// Condition returns a circuit equivalent to n with every variable in assign
// replaced by the given constant. The result is built in b and shares
// structure where possible. This implements the partial evaluations C[f→1]
// and C[f→0] of Algorithm 1 and the exogenous fixing that turns Lin into
// ELin.
func Condition(b *Builder, n *Node, assign map[Var]bool) *Node {
	memo := make(map[int]*Node)
	var rec func(*Node) *Node
	rec = func(m *Node) *Node {
		if r, ok := memo[m.id]; ok {
			return r
		}
		var r *Node
		switch m.Kind {
		case KindVar:
			if val, ok := assign[m.Var]; ok {
				r = b.Const(val)
			} else {
				r = b.Variable(m.Var)
			}
		case KindConst:
			r = b.Const(m.Val)
		case KindNot:
			r = b.Not(rec(m.Children[0]))
		case KindAnd:
			cs := make([]*Node, len(m.Children))
			for i, c := range m.Children {
				cs[i] = rec(c)
			}
			r = b.And(cs...)
		case KindOr:
			cs := make([]*Node, len(m.Children))
			for i, c := range m.Children {
				cs[i] = rec(c)
			}
			r = b.Or(cs...)
		}
		memo[m.id] = r
		return r
	}
	return rec(n)
}

// String renders the circuit as a formula. Shared subcircuits are expanded,
// so this is only suitable for small circuits (tests, examples).
func String(n *Node) string {
	var rec func(*Node) string
	rec = func(m *Node) string {
		switch m.Kind {
		case KindVar:
			return fmt.Sprintf("x%d", m.Var)
		case KindConst:
			if m.Val {
				return "⊤"
			}
			return "⊥"
		case KindNot:
			return "¬" + rec(m.Children[0])
		case KindAnd, KindOr:
			op := " ∧ "
			if m.Kind == KindOr {
				op = " ∨ "
			}
			parts := make([]string, len(m.Children))
			for i, c := range m.Children {
				parts[i] = rec(c)
			}
			return "(" + strings.Join(parts, op) + ")"
		}
		return "?"
	}
	return rec(n)
}

// Dot renders the DAG rooted at n in Graphviz DOT format, for debugging and
// documentation.
func Dot(n *Node) string {
	var b strings.Builder
	b.WriteString("digraph circuit {\n  node [shape=circle];\n")
	visit(n, func(m *Node) {
		label := ""
		switch m.Kind {
		case KindVar:
			label = fmt.Sprintf("x%d", m.Var)
		case KindConst:
			if m.Val {
				label = "1"
			} else {
				label = "0"
			}
		case KindNot:
			label = "¬"
		case KindAnd:
			label = "∧"
		case KindOr:
			label = "∨"
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", m.id, label)
		for _, c := range m.Children {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", m.id, c.id)
		}
	})
	b.WriteString("}\n")
	return b.String()
}

// CountSatAssignments counts, by brute force over all 2^|vars| assignments
// to the given variable universe, how many satisfy n. It is exponential and
// intended only for testing small circuits.
func CountSatAssignments(n *Node, universe []Var) int {
	count := 0
	assign := make(map[Var]bool, len(universe))
	var rec func(int)
	rec = func(i int) {
		if i == len(universe) {
			if Eval(n, assign) {
				count++
			}
			return
		}
		assign[universe[i]] = false
		rec(i + 1)
		assign[universe[i]] = true
		rec(i + 1)
		delete(assign, universe[i])
	}
	rec(0)
	return count
}
