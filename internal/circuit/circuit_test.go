package circuit

import (
	"math/rand"
	"strings"
	"testing"
)

func TestBuilderConstantFolding(t *testing.T) {
	b := NewBuilder()
	x := b.Variable(1)
	if got := b.And(x, b.True()); got != x {
		t.Errorf("And(x, true) = %v, want x", String(got))
	}
	if got := b.And(x, b.False()); got != b.False() {
		t.Errorf("And(x, false) = %v, want false", String(got))
	}
	if got := b.Or(x, b.False()); got != x {
		t.Errorf("Or(x, false) = %v, want x", String(got))
	}
	if got := b.Or(x, b.True()); got != b.True() {
		t.Errorf("Or(x, true) = %v, want true", String(got))
	}
	if got := b.Not(b.Not(x)); got != x {
		t.Errorf("Not(Not(x)) = %v, want x", String(got))
	}
	if got := b.Not(b.True()); got != b.False() {
		t.Errorf("Not(true) = %v, want false", String(got))
	}
	if got := b.And(); got != b.True() {
		t.Errorf("And() = %v, want true", String(got))
	}
	if got := b.Or(); got != b.False() {
		t.Errorf("Or() = %v, want false", String(got))
	}
}

func TestBuilderHashConsing(t *testing.T) {
	b := NewBuilder()
	x, y := b.Variable(1), b.Variable(2)
	if b.And(x, y) != b.And(y, x) {
		t.Error("And not canonicalized across argument order")
	}
	if b.Or(x, y, x) != b.Or(x, y) {
		t.Error("Or does not deduplicate children")
	}
	if b.Variable(1) != x {
		t.Error("Variable not hash-consed")
	}
}

func TestEval(t *testing.T) {
	b := NewBuilder()
	x, y, z := b.Variable(1), b.Variable(2), b.Variable(3)
	// f = (x ∧ y) ∨ ¬z
	f := b.Or(b.And(x, y), b.Not(z))
	cases := []struct {
		x, y, z bool
		want    bool
	}{
		{false, false, false, true},
		{false, false, true, false},
		{true, true, true, true},
		{true, false, true, false},
		{true, true, false, true},
	}
	for _, c := range cases {
		got := Eval(f, map[Var]bool{1: c.x, 2: c.y, 3: c.z})
		if got != c.want {
			t.Errorf("Eval(x=%v y=%v z=%v) = %v, want %v", c.x, c.y, c.z, got, c.want)
		}
	}
}

func TestVars(t *testing.T) {
	b := NewBuilder()
	f := b.Or(b.And(b.Variable(3), b.Variable(1)), b.Not(b.Variable(2)))
	vars := Vars(f)
	want := []Var{1, 2, 3}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v, want %v", vars, want)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", vars, want)
		}
	}
}

func TestConditionAgreesWithEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		b := NewBuilder()
		nVars := 2 + rng.Intn(5)
		f := randomCircuit(rng, b, nVars, 4)
		universe := Vars(f)
		if len(universe) == 0 {
			continue
		}
		// Condition on a random subset of variables.
		fix := make(map[Var]bool)
		for _, v := range universe {
			if rng.Intn(2) == 0 {
				fix[v] = rng.Intn(2) == 0
			}
		}
		g := Condition(b, f, fix)
		for _, v := range Vars(g) {
			if _, fixed := fix[v]; fixed {
				t.Fatalf("conditioned variable %d still present", v)
			}
		}
		// Check equivalence on all assignments of the free variables.
		free := Vars(g)
		assign := make(map[Var]bool)
		for mask := 0; mask < 1<<len(universe); mask++ {
			ok := true
			for i, v := range universe {
				val := mask&(1<<i) != 0
				if want, fixed := fix[v]; fixed {
					if val != want {
						ok = false
						break
					}
				}
				assign[v] = val
			}
			if !ok {
				continue
			}
			if Eval(f, assign) != Eval(g, assign) {
				t.Fatalf("trial %d: Condition changed semantics on %v\nf=%s\ng=%s fix=%v free=%v",
					trial, assign, String(f), String(g), fix, free)
			}
		}
	}
}

func TestCountSatAssignments(t *testing.T) {
	b := NewBuilder()
	x, y := b.Variable(1), b.Variable(2)
	f := b.Or(x, y)
	if got := CountSatAssignments(f, []Var{1, 2}); got != 3 {
		t.Errorf("#SAT(x∨y) = %d, want 3", got)
	}
	if got := CountSatAssignments(f, []Var{1, 2, 3}); got != 6 {
		t.Errorf("#SAT(x∨y) over 3 vars = %d, want 6", got)
	}
	if got := CountSatAssignments(b.True(), nil); got != 1 {
		t.Errorf("#SAT(⊤) = %d, want 1", got)
	}
	if got := CountSatAssignments(b.False(), nil); got != 0 {
		t.Errorf("#SAT(⊥) = %d, want 0", got)
	}
}

func TestSizeAndEdges(t *testing.T) {
	b := NewBuilder()
	x, y := b.Variable(1), b.Variable(2)
	shared := b.And(x, y)
	f := b.Or(shared, b.Not(shared))
	// Nodes: x, y, and, not, or = 5.
	if got := Size(f); got != 5 {
		t.Errorf("Size = %d, want 5", got)
	}
	if got := NumEdges(f); got != 5 {
		t.Errorf("NumEdges = %d, want 5", got)
	}
}

func TestDotOutput(t *testing.T) {
	b := NewBuilder()
	f := b.And(b.Variable(1), b.Not(b.Variable(2)))
	dot := Dot(f)
	for _, want := range []string{"digraph", "x1", "x2", "∧", "¬"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot output missing %q:\n%s", want, dot)
		}
	}
}

// randomCircuit builds a random circuit over variables 1..nVars with the
// given depth budget.
func randomCircuit(rng *rand.Rand, b *Builder, nVars, depth int) *Node {
	if depth == 0 || rng.Intn(4) == 0 {
		return b.Variable(Var(1 + rng.Intn(nVars)))
	}
	switch rng.Intn(4) {
	case 0:
		return b.Not(randomCircuit(rng, b, nVars, depth-1))
	case 1:
		n := 2 + rng.Intn(2)
		cs := make([]*Node, n)
		for i := range cs {
			cs[i] = randomCircuit(rng, b, nVars, depth-1)
		}
		return b.And(cs...)
	default:
		n := 2 + rng.Intn(2)
		cs := make([]*Node, n)
		for i := range cs {
			cs[i] = randomCircuit(rng, b, nVars, depth-1)
		}
		return b.Or(cs...)
	}
}
