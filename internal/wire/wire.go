// Package wire defines the explanation service's JSON wire protocol: the
// request and response bodies of shapleyd's HTTP API (internal/server) and
// the machine-readable output of `shapley -json`. Both producers share
// these types and the encoding helpers below, so a CLI run and a served
// response for the same database state are byte-diffable.
//
// Values travel as plain JSON scalars: strings decode to db.String, numbers
// to db.Int when they are integral (no fraction, no exponent) and db.Float
// otherwise. Exact Shapley values are carried twice per fact — as the exact
// rational in big.Rat string form ("43/105") and as a float convenience —
// so clients can cross-check served values big.Rat-identically against a
// local computation.
package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/db"
	"repro/internal/dnnf"
	"repro/internal/trace"
)

// TraceSpan is one node of a request's stage-trace tree: the span's name,
// start offset and duration in milliseconds, stage-specific attributes
// (clause/node counts, cache hit kind, speculation and portfolio outcomes,
// degradation cause), and child spans. It aliases trace.SpanNode so the
// server can attach a snapshot without conversion.
type TraceSpan = trace.SpanNode

// ExplainRequest is the body of POST /v1/explain.
type ExplainRequest struct {
	// Dataset names a database registered with the server.
	Dataset string `json:"dataset"`
	// Query is the datalog-style UCQ text (see internal/query). The server
	// normalizes it by parse + re-render, so textual variants of one query
	// share a pooled session.
	Query string `json:"query"`
	// Top truncates each tuple's ranked fact list; 0 or negative returns
	// every fact.
	Top int `json:"top,omitempty"`
	// NoPool bypasses the session pool: the server opens a fresh session,
	// explains, and closes it — the open-per-request baseline the pooled
	// path is benchmarked against.
	NoPool bool `json:"no_pool,omitempty"`
	// BudgetMs bounds this request's exact computation wall clock in
	// milliseconds; past it the answer degrades to sampled estimates with
	// confidence intervals instead of erroring. 0 defers to the server's
	// configured budget.
	BudgetMs float64 `json:"budget_ms,omitempty"`
	// Mode is "auto" (exact within budget, sampled past it), "exact"
	// (never sample), or "approximate" (sample immediately); empty defers
	// to the server.
	Mode string `json:"mode,omitempty"`
	// MinSamples floors the sampler's permutation count; 0 defers to the
	// server.
	MinSamples int `json:"min_samples,omitempty"`
	// Seed perturbs the deterministic sampling seed (0 = the canonical
	// lineage-derived seed).
	Seed int64 `json:"seed,omitempty"`
	// Trace asks the server to return the request's stage-trace span tree
	// in the response's "trace" field.
	Trace bool `json:"trace,omitempty"`
}

// FactScore is one ranked fact of a tuple's explanation.
type FactScore struct {
	// ID is the fact's provenance identity in the server's database.
	ID int64 `json:"id"`
	// Relation and Tuple identify the fact by content (stable across
	// processes, unlike IDs).
	Relation string `json:"relation"`
	Tuple    []any  `json:"tuple"`
	// ValueRat is the exact Shapley value in big.Rat string form; empty
	// when the explanation fell back to the CNF Proxy.
	ValueRat string `json:"value_rat,omitempty"`
	// Score is the float form of the fact's contribution (exact value,
	// sampled estimate, or proxy score, per the tuple's method).
	Score float64 `json:"score"`
	// CILow and CIHigh bound the 95% confidence interval around Score for
	// approximately answered tuples; absent (nil) on exact and proxy
	// answers, so those responses are byte-identical to the pre-anytime
	// protocol.
	CILow  *float64 `json:"ci_low,omitempty"`
	CIHigh *float64 `json:"ci_high,omitempty"`
}

// TupleExplanation is the wire form of one explained output tuple.
type TupleExplanation struct {
	// Tuple is the output tuple (empty for a Boolean query's yes-answer).
	Tuple []any `json:"tuple"`
	// Method is "exact", "approximate", or "cnf-proxy".
	Method string `json:"method"`
	// Approximate marks a tuple answered by the anytime sampling tier: its
	// fact scores are Monte Carlo estimates carrying ci_low/ci_high bounds,
	// and Samples says how many permutations were spent. Both fields are
	// absent on exact answers.
	Approximate bool `json:"approximate,omitempty"`
	Samples     int  `json:"samples,omitempty"`
	// DegradedCause says why an approximate tuple degraded: "mode" (the
	// request asked for sampling), "node_budget", "deadline", or "error";
	// absent on exact and proxy answers.
	DegradedCause string `json:"degraded_cause,omitempty"`
	// NumFacts is the number of distinct endogenous facts in the lineage.
	NumFacts int `json:"num_facts"`
	// ElapsedMs is the wall-clock cost of explaining this tuple (for cached
	// session tuples: of the original computation).
	ElapsedMs float64 `json:"elapsed_ms"`
	// Facts lists the (possibly truncated) ranking by decreasing
	// contribution.
	Facts []FactScore `json:"facts"`
}

// ExplainResponse is the body answering POST /v1/explain and the output of
// `shapley -json`.
type ExplainResponse struct {
	Dataset string `json:"dataset,omitempty"`
	// Query is the normalized query text.
	Query string `json:"query"`
	// Pooled says whether a pooled warm session served the request.
	Pooled bool `json:"pooled"`
	// ElapsedMs is the server-side (or CLI-side) wall clock for the whole
	// request.
	ElapsedMs float64            `json:"elapsed_ms"`
	Tuples    []TupleExplanation `json:"tuples"`
	// RequestID echoes the server-assigned request ID (also sent as the
	// X-Request-Id header), correlating the response with server logs and
	// the slow-explain log. Absent on CLI output.
	RequestID string `json:"request_id,omitempty"`
	// Trace is the request's stage-trace span tree, present when the request
	// set "trace": true.
	Trace *TraceSpan `json:"trace,omitempty"`
}

// InsertSpec describes one fact insertion in an update batch.
type InsertSpec struct {
	Relation   string            `json:"relation"`
	Endogenous bool              `json:"endogenous"`
	Values     []json.RawMessage `json:"values"`
}

// DeleteSpec names one fact to delete: by ID, or — when ID is zero — by
// content (relation + values), resolved against the current database.
type DeleteSpec struct {
	ID       int64             `json:"id,omitempty"`
	Relation string            `json:"relation,omitempty"`
	Values   []json.RawMessage `json:"values,omitempty"`
}

// UpdateRequest is the body of POST /v1/update: a batch of insertions and
// deletions applied in order (inserts first, then deletes).
type UpdateRequest struct {
	Dataset string `json:"dataset"`
	// Query routes the batch through the pooled session for (Dataset,
	// Query), which maintains it incrementally and coalesces it with
	// concurrent batches. Empty applies the batch directly to the database;
	// pooled sessions then detect the out-of-band epoch change and
	// re-ground on their next use — correct, just not incremental.
	Query   string       `json:"query,omitempty"`
	Inserts []InsertSpec `json:"inserts,omitempty"`
	Deletes []DeleteSpec `json:"deletes,omitempty"`
}

// UpdateResponse reports an applied update batch.
type UpdateResponse struct {
	// InsertedIDs are the new facts' IDs, aligned with the request's
	// Inserts; deletes by content report the resolved IDs in DeletedIDs.
	InsertedIDs []int64 `json:"inserted_ids,omitempty"`
	DeletedIDs  []int64 `json:"deleted_ids,omitempty"`
	// Pooled says whether a pooled session absorbed the batch
	// incrementally.
	Pooled bool `json:"pooled"`
	// BatchRequests is how many HTTP update requests the server coalesced
	// into the one session application that covered this request (≥ 1;
	// only meaningful when Pooled).
	BatchRequests int `json:"batch_requests,omitempty"`
	// RequestID echoes the server-assigned request ID (also the
	// X-Request-Id header).
	RequestID string `json:"request_id,omitempty"`
}

// SlowEntry is one request in the server's slow-explain ring, served by
// GET /v1/debug/slow: the request's identity, when it finished, how long it
// took, and its full stage trace.
type SlowEntry struct {
	RequestID string  `json:"request_id"`
	Dataset   string  `json:"dataset"`
	Query     string  `json:"query"`
	Time      string  `json:"time"` // RFC 3339, when the request completed
	ElapsedMs float64 `json:"elapsed_ms"`
	// Trace is the request's span tree (always captured for slow requests,
	// whether or not the client asked for it).
	Trace *TraceSpan `json:"trace,omitempty"`
}

// SlowResponse is the body of GET /v1/debug/slow: the configured threshold
// and the retained slow requests, most recent last.
type SlowResponse struct {
	ThresholdMs float64     `json:"threshold_ms"`
	Entries     []SlowEntry `json:"entries"`
}

// PoolStats is the session pool's counter snapshot, served by GET /v1/stats
// and reported by the serve benchmark.
type PoolStats struct {
	// Opens counts sessions opened (cold grounding); Reuses counts requests
	// served by an already-warm pooled session; Evictions counts sessions
	// closed by the LRU capacity bound.
	Opens     int64 `json:"opens"`
	Reuses    int64 `json:"reuses"`
	Evictions int64 `json:"evictions"`
	// Sessions and Capacity describe current occupancy.
	Sessions int `json:"sessions"`
	Capacity int `json:"capacity"`
	// UpdateRequests counts HTTP update batches routed through pooled
	// sessions; UpdateBatches counts the session applications they were
	// coalesced into; CoalescedBatches counts applications that merged
	// more than one request (UpdateBatches ≤ UpdateRequests always).
	UpdateRequests   int64 `json:"update_requests"`
	UpdateBatches    int64 `json:"update_batches"`
	CoalescedBatches int64 `json:"coalesced_batches"`
}

// CacheStats mirrors dnnf.CacheStats on the wire.
type CacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	IdenticalHits int64 `json:"identical_hits"`
	RenamedHits   int64 `json:"renamed_hits"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Len           int   `json:"len"`
	Capacity      int   `json:"capacity"`
}

// FromCacheStats converts a dnnf.CompileCache snapshot to its wire form.
func FromCacheStats(s dnnf.CacheStats) CacheStats {
	return CacheStats{
		Hits:          s.Hits,
		Misses:        s.Misses,
		IdenticalHits: s.IdenticalHits,
		RenamedHits:   s.RenamedHits,
		Evictions:     s.Evictions,
		Invalidations: s.Invalidations,
		Len:           s.Len,
		Capacity:      s.Capacity,
	}
}

// CompilerStats is the process-wide knowledge-compiler activity from GET
// /v1/stats: how many compilations ran, how much speculative branch
// parallelism engaged, and how the heuristic portfolio races resolved.
type CompilerStats struct {
	Compilations int64 `json:"compilations"`
	// SpeculatedDecisions counts Shannon decisions whose cofactors compiled
	// concurrently; SpeculationCancels counts in-flight siblings cancelled
	// when the other branch failed its budget.
	SpeculatedDecisions int64 `json:"speculated_decisions"`
	SpeculationCancels  int64 `json:"speculation_cancels"`
	// PortfolioRaces counts compilations raced across heuristics,
	// PortfolioLosersCancelled the racers cancelled after a win, and
	// WinsByOrder the wins per heuristic name ("freq", "jw", ...).
	PortfolioRaces           int64            `json:"portfolio_races"`
	PortfolioLosersCancelled int64            `json:"portfolio_losers_cancelled"`
	WinsByOrder              map[string]int64 `json:"wins_by_order,omitempty"`
}

// FromCompilerCounters converts a dnnf.SpeculationCounters snapshot to its
// wire form.
func FromCompilerCounters(c dnnf.CompilerCounters) CompilerStats {
	return CompilerStats{
		Compilations:             c.Compilations,
		SpeculatedDecisions:      c.SpeculatedDecisions,
		SpeculationCancels:       c.SpeculationCancels,
		PortfolioRaces:           c.PortfolioRaces,
		PortfolioLosersCancelled: c.PortfolioLosersCancelled,
		WinsByOrder:              c.WinsByOrder,
	}
}

// RouteStats is one route's request counters from GET /v1/stats.
type RouteStats struct {
	Route string `json:"route"`
	// Count and Errors count completed requests and non-2xx outcomes.
	Count  int64 `json:"count"`
	Errors int64 `json:"errors"`
	// Sheds, Panics, and Timeouts break the errors out by degradation mode:
	// refused by admission control (429), recovered handler panics (500),
	// and per-request deadline expiries (504).
	Sheds    int64 `json:"sheds"`
	Panics   int64 `json:"panics"`
	Timeouts int64 `json:"timeouts"`
	// Degraded counts successful (200) requests answered approximately by
	// the anytime sampling tier instead of exactly — graceful degradation,
	// broken out next to the failure modes above.
	Degraded int64 `json:"degraded,omitempty"`
	// RatePerSec is Count over the server's uptime.
	RatePerSec float64 `json:"rate_per_sec"`
	// Latency percentiles are over a bounded window of recent requests.
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// StatsResponse is the body of GET /v1/stats: session-pool counters next to
// the process-wide compilation-cache counters and per-route request
// latency/throughput.
type StatsResponse struct {
	UptimeSec float64        `json:"uptime_sec"`
	Pool      PoolStats      `json:"pool"`
	Cache     CacheStats     `json:"cache"`
	Compiler  CompilerStats  `json:"compiler"`
	Routes    []RouteStats   `json:"routes"`
	Datasets  []DatasetStats `json:"datasets,omitempty"`
}

// DatasetStats describes one served dataset: its size, the storage backend
// its database runs on, and whether a storage failure has degraded it to
// read-only.
type DatasetStats struct {
	Name    string `json:"name"`
	Backend string `json:"backend"`
	Facts   int    `json:"facts"`
	// Degraded reports a dataset whose store refused a write: the database
	// serves reads of its last durable state and rejects mutations (503).
	Degraded bool `json:"degraded,omitempty"`
	// DegradedError carries the storage failure that tripped degraded mode.
	DegradedError string `json:"degraded_error,omitempty"`
}

// EncodeValue renders a database value as a JSON-encodable scalar. Floats
// always carry a fractional or exponent marker, so an integral float
// round-trips back to db.Float rather than db.Int (value kinds participate
// in join semantics).
func EncodeValue(v repro.Value) any {
	switch v.Kind() {
	case db.KindInt:
		return v.AsInt()
	case db.KindFloat:
		s := strconv.FormatFloat(v.AsFloat(), 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return json.Number(s)
	default:
		return v.AsString()
	}
}

// EncodeTuple renders a tuple as a slice of JSON-encodable scalars.
func EncodeTuple(t repro.Tuple) []any {
	out := make([]any, len(t))
	for i, v := range t {
		out[i] = EncodeValue(v)
	}
	return out
}

// DecodeValue parses one wire value: a JSON string becomes db.String, an
// integral number db.Int, any other number db.Float.
func DecodeValue(raw json.RawMessage) (repro.Value, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return repro.Value{}, fmt.Errorf("wire: bad value %s: %w", raw, err)
	}
	switch t := v.(type) {
	case string:
		return repro.String(t), nil
	case json.Number:
		if i, err := strconv.ParseInt(string(t), 10, 64); err == nil {
			return repro.Int(i), nil
		}
		f, err := t.Float64()
		if err != nil {
			return repro.Value{}, fmt.Errorf("wire: bad number %s: %w", t, err)
		}
		return repro.Float(f), nil
	default:
		return repro.Value{}, fmt.Errorf("wire: value %s must be a string or number", raw)
	}
}

// DecodeValues parses a wire value list.
func DecodeValues(raws []json.RawMessage) ([]repro.Value, error) {
	out := make([]repro.Value, len(raws))
	for i, raw := range raws {
		v, err := DecodeValue(raw)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// EncodeExplanations renders pipeline results in wire form. Fact labels are
// resolved against d (facts deleted since the explanation was computed keep
// their ID with empty content); top ≤ 0 keeps every ranked fact.
func EncodeExplanations(d *repro.Database, es []repro.TupleExplanation, top int) []TupleExplanation {
	out := make([]TupleExplanation, len(es))
	for i := range es {
		e := &es[i]
		ranking := e.Ranking
		if top > 0 && top < len(ranking) {
			ranking = ranking[:top]
		}
		facts := make([]FactScore, len(ranking))
		for j, id := range ranking {
			fs := FactScore{ID: int64(id), Score: e.Score(id)}
			switch e.Method {
			case repro.MethodExact:
				fs.ValueRat = e.Values[id].RatString()
			case repro.MethodApprox:
				est := e.Approx[id]
				lo, hi := est.CILow, est.CIHigh
				fs.CILow, fs.CIHigh = &lo, &hi
			}
			if f := d.Fact(id); f != nil {
				fs.Relation = f.Relation
				fs.Tuple = EncodeTuple(f.Tuple)
			}
			facts[j] = fs
		}
		out[i] = TupleExplanation{
			Tuple:         EncodeTuple(e.Tuple),
			Method:        e.Method.String(),
			Approximate:   e.Method == repro.MethodApprox,
			Samples:       e.Samples,
			DegradedCause: e.DegradedCause,
			NumFacts:      e.NumFacts,
			ElapsedMs:     float64(e.Elapsed) / float64(time.Millisecond),
			Facts:         facts,
		}
	}
	return out
}
