package wire

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro"
	"repro/internal/db"
	"repro/internal/flights"
)

func TestValueRoundTrip(t *testing.T) {
	cases := []struct {
		raw  string
		want repro.Value
	}{
		{`"LHR"`, repro.String("LHR")},
		{`42`, repro.Int(42)},
		{`-7`, repro.Int(-7)},
		{`2.5`, repro.Float(2.5)},
		{`1e3`, repro.Float(1000)},
	}
	for _, c := range cases {
		got, err := DecodeValue(json.RawMessage(c.raw))
		if err != nil {
			t.Fatalf("DecodeValue(%s): %v", c.raw, err)
		}
		if got.Kind() != c.want.Kind() || !got.Equal(c.want) {
			t.Errorf("DecodeValue(%s) = %v (%v), want %v (%v)",
				c.raw, got, got.Kind(), c.want, c.want.Kind())
		}
		enc, err := json.Marshal(EncodeValue(got))
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("re-decode %s: %v", enc, err)
		}
		if back.Kind() != c.want.Kind() || !back.Equal(c.want) {
			t.Errorf("round trip of %s lost the value: got %v (%v)", c.raw, back, back.Kind())
		}
	}
	for _, bad := range []string{`true`, `null`, `[1]`, `{"a":1}`} {
		if _, err := DecodeValue(json.RawMessage(bad)); err == nil {
			t.Errorf("DecodeValue(%s) succeeded, want error", bad)
		}
	}
}

// TestEncodeExplanationsFlights pins the wire encoding on the paper's
// running example: exact rationals in ValueRat, fact content resolved from
// the database, ranking truncation by top.
func TestEncodeExplanationsFlights(t *testing.T) {
	d, facts := flights.Build()
	es, err := repro.Explain(context.Background(), d, flights.Query(), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeExplanations(d, es, 0)
	if len(enc) != 1 {
		t.Fatalf("%d tuples, want 1", len(enc))
	}
	e := enc[0]
	if e.Method != "exact" {
		t.Fatalf("method %q, want exact", e.Method)
	}
	if e.NumFacts != 7 || len(e.Facts) != 7 {
		t.Fatalf("num_facts=%d, |facts|=%d, want 7/7 (a8 is a null player outside the lineage)", e.NumFacts, len(e.Facts))
	}
	if e.Facts[0].ID != int64(facts.A[1].ID) || e.Facts[0].ValueRat != "43/105" {
		t.Errorf("top fact = #%d %s, want #%d 43/105", e.Facts[0].ID, e.Facts[0].ValueRat, facts.A[1].ID)
	}
	if e.Facts[0].Relation != "Flights" {
		t.Errorf("top fact relation %q, want Flights", e.Facts[0].Relation)
	}
	wantTuple := []any{"JFK", "CDG"}
	if len(e.Facts[0].Tuple) != 2 || e.Facts[0].Tuple[0] != wantTuple[0] || e.Facts[0].Tuple[1] != wantTuple[1] {
		t.Errorf("top fact tuple %v, want %v", e.Facts[0].Tuple, wantTuple)
	}

	top2 := EncodeExplanations(d, es, 2)
	if len(top2[0].Facts) != 2 {
		t.Errorf("top=2 kept %d facts, want 2", len(top2[0].Facts))
	}
	if top2[0].NumFacts != 7 {
		t.Errorf("top=2 reported num_facts=%d, want 7 (truncation is presentational)", top2[0].NumFacts)
	}

	// The encoding must survive JSON marshalling with exact rationals
	// intact (strings, not floats).
	blob, err := json.Marshal(ExplainResponse{Query: flights.Query().String(), Tuples: enc})
	if err != nil {
		t.Fatal(err)
	}
	var back ExplainResponse
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Tuples[0].Facts[0].ValueRat != "43/105" {
		t.Errorf("ValueRat after JSON round trip: %q", back.Tuples[0].Facts[0].ValueRat)
	}
}

func TestEncodeTupleKinds(t *testing.T) {
	tup := repro.Tuple{db.Int(3), db.Float(1.5), db.Float(2), db.String("x")}
	got := EncodeTuple(tup)
	if got[0] != int64(3) || got[1] != json.Number("1.5") || got[2] != json.Number("2.0") || got[3] != "x" {
		t.Errorf("EncodeTuple = %#v", got)
	}
}

// TestEncodeApproxExplanations checks the degraded encoding: the tuple is
// marked approximate with its sample count, every fact carries finite
// ordered confidence bounds around its score, and no exact rational is
// claimed.
func TestEncodeApproxExplanations(t *testing.T) {
	d, _ := flights.Build()
	es, err := repro.Explain(context.Background(), d, flights.Query(), repro.Options{
		Budget: repro.ExplainBudget{Mode: repro.ModeApproximate, MinSamples: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeExplanations(d, es, 0)
	e := enc[0]
	if e.Method != "approximate" || !e.Approximate {
		t.Fatalf("method %q approximate=%v, want a marked approximation", e.Method, e.Approximate)
	}
	if e.Samples < 128 {
		t.Errorf("samples = %d, want ≥ 128", e.Samples)
	}
	for _, f := range e.Facts {
		if f.ValueRat != "" {
			t.Errorf("approximate fact %d claims exact rational %q", f.ID, f.ValueRat)
		}
		if f.CILow == nil || f.CIHigh == nil {
			t.Fatalf("approximate fact %d missing confidence bounds", f.ID)
		}
		if *f.CILow > f.Score || f.Score > *f.CIHigh {
			t.Errorf("fact %d score %v outside its CI [%v, %v]", f.ID, f.Score, *f.CILow, *f.CIHigh)
		}
	}
	blob, err := json.Marshal(ExplainResponse{Tuples: enc})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"approximate":true`, `"samples":`, `"ci_low":`, `"ci_high":`} {
		if !strings.Contains(string(blob), key) {
			t.Errorf("approximate wire JSON missing %s", key)
		}
	}
}

// TestExactEncodingHasNoApproxFields pins byte-compatibility: an unbudgeted
// (exact) response must not grow any of the new approximation keys, so
// pre-budget clients see byte-identical JSON.
func TestExactEncodingHasNoApproxFields(t *testing.T) {
	d, _ := flights.Build()
	es, err := repro.Explain(context.Background(), d, flights.Query(), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(ExplainResponse{Tuples: EncodeExplanations(d, es, 0)})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"approximate", "samples", "ci_low", "ci_high"} {
		if strings.Contains(string(blob), key) {
			t.Errorf("exact wire JSON contains %q", key)
		}
	}
	req, err := json.Marshal(ExplainRequest{Dataset: "flights", Query: "q() :- R(x)"})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"budget_ms", "mode", "min_samples", "seed"} {
		if strings.Contains(string(req), key) {
			t.Errorf("unbudgeted request JSON contains %q", key)
		}
	}
}
