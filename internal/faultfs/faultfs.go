// Package faultfs injects scripted storage failures underneath the sorted
// store's write-ahead log. An Injector opens real files in a real
// directory but stops persisting bytes at a chosen crash offset: writes
// before the offset reach the disk, the write crossing it lands partially
// (a torn tail) or not at all, and everything afterwards fails. Abandoning
// the database (no Close) then reopening the directory reproduces exactly
// what a process crash at that offset would leave behind — which is what
// the crash-recovery property tests exercise.
//
// The model is deliberately pessimistic about ordering-friendly
// filesystems: all bytes up to the offset are durable, all bytes after it
// are lost. Sequential WAL appends make this the worst honest case — a
// real crash additionally loses unflushed page cache, which the tests
// cover by never closing the failed store (buffered bytes die with it).
package faultfs

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// ErrInjected is the failure surfaced by every faulted write and sync.
// Store code must treat it like any other disk error (ENOSPC, EIO).
var ErrInjected = errors.New("faultfs: injected write failure")

// Injector scripts failures across every file it opens. Byte accounting is
// global, not per file, so a crash offset can land inside the WAL, inside
// a snapshot being written, or between the two. The zero value (and New)
// passes everything through until armed.
type Injector struct {
	mu      sync.Mutex
	limit   int64 // byte budget; negative = unlimited
	sharp   bool  // failing write persists nothing instead of a torn prefix
	written int64
	tripped bool
}

// New returns a pass-through Injector; arm it with CrashAt or CrashAtSharp.
func New() *Injector { return &Injector{limit: -1} }

// CrashAt arms the injector to fail once cumulative written bytes would
// exceed offset. The crossing write persists its prefix up to the offset —
// a short write leaving a torn frame — and errors; later writes and syncs
// all fail.
func (in *Injector) CrashAt(offset int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.limit, in.sharp, in.tripped = offset, false, false
}

// CrashAtSharp is CrashAt with a clean edge: the crossing write persists
// nothing, so the file ends exactly at the last fully persisted write.
func (in *Injector) CrashAtSharp(offset int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.limit, in.sharp, in.tripped = offset, true, false
}

// Disarm returns the injector to pass-through (existing byte accounting is
// kept).
func (in *Injector) Disarm() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.limit, in.tripped = -1, false
}

// Written returns the cumulative bytes persisted through this injector.
func (in *Injector) Written() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.written
}

// Tripped reports whether the crash offset has been hit.
func (in *Injector) Tripped() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.tripped
}

// Open opens path like os.OpenFile and wraps it with the injector's
// script. The signature matches the sorted store's OpenFileFunc injection
// point up to the concrete return type.
func (in *Injector) Open(path string, flag int, perm os.FileMode) (*File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &File{f: f, inj: in}, nil
}

// File is one injector-governed file.
type File struct {
	f   *os.File
	inj *Injector
}

// Write persists p subject to the injector's script: fully below the
// crash offset, partially (or not at all, for a sharp crash) on the write
// crossing it, and never after it has tripped.
func (fl *File) Write(p []byte) (int, error) {
	in := fl.inj
	in.mu.Lock()
	if in.tripped {
		in.mu.Unlock()
		return 0, fmt.Errorf("write %s after crash point: %w", fl.f.Name(), ErrInjected)
	}
	allow := len(p)
	trip := false
	if in.limit >= 0 && in.written+int64(len(p)) > in.limit {
		trip = true
		allow = int(in.limit - in.written)
		if in.sharp || allow < 0 {
			allow = 0
		}
	}
	in.mu.Unlock()

	n := 0
	var err error
	if allow > 0 {
		n, err = fl.f.Write(p[:allow])
	}

	in.mu.Lock()
	in.written += int64(n)
	if trip {
		in.tripped = true
	}
	in.mu.Unlock()

	if err != nil {
		return n, err
	}
	if trip {
		return n, fmt.Errorf("crash point at byte %d of %s: %w", in.written, fl.f.Name(), ErrInjected)
	}
	return n, nil
}

// Sync fsyncs the underlying file, failing once the injector has tripped
// (a crashed disk acknowledges nothing).
func (fl *File) Sync() error {
	fl.inj.mu.Lock()
	tripped := fl.inj.tripped
	fl.inj.mu.Unlock()
	if tripped {
		return fmt.Errorf("sync %s after crash point: %w", fl.f.Name(), ErrInjected)
	}
	return fl.f.Sync()
}

// Close closes the underlying file (always allowed: releasing a handle
// does not persist anything).
func (fl *File) Close() error { return fl.f.Close() }
