package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openTemp(t *testing.T, in *Injector) (*File, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "f")
	f, err := in.Open(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return f, path
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	return st.Size()
}

func TestPassThrough(t *testing.T) {
	in := New()
	f, path := openTemp(t, in)
	if n, err := f.Write(make([]byte, 100)); n != 100 || err != nil {
		t.Fatalf("write = %d, %v", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := fileSize(t, path); got != 100 {
		t.Fatalf("size = %d, want 100", got)
	}
	if in.Written() != 100 || in.Tripped() {
		t.Fatalf("written=%d tripped=%v", in.Written(), in.Tripped())
	}
}

func TestTornTailAtCrashOffset(t *testing.T) {
	in := New()
	in.CrashAt(150)
	f, path := openTemp(t, in)
	if n, err := f.Write(make([]byte, 100)); n != 100 || err != nil {
		t.Fatalf("first write = %d, %v", n, err)
	}
	// This write crosses byte 150: exactly 50 bytes land, then the error.
	n, err := f.Write(make([]byte, 100))
	if n != 50 || !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write = %d, %v; want 50, ErrInjected", n, err)
	}
	if !in.Tripped() {
		t.Fatal("injector did not trip")
	}
	// Everything afterwards fails without touching the file.
	if n, err := f.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash write = %d, %v", n, err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash sync = %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close after crash: %v", err)
	}
	if got := fileSize(t, path); got != 150 {
		t.Fatalf("size = %d, want 150 (torn tail)", got)
	}
}

func TestSharpCrashWritesNothing(t *testing.T) {
	in := New()
	in.CrashAtSharp(150)
	f, path := openTemp(t, in)
	if _, err := f.Write(make([]byte, 100)); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if n, err := f.Write(make([]byte, 100)); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write = %d, %v; want 0, ErrInjected", n, err)
	}
	f.Close()
	if got := fileSize(t, path); got != 100 {
		t.Fatalf("size = %d, want 100 (no torn tail)", got)
	}
}

func TestAccountingSpansFiles(t *testing.T) {
	in := New()
	in.CrashAt(100)
	a, _ := openTemp(t, in)
	b, pathB := openTemp(t, in)
	if _, err := a.Write(make([]byte, 80)); err != nil {
		t.Fatalf("write a: %v", err)
	}
	// The budget is global: only 20 bytes remain for file b.
	n, err := b.Write(make([]byte, 50))
	if n != 20 || !errors.Is(err, ErrInjected) {
		t.Fatalf("write b = %d, %v; want 20, ErrInjected", n, err)
	}
	a.Close()
	b.Close()
	if got := fileSize(t, pathB); got != 20 {
		t.Fatalf("b size = %d, want 20", got)
	}
}

func TestDisarmResumes(t *testing.T) {
	in := New()
	in.CrashAt(10)
	f, path := openTemp(t, in)
	if _, err := f.Write(make([]byte, 20)); !errors.Is(err, ErrInjected) {
		t.Fatalf("want trip, got %v", err)
	}
	in.Disarm()
	if n, err := f.Write(make([]byte, 5)); n != 5 || err != nil {
		t.Fatalf("post-disarm write = %d, %v", n, err)
	}
	f.Close()
	if got := fileSize(t, path); got != 15 {
		t.Fatalf("size = %d, want 15", got)
	}
}
