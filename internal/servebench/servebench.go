// Package servebench is the explanation service's load generator: it drives
// a server (an in-process one it starts itself, or an externally started
// shapleyd via TargetURL) over real HTTP with a configurable explain:update
// mix at several concurrency levels, records client-side latency
// percentiles and throughput, runs the pooled vs open-per-request
// head-to-head, and cross-checks quiesced served values big.Rat-identically
// against a cold repro.Explain. The report serializes to BENCH_serve.json.
package servebench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/flights"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/wire"
)

// Options configures a load-generation run.
type Options struct {
	// TargetURL drives an already-running server (e.g. a shapleyd started
	// by CI) instead of an in-process one. The target must serve a freshly
	// built copy of Dataset, since the value cross-check compares against a
	// locally built reference database. Empty starts an in-process server.
	TargetURL string
	// Dataset names the served database; only "flights" is built in (the
	// paper's running example — small enough that request overhead, not
	// pipeline cost, dominates, which is what a serving benchmark wants).
	Dataset string
	// Query is the UCQ text explained throughout; defaults to the flights
	// Figure 1 query.
	Query string
	// Clients lists the concurrency levels (default 1, 4, 16).
	Clients []int
	// Requests is the number of explain requests per client per phase
	// (default 8).
	Requests int
	// UpdateEvery issues one update request per that many explains in the
	// mixed phase (default 4; ≤ 0 disables the mixed phase).
	UpdateEvery int
	// PoolSize bounds the in-process server's session pool.
	PoolSize int
	// Repro configures the in-process server's sessions and the cold
	// reference computation.
	Repro repro.Options
	// BudgetMs, when positive, adds a budgeted phase per concurrency level:
	// explains carrying budget_ms, recording the exact/approximate mix and
	// the fallback latency. Budgeted responses may be approximate as long as
	// they are marked; unmarked degradation still fails the run.
	BudgetMs float64
	// AllowApprox permits marked approximate answers in the quiesced value
	// cross-check (for driving a deliberately starved server, where even
	// unbudgeted requests degrade). Exact answers are still checked
	// big.Rat-identically.
	AllowApprox bool
}

func (o Options) withDefaults() Options {
	if o.Dataset == "" {
		o.Dataset = "flights"
	}
	if o.Query == "" {
		o.Query = flights.Query().String()
	}
	if len(o.Clients) == 0 {
		o.Clients = []int{1, 4, 16}
	}
	if o.Requests <= 0 {
		o.Requests = 8
	}
	if o.UpdateEvery == 0 {
		o.UpdateEvery = 4
	}
	return o
}

// Level is one (mode, concurrency) measurement.
type Level struct {
	// Mode is "open-per-request", "pooled", "mixed-pooled", or
	// "budgeted-pooled".
	Mode    string `json:"mode"`
	Clients int    `json:"clients"`
	// Explains and Updates count completed requests across all clients.
	Explains int `json:"explains"`
	Updates  int `json:"updates,omitempty"`
	// ExactExplains and ApproxExplains split the budgeted phase's explains by
	// outcome: answered exactly within budget vs degraded to marked sampled
	// estimates.
	ExactExplains  int `json:"exact_explains,omitempty"`
	ApproxExplains int `json:"approx_explains,omitempty"`
	// FallbackLatency summarizes the latency of the degraded (approximate)
	// responses alone — the tail the anytime tier bounds.
	FallbackLatency *metrics.LatencySummary `json:"fallback_latency,omitempty"`
	// Retries counts requests of this phase answered 429/503 and retried
	// after backoff (shedding shows up here, not as silent errors).
	Retries int64 `json:"retries,omitempty"`
	// ElapsedMs is the phase wall clock; ThroughputRPS is requests
	// (explains + updates) over it.
	ElapsedMs     float64 `json:"elapsed_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// Latency summarizes client-observed explain latencies.
	Latency metrics.LatencySummary `json:"latency"`
}

// HeadToHead compares the pooled and open-per-request explain phases at one
// concurrency level.
type HeadToHead struct {
	Clients           int     `json:"clients"`
	PooledP50Ms       float64 `json:"pooled_p50_ms"`
	UnpooledP50Ms     float64 `json:"unpooled_p50_ms"`
	P50Speedup        float64 `json:"p50_speedup"`
	PooledRPS         float64 `json:"pooled_rps"`
	UnpooledRPS       float64 `json:"unpooled_rps"`
	ThroughputSpeedup float64 `json:"throughput_speedup"`
}

// Report is the BENCH_serve.json payload.
type Report struct {
	Dataset string `json:"dataset"`
	Query   string `json:"query"`
	// Target is "in-process" or the external URL driven.
	Target     string       `json:"target"`
	Levels     []Level      `json:"levels"`
	HeadToHead []HeadToHead `json:"head_to_head"`
	// Pool and Cache are the server's final /v1/stats counters: the
	// session-pool opens/reuses/evictions and coalesced update batches
	// next to the compilation cache's numbers.
	Pool  wire.PoolStats  `json:"pool"`
	Cache wire.CacheStats `json:"cache"`
	// ValueChecks counts served explanations cross-checked
	// big.Rat-identical against a cold repro.Explain (the run fails on the
	// first mismatch).
	ValueChecks int `json:"value_checks"`
	// Retries is the run-wide total of 429/503 responses absorbed by the
	// client's backoff-and-retry loop.
	Retries int64 `json:"retries"`
	// Degraded is the server's final /v1/explain degraded counter: requests
	// that exhausted their budget and were answered with marked sampled
	// estimates instead of exact values.
	Degraded int64 `json:"degraded,omitempty"`
}

// Retry policy for shed (429) and degraded/unavailable (503) responses:
// capped exponential backoff with jitter, honoring the server's Retry-After
// hint as a lower bound on the wait.
const (
	retryMax     = 8
	retryBase    = 50 * time.Millisecond
	retryCeiling = 2 * time.Second
)

// benchClient is the load generator's HTTP client: it retries overload
// responses with capped jittered backoff and counts every retry, so a
// shedding server slows the bench down measurably instead of failing it.
type benchClient struct {
	hc      *http.Client
	retries atomic.Int64
}

// do issues one request, retrying 429/503 up to retryMax times. Any other
// non-2xx status fails immediately.
func (c *benchClient) do(ctx context.Context, method, url string, body []byte) ([]byte, error) {
	backoff := retryBase
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return nil, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusOK {
			return raw, nil
		}
		retryable := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if !retryable || attempt >= retryMax {
			return nil, fmt.Errorf("servebench: %s -> %d (after %d retries): %s",
				url, resp.StatusCode, attempt, strings.TrimSpace(string(raw)))
		}
		// Jittered wait in [backoff/2, 3·backoff/2), floored by the server's
		// Retry-After hint, capped at the ceiling.
		wait := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			if hint := time.Duration(ra) * time.Second; wait < hint {
				wait = hint
			}
		}
		if wait > retryCeiling {
			wait = retryCeiling
		}
		c.retries.Add(1)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(wait):
		}
		if backoff < retryCeiling {
			backoff *= 2
		}
	}
}

// Run executes the load generation and returns the report, failing on any
// non-2xx response or any served value not big.Rat-identical to the cold
// reference.
func Run(ctx context.Context, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if opts.Dataset != "flights" {
		return nil, fmt.Errorf("servebench: unknown dataset %q (only flights is built in)", opts.Dataset)
	}

	base := opts.TargetURL
	target := base
	if base == "" {
		target = "in-process"
		d, _ := flights.Build()
		srv, err := server.New(server.Config{
			Datasets: map[string]*repro.Database{"flights": d},
			Options:  opts.Repro,
			PoolSize: opts.PoolSize,
		})
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
	}
	client := &benchClient{hc: &http.Client{Timeout: 2 * time.Minute}}

	// Cold reference on a locally built equivalent database, keyed by fact
	// content (relation + tuple) so it is robust to server-side fact-ID
	// drift from earlier net-zero updates.
	ref, err := coldReference(ctx, opts)
	if err != nil {
		return nil, err
	}

	rep := &Report{Dataset: opts.Dataset, Query: opts.Query, Target: target}

	// Warm both paths once so every timed phase measures steady state (the
	// compile cache is process-wide, so the open-per-request baseline is
	// compile-warm too — the head-to-head isolates grounding + session
	// reuse, which is exactly what the pool adds).
	for _, noPool := range []bool{true, false} {
		if _, _, err := postExplain(ctx, client, base, opts, noPool, 0); err != nil {
			return nil, err
		}
	}

	for _, c := range opts.Clients {
		unpooled, upLat, err := runExplainPhase(ctx, client, base, opts, "open-per-request", c, true)
		if err != nil {
			return nil, err
		}
		rep.Levels = append(rep.Levels, unpooled)
		pooled, poLat, err := runExplainPhase(ctx, client, base, opts, "pooled", c, false)
		if err != nil {
			return nil, err
		}
		rep.Levels = append(rep.Levels, pooled)
		h := HeadToHead{
			Clients:       c,
			PooledP50Ms:   metrics.SummarizeLatency(poLat).P50Ms,
			UnpooledP50Ms: metrics.SummarizeLatency(upLat).P50Ms,
			PooledRPS:     pooled.ThroughputRPS,
			UnpooledRPS:   unpooled.ThroughputRPS,
		}
		if h.PooledP50Ms > 0 {
			h.P50Speedup = h.UnpooledP50Ms / h.PooledP50Ms
		}
		if h.UnpooledRPS > 0 {
			h.ThroughputSpeedup = h.PooledRPS / h.UnpooledRPS
		}
		rep.HeadToHead = append(rep.HeadToHead, h)

		if opts.UpdateEvery > 0 {
			mixed, _, err := runMixedPhase(ctx, client, base, opts, c)
			if err != nil {
				return nil, err
			}
			rep.Levels = append(rep.Levels, mixed)
		}

		if opts.BudgetMs > 0 {
			budgeted, err := runBudgetedPhase(ctx, client, base, opts, ref, c)
			if err != nil {
				return nil, err
			}
			rep.Levels = append(rep.Levels, budgeted)
		}

		// Quiesced cross-check through both paths: the update traffic was
		// net-zero, so served values must match the cold reference.
		for _, noPool := range []bool{false, true} {
			resp, _, err := postExplain(ctx, client, base, opts, noPool, 0)
			if err != nil {
				return nil, err
			}
			if err := checkAgainstReference(ref, resp, opts.AllowApprox); err != nil {
				return nil, fmt.Errorf("servebench: %d clients, nopool=%v: %w", c, noPool, err)
			}
			rep.ValueChecks++
		}
	}

	// Final server-side counters: pool next to compile cache.
	st, err := getStats(ctx, client, base)
	if err != nil {
		return nil, err
	}
	rep.Pool, rep.Cache = st.Pool, st.Cache
	for _, rt := range st.Routes {
		rep.Degraded += rt.Degraded
	}
	rep.Retries = client.retries.Load()
	return rep, nil
}

// runExplainPhase fires clients×Requests explain requests and summarizes.
func runExplainPhase(ctx context.Context, client *benchClient, base string, opts Options, mode string, clients int, noPool bool) (Level, []time.Duration, error) {
	lats := make([][]time.Duration, clients)
	errs := make(chan error, clients)
	retries0 := client.retries.Load()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < opts.Requests; r++ {
				_, d, err := postExplain(ctx, client, base, opts, noPool, 0)
				if err != nil {
					errs <- err
					return
				}
				lats[c] = append(lats[c], d)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return Level{}, nil, err
	}
	elapsed := time.Since(start)
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	lv := Level{
		Mode:          mode,
		Clients:       clients,
		Explains:      len(all),
		Retries:       client.retries.Load() - retries0,
		ElapsedMs:     float64(elapsed) / float64(time.Millisecond),
		ThroughputRPS: float64(len(all)) / elapsed.Seconds(),
		Latency:       metrics.SummarizeLatency(all),
	}
	return lv, all, nil
}

// runMixedPhase interleaves explains with net-zero update traffic (each
// client alternately inserts and deletes its own joining flight through the
// pooled session route, so concurrent clients exercise the coalescing
// batcher).
func runMixedPhase(ctx context.Context, client *benchClient, base string, opts Options, clients int) (Level, []time.Duration, error) {
	usa := []string{"JFK", "EWR", "BOS", "LAX"}
	lats := make([][]time.Duration, clients)
	updates := make([]int, clients)
	errs := make(chan error, clients)
	retries0 := client.retries.Load()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			src := usa[c%len(usa)]
			var pendingID int64
			cleanup := func() error {
				if pendingID == 0 {
					return nil
				}
				_, err := postUpdate(ctx, client, base, opts, wire.UpdateRequest{
					Dataset: opts.Dataset, Query: opts.Query,
					Deletes: []wire.DeleteSpec{{ID: pendingID}},
				})
				pendingID = 0
				return err
			}
			for r := 0; r < opts.Requests; r++ {
				if r%opts.UpdateEvery == opts.UpdateEvery-1 {
					if pendingID != 0 {
						if err := cleanup(); err != nil {
							errs <- err
							return
						}
					} else {
						resp, err := postUpdate(ctx, client, base, opts, wire.UpdateRequest{
							Dataset: opts.Dataset, Query: opts.Query,
							Inserts: []wire.InsertSpec{{
								Relation: "Flights", Endogenous: true,
								Values: []json.RawMessage{
									json.RawMessage(fmt.Sprintf("%q", src)),
									json.RawMessage(`"ORY"`),
								},
							}},
						})
						if err != nil {
							errs <- err
							return
						}
						pendingID = resp.InsertedIDs[0]
					}
					updates[c]++
					continue
				}
				_, d, err := postExplain(ctx, client, base, opts, false, 0)
				if err != nil {
					errs <- err
					return
				}
				lats[c] = append(lats[c], d)
			}
			if err := cleanup(); err != nil {
				errs <- err
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return Level{}, nil, err
	}
	elapsed := time.Since(start)
	var all []time.Duration
	nup := 0
	for c := range lats {
		all = append(all, lats[c]...)
		nup += updates[c]
	}
	lv := Level{
		Mode:          "mixed-pooled",
		Clients:       clients,
		Explains:      len(all),
		Updates:       nup,
		Retries:       client.retries.Load() - retries0,
		ElapsedMs:     float64(elapsed) / float64(time.Millisecond),
		ThroughputRPS: float64(len(all)+nup) / elapsed.Seconds(),
		Latency:       metrics.SummarizeLatency(all),
	}
	return lv, all, nil
}

// runBudgetedPhase fires explains carrying budget_ms through the pooled
// path, splitting the outcomes into exact-within-budget and degraded
// (marked approximate) and summarizing the degraded responses' latency
// separately. Every response is validated: an exact answer must match the
// cold reference, a degraded one must be marked with samples and finite
// ordered confidence bounds — an unmarked approximation fails the run.
func runBudgetedPhase(ctx context.Context, client *benchClient, base string, opts Options, ref map[string]string, clients int) (Level, error) {
	lats := make([][]time.Duration, clients)
	fallback := make([][]time.Duration, clients)
	exact := make([]int, clients)
	errs := make(chan error, clients)
	retries0 := client.retries.Load()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < opts.Requests; r++ {
				resp, d, err := postExplain(ctx, client, base, opts, false, opts.BudgetMs)
				if err != nil {
					errs <- err
					return
				}
				if err := checkAgainstReference(ref, resp, true); err != nil {
					errs <- fmt.Errorf("budgeted response: %w", err)
					return
				}
				lats[c] = append(lats[c], d)
				if approximate(resp) {
					fallback[c] = append(fallback[c], d)
				} else {
					exact[c]++
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return Level{}, err
	}
	elapsed := time.Since(start)
	var all, fb []time.Duration
	nexact := 0
	for c := range lats {
		all = append(all, lats[c]...)
		fb = append(fb, fallback[c]...)
		nexact += exact[c]
	}
	lv := Level{
		Mode:           "budgeted-pooled",
		Clients:        clients,
		Explains:       len(all),
		ExactExplains:  nexact,
		ApproxExplains: len(fb),
		Retries:        client.retries.Load() - retries0,
		ElapsedMs:      float64(elapsed) / float64(time.Millisecond),
		ThroughputRPS:  float64(len(all)) / elapsed.Seconds(),
		Latency:        metrics.SummarizeLatency(all),
	}
	if len(fb) > 0 {
		s := metrics.SummarizeLatency(fb)
		lv.FallbackLatency = &s
	}
	return lv, nil
}

// approximate reports whether any tuple of the response degraded to sampled
// estimates.
func approximate(resp *wire.ExplainResponse) bool {
	for _, tup := range resp.Tuples {
		if tup.Approximate {
			return true
		}
	}
	return false
}

func postExplain(ctx context.Context, client *benchClient, base string, opts Options, noPool bool, budgetMs float64) (*wire.ExplainResponse, time.Duration, error) {
	body, err := json.Marshal(wire.ExplainRequest{Dataset: opts.Dataset, Query: opts.Query, NoPool: noPool, BudgetMs: budgetMs})
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	raw, err := client.do(ctx, http.MethodPost, base+"/v1/explain", body)
	d := time.Since(start)
	if err != nil {
		return nil, d, err
	}
	var resp wire.ExplainResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, d, fmt.Errorf("servebench: bad explain response: %w", err)
	}
	return &resp, d, nil
}

func postUpdate(ctx context.Context, client *benchClient, base string, opts Options, req wire.UpdateRequest) (*wire.UpdateResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	raw, err := client.do(ctx, http.MethodPost, base+"/v1/update", body)
	if err != nil {
		return nil, err
	}
	var resp wire.UpdateResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, fmt.Errorf("servebench: bad update response: %w", err)
	}
	return &resp, nil
}

func getStats(ctx context.Context, client *benchClient, base string) (*wire.StatsResponse, error) {
	raw, err := client.do(ctx, http.MethodGet, base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	var st wire.StatsResponse
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// coldReference computes the ground truth the served values are checked
// against: a cold repro.Explain on a freshly built dataset, keyed by fact
// content. Any configured budget is stripped — the reference is exact even
// when the driven server is deliberately starved.
func coldReference(ctx context.Context, opts Options) (map[string]string, error) {
	d, _ := flights.Build()
	q, err := repro.ParseQuery(opts.Query)
	if err != nil {
		return nil, err
	}
	ropts := opts.Repro
	ropts.Budget = repro.ExplainBudget{}
	es, err := repro.Explain(ctx, d, q, ropts)
	if err != nil {
		return nil, err
	}
	ref := make(map[string]string)
	for i := range es {
		for id, v := range es[i].Values {
			f := d.Fact(id)
			if f == nil {
				return nil, fmt.Errorf("servebench: reference fact %d missing", id)
			}
			ref[contentKey(f.Relation, wire.EncodeTuple(f.Tuple))] = v.RatString()
		}
	}
	return ref, nil
}

// contentKey renders a fact's identity independently of fact IDs and of
// which side (encoder or JSON decoder) produced the tuple values.
func contentKey(relation string, tuple []any) string {
	parts := make([]string, len(tuple))
	for i, v := range tuple {
		parts[i] = fmt.Sprint(v)
	}
	return relation + "(" + strings.Join(parts, ",") + ")"
}

// checkAgainstReference verifies every served exact fact value is
// big.Rat-identical (by exact rational string) to the cold reference. With
// allowApprox, a tuple may instead be a marked approximation — then it must
// carry a positive sample count and every fact must have finite, ordered
// confidence bounds containing its score (unmarked approximations, or any
// other non-exact method, always fail).
func checkAgainstReference(ref map[string]string, resp *wire.ExplainResponse, allowApprox bool) error {
	seen := 0
	for _, tup := range resp.Tuples {
		if tup.Approximate {
			if !allowApprox {
				return fmt.Errorf("served method %q where exact was required", tup.Method)
			}
			if tup.Method != "approximate" {
				return fmt.Errorf("tuple marked approximate but method is %q", tup.Method)
			}
			if tup.Samples <= 0 {
				return fmt.Errorf("approximate tuple reports %d samples", tup.Samples)
			}
			for _, f := range tup.Facts {
				key := contentKey(f.Relation, f.Tuple)
				if _, ok := ref[key]; !ok {
					return fmt.Errorf("served fact %s not in the cold reference", key)
				}
				if f.CILow == nil || f.CIHigh == nil {
					return fmt.Errorf("approximate fact %s missing confidence bounds", key)
				}
				lo, hi := *f.CILow, *f.CIHigh
				if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) {
					return fmt.Errorf("approximate fact %s has non-finite bounds [%v, %v]", key, lo, hi)
				}
				if lo > hi || f.Score < lo || f.Score > hi {
					return fmt.Errorf("approximate fact %s score %v outside its CI [%v, %v]", key, f.Score, lo, hi)
				}
				seen++
			}
			continue
		}
		if tup.Method != "exact" {
			return fmt.Errorf("served method %q, want exact", tup.Method)
		}
		for _, f := range tup.Facts {
			key := contentKey(f.Relation, f.Tuple)
			want, ok := ref[key]
			if !ok {
				return fmt.Errorf("served fact %s not in the cold reference", key)
			}
			if f.ValueRat != want {
				return fmt.Errorf("served %s = %s, cold reference %s (not big.Rat-identical)", key, f.ValueRat, want)
			}
			seen++
		}
	}
	if seen != len(ref) {
		return fmt.Errorf("served %d facts, cold reference has %d", seen, len(ref))
	}
	return nil
}

// Write serializes the report to path (stdout for "-").
func Write(path string, rep *Report) error {
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}
