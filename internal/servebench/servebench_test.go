package servebench

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"repro"
	"testing"
)

// TestRunInProcess exercises the full load generator against an in-process
// server: all three phases at two concurrency levels, head-to-head
// populated, pool counters collected, and every quiesced value
// cross-checked against the cold reference.
func TestRunInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real HTTP load; skipped in -short mode")
	}
	rep, err := Run(context.Background(), Options{
		Clients:     []int{1, 3},
		Requests:    4,
		UpdateEvery: 2,
		PoolSize:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 phases per level.
	if len(rep.Levels) != 6 {
		t.Fatalf("%d levels, want 6: %+v", len(rep.Levels), rep.Levels)
	}
	for _, lv := range rep.Levels {
		if lv.Explains == 0 || lv.ThroughputRPS <= 0 || lv.Latency.P50Ms <= 0 {
			t.Errorf("degenerate level: %+v", lv)
		}
		if lv.Mode == "mixed-pooled" && lv.Updates == 0 {
			t.Errorf("mixed phase issued no updates: %+v", lv)
		}
	}
	if len(rep.HeadToHead) != 2 {
		t.Fatalf("%d head-to-head points, want 2", len(rep.HeadToHead))
	}
	for _, h := range rep.HeadToHead {
		if h.PooledP50Ms <= 0 || h.UnpooledP50Ms <= 0 || h.P50Speedup <= 0 {
			t.Errorf("degenerate head-to-head: %+v", h)
		}
	}
	if rep.ValueChecks != 4 {
		t.Errorf("value checks = %d, want 4 (2 per level)", rep.ValueChecks)
	}
	if rep.Pool.Opens < 1 || rep.Pool.Reuses < 1 {
		t.Errorf("pool counters: %+v", rep.Pool)
	}
	if rep.Pool.UpdateRequests < 1 || rep.Pool.UpdateBatches > rep.Pool.UpdateRequests {
		t.Errorf("batcher counters: %+v", rep.Pool)
	}
	if rep.Cache.Hits+rep.Cache.Misses == 0 {
		t.Errorf("compile cache untouched: %+v", rep.Cache)
	}

	// The report round-trips through its JSON artifact form.
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := Write(path, rep); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Levels) != len(rep.Levels) || back.ValueChecks != rep.ValueChecks {
		t.Errorf("artifact round trip lost data: %+v", back)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Dataset != "flights" || o.Query == "" || len(o.Clients) != 3 || o.Requests != 8 || o.UpdateEvery != 4 {
		t.Errorf("defaults: %+v", o)
	}
	if _, err := Run(context.Background(), Options{Dataset: "tpch"}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

// TestRunBudgetedPhase drives the budgeted phase: with a budget_ms on every
// request, each response must be exact-within-budget or a marked
// approximation (validated per response), and the level records the mix.
func TestRunBudgetedPhase(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real HTTP load; skipped in -short mode")
	}
	rep, err := Run(context.Background(), Options{
		Clients:     []int{2},
		Requests:    4,
		UpdateEvery: -1,
		PoolSize:    4,
		BudgetMs:    50,
		Repro:       repro.Options{Budget: repro.ExplainBudget{MinSamples: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var budgeted *Level
	for i := range rep.Levels {
		if rep.Levels[i].Mode == "budgeted-pooled" {
			budgeted = &rep.Levels[i]
		}
	}
	if budgeted == nil {
		t.Fatalf("no budgeted-pooled level in %+v", rep.Levels)
	}
	if budgeted.Explains != 8 {
		t.Errorf("budgeted explains = %d, want 8", budgeted.Explains)
	}
	if budgeted.ExactExplains+budgeted.ApproxExplains != budgeted.Explains {
		t.Errorf("mix %d exact + %d approx ≠ %d explains",
			budgeted.ExactExplains, budgeted.ApproxExplains, budgeted.Explains)
	}
	if budgeted.ApproxExplains > 0 && budgeted.FallbackLatency == nil {
		t.Error("approx explains recorded but no fallback latency summary")
	}
}

// TestRunStarvedServerAllowApprox is the degradation smoke in miniature: an
// in-process server with a starvation node budget must answer every phase
// with 200s, and with AllowApprox the quiesced cross-check accepts marked
// approximations (and only marked ones).
func TestRunStarvedServerAllowApprox(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real HTTP load; skipped in -short mode")
	}
	rep, err := Run(context.Background(), Options{
		Clients:     []int{2},
		Requests:    3,
		UpdateEvery: -1,
		PoolSize:    4,
		AllowApprox: true,
		Repro: repro.Options{
			Budget: repro.ExplainBudget{MaxNodes: 1, MinSamples: 64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ValueChecks != 2 {
		t.Errorf("value checks = %d, want 2", rep.ValueChecks)
	}
	if rep.Degraded == 0 {
		t.Error("starved server reported no degraded requests")
	}
}
