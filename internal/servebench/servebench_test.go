package servebench

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunInProcess exercises the full load generator against an in-process
// server: all three phases at two concurrency levels, head-to-head
// populated, pool counters collected, and every quiesced value
// cross-checked against the cold reference.
func TestRunInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real HTTP load; skipped in -short mode")
	}
	rep, err := Run(context.Background(), Options{
		Clients:     []int{1, 3},
		Requests:    4,
		UpdateEvery: 2,
		PoolSize:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 phases per level.
	if len(rep.Levels) != 6 {
		t.Fatalf("%d levels, want 6: %+v", len(rep.Levels), rep.Levels)
	}
	for _, lv := range rep.Levels {
		if lv.Explains == 0 || lv.ThroughputRPS <= 0 || lv.Latency.P50Ms <= 0 {
			t.Errorf("degenerate level: %+v", lv)
		}
		if lv.Mode == "mixed-pooled" && lv.Updates == 0 {
			t.Errorf("mixed phase issued no updates: %+v", lv)
		}
	}
	if len(rep.HeadToHead) != 2 {
		t.Fatalf("%d head-to-head points, want 2", len(rep.HeadToHead))
	}
	for _, h := range rep.HeadToHead {
		if h.PooledP50Ms <= 0 || h.UnpooledP50Ms <= 0 || h.P50Speedup <= 0 {
			t.Errorf("degenerate head-to-head: %+v", h)
		}
	}
	if rep.ValueChecks != 4 {
		t.Errorf("value checks = %d, want 4 (2 per level)", rep.ValueChecks)
	}
	if rep.Pool.Opens < 1 || rep.Pool.Reuses < 1 {
		t.Errorf("pool counters: %+v", rep.Pool)
	}
	if rep.Pool.UpdateRequests < 1 || rep.Pool.UpdateBatches > rep.Pool.UpdateRequests {
		t.Errorf("batcher counters: %+v", rep.Pool)
	}
	if rep.Cache.Hits+rep.Cache.Misses == 0 {
		t.Errorf("compile cache untouched: %+v", rep.Cache)
	}

	// The report round-trips through its JSON artifact form.
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := Write(path, rep); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Levels) != len(rep.Levels) || back.ValueChecks != rep.ValueChecks {
		t.Errorf("artifact round trip lost data: %+v", back)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Dataset != "flights" || o.Query == "" || len(o.Clients) != 3 || o.Requests != 8 || o.UpdateEvery != 4 {
		t.Errorf("defaults: %+v", o)
	}
	if _, err := Run(context.Background(), Options{Dataset: "tpch"}); err == nil {
		t.Error("unknown dataset accepted")
	}
}
