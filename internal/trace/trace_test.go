package trace

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestDisabledNoop(t *testing.T) {
	ctx := context.Background()
	if Active(ctx) {
		t.Fatal("background context should not be active")
	}
	cctx, sp := Start(ctx, "stage")
	if sp != nil {
		t.Fatal("Start without a root must return a nil span")
	}
	if cctx != ctx {
		t.Fatal("Start without a root must return the context unchanged")
	}
	// Every method must be nil-safe.
	sp.Set("k", 1)
	sp.End()
	if sp.Duration() != 0 {
		t.Fatal("nil span duration must be zero")
	}
	if sp.Snapshot() != nil {
		t.Fatal("nil span snapshot must be nil")
	}
}

func TestSpanTree(t *testing.T) {
	var mu sync.Mutex
	observed := map[string]int{}
	ctx, root := NewRoot(context.Background(), "req", func(stage string, d time.Duration) {
		if d < 0 {
			t.Errorf("negative duration for %s", stage)
		}
		mu.Lock()
		observed[stage]++
		mu.Unlock()
	})
	if !Active(ctx) {
		t.Fatal("root context must be active")
	}

	actx, a := Start(ctx, "a")
	a.Set("clauses", 42)
	a.Set("cache", "miss")
	a.Set("cache", "renamed") // last write wins
	_, a1 := Start(actx, "a1")
	a1.End()
	a.End()
	a.End() // second End is a no-op

	_, b := Start(ctx, "b")
	b.End()
	root.End()

	snap := root.Snapshot()
	if snap.Name != "req" || len(snap.Children) != 2 {
		t.Fatalf("unexpected root snapshot: %+v", snap)
	}
	an := snap.Find("a")
	if an == nil || len(an.Children) != 1 || an.Children[0].Name != "a1" {
		t.Fatalf("unexpected subtree for a: %+v", an)
	}
	if v, ok := an.Attr("cache"); !ok || v != "renamed" {
		t.Fatalf("attr override failed: %v %v", v, ok)
	}
	if v, ok := an.Attr("clauses"); !ok || v != 42 {
		t.Fatalf("clauses attr: %v %v", v, ok)
	}
	if snap.Find("missing") != nil {
		t.Fatal("Find of absent name must be nil")
	}

	// Children durations nest within the parent.
	if an.DurationMs > snap.DurationMs+0.5 {
		t.Fatalf("child longer than root: %v > %v", an.DurationMs, snap.DurationMs)
	}
	if an.Children[0].StartMs < an.StartMs-0.5 {
		t.Fatalf("grandchild starts before child: %+v", an)
	}

	for _, stage := range []string{"req", "a", "a1", "b"} {
		if observed[stage] != 1 {
			t.Fatalf("observer saw %q %d times", stage, observed[stage])
		}
	}

	// The snapshot must be JSON-encodable.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}

	names := []string{}
	snap.Walk(func(n *SpanNode) { names = append(names, n.Name) })
	if len(names) != 4 || names[0] != "req" {
		t.Fatalf("walk order: %v", names)
	}
}

func TestConcurrentChildren(t *testing.T) {
	ctx, root := NewRoot(context.Background(), "req", nil)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cctx, sp := Start(ctx, "tuple")
			sp.Set("i", 1)
			_, inner := Start(cctx, "compile")
			inner.End()
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	snap := root.Snapshot()
	if len(snap.Children) != 32 {
		t.Fatalf("expected 32 children, got %d", len(snap.Children))
	}
	for _, c := range snap.Children {
		if len(c.Children) != 1 || c.Children[0].Name != "compile" {
			t.Fatalf("bad child: %+v", c)
		}
	}
}

func TestLiveSnapshot(t *testing.T) {
	_, root := NewRoot(context.Background(), "req", nil)
	time.Sleep(time.Millisecond)
	snap := root.Snapshot()
	if snap.DurationMs <= 0 {
		t.Fatalf("live snapshot should report elapsed time, got %v", snap.DurationMs)
	}
	if root.Duration() <= 0 {
		t.Fatal("live Duration should report elapsed time")
	}
}

// BenchmarkStartDisabled measures the per-stage cost of instrumentation
// when no collector is installed: one context value lookup plus nil-safe
// method calls. This is the overhead every pipeline stage pays on the
// explain hot path when tracing is off — a few nanoseconds against
// stage times measured in microseconds to seconds, i.e. well under the
// 2% budget (see also BenchmarkSessionExplainTrace* at the repo root).
func BenchmarkStartDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "stage")
		sp.Set("k", i)
		sp.End()
	}
}

func BenchmarkStartEnabled(b *testing.B) {
	ctx, root := NewRoot(context.Background(), "req", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "stage")
		sp.Set("k", i)
		sp.End()
	}
	root.End()
}
