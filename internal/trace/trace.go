// Package trace implements a lightweight context-propagated span tree
// for per-request pipeline attribution.
//
// A request handler installs a collecting root span with NewRoot; every
// pipeline stage below it calls Start to open a child span, annotates it
// with Set, and closes it with End. The finished tree is exported as a
// JSON-friendly SpanNode via Snapshot, and every ended span is also
// reported to the root's Observer (if any) so aggregate per-stage
// histograms can be fed without walking trees.
//
// When no root span is installed in the context, Start returns a nil
// *Span and the unchanged context. All Span methods are safe to call on
// a nil receiver and do nothing, so instrumented code pays only a single
// context value lookup per stage on the disabled path (benchmarked in
// trace_test.go; see BenchmarkStartDisabled).
package trace

import (
	"context"
	"sync"
	"time"
)

// Observer receives the name and wall-clock duration of every span ended
// under a root, including the root itself. Observers must be safe for
// concurrent use: sibling spans may end from different goroutines.
type Observer func(stage string, d time.Duration)

// Span is one timed node in a request's trace tree. Spans are created by
// NewRoot and Start and finished by End. A nil *Span is a valid no-op.
type Span struct {
	name  string
	start time.Time
	obs   Observer // inherited from the root; may be nil

	mu       sync.Mutex
	ended    bool
	dur      time.Duration
	attrs    []attr
	children []*Span
}

type attr struct {
	key string
	val any
}

type ctxKey struct{}

// NewRoot creates a collecting root span named name and returns a
// derived context carrying it. Spans started from the returned context
// become descendants of the root. obs, if non-nil, is invoked for every
// span (root included) when it ends.
func NewRoot(ctx context.Context, name string, obs Observer) (context.Context, *Span) {
	sp := &Span{name: name, start: time.Now(), obs: obs}
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// Start opens a child span under the span carried by ctx. When ctx
// carries no span (tracing disabled) it returns ctx unchanged and a nil
// span; the caller can use both return values unconditionally.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(ctxKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	sp := &Span{name: name, start: time.Now(), obs: parent.obs}
	parent.mu.Lock()
	parent.children = append(parent.children, sp)
	parent.mu.Unlock()
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// Active reports whether ctx carries a span, i.e. whether Start would
// record anything. Instrumented code that otherwise reports stage
// timings directly to an observer can use this to avoid double counting
// when a trace is collecting.
func Active(ctx context.Context) bool {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp != nil
}

// Set attaches a key/value attribute to the span. Later writes with the
// same key override earlier ones in the snapshot. Values must be
// JSON-encodable (strings, bools, numbers). No-op on a nil span.
func (s *Span) Set(key string, val any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attr{key, val})
	s.mu.Unlock()
}

// End records the span's duration and reports it to the root observer.
// Only the first End takes effect; End on a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	d := s.dur
	s.mu.Unlock()
	if s.obs != nil {
		s.obs(s.name, d)
	}
}

// Duration returns the span's recorded duration, or the elapsed time so
// far if the span has not ended. Zero on a nil span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// SpanNode is the JSON export of a span subtree. Start offsets are
// milliseconds relative to the snapshot root so clients can render a
// flame view without absolute clocks.
type SpanNode struct {
	Name       string         `json:"name"`
	StartMs    float64        `json:"start_ms"`
	DurationMs float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*SpanNode    `json:"children,omitempty"`
}

// Snapshot exports the span and its descendants. It may be called on a
// live tree (unended spans report elapsed-so-far); nil on a nil span.
func (s *Span) Snapshot() *SpanNode {
	if s == nil {
		return nil
	}
	return s.snapshot(s.start)
}

func (s *Span) snapshot(base time.Time) *SpanNode {
	s.mu.Lock()
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	var attrs map[string]any
	if len(s.attrs) > 0 {
		attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			attrs[a.key] = a.val
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()

	n := &SpanNode{
		Name:       s.name,
		StartMs:    float64(s.start.Sub(base)) / float64(time.Millisecond),
		DurationMs: float64(dur) / float64(time.Millisecond),
		Attrs:      attrs,
	}
	for _, c := range children {
		n.Children = append(n.Children, c.snapshot(base))
	}
	return n
}

// Find returns the first node named name in a pre-order walk of the
// subtree rooted at n, or nil. Nil-safe.
func (n *SpanNode) Find(name string) *SpanNode {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// Walk visits every node of the subtree in pre-order. Nil-safe.
func (n *SpanNode) Walk(fn func(*SpanNode)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Attr returns the attribute value for key on n, and whether it is set.
func (n *SpanNode) Attr(key string) (any, bool) {
	if n == nil || n.Attrs == nil {
		return nil, false
	}
	v, ok := n.Attrs[key]
	return v, ok
}
