package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/dnnf"
	"repro/internal/sampling"
	"repro/internal/trace"
)

// StageApprox is the pipeline's anytime fallback stage: Monte Carlo
// permutation sampling over the already-grounded lineage circuit, run when
// StageCompile or StageShapley exceeds a request's compute budget (or when
// the request asks for approximation outright). Unlike the exact stages it
// needs no knowledge compilation — it evaluates the lineage directly — so it
// always produces an answer, with per-fact 95% confidence intervals instead
// of exact rationals.
const StageApprox StageName = "approx"

// Estimate is one fact's sampled Shapley value with a 95% confidence
// interval (re-exported from internal/sampling).
type Estimate = sampling.Estimate

// ExplainMode says how a budgeted request wants exactness traded for
// latency.
type ExplainMode uint8

const (
	// ModeAuto (the default) tries the exact pipeline within the budget and
	// falls back to sampling when it is exceeded.
	ModeAuto ExplainMode = iota
	// ModeExact disables the sampling fallback even when budget knobs are
	// set: budget exhaustion degrades to the CNF Proxy path as before.
	ModeExact
	// ModeApproximate skips the exact attempt and samples immediately.
	ModeApproximate
)

func (m ExplainMode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModeApproximate:
		return "approximate"
	default:
		return "auto"
	}
}

// ParseExplainMode parses "auto" (or ""), "exact", or "approximate"
// ("approx" is accepted as shorthand).
func ParseExplainMode(s string) (ExplainMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return ModeAuto, nil
	case "exact":
		return ModeExact, nil
	case "approx", "approximate":
		return ModeApproximate, nil
	}
	return ModeAuto, fmt.Errorf("core: unknown explain mode %q (want auto, exact, or approximate)", s)
}

// ExplainBudget is a per-request compute budget for one explanation: how
// much the exact pipeline may spend before the anytime tier answers with
// sampled estimates instead. The zero value disables the tier entirely
// (requests behave exactly as before this stage existed).
type ExplainBudget struct {
	// MaxNodes bounds the compiled d-DNNF size for the exact attempt; past
	// it, compilation aborts and the request degrades to sampling. Zero
	// defers to the pipeline's own MaxNodes.
	MaxNodes int
	// Deadline bounds the exact attempt's wall clock (layered over the
	// caller's context, like ShapleyStage's stage deadline); zero means no
	// per-request deadline.
	Deadline time.Duration
	// MinSamples floors the sampler's permutation count (≤ 0 = the sampling
	// default); the estimate after exactly MinSamples permutations is
	// deterministic given the seed.
	MinSamples int
	// TargetCI is the 95%-CI half-width the sampler refines toward after
	// MinSamples (0 = the sampling default; ≥ 1 disables refinement).
	TargetCI float64
	// Mode picks the degradation policy; see ExplainMode.
	Mode ExplainMode
	// Seed perturbs the canonical lineage-derived sampling seed (0 = the
	// canonical seed). Runs with equal lineage, budget, and seed reproduce
	// bit-identical estimates.
	Seed int64
}

// Enabled reports whether the budget activates the sampling fallback: an
// explicit approximate mode, or any exhaustion trigger (node budget or
// deadline) outside ModeExact.
func (b ExplainBudget) Enabled() bool {
	if b.Mode == ModeExact {
		return false
	}
	return b.Mode == ModeApproximate || b.MaxNodes > 0 || b.Deadline > 0
}

// ApproxResult is StageApprox's output: sampled per-fact estimates with
// confidence intervals and the sampling provenance.
type ApproxResult struct {
	// Estimates maps every endogenous fact of the lineage to its sampled
	// value with 95% CI bounds.
	Estimates map[db.FactID]Estimate
	// Permutations and Evals are the sampling spend.
	Permutations int
	Evals        int
	// Seed reproduces the run (derived from the lineage fingerprint and the
	// budget's Seed override).
	Seed int64
}

// Ranking returns the facts by decreasing estimated value, ties broken by
// ascending fact ID — the same convention as the exact and proxy rankings.
func (a *ApproxResult) Ranking() []db.FactID {
	ids := make([]db.FactID, 0, len(a.Estimates))
	for id := range a.Estimates {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		vi, vj := a.Estimates[ids[i]].Value, a.Estimates[ids[j]].Value
		if vi != vj {
			return vi > vj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// ApproxStage runs the anytime fallback: it flattens the endogenous lineage
// into a sampling game, derives a deterministic seed from the game's
// rename-invariant fingerprint mixed with the budget's Seed override, and
// samples Shapley estimates with 95% confidence intervals. Endogenous facts
// absent from the lineage get exact-zero estimates (they cannot contribute),
// so every requested fact is covered. The only error is ctx cancellation.
func ApproxStage(ctx context.Context, elin *circuit.Node, endo []db.FactID, b ExplainBudget) (*ApproxResult, error) {
	return approxStage(ctx, elin, endo, b, "")
}

// approxStage is ApproxStage with the degradation cause that routed the
// request here (empty when approximation was invoked directly); the cause is
// recorded on the stage's trace span.
func approxStage(ctx context.Context, elin *circuit.Node, endo []db.FactID, b ExplainBudget, cause string) (*ApproxResult, error) {
	ctx, sp := trace.Start(ctx, string(StageApprox))
	if cause != "" {
		sp.Set("cause", cause)
	}
	defer sp.End()
	game := sampling.NewGame(elin)
	seed := sampling.DeriveSeed(game.Fingerprint(), b.Seed)
	ap, err := game.MonteCarloCI(ctx, seed, sampling.Config{
		MinPermutations: b.MinSamples,
		TargetCI:        b.TargetCI,
	})
	if err != nil {
		return nil, err
	}
	res := &ApproxResult{
		Estimates:    ap.Estimates,
		Permutations: ap.Permutations,
		Evals:        ap.Evals,
		Seed:         ap.Seed,
	}
	for _, id := range endo {
		if _, ok := res.Estimates[id]; !ok {
			res.Estimates[id] = Estimate{}
		}
	}
	sp.Set("samples", res.Permutations)
	sp.Set("seed", res.Seed)
	return res, nil
}

// Degradation causes recorded on traces and exported as labeled counters:
// why a budgeted request answered with sampled estimates instead of exact
// values.
const (
	// CauseMode: the request asked for approximation outright.
	CauseMode = "mode"
	// CauseNodeBudget: the exact attempt exceeded the d-DNNF node budget.
	CauseNodeBudget = "node_budget"
	// CauseDeadline: the exact attempt's wall-clock budget fired.
	CauseDeadline = "deadline"
	// CauseError: the exact attempt failed for another reason.
	CauseError = "error"
)

// degradeCause classifies why an exact attempt under budget b degraded to
// sampling, given the attempt's error (nil only when Mode skipped it).
func degradeCause(b ExplainBudget, err error) string {
	switch {
	case b.Mode == ModeApproximate:
		return CauseMode
	case errors.Is(err, dnnf.ErrNodeBudget):
		return CauseNodeBudget
	case errors.Is(err, dnnf.ErrTimeout), errors.Is(err, ErrShapleyTimeout),
		errors.Is(err, context.DeadlineExceeded):
		return CauseDeadline
	default:
		return CauseError
	}
}

// hybridBudgetedAt is HybridAt's anytime branch: run the exact pipeline
// under the request budget and degrade to ApproxStage on exhaustion instead
// of to the CNF Proxy. ModeApproximate skips the exact attempt entirely.
func hybridBudgetedAt(ctx context.Context, elin *circuit.Node, endo []db.FactID, epoch uint64, art *Artifacts, opts HybridOptions) (*HybridResult, error) {
	start := time.Now()
	b := opts.Budget
	var exactErr error
	if b.Mode != ModeApproximate {
		popts := PipelineOptions{
			CompileTimeout:   opts.Timeout,
			ShapleyTimeout:   opts.Timeout,
			CompileMaxNodes:  opts.MaxNodes,
			Workers:          opts.Workers,
			CompileWorkers:   opts.CompileWorkers,
			Speculate:        opts.Speculate,
			Portfolio:        opts.Portfolio,
			NoCanonicalCache: opts.NoCanonicalCache,
			Strategy:         opts.Strategy,
			Cache:            opts.Cache,
			CacheOwner:       opts.CacheOwner,
		}
		if b.MaxNodes > 0 && (popts.CompileMaxNodes == 0 || b.MaxNodes < popts.CompileMaxNodes) {
			popts.CompileMaxNodes = b.MaxNodes
		}
		// The budget deadline is layered over the caller's context, exactly
		// like ShapleyStage's stage deadline: when it fires we degrade, when
		// the caller's own context fires we abort.
		ectx := ctx
		if b.Deadline > 0 {
			var cancel context.CancelFunc
			ectx, cancel = context.WithTimeout(ctx, b.Deadline)
			defer cancel()
		}
		res, err := ExplainCircuitAt(ectx, elin, endo, epoch, art, popts)
		if err == nil {
			return &HybridResult{
				Method:  MethodExact,
				Values:  res.Values,
				Ranking: res.Values.Ranking(),
				Exact:   res,
				Elapsed: time.Since(start),
			}, nil
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		exactErr = err
	}
	cause := degradeCause(b, exactErr)
	approx, err := approxStage(ctx, elin, endo, b, cause)
	if err != nil {
		return nil, err
	}
	return &HybridResult{
		Method:        MethodApprox,
		Approx:        approx,
		Ranking:       approx.Ranking(),
		Elapsed:       time.Since(start),
		DegradedCause: cause,
	}, nil
}
