package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/db"
)

func TestHybridExactPath(t *testing.T) {
	elin, endo, fs := flightsELin(t)
	res, err := Hybrid(context.Background(), elin, endo, HybridOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodExact {
		t.Fatalf("method = %v, want exact", res.Method)
	}
	ratEq(t, res.Values[fs.A[1].ID], 43, 105, "hybrid exact Shapley(a1)")
	if len(res.Ranking) != len(endo) {
		t.Fatalf("ranking has %d facts, want %d", len(res.Ranking), len(endo))
	}
	if res.Ranking[0] != fs.A[1].ID {
		t.Errorf("top-ranked fact = %d, want a1 (%d)", res.Ranking[0], fs.A[1].ID)
	}
	if res.Exact == nil || res.Exact.Values == nil {
		t.Error("exact pipeline result missing")
	}
}

func TestHybridFallsBackToProxy(t *testing.T) {
	elin, endo, fs := flightsELin(t)
	// A node budget of 1 forces the compiler to fail immediately,
	// exercising the out-of-memory fallback path.
	res, err := Hybrid(context.Background(), elin, endo, HybridOptions{Timeout: 10 * time.Second, MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodProxy {
		t.Fatalf("method = %v, want proxy", res.Method)
	}
	if res.Values != nil {
		t.Error("proxy fallback should not carry exact values")
	}
	if res.Proxy == nil || len(res.Ranking) == 0 {
		t.Fatal("proxy fallback missing scores or ranking")
	}
	// The proxy ranking must still place the a2..a5 group above a6, a7
	// (Example 5.3's qualitative property).
	pos := make(map[db.FactID]int)
	for i, id := range res.Ranking {
		pos[id] = i
	}
	for i := 2; i <= 5; i++ {
		for j := 6; j <= 7; j++ {
			if pos[fs.A[i].ID] > pos[fs.A[j].ID] {
				t.Errorf("proxy ranking places a%d below a%d", i, j)
			}
		}
	}
}

func TestHybridMethodString(t *testing.T) {
	if MethodExact.String() != "exact" || MethodProxy.String() != "cnf-proxy" {
		t.Errorf("method strings: %q, %q", MethodExact.String(), MethodProxy.String())
	}
}

func TestPipelineShapleyTimeout(t *testing.T) {
	elin, endo, _ := flightsELin(t)
	// A zero compile budget with a negative-duration Shapley deadline: use
	// an absurdly small positive timeout instead to trigger the per-fact
	// deadline check deterministically.
	_, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{ShapleyTimeout: time.Nanosecond})
	if err != ErrShapleyTimeout {
		t.Fatalf("err = %v, want ErrShapleyTimeout", err)
	}
}
