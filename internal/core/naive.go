package core

import (
	"fmt"
	"math/big"

	"repro/internal/db"
)

// MaxNaiveFacts bounds the number of endogenous facts accepted by the naive
// exponential algorithms; beyond this the 2^n enumeration is hopeless.
const MaxNaiveFacts = 25

// BooleanGame is a cooperative game whose players are endogenous facts: it
// maps a subset E ⊆ Dn (true = present) to q(Dx ∪ E) ∈ {0, 1}.
type BooleanGame func(subset map[db.FactID]bool) bool

// NaiveShapley computes exact Shapley values for every fact by direct
// enumeration of all 2^n endogenous subsets (Equation (1)). It is the
// testing ground truth for Algorithm 1 and fails for more than
// MaxNaiveFacts facts.
func NaiveShapley(game BooleanGame, endo []db.FactID) (Values, error) {
	n := len(endo)
	if n > MaxNaiveFacts {
		return nil, fmt.Errorf("core: naive Shapley limited to %d facts, got %d", MaxNaiveFacts, n)
	}
	// Evaluate the game once per subset.
	vals := make([]bool, 1<<n)
	subset := make(map[db.FactID]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i, f := range endo {
			subset[f] = mask&(1<<i) != 0
		}
		vals[mask] = game(subset)
	}
	coefs := shapleyCoefficients(n)
	out := make(Values, n)
	for i, f := range endo {
		total := new(big.Rat)
		bit := 1 << i
		for mask := 0; mask < 1<<n; mask++ {
			if mask&bit != 0 {
				continue
			}
			with, without := vals[mask|bit], vals[mask]
			if with == without {
				continue
			}
			k := popcount(mask)
			if with {
				total.Add(total, coefs[k])
			} else {
				total.Sub(total, coefs[k])
			}
		}
		out[f] = total
	}
	return out, nil
}

// RealGame is a cooperative game with real-valued (rational) wealth, used by
// the CNF Proxy analysis: the proxy function φ̃ is such a game.
type RealGame func(subset map[int]bool) *big.Rat

// NaiveShapleyReal computes exact Shapley values of a real-valued game over
// the given players by direct enumeration, as in the auxiliary definition of
// Section 5.
func NaiveShapleyReal(game RealGame, players []int) (map[int]*big.Rat, error) {
	n := len(players)
	if n > MaxNaiveFacts {
		return nil, fmt.Errorf("core: naive Shapley limited to %d players, got %d", MaxNaiveFacts, n)
	}
	vals := make([]*big.Rat, 1<<n)
	subset := make(map[int]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i, p := range players {
			subset[p] = mask&(1<<i) != 0
		}
		vals[mask] = game(subset)
	}
	coefs := shapleyCoefficients(n)
	out := make(map[int]*big.Rat, n)
	var diff, term big.Rat
	for i, p := range players {
		total := new(big.Rat)
		bit := 1 << i
		for mask := 0; mask < 1<<n; mask++ {
			if mask&bit != 0 {
				continue
			}
			diff.Sub(vals[mask|bit], vals[mask])
			if diff.Sign() == 0 {
				continue
			}
			term.Mul(&diff, coefs[popcount(mask)])
			total.Add(total, &term)
		}
		out[p] = total
	}
	return out, nil
}

// CountSlices computes #Slices(q, Dx, Dn, k) — the number of k-subsets
// E ⊆ Dn with q(Dx ∪ E) = 1 — by enumeration, for testing the probabilistic
// database reduction (Proposition 3.1).
func CountSlices(game BooleanGame, endo []db.FactID) ([]*big.Int, error) {
	n := len(endo)
	if n > MaxNaiveFacts {
		return nil, fmt.Errorf("core: naive #Slices limited to %d facts, got %d", MaxNaiveFacts, n)
	}
	out := make([]*big.Int, n+1)
	for i := range out {
		out[i] = new(big.Int)
	}
	subset := make(map[db.FactID]bool, n)
	one := big.NewInt(1)
	for mask := 0; mask < 1<<n; mask++ {
		for i, f := range endo {
			subset[f] = mask&(1<<i) != 0
		}
		if game(subset) {
			k := popcount(mask)
			out[k].Add(out[k], one)
		}
	}
	return out, nil
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
