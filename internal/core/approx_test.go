package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/sampling"
	"repro/internal/tpch"
)

func TestParseExplainMode(t *testing.T) {
	cases := []struct {
		in   string
		want ExplainMode
		err  bool
	}{
		{"", ModeAuto, false},
		{"auto", ModeAuto, false},
		{"exact", ModeExact, false},
		{"approx", ModeApproximate, false},
		{"approximate", ModeApproximate, false},
		{" Approximate ", ModeApproximate, false},
		{"fast", ModeAuto, true},
	}
	for _, c := range cases {
		got, err := ParseExplainMode(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseExplainMode(%q) err = %v, want err=%v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseExplainMode(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestExplainBudgetEnabled(t *testing.T) {
	cases := []struct {
		b    ExplainBudget
		want bool
	}{
		{ExplainBudget{}, false},
		{ExplainBudget{MinSamples: 100}, false},
		{ExplainBudget{TargetCI: 0.01}, false},
		{ExplainBudget{MaxNodes: 10}, true},
		{ExplainBudget{Deadline: time.Second}, true},
		{ExplainBudget{Mode: ModeApproximate}, true},
		{ExplainBudget{Mode: ModeExact, MaxNodes: 10, Deadline: time.Second}, false},
	}
	for _, c := range cases {
		if got := c.b.Enabled(); got != c.want {
			t.Errorf("Enabled(%+v) = %v, want %v", c.b, got, c.want)
		}
	}
}

// TestApproxStageCoversEveryFact checks that every requested endogenous fact
// gets an estimate with ordered bounds containing its value — including a8,
// which is absent from the lineage and must be pinned to exact zero.
func TestApproxStageCoversEveryFact(t *testing.T) {
	elin, endo, fs := flightsELin(t)
	res, err := ApproxStage(context.Background(), elin, endo, ExplainBudget{
		Mode: ModeApproximate, MinSamples: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != len(endo) {
		t.Fatalf("estimates cover %d facts, want %d", len(res.Estimates), len(endo))
	}
	if res.Permutations < 128 || res.Evals <= 0 {
		t.Errorf("sampling spend: %d permutations, %d evals", res.Permutations, res.Evals)
	}
	for _, id := range endo {
		e, ok := res.Estimates[id]
		if !ok {
			t.Fatalf("fact %d has no estimate", id)
		}
		for _, v := range []float64{e.Value, e.CILow, e.CIHigh} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("fact %d has non-finite estimate %+v", id, e)
			}
		}
		if e.CILow > e.Value || e.Value > e.CIHigh {
			t.Errorf("fact %d value %v outside its CI [%v, %v]", id, e.Value, e.CILow, e.CIHigh)
		}
	}
	if e := res.Estimates[fs.A[8].ID]; e != (Estimate{}) {
		t.Errorf("a8 (absent from lineage) estimate = %+v, want exact zero", e)
	}
	if top := res.Ranking()[0]; top != fs.A[1].ID {
		t.Errorf("top-ranked fact = %d, want a1 (%d)", top, fs.A[1].ID)
	}
}

func TestApproxStageDeterministicSeed(t *testing.T) {
	elin, endo, _ := flightsELin(t)
	b := ExplainBudget{Mode: ModeApproximate, MinSamples: 100}
	a, err := ApproxStage(context.Background(), elin, endo, b)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ApproxStage(context.Background(), elin, endo, b)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seed != c.Seed {
		t.Fatalf("seeds diverge: %d vs %d", a.Seed, c.Seed)
	}
	for id, ea := range a.Estimates {
		if ec := c.Estimates[id]; ea != ec {
			t.Fatalf("fact %d: %+v vs %+v for identical budgets", id, ea, ec)
		}
	}
	b.Seed = 7
	d, err := ApproxStage(context.Background(), elin, endo, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Seed == a.Seed {
		t.Error("seed override did not perturb the derived seed")
	}
}

// TestHybridBudgetedMaxNodesFallsBack starves the compiler: the request must
// degrade to marked sampled estimates, not error.
func TestHybridBudgetedMaxNodesFallsBack(t *testing.T) {
	elin, endo, fs := flightsELin(t)
	res, err := Hybrid(context.Background(), elin, endo, HybridOptions{
		Timeout: 10 * time.Second,
		Budget:  ExplainBudget{MaxNodes: 1, MinSamples: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodApprox {
		t.Fatalf("method = %v, want approximate", res.Method)
	}
	if res.Approx == nil || len(res.Ranking) != len(endo) {
		t.Fatal("approx fallback missing estimates or ranking")
	}
	if res.Values != nil || res.Proxy != nil {
		t.Error("approx fallback should carry neither exact nor proxy values")
	}
	if top := res.Ranking[0]; top != fs.A[1].ID {
		t.Errorf("top-ranked fact = %d, want a1 (%d)", top, fs.A[1].ID)
	}
}

// TestHybridBudgetedDeadlineFallsBack arms a deadline that expires during
// the exact attempt (mid-StageCompile at the latest): the request must fall
// back to sampling, not surface the deadline error.
func TestHybridBudgetedDeadlineFallsBack(t *testing.T) {
	elin, endo, _ := flightsELin(t)
	res, err := Hybrid(context.Background(), elin, endo, HybridOptions{
		Budget: ExplainBudget{Deadline: time.Nanosecond, MinSamples: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodApprox {
		t.Fatalf("method = %v, want approximate", res.Method)
	}
}

// TestHybridBudgetedExactWithinBudget: a generous budget leaves the exact
// path untouched — same values as an unbudgeted run.
func TestHybridBudgetedExactWithinBudget(t *testing.T) {
	elin, endo, fs := flightsELin(t)
	res, err := Hybrid(context.Background(), elin, endo, HybridOptions{
		Budget: ExplainBudget{Deadline: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodExact {
		t.Fatalf("method = %v, want exact", res.Method)
	}
	ratEq(t, res.Values[fs.A[1].ID], 43, 105, "budgeted exact Shapley(a1)")
}

// TestHybridBudgetedCallerCancel: the caller's own context aborting must
// surface as an error, not an approximate answer nobody is waiting for.
func TestHybridBudgetedCallerCancel(t *testing.T) {
	elin, endo, _ := flightsELin(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Hybrid(ctx, elin, endo, HybridOptions{
		Budget: ExplainBudget{Deadline: time.Second},
	})
	if err == nil {
		t.Fatal("cancelled caller got an answer")
	}
}

// calibrationLineage is one (lineage, endogenous facts, exact values) triple
// the calibration property test samples over.
type calibrationLineage struct {
	name  string
	elin  *circuit.Node
	endo  []db.FactID
	exact map[db.FactID]float64
}

// tpchCalibrationLineage grounds a small TPC-H instance and picks one
// answer's lineage with enough players to be interesting but few enough
// that the exact pipeline is instant.
func tpchCalibrationLineage(t *testing.T) *calibrationLineage {
	t.Helper()
	d := tpch.Generate(tpch.Config{
		Customers: 8, OrdersPerCustomer: 2, LinesPerOrder: 3,
		Parts: 12, Suppliers: 5, Seed: 42,
	})
	for _, bq := range tpch.Queries() {
		cb := circuit.NewBuilder()
		answers, err := engine.Eval(d, bq.Q, cb, engine.Options{Mode: engine.ModeEndogenous})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range answers {
			g := sampling.NewGame(a.Lineage)
			if n := g.NumPlayers(); n < 3 || n > 10 {
				continue
			}
			endo := make([]db.FactID, len(g.Players))
			copy(endo, g.Players)
			return &calibrationLineage{name: "tpch/" + bq.Name, elin: a.Lineage, endo: endo}
		}
	}
	t.Fatal("no TPC-H answer lineage with 3–10 players found")
	return nil
}

// TestCalibration is the calibration property test: across ≥ 20 seeds on
// the flights running example and one TPC-H lineage, the sampler's 95%
// confidence intervals must cover the exact Shapley values (computed as
// big.Rat by the exact pipeline) at close to the nominal rate, and the
// Kernel SHAP estimator must agree with the Monte Carlo estimates within
// tolerance. Failures print the offending seed so the run is reproducible.
func TestCalibration(t *testing.T) {
	felin, fendo, _ := flightsELin(t)
	lineages := []*calibrationLineage{
		{name: "flights", elin: felin, endo: fendo},
		tpchCalibrationLineage(t),
	}
	const (
		seeds       = 24
		perms       = 600
		minCoverage = 0.85 // nominal 0.95, slack for CLT approximation at R=600
		shapTol     = 0.15
	)
	for _, lin := range lineages {
		exact, err := ExplainCircuit(context.Background(), lin.elin, lin.endo, PipelineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		lin.exact = make(map[db.FactID]float64, len(lin.endo))
		for id, v := range exact.Values {
			lin.exact[id], _ = v.Float64()
		}

		g := sampling.NewGame(lin.elin)
		covered, total := 0, 0
		for seed := int64(1); seed <= seeds; seed++ {
			// TargetCI ≥ 1 disables refinement, so every trial spends exactly
			// perms permutations and is deterministic given the seed.
			ap, err := g.MonteCarloCI(context.Background(), seed, sampling.Config{
				MinPermutations: perms, TargetCI: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if ap.Permutations != perms {
				t.Fatalf("%s seed %d: spent %d permutations, want exactly %d",
					lin.name, seed, ap.Permutations, perms)
			}
			for _, id := range g.Players {
				e := ap.Estimates[id]
				total++
				if lin.exact[id] >= e.CILow && lin.exact[id] <= e.CIHigh {
					covered++
				}
			}
		}
		if rate := float64(covered) / float64(total); rate < minCoverage {
			t.Errorf("%s: 95%% CIs cover exact values at rate %.3f (< %.2f) over seeds 1..%d",
				lin.name, rate, minCoverage, seeds)
		}

		// Kernel SHAP cross-check on one seed: both estimators approximate
		// the same exact values, so they must agree within tolerance.
		const shapSeed = 11
		ap, err := g.MonteCarloCI(context.Background(), shapSeed, sampling.Config{
			MinPermutations: perms, TargetCI: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		shap := sampling.KernelSHAP(g, 400*g.NumPlayers(), rand.New(rand.NewSource(shapSeed)))
		for _, id := range g.Players {
			if diff := math.Abs(ap.Estimates[id].Value - shap[id]); diff > shapTol {
				t.Errorf("%s seed %d: fact %d Monte Carlo %.4f vs Kernel SHAP %.4f (|Δ| = %.4f > %.2f)",
					lin.name, shapSeed, id, ap.Estimates[id].Value, shap[id], diff, shapTol)
			}
		}
	}
}
