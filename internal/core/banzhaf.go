package core

import (
	"math/big"

	"repro/internal/db"
	"repro/internal/dnnf"
)

// This file implements the Banzhaf value, a second game-theoretic
// responsibility measure over the same d-DNNF circuits. The paper's related
// work (Livshits et al.; Meliou et al.'s causality/responsibility) discusses
// alternative contribution measures; the Banzhaf value is the natural
// uniform-coalition variant of Shapley:
//
//	Banzhaf(q, Dn, Dx, f) = (1/2^{n-1}) Σ_{E ⊆ Dn\{f}} q(Dx∪E∪{f}) − q(Dx∪E)
//	                      = (#SAT(C[f→1]) − #SAT(C[f→0])) / 2^{n-1}
//
// counted over the n−1 remaining endogenous facts — so unlike Shapley it
// needs only plain model counts, not the #SAT_k spectrum, and is linear in
// the circuit size with no quadratic factor.

// BanzhafAll computes the Banzhaf value of every endogenous fact with
// respect to the Boolean function represented by the d-DNNF c. Facts outside
// the circuit support are null players with value 0.
func BanzhafAll(c *dnnf.Node, endo []db.FactID) Values {
	out := make(Values, len(endo))
	n := len(endo)
	if n == 0 {
		return out
	}
	denom := new(big.Int).Lsh(big.NewInt(1), uint(n-1))
	support := make(map[db.FactID]bool, len(c.Vars()))
	for _, v := range c.Vars() {
		support[db.FactID(v)] = true
	}
	b := dnnf.NewBuilder()
	universe := n - 1
	for _, f := range endo {
		if !support[f] {
			out[f] = new(big.Rat)
			continue
		}
		c1 := dnnf.Condition(b, c, map[int]bool{int(f): true})
		c0 := dnnf.Condition(b, c, map[int]bool{int(f): false})
		count1 := countOverUniverse(c1, universe)
		count0 := countOverUniverse(c0, universe)
		diff := new(big.Int).Sub(count1, count0)
		out[f] = new(big.Rat).SetFrac(diff, denom)
	}
	return out
}

// countOverUniverse counts models of c over a universe of the given size
// (which must be at least the support size).
func countOverUniverse(c *dnnf.Node, universe int) *big.Int {
	counts := ComputeAllSATk(c)
	total := new(big.Int)
	for _, v := range counts {
		total.Add(total, v)
	}
	gap := universe - len(c.Vars())
	if gap > 0 {
		total.Lsh(total, uint(gap))
	}
	return total
}

// NaiveBanzhaf computes Banzhaf values by 2^n enumeration, the testing
// ground truth.
func NaiveBanzhaf(game BooleanGame, endo []db.FactID) (Values, error) {
	n := len(endo)
	if n > MaxNaiveFacts {
		return nil, errTooManyFacts(n)
	}
	vals := make([]bool, 1<<n)
	subset := make(map[db.FactID]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i, f := range endo {
			subset[f] = mask&(1<<i) != 0
		}
		vals[mask] = game(subset)
	}
	denom := new(big.Int).Lsh(big.NewInt(1), uint(n-1))
	out := make(Values, n)
	for i, f := range endo {
		diff := int64(0)
		bit := 1 << i
		for mask := 0; mask < 1<<n; mask++ {
			if mask&bit != 0 {
				continue
			}
			with, without := vals[mask|bit], vals[mask]
			if with && !without {
				diff++
			} else if !with && without {
				diff--
			}
		}
		out[f] = new(big.Rat).SetFrac(big.NewInt(diff), denom)
	}
	return out, nil
}

func errTooManyFacts(n int) error {
	return &tooManyFactsError{n}
}

type tooManyFactsError struct{ n int }

func (e *tooManyFactsError) Error() string {
	return "core: naive computation limited to 25 facts"
}
