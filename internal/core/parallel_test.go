package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/dnnf"
)

// valuesIdentical asserts two Values maps carry the same facts with
// big.Rat-identical entries.
func valuesIdentical(t *testing.T, got, want Values, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d facts, want %d", what, len(got), len(want))
	}
	for f, w := range want {
		g, ok := got[f]
		if !ok {
			t.Fatalf("%s: fact %d missing", what, f)
		}
		if g.Cmp(w) != 0 {
			t.Fatalf("%s: fact %d = %v, want %v", what, f, g, w)
		}
	}
}

// TestExplainCircuitParallelMatchesSerial is the concurrency acceptance
// test: under the race detector it exercises the worker fan-out of
// Algorithm 1 on the flights fixture and asserts the parallel Values are
// big.Rat-identical to the serial ones.
func TestExplainCircuitParallelMatchesSerial(t *testing.T) {
	elin, endo, fs := flightsELin(t)
	serial, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0), 3 * runtime.GOMAXPROCS(0)} {
		par, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		valuesIdentical(t, par.Values, serial.Values, "parallel vs serial")
		ratEq(t, par.Values[fs.A[1].ID], 43, 105, "parallel Shapley(a1)")
	}
}

func TestShapleyAllParallelMatchesSerial(t *testing.T) {
	elin, endo, _ := flightsELin(t)
	res, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := ShapleyAll(context.Background(), res.DNNF, endo, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ShapleyAll(context.Background(), res.DNNF, endo, 8)
	if err != nil {
		t.Fatal(err)
	}
	valuesIdentical(t, parallel, serial, "ShapleyAll workers=8 vs 1")
	// Rankings derived from identical values must be identical too.
	sr, pr := serial.Ranking(), parallel.Ranking()
	for i := range sr {
		if sr[i] != pr[i] {
			t.Fatalf("ranking diverges at %d: %v vs %v", i, sr, pr)
		}
	}
}

func TestExplainCircuitCancelledContext(t *testing.T) {
	elin, endo, _ := flightsELin(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExplainCircuit(ctx, elin, endo, PipelineOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestHybridPropagatesCancellation(t *testing.T) {
	elin, endo, _ := flightsELin(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Hybrid(ctx, elin, endo, HybridOptions{Timeout: time.Second})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled Hybrid returned a result — cancellation must not fall back to proxy")
	}
}

func TestShapleyAllCancelledReturnsContextError(t *testing.T) {
	elin, endo, _ := flightsELin(t)
	res, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ShapleyAll(ctx, res.DNNF, endo, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestPipelineWithSharedCacheMatchesCold verifies end-to-end that the
// cross-call compilation cache changes only the cost, never the values.
func TestPipelineWithSharedCacheMatchesCold(t *testing.T) {
	elin, endo, _ := flightsELin(t)
	cold, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cache := dnnf.NewCompileCache(8)
	var warm *PipelineResult
	for i := 0; i < 3; i++ { // first call fills, later calls hit
		warm, err = ExplainCircuit(context.Background(), elin, endo, PipelineOptions{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !warm.CompileStats.CrossCallHit {
		t.Error("third compilation of identical lineage missed the cross-call cache")
	}
	valuesIdentical(t, warm.Values, cold.Values, "cached vs cold pipeline")
}

// TestRankingDeterministic guards the satellite fix: ranking ties (and the
// efficiency sum) must not depend on Go's randomized map iteration order.
func TestRankingDeterministic(t *testing.T) {
	elin, endo, _ := flightsELin(t)
	res, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Values.Ranking()
	firstSum := res.Values.Sum()
	for i := 0; i < 20; i++ {
		r := res.Values.Ranking()
		for j := range first {
			if r[j] != first[j] {
				t.Fatalf("run %d: ranking %v differs from %v", i, r, first)
			}
		}
		if s := res.Values.Sum(); s.Cmp(firstSum) != 0 {
			t.Fatalf("run %d: sum %v differs from %v", i, s, firstSum)
		}
	}
	// Ties break by ascending fact ID: facts a2..a5 share 23/210, a6 and a7
	// share 8/105, so within each tied group IDs must ascend.
	v := res.Values
	r := v.Ranking()
	for i := 1; i < len(r); i++ {
		if v[r[i-1]].Cmp(v[r[i]]) == 0 && r[i-1] >= r[i] {
			t.Fatalf("tie between facts %d and %d not broken by ascending ID", r[i-1], r[i])
		}
	}
}
