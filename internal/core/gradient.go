package core

// Gradient-mode Algorithm 1: compute every fact's conditioned #SAT_k count
// difference from TWO passes over the circuit instead of 2n conditionings.
//
// View each node as carrying the polynomial V_m(z) = Σ_k #SAT_k(m)·z^k over
// its own variable support (the bottom-up #SAT_k dynamic program of
// Lemma 4.5, with ∧ ↦ polynomial product and ∨ ↦ sum after binomial padding
// of gap variables). The root polynomial R(z) is then, in the style of
// Darwiche's circuit differentiation, a multilinear function of the leaf
// polynomials: decomposability guarantees each certificate (proof tree)
// contains at most one literal of each variable, so R is linear in every
// literal leaf and the partial derivative D_ℓ(z) = ∂R/∂V_ℓ is well defined.
// A single top-down pass computes all of them:
//
//   - D_root = 1
//   - ∧-gate g, child c: D_c += D_g · Π_{siblings s} V_s
//   - ∨-gate g, child c: D_c += D_g · C(gap, ·)   (gap padding, as bottom-up)
//
// For a variable f with positive-literal leaf ℓ⁺ and negative-literal leaf
// ℓ⁻, D_{ℓ⁺}(z) enumerates exactly the root models that set f true through a
// literal occurrence, weighted by the Hamming weight of the OTHER variables —
// i.e. the conditioned count vector Γ_f up to the models in which f is a gap
// ("smoothing") variable somewhere along the certificate. Those gap models
// set f freely, so they contribute the SAME polynomial to Γ_f (f→true) and
// Δ_f (f→false) and cancel in the difference Algorithm 1 consumes:
//
//   Γ_f(z) − Δ_f(z) = D_{ℓ⁺}(z) − D_{ℓ⁻}(z)
//
// padded to the endogenous universe exactly as the per-fact path pads its
// conditioned counts. The total cost is O(|C|·n²) big-int work for ALL facts
// — an asymptotic factor-n improvement over the per-fact path's
// O(n·|C|·n²) — and both passes are level-synchronously parallel.

import (
	"context"
	"math/big"
	"sync"

	"repro/internal/db"
	"repro/internal/dnnf"
	"repro/internal/parallel"
)

// shapleyAllGradient computes the Shapley value of every endogenous fact via
// the two-pass gradient algorithm. It is exactly equivalent to the per-fact
// path (big.Rat-identical results); coefs must be ShapleyCoefficients(n).
func shapleyAllGradient(ctx context.Context, c *dnnf.Node, endo []db.FactID, workers int, coefs []*big.Rat) (Values, error) {
	n := len(endo)
	out := make(Values, n)
	support := len(c.Vars())
	if support == 0 {
		// Constant circuit: every fact is a null player.
		for _, f := range endo {
			out[f] = new(big.Rat)
		}
		return out, ctx.Err()
	}

	order, maxID := flattenDNNF(c)
	levels := levelize(order, maxID)
	workers = parallel.Workers(workers)

	// Pass 1 (bottom-up): per-node #SAT_k vectors over each node's own
	// support, deepest level first so every child is ready before its
	// parents. Nodes within a level are independent.
	counts := make([][]*big.Int, maxID+1)
	for l := len(levels) - 1; l >= 0; l-- {
		nodes := levels[l]
		err := parallel.ForEach(ctx, len(nodes), workers, func(_, i int) error {
			m := nodes[i]
			counts[m.ID()] = satkNode(m, counts)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	// Pass 2 (top-down): derivative vectors, root level first so every
	// node's derivative is final before it propagates to its children. Two
	// same-level nodes may share a child, so accumulation into a child is
	// guarded by a per-node mutex; big.Int addition is exact, so the
	// accumulation order cannot change the result.
	deriv := make([][]*big.Int, maxID+1)
	locks := make([]sync.Mutex, maxID+1)
	deriv[c.ID()] = []*big.Int{big.NewInt(1)}
	for l := 0; l < len(levels); l++ {
		nodes := levels[l]
		err := parallel.ForEach(ctx, len(nodes), workers, func(_, i int) error {
			propagateDeriv(nodes[i], counts, deriv, locks)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	// Harvest per-literal derivatives. Builders hash-cons literals, so each
	// literal normally has one leaf; summing keeps this robust either way.
	pos := make(map[int][]*big.Int)
	neg := make(map[int][]*big.Int)
	for _, m := range order {
		if m.Kind != dnnf.KindLit {
			continue
		}
		d := deriv[m.ID()]
		if d == nil {
			continue
		}
		if m.Lit > 0 {
			pos[m.Lit] = addLitDeriv(pos[m.Lit], d)
		} else {
			neg[-m.Lit] = addLitDeriv(neg[-m.Lit], d)
		}
	}

	// Γ_f − Δ_f = D_{ℓ⁺} − D_{ℓ⁻}, padded from the circuit support to the
	// endogenous universe (facts outside the support pad both conditioned
	// vectors identically, so the padded difference is the difference
	// padded).
	pad := n - support
	if pad < 0 {
		// Mirror the per-fact path, which panics in PadToUniverse when the
		// circuit mentions variables outside the endogenous universe.
		panic("core: negative universe gap")
	}
	vals := make([]*big.Rat, n)
	err := parallel.ForEach(ctx, n, workers, func(_, i int) error {
		f := int(endo[i])
		p, q := pos[f], neg[f]
		if p == nil && q == nil {
			vals[i] = new(big.Rat) // null player (outside the support)
			return nil
		}
		diff := subCounts(p, q, support)
		if pad > 0 {
			diff = convolve(diff, binomialRow(pad))
		}
		vals[i] = weightedDiff(diff, coefs)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, f := range endo {
		out[f] = vals[i]
	}
	return out, nil
}

// levelize partitions the DAG into root-distance levels: level(root) = 0 and
// level(c) = 1 + max over parents. Every edge goes from a strictly smaller
// to a strictly larger level, so processing levels in ascending order is a
// valid top-down schedule and descending order a valid bottom-up one, with
// full independence inside each level. order must be topological (children
// before parents), as returned by flattenDNNF.
func levelize(order []*dnnf.Node, maxID int) [][]*dnnf.Node {
	level := make([]int, maxID+1)
	// Reversed topological order visits every parent before its children,
	// so each node's level is final when its out-edges are relaxed.
	maxLevel := 0
	for i := len(order) - 1; i >= 0; i-- {
		m := order[i]
		lm := level[m.ID()]
		for _, c := range m.Children {
			if level[c.ID()] < lm+1 {
				level[c.ID()] = lm + 1
				if lm+1 > maxLevel {
					maxLevel = lm + 1
				}
			}
		}
	}
	levels := make([][]*dnnf.Node, maxLevel+1)
	for _, m := range order {
		l := level[m.ID()]
		levels[l] = append(levels[l], m)
	}
	return levels
}

// propagateDeriv pushes a node's finalized derivative to its children.
//
// For an ∧-gate the contribution to child i is D_g convolved with the count
// vectors of all siblings; prefix/suffix products make that one convolution
// per child instead of a quadratic sweep. For an ∨-gate the contribution is
// D_g padded by the child's gap-variable binomial row, mirroring the
// bottom-up smoothing.
func propagateDeriv(g *dnnf.Node, counts, deriv [][]*big.Int, locks []sync.Mutex) {
	dg := deriv[g.ID()]
	if dg == nil || len(g.Children) == 0 {
		return
	}
	switch g.Kind {
	case dnnf.KindAnd:
		k := len(g.Children)
		// pref[i] = D_g ⊛ V_0 ⊛ … ⊛ V_{i−1}
		pref := make([][]*big.Int, k)
		pref[0] = dg
		for i := 1; i < k; i++ {
			pref[i] = convolve(pref[i-1], counts[g.Children[i-1].ID()])
		}
		// Walk right-to-left maintaining the suffix product V_{i+1} ⊛ … so
		// child i receives pref[i] ⊛ suffix.
		var suf []*big.Int
		for i := k - 1; i >= 0; i-- {
			contrib := pref[i]
			owned := i >= 1 // pref[i≥1] is a fresh convolve output
			if suf != nil {
				contrib = convolve(pref[i], suf)
				owned = true
			}
			addDeriv(g.Children[i], contrib, owned, deriv, locks)
			if i > 0 {
				cv := counts[g.Children[i].ID()]
				if suf == nil {
					suf = cv
				} else {
					suf = convolve(suf, cv)
				}
			}
		}
	case dnnf.KindOr:
		for _, ch := range g.Children {
			gap := len(g.Vars()) - len(ch.Vars())
			if gap > 0 {
				addDeriv(ch, convolve(dg, binomialRow(gap)), true, deriv, locks)
			} else {
				addDeriv(ch, dg, false, deriv, locks)
			}
		}
	}
}

// addDeriv accumulates a parent's contribution into a child's derivative
// under the child's lock. owned marks vectors the caller will never reuse,
// which may be adopted directly as the accumulator; shared vectors are
// copied first. All contributions to one child have identical length
// (|support(root)| − |support(child)| + 1).
func addDeriv(c *dnnf.Node, vec []*big.Int, owned bool, deriv [][]*big.Int, locks []sync.Mutex) {
	id := c.ID()
	locks[id].Lock()
	defer locks[id].Unlock()
	cur := deriv[id]
	if cur == nil {
		if !owned {
			vec = copyCounts(vec)
		}
		deriv[id] = vec
		return
	}
	for i, vi := range vec {
		if vi.Sign() != 0 {
			cur[i].Add(cur[i], vi)
		}
	}
}

// addLitDeriv merges derivative vectors of leaves carrying the same literal.
// With hash-consed builders the second case never triggers; it is kept for
// robustness against externally constructed circuits.
func addLitDeriv(dst, d []*big.Int) []*big.Int {
	if dst == nil {
		return d
	}
	sum := copyCounts(dst)
	for i, di := range d {
		sum[i].Add(sum[i], di)
	}
	return sum
}

// subCounts returns p − q as a fresh vector of the given length, treating a
// nil operand as all-zero.
func subCounts(p, q []*big.Int, size int) []*big.Int {
	out := zeros(size)
	for i := 0; i < size; i++ {
		if p != nil && i < len(p) {
			out[i].Set(p[i])
		}
		if q != nil && i < len(q) {
			out[i].Sub(out[i], q[i])
		}
	}
	return out
}

// weightedDiff evaluates Σ_k coefs[k]·diff[k] as an exact rational — the
// gradient-mode sibling of weightedDifference, which receives Γ−Δ already
// formed.
func weightedDiff(diff []*big.Int, coefs []*big.Rat) *big.Rat {
	total := new(big.Rat)
	var term big.Rat
	for k := 0; k < len(coefs) && k < len(diff); k++ {
		if diff[k].Sign() == 0 {
			continue
		}
		term.SetInt(diff[k])
		term.Mul(&term, coefs[k])
		total.Add(total, &term)
	}
	return total
}
