package core

import (
	"context"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/db"
	"repro/internal/dnnf"
	"repro/internal/engine"
	"repro/internal/flights"
)

func ratEq(t *testing.T, got *big.Rat, num, den int64, what string) {
	t.Helper()
	want := big.NewRat(num, den)
	if got.Cmp(want) != 0 {
		t.Errorf("%s = %v, want %v", what, got, want)
	}
}

func TestShapleyCoefficients(t *testing.T) {
	// coef[k] = k!(n-k-1)!/n! = 1/(n·C(n-1,k)); the weighted binomial sum
	// telescopes to 1.
	for n := 1; n <= 12; n++ {
		coefs := ShapleyCoefficients(n)
		sum := new(big.Rat)
		for k := 0; k < n; k++ {
			c := new(big.Int).Binomial(int64(n-1), int64(k))
			term := new(big.Rat).SetInt(c)
			term.Mul(term, coefs[k])
			sum.Add(sum, term)
		}
		if sum.Cmp(big.NewRat(1, 1)) != 0 {
			t.Errorf("n=%d: Σ coef[k]·C(n-1,k) = %v, want 1", n, sum)
		}
	}
	coefs := ShapleyCoefficients(2)
	ratEq(t, coefs[0], 1, 2, "coef[0] for n=2")
	ratEq(t, coefs[1], 1, 2, "coef[1] for n=2")
}

// flightsELin evaluates the paper's running example end to end and returns
// the endogenous lineage circuit and the endogenous fact IDs.
func flightsELin(t *testing.T) (*circuit.Node, []db.FactID, *flights.Facts) {
	t.Helper()
	d, fs := flights.Build()
	q := flights.Query()
	cb := circuit.NewBuilder()
	elin, err := engine.EvalBoolean(d, q, cb, engine.Options{Mode: engine.ModeEndogenous})
	if err != nil {
		t.Fatal(err)
	}
	endo := make([]db.FactID, 0, 8)
	for _, f := range d.EndogenousFacts() {
		endo = append(endo, f.ID)
	}
	return elin, endo, fs
}

// TestFlightsExactValues checks the paper's Example 2.1 values through the
// full pipeline: engine lineage → Tseytin → compile → Lemma 4.6 →
// Algorithm 1.
func TestFlightsExactValues(t *testing.T) {
	elin, endo, fs := flightsELin(t)
	res, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values
	ratEq(t, v[fs.A[1].ID], 43, 105, "Shapley(a1)")
	for i := 2; i <= 5; i++ {
		ratEq(t, v[fs.A[i].ID], 23, 210, "Shapley(a2..a5)")
	}
	ratEq(t, v[fs.A[6].ID], 8, 105, "Shapley(a6)")
	ratEq(t, v[fs.A[7].ID], 8, 105, "Shapley(a7)")
	ratEq(t, v[fs.A[8].ID], 0, 1, "Shapley(a8)")

	// Efficiency: q(Dx ∪ Dn) − q(Dx) = 1 − 0 = 1.
	ratEq(t, v.Sum(), 1, 1, "Σ Shapley")

	if res.NumFacts != 7 {
		t.Errorf("NumFacts = %d, want 7 (a8 does not appear in the lineage)", res.NumFacts)
	}
}

// TestFlightsSubqueries checks Example 5.3's exact values for q2 alone:
// 11/60 for a2..a5 and 2/15 for a6, a7.
func TestFlightsSubqueries(t *testing.T) {
	d, fs := flights.Build()
	cb := circuit.NewBuilder()
	elin, err := engine.EvalBoolean(d, flights.OneStopQuery(), cb, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	endo := make([]db.FactID, 0, 8)
	for _, f := range d.EndogenousFacts() {
		endo = append(endo, f.ID)
	}
	res, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 5; i++ {
		ratEq(t, res.Values[fs.A[i].ID], 11, 60, "Shapley(q2, a2..a5)")
	}
	ratEq(t, res.Values[fs.A[6].ID], 2, 15, "Shapley(q2, a6)")
	ratEq(t, res.Values[fs.A[7].ID], 2, 15, "Shapley(q2, a7)")
	ratEq(t, res.Values[fs.A[1].ID], 0, 1, "Shapley(q2, a1)")

	// q1 alone: a1 is a dictator, Shapley 1; everything else 0.
	cb2 := circuit.NewBuilder()
	elin1, err := engine.EvalBoolean(d, flights.DirectQuery(), cb2, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := ExplainCircuit(context.Background(), elin1, endo, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, res1.Values[fs.A[1].ID], 1, 1, "Shapley(q1, a1)")
	for i := 2; i <= 8; i++ {
		ratEq(t, res1.Values[fs.A[i].ID], 0, 1, "Shapley(q1, others)")
	}
}

// TestFigure2HandBuiltCircuit runs Algorithm 1 directly on a hand-built
// deterministic decomposable circuit for the example's endogenous lineage,
// mirroring Figure 2, without going through the compiler.
func TestFigure2HandBuiltCircuit(t *testing.T) {
	// Variables 1..8 stand for a1..a8.
	b := dnnf.NewBuilder()
	// (a2∨a3)∧(a4∨a5) as decision diagrams:
	a23 := b.Decision(2, b.True(), b.Lit(3))
	a45 := b.Decision(4, b.True(), b.Lit(5))
	pairs := b.And(a23, a45)
	// q2 = pairs ∨ (a6∧a7), made deterministic via Shannon expansion on a6
	// and a7: a6=1 → (a7 ∨ (¬a7 ∧ pairs)); a6=0 → pairs.
	q2hi := b.Decision(7, b.True(), pairs)
	q2 := b.Decision(6, q2hi, pairs)
	// q = a1 ∨ q2, deterministic via Shannon on a1.
	q := b.Decision(1, b.True(), q2)

	if err := dnnf.Validate(q, 10); err != nil {
		t.Fatal(err)
	}
	endo := []db.FactID{1, 2, 3, 4, 5, 6, 7, 8}
	v, err := ShapleyAll(context.Background(), q, endo, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, v[1], 43, 105, "hand-built Shapley(a1)")
	for i := db.FactID(2); i <= 5; i++ {
		ratEq(t, v[i], 23, 210, "hand-built Shapley(a2..a5)")
	}
	ratEq(t, v[6], 8, 105, "hand-built Shapley(a6)")
	ratEq(t, v[7], 8, 105, "hand-built Shapley(a7)")
	ratEq(t, v[8], 0, 1, "hand-built Shapley(a8)")
}

// TestAlgorithm1AgainstNaive cross-checks Algorithm 1 against the 2^n
// enumeration ground truth on random lineage circuits.
func TestAlgorithm1AgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 60; trial++ {
		cb := circuit.NewBuilder()
		nVars := 2 + rng.Intn(5)
		elin := randomMonotoneCircuit(rng, cb, nVars, 3)
		// Universe may be larger than the circuit support: extra null
		// players must get value zero.
		universe := nVars + rng.Intn(3)
		endo := make([]db.FactID, universe)
		for i := range endo {
			endo[i] = db.FactID(i + 1)
		}
		res, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		game := func(subset map[db.FactID]bool) bool {
			assign := make(map[circuit.Var]bool, len(subset))
			for id, in := range subset {
				assign[circuit.Var(id)] = in
			}
			return circuit.Eval(elin, assign)
		}
		want, err := NaiveShapley(game, endo)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range endo {
			if res.Values[f].Cmp(want[f]) != 0 {
				t.Fatalf("trial %d: fact %d: Algorithm 1 = %v, naive = %v\ncircuit: %s",
					trial, f, res.Values[f], want[f], circuit.String(elin))
			}
		}
	}
}

// TestEfficiencyAxiom checks Σ_f Shapley(f) = q(Dn∪Dx) − q(Dx) on random
// monotone lineages (for which q(Dx) corresponds to the empty endogenous
// set).
func TestEfficiencyAxiom(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 40; trial++ {
		cb := circuit.NewBuilder()
		nVars := 2 + rng.Intn(6)
		elin := randomMonotoneCircuit(rng, cb, nVars, 3)
		endo := make([]db.FactID, nVars)
		for i := range endo {
			endo[i] = db.FactID(i + 1)
		}
		res, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		all := make(map[circuit.Var]bool)
		for _, f := range endo {
			all[circuit.Var(f)] = true
		}
		want := big.NewRat(0, 1)
		if circuit.Eval(elin, all) {
			want = big.NewRat(1, 1)
		}
		if circuit.Eval(elin, map[circuit.Var]bool{}) {
			want.Sub(want, big.NewRat(1, 1))
		}
		if res.Values.Sum().Cmp(want) != 0 {
			t.Fatalf("trial %d: Σ Shapley = %v, want %v", trial, res.Values.Sum(), want)
		}
	}
}

func TestComputeAllSATkAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		f := randomTestCNF(rng, 1+rng.Intn(5), 1+rng.Intn(6))
		n, _, err := dnnf.Compile(context.Background(), f, dnnf.Options{})
		if err != nil {
			t.Fatal(err)
		}
		counts := ComputeAllSATk(n)
		vars := n.Vars()
		// Brute-force #SAT_k over the support.
		want := make([]int64, len(vars)+1)
		assign := make(map[int]bool)
		for mask := 0; mask < 1<<len(vars); mask++ {
			k := 0
			for i, v := range vars {
				val := mask&(1<<i) != 0
				assign[v] = val
				if val {
					k++
				}
			}
			if dnnf.Eval(n, assign) {
				want[k]++
			}
		}
		for k := range want {
			if counts[k].Cmp(big.NewInt(want[k])) != 0 {
				t.Fatalf("trial %d: #SAT_%d = %v, want %d", trial, k, counts[k], want[k])
			}
		}
	}
}

func TestPadToUniverse(t *testing.T) {
	// A single positive literal over a universe of 3: #SAT_k = C(2, k-1).
	b := dnnf.NewBuilder()
	counts := PadToUniverse(ComputeAllSATk(b.Lit(1)), 2)
	want := []int64{0, 1, 2, 1}
	for k, w := range want {
		if counts[k].Cmp(big.NewInt(w)) != 0 {
			t.Errorf("#SAT_%d = %v, want %d", k, counts[k], w)
		}
	}
}

func TestShapleyOfFactMatchesShapleyAll(t *testing.T) {
	elin, endo, _ := flightsELin(t)
	res, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range endo {
		got := ShapleyOfFact(res.DNNF, endo, f)
		if got.Cmp(res.Values[f]) != 0 {
			t.Errorf("fact %d: ShapleyOfFact = %v, ShapleyAll = %v", f, got, res.Values[f])
		}
	}
}

func TestValuesRankingDeterministic(t *testing.T) {
	v := Values{
		1: big.NewRat(1, 2),
		2: big.NewRat(1, 2),
		3: big.NewRat(3, 4),
		4: big.NewRat(0, 1),
	}
	r := v.Ranking()
	want := []db.FactID{3, 1, 2, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranking = %v, want %v", r, want)
		}
	}
}

func TestFloatSATkMatchesExactOnSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 30; trial++ {
		f := randomTestCNF(rng, 1+rng.Intn(5), 1+rng.Intn(5))
		n, _, err := dnnf.Compile(context.Background(), f, dnnf.Options{})
		if err != nil {
			t.Fatal(err)
		}
		exact := ComputeAllSATk(n)
		approx := FloatSATk(n)
		for k := range exact {
			e, _ := new(big.Rat).SetInt(exact[k]).Float64()
			if approx[k] != e {
				t.Fatalf("trial %d: FloatSATk[%d] = %v, want %v", trial, k, approx[k], e)
			}
		}
	}
}

// --- helpers ---

// randomMonotoneCircuit builds a random negation-free circuit, the shape of
// real SPJU lineage.
func randomMonotoneCircuit(rng *rand.Rand, b *circuit.Builder, nVars, depth int) *circuit.Node {
	if depth == 0 || rng.Intn(4) == 0 {
		return b.Variable(circuit.Var(1 + rng.Intn(nVars)))
	}
	n := 2 + rng.Intn(2)
	cs := make([]*circuit.Node, n)
	for i := range cs {
		cs[i] = randomMonotoneCircuit(rng, b, nVars, depth-1)
	}
	if rng.Intn(2) == 0 {
		return b.And(cs...)
	}
	return b.Or(cs...)
}

func randomTestCNF(rng *rand.Rand, nVars, nClauses int) *cnf.Formula {
	f := &cnf.Formula{Aux: map[int]bool{}, MaxVar: nVars}
	for i := 0; i < nClauses; i++ {
		width := 1 + rng.Intn(3)
		clause := make(cnf.Clause, 0, width)
		for j := 0; j < width; j++ {
			v := 1 + rng.Intn(nVars)
			l := cnf.Lit(v)
			if rng.Intn(2) == 0 {
				l = -l
			}
			clause = append(clause, l)
		}
		f.Clauses = append(f.Clauses, clause)
	}
	return f
}
