// Package core implements the paper's primary contribution: exact Shapley
// value computation for database facts from deterministic and decomposable
// circuits (Algorithm 1, via the #SAT_k dynamic program of Lemma 4.5), the
// CNF Proxy heuristic (Algorithm 2 / Lemma 5.2), naive ground-truth
// computation for testing, the end-to-end pipeline of Figure 3, and the
// hybrid exact-with-timeout strategy of Section 6.3.
package core

import (
	"math/big"

	"repro/internal/dnnf"
)

// ComputeAllSATk computes #SAT_0(C), ..., #SAT_n(C) for the d-DNNF rooted at
// n, counted over the node's own variable support (Lemma 4.5). The returned
// slice has length len(n.Vars())+1; entry ℓ is the number of satisfying
// assignments of Hamming weight ℓ. The computation is a bottom-up dynamic
// program, linear in the circuit size times the support size squared:
//
//   - literal v: [0, 1]; literal ¬v: [1, 0]
//   - ∧ (decomposable): convolution of the children's count vectors
//   - ∨ (deterministic): sum of children vectors, each first convolved with
//     the binomial row of its gap variables (Vars(g) \ Vars(child))
//
// Constants have empty support: true ↦ [1], false ↦ [0].
func ComputeAllSATk(n *dnnf.Node) []*big.Int {
	memo := make(map[int][]*big.Int)
	var rec func(*dnnf.Node) []*big.Int
	rec = func(m *dnnf.Node) []*big.Int {
		if v, ok := memo[m.ID()]; ok {
			return v
		}
		var v []*big.Int
		switch m.Kind {
		case dnnf.KindTrue:
			v = []*big.Int{big.NewInt(1)}
		case dnnf.KindFalse:
			v = []*big.Int{big.NewInt(0)}
		case dnnf.KindLit:
			if m.Lit > 0 {
				v = []*big.Int{big.NewInt(0), big.NewInt(1)}
			} else {
				v = []*big.Int{big.NewInt(1), big.NewInt(0)}
			}
		case dnnf.KindAnd:
			v = []*big.Int{big.NewInt(1)}
			for _, c := range m.Children {
				v = convolve(v, rec(c))
			}
		case dnnf.KindOr:
			size := len(m.Vars()) + 1
			v = zeros(size)
			for _, c := range m.Children {
				gap := len(m.Vars()) - len(c.Vars())
				padded := PadToUniverse(rec(c), gap)
				for i := range padded {
					v[i].Add(v[i], padded[i])
				}
			}
		}
		memo[m.ID()] = v
		return v
	}
	return rec(n)
}

// PadToUniverse extends a #SAT_k vector counted over some support to a
// universe with `extra` additional unconstrained variables: each additional
// variable may be freely present or absent, so the vector is convolved with
// the binomial row C(extra, ·). This implements the circuit-completion step
// of Algorithm 1 (conjoining with (f' ∨ ¬f') for missing facts f') without
// materializing the completed circuit.
func PadToUniverse(counts []*big.Int, extra int) []*big.Int {
	if extra == 0 {
		return counts
	}
	if extra < 0 {
		panic("core: negative universe gap")
	}
	row := binomialRow(extra)
	return convolve(counts, row)
}

// convolve returns the coefficient-wise product of two count vectors:
// out[ℓ] = Σ_i a[i]·b[ℓ-i]. It corresponds to counting joint assignments of
// two variable-disjoint parts by total Hamming weight.
func convolve(a, b []*big.Int) []*big.Int {
	out := zeros(len(a) + len(b) - 1)
	var t big.Int
	for i, ai := range a {
		if ai.Sign() == 0 {
			continue
		}
		for j, bj := range b {
			if bj.Sign() == 0 {
				continue
			}
			t.Mul(ai, bj)
			out[i+j].Add(out[i+j], &t)
		}
	}
	return out
}

// binomialRow returns [C(n,0), C(n,1), ..., C(n,n)].
func binomialRow(n int) []*big.Int {
	row := make([]*big.Int, n+1)
	row[0] = big.NewInt(1)
	for k := 1; k <= n; k++ {
		// C(n,k) = C(n,k-1) · (n-k+1) / k
		row[k] = new(big.Int).Mul(row[k-1], big.NewInt(int64(n-k+1)))
		row[k].Quo(row[k], big.NewInt(int64(k)))
	}
	return row
}

func zeros(n int) []*big.Int {
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = new(big.Int)
	}
	return out
}

// FloatSATk is the float64 variant of ComputeAllSATk, used by the ablation
// benchmark that quantifies the cost of exact big-integer arithmetic. It
// overflows to +Inf for large circuits and is not used by the exact
// algorithm.
func FloatSATk(n *dnnf.Node) []float64 {
	memo := make(map[int][]float64)
	var rec func(*dnnf.Node) []float64
	rec = func(m *dnnf.Node) []float64 {
		if v, ok := memo[m.ID()]; ok {
			return v
		}
		var v []float64
		switch m.Kind {
		case dnnf.KindTrue:
			v = []float64{1}
		case dnnf.KindFalse:
			v = []float64{0}
		case dnnf.KindLit:
			if m.Lit > 0 {
				v = []float64{0, 1}
			} else {
				v = []float64{1, 0}
			}
		case dnnf.KindAnd:
			v = []float64{1}
			for _, c := range m.Children {
				v = convolveFloat(v, rec(c))
			}
		case dnnf.KindOr:
			v = make([]float64, len(m.Vars())+1)
			for _, c := range m.Children {
				gap := len(m.Vars()) - len(c.Vars())
				padded := rec(c)
				if gap > 0 {
					padded = convolveFloat(padded, binomialRowFloat(gap))
				}
				for i := range padded {
					v[i] += padded[i]
				}
			}
		}
		memo[m.ID()] = v
		return v
	}
	return rec(n)
}

func convolveFloat(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] += ai * bj
		}
	}
	return out
}

func binomialRowFloat(n int) []float64 {
	row := make([]float64, n+1)
	row[0] = 1
	for k := 1; k <= n; k++ {
		row[k] = row[k-1] * float64(n-k+1) / float64(k)
	}
	return row
}
