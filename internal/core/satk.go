// Package core implements the paper's primary contribution: exact Shapley
// value computation for database facts from deterministic and decomposable
// circuits (Algorithm 1, via the #SAT_k dynamic program of Lemma 4.5), the
// CNF Proxy heuristic (Algorithm 2 / Lemma 5.2), naive ground-truth
// computation for testing, the end-to-end pipeline of Figure 3, and the
// hybrid exact-with-timeout strategy of Section 6.3.
package core

import (
	"math/big"
	"sync"

	"repro/internal/dnnf"
)

// flattenDNNF returns the nodes reachable from n in topological order
// (children before parents) together with the largest node ID, so dynamic
// programs over the DAG can use dense slices instead of maps and plain loops
// instead of recursion.
func flattenDNNF(n *dnnf.Node) (order []*dnnf.Node, maxID int) {
	dnnf.Visit(n, func(m *dnnf.Node) {
		order = append(order, m)
		if m.ID() > maxID {
			maxID = m.ID()
		}
	})
	return order, maxID
}

// ComputeAllSATk computes #SAT_0(C), ..., #SAT_n(C) for the d-DNNF rooted at
// n, counted over the node's own variable support (Lemma 4.5). The returned
// slice has length len(n.Vars())+1; entry ℓ is the number of satisfying
// assignments of Hamming weight ℓ. The computation is a bottom-up dynamic
// program, linear in the circuit size times the support size squared:
//
//   - literal v: [0, 1]; literal ¬v: [1, 0]
//   - ∧ (decomposable): convolution of the children's count vectors
//   - ∨ (deterministic): sum of children vectors, each first convolved with
//     the binomial row of its gap variables (Vars(g) \ Vars(child))
//
// Constants have empty support: true ↦ [1], false ↦ [0]. Memos are kept in a
// dense slice indexed by node ID (builder IDs are contiguous), avoiding the
// map overhead that used to dominate small-vector nodes.
func ComputeAllSATk(n *dnnf.Node) []*big.Int {
	order, maxID := flattenDNNF(n)
	memo := make([][]*big.Int, maxID+1)
	for _, m := range order {
		memo[m.ID()] = satkNode(m, memo)
	}
	return memo[n.ID()]
}

// satkNode computes one node's #SAT_k vector from its children's memoized
// vectors. The returned slice is freshly owned by the caller except that it
// never aliases a child's memo entry.
func satkNode(m *dnnf.Node, memo [][]*big.Int) []*big.Int {
	switch m.Kind {
	case dnnf.KindTrue:
		return []*big.Int{big.NewInt(1)}
	case dnnf.KindFalse:
		return []*big.Int{big.NewInt(0)}
	case dnnf.KindLit:
		if m.Lit > 0 {
			return []*big.Int{big.NewInt(0), big.NewInt(1)}
		}
		return []*big.Int{big.NewInt(1), big.NewInt(0)}
	case dnnf.KindAnd:
		switch len(m.Children) {
		case 0:
			return []*big.Int{big.NewInt(1)}
		case 1:
			return copyCounts(memo[m.Children[0].ID()])
		}
		v := convolve(memo[m.Children[0].ID()], memo[m.Children[1].ID()])
		for _, c := range m.Children[2:] {
			v = convolve(v, memo[c.ID()])
		}
		return v
	default: // dnnf.KindOr
		var v []*big.Int
		for _, c := range m.Children {
			child := memo[c.ID()]
			gap := len(m.Vars()) - len(c.Vars())
			switch {
			case v == nil && gap == 0:
				// The first child's vector seeds the accumulator; copy so
				// the memo entry is never mutated.
				v = copyCounts(child)
			case v == nil:
				v = convolve(child, binomialRow(gap))
			case gap == 0:
				for i, ci := range child {
					if ci.Sign() != 0 {
						v[i].Add(v[i], ci)
					}
				}
			default:
				// Accumulate the gap-padded child directly into v instead of
				// materializing a padded temporary.
				addConvolve(v, child, binomialRow(gap))
			}
		}
		if v == nil {
			v = zeros(len(m.Vars()) + 1)
		}
		return v
	}
}

// PadToUniverse extends a #SAT_k vector counted over some support to a
// universe with `extra` additional unconstrained variables: each additional
// variable may be freely present or absent, so the vector is convolved with
// the binomial row C(extra, ·). This implements the circuit-completion step
// of Algorithm 1 (conjoining with (f' ∨ ¬f') for missing facts f') without
// materializing the completed circuit.
func PadToUniverse(counts []*big.Int, extra int) []*big.Int {
	if extra == 0 {
		return counts
	}
	if extra < 0 {
		panic("core: negative universe gap")
	}
	return convolve(counts, binomialRow(extra))
}

// convolve returns the coefficient-wise product of two count vectors:
// out[ℓ] = Σ_i a[i]·b[ℓ-i]. It corresponds to counting joint assignments of
// two variable-disjoint parts by total Hamming weight.
func convolve(a, b []*big.Int) []*big.Int {
	out := zeros(len(a) + len(b) - 1)
	addConvolve(out, a, b)
	return out
}

// addConvolve accumulates the convolution of a and b into dst in place:
// dst[i+j] += a[i]·b[j]. dst must have length ≥ len(a)+len(b)-1.
func addConvolve(dst, a, b []*big.Int) {
	var t big.Int
	for i, ai := range a {
		if ai.Sign() == 0 {
			continue
		}
		for j, bj := range b {
			if bj.Sign() == 0 {
				continue
			}
			t.Mul(ai, bj)
			dst[i+j].Add(dst[i+j], &t)
		}
	}
}

// binomialCache memoizes binomial rows across calls: every ∨-gate with gap
// variables and every universe padding used to recompute its row from
// scratch. Rows are shared and must be treated as read-only by callers.
var binomialCache struct {
	sync.Mutex
	rows  map[int][]*big.Int
	frows map[int][]float64
}

// binomialRow returns [C(n,0), C(n,1), ..., C(n,n)]. The returned slice is
// shared across calls; callers must not modify it or its entries.
func binomialRow(n int) []*big.Int {
	binomialCache.Lock()
	defer binomialCache.Unlock()
	if row, ok := binomialCache.rows[n]; ok {
		return row
	}
	row := make([]*big.Int, n+1)
	row[0] = big.NewInt(1)
	for k := 1; k <= n; k++ {
		// C(n,k) = C(n,k-1) · (n-k+1) / k
		row[k] = new(big.Int).Mul(row[k-1], big.NewInt(int64(n-k+1)))
		row[k].Quo(row[k], big.NewInt(int64(k)))
	}
	if binomialCache.rows == nil {
		binomialCache.rows = make(map[int][]*big.Int)
	}
	binomialCache.rows[n] = row
	return row
}

// zeros returns a vector of n zero big.Ints backed by a single allocation.
func zeros(n int) []*big.Int {
	vals := make([]big.Int, n)
	out := make([]*big.Int, n)
	for i := range vals {
		out[i] = &vals[i]
	}
	return out
}

// copyCounts returns a freshly owned deep copy of a count vector.
func copyCounts(src []*big.Int) []*big.Int {
	vals := make([]big.Int, len(src))
	out := make([]*big.Int, len(src))
	for i, s := range src {
		vals[i].Set(s)
		out[i] = &vals[i]
	}
	return out
}

// FloatSATk is the float64 variant of ComputeAllSATk, used by the ablation
// benchmark that quantifies the cost of exact big-integer arithmetic. It
// overflows to +Inf for large circuits and is not used by the exact
// algorithm. Like ComputeAllSATk it memoizes in a dense slice indexed by
// node ID.
func FloatSATk(n *dnnf.Node) []float64 {
	order, maxID := flattenDNNF(n)
	memo := make([][]float64, maxID+1)
	for _, m := range order {
		memo[m.ID()] = floatSATkNode(m, memo)
	}
	return memo[n.ID()]
}

func floatSATkNode(m *dnnf.Node, memo [][]float64) []float64 {
	switch m.Kind {
	case dnnf.KindTrue:
		return []float64{1}
	case dnnf.KindFalse:
		return []float64{0}
	case dnnf.KindLit:
		if m.Lit > 0 {
			return []float64{0, 1}
		}
		return []float64{1, 0}
	case dnnf.KindAnd:
		v := []float64{1}
		for _, c := range m.Children {
			v = convolveFloat(v, memo[c.ID()])
		}
		return v
	default: // dnnf.KindOr
		v := make([]float64, len(m.Vars())+1)
		for _, c := range m.Children {
			gap := len(m.Vars()) - len(c.Vars())
			padded := memo[c.ID()]
			if gap > 0 {
				padded = convolveFloat(padded, binomialRowFloat(gap))
			}
			for i := range padded {
				v[i] += padded[i]
			}
		}
		return v
	}
}

func convolveFloat(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] += ai * bj
		}
	}
	return out
}

// binomialRowFloat is the float64 sibling of binomialRow, memoized in the
// same mutex-guarded table. The returned slice is shared; treat as
// read-only.
func binomialRowFloat(n int) []float64 {
	binomialCache.Lock()
	defer binomialCache.Unlock()
	if row, ok := binomialCache.frows[n]; ok {
		return row
	}
	row := make([]float64, n+1)
	row[0] = 1
	for k := 1; k <= n; k++ {
		row[k] = row[k-1] * float64(n-k+1) / float64(k)
	}
	if binomialCache.frows == nil {
		binomialCache.frows = make(map[int][]float64)
	}
	binomialCache.frows[n] = row
	return row
}
