package core

import (
	"context"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/db"
	"repro/internal/dnnf"
	"repro/internal/trace"
)

// Method identifies which algorithm produced a hybrid result.
type Method uint8

// Hybrid outcome methods.
const (
	// MethodExact means the exact pipeline finished within its budget and
	// the result carries exact Shapley values.
	MethodExact Method = iota
	// MethodProxy means the exact pipeline timed out and the ranking was
	// produced by CNF Proxy.
	MethodProxy
	// MethodApprox means a request budget was exhausted (or approximation
	// was requested outright) and the values are Monte Carlo estimates with
	// 95% confidence intervals (see ApproxResult).
	MethodApprox
)

func (m Method) String() string {
	switch m {
	case MethodExact:
		return "exact"
	case MethodApprox:
		return "approximate"
	default:
		return "cnf-proxy"
	}
}

// HybridResult is the outcome of the hybrid strategy: exact values when the
// exact pipeline succeeded, otherwise a CNF Proxy ranking — or, under an
// enabled ExplainBudget, sampled estimates with confidence intervals.
type HybridResult struct {
	Method  Method
	Values  Values        // exact Shapley values; nil unless Method == MethodExact
	Proxy   ProxyValues   // proxy scores; nil unless Method == MethodProxy
	Approx  *ApproxResult // sampled estimates; nil unless Method == MethodApprox
	Ranking []db.FactID   // facts by decreasing contribution
	Exact   *PipelineResult
	Elapsed time.Duration
	// DegradedCause says why a budgeted request degraded to MethodApprox
	// ("mode", "node_budget", "deadline", or "error"; see the Cause*
	// constants). Empty for exact and proxy results.
	DegradedCause string
}

// HybridOptions configures the hybrid strategy of Section 6.3.
type HybridOptions struct {
	// Timeout is the budget t for the exact computation (compilation plus
	// Algorithm 1); the paper recommends 2.5 s. Zero disables the fallback
	// and runs exact unconditionally.
	Timeout time.Duration
	// MaxNodes bounds the compiled d-DNNF size (the out-of-memory analogue).
	MaxNodes int
	// Workers fans Algorithm 1 out across goroutines (≤ 0 = GOMAXPROCS).
	Workers int
	// CompileWorkers fans the knowledge compiler's component decomposition
	// out across goroutines (≤ 0 = GOMAXPROCS, 1 = sequential).
	CompileWorkers int
	// Speculate compiles shallow Shannon cofactors concurrently inside the
	// knowledge compiler (the single-component parallelism source).
	Speculate bool
	// Portfolio races variable-ordering heuristics per CNF, first finisher
	// wins and feeds the canonical cache.
	Portfolio bool
	// NoCanonicalCache keys Cache byte-identically instead of canonically.
	NoCanonicalCache bool
	// Strategy selects the Algorithm 1 evaluation mode (auto, per-fact, or
	// gradient).
	Strategy ShapleyStrategy
	// Cache is an optional cross-call d-DNNF compilation cache.
	Cache *dnnf.CompileCache
	// CacheOwner tags Cache entries with the fact-ID universe's identity
	// (the database ID), scoping fact-set invalidation; 0 = untagged.
	CacheOwner uint64
	// Budget, when Enabled, swaps the degradation target: exceeding it falls
	// back to StageApprox (sampled estimates with confidence intervals)
	// instead of the CNF Proxy, and ModeApproximate skips the exact attempt
	// entirely. The zero budget leaves the classic exact→proxy hybrid
	// untouched.
	Budget ExplainBudget
}

// Hybrid runs the exact computation under a time budget and falls back to
// CNF Proxy on timeout or memory exhaustion: first run the exact pipeline
// with timeout t; if it fails, transform the provenance to CNF and rank the
// facts by their proxy values. A non-nil error is returned only when ctx
// itself is cancelled — budget exhaustion is what the proxy fallback is for,
// but a caller that gave up wants neither answer.
func Hybrid(ctx context.Context, elin *circuit.Node, endo []db.FactID, opts HybridOptions) (*HybridResult, error) {
	return HybridAt(ctx, elin, endo, 0, nil, opts)
}

// HybridAt is Hybrid for a lineage at a given epoch, reusing per-stage
// outputs cached in art from a previous call at the same epoch (nil art
// disables reuse). It is the session-facing entry point: a long-lived
// session passes each tuple's Artifacts across Explain calls so that only
// the stages invalidated by updates are recomputed.
func HybridAt(ctx context.Context, elin *circuit.Node, endo []db.FactID, epoch uint64, art *Artifacts, opts HybridOptions) (*HybridResult, error) {
	if opts.Budget.Enabled() {
		return hybridBudgetedAt(ctx, elin, endo, epoch, art, opts)
	}
	start := time.Now()
	popts := PipelineOptions{
		CompileTimeout:   opts.Timeout,
		ShapleyTimeout:   opts.Timeout,
		CompileMaxNodes:  opts.MaxNodes,
		Workers:          opts.Workers,
		CompileWorkers:   opts.CompileWorkers,
		Speculate:        opts.Speculate,
		Portfolio:        opts.Portfolio,
		NoCanonicalCache: opts.NoCanonicalCache,
		Strategy:         opts.Strategy,
		Cache:            opts.Cache,
		CacheOwner:       opts.CacheOwner,
	}
	res, err := ExplainCircuitAt(ctx, elin, endo, epoch, art, popts)
	if err == nil {
		return &HybridResult{
			Method:  MethodExact,
			Values:  res.Values,
			Ranking: res.Values.Ranking(),
			Exact:   res,
			Elapsed: time.Since(start),
		}, nil
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		return nil, ctxErr
	}
	// Exact failed within budget: fall back to CNF Proxy. The Tseytin CNF
	// was already produced by the pipeline (it never times out: it is linear
	// in the circuit).
	_, psp := trace.Start(ctx, "proxy")
	psp.Set("cause", degradeCause(opts.Budget, err))
	formula := res.CNF
	if formula == nil {
		formula = cnf.TseytinReserving(elin, maxFactID(endo))
	}
	proxy := CNFProxy(formula, endo)
	psp.End()
	return &HybridResult{
		Method:  MethodProxy,
		Proxy:   proxy,
		Ranking: proxy.Ranking(),
		Exact:   res,
		Elapsed: time.Since(start),
	}, nil
}
