package core

import (
	"math/big"
	"sort"

	"repro/internal/cnf"
	"repro/internal/db"
)

// ProxyValues maps endogenous fact IDs to their CNF Proxy scores. Proxy
// scores are not Shapley values — they are the Shapley values of the proxy
// game φ̃ = Σ_i ψ_i/n — but ranking facts by proxy score tends to agree with
// ranking by true Shapley value (Section 5).
type ProxyValues map[db.FactID]*big.Rat

// Float returns the scores as float64s.
func (p ProxyValues) Float() map[db.FactID]float64 {
	out := make(map[db.FactID]float64, len(p))
	for id, r := range p {
		f, _ := r.Float64()
		out[id] = f
	}
	return out
}

// Ranking returns the fact IDs sorted by decreasing proxy score, ties broken
// by increasing fact ID.
func (p ProxyValues) Ranking() []db.FactID {
	ids := make([]db.FactID, 0, len(p))
	for id := range p {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		c := p[ids[i]].Cmp(p[ids[j]])
		if c != 0 {
			return c > 0
		}
		return ids[i] < ids[j]
	})
	return ids
}

// CNFProxy implements Algorithm 2: given a CNF φ (typically the Tseytin
// transformation of the endogenous lineage circuit) and the set of
// endogenous facts, it computes for each fact x the value Shapley(φ̃, x) of
// the proxy function φ̃(ν) = Σ_i ψ_i(ν)/n, using the closed form of
// Lemma 5.2:
//
//	Φ(ψ_i, x) = +1 / (m·C(m−1, bᵢ))  if x occurs positively in ψ_i
//	            −1 / (m·C(m−1, aᵢ))  if x occurs negatively in ψ_i
//
// where m = aᵢ+bᵢ is the number of literals and aᵢ (bᵢ) the number of
// positive (negative) literals of clause ψ_i; the clause contributions are
// averaged over the n clauses. The computation is linear in |φ|.
func CNFProxy(f *cnf.Formula, endo []db.FactID) ProxyValues {
	isEndo := make(map[int]bool, len(endo))
	out := make(ProxyValues, len(endo))
	for _, id := range endo {
		isEndo[int(id)] = true
		out[id] = new(big.Rat)
	}
	n := int64(len(f.Clauses))
	if n == 0 {
		return out
	}
	var term big.Rat
	for _, clause := range f.Clauses {
		m := int64(len(clause))
		pos, neg := int64(0), int64(0)
		for _, l := range clause {
			if l.Positive() {
				pos++
			} else {
				neg++
			}
		}
		for _, l := range clause {
			v := l.Var()
			if !isEndo[v] {
				continue
			}
			if l.Positive() {
				// +1 / (n · m · C(m−1, neg))
				term.SetFrac(big.NewInt(1),
					new(big.Int).Mul(big.NewInt(n*m), binom(m-1, neg)))
				out[db.FactID(v)].Add(out[db.FactID(v)], &term)
			} else {
				// −1 / (n · m · C(m−1, pos))
				term.SetFrac(big.NewInt(-1),
					new(big.Int).Mul(big.NewInt(n*m), binom(m-1, pos)))
				out[db.FactID(v)].Add(out[db.FactID(v)], &term)
			}
		}
	}
	return out
}

// ProxyGame returns the real-valued proxy game φ̃ of the formula: the
// fraction of clauses satisfied by an assignment. It is used by tests to
// check the Lemma 5.2 closed form against naive enumeration.
func ProxyGame(f *cnf.Formula) RealGame {
	n := int64(len(f.Clauses))
	return func(subset map[int]bool) *big.Rat {
		if n == 0 {
			return new(big.Rat)
		}
		sat := int64(0)
		for _, clause := range f.Clauses {
			for _, l := range clause {
				if subset[l.Var()] == l.Positive() {
					sat++
					break
				}
			}
		}
		return big.NewRat(sat, n)
	}
}

func binom(n, k int64) *big.Int {
	return new(big.Int).Binomial(n, k)
}
