package core

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/dnnf"
)

// thresholdTestDNNF builds the "at least t of the n variables are true"
// voting function as a d-DNNF decision DAG (an OBDD in the variable order
// 1..n). Every variable is in the support for 1 ≤ t ≤ n, and the circuit
// grows as O(n·t) nodes — a convenient family for exercising the gradient
// passes at sizes where every code path (gaps, shared nodes, deep levels)
// appears.
func thresholdTestDNNF(b *dnnf.Builder, n, t int) *dnnf.Node {
	type key struct{ i, need int }
	memo := map[key]*dnnf.Node{}
	var rec func(i, need int) *dnnf.Node
	rec = func(i, need int) *dnnf.Node {
		if need <= 0 {
			return b.True()
		}
		if need > n-i+1 {
			return b.False()
		}
		k := key{i, need}
		if v, ok := memo[k]; ok {
			return v
		}
		v := b.Decision(i, rec(i+1, need-1), rec(i+1, need))
		memo[k] = v
		return v
	}
	return rec(1, t)
}

func factRange(n int) []db.FactID {
	endo := make([]db.FactID, n)
	for i := range endo {
		endo[i] = db.FactID(i + 1)
	}
	return endo
}

// TestGradientMatchesPerFactOnFlights checks the gradient strategy against
// the per-fact strategy and the paper's Example 2.1 values on the flights
// pipeline output.
func TestGradientMatchesPerFactOnFlights(t *testing.T) {
	elin, endo, fs := flightsELin(t)
	res, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{Strategy: StrategyPerFact})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		grad, err := ShapleyAllStrategy(context.Background(), res.DNNF, endo, workers, StrategyGradient)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		valuesIdentical(t, grad, res.Values, "gradient vs per-fact (flights)")
		ratEq(t, grad[fs.A[1].ID], 43, 105, "gradient Shapley(a1)")
		ratEq(t, grad[fs.A[8].ID], 0, 1, "gradient Shapley(a8)")
	}
}

// TestGradientMatchesPerFactAndNaiveRandom is the property test of the
// gradient rewrite: on random monotone lineages (with extra null players
// beyond the circuit support), gradient-mode ShapleyAll must be
// big.Rat-identical to the per-fact path and to the 2^n enumeration ground
// truth.
func TestGradientMatchesPerFactAndNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		cb := circuit.NewBuilder()
		nVars := 2 + rng.Intn(5)
		elin := randomMonotoneCircuit(rng, cb, nVars, 3)
		universe := nVars + rng.Intn(3)
		endo := factRange(universe)
		res, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{Strategy: StrategyPerFact})
		if err != nil {
			t.Fatal(err)
		}
		grad, err := ShapleyAllStrategy(context.Background(), res.DNNF, endo, 1+rng.Intn(4), StrategyGradient)
		if err != nil {
			t.Fatal(err)
		}
		game := func(subset map[db.FactID]bool) bool {
			assign := make(map[circuit.Var]bool, len(subset))
			for id, in := range subset {
				assign[circuit.Var(id)] = in
			}
			return circuit.Eval(elin, assign)
		}
		naive, err := NaiveShapley(game, endo)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range endo {
			if grad[f].Cmp(res.Values[f]) != 0 {
				t.Fatalf("trial %d: fact %d: gradient = %v, per-fact = %v\ncircuit: %s",
					trial, f, grad[f], res.Values[f], circuit.String(elin))
			}
			if grad[f].Cmp(naive[f]) != 0 {
				t.Fatalf("trial %d: fact %d: gradient = %v, naive = %v\ncircuit: %s",
					trial, f, grad[f], naive[f], circuit.String(elin))
			}
		}
	}
}

// TestGradientCompiledCircuitsWithNegativeLiterals exercises the gradient
// path on compiled random CNFs, whose d-DNNFs contain negative literals and
// non-monotone structure (the monotone lineage tests never produce ¬v
// leaves reachable in interesting positions).
func TestGradientCompiledCircuitsWithNegativeLiterals(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 60; trial++ {
		f := randomTestCNF(rng, 2+rng.Intn(4), 1+rng.Intn(6))
		c, _, err := dnnf.Compile(context.Background(), f, dnnf.Options{})
		if err != nil {
			t.Fatal(err)
		}
		endo := factRange(f.MaxVar + rng.Intn(2))
		perFact, err := ShapleyAllStrategy(context.Background(), c, endo, 1, StrategyPerFact)
		if err != nil {
			t.Fatal(err)
		}
		grad, err := ShapleyAllStrategy(context.Background(), c, endo, 1+rng.Intn(4), StrategyGradient)
		if err != nil {
			t.Fatal(err)
		}
		valuesIdentical(t, grad, perFact, "gradient vs per-fact (compiled CNF)")
	}
}

// TestGradientEfficiencyAxiomBothModes: under both strategies the values
// sum to the #SAT difference q(all) − q(∅) of the lineage (the efficiency
// axiom), on random monotone lineages.
func TestGradientEfficiencyAxiomBothModes(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 40; trial++ {
		cb := circuit.NewBuilder()
		nVars := 2 + rng.Intn(6)
		elin := randomMonotoneCircuit(rng, cb, nVars, 3)
		endo := factRange(nVars)
		res, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{Strategy: StrategyPerFact})
		if err != nil {
			t.Fatal(err)
		}
		all := make(map[circuit.Var]bool)
		for _, f := range endo {
			all[circuit.Var(f)] = true
		}
		want := new(big.Rat)
		if circuit.Eval(elin, all) {
			want.SetInt64(1)
		}
		if circuit.Eval(elin, map[circuit.Var]bool{}) {
			want.Sub(want, big.NewRat(1, 1))
		}
		for _, strategy := range []ShapleyStrategy{StrategyPerFact, StrategyGradient} {
			v, err := ShapleyAllStrategy(context.Background(), res.DNNF, endo, 2, strategy)
			if err != nil {
				t.Fatal(err)
			}
			if v.Sum().Cmp(want) != 0 {
				t.Fatalf("trial %d: strategy %v: Σ Shapley = %v, want %v", trial, strategy, v.Sum(), want)
			}
		}
	}
}

// TestGradientParallelMatchesSerial exercises the level-synchronous fan-out
// of both gradient passes under the race detector on a threshold circuit
// large enough to have multi-node levels, and asserts worker-count
// invariance.
func TestGradientParallelMatchesSerial(t *testing.T) {
	b := dnnf.NewBuilder()
	n := 16
	c := thresholdTestDNNF(b, n, n/2)
	endo := factRange(n)
	serial, err := ShapleyAllStrategy(context.Background(), c, endo, 1, StrategyGradient)
	if err != nil {
		t.Fatal(err)
	}
	// All facts are symmetric in a threshold function: equal values, and by
	// efficiency they sum to 1 (the all-true coalition wins, empty loses).
	first := serial[endo[0]]
	for _, f := range endo {
		if serial[f].Cmp(first) != 0 {
			t.Fatalf("threshold symmetry violated: fact %d = %v, fact %d = %v", endo[0], first, f, serial[f])
		}
	}
	if want := big.NewRat(1, int64(n)); first.Cmp(want) != 0 {
		t.Fatalf("threshold Shapley value = %v, want %v", first, want)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := ShapleyAllStrategy(context.Background(), c, endo, workers, StrategyGradient)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		valuesIdentical(t, par, serial, "gradient parallel vs serial")
	}
	perFact, err := ShapleyAllStrategy(context.Background(), c, endo, 4, StrategyPerFact)
	if err != nil {
		t.Fatal(err)
	}
	valuesIdentical(t, perFact, serial, "per-fact vs gradient (threshold)")
}

// TestGradientDegenerateCircuits covers the constant and single-literal
// roots the two-pass algorithm must special-case.
func TestGradientDegenerateCircuits(t *testing.T) {
	b := dnnf.NewBuilder()
	endo := factRange(3)
	for name, c := range map[string]*dnnf.Node{
		"true":  b.True(),
		"false": b.False(),
	} {
		v, err := ShapleyAllStrategy(context.Background(), c, endo, 1, StrategyGradient)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range endo {
			ratEq(t, v[f], 0, 1, "gradient Shapley on constant "+name)
		}
	}
	// Root is a single positive literal: that fact is a dictator.
	v, err := ShapleyAllStrategy(context.Background(), b.Lit(2), endo, 1, StrategyGradient)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, v[2], 1, 1, "gradient Shapley(dictator)")
	ratEq(t, v[1], 0, 1, "gradient Shapley(null)")
	ratEq(t, v[3], 0, 1, "gradient Shapley(null)")
	// Root is a single negative literal: blocking fact, value −1 by the
	// conditioned-count difference (Γ−Δ = −1 at every coalition size).
	v, err = ShapleyAllStrategy(context.Background(), b.Lit(-2), endo, 1, StrategyGradient)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, v[2], -1, 1, "gradient Shapley(blocker)")
	perFact, err := ShapleyAllStrategy(context.Background(), b.Lit(-2), endo, 1, StrategyPerFact)
	if err != nil {
		t.Fatal(err)
	}
	valuesIdentical(t, v, perFact, "gradient vs per-fact (negative literal)")
}

func TestGradientCancelledContext(t *testing.T) {
	b := dnnf.NewBuilder()
	c := thresholdTestDNNF(b, 12, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ShapleyAllStrategy(ctx, c, factRange(12), 4, StrategyGradient); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestResolveStrategyAuto(t *testing.T) {
	b := dnnf.NewBuilder()
	small := b.Lit(1)
	if got := resolveStrategy(StrategyAuto, 3, small); got != StrategyPerFact {
		t.Errorf("auto on tiny circuit = %v, want per-fact", got)
	}
	big := thresholdTestDNNF(b, 20, 10)
	if got := resolveStrategy(StrategyAuto, 20, big); got != StrategyGradient {
		t.Errorf("auto on n=20 threshold circuit = %v, want gradient", got)
	}
	// Explicit choices pass through untouched.
	if got := resolveStrategy(StrategyPerFact, 20, big); got != StrategyPerFact {
		t.Errorf("explicit per-fact = %v", got)
	}
	if got := resolveStrategy(StrategyGradient, 3, small); got != StrategyGradient {
		t.Errorf("explicit gradient = %v", got)
	}
}

func TestParseShapleyStrategy(t *testing.T) {
	cases := map[string]ShapleyStrategy{
		"":         StrategyAuto,
		"auto":     StrategyAuto,
		"per-fact": StrategyPerFact,
		"perfact":  StrategyPerFact,
		"gradient": StrategyGradient,
	}
	for in, want := range cases {
		got, err := ParseShapleyStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseShapleyStrategy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseShapleyStrategy("bogus"); err == nil {
		t.Error("ParseShapleyStrategy(bogus) succeeded, want error")
	}
	for _, s := range []ShapleyStrategy{StrategyAuto, StrategyPerFact, StrategyGradient} {
		round, err := ParseShapleyStrategy(s.String())
		if err != nil || round != s {
			t.Errorf("round-trip %v via %q failed: %v, %v", s, s.String(), round, err)
		}
	}
}

// TestBinomialRowMemoized: the memoized rows match Pascal's identity and
// repeated calls return consistent contents.
func TestBinomialRowMemoized(t *testing.T) {
	for n := 1; n <= 12; n++ {
		row := binomialRow(n)
		prev := binomialRow(n - 1)
		for k := 0; k <= n; k++ {
			want := new(big.Int)
			if k <= n-1 {
				want.Add(want, prev[k])
			}
			if k-1 >= 0 && k-1 <= n-1 {
				want.Add(want, prev[k-1])
			}
			if row[k].Cmp(want) != 0 {
				t.Fatalf("C(%d,%d) = %v, want %v", n, k, row[k], want)
			}
		}
	}
	again := binomialRow(7)
	for k, v := range binomialRow(7) {
		if v.Cmp(again[k]) != 0 {
			t.Fatal("repeated binomialRow call disagrees with itself")
		}
	}
	frow := binomialRowFloat(6)
	for k, v := range []float64{1, 6, 15, 20, 15, 6, 1} {
		if frow[k] != v {
			t.Fatalf("binomialRowFloat(6)[%d] = %v, want %v", k, frow[k], v)
		}
	}
}

// TestShapleyCoefficientsCopies: the public accessor hands out mutable
// copies; mutating them must not corrupt the shared memo.
func TestShapleyCoefficientsCopies(t *testing.T) {
	a := ShapleyCoefficients(5)
	a[0].SetInt64(999)
	b := ShapleyCoefficients(5)
	if b[0].Cmp(big.NewRat(999, 1)) == 0 {
		t.Fatal("mutating ShapleyCoefficients result corrupted the memoized row")
	}
	ratEq(t, b[0], 1, 5, "coef[0] for n=5")
}
