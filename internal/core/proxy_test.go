package core

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/db"
)

// TestProxyExample51 reproduces Example 5.1: φ = (x1∨x2) ∧ (x1∨x3∨x4).
// Shapley values of the proxy game φ̃ = (ψ1+ψ2)/2 preserve the true-Shapley
// ordering x1 > x2 > x3 = x4. (The example in the paper lists the values of
// the unnormalized sum ψ1+ψ2, twice ours; the ordering is identical.)
func TestProxyExample51(t *testing.T) {
	f := &cnf.Formula{
		Clauses: []cnf.Clause{{1, 2}, {1, 3, 4}},
		Aux:     map[int]bool{},
		MaxVar:  4,
	}
	endo := []db.FactID{1, 2, 3, 4}
	v := CNFProxy(f, endo)

	// Closed form: x1: (1/(2·1) + 1/(3·1))/2 = 5/12; x2: (1/2)/2 = 1/4;
	// x3, x4: (1/3)/2 = 1/6.
	ratEq(t, v[1], 5, 12, "proxy(x1)")
	ratEq(t, v[2], 1, 4, "proxy(x2)")
	ratEq(t, v[3], 1, 6, "proxy(x3)")
	ratEq(t, v[4], 1, 6, "proxy(x4)")

	r := v.Ranking()
	if r[0] != 1 || r[1] != 2 {
		t.Errorf("proxy ranking = %v, want x1 first then x2", r)
	}

	// True Shapley values of φ (7/12, 3/12, 1/12, 1/12 per the paper) have
	// the same order.
	game := func(subset map[db.FactID]bool) bool {
		a := map[int]bool{}
		for id, in := range subset {
			a[int(id)] = in
		}
		return f.Eval(a)
	}
	truth, err := NaiveShapley(game, endo)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, truth[1], 7, 12, "Shapley(x1)")
	ratEq(t, truth[2], 3, 12, "Shapley(x2)")
	ratEq(t, truth[3], 1, 12, "Shapley(x3)")
	ratEq(t, truth[4], 1, 12, "Shapley(x4)")
}

// TestProxyMatchesLemma52 verifies the Lemma 5.2 closed form against naive
// Shapley enumeration of the proxy game on random CNFs.
func TestProxyMatchesLemma52(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		f := randomTestCNF(rng, 2+rng.Intn(4), 1+rng.Intn(5))
		// Lemma 5.2 assumes no variable occurs twice in one clause;
		// normalize by dropping clauses violating it.
		var kept []cnf.Clause
		for _, cl := range f.Clauses {
			seen := map[int]bool{}
			ok := true
			for _, l := range cl {
				if seen[l.Var()] {
					ok = false
					break
				}
				seen[l.Var()] = true
			}
			if ok {
				kept = append(kept, cl)
			}
		}
		if len(kept) == 0 {
			continue
		}
		f.Clauses = kept

		players := f.Vars()
		endo := make([]db.FactID, len(players))
		for i, p := range players {
			endo[i] = db.FactID(p)
		}
		got := CNFProxy(f, endo)
		want, err := NaiveShapleyReal(ProxyGame(f), players)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range players {
			if got[db.FactID(p)].Cmp(want[p]) != 0 {
				t.Fatalf("trial %d: var %d: proxy = %v, naive Shapley of φ̃ = %v\nclauses: %v",
					trial, p, got[db.FactID(p)], want[p], f.Clauses)
			}
		}
	}
}

// TestProxyFlightsOrdering checks Example 5.3's qualitative claim on the
// one-stop query: a2..a5 rank strictly above a6, a7 under CNF Proxy.
func TestProxyFlightsOrdering(t *testing.T) {
	elin, endo, fs := flightsELin(t)
	formula := cnf.TseytinReserving(elin, 16)
	v := CNFProxy(formula, endo)
	for i := 2; i <= 5; i++ {
		for j := 6; j <= 7; j++ {
			if v[fs.A[i].ID].Cmp(v[fs.A[j].ID]) <= 0 {
				t.Errorf("proxy(a%d)=%v not greater than proxy(a%d)=%v",
					i, v[fs.A[i].ID], j, v[fs.A[j].ID])
			}
		}
	}
	// a8 never occurs in the lineage: proxy value must be exactly 0.
	ratEq(t, v[fs.A[8].ID], 0, 1, "proxy(a8)")
}

// TestProxyIgnoresAuxVars: Tseytin auxiliaries must not receive scores.
func TestProxyIgnoresAuxVars(t *testing.T) {
	elin, endo, _ := flightsELin(t)
	formula := cnf.TseytinReserving(elin, 16)
	v := CNFProxy(formula, endo)
	if len(v) != len(endo) {
		t.Errorf("proxy returned %d scores for %d endogenous facts", len(v), len(endo))
	}
	for id := range v {
		if formula.Aux[int(id)] {
			t.Errorf("auxiliary variable %d received a proxy score", id)
		}
	}
}

func TestProxyEmptyFormula(t *testing.T) {
	f := &cnf.Formula{Aux: map[int]bool{}}
	v := CNFProxy(f, []db.FactID{1, 2})
	ratEq(t, v[1], 0, 1, "proxy on empty formula")
	ratEq(t, v[2], 0, 1, "proxy on empty formula")
}

func TestProxyNegativeOccurrences(t *testing.T) {
	// φ = (¬x1 ∨ x2): x1 appears negatively. Lemma 5.2 gives
	// Φ = −1/(m·C(m−1, a)) with m=2, a=1 → −1/2; n=1 clause.
	f := &cnf.Formula{Clauses: []cnf.Clause{{-1, 2}}, Aux: map[int]bool{}, MaxVar: 2}
	v := CNFProxy(f, []db.FactID{1, 2})
	ratEq(t, v[1], -1, 2, "proxy(¬x1)")
	ratEq(t, v[2], 1, 2, "proxy(x2)")
}

var _ = big.NewRat // the ratEq helper lives in shapley_test.go
