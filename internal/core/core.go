package core
