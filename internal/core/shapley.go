package core

import (
	"context"
	"math/big"
	"sort"

	"repro/internal/db"
	"repro/internal/dnnf"
	"repro/internal/parallel"
)

// Values maps endogenous fact IDs to their exact Shapley values.
type Values map[db.FactID]*big.Rat

// Float returns the values as float64s (for metrics and display).
func (v Values) Float() map[db.FactID]float64 {
	out := make(map[db.FactID]float64, len(v))
	for id, r := range v {
		f, _ := r.Float64()
		out[id] = f
	}
	return out
}

// Sum returns Σ_f v[f]; by the efficiency axiom it equals
// q(Dn ∪ Dx) − q(Dx) for a Boolean query game. Accumulation runs in
// ascending fact-ID order, not Go's randomized map order, so repeated runs
// perform the identical sequence of exact additions.
func (v Values) Sum() *big.Rat {
	ids := make([]db.FactID, 0, len(v))
	for id := range v {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	s := new(big.Rat)
	for _, id := range ids {
		s.Add(s, v[id])
	}
	return s
}

// Ranking returns the fact IDs sorted by decreasing value, ties broken by
// increasing fact ID for determinism.
func (v Values) Ranking() []db.FactID {
	ids := make([]db.FactID, 0, len(v))
	for id := range v {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		c := v[ids[i]].Cmp(v[ids[j]])
		if c != 0 {
			return c > 0
		}
		return ids[i] < ids[j]
	})
	return ids
}

// ShapleyCoefficients returns the n coefficients k!·(n−k−1)!/n! for
// k = 0..n−1 appearing in Equation (2)/(3) of the paper.
func ShapleyCoefficients(n int) []*big.Rat {
	coefs := make([]*big.Rat, n)
	nFact := new(big.Int).MulRange(1, int64(n)) // n!
	for k := 0; k < n; k++ {
		kFact := new(big.Int).MulRange(1, int64(k))
		rFact := new(big.Int).MulRange(1, int64(n-k-1))
		num := new(big.Int).Mul(kFact, rFact)
		coefs[k] = new(big.Rat).SetFrac(num, nFact)
	}
	return coefs
}

// ShapleyOfFact implements Algorithm 1 for a single endogenous fact f: given
// a d-DNNF circuit representing ELin(q, Dx, Dn) whose variables are a subset
// of the endogenous fact IDs endo, it computes Shapley(q, Dn, Dx, f)
// exactly. Facts absent from the circuit's support have Shapley value 0
// (conditioning changes nothing), which realizes the circuit-completion step
// without building (f' ∨ ¬f') gates.
func ShapleyOfFact(c *dnnf.Node, endo []db.FactID, f db.FactID) *big.Rat {
	n := len(endo)
	if n == 0 {
		return new(big.Rat)
	}
	inSupport := false
	for _, v := range c.Vars() {
		if db.FactID(v) == f {
			inSupport = true
			break
		}
	}
	if !inSupport {
		return new(big.Rat)
	}
	coefs := ShapleyCoefficients(n)
	b := dnnf.NewBuilder()
	gamma := conditionedCounts(b, c, int(f), true, n-1)
	delta := conditionedCounts(b, c, int(f), false, n-1)
	return weightedDifference(gamma, delta, coefs)
}

// ShapleyAll computes the Shapley value of every endogenous fact in endo
// with respect to the Boolean function represented by the d-DNNF c (the
// endogenous lineage). Its cost is O(|C|·|Dn|²) per fact appearing in the
// circuit; facts outside the support are zero by symmetry (they are null
// players).
//
// The per-fact computations are independent — each conditions the circuit
// on its own fact and runs the #SAT_k dynamic program — so they fan out
// across `workers` goroutines (≤ 0 means GOMAXPROCS, 1 forces the serial
// path). Every worker owns a private dnnf.Builder; the shared inputs (the
// circuit, the coefficients) are only read. Exact big.Rat arithmetic makes
// the parallel result identical to the serial one. Cancellation of ctx is
// checked between facts; on cancellation the context's error is returned.
func ShapleyAll(ctx context.Context, c *dnnf.Node, endo []db.FactID, workers int) (Values, error) {
	out := make(Values, len(endo))
	n := len(endo)
	if n == 0 {
		return out, nil
	}
	coefs := ShapleyCoefficients(n)
	support := make(map[db.FactID]bool, len(c.Vars()))
	for _, v := range c.Vars() {
		support[db.FactID(v)] = true
	}
	workers = parallel.Workers(workers)
	if workers > n {
		workers = n
	}
	builders := make([]*dnnf.Builder, workers)
	for i := range builders {
		builders[i] = dnnf.NewBuilder()
	}
	vals := make([]*big.Rat, n)
	err := parallel.ForEach(ctx, n, workers, func(worker, i int) error {
		f := endo[i]
		if !support[f] {
			vals[i] = new(big.Rat)
			return nil
		}
		b := builders[worker]
		gamma := conditionedCounts(b, c, int(f), true, n-1)
		delta := conditionedCounts(b, c, int(f), false, n-1)
		vals[i] = weightedDifference(gamma, delta, coefs)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, f := range endo {
		out[f] = vals[i]
	}
	return out, nil
}

// conditionedCounts computes the #SAT_k vector of C[f→val], padded to a
// universe of size universe (= |Dn|−1, the endogenous facts minus f).
func conditionedCounts(b *dnnf.Builder, c *dnnf.Node, f int, val bool, universe int) []*big.Int {
	cond := dnnf.Condition(b, c, map[int]bool{f: val})
	counts := ComputeAllSATk(cond)
	return PadToUniverse(counts, universe-len(cond.Vars()))
}

// weightedDifference evaluates Σ_k coefs[k]·(Γ[k]−Δ[k]) as an exact
// rational.
func weightedDifference(gamma, delta []*big.Int, coefs []*big.Rat) *big.Rat {
	total := new(big.Rat)
	var diff big.Int
	var term big.Rat
	for k := 0; k < len(coefs); k++ {
		g := bigAt(gamma, k)
		d := bigAt(delta, k)
		diff.Sub(g, d)
		if diff.Sign() == 0 {
			continue
		}
		term.SetInt(&diff)
		term.Mul(&term, coefs[k])
		total.Add(total, &term)
	}
	return total
}

func bigAt(v []*big.Int, k int) *big.Int {
	if k < len(v) {
		return v[k]
	}
	return new(big.Int)
}
