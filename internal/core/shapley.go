package core

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"sync"

	"repro/internal/db"
	"repro/internal/dnnf"
	"repro/internal/parallel"
)

// Values maps endogenous fact IDs to their exact Shapley values.
type Values map[db.FactID]*big.Rat

// Float returns the values as float64s (for metrics and display).
func (v Values) Float() map[db.FactID]float64 {
	out := make(map[db.FactID]float64, len(v))
	for id, r := range v {
		f, _ := r.Float64()
		out[id] = f
	}
	return out
}

// Sum returns Σ_f v[f]; by the efficiency axiom it equals
// q(Dn ∪ Dx) − q(Dx) for a Boolean query game. Accumulation runs in
// ascending fact-ID order, not Go's randomized map order, so repeated runs
// perform the identical sequence of exact additions.
func (v Values) Sum() *big.Rat {
	ids := make([]db.FactID, 0, len(v))
	for id := range v {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	s := new(big.Rat)
	for _, id := range ids {
		s.Add(s, v[id])
	}
	return s
}

// Ranking returns the fact IDs sorted by decreasing value, ties broken by
// increasing fact ID for determinism.
func (v Values) Ranking() []db.FactID {
	ids := make([]db.FactID, 0, len(v))
	for id := range v {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		c := v[ids[i]].Cmp(v[ids[j]])
		if c != 0 {
			return c > 0
		}
		return ids[i] < ids[j]
	})
	return ids
}

// ShapleyStrategy selects how ShapleyAll computes the per-fact conditioned
// count vectors of Algorithm 1.
type ShapleyStrategy uint8

const (
	// StrategyAuto (the default) picks StrategyGradient when n·|C| crosses
	// gradientAutoThreshold and StrategyPerFact otherwise.
	StrategyAuto ShapleyStrategy = iota
	// StrategyPerFact is the literal Algorithm 1: condition the circuit on
	// f→true and f→false for each fact f and rerun the #SAT_k dynamic
	// program, at O(n·|C|·n²) total cost. Kept as an ablation and
	// cross-check for the gradient path.
	StrategyPerFact
	// StrategyGradient obtains every fact's conditioned count difference
	// from one bottom-up #SAT_k pass plus one top-down derivative pass over
	// the circuit — O(|C|·n²) total, an asymptotic factor-n speedup.
	StrategyGradient
)

func (s ShapleyStrategy) String() string {
	switch s {
	case StrategyPerFact:
		return "per-fact"
	case StrategyGradient:
		return "gradient"
	default:
		return "auto"
	}
}

// ParseShapleyStrategy parses a CLI-facing strategy name.
func ParseShapleyStrategy(s string) (ShapleyStrategy, error) {
	switch s {
	case "", "auto":
		return StrategyAuto, nil
	case "per-fact", "perfact":
		return StrategyPerFact, nil
	case "gradient":
		return StrategyGradient, nil
	}
	return StrategyAuto, fmt.Errorf("core: unknown Shapley strategy %q (want auto, per-fact, or gradient)", s)
}

// gradientAutoThreshold is the n·|C| product above which StrategyAuto
// switches to gradient mode. Below it the per-fact path's lower constant
// overhead (no level partition, no derivative storage) wins; above it the
// gradient path's factor-n asymptotic advantage dominates quickly.
const gradientAutoThreshold = 512

// resolveStrategy turns StrategyAuto into a concrete choice for a circuit
// with the given support universe size.
func resolveStrategy(s ShapleyStrategy, n int, c *dnnf.Node) ShapleyStrategy {
	if s != StrategyAuto {
		return s
	}
	if n*dnnf.Size(c) >= gradientAutoThreshold {
		return StrategyGradient
	}
	return StrategyPerFact
}

// shapleyCoefCache memoizes ShapleyCoefficients across calls and goroutines:
// a hybrid answer can evaluate the coefficients for the same n several times
// (strategy attempts, cross-checks, per-fact helpers); the cached rows are
// shared read-only.
var shapleyCoefCache struct {
	sync.Mutex
	rows map[int][]*big.Rat
}

// shapleyCoefficients returns the memoized coefficient row for n. The slice
// and its entries are shared across callers and must be treated as
// read-only.
func shapleyCoefficients(n int) []*big.Rat {
	shapleyCoefCache.Lock()
	defer shapleyCoefCache.Unlock()
	if row, ok := shapleyCoefCache.rows[n]; ok {
		return row
	}
	row := make([]*big.Rat, n)
	nFact := new(big.Int).MulRange(1, int64(n)) // n!
	for k := 0; k < n; k++ {
		kFact := new(big.Int).MulRange(1, int64(k))
		rFact := new(big.Int).MulRange(1, int64(n-k-1))
		num := new(big.Int).Mul(kFact, rFact)
		row[k] = new(big.Rat).SetFrac(num, nFact)
	}
	if shapleyCoefCache.rows == nil {
		shapleyCoefCache.rows = make(map[int][]*big.Rat)
	}
	shapleyCoefCache.rows[n] = row
	return row
}

// ShapleyCoefficients returns the n coefficients k!·(n−k−1)!/n! for
// k = 0..n−1 appearing in Equation (2)/(3) of the paper. The returned
// rationals are fresh copies the caller may mutate.
func ShapleyCoefficients(n int) []*big.Rat {
	src := shapleyCoefficients(n)
	out := make([]*big.Rat, len(src))
	for i, r := range src {
		out[i] = new(big.Rat).Set(r)
	}
	return out
}

// ShapleyOfFact implements Algorithm 1 for a single endogenous fact f: given
// a d-DNNF circuit representing ELin(q, Dx, Dn) whose variables are a subset
// of the endogenous fact IDs endo, it computes Shapley(q, Dn, Dx, f)
// exactly. Facts absent from the circuit's support have Shapley value 0
// (conditioning changes nothing), which realizes the circuit-completion step
// without building (f' ∨ ¬f') gates.
func ShapleyOfFact(c *dnnf.Node, endo []db.FactID, f db.FactID) *big.Rat {
	n := len(endo)
	if n == 0 {
		return new(big.Rat)
	}
	inSupport := false
	for _, v := range c.Vars() {
		if db.FactID(v) == f {
			inSupport = true
			break
		}
	}
	if !inSupport {
		return new(big.Rat)
	}
	coefs := shapleyCoefficients(n)
	b := dnnf.NewBuilder()
	gamma := conditionedCounts(b, c, int(f), true, n-1)
	delta := conditionedCounts(b, c, int(f), false, n-1)
	return weightedDifference(gamma, delta, coefs)
}

// ShapleyAll computes the Shapley value of every endogenous fact in endo
// with respect to the Boolean function represented by the d-DNNF c (the
// endogenous lineage), auto-selecting between the per-fact and gradient
// evaluation strategies. Facts outside the support are zero by symmetry
// (they are null players). Cancellation of ctx is checked between units of
// work; on cancellation the context's error is returned.
func ShapleyAll(ctx context.Context, c *dnnf.Node, endo []db.FactID, workers int) (Values, error) {
	return ShapleyAllStrategy(ctx, c, endo, workers, StrategyAuto)
}

// ShapleyAllStrategy is ShapleyAll with an explicit evaluation strategy. The
// two strategies compute big.Rat-identical values at very different costs:
// per-fact is O(n·|C|·n²), gradient is O(|C|·n²) for all facts together.
// Both fan out across `workers` goroutines (≤ 0 means GOMAXPROCS, 1 forces
// the serial path): per-fact across facts, gradient level-synchronously
// inside its two circuit passes. The Shapley coefficients for n are computed
// once per answer (memoized across strategy attempts and calls).
func ShapleyAllStrategy(ctx context.Context, c *dnnf.Node, endo []db.FactID, workers int, strategy ShapleyStrategy) (Values, error) {
	n := len(endo)
	if n == 0 {
		return make(Values), nil
	}
	coefs := shapleyCoefficients(n)
	if resolveStrategy(strategy, n, c) == StrategyGradient {
		return shapleyAllGradient(ctx, c, endo, workers, coefs)
	}
	return shapleyAllPerFact(ctx, c, endo, workers, coefs)
}

// shapleyAllPerFact is the literal Algorithm 1: each fact conditions the
// circuit on its own presence/absence and reruns the #SAT_k dynamic program.
// The per-fact computations are independent, so they fan out across workers;
// every fact gets a private dnnf.Builder so the dense #SAT_k memo stays
// proportional to the conditioned circuit. Exact big.Rat arithmetic makes
// the parallel result identical to the serial one.
func shapleyAllPerFact(ctx context.Context, c *dnnf.Node, endo []db.FactID, workers int, coefs []*big.Rat) (Values, error) {
	n := len(endo)
	out := make(Values, n)
	support := make(map[db.FactID]bool, len(c.Vars()))
	for _, v := range c.Vars() {
		support[db.FactID(v)] = true
	}
	vals := make([]*big.Rat, n)
	err := parallel.ForEach(ctx, n, workers, func(_, i int) error {
		f := endo[i]
		if !support[f] {
			vals[i] = new(big.Rat)
			return nil
		}
		b := dnnf.NewBuilder()
		gamma := conditionedCounts(b, c, int(f), true, n-1)
		delta := conditionedCounts(b, c, int(f), false, n-1)
		vals[i] = weightedDifference(gamma, delta, coefs)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, f := range endo {
		out[f] = vals[i]
	}
	return out, nil
}

// conditionedCounts computes the #SAT_k vector of C[f→val], padded to a
// universe of size universe (= |Dn|−1, the endogenous facts minus f).
func conditionedCounts(b *dnnf.Builder, c *dnnf.Node, f int, val bool, universe int) []*big.Int {
	cond := dnnf.Condition(b, c, map[int]bool{f: val})
	counts := ComputeAllSATk(cond)
	return PadToUniverse(counts, universe-len(cond.Vars()))
}

// weightedDifference evaluates Σ_k coefs[k]·(Γ[k]−Δ[k]) as an exact
// rational.
func weightedDifference(gamma, delta []*big.Int, coefs []*big.Rat) *big.Rat {
	total := new(big.Rat)
	var diff big.Int
	var term big.Rat
	for k := 0; k < len(coefs); k++ {
		g := bigAt(gamma, k)
		d := bigAt(delta, k)
		diff.Sub(g, d)
		if diff.Sign() == 0 {
			continue
		}
		term.SetInt(&diff)
		term.Mul(&term, coefs[k])
		total.Add(total, &term)
	}
	return total
}

func bigAt(v []*big.Int, k int) *big.Int {
	if k < len(v) {
		return v[k]
	}
	return new(big.Int)
}
