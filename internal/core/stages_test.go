package core

import (
	"context"
	"testing"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/dnnf"
)

// stageLineage builds a small two-route lineage over facts 1..4.
func stageLineage() (*circuit.Node, []db.FactID) {
	b := circuit.NewBuilder()
	elin := b.Or(
		b.And(b.Variable(1), b.Variable(2)),
		b.And(b.Variable(3), b.Variable(4)),
	)
	return elin, []db.FactID{1, 2, 3, 4}
}

func TestArtifactsReuseSameEpoch(t *testing.T) {
	elin, endo := stageLineage()
	art := &Artifacts{}
	first, err := ExplainCircuitAt(context.Background(), elin, endo, 7, art, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := ExplainCircuitAt(context.Background(), elin, endo, 7, art, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if second.CNF != first.CNF {
		t.Error("Tseytin stage recomputed at an unchanged epoch")
	}
	if second.DNNF != first.DNNF {
		t.Error("compile stage recomputed at an unchanged epoch")
	}
	// Values maps are reused by reference when the Shapley stage is skipped.
	if &second.Values == nil || len(second.Values) != len(first.Values) {
		t.Fatalf("cached values differ: %v vs %v", second.Values, first.Values)
	}
	for f, v := range first.Values {
		if second.Values[f].Cmp(v) != 0 {
			t.Errorf("fact %d: cached value %v != %v", f, second.Values[f], v)
		}
	}
	if second.TseytinTime != 0 || second.CompileTime != 0 || second.ShapleyTime != 0 {
		t.Errorf("cached stages reported nonzero times: %v/%v/%v",
			second.TseytinTime, second.CompileTime, second.ShapleyTime)
	}
}

func TestArtifactsRecomputeOnEpochChange(t *testing.T) {
	elin, endo := stageLineage()
	art := &Artifacts{}
	first, err := ExplainCircuitAt(context.Background(), elin, endo, 1, art, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := ExplainCircuitAt(context.Background(), elin, endo, 2, art, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if second.CNF == first.CNF {
		t.Error("Tseytin stage served a stale epoch")
	}
	for f, v := range first.Values {
		if second.Values[f].Cmp(v) != 0 {
			t.Errorf("fact %d: recomputed value %v != %v", f, second.Values[f], v)
		}
	}
}

func TestArtifactsFailedCompileNotCached(t *testing.T) {
	elin, endo := stageLineage()
	art := &Artifacts{}
	// MaxNodes 1 forces the node-budget failure in the compile stage.
	_, err := ExplainCircuitAt(context.Background(), elin, endo, 3, art, PipelineOptions{CompileMaxNodes: 1})
	if err != dnnf.ErrNodeBudget {
		t.Fatalf("err = %v, want ErrNodeBudget", err)
	}
	if art.hasDNNF || art.hasValues {
		t.Error("failed stage output was cached")
	}
	// The Tseytin output is cached (it succeeded) and a follow-up run with a
	// workable budget completes from it.
	if !art.hasCNF {
		t.Error("successful Tseytin stage was not cached")
	}
	res, err := ExplainCircuitAt(context.Background(), elin, endo, 3, art, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CNF != art.cnf {
		t.Error("retry did not reuse the cached CNF")
	}
	if len(res.Values) != 4 {
		t.Fatalf("values for %d facts, want 4", len(res.Values))
	}
}
