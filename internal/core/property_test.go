package core

// Property-based tests (testing/quick) for the invariants that hold for
// arbitrary inputs: Shapley axioms over random lineages, consistency of the
// #SAT_k spectrum with plain model counting, and coefficient identities.

import (
	"context"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/dnnf"
)

// TestQuickCoefficientsSymmetry: coef[k] = coef[n−1−k] (the Shapley weights
// are symmetric around the middle coalition size).
func TestQuickCoefficientsSymmetry(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%20) + 1
		coefs := ShapleyCoefficients(n)
		for k := 0; k < n; k++ {
			if coefs[k].Cmp(coefs[n-1-k]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickCoefficientsPositive: every coefficient is strictly positive and
// at most 1.
func TestQuickCoefficientsPositive(t *testing.T) {
	one := big.NewRat(1, 1)
	f := func(raw uint8) bool {
		n := int(raw%20) + 1
		for _, c := range ShapleyCoefficients(n) {
			if c.Sign() <= 0 || c.Cmp(one) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickSATkSpectrumSums: Σ_k #SAT_k(C) = #SAT(C) on compiled random
// lineages, and the spectrum is bounded by the binomial row.
func TestQuickSATkSpectrumSums(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cb := circuit.NewBuilder()
		elin := randomMonotoneCircuit(rng, cb, 2+rng.Intn(5), 3)
		endo := endoOf(elin)
		res, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{})
		if err != nil {
			return false
		}
		counts := ComputeAllSATk(res.DNNF)
		total := new(big.Int)
		vars := res.DNNF.Vars()
		for k, c := range counts {
			if c.Sign() < 0 {
				return false
			}
			if c.Cmp(new(big.Int).Binomial(int64(len(vars)), int64(k))) > 0 {
				return false
			}
			total.Add(total, c)
		}
		return total.Cmp(dnnf.CountModels(res.DNNF, vars)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickShapleyAxioms checks three Shapley axioms on random monotone
// lineages: efficiency (sum = q(all)−q(∅)), null players (facts outside the
// support get 0), and non-negativity (monotone games have non-negative
// values).
func TestQuickShapleyAxioms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cb := circuit.NewBuilder()
		elin := randomMonotoneCircuit(rng, cb, 2+rng.Intn(5), 3)
		endo := endoOf(elin)
		// Add one guaranteed null player beyond the support.
		null := endo[len(endo)-1] + 1
		endo = append(endo, null)
		res, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{})
		if err != nil {
			return false
		}
		if res.Values[null].Sign() != 0 {
			return false
		}
		for _, v := range res.Values {
			if v.Sign() < 0 {
				return false
			}
		}
		all := map[circuit.Var]bool{}
		for _, f := range endo {
			all[circuit.Var(f)] = true
		}
		want := new(big.Rat)
		if circuit.Eval(elin, all) {
			want.SetInt64(1)
		}
		if circuit.Eval(elin, map[circuit.Var]bool{}) {
			want.Sub(want, big.NewRat(1, 1))
		}
		return res.Values.Sum().Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickSymmetryAxiom: symmetric facts (interchangeable in the lineage)
// receive equal values. We construct games of the form (x1∧y) ∨ (x2∧y) ∨ …
// where all xi are symmetric by construction.
func TestQuickSymmetryAxiom(t *testing.T) {
	f := func(raw uint8) bool {
		k := int(raw%4) + 2 // 2..5 symmetric facts
		cb := circuit.NewBuilder()
		y := cb.Variable(circuit.Var(100))
		var disjuncts []*circuit.Node
		for i := 1; i <= k; i++ {
			disjuncts = append(disjuncts, cb.And(cb.Variable(circuit.Var(i)), y))
		}
		elin := cb.Or(disjuncts...)
		endo := endoOf(elin)
		res, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{})
		if err != nil {
			return false
		}
		first := res.Values[db.FactID(1)]
		for i := 2; i <= k; i++ {
			if res.Values[db.FactID(i)].Cmp(first) != 0 {
				return false
			}
		}
		// y is strictly more important than any single xi for k ≥ 2.
		return res.Values[db.FactID(100)].Cmp(first) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickBanzhafShapleySignAgreement: on monotone lineages both measures
// are non-negative and share the null players.
func TestQuickBanzhafShapleySignAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cb := circuit.NewBuilder()
		elin := randomMonotoneCircuit(rng, cb, 2+rng.Intn(4), 3)
		endo := endoOf(elin)
		res, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{})
		if err != nil {
			return false
		}
		bz := BanzhafAll(res.DNNF, endo)
		for _, f := range endo {
			if (res.Values[f].Sign() == 0) != (bz[f].Sign() == 0) {
				return false
			}
			if bz[f].Sign() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func endoOf(elin *circuit.Node) []db.FactID {
	vars := circuit.Vars(elin)
	endo := make([]db.FactID, len(vars))
	for i, v := range vars {
		endo[i] = db.FactID(v)
	}
	return endo
}
