package core

import (
	"context"
	"errors"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/db"
	"repro/internal/dnnf"
)

// ErrShapleyTimeout is returned when the Shapley evaluation step (not the
// compilation) exceeds its deadline.
var ErrShapleyTimeout = errors.New("core: Shapley evaluation timed out")

// PipelineOptions configures the exact pipeline of Figure 3.
type PipelineOptions struct {
	// CompileTimeout bounds the knowledge-compilation step (zero = none).
	CompileTimeout time.Duration
	// CompileMaxNodes bounds d-DNNF size, standing in for c2d's memory
	// exhaustion failures (zero = none).
	CompileMaxNodes int
	// ShapleyTimeout bounds Algorithm 1 itself (zero = none). The check is
	// per-fact, matching the granularity at which work can be abandoned.
	ShapleyTimeout time.Duration
	// Order selects the compiler's branching heuristic.
	Order dnnf.VarOrder
	// DisableCache turns off the compiler's component cache (ablation).
	DisableCache bool
	// Workers is the fan-out of Algorithm 1 (≤ 0 = GOMAXPROCS, 1 = serial):
	// across facts in per-fact mode, across the nodes of each circuit level
	// in gradient mode. Results are identical for every setting.
	Workers int
	// CompileWorkers is the knowledge compiler's intra-compilation fan-out:
	// independent connected components compile concurrently across up to
	// this many goroutines (≤ 0 = GOMAXPROCS, 1 = the sequential compiler).
	// Circuits are semantically identical for every setting.
	CompileWorkers int
	// Speculate compiles the two cofactors of shallow Shannon decisions
	// concurrently inside the knowledge compiler — the parallelism source
	// for single-component lineages, where component fan-out has nothing to
	// split. Inert at CompileWorkers == 1; circuits stay semantically
	// identical for every setting.
	Speculate bool
	// Portfolio races the compiler's variable-ordering heuristics on the
	// same CNF, first finisher wins and populates Cache. Requires ≥ 2
	// compile workers to engage.
	Portfolio bool
	// NoCanonicalCache keys Cache by the byte-identical CNF instead of the
	// rename-invariant canonical form (ablation; canonical is the default).
	NoCanonicalCache bool
	// Strategy selects the Algorithm 1 evaluation mode (StrategyAuto picks
	// gradient for large n·|C|, per-fact otherwise; both are exact and
	// big.Rat-identical).
	Strategy ShapleyStrategy
	// Cache, when non-nil, is a cross-call d-DNNF compilation cache shared
	// between pipeline invocations (and goroutines).
	Cache *dnnf.CompileCache
	// CacheOwner tags Cache entries with the identity of the fact-ID
	// universe this lineage comes from (the database ID), scoping the
	// cache's fact-set invalidation under updates; 0 = untagged.
	CacheOwner uint64
}

// PipelineResult carries the artifacts and stage timings of one end-to-end
// exact computation for a single output tuple.
type PipelineResult struct {
	// CNF is the Tseytin transformation of the endogenous lineage.
	CNF *cnf.Formula
	// DNNF is the compiled circuit after Tseytin-variable elimination
	// (Lemma 4.6); its variables are endogenous fact IDs.
	DNNF *dnnf.Node
	// Values holds the exact Shapley value of every endogenous fact.
	Values Values

	NumFacts     int // distinct endogenous facts in the lineage
	NumClauses   int
	DNNFSize     int
	TseytinTime  time.Duration
	CompileTime  time.Duration
	ShapleyTime  time.Duration
	CompileStats dnnf.Stats
}

// ExplainCircuit runs the full exact pipeline on an endogenous lineage
// circuit — the named stages StageTseytin, StageCompile, and StageShapley
// in order (see stages.go): Tseytin transformation, knowledge compilation
// to d-DNNF with auxiliary-variable elimination (Lemma 4.6), and
// Algorithm 1 for every endogenous fact. It returns dnnf.ErrTimeout or
// dnnf.ErrNodeBudget when compilation exceeds its budget and
// ErrShapleyTimeout when evaluation does; in those cases the hybrid
// strategy falls back to CNF Proxy. Cancelling ctx aborts either stage and
// propagates the context's own error (never a budget sentinel), so callers
// can distinguish "over budget" from "caller gave up".
func ExplainCircuit(ctx context.Context, elin *circuit.Node, endo []db.FactID, opts PipelineOptions) (*PipelineResult, error) {
	return ExplainCircuitAt(ctx, elin, endo, 0, nil, opts)
}

// maxFactID returns the largest endogenous fact ID, used to reserve the
// fact-ID range so Tseytin auxiliaries never collide with facts absent from
// the lineage.
func maxFactID(endo []db.FactID) int {
	m := 0
	for _, id := range endo {
		if int(id) > m {
			m = int(id)
		}
	}
	return m
}
