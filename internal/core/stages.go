package core

import (
	"context"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/db"
	"repro/internal/dnnf"
	"repro/internal/trace"
)

// StageName identifies one named stage of the exact pipeline of Figure 3.
// The pipeline is an explicit chain — Tseytin → Compile → Shapley — and each
// stage's output can be cached per lineage epoch (see Artifacts), so a
// long-lived session recomputes only the stages whose inputs changed.
type StageName string

// The named stages, in dependency order.
const (
	// StageTseytin transforms the endogenous lineage circuit into CNF.
	StageTseytin StageName = "tseytin"
	// StageCompile knowledge-compiles the CNF to d-DNNF and eliminates the
	// Tseytin auxiliaries (Lemma 4.6).
	StageCompile StageName = "compile"
	// StageShapley runs Algorithm 1 over the reduced circuit.
	StageShapley StageName = "shapley"
)

// Artifacts caches one output tuple's per-stage pipeline products, each
// keyed by the lineage epoch it was computed at: a stage whose stored epoch
// matches the current one is skipped and its cached output reused; a stage
// recomputed at a newer epoch implicitly invalidates everything downstream.
// Failed stages are never cached. An Artifacts value assumes fixed pipeline
// options across calls (a session's options are fixed at Open); the zero
// value is an empty cache. Not safe for concurrent use — callers confine
// each Artifacts to one tuple's explanation at a time.
type Artifacts struct {
	hasCNF   bool
	cnfEpoch uint64
	cnf      *cnf.Formula

	hasDNNF      bool
	dnnfEpoch    uint64
	dnnf         *dnnf.Node
	dnnfSize     int
	compileStats dnnf.Stats

	hasValues   bool
	valuesEpoch uint64
	values      Values
}

// Invalidate drops every cached stage output, regardless of epoch.
func (a *Artifacts) Invalidate() { *a = Artifacts{} }

// TseytinStage is the pipeline's first named stage: the Tseytin
// transformation of the endogenous lineage, with the fact-ID range reserved
// so auxiliaries never collide with facts absent from this lineage.
func TseytinStage(elin *circuit.Node, endo []db.FactID) *cnf.Formula {
	return cnf.TseytinReserving(elin, maxFactID(endo))
}

// CompileStage is the pipeline's second named stage: knowledge compilation
// of the CNF to d-DNNF followed by auxiliary-variable elimination. It
// returns dnnf.ErrTimeout / dnnf.ErrNodeBudget on budget exhaustion.
func CompileStage(ctx context.Context, formula *cnf.Formula, opts PipelineOptions) (*dnnf.Node, dnnf.Stats, error) {
	compiled, stats, err := dnnf.Compile(ctx, formula, dnnf.Options{
		Timeout:          opts.CompileTimeout,
		MaxNodes:         opts.CompileMaxNodes,
		DisableCache:     opts.DisableCache,
		Order:            opts.Order,
		Cache:            opts.Cache,
		Workers:          opts.CompileWorkers,
		Speculate:        opts.Speculate,
		Portfolio:        opts.Portfolio,
		NoCanonicalCache: opts.NoCanonicalCache,
		CacheOwner:       opts.CacheOwner,
	})
	if err != nil {
		return nil, stats, err
	}
	return dnnf.EliminateAux(compiled, func(v int) bool { return formula.Aux[v] }), stats, nil
}

// ShapleyStage is the pipeline's third named stage: Algorithm 1 over the
// reduced circuit for every endogenous fact. Its own budget is expressed as
// a context deadline layered over the caller's context; when that stage
// deadline (not the caller's) fires, the error is ErrShapleyTimeout.
func ShapleyStage(ctx context.Context, reduced *dnnf.Node, endo []db.FactID, opts PipelineOptions) (Values, error) {
	sctx := ctx
	if opts.ShapleyTimeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(ctx, opts.ShapleyTimeout)
		defer cancel()
	}
	values, err := ShapleyAllStrategy(sctx, reduced, endo, opts.Workers, opts.Strategy)
	if err != nil && ctx.Err() == nil {
		// The stage deadline fired, not the caller's context.
		err = ErrShapleyTimeout
	}
	return values, err
}

// ExplainCircuitAt runs the named stages of the exact pipeline for a
// lineage at the given epoch, reusing any stage output cached in art at the
// same epoch and storing fresh outputs back. art == nil runs every stage
// unconditionally (the one-shot ExplainCircuit). Reused stages report zero
// stage time in the result.
func ExplainCircuitAt(ctx context.Context, elin *circuit.Node, endo []db.FactID, epoch uint64, art *Artifacts, opts PipelineOptions) (*PipelineResult, error) {
	res := &PipelineResult{NumFacts: len(circuit.Vars(elin))}
	if err := ctx.Err(); err != nil {
		return res, err
	}

	formula := (*cnf.Formula)(nil)
	if art != nil && art.hasCNF && art.cnfEpoch == epoch {
		formula = art.cnf
	} else {
		t0 := time.Now()
		_, tsp := trace.Start(ctx, string(StageTseytin))
		formula = TseytinStage(elin, endo)
		tsp.Set("clauses", formula.NumClauses())
		tsp.End()
		res.TseytinTime = time.Since(t0)
		if art != nil {
			// A fresh upstream output invalidates all downstream stages.
			*art = Artifacts{hasCNF: true, cnfEpoch: epoch, cnf: formula}
		}
	}
	res.CNF = formula
	res.NumClauses = formula.NumClauses()

	var reduced *dnnf.Node
	if art != nil && art.hasDNNF && art.dnnfEpoch == epoch {
		reduced = art.dnnf
		res.DNNFSize = art.dnnfSize
		res.CompileStats = art.compileStats
	} else {
		t1 := time.Now()
		cctx, csp := trace.Start(ctx, string(StageCompile))
		var stats dnnf.Stats
		var err error
		reduced, stats, err = CompileStage(cctx, formula, opts)
		res.CompileStats = stats
		if err != nil {
			csp.Set("error", err.Error())
			csp.End()
			return res, err
		}
		res.CompileTime = time.Since(t1)
		res.DNNFSize = dnnf.Size(reduced)
		csp.Set("nodes", res.DNNFSize)
		csp.End()
		if art != nil {
			art.hasDNNF, art.dnnfEpoch, art.dnnf = true, epoch, reduced
			art.dnnfSize, art.compileStats = res.DNNFSize, stats
			art.hasValues = false
		}
	}
	res.DNNF = reduced

	if art != nil && art.hasValues && art.valuesEpoch == epoch {
		res.Values = art.values
		return res, nil
	}
	t2 := time.Now()
	sctx, ssp := trace.Start(ctx, string(StageShapley))
	ssp.Set("facts", len(endo))
	values, err := ShapleyStage(sctx, reduced, endo, opts)
	res.ShapleyTime = time.Since(t2)
	if err != nil {
		ssp.Set("error", err.Error())
		ssp.End()
		return res, err
	}
	ssp.End()
	res.Values = values
	if art != nil {
		art.hasValues, art.valuesEpoch, art.values = true, epoch, values
	}
	return res, nil
}
