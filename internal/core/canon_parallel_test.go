package core

// Tests for the two PR-3 compiler features as seen from the Shapley layer:
// the canonical (rename-invariant) compile cache must leave every Shapley
// value big.Rat-identical to cold compilation, and the parallel compiler
// must produce circuits with identical #SAT_k spectra at every worker count.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/dnnf"
)

// renameCircuit rebuilds a lineage circuit with every variable mapped
// through m, preserving structure exactly.
func renameCircuit(b *circuit.Builder, n *circuit.Node, m map[circuit.Var]circuit.Var) *circuit.Node {
	memo := make(map[int]*circuit.Node)
	var rec func(*circuit.Node) *circuit.Node
	rec = func(nd *circuit.Node) *circuit.Node {
		if r, ok := memo[nd.ID()]; ok {
			return r
		}
		var r *circuit.Node
		switch nd.Kind {
		case circuit.KindConst:
			r = b.Const(nd.Val)
		case circuit.KindVar:
			r = b.Variable(m[nd.Var])
		case circuit.KindNot:
			r = b.Not(rec(nd.Children[0]))
		case circuit.KindAnd, circuit.KindOr:
			cs := make([]*circuit.Node, len(nd.Children))
			for i, c := range nd.Children {
				cs[i] = rec(c)
			}
			if nd.Kind == circuit.KindAnd {
				r = b.And(cs...)
			} else {
				r = b.Or(cs...)
			}
		}
		memo[nd.ID()] = r
		return r
	}
	return rec(n)
}

// TestCanonicalCacheShapleyIdenticalAcrossRenaming is the acceptance test
// for rename-invariant caching at the pipeline level: explaining a lineage
// whose facts are a renamed copy of an already-explained one must hit the
// shared cache via relabeling, and every Shapley value must be
// big.Rat-identical to what a cold compilation computes.
func TestCanonicalCacheShapleyIdenticalAcrossRenaming(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	hits := 0
	for trial := 0; trial < 40; trial++ {
		cb := circuit.NewBuilder()
		elin := randomMonotoneCircuit(rng, cb, 2+rng.Intn(5), 3)
		endo := endoOf(elin)
		if len(endo) == 0 {
			continue
		}

		// Rename every fact id by a shifted random bijection.
		vars := circuit.Vars(elin)
		targets := make([]circuit.Var, len(vars))
		for i := range targets {
			targets[i] = circuit.Var(20 + i + 1)
		}
		rng.Shuffle(len(targets), func(i, j int) { targets[i], targets[j] = targets[j], targets[i] })
		m := make(map[circuit.Var]circuit.Var, len(vars))
		for i, v := range vars {
			m[v] = targets[i]
		}
		renamed := renameCircuit(circuit.NewBuilder(), elin, m)
		renamedEndo := make([]db.FactID, len(endo))
		for i, f := range endo {
			renamedEndo[i] = db.FactID(m[circuit.Var(f)])
		}

		cache := dnnf.NewCompileCache(8)
		first, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := ExplainCircuit(context.Background(), renamed, renamedEndo, PipelineOptions{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := ExplainCircuit(context.Background(), renamed, renamedEndo, PipelineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if warm.CompileStats.CrossCallHit {
			hits++
			if !warm.CompileStats.RenamedHit {
				t.Fatalf("trial %d: hit on shifted fact ids did not relabel", trial)
			}
		}
		valuesIdentical(t, warm.Values, cold.Values, "warm (renamed hit) vs cold pipeline")
		// And the values must equal the original lineage's values pushed
		// through the renaming.
		for f, v := range first.Values {
			rf := db.FactID(m[circuit.Var(f)])
			if w := warm.Values[rf]; w == nil || w.Cmp(v) != 0 {
				t.Fatalf("trial %d: value of renamed fact %d = %v, want %v", trial, rf, warm.Values[rf], v)
			}
		}
	}
	if hits == 0 {
		t.Fatal("no renamed lineage ever hit the canonical cache")
	}
}

// TestParallelCompileSATkVectors is the race-coverage contract at the #SAT_k
// level: circuits compiled with several worker counts (including 1) must
// yield identical #SAT_k spectra on random CNFs. Run with -race this also
// exercises the concurrent builder from the consumer side.
func TestParallelCompileSATkVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 30; trial++ {
		f := randomTestCNF(rng, 2+rng.Intn(6), 1+rng.Intn(10))
		universe := f.Vars()
		serial, _, err := dnnf.Compile(context.Background(), f, dnnf.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := PadToUniverse(ComputeAllSATk(serial), len(universe)-len(serial.Vars()))
		for _, workers := range []int{1, 2, 4, 8} {
			par, _, err := dnnf.Compile(context.Background(), f, dnnf.Options{Workers: workers})
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			got := PadToUniverse(ComputeAllSATk(par), len(universe)-len(par.Vars()))
			if len(got) != len(want) {
				t.Fatalf("trial %d workers=%d: spectrum length %d, want %d", trial, workers, len(got), len(want))
			}
			for k := range want {
				if got[k].Cmp(want[k]) != 0 {
					t.Fatalf("trial %d workers=%d: #SAT_%d = %v, want %v", trial, workers, k, got[k], want[k])
				}
			}
		}
	}
}

// TestPipelineParallelCompileMatchesSerial runs the whole exact pipeline
// with a parallel compiler on the flights fixture and checks the values
// against the sequential-compiler run.
func TestPipelineParallelCompileMatchesSerial(t *testing.T) {
	elin, endo, fs := flightsELin(t)
	serial, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{CompileWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{CompileWorkers: workers})
		if err != nil {
			t.Fatalf("compile workers=%d: %v", workers, err)
		}
		valuesIdentical(t, par.Values, serial.Values, "parallel-compile vs serial-compile pipeline")
		ratEq(t, par.Values[fs.A[1].ID], 43, 105, "parallel-compile Shapley(a1)")
	}
}
