package core

import (
	"context"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/db"
)

// TestBanzhafAgainstNaive cross-checks the circuit-based Banzhaf computation
// against 2^n enumeration on random monotone lineages.
func TestBanzhafAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 40; trial++ {
		cb := circuit.NewBuilder()
		nVars := 2 + rng.Intn(5)
		elin := randomMonotoneCircuit(rng, cb, nVars, 3)
		universe := nVars + rng.Intn(2)
		endo := make([]db.FactID, universe)
		for i := range endo {
			endo[i] = db.FactID(i + 1)
		}
		res, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := BanzhafAll(res.DNNF, endo)
		game := func(subset map[db.FactID]bool) bool {
			assign := make(map[circuit.Var]bool, len(subset))
			for id, in := range subset {
				assign[circuit.Var(id)] = in
			}
			return circuit.Eval(elin, assign)
		}
		want, err := NaiveBanzhaf(game, endo)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range endo {
			if got[f].Cmp(want[f]) != 0 {
				t.Fatalf("trial %d fact %d: Banzhaf = %v, naive = %v\n%s",
					trial, f, got[f], want[f], circuit.String(elin))
			}
		}
	}
}

// TestBanzhafFlights verifies the flights example: Banzhaf and Shapley agree
// on the ranking even though the values differ.
func TestBanzhafFlights(t *testing.T) {
	elin, endo, fs := flightsELin(t)
	res, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bz := BanzhafAll(res.DNNF, endo)
	// a1 is critical whenever no other route exists: C[a1→1] is a
	// tautology over the rest (64+... ): value computed by hand:
	// #SAT(C1)=2^7, #SAT(C0)=|models of q2-part over 7 vars|.
	// Sanity: a1 strictly dominates a2, which dominates a6; a8 is null.
	if bz[fs.A[1].ID].Cmp(bz[fs.A[2].ID]) <= 0 {
		t.Errorf("Banzhaf(a1)=%v not greater than Banzhaf(a2)=%v", bz[fs.A[1].ID], bz[fs.A[2].ID])
	}
	if bz[fs.A[2].ID].Cmp(bz[fs.A[6].ID]) <= 0 {
		t.Errorf("Banzhaf(a2)=%v not greater than Banzhaf(a6)=%v", bz[fs.A[2].ID], bz[fs.A[6].ID])
	}
	if bz[fs.A[8].ID].Sign() != 0 {
		t.Errorf("Banzhaf(a8) = %v, want 0", bz[fs.A[8].ID])
	}
	// Same ranking as Shapley on this instance.
	sr := res.Values.Ranking()
	br := bz.Ranking()
	for i := range sr {
		if sr[i] != br[i] {
			t.Fatalf("Shapley and Banzhaf rankings differ at %d: %v vs %v", i, sr, br)
		}
	}
}

// TestBanzhafDictator: a dictator fact has Banzhaf value 1; dummies 0.
func TestBanzhafDictator(t *testing.T) {
	cb := circuit.NewBuilder()
	elin := cb.Variable(1)
	endo := []db.FactID{1, 2, 3}
	res, err := ExplainCircuit(context.Background(), elin, endo, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bz := BanzhafAll(res.DNNF, endo)
	if bz[1].Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("Banzhaf(dictator) = %v, want 1", bz[1])
	}
	if bz[2].Sign() != 0 || bz[3].Sign() != 0 {
		t.Errorf("Banzhaf(dummies) = %v, %v, want 0", bz[2], bz[3])
	}
}

func TestBanzhafEmpty(t *testing.T) {
	b := circuit.NewBuilder()
	res, err := ExplainCircuit(context.Background(), b.False(), nil, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := BanzhafAll(res.DNNF, nil); len(got) != 0 {
		t.Errorf("BanzhafAll over empty universe = %v", got)
	}
}

func TestNaiveBanzhafTooLarge(t *testing.T) {
	endo := make([]db.FactID, MaxNaiveFacts+1)
	for i := range endo {
		endo[i] = db.FactID(i + 1)
	}
	if _, err := NaiveBanzhaf(func(map[db.FactID]bool) bool { return true }, endo); err == nil {
		t.Error("oversized naive Banzhaf accepted")
	}
}
