package imdb

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/engine"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	if a.NumFacts() != b.NumFacts() {
		t.Fatalf("same seed produced %d vs %d facts", a.NumFacts(), b.NumFacts())
	}
	for _, rel := range a.RelationNames() {
		fa, fb := a.Relation(rel).Facts(), b.Relation(rel).Facts()
		if len(fa) != len(fb) {
			t.Fatalf("%s: %d vs %d facts", rel, len(fa), len(fb))
		}
		for i := range fa {
			if !fa[i].Tuple.Equal(fb[i].Tuple) {
				t.Fatalf("%s[%d]: %v vs %v", rel, i, fa[i].Tuple, fb[i].Tuple)
			}
		}
	}
}

func TestEndogenousRoles(t *testing.T) {
	d := Generate(DefaultConfig())
	endoRels := map[string]bool{
		"cast_info": true, "movie_companies": true,
		"movie_keyword": true, "movie_info": true,
	}
	for _, rel := range d.RelationNames() {
		for _, f := range d.Relation(rel).Facts() {
			if f.Endogenous != endoRels[rel] {
				t.Fatalf("%s fact endogenous=%v, want %v", rel, f.Endogenous, endoRels[rel])
			}
		}
	}
}

func TestForeignKeyIntegrity(t *testing.T) {
	d := Generate(DefaultConfig())
	movies := map[int64]bool{}
	for _, f := range d.Relation("title").Facts() {
		movies[f.Tuple[0].AsInt()] = true
	}
	people := map[int64]bool{}
	for _, f := range d.Relation("name").Facts() {
		people[f.Tuple[0].AsInt()] = true
	}
	companies := map[int64]bool{}
	for _, f := range d.Relation("company_name").Facts() {
		companies[f.Tuple[0].AsInt()] = true
	}
	keywords := map[int64]bool{}
	for _, f := range d.Relation("keyword").Facts() {
		keywords[f.Tuple[0].AsInt()] = true
	}
	for _, f := range d.Relation("cast_info").Facts() {
		if !people[f.Tuple[0].AsInt()] || !movies[f.Tuple[1].AsInt()] {
			t.Fatalf("cast_info dangling reference: %v", f.Tuple)
		}
	}
	for _, f := range d.Relation("movie_companies").Facts() {
		if !movies[f.Tuple[0].AsInt()] || !companies[f.Tuple[1].AsInt()] {
			t.Fatalf("movie_companies dangling reference: %v", f.Tuple)
		}
	}
	for _, f := range d.Relation("movie_keyword").Facts() {
		if !movies[f.Tuple[0].AsInt()] || !keywords[f.Tuple[1].AsInt()] {
			t.Fatalf("movie_keyword dangling reference: %v", f.Tuple)
		}
	}
}

func TestScaled(t *testing.T) {
	base := DefaultConfig()
	tiny := base.Scaled(0.001)
	if tiny.Movies < 1 || tiny.People < 1 || tiny.Companies < 1 || tiny.Keywords < 1 {
		t.Errorf("Scaled floor broken: %+v", tiny)
	}
	if got := base.Scaled(2).Movies; got != 2*base.Movies {
		t.Errorf("Scaled(2).Movies = %d, want %d", got, 2*base.Movies)
	}
}

func TestAllQueriesEvaluate(t *testing.T) {
	d := Generate(DefaultConfig())
	answered := 0
	for _, bq := range Queries() {
		b := circuit.NewBuilder()
		answers, err := engine.Eval(d, bq.Q, b, engine.Options{Mode: engine.ModeEndogenous})
		if err != nil {
			t.Fatalf("%s: %v", bq.Name, err)
		}
		if len(answers) > 0 {
			answered++
		}
		for _, a := range answers {
			for _, v := range circuit.Vars(a.Lineage) {
				f := d.Fact(db.FactID(v))
				if f == nil || !f.Endogenous {
					t.Fatalf("%s: lineage references non-endogenous fact %d", bq.Name, v)
				}
			}
		}
	}
	if answered < 8 {
		t.Errorf("only %d/%d queries produced output at default scale", answered, len(Queries()))
	}
}

// TestProvenanceIsMultiWitness verifies the paper's construction: the final
// projection makes some output tuples depend on several join witnesses
// (lineage with more facts than the join width).
func TestProvenanceIsMultiWitness(t *testing.T) {
	d := Generate(DefaultConfig())
	for _, bq := range Queries() {
		b := circuit.NewBuilder()
		answers, err := engine.Eval(d, bq.Q, b, engine.Options{Mode: engine.ModeEndogenous})
		if err != nil {
			t.Fatal(err)
		}
		wide := 0
		for _, a := range answers {
			if len(circuit.Vars(a.Lineage)) >= 2 {
				wide++
			}
		}
		if len(answers) > 3 && wide == 0 {
			t.Errorf("%s: no output tuple has multi-witness provenance", bq.Name)
		}
	}
}
