package imdb

import (
	"repro/internal/query"
)

// BenchQuery is one entry of the IMDB benchmark suite.
type BenchQuery struct {
	Name string
	Q    *query.UCQ
}

// Queries returns the IMDB suite modelled on the nine JOB-derived rows of
// Table 1 (1a, 6b, 7c, 8d, 11a, 11d, 13c, 15d, 16a). Each query ends with a
// projection over a join attribute, so one output tuple aggregates many join
// witnesses — the paper's device for making provenance challenging.
func Queries() []BenchQuery {
	return []BenchQuery{
		{
			// 1a-style: production companies of recent movies, projected on
			// company.
			Name: "1a",
			Q: query.MustParse(`
				q(cn) :- company_name(cid, cn, cc),
				         movie_companies(mid, cid, ctid, note),
				         company_type(ctid, 'production companies'),
				         title(mid, tt, kid, yr),
				         yr > 2000
			`),
		},
		{
			// 6b-style: movies with a marvel keyword and their cast,
			// projected on person.
			Name: "6b",
			Q: query.MustParse(`
				q(pn) :- name(pid, pn, g),
				         cast_info(pid, mid, rid, nr),
				         movie_keyword(mid, kwid),
				         keyword(kwid, kw),
				         title(mid, tt, kid, yr),
				         kw ~ 'marvel'
			`),
		},
		{
			// 7c-style: people cast in co-produced US movies with a
			// based-on-novel-ish keyword, projected on person.
			Name: "7c",
			Q: query.MustParse(`
				q(pn) :- name(pid, pn, g),
				         cast_info(pid, mid, rid, nr),
				         title(mid, tt, kid, yr),
				         movie_companies(mid, cid, ctid, note),
				         company_name(cid, cn, '[us]'),
				         movie_keyword(mid, kwid),
				         keyword(kwid, kw),
				         yr > 1980
			`),
		},
		{
			// 8d-style: actresses in movies of any company, projected on
			// person (large output, many witnesses per person).
			Name: "8d",
			Q: query.MustParse(`
				q(pn) :- name(pid, pn, 'f'),
				         cast_info(pid, mid, rid, nr),
				         role_type(rid, 'actress'),
				         movie_companies(mid, cid, ctid, note),
				         title(mid, tt, kid, yr)
			`),
		},
		{
			// 11a-style: distributed movies with a sequel-like keyword,
			// projected on company.
			Name: "11a",
			Q: query.MustParse(`
				q(cn) :- company_name(cid, cn, cc),
				         movie_companies(mid, cid, ctid, note),
				         company_type(ctid, 'distributors'),
				         movie_keyword(mid, kwid),
				         keyword(kwid, 'sequel'),
				         title(mid, tt, kid, yr),
				         yr > 1970
			`),
		},
		{
			// 11d-style: like 11a without the year filter and any keyword,
			// projected on company (heavier fan-out).
			Name: "11d",
			Q: query.MustParse(`
				q(cn) :- company_name(cid, cn, cc),
				         movie_companies(mid, cid, ctid, note),
				         company_type(ctid, 'distributors'),
				         movie_keyword(mid, kwid),
				         keyword(kwid, kw),
				         title(mid, tt, kid, yr)
			`),
		},
		{
			// 13c-style: rated US movies and their distributors, projected
			// on company.
			Name: "13c",
			Q: query.MustParse(`
				q(cn) :- company_name(cid, cn, '[us]'),
				         movie_companies(mid, cid, ctid, note),
				         movie_info(mid, itid, inf),
				         info_type(itid, 'rating'),
				         title(mid, tt, kid, yr),
				         kind_type(kid, 'movie')
			`),
		},
		{
			// 15d-style: genre'd movies with cast and keywords, projected
			// on genre (few output tuples, very wide provenance).
			Name: "15d",
			Q: query.MustParse(`
				q(inf) :- movie_info(mid, itid, inf),
				          info_type(itid, 'genres'),
				          cast_info(pid, mid, rid, nr),
				          name(pid, pn, g),
				          movie_keyword(mid, kwid),
				          title(mid, tt, kid, yr),
				          yr > 1960
			`),
		},
		{
			// 16a-style: people in keyword'd company movies, projected on
			// keyword.
			Name: "16a",
			Q: query.MustParse(`
				q(kw) :- keyword(kwid, kw),
				         movie_keyword(mid, kwid),
				         cast_info(pid, mid, rid, nr),
				         name(pid, pn, g),
				         movie_companies(mid, cid, ctid, note),
				         title(mid, tt, kid, yr)
			`),
		},
	}
}
