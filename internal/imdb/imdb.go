// Package imdb provides a deterministic synthetic generator for an
// IMDB-style movie schema and a query suite modelled on the Join Order
// Benchmark (JOB) queries the paper evaluates (1a, 6b, 7c, 8d, 11a, 11d,
// 13c, 15d, 16a), each with a final projection over a join attribute to
// make the provenance multi-witness, exactly as the paper does ("for each
// query we have added a (last) projection operation over one of the join
// attributes to make provenance more complex").
//
// The generator substitutes for the 1.2 GB IMDB dump: it reproduces the
// schema's join graph (title at the center; cast_info, movie_companies,
// movie_keyword, movie_info fanning out) with correlated foreign keys, so
// join fan-out — the driver of lineage size — is preserved.
package imdb

import (
	"fmt"
	"math/rand"

	"repro/internal/db"
)

// Config controls instance size.
type Config struct {
	Movies    int
	People    int
	Companies int
	Keywords  int
	// CastPerMovie is the mean cast size per movie.
	CastPerMovie int
	Seed         int64
}

// DefaultConfig returns a small instance for tests and quick benchmarks.
func DefaultConfig() Config {
	return Config{
		Movies:       60,
		People:       80,
		Companies:    15,
		Keywords:     25,
		CastPerMovie: 4,
		Seed:         7,
	}
}

// Scaled multiplies the cardinalities by factor (minimum 1 each).
func (c Config) Scaled(factor float64) Config {
	scale := func(n int) int {
		v := int(float64(n) * factor)
		if v < 1 {
			v = 1
		}
		return v
	}
	c.Movies = scale(c.Movies)
	c.People = scale(c.People)
	c.Companies = scale(c.Companies)
	c.Keywords = scale(c.Keywords)
	return c
}

var kindTypes = []string{"movie", "tv movie", "video movie", "episode"}
var roleTypes = []string{"actor", "actress", "producer", "writer", "director"}
var companyTypes = []string{"production companies", "distributors"}
var infoTypes = []string{"budget", "genres", "rating", "release dates", "votes"}
var countryCodes = []string{"[us]", "[de]", "[fr]", "[gb]", "[jp]"}
var genres = []string{"Drama", "Comedy", "Action", "Thriller", "Horror", "Documentary"}
var keywordsPool = []string{
	"sequel", "love", "murder", "based-on-novel", "revenge", "friendship",
	"dystopia", "robot", "space", "war", "marvel-cinematic-universe",
	"superhero", "character-name-in-title", "magnet", "die-hard",
}

// Generate builds the database. The association tables — cast_info,
// movie_companies, movie_keyword, movie_info — are endogenous; entity and
// type tables are exogenous.
func Generate(cfg Config) *db.Database {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := db.New()
	d.CreateRelation("kind_type", "id", "kind")
	d.CreateRelation("role_type", "id", "role")
	d.CreateRelation("company_type", "id", "kind")
	d.CreateRelation("info_type", "id", "info")
	d.CreateRelation("company_name", "id", "name", "country_code")
	d.CreateRelation("keyword", "id", "keyword")
	d.CreateRelation("title", "id", "title", "kind_id", "production_year")
	d.CreateRelation("name", "id", "name", "gender")
	d.CreateRelation("cast_info", "person_id", "movie_id", "role_id", "nr_order")
	d.CreateRelation("movie_companies", "movie_id", "company_id", "company_type_id", "note")
	d.CreateRelation("movie_keyword", "movie_id", "keyword_id")
	d.CreateRelation("movie_info", "movie_id", "info_type_id", "info")

	for i, k := range kindTypes {
		d.MustInsert("kind_type", false, db.Int(int64(i+1)), db.String(k))
	}
	for i, r := range roleTypes {
		d.MustInsert("role_type", false, db.Int(int64(i+1)), db.String(r))
	}
	for i, c := range companyTypes {
		d.MustInsert("company_type", false, db.Int(int64(i+1)), db.String(c))
	}
	for i, it := range infoTypes {
		d.MustInsert("info_type", false, db.Int(int64(i+1)), db.String(it))
	}
	for c := 1; c <= cfg.Companies; c++ {
		d.MustInsert("company_name", false,
			db.Int(int64(c)),
			db.String(fmt.Sprintf("Studio %02d", c)),
			db.String(countryCodes[rng.Intn(len(countryCodes))]))
	}
	nKw := cfg.Keywords
	if nKw > len(keywordsPool) {
		nKw = len(keywordsPool)
	}
	for k := 1; k <= nKw; k++ {
		d.MustInsert("keyword", false, db.Int(int64(k)), db.String(keywordsPool[k-1]))
	}
	for m := 1; m <= cfg.Movies; m++ {
		d.MustInsert("title", false,
			db.Int(int64(m)),
			db.String(fmt.Sprintf("Movie %03d", m)),
			db.Int(int64(1+rng.Intn(len(kindTypes)))),
			db.Int(int64(1950+rng.Intn(70))))
	}
	for p := 1; p <= cfg.People; p++ {
		gender := "m"
		if rng.Intn(2) == 0 {
			gender = "f"
		}
		d.MustInsert("name", false,
			db.Int(int64(p)),
			db.String(fmt.Sprintf("Person %03d", p)),
			db.String(gender))
	}

	// Popularity skew: a handful of people and companies appear in many
	// movies (drives large provenance for the projected queries).
	popPerson := func() int64 {
		if rng.Intn(3) == 0 {
			return int64(1 + rng.Intn(cfg.People/8+1))
		}
		return int64(1 + rng.Intn(cfg.People))
	}
	popKeyword := func() int64 {
		if rng.Intn(3) == 0 {
			return int64(1 + rng.Intn(3)) // sequel / love / murder are frequent
		}
		return int64(1 + rng.Intn(nKw))
	}
	popCompany := func() int64 {
		if rng.Intn(2) == 0 {
			return int64(1 + rng.Intn(cfg.Companies/4+1))
		}
		return int64(1 + rng.Intn(cfg.Companies))
	}

	for m := 1; m <= cfg.Movies; m++ {
		nCast := 1 + rng.Intn(2*cfg.CastPerMovie)
		for c := 0; c < nCast; c++ {
			d.MustInsert("cast_info", true,
				db.Int(popPerson()),
				db.Int(int64(m)),
				db.Int(int64(1+rng.Intn(len(roleTypes)))),
				db.Int(int64(c+1)))
		}
		nComp := 1 + rng.Intn(2)
		for c := 0; c < nComp; c++ {
			note := ""
			if rng.Intn(2) == 0 {
				note = "(co-production)"
			}
			d.MustInsert("movie_companies", true,
				db.Int(int64(m)),
				db.Int(popCompany()),
				db.Int(int64(1+rng.Intn(len(companyTypes)))),
				db.String(note))
		}
		nKws := 1 + rng.Intn(3)
		for k := 0; k < nKws; k++ {
			d.MustInsert("movie_keyword", true,
				db.Int(int64(m)),
				db.Int(popKeyword()))
		}
		// movie_info: one genre row, one rating row.
		d.MustInsert("movie_info", true,
			db.Int(int64(m)),
			db.Int(2), // genres
			db.String(genres[rng.Intn(len(genres))]))
		d.MustInsert("movie_info", true,
			db.Int(int64(m)),
			db.Int(3), // rating
			db.String(fmt.Sprintf("%d.%d", 4+rng.Intn(5), rng.Intn(10))))
	}
	return d
}
