package engine

import (
	"fmt"
	"sort"

	"repro/internal/db"
	"repro/internal/query"
)

// The streaming evaluator compiles each conjunctive query into a left-deep
// pipeline of composable iterators — scan → select → indexed-join →
// project — and executes it one row at a time: memory is O(join depth)
// instead of O(intermediate result), which is what lets grounding stream
// over datasets that do not fit the materialized evaluator's binding
// slices.
//
// Planning is greedy and statistics-free, generalizing the old pickAtom:
// atoms are ordered by bound-term count (constants count as bound, and a
// delta-pinned atom is the most selective join possible so it always goes
// first), breaking ties toward smaller relations; every step with at least
// one bound position executes as an indexed lookup against the store's
// lazily built secondary index for that (relation, bound-positions)
// pattern. Filters are pushed down to the shallowest step at which all
// their variables are bound, so failing rows are discarded before deeper
// joins ever see them.
//
// Variables live in registers assigned at plan time: a row is a flat
// []db.Value indexed by register plus one supporting fact per step, so the
// per-row cost has no map operations and no string keys.

// keyPart describes one bound position of a step's lookup key: either a
// register to read or a constant.
type keyPart struct {
	reg int // register index; -1 for a constant
	c   db.Value
}

// planFilter is a query.Filter with operands resolved to registers.
type planFilter struct {
	f        query.Filter
	leftReg  int
	rightReg int // -1 when the right operand is a constant
}

// planStep is one join level of the pipeline.
type planStep struct {
	atom   query.Atom
	pinned bool // ranges over the single delta fact instead of the relation
	// Bound positions (ascending) and how to assemble their lookup key.
	keyPos   []int
	keyParts []keyPart
	// Positions introducing new variables, and the registers they write.
	outPos []int
	outReg []int
	// Positions that must equal an earlier position of the same atom (a
	// variable repeated within the atom, first bound at eqTo).
	eqPos [][2]int // (position, earlier position)
	// Filters fully bound once this step has extended the row.
	filters []planFilter
}

// plan is a compiled conjunctive query, valid for the database schema it
// was planned against.
type plan struct {
	steps    []planStep
	nregs    int
	headRegs []int
}

// planCQ validates the query against the database and compiles it. With
// pin >= 0, atom pin is planned as a single-fact scan (the delta-join
// primitive); it is ordered first, being maximally selective.
func planCQ(d *db.Database, cq *query.CQ, pin int) (*plan, error) {
	if err := cq.Validate(); err != nil {
		return nil, err
	}
	for _, a := range cq.Atoms {
		rel := d.Relation(a.Relation)
		if rel == nil {
			return nil, fmt.Errorf("engine: %w %q", db.ErrUnknownRelation, a.Relation)
		}
		if len(a.Args) != rel.Schema.Arity() {
			return nil, fmt.Errorf("atom %s: relation has arity %d: %w", a, rel.Schema.Arity(), db.ErrArity)
		}
	}

	p := &plan{}
	regOf := make(map[string]int)
	reg := func(v string) int {
		r, ok := regOf[v]
		if !ok {
			r = p.nregs
			regOf[v] = r
			p.nregs++
		}
		return r
	}
	bound := make(map[string]bool)

	remaining := make([]int, len(cq.Atoms))
	for i := range remaining {
		remaining[i] = i
	}
	pendingFilters := append([]query.Filter(nil), cq.Filters...)

	for len(remaining) > 0 {
		idx := nextAtom(d, cq, remaining, bound, pin)
		for i, r := range remaining {
			if r == idx {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
		atom := cq.Atoms[idx]
		st := planStep{atom: atom, pinned: idx == pin}
		firstPos := make(map[string]int)
		for i, t := range atom.Args {
			switch {
			case !t.IsVar():
				st.keyPos = append(st.keyPos, i)
				st.keyParts = append(st.keyParts, keyPart{reg: -1, c: t.Const})
			case bound[t.Var]:
				st.keyPos = append(st.keyPos, i)
				st.keyParts = append(st.keyParts, keyPart{reg: regOf[t.Var]})
			case firstPos[t.Var] != 0:
				// Repeated new variable within the atom: equality check
				// against its first position.
				st.eqPos = append(st.eqPos, [2]int{i, firstPos[t.Var] - 1})
			default:
				firstPos[t.Var] = i + 1 // +1 so position 0 is distinguishable from absent
				st.outPos = append(st.outPos, i)
				st.outReg = append(st.outReg, reg(t.Var))
			}
		}
		for _, v := range atom.Vars() {
			bound[v] = true
		}
		// Push down every filter whose variables are now all bound.
		var stillPending []query.Filter
		for _, f := range pendingFilters {
			if bound[f.Left] && (!f.Right.IsVar() || bound[f.Right.Var]) {
				pf := planFilter{f: f, leftReg: regOf[f.Left], rightReg: -1}
				if f.Right.IsVar() {
					pf.rightReg = regOf[f.Right.Var]
				}
				st.filters = append(st.filters, pf)
			} else {
				stillPending = append(stillPending, f)
			}
		}
		pendingFilters = stillPending
		p.steps = append(p.steps, st)
	}
	if len(pendingFilters) > 0 {
		// Unreachable after cq.Validate (every filter variable occurs in
		// some atom), kept as a defensive mirror of the old evaluator.
		return nil, fmt.Errorf("filters %v reference unbound variables", pendingFilters)
	}
	p.headRegs = make([]int, len(cq.Head))
	for i, h := range cq.Head {
		p.headRegs[i] = regOf[h]
	}
	return p, nil
}

// nextAtom greedily selects the next atom to join: the one with the most
// bound terms (constants count as bound), preferring smaller relations on
// ties — both selectivity proxies that need no statistics. A pinned atom
// (the single-fact delta atom) always goes first: it is the most selective
// join possible.
func nextAtom(d *db.Database, cq *query.CQ, remaining []int, bound map[string]bool, pin int) int {
	best, bestScore, bestLen := remaining[0], -1, 0
	for _, idx := range remaining {
		if idx == pin {
			return idx
		}
		score := 0
		for _, t := range cq.Atoms[idx].Args {
			if !t.IsVar() || bound[t.Var] {
				score++
			}
		}
		n := d.Relation(cq.Atoms[idx].Relation).Len()
		if score > bestScore || (score == bestScore && n < bestLen) {
			best, bestScore, bestLen = idx, score, n
		}
	}
	return best
}

// run streams the plan's result rows. yield receives the register file and
// the per-step support facts — both reused across rows; the callback must
// copy what it keeps. Returning false stops the stream. pinFact is the
// single fact the pinned step ranges over (nil when the plan has no pin).
func (p *plan) run(d *db.Database, pinFact *db.Fact, yield func(regs []db.Value, support []*db.Fact) bool) error {
	regs := make([]db.Value, p.nregs)
	support := make([]*db.Fact, len(p.steps))
	keyBuf := make([]byte, 0, 64)
	var ferr error

	var down func(depth int) bool
	down = func(depth int) bool {
		if depth == len(p.steps) {
			return yield(regs, support)
		}
		st := &p.steps[depth]

		// Accept one candidate fact: verify the parts a lookup key did not
		// already guarantee, extend the registers, and apply this depth's
		// filters before descending.
		accept := func(f *db.Fact) bool {
			for _, eq := range st.eqPos {
				if !f.Tuple[eq[0]].Equal(f.Tuple[eq[1]]) {
					return true // skip fact, keep streaming
				}
			}
			for i, pos := range st.outPos {
				regs[st.outReg[i]] = f.Tuple[pos]
			}
			support[depth] = f
			for _, pf := range st.filters {
				r := pf.f.Right.Const
				if pf.rightReg >= 0 {
					r = regs[pf.rightReg]
				}
				ok, err := pf.f.EvalValues(regs[pf.leftReg], r)
				if err != nil {
					ferr = err
					return false
				}
				if !ok {
					return true
				}
			}
			return down(depth + 1)
		}

		if st.pinned {
			// Single-fact scan: the lookup key's guarantees must be checked
			// explicitly against the pinned fact.
			for i, pos := range st.keyPos {
				want := st.keyParts[i].c
				if st.keyParts[i].reg >= 0 {
					want = regs[st.keyParts[i].reg]
				}
				if !pinFact.Tuple[pos].Equal(want) {
					return true
				}
			}
			return accept(pinFact)
		}

		rel := d.Relation(st.atom.Relation)
		if len(st.keyPos) == 0 {
			for f := range rel.Scan() {
				if !accept(f) {
					return false
				}
			}
			return true
		}
		keyBuf = keyBuf[:0]
		for _, kp := range st.keyParts {
			v := kp.c
			if kp.reg >= 0 {
				v = regs[kp.reg]
			}
			keyBuf = db.AppendValueKey(keyBuf, v)
		}
		for f := range rel.Lookup(st.keyPos, db.Key(keyBuf)) {
			if !accept(f) {
				return false
			}
		}
		return true
	}

	down(0)
	return ferr
}

// sortedKeyPositions is a sanity hook used by tests: Lookup contracts
// require ascending positions, which planCQ produces by construction
// (positions are visited in order).
func (p *plan) sortedKeyPositions() bool {
	for _, st := range p.steps {
		if !sort.IntsAreSorted(st.keyPos) {
			return false
		}
	}
	return true
}
