package engine

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/flights"
	"repro/internal/query"
)

// TestLineageSemantics is the engine's central correctness property: the
// endogenous lineage circuit, evaluated at a subset E of endogenous facts,
// must agree with re-running the query over the sub-database Dx ∪ E — for
// every one of the 2^8 subsets of the running example.
func TestLineageSemantics(t *testing.T) {
	d, _ := flights.Build()
	q := flights.Query()
	b := circuit.NewBuilder()
	elin, err := EvalBoolean(d, q, b, Options{Mode: ModeEndogenous})
	if err != nil {
		t.Fatal(err)
	}
	endo := d.EndogenousFacts()
	for mask := 0; mask < 1<<len(endo); mask++ {
		subset := make(map[db.FactID]bool)
		assign := make(map[circuit.Var]bool)
		for i, f := range endo {
			in := mask&(1<<i) != 0
			subset[f.ID] = in
			assign[circuit.Var(f.ID)] = in
		}
		sub := d.WithEndogenousSubset(subset)
		b2 := circuit.NewBuilder()
		lin, err := EvalBoolean(sub, q, b2, Options{Mode: ModeEndogenous})
		if err != nil {
			t.Fatal(err)
		}
		want := lin.Kind != circuit.KindConst || lin.Val // non-false lineage ⇒ some derivation
		// A derivation exists iff lineage isn't constant-false; but with
		// facts fixed in the sub-database the lineage may be a variable
		// circuit. Evaluate it with everything present.
		all := make(map[circuit.Var]bool)
		for _, f := range sub.EndogenousFacts() {
			all[circuit.Var(f.ID)] = true
		}
		want = circuit.Eval(lin, all)
		if got := circuit.Eval(elin, assign); got != want {
			t.Fatalf("subset %08b: ELin = %v, direct evaluation = %v", mask, got, want)
		}
	}
}

func TestFlightsExpectedDNF(t *testing.T) {
	// Example 4.2: ELin(q) ≡ a1 ∨ (a2∧a4) ∨ (a2∧a5) ∨ (a3∧a4) ∨ (a3∧a5) ∨ (a6∧a7).
	d, fs := flights.Build()
	b := circuit.NewBuilder()
	elin, err := EvalBoolean(d, flights.Query(), b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	id := func(i int) circuit.Var { return circuit.Var(fs.A[i].ID) }
	want := b.Or(
		b.Variable(id(1)),
		b.And(b.Variable(id(2)), b.Variable(id(4))),
		b.And(b.Variable(id(2)), b.Variable(id(5))),
		b.And(b.Variable(id(3)), b.Variable(id(4))),
		b.And(b.Variable(id(3)), b.Variable(id(5))),
		b.And(b.Variable(id(6)), b.Variable(id(7))),
	)
	// Compare as Boolean functions over a1..a8.
	assign := make(map[circuit.Var]bool)
	for mask := 0; mask < 1<<8; mask++ {
		for i := 1; i <= 8; i++ {
			assign[id(i)] = mask&(1<<(i-1)) != 0
		}
		if circuit.Eval(elin, assign) != circuit.Eval(want, assign) {
			t.Fatalf("lineage differs from Example 4.2 DNF at %v\ngot: %s", assign, circuit.String(elin))
		}
	}
}

func TestModeFullKeepsExogenousVariables(t *testing.T) {
	d, _ := flights.Build()
	b := circuit.NewBuilder()
	lin, err := EvalBoolean(d, flights.DirectQuery(), b, Options{Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	vars := circuit.Vars(lin)
	// q1's only derivation is a1 ∧ b1 ∧ b8: three variables in full mode.
	if len(vars) != 3 {
		t.Fatalf("full lineage has %d variables, want 3 (a1, b1, b8): %s", len(vars), circuit.String(lin))
	}
	b2 := circuit.NewBuilder()
	elin, err := EvalBoolean(d, flights.DirectQuery(), b2, Options{Mode: ModeEndogenous})
	if err != nil {
		t.Fatal(err)
	}
	if len(circuit.Vars(elin)) != 1 {
		t.Fatalf("endogenous lineage has %d variables, want 1: %s",
			len(circuit.Vars(elin)), circuit.String(elin))
	}
}

func TestNonBooleanProjection(t *testing.T) {
	d := db.New()
	d.CreateRelation("R", "x", "y")
	f1 := d.MustInsert("R", true, db.Int(1), db.Int(10))
	f2 := d.MustInsert("R", true, db.Int(1), db.Int(20))
	f3 := d.MustInsert("R", true, db.Int(2), db.Int(30))

	q := query.MustParse(`q(x) :- R(x, y)`)
	b := circuit.NewBuilder()
	answers, err := Eval(d, q, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Fatalf("got %d answers, want 2", len(answers))
	}
	// Answer x=1 has lineage f1 ∨ f2; answer x=2 has lineage f3.
	a1 := answers[0]
	if !a1.Tuple.Equal(db.Tuple{db.Int(1)}) {
		t.Fatalf("first answer = %v, want (1)", a1.Tuple)
	}
	ev := func(n *circuit.Node, on ...db.FactID) bool {
		m := map[circuit.Var]bool{}
		for _, id := range on {
			m[circuit.Var(id)] = true
		}
		return circuit.Eval(n, m)
	}
	if !ev(a1.Lineage, f1.ID) || !ev(a1.Lineage, f2.ID) || ev(a1.Lineage) {
		t.Errorf("lineage of (1) wrong: %s", circuit.String(a1.Lineage))
	}
	if !ev(answers[1].Lineage, f3.ID) || ev(answers[1].Lineage, f1.ID, f2.ID) {
		t.Errorf("lineage of (2) wrong: %s", circuit.String(answers[1].Lineage))
	}
}

func TestSelfJoin(t *testing.T) {
	// Paths of length 2 in a tiny graph; E appears twice (self-join).
	d := db.New()
	d.CreateRelation("E", "src", "dst")
	e12 := d.MustInsert("E", true, db.Int(1), db.Int(2))
	e23 := d.MustInsert("E", true, db.Int(2), db.Int(3))
	d.MustInsert("E", true, db.Int(3), db.Int(1))

	q := query.MustParse(`q(x, z) :- E(x, y), E(y, z)`)
	b := circuit.NewBuilder()
	answers, err := Eval(d, q, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 3 {
		t.Fatalf("got %d answers, want 3 (each 2-path)", len(answers))
	}
	// The path 1→2→3 must depend on exactly e12 and e23.
	var found bool
	for _, a := range answers {
		if a.Tuple.Equal(db.Tuple{db.Int(1), db.Int(3)}) {
			found = true
			vars := circuit.Vars(a.Lineage)
			if len(vars) != 2 || vars[0] != circuit.Var(e12.ID) || vars[1] != circuit.Var(e23.ID) {
				t.Errorf("lineage of (1,3) uses %v, want {%d, %d}", vars, e12.ID, e23.ID)
			}
		}
	}
	if !found {
		t.Error("answer (1,3) missing")
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	d := db.New()
	d.CreateRelation("E", "src", "dst")
	d.MustInsert("E", true, db.Int(1), db.Int(1))
	d.MustInsert("E", true, db.Int(1), db.Int(2))

	q := query.MustParse(`q(x) :- E(x, x)`)
	b := circuit.NewBuilder()
	answers, err := Eval(d, q, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || !answers[0].Tuple.Equal(db.Tuple{db.Int(1)}) {
		t.Fatalf("self-loop query returned %v, want [(1)]", answers)
	}
}

func TestFilters(t *testing.T) {
	d := db.New()
	d.CreateRelation("P", "name", "price")
	cheap := d.MustInsert("P", true, db.String("pen"), db.Int(2))
	d.MustInsert("P", true, db.String("car"), db.Int(9000))

	q := query.MustParse(`q(n) :- P(n, p), p < 100`)
	b := circuit.NewBuilder()
	answers, err := Eval(d, q, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || !answers[0].Tuple.Equal(db.Tuple{db.String("pen")}) {
		t.Fatalf("filter query returned %v, want [(pen)]", answers)
	}
	if vars := circuit.Vars(answers[0].Lineage); len(vars) != 1 || vars[0] != circuit.Var(cheap.ID) {
		t.Errorf("lineage = %v", vars)
	}
}

func TestVarToVarFilter(t *testing.T) {
	d := db.New()
	d.CreateRelation("R", "a", "b")
	d.MustInsert("R", true, db.Int(1), db.Int(2))
	d.MustInsert("R", true, db.Int(5), db.Int(3))

	q := query.MustParse(`q(x) :- R(x, y), x < y`)
	b := circuit.NewBuilder()
	answers, err := Eval(d, q, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || !answers[0].Tuple.Equal(db.Tuple{db.Int(1)}) {
		t.Fatalf("got %v, want [(1)]", answers)
	}
}

func TestStringFilters(t *testing.T) {
	d := db.New()
	d.CreateRelation("C", "name")
	d.MustInsert("C", true, db.String("Acme Inc"))
	d.MustInsert("C", true, db.String("Bolt Ltd"))

	q := query.MustParse(`q(n) :- C(n), n ~ 'Inc'`)
	b := circuit.NewBuilder()
	answers, err := Eval(d, q, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || answers[0].Tuple[0].AsString() != "Acme Inc" {
		t.Fatalf("contains filter returned %v", answers)
	}

	q2 := query.MustParse(`q(n) :- C(n), n ^ 'Bolt'`)
	answers, err = Eval(d, q2, circuit.NewBuilder(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || answers[0].Tuple[0].AsString() != "Bolt Ltd" {
		t.Fatalf("prefix filter returned %v", answers)
	}
}

func TestUnionMergesLineage(t *testing.T) {
	d := db.New()
	d.CreateRelation("R", "x")
	d.CreateRelation("S", "x")
	fr := d.MustInsert("R", true, db.Int(1))
	fs := d.MustInsert("S", true, db.Int(1))

	q := query.MustParse(`
		q(x) :- R(x)
		q(x) :- S(x)
	`)
	b := circuit.NewBuilder()
	answers, err := Eval(d, q, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Fatalf("got %d answers, want 1 (deduplicated)", len(answers))
	}
	l := answers[0].Lineage
	ev := func(on ...db.FactID) bool {
		m := map[circuit.Var]bool{}
		for _, id := range on {
			m[circuit.Var(id)] = true
		}
		return circuit.Eval(l, m)
	}
	if !ev(fr.ID) || !ev(fs.ID) || ev() {
		t.Errorf("union lineage wrong: %s", circuit.String(l))
	}
}

func TestEvalErrors(t *testing.T) {
	d := db.New()
	d.CreateRelation("R", "x")
	b := circuit.NewBuilder()
	if _, err := Eval(d, query.MustParse(`q(x) :- Nope(x)`), b, Options{}); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := Eval(d, query.MustParse(`q(x) :- R(x, y)`), b, Options{}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := EvalBoolean(d, query.MustParse(`q(x) :- R(x)`), b, Options{}); err == nil {
		t.Error("EvalBoolean accepted non-Boolean query")
	}
}

func TestBooleanFalseLineage(t *testing.T) {
	d := db.New()
	d.CreateRelation("R", "x")
	b := circuit.NewBuilder()
	lin, err := EvalBoolean(d, query.MustParse(`q() :- R(5)`), b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lin != b.False() {
		t.Errorf("empty-derivation Boolean lineage = %s, want ⊥", circuit.String(lin))
	}
}
