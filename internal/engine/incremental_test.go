package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/query"
)

// checkAgainstEval asserts that the incrementally maintained answers are
// semantically identical to a cold Eval on the same database: same tuples,
// and for each tuple a lineage with the same satisfying assignments over the
// union of both variable sets.
func checkAgainstEval(t *testing.T, inc *Incremental, d *db.Database, q *query.UCQ, opts Options) {
	t.Helper()
	cb := circuit.NewBuilder()
	cold, err := Eval(d, q, cb, opts)
	if err != nil {
		t.Fatalf("cold Eval: %v", err)
	}
	live := inc.Answers()
	if len(live) != len(cold) {
		t.Fatalf("incremental has %d answers, cold Eval %d", len(live), len(cold))
	}
	for i := range cold {
		if !cold[i].Tuple.Equal(live[i].Tuple) {
			t.Fatalf("answer %d: tuple %v vs cold %v", i, live[i].Tuple, cold[i].Tuple)
		}
		vars := map[circuit.Var]bool{}
		for _, v := range circuit.Vars(cold[i].Lineage) {
			vars[v] = true
		}
		for _, v := range circuit.Vars(live[i].Lineage) {
			vars[v] = true
		}
		universe := make([]circuit.Var, 0, len(vars))
		for v := range vars {
			universe = append(universe, v)
		}
		if len(universe) > 14 {
			t.Fatalf("universe too large for brute force: %d", len(universe))
		}
		assign := make(map[circuit.Var]bool, len(universe))
		var rec func(int)
		rec = func(j int) {
			if j == len(universe) {
				if circuit.Eval(cold[i].Lineage, assign) != circuit.Eval(live[i].Lineage, assign) {
					t.Fatalf("answer %v: lineages differ under %v", cold[i].Tuple, assign)
				}
				return
			}
			assign[universe[j]] = false
			rec(j + 1)
			assign[universe[j]] = true
			rec(j + 1)
		}
		rec(0)
	}
}

func TestIncrementalMatchesEvalUnderRandomUpdates(t *testing.T) {
	queries := []string{
		`q(x) :- R(x, y), S(y, z)`,
		`q() :- R(x, y), R(y, z)`, // self-join, Boolean
		"q(x) :- R(x, y), S(y, z)\nq(x) :- T(x)",
		`q(x) :- R(x, y), T(y), y > 1`,
	}
	for qi, text := range queries {
		t.Run(fmt.Sprintf("q%d", qi), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + qi)))
			for trial := 0; trial < 8; trial++ {
				d := db.New()
				d.CreateRelation("R", "a", "b")
				d.CreateRelation("S", "a", "b")
				d.CreateRelation("T", "a")
				randFact := func() (string, []db.Value) {
					switch rng.Intn(3) {
					case 0:
						return "R", []db.Value{db.Int(int64(rng.Intn(4))), db.Int(int64(rng.Intn(4)))}
					case 1:
						return "S", []db.Value{db.Int(int64(rng.Intn(4))), db.Int(int64(rng.Intn(4)))}
					default:
						return "T", []db.Value{db.Int(int64(rng.Intn(4)))}
					}
				}
				for i := 0; i < 4; i++ {
					rel, vals := randFact()
					d.MustInsert(rel, rng.Intn(4) != 0, vals...)
				}
				q, err := query.Parse(text)
				if err != nil {
					t.Fatal(err)
				}
				opts := Options{Mode: ModeEndogenous}
				inc, err := NewIncremental(context.Background(), d, q, circuit.NewBuilder(), opts)
				if err != nil {
					t.Fatal(err)
				}
				checkAgainstEval(t, inc, d, q, opts)
				for step := 0; step < 10; step++ {
					if rng.Intn(2) == 0 && d.NumFacts() > 0 {
						// Delete a random live fact.
						var ids []db.FactID
						for _, name := range d.RelationNames() {
							for _, f := range d.Relation(name).Facts() {
								ids = append(ids, f.ID)
							}
						}
						id := ids[rng.Intn(len(ids))]
						if err := d.Delete(id); err != nil {
							t.Fatal(err)
						}
						inc.Delete(context.Background(), id)
					} else {
						rel, vals := randFact()
						f := d.MustInsert(rel, rng.Intn(4) != 0, vals...)
						if _, err := inc.Insert(context.Background(), f); err != nil {
							t.Fatal(err)
						}
					}
					checkAgainstEval(t, inc, d, q, opts)
				}
			}
		})
	}
}

func TestIncrementalEpochsAndChangedTuples(t *testing.T) {
	d := db.New()
	d.CreateRelation("R", "a", "b")
	d.CreateRelation("S", "a", "b")
	r1 := d.MustInsert("R", true, db.Int(1), db.Int(2))
	d.MustInsert("S", true, db.Int(2), db.Int(3))
	q, err := query.Parse(`q(x) :- R(x, y), S(y, z)`)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(context.Background(), d, q, circuit.NewBuilder(), Options{Mode: ModeEndogenous})
	if err != nil {
		t.Fatal(err)
	}
	live := inc.Live()
	if len(live) != 1 || inc.Epoch() != 0 {
		t.Fatalf("initial: %d answers, epoch %d; want 1, 0", len(live), inc.Epoch())
	}
	e0 := live[0].Epoch

	// An insert that derives nothing new must not bump any epoch.
	f := d.MustInsert("S", true, db.Int(9), db.Int(9))
	changed, err := inc.Insert(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 || inc.Epoch() != 0 {
		t.Fatalf("no-op insert: changed=%v epoch=%d", changed, inc.Epoch())
	}

	// A second witness for the same tuple changes its lineage and epoch.
	f2 := d.MustInsert("S", true, db.Int(2), db.Int(7))
	changed, err = inc.Insert(context.Background(), f2)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || !changed[0].Equal(db.Tuple{db.Int(1)}) {
		t.Fatalf("witness insert: changed=%v", changed)
	}
	live = inc.Live()
	if live[0].Epoch <= e0 {
		t.Fatalf("epoch did not advance: %d -> %d", e0, live[0].Epoch)
	}

	// Deleting the only R fact removes the answer entirely.
	if err := d.Delete(r1.ID); err != nil {
		t.Fatal(err)
	}
	gone := inc.Delete(context.Background(), r1.ID)
	if len(gone) != 1 {
		t.Fatalf("delete changed %v, want the one answer", gone)
	}
	if n := len(inc.Answers()); n != 0 {
		t.Fatalf("answers after delete = %d, want 0", n)
	}
	// Deleting a fact that supports nothing is a no-op.
	if got := inc.Delete(context.Background(), f.ID); got != nil {
		t.Fatalf("no-op delete changed %v", got)
	}
}
