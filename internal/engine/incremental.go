package engine

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/query"
	"repro/internal/trace"
)

// Incremental maintains the answers of one query over one database under
// fact inserts and deletes, without re-evaluating the query from scratch.
//
// It keeps every answer as its set of derivations (support fact sets) rather
// than as an opaque lineage circuit:
//
//   - Insert(f) runs the delta join of EvalDelta — only bindings involving f
//     are enumerated — and splices the new conjunctions into the affected
//     answers' lineage disjunctions.
//   - Delete(id) drops exactly the derivations whose support contains the
//     fact, via a fact→derivation index, and rebuilds the affected lineages
//     from the surviving derivations. For endogenous facts this coincides
//     with conditioning the lineage on f→0 (UCQ lineage is monotone); the
//     derivation-level form also handles exogenous facts, which have no
//     lineage variable to condition on.
//
// Answers are keyed by their support sets, so a derivation re-discovered
// through several delta positions (self-joins) is stored once; since the
// provenance conjunction is a function of the support set alone, the
// maintained lineage is semantically identical to a cold Eval on the
// mutated database.
//
// Each answer carries a monotonically increasing epoch stamped from the
// Incremental's mutation counter; downstream caches compare epochs to
// cheap-check whether a tuple's explanation is still valid. Incremental is
// not safe for concurrent use; callers (repro.Session) serialize access.
type Incremental struct {
	d    *db.Database
	q    *query.UCQ
	b    *circuit.Builder
	opts Options

	epoch   uint64
	answers map[string]*liveAnswer
	// byFact indexes, for every supporting fact, the answer keys and
	// derivation keys it participates in: Delete touches only these. It is
	// built lazily on the first mutation, so one-shot evaluate-and-discard
	// users (repro.Explain) never pay for it.
	byFact map[db.FactID]map[string]map[string]bool
}

// LiveAnswer is one maintained output tuple: the Answer plus the bookkeeping
// the session layer needs (a stable key and the epoch of its last change).
type LiveAnswer struct {
	Answer
	// Key is the answer's stable identity (the tuple key).
	Key string
	// Epoch is the mutation count at which this answer's lineage last
	// changed; an unchanged epoch guarantees an unchanged lineage.
	Epoch uint64
}

type liveAnswer struct {
	tuple   db.Tuple
	derivs  map[string][]*db.Fact
	lineage *circuit.Node // nil when dirty (a derivation was added/removed)
	epoch   uint64
}

// NewIncremental evaluates the query once and returns the maintained state.
// When ctx carries a trace collector, the initial grounding is recorded as a
// "ground" span annotated with the disjunct and answer counts.
func NewIncremental(ctx context.Context, d *db.Database, q *query.UCQ, b *circuit.Builder, opts Options) (*Incremental, error) {
	_, sp := trace.Start(ctx, "ground")
	inc := &Incremental{
		d:       d,
		q:       q,
		b:       b,
		opts:    opts,
		answers: make(map[string]*liveAnswer),
	}
	for i := range q.Disjuncts {
		derivs, err := deriveCQ(d, &q.Disjuncts[i], -1, nil)
		if err != nil {
			sp.Set("error", err.Error())
			sp.End()
			return nil, fmt.Errorf("engine: disjunct %d: %w", i, err)
		}
		for _, dv := range derivs {
			inc.addDerivation(dv)
		}
	}
	sp.Set("disjuncts", len(q.Disjuncts))
	sp.Set("answers", len(inc.answers))
	sp.End()
	return inc, nil
}

// Epoch returns the mutation counter: it is bumped once per Insert or
// Delete that changed at least one answer.
func (inc *Incremental) Epoch() uint64 { return inc.epoch }

// Len returns the current number of answers without rebuilding any lineage.
func (inc *Incremental) Len() int { return len(inc.answers) }

// ensureIndex builds the fact→derivation reverse index from the current
// derivation sets; later addDerivation/Delete calls keep it consistent.
func (inc *Incremental) ensureIndex() {
	if inc.byFact != nil {
		return
	}
	inc.byFact = make(map[db.FactID]map[string]map[string]bool)
	for key, a := range inc.answers {
		for dkey, facts := range a.derivs {
			inc.indexDerivation(key, dkey, facts)
		}
	}
}

// indexDerivation links one derivation into the reverse index.
func (inc *Incremental) indexDerivation(key, dkey string, facts []*db.Fact) {
	for _, f := range facts {
		m := inc.byFact[f.ID]
		if m == nil {
			m = make(map[string]map[string]bool)
			inc.byFact[f.ID] = m
		}
		if m[key] == nil {
			m[key] = make(map[string]bool)
		}
		m[key][dkey] = true
	}
}

// Insert delta-evaluates the already-inserted fact f and splices any new
// derivations into the maintained answers. It returns the tuples whose
// lineage changed (including tuples that newly appeared). The delta join is
// recorded as a "delta-insert" span when ctx carries a trace collector.
func (inc *Incremental) Insert(ctx context.Context, f *db.Fact) ([]db.Tuple, error) {
	_, sp := trace.Start(ctx, "delta-insert")
	derivs, err := EvalDelta(inc.d, inc.q, f)
	if err != nil {
		sp.Set("error", err.Error())
		sp.End()
		return nil, err
	}
	changedSet := make(map[string]*liveAnswer)
	for _, dv := range derivs {
		key := dv.Tuple.Key()
		dkey := supportKey(dv.Facts)
		if a, ok := inc.answers[key]; ok {
			if _, dup := a.derivs[dkey]; dup {
				continue
			}
		}
		if len(changedSet) == 0 {
			inc.epoch++
		}
		changedSet[key] = inc.addDerivation(dv)
	}
	changed := make([]db.Tuple, 0, len(changedSet))
	for _, a := range changedSet {
		a.epoch = inc.epoch
		changed = append(changed, a.tuple)
	}
	sp.Set("touched", len(changed))
	sp.End()
	return changed, nil
}

// Delete removes every derivation supported by the fact with the given ID
// and returns the tuples whose lineage changed (including tuples that
// vanished from the answer set). The fact may already be gone from the
// database; only the index is consulted. The unlinking is recorded as a
// "delta-delete" span when ctx carries a trace collector.
func (inc *Incremental) Delete(ctx context.Context, id db.FactID) []db.Tuple {
	_, sp := trace.Start(ctx, "delta-delete")
	inc.ensureIndex()
	touched := inc.byFact[id]
	if len(touched) == 0 {
		sp.Set("touched", 0)
		sp.End()
		return nil
	}
	inc.epoch++
	var changed []db.Tuple
	for akey, dkeys := range touched {
		a := inc.answers[akey]
		for dkey := range dkeys {
			support := a.derivs[dkey]
			delete(a.derivs, dkey)
			// Unlink the derivation from every other supporting fact's
			// index so the reverse index never references dead entries.
			for _, f := range support {
				if f.ID == id {
					continue
				}
				if m := inc.byFact[f.ID]; m != nil {
					delete(m[akey], dkey)
					if len(m[akey]) == 0 {
						delete(m, akey)
					}
					if len(m) == 0 {
						delete(inc.byFact, f.ID)
					}
				}
			}
		}
		changed = append(changed, a.tuple)
		if len(a.derivs) == 0 {
			delete(inc.answers, akey)
			continue
		}
		a.lineage = nil
		a.epoch = inc.epoch
	}
	delete(inc.byFact, id)
	sp.Set("touched", len(changed))
	sp.End()
	return changed
}

// addDerivation records the derivation, marking its answer dirty; the
// answer is created if the tuple is new. Returns the (possibly new) answer.
func (inc *Incremental) addDerivation(dv Derivation) *liveAnswer {
	key := dv.Tuple.Key()
	a, ok := inc.answers[key]
	if !ok {
		a = &liveAnswer{tuple: dv.Tuple, derivs: make(map[string][]*db.Fact), epoch: inc.epoch}
		inc.answers[key] = a
	}
	dkey := supportKey(dv.Facts)
	if _, dup := a.derivs[dkey]; dup {
		return a
	}
	a.derivs[dkey] = dv.Facts
	a.lineage = nil
	if inc.byFact != nil {
		inc.indexDerivation(key, dkey, dv.Facts)
	}
	return a
}

// Live returns the current answers sorted by tuple, rebuilding the lineage
// of any answer whose derivation set changed since the last call. Lineage
// reconstruction is deterministic (derivations in sorted-key order) and
// touches only dirty answers.
func (inc *Incremental) Live() []LiveAnswer {
	keys := make([]string, 0, len(inc.answers))
	for k := range inc.answers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]LiveAnswer, 0, len(keys))
	for _, k := range keys {
		a := inc.answers[k]
		if a.lineage == nil {
			dkeys := make([]string, 0, len(a.derivs))
			for dk := range a.derivs {
				dkeys = append(dkeys, dk)
			}
			sort.Strings(dkeys)
			conjs := make([]*circuit.Node, len(dkeys))
			for i, dk := range dkeys {
				conjs[i] = Derivation{Tuple: a.tuple, Facts: a.derivs[dk]}.Conjunction(inc.b, inc.opts)
			}
			a.lineage = inc.b.Or(conjs...)
		}
		out = append(out, LiveAnswer{
			Answer: Answer{Tuple: a.tuple, Lineage: a.lineage},
			Key:    k,
			Epoch:  a.epoch,
		})
	}
	return out
}

// Answers returns the current answers in Eval's format and order.
func (inc *Incremental) Answers() []Answer {
	live := inc.Live()
	out := make([]Answer, len(live))
	for i, a := range live {
		out[i] = a.Answer
	}
	return out
}
