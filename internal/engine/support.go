package engine

import (
	"encoding/binary"
	"sort"

	"repro/internal/db"
)

// Support-set canonicalization shared by the one-shot evaluator and the
// incremental layer. A derivation's identity is exactly its support set —
// the sorted, deduplicated facts its witnessing join used — so both layers
// must agree on one normal form and one key encoding; these two functions
// are that single definition (previously engine.normalizeSupport and
// incremental's derivKey each hand-rolled their own).

// normalizeSupport sorts a derivation's supporting facts by ID and removes
// duplicates (one fact can witness several atoms of a self-join).
func normalizeSupport(facts []*db.Fact) []*db.Fact {
	out := make([]*db.Fact, len(facts))
	copy(out, facts)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	w := 0
	for i, f := range out {
		if i > 0 && out[w-1].ID == f.ID {
			continue
		}
		out[w] = f
		w++
	}
	return out[:w]
}

// supportKey encodes a normalized support set (sorted by ID, no
// duplicates — the form normalizeSupport returns and Derivation.Facts
// carries) as a compact map key: uvarint deltas of the fact IDs, no
// per-fact string formatting.
func supportKey(facts []*db.Fact) string {
	buf := make([]byte, 0, 2*len(facts))
	prev := uint64(0)
	for _, f := range facts {
		id := uint64(f.ID)
		buf = binary.AppendUvarint(buf, id-prev)
		prev = id
	}
	return string(buf)
}
