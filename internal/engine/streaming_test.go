package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/query"
)

// newBackendDB returns an empty database on the named backend.
func newBackendDB(t *testing.T, backend string) *db.Database {
	t.Helper()
	d, err := db.NewOnBackend(backend, "")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// answerSig renders an answer list as comparable strings: tuple key plus
// the sorted lineage variable set (the lineage's semantics up to circuit
// structure, which the two engines may legitimately build differently).
func answerSig(answers []Answer) []string {
	out := make([]string, len(answers))
	for i, a := range answers {
		out[i] = fmt.Sprintf("%s|%v", a.Tuple.Key(), circuit.Vars(a.Lineage))
	}
	return out
}

// derivSig renders a derivation list as an order-insensitive multiset map.
func derivSig(derivs []Derivation) map[string]int {
	out := make(map[string]int)
	for _, dv := range derivs {
		out[dv.Tuple.Key()+"|"+supportKey(dv.Facts)]++
	}
	return out
}

// TestStreamingMatchesMaterializedRandom is the evaluation rewrite's
// correctness bar: on randomized databases and a query zoo covering joins,
// self-joins, constants, repeated variables, and filters, the streaming
// engine must produce answer-for-answer identical results to the
// materialized reference — on both storage backends — and deriveCQ must
// produce the identical derivation multiset.
func TestStreamingMatchesMaterializedRandom(t *testing.T) {
	queryZoo := []string{
		`q(x) :- R(x, y)`,
		`q(x, z) :- R(x, y), S(y, z)`,
		`q() :- R(x, y), S(y, z), T(z)`,
		`q(x) :- R(x, x)`,
		`q(x) :- R(x, y), R(y, z)`,
		`q(x) :- R(x, y), T(y), y > 0`,
		`q(x, y) :- R(x, y), S(y, z), x < z`,
		`q(x) :- R(x, y), S(y, z), x != z`,
		`q(x) :- R(1, x)`,
		"q(x) :- R(x, y), T(x)\nq(x) :- S(x, y), T(y)",
	}
	for _, backend := range db.Backends() {
		t.Run(backend, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 6; trial++ {
				d := newBackendDB(t, backend)
				d.CreateRelation("R", "a", "b")
				d.CreateRelation("S", "a", "b")
				d.CreateRelation("T", "a")
				n := 4 + rng.Intn(20)
				for i := 0; i < n; i++ {
					v := func() db.Value { return db.Int(int64(rng.Intn(4))) }
					switch rng.Intn(3) {
					case 0:
						d.MustInsert("R", rng.Intn(3) != 0, v(), v())
					case 1:
						d.MustInsert("S", rng.Intn(3) != 0, v(), v())
					default:
						d.MustInsert("T", rng.Intn(3) != 0, v())
					}
				}
				for qi, text := range queryZoo {
					q, err := query.Parse(text)
					if err != nil {
						t.Fatal(err)
					}
					sb, mb := circuit.NewBuilder(), circuit.NewBuilder()
					stream, err := Eval(d, q, sb, Options{Mode: ModeEndogenous})
					if err != nil {
						t.Fatalf("trial %d q%d: streaming: %v", trial, qi, err)
					}
					mat, err := EvalMaterialized(d, q, mb, Options{Mode: ModeEndogenous})
					if err != nil {
						t.Fatalf("trial %d q%d: materialized: %v", trial, qi, err)
					}
					ss, ms := answerSig(stream), answerSig(mat)
					if len(ss) != len(ms) {
						t.Fatalf("trial %d q%d: %d streaming answers, %d materialized", trial, qi, len(ss), len(ms))
					}
					for i := range ss {
						if ss[i] != ms[i] {
							t.Fatalf("trial %d q%d answer %d: streaming %s, materialized %s", trial, qi, i, ss[i], ms[i])
						}
					}
					// Derivation-level identity, disjunct by disjunct.
					for di := range q.Disjuncts {
						sd, err := deriveCQ(d, &q.Disjuncts[di], -1, nil)
						if err != nil {
							t.Fatal(err)
						}
						md, err := deriveCQMaterialized(d, &q.Disjuncts[di], -1, nil)
						if err != nil {
							t.Fatal(err)
						}
						ssig, msig := derivSig(sd), derivSig(md)
						if len(ssig) != len(msig) {
							t.Fatalf("trial %d q%d disjunct %d: %d vs %d distinct derivations",
								trial, qi, di, len(ssig), len(msig))
						}
						for k, c := range msig {
							if ssig[k] != c {
								t.Fatalf("trial %d q%d disjunct %d: derivation %q count %d, want %d",
									trial, qi, di, k, ssig[k], c)
							}
						}
					}
				}
			}
		})
	}
}

// TestStreamingDeltaMatchesMaterialized pins every atom position of a
// self-join query to a fresh fact and checks the streaming delta join
// produces the materialized engine's derivation multiset.
func TestStreamingDeltaMatchesMaterialized(t *testing.T) {
	for _, backend := range db.Backends() {
		t.Run(backend, func(t *testing.T) {
			d := newBackendDB(t, backend)
			d.CreateRelation("R", "a", "b")
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 15; i++ {
				d.MustInsert("R", true, db.Int(int64(rng.Intn(4))), db.Int(int64(rng.Intn(4))))
			}
			cq := query.CQ{
				Head: []string{"x"},
				Atoms: []query.Atom{
					{Relation: "R", Args: []query.Term{query.V("x"), query.V("y")}},
					{Relation: "R", Args: []query.Term{query.V("y"), query.V("z")}},
				},
			}
			f := d.MustInsert("R", true, db.Int(2), db.Int(3))
			for pin := 0; pin < len(cq.Atoms); pin++ {
				sd, err := deriveCQ(d, &cq, pin, f)
				if err != nil {
					t.Fatal(err)
				}
				md, err := deriveCQMaterialized(d, &cq, pin, f)
				if err != nil {
					t.Fatal(err)
				}
				ssig, msig := derivSig(sd), derivSig(md)
				if len(ssig) != len(msig) {
					t.Fatalf("pin %d: %d vs %d distinct derivations", pin, len(ssig), len(msig))
				}
				for k, c := range msig {
					if ssig[k] != c {
						t.Fatalf("pin %d: derivation %q count %d, want %d", pin, k, ssig[k], c)
					}
				}
				// Every delta derivation must actually use the pinned fact.
				for _, dv := range sd {
					found := false
					for _, sf := range dv.Facts {
						if sf.ID == f.ID {
							found = true
						}
					}
					if !found {
						t.Fatalf("pin %d: derivation %v does not use the pinned fact", pin, dv)
					}
				}
			}
		})
	}
}

// TestFilterPushdownEdgeCases covers the planner's filter placement:
// var-to-var filters whose operands bind in different atoms, filters on
// variables the head projects away, and filters alongside empty relations.
func TestFilterPushdownEdgeCases(t *testing.T) {
	d := db.New()
	d.CreateRelation("R", "a", "b")
	d.CreateRelation("S", "b", "c")
	d.CreateRelation("Empty", "x")
	d.MustInsert("R", true, db.Int(1), db.Int(10))
	d.MustInsert("R", true, db.Int(2), db.Int(20))
	d.MustInsert("R", true, db.Int(3), db.Int(30))
	d.MustInsert("S", true, db.Int(10), db.Int(5))
	d.MustInsert("S", true, db.Int(20), db.Int(25))
	d.MustInsert("S", true, db.Int(30), db.Int(25))

	run := func(text string) []Answer {
		t.Helper()
		q, err := query.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		answers, err := Eval(d, q, circuit.NewBuilder(), Options{Mode: ModeEndogenous})
		if err != nil {
			t.Fatal(err)
		}
		return answers
	}

	// Var-to-var filter with operands bound by different atoms: x from R,
	// c from S. All three join rows (1,10,5), (2,20,25), (3,30,25) satisfy
	// x < c; tightening to x + nothing else changes with x > c.
	if got := run(`q(x) :- R(x, y), S(y, c), x < c`); len(got) != 3 {
		t.Errorf("cross-atom var filter: %d answers, want 3", len(got))
	}
	if got := run(`q(x) :- R(x, y), S(y, c), x > c`); len(got) != 0 {
		t.Errorf("cross-atom var filter (none pass): %d answers, want 0", len(got))
	}
	// Same filter written with operands in the reverse binding order; the
	// surviving rows project to c ∈ {5, 25} and grouping collapses the two
	// c = 25 rows.
	if got := run(`q(c) :- S(y, c), R(x, y), c > x`); len(got) != 2 {
		t.Errorf("reverse cross-atom filter: %d answers, want 2", len(got))
	}
	// Filter on a projected-away variable: y never reaches the head but
	// still gates the join.
	if got := run(`q(x) :- R(x, y), y >= 20`); len(got) != 2 {
		t.Errorf("projected-away filter: %d answers, want 2", len(got))
	}
	// A filter that no row satisfies yields zero answers, not an error.
	if got := run(`q(x) :- R(x, y), y > 1000`); len(got) != 0 {
		t.Errorf("unsatisfiable filter: %d answers, want 0", len(got))
	}
	// Empty-relation scans yield zero derivations, not errors — with and
	// without filters attached.
	if got := run(`q(x) :- Empty(x)`); len(got) != 0 {
		t.Errorf("empty scan: %d answers, want 0", len(got))
	}
	if got := run(`q(x) :- Empty(x), R(x, y), x > 0`); len(got) != 0 {
		t.Errorf("empty join: %d answers, want 0", len(got))
	}
}

// TestPlanShapes pins down planner invariants: pinned atoms order first,
// lookup key positions are ascending, and every filter lands on a step.
func TestPlanShapes(t *testing.T) {
	d := db.New()
	d.CreateRelation("R", "a", "b")
	d.CreateRelation("S", "b", "c")
	d.MustInsert("R", true, db.Int(1), db.Int(2))
	d.MustInsert("S", true, db.Int(2), db.Int(3))

	q, err := query.Parse(`q(x) :- R(x, y), S(y, z), x < z`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := planCQ(d, &q.Disjuncts[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.steps[0].pinned {
		t.Error("pinned atom did not order first")
	}
	if !p.sortedKeyPositions() {
		t.Error("lookup key positions are not ascending")
	}
	nf := 0
	for _, st := range p.steps {
		nf += len(st.filters)
	}
	if nf != len(q.Disjuncts[0].Filters) {
		t.Errorf("%d filters placed, want %d", nf, len(q.Disjuncts[0].Filters))
	}
	// The x < z filter binds fully only after the second step.
	if len(p.steps[0].filters) != 0 {
		t.Error("filter pushed above the step binding its variables")
	}
}
