package engine

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/query"
)

// The materialized evaluator: the engine's original strategy, kept as the
// reference oracle for the streaming pipeline (property tests assert
// derivation-set identity between the two) and as the baseline side of the
// grounding benchmarks. It joins one atom at a time into a fully
// materialized []binding slice, rebuilding a hash index over the joined
// relation at every step — O(intermediate result) memory, which is exactly
// what the streaming plan in plan.go avoids. Join keys are the typed
// composite encodings of keyenc.go rather than the formatted strings the
// original used; BenchmarkJoinAtom measures the allocation drop.

// binding is a partial homomorphism from query variables to values, with the
// facts supporting it (one per joined atom, in join order).
type binding struct {
	vals  map[string]db.Value
	facts []*db.Fact
}

// EvalMaterialized evaluates the UCQ with the materialized engine. It is
// answer-for-answer identical to Eval — same tuples, same order, equivalent
// lineage — only the evaluation strategy differs.
func EvalMaterialized(d *db.Database, q *query.UCQ, b *circuit.Builder, opts Options) ([]Answer, error) {
	return evalWith(d, q, b, opts, deriveCQMaterialized)
}

// deriveCQMaterialized enumerates the derivations of one conjunctive query
// by materializing each intermediate binding set. With pin >= 0, atom pin
// ranges over only pinFact instead of its whole relation.
func deriveCQMaterialized(d *db.Database, cq *query.CQ, pin int, pinFact *db.Fact) ([]Derivation, error) {
	if err := cq.Validate(); err != nil {
		return nil, err
	}
	for _, a := range cq.Atoms {
		rel := d.Relation(a.Relation)
		if rel == nil {
			return nil, fmt.Errorf("engine: %w %q", db.ErrUnknownRelation, a.Relation)
		}
		if len(a.Args) != rel.Schema.Arity() {
			return nil, fmt.Errorf("atom %s: relation has arity %d: %w", a, rel.Schema.Arity(), db.ErrArity)
		}
	}

	bindings := []binding{{vals: map[string]db.Value{}}}
	bound := make(map[string]bool)
	remainingAtoms := make([]int, len(cq.Atoms))
	for i := range remainingAtoms {
		remainingAtoms[i] = i
	}
	pendingFilters := make([]query.Filter, len(cq.Filters))
	copy(pendingFilters, cq.Filters)

	for len(remainingAtoms) > 0 && len(bindings) > 0 {
		idx := pickAtom(cq, remainingAtoms, bound, pin)
		atom := cq.Atoms[idx]
		remainingAtoms = removeInt(remainingAtoms, idx)

		facts := d.Relation(atom.Relation).Facts()
		if idx == pin {
			facts = []*db.Fact{pinFact}
		}
		var err error
		bindings, err = joinAtom(atom, facts, bindings, bound)
		if err != nil {
			return nil, err
		}
		for _, v := range atom.Vars() {
			bound[v] = true
		}
		// Apply every filter whose variables are now all bound.
		pendingFilters, bindings, err = applyFilters(pendingFilters, bindings, bound)
		if err != nil {
			return nil, err
		}
	}
	if len(pendingFilters) > 0 && len(bindings) > 0 {
		return nil, fmt.Errorf("filters %v reference unbound variables", pendingFilters)
	}

	out := make([]Derivation, 0, len(bindings))
	for _, bd := range bindings {
		head := make(db.Tuple, len(cq.Head))
		for i, h := range cq.Head {
			head[i] = bd.vals[h]
		}
		out = append(out, Derivation{Tuple: head, Facts: normalizeSupport(bd.facts)})
	}
	return out, nil
}

// pickAtom greedily selects the next atom to join: the one with the most
// bound terms (constants count as bound), breaking ties by original order.
// This keeps intermediate binding sets small on the star-join workloads.
// A pinned atom (the single-fact delta atom) always goes first: it is the
// most selective join possible.
func pickAtom(cq *query.CQ, remaining []int, bound map[string]bool, pin int) int {
	best, bestScore := remaining[0], -1
	for _, idx := range remaining {
		if idx == pin {
			return idx
		}
		score := 0
		for _, t := range cq.Atoms[idx].Args {
			if !t.IsVar() || bound[t.Var] {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = idx, score
		}
	}
	return best
}

func removeInt(s []int, v int) []int {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// joinAtom extends each binding with every fact of the given slice
// consistent with it. It builds a hash index on the atom positions that are
// constants or already-bound variables (the same positions for every
// binding, since all bindings at a stage bind the same variable set), keyed
// by the typed composite encoding of those positions.
func joinAtom(atom query.Atom, facts []*db.Fact, bindings []binding,
	bound map[string]bool) ([]binding, error) {

	keyPos := make([]int, 0, len(atom.Args))
	for i, t := range atom.Args {
		if !t.IsVar() || bound[t.Var] {
			keyPos = append(keyPos, i)
		}
	}

	// Index facts by the key positions.
	index := make(map[db.Key][]*db.Fact, len(facts))
	buf := make([]byte, 0, 64)
	for _, f := range facts {
		buf = db.AppendTupleKey(buf[:0], f.Tuple, keyPos)
		k := db.Key(buf)
		index[k] = append(index[k], f)
	}

	var out []binding
	for _, bd := range bindings {
		key, ok := bindingKey(atom, keyPos, bd, buf[:0])
		if !ok {
			continue
		}
		for _, f := range index[key] {
			newVals, ok := extend(atom, f, bd)
			if !ok {
				continue
			}
			support := make([]*db.Fact, len(bd.facts), len(bd.facts)+1)
			copy(support, bd.facts)
			support = append(support, f)
			out = append(out, binding{vals: newVals, facts: support})
		}
	}
	return out, nil
}

// bindingKey computes the typed lookup key for a binding; ok is false when
// the binding can never match (unreachable in practice since key positions
// are bound by construction).
func bindingKey(atom query.Atom, keyPos []int, bd binding, buf []byte) (db.Key, bool) {
	for _, p := range keyPos {
		t := atom.Args[p]
		if t.IsVar() {
			v, ok := bd.vals[t.Var]
			if !ok {
				return "", false
			}
			buf = db.AppendValueKey(buf, v)
		} else {
			buf = db.AppendValueKey(buf, t.Const)
		}
	}
	return db.Key(buf), true
}

// extend matches the fact against the atom under the binding, returning the
// extended variable map. Repeated unbound variables within the atom must
// agree across positions.
func extend(atom query.Atom, f *db.Fact, bd binding) (map[string]db.Value, bool) {
	newVals := make(map[string]db.Value, len(bd.vals)+len(atom.Args))
	for k, v := range bd.vals {
		newVals[k] = v
	}
	for i, t := range atom.Args {
		val := f.Tuple[i]
		if !t.IsVar() {
			if !t.Const.Equal(val) {
				return nil, false
			}
			continue
		}
		if prev, ok := newVals[t.Var]; ok {
			if !prev.Equal(val) {
				return nil, false
			}
			continue
		}
		newVals[t.Var] = val
	}
	return newVals, true
}

// applyFilters evaluates all filters whose variables are bound, dropping
// failing bindings. It returns the still-pending filters and the surviving
// bindings.
func applyFilters(filters []query.Filter, bindings []binding, bound map[string]bool) ([]query.Filter, []binding, error) {
	var ready, pending []query.Filter
	for _, f := range filters {
		ok := bound[f.Left] && (!f.Right.IsVar() || bound[f.Right.Var])
		if ok {
			ready = append(ready, f)
		} else {
			pending = append(pending, f)
		}
	}
	if len(ready) == 0 {
		return filters, bindings, nil
	}
	kept := bindings[:0]
	for _, bd := range bindings {
		pass := true
		for _, f := range ready {
			ok, err := f.Eval(bd.vals)
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				pass = false
				break
			}
		}
		if pass {
			kept = append(kept, bd)
		}
	}
	return pending, kept, nil
}
