// Package engine evaluates SPJU queries (unions of conjunctive queries with
// filters) over pluggable-storage databases while tracking Boolean
// provenance: every output tuple is returned together with its lineage
// circuit in the sense of Imielinski and Lipski. This substitutes for the
// PostgreSQL + ProvSQL stack of the paper's implementation; downstream
// stages consume only the lineage circuits, which are the same Boolean
// functions either way.
//
// Evaluation is streaming: each conjunctive query compiles to a left-deep
// pipeline of iterators (see plan.go) that walks the store's scans and
// indexed lookups one row at a time, so grounding never materializes an
// intermediate binding table. The previous slice-materializing evaluator is
// kept as EvalMaterialized (materialized.go) — it is the reference oracle
// for equivalence tests and the baseline for the grounding benchmarks.
package engine

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/query"
)

// LineageMode selects which facts become provenance variables.
type LineageMode uint8

// Lineage modes.
const (
	// ModeEndogenous builds ELin(q, Dx, Dn) directly: exogenous facts are
	// fixed to true and only endogenous facts appear as variables. This is
	// the circuit C' of Figure 3.
	ModeEndogenous LineageMode = iota
	// ModeFull builds Lin(q, D): every fact is a variable. Used by the
	// probabilistic-database reduction, where exogenous facts get
	// probability 1.
	ModeFull
)

// Options configures evaluation.
type Options struct {
	Mode LineageMode
}

// Answer is one output tuple with its lineage.
type Answer struct {
	Tuple   db.Tuple
	Lineage *circuit.Node
}

// Derivation is one witness of an output tuple: the head values together
// with the facts (endogenous and exogenous) the witnessing join used. The
// tuple's lineage is the disjunction, over its derivations, of the
// conjunction of each derivation's endogenous fact variables — which is how
// Eval assembles circuits and how the incremental layer splices them.
type Derivation struct {
	Tuple db.Tuple
	Facts []*db.Fact // sorted by fact ID, duplicates removed
}

// Conjunction builds the derivation's provenance conjunction in b.
func (dv Derivation) Conjunction(b *circuit.Builder, opts Options) *circuit.Node {
	nodes := make([]*circuit.Node, len(dv.Facts))
	for i, f := range dv.Facts {
		nodes[i] = factNode(b, f, opts)
	}
	return b.And(nodes...)
}

// deriveFunc enumerates the derivations of one conjunctive query, with an
// optional pinned atom; deriveCQ (streaming) and deriveCQMaterialized
// implement it.
type deriveFunc func(d *db.Database, cq *query.CQ, pin int, pinFact *db.Fact) ([]Derivation, error)

// Eval evaluates the UCQ over the database, building lineage circuits in b.
// Answers are sorted by tuple for determinism. A Boolean query yields at
// most one answer with the empty tuple; absence means the query is false on
// every sub-database (lineage identically false).
func Eval(d *db.Database, q *query.UCQ, b *circuit.Builder, opts Options) ([]Answer, error) {
	return evalWith(d, q, b, opts, deriveCQ)
}

// evalWith is Eval parameterized by the derivation enumerator, so the
// streaming and materialized engines share the answer-assembly (grouping by
// tuple key, sorted output) and produce byte-identical answer orderings.
func evalWith(d *db.Database, q *query.UCQ, b *circuit.Builder, opts Options, derive deriveFunc) ([]Answer, error) {
	groups := make(map[string][]*circuit.Node)
	tuples := make(map[string]db.Tuple)
	for i := range q.Disjuncts {
		derivs, err := derive(d, &q.Disjuncts[i], -1, nil)
		if err != nil {
			return nil, fmt.Errorf("engine: disjunct %d: %w", i, err)
		}
		for _, dv := range derivs {
			key := dv.Tuple.Key()
			if _, ok := tuples[key]; !ok {
				tuples[key] = dv.Tuple
			}
			groups[key] = append(groups[key], dv.Conjunction(b, opts))
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Answer, 0, len(keys))
	for _, k := range keys {
		out = append(out, Answer{Tuple: tuples[k], Lineage: b.Or(groups[k]...)})
	}
	return out, nil
}

// EvalDelta computes the derivations newly enabled by inserting fact f: for
// every atom of every disjunct over f's relation, it re-runs the join with
// that atom pinned to f alone, so the work is proportional to the bindings
// involving the touched fact rather than to the whole database. The
// database must already contain f (a derivation may use f at several atoms).
// Derivations double-counted across pin positions are exact duplicates and
// collapse under the support-set keying of the incremental layer (and under
// the circuit builder's hash-consing either way).
func EvalDelta(d *db.Database, q *query.UCQ, f *db.Fact) ([]Derivation, error) {
	var out []Derivation
	for i := range q.Disjuncts {
		cq := &q.Disjuncts[i]
		for ai := range cq.Atoms {
			if cq.Atoms[ai].Relation != f.Relation {
				continue
			}
			derivs, err := deriveCQ(d, cq, ai, f)
			if err != nil {
				return nil, fmt.Errorf("engine: disjunct %d: %w", i, err)
			}
			out = append(out, derivs...)
		}
	}
	return out, nil
}

// EvalBoolean evaluates a Boolean UCQ and returns its lineage circuit
// (constant false when the query has no derivation).
func EvalBoolean(d *db.Database, q *query.UCQ, b *circuit.Builder, opts Options) (*circuit.Node, error) {
	if !q.IsBoolean() {
		return nil, fmt.Errorf("engine: query has arity %d, want Boolean", q.Arity())
	}
	answers, err := Eval(d, q, b, opts)
	if err != nil {
		return nil, err
	}
	if len(answers) == 0 {
		return b.False(), nil
	}
	return answers[0].Lineage, nil
}

// deriveCQ enumerates the derivations of one conjunctive query by compiling
// it to a streaming plan and draining the row stream. With pin >= 0, atom
// pin ranges over only pinFact instead of its whole relation — the
// delta-join primitive behind EvalDelta.
func deriveCQ(d *db.Database, cq *query.CQ, pin int, pinFact *db.Fact) ([]Derivation, error) {
	p, err := planCQ(d, cq, pin)
	if err != nil {
		return nil, err
	}
	var out []Derivation
	err = p.run(d, pinFact, func(regs []db.Value, support []*db.Fact) bool {
		head := make(db.Tuple, len(p.headRegs))
		for i, r := range p.headRegs {
			head[i] = regs[r]
		}
		out = append(out, Derivation{Tuple: head, Facts: normalizeSupport(support)})
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func factNode(b *circuit.Builder, f *db.Fact, opts Options) *circuit.Node {
	if f.Endogenous || opts.Mode == ModeFull {
		return b.Variable(circuit.Var(f.ID))
	}
	return b.True()
}
